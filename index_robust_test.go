package parclust

import (
	"context"
	"errors"
	"testing"
)

// TestIndexWithContextCancelled pins the public cancellation contract: a
// handle carrying an already-cancelled context refuses to start cold stage
// builds (returning the ctx error with zero builds recorded), while the
// parent Index and warm reads through the cancelled handle keep working.
func TestIndexWithContextCancelled(t *testing.T) {
	idx, err := NewIndex(GenerateVarden(1000, 2, 31), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := idx.WithContext(ctx)

	if _, err := dead.HDBSCAN(5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold HDBSCAN on cancelled handle: %v, want context.Canceled", err)
	}
	if _, err := dead.EMST(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold EMST on cancelled handle: %v, want context.Canceled", err)
	}
	if s := idx.Stats(); s.TreeBuilds != 0 {
		t.Fatalf("TreeBuilds = %d, want 0 (cancelled handle must not build)", s.TreeBuilds)
	}

	// The parent handle is unaffected and builds normally.
	h, err := idx.HDBSCAN(5)
	if err != nil || h == nil {
		t.Fatalf("parent HDBSCAN after cancelled handle: (%v, %v)", h, err)
	}
	// Memoized reads through the cancelled handle still succeed: the
	// context bounds builds, not cache hits.
	h2, err := dead.HDBSCAN(5)
	if err != nil || h2 == nil {
		t.Fatalf("warm HDBSCAN on cancelled handle: (%v, %v)", h2, err)
	}
	labels, labels2 := h.ClustersAt(0.5).Labels, h2.ClustersAt(0.5).Labels
	for i := range labels {
		if labels[i] != labels2[i] {
			t.Fatalf("label %d diverges between parent and cancelled warm handle", i)
		}
	}
}

// TestIndexBuildGate pins the public admission contract: a closed gate
// sheds cold builds with ErrOverloaded, warm reads bypass it, and an open
// gate's release runs once per admitted flight.
func TestIndexBuildGate(t *testing.T) {
	idx, err := NewIndex(GenerateVarden(500, 2, 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.EMST(); err != nil { // warm the tree + one MST
		t.Fatal(err)
	}

	idx.SetBuildGate(func() (func(), bool) { return nil, false })
	if _, err := idx.HDBSCAN(5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cold HDBSCAN under closed gate: %v, want ErrOverloaded", err)
	}
	if _, err := idx.EMST(); err != nil {
		t.Fatalf("warm EMST under closed gate: %v, want memoized hit", err)
	}

	var admitted, released int
	idx.SetBuildGate(func() (func(), bool) {
		admitted++
		return func() { released++ }, true
	})
	if _, err := idx.HDBSCAN(5); err != nil {
		t.Fatalf("cold HDBSCAN under open gate: %v", err)
	}
	if admitted == 0 || admitted != released {
		t.Fatalf("gate admitted=%d released=%d, want equal and nonzero", admitted, released)
	}
}

package parclust

import (
	"fmt"
	"io"

	"parclust/internal/store"
)

// WriteSnapshot serializes the Index — its prepared points and every
// memoized stage output (tree, core distances, MSTs, dendrograms) — into
// the versioned, checksummed container documented in internal/store.
// Reading the snapshot back with ReadSnapshot yields an Index that answers
// every query byte-identically without rebuilding any serialized stage.
// Safe to call concurrently with queries: stages published after the
// snapshot begins are simply not included.
//
// A mutated Index is compacted first, so the snapshot always carries the
// canonical base — the live rows in ascending external-id order — and
// never overlay or tombstone state. External ids are not persisted: the
// restored Index renumbers its points 0..m-1, which leaves every dense-id
// query (KNN, labels, MST edges) byte-identical.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	if err := ix.eng.Compact(ix.ctx); err != nil {
		return err
	}
	return store.Encode(w, ix.eng.Kern.Name(), ix.eng)
}

// SnapshotDetails reports what a snapshot contained and what was usable.
type SnapshotDetails struct {
	// Metric is the kernel the snapshotted Index ran under.
	Metric Metric
	// Float32 reports that the snapshotted Index ran on the float32 fast
	// path; the restored Index resumes in the same mode.
	Float32 bool
	// N and Dim describe the point set.
	N, Dim int
	// Stages is the number of serialized stage chunks (tree, core
	// distances, MSTs, dendrograms; the points chunk is not counted).
	Stages int
	// SkippedStages lists stage chunks that failed their checksum or
	// validation and were dropped; those stages rebuild on first use.
	// A clean snapshot has none.
	SkippedStages []string
}

// ReadSnapshot reconstructs an Index from a WriteSnapshot stream. The
// restored Index serves the serialized stages without rebuilding them
// (its Stats build counters stay zero until a query needs something the
// snapshot did not carry). A snapshot with a damaged header or points
// section yields an error; individually damaged stage chunks are dropped
// and rebuilt on demand — use ReadSnapshotDetails to observe that.
func ReadSnapshot(r io.Reader) (*Index, error) {
	ix, _, err := ReadSnapshotDetails(r)
	return ix, err
}

// ReadSnapshotDetails is ReadSnapshot plus a report of the snapshot's
// contents and any skipped stage chunks.
func ReadSnapshotDetails(r io.Reader) (*Index, *SnapshotDetails, error) {
	res, err := store.Decode(r)
	if err != nil {
		return nil, nil, fmt.Errorf("parclust: %w", err)
	}
	m, err := ParseMetric(res.Header.Metric)
	if err != nil {
		return nil, nil, err
	}
	// The snapshot stores the prepared point set (already unit-normalized
	// for the angular kernel), so the engine is constructed directly from
	// the decoded points: re-running preparation would normalize twice.
	ix := &Index{metric: m, eng: res.Engine}
	det := &SnapshotDetails{
		Metric:        m,
		Float32:       res.Engine.Float32(),
		N:             res.Header.N,
		Dim:           res.Header.Dim,
		Stages:        len(res.Header.Chunks) - 1,
		SkippedStages: res.Skipped,
	}
	return ix, det, nil
}

// SnapshotSignature identifies a snapshot's content for stale-aware
// persistence: two Indexes over the same prepared points share a
// ContentHash, and Chunks grows as more stages are memoized. A stored
// snapshot is current if its header carries the same ContentHash and at
// least as many chunks.
type SnapshotSignature struct {
	ContentHash string
	Chunks      int
}

// SnapshotSignature returns the signature WriteSnapshot would produce
// right now. On a Dirty Index the signature still describes the current
// base points — WriteSnapshot compacts before encoding — so stale-aware
// persistence must treat Dirty as unconditionally stale rather than
// compare signatures.
func (ix *Index) SnapshotSignature() SnapshotSignature {
	hash, chunks := store.Signature(ix.eng)
	return SnapshotSignature{ContentHash: hash, Chunks: chunks}
}

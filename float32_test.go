package parclust

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"testing"

	"parclust/internal/metric"
)

// Float32 divergence oracle: the float32 fast path must agree with the
// exact float64 path up to float32 rounding of individual distances — the
// precision contract WithFloat32 documents. The sweep compares both paths
// end to end through the Index API and bounds MST weight error, merge
// height error, and flat-label disagreement.

// f32SweepTol are the sweep's epsilon bounds. Distances round with
// relative error ~2^-24 per coordinate pair; accumulations over dim lanes
// and the chord→angle map amplify that by small constants, so the bounds
// sit three orders of magnitude above worst-case rounding while staying
// far below any structural divergence.
const (
	f32WeightRelTol = 1e-4
	f32HeightRelTol = 1e-3
	f32HeightAbsTol = 1e-6
	f32LabelAgree   = 0.999
)

// canonLabels renumbers cluster ids by first appearance so two label
// vectors compare positionally even if the paths numbered components in a
// different order. Noise (-1) is preserved.
func canonLabels(ls []int32) []int32 {
	out := make([]int32, len(ls))
	remap := map[int32]int32{}
	next := int32(0)
	for i, l := range ls {
		if l < 0 {
			out[i] = -1
			continue
		}
		r, ok := remap[l]
		if !ok {
			r = next
			remap[l] = r
			next++
		}
		out[i] = r
	}
	return out
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 0 {
		return d / m
	}
	return d
}

func TestFloat32OracleSweep(t *testing.T) {
	dims := []int{2, 16, 128}
	seeds := []int64{3, 17}
	if testing.Short() {
		dims = []int{2, 16}
		seeds = seeds[:1]
	}
	for _, m := range []Metric{MetricL2, MetricSqL2, MetricL1, MetricLInf, MetricAngular} {
		for _, dim := range dims {
			for _, seed := range seeds {
				n := 800
				if dim >= 128 {
					n = 300
				}
				t.Run(fmt.Sprintf("%v/dim=%d/seed=%d", m, dim, seed), func(t *testing.T) {
					pts := GenerateGaussianMixture(n, dim, 4, seed)
					base, err := NewIndex(pts, &IndexOptions{Metric: m})
					if err != nil {
						t.Fatal(err)
					}
					fast, err := NewIndex(pts, &IndexOptions{Metric: m, Float32: true})
					if err != nil {
						t.Fatal(err)
					}
					if !fast.Float32() || base.Float32() {
						t.Fatal("Float32() flags do not reflect the options")
					}
					hb, err := base.HDBSCAN(5)
					if err != nil {
						t.Fatal(err)
					}
					hf, err := fast.HDBSCAN(5)
					if err != nil {
						t.Fatal(err)
					}
					if len(hb.MST) != len(hf.MST) {
						t.Fatalf("MST sizes differ: %d vs %d", len(hb.MST), len(hf.MST))
					}
					if re := relErr(hf.TotalWeight(), hb.TotalWeight()); re > f32WeightRelTol {
						t.Fatalf("MST total weight rel err %.3g > %.3g", re, f32WeightRelTol)
					}
					// Merge heights: the sorted MST weights are the heights
					// at which the single-linkage-over-reachability merges
					// happen; compare them pairwise.
					wb := make([]float64, len(hb.MST))
					wf := make([]float64, len(hf.MST))
					for i := range hb.MST {
						wb[i], wf[i] = hb.MST[i].W, hf.MST[i].W
					}
					sort.Float64s(wb)
					sort.Float64s(wf)
					for i := range wb {
						if math.Abs(wf[i]-wb[i]) > f32HeightAbsTol && relErr(wf[i], wb[i]) > f32HeightRelTol {
							t.Fatalf("merge height %d: %.9g vs %.9g", i, wf[i], wb[i])
						}
					}
					// Flat labels at a well-separated cut: the midpoint of
					// the largest merge-height gap, so no point's
					// assignment is decided at float32 resolution. (Cutting
					// exactly at a merge height would flip every point
					// behind that edge on a one-ulp rounding difference.)
					gi := 0
					for i := 1; i < len(wb); i++ {
						if wb[i]-wb[i-1] > wb[gi+1]-wb[gi] {
							gi = i - 1
						}
					}
					eps := (wb[gi] + wb[gi+1]) / 2
					lb := canonLabels(hb.ClustersAt(eps).Labels)
					lf := canonLabels(hf.ClustersAt(eps).Labels)
					agree := 0
					for i := range lb {
						if lb[i] == lf[i] {
							agree++
						}
					}
					if frac := float64(agree) / float64(len(lb)); frac < f32LabelAgree {
						t.Fatalf("label agreement %.4f < %.4f at eps=%g", frac, f32LabelAgree, eps)
					}
					// k-NN neighbor sets at k=5 from a few probes.
					for q := int32(0); q < 5; q++ {
						nb, _ := base.KNN(q, 5)
						nf, _ := fast.KNN(q, 5)
						for i := range nb {
							if math.Abs(nf[i].Dist-nb[i].Dist) > f32HeightAbsTol && relErr(nf[i].Dist, nb[i].Dist) > f32HeightRelTol {
								t.Fatalf("KNN(%d) dist %d: %.9g vs %.9g", q, i, nf[i].Dist, nb[i].Dist)
							}
						}
					}
				})
			}
		}
	}
}

// TestFloat32Duplicates pins degenerate input: heavy duplication means
// zero distances everywhere, which must flow through the float32 panels
// without NaNs and agree with the float64 path exactly (0 rounds to 0).
func TestFloat32Duplicates(t *testing.T) {
	n, dim := 200, 16
	pts := NewPoints(n, dim)
	base := GenerateGaussianMixture(8, dim, 2, 5)
	for i := 0; i < n; i++ {
		copy(pts.Data[i*dim:(i+1)*dim], base.Data[(i%8)*dim:(i%8+1)*dim])
	}
	fast, err := NewIndex(pts, WithFloat32())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := fast.HDBSCAN(4)
	if err != nil {
		t.Fatal(err)
	}
	he, err := exact.HDBSCAN(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hf.MST {
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			t.Fatalf("non-finite MST weight %v", e.W)
		}
	}
	if re := relErr(hf.TotalWeight(), he.TotalWeight()); re > f32WeightRelTol {
		t.Fatalf("duplicate-heavy MST weight rel err %.3g", re)
	}
}

// TestFloat32NearTies pins inputs whose pairwise gaps sit below float32
// resolution: coordinates differing by parts in 1e-9 collapse to equal
// float32 distances. The run must stay finite and within the weight
// tolerance; which of the tied edges the MST picks is unspecified.
func TestFloat32NearTies(t *testing.T) {
	n, dim := 128, 8
	pts := NewPoints(n, dim)
	for i := 0; i < n; i++ {
		for k := 0; k < dim; k++ {
			pts.Data[i*dim+k] = float64(i%4) + float64(i)*1e-9 + float64(k)*1e-10
		}
	}
	fast, err := NewIndex(pts, WithFloat32())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := fast.HDBSCAN(3)
	if err != nil {
		t.Fatal(err)
	}
	he, err := exact.HDBSCAN(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hf.MST {
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			t.Fatalf("non-finite MST weight %v", e.W)
		}
	}
	if d := math.Abs(hf.TotalWeight() - he.TotalWeight()); d > 1e-3 {
		t.Fatalf("near-tie MST weights diverge by %v", d)
	}
}

// TestFloat32OverflowGuard pins the magnitude contract: coordinates beyond
// metric.MaxAbsCoord32 must be rejected at NewIndex — the float32 path may
// never return ±Inf — while magnitudes just inside the bound accumulate
// finitely, and the float64 path accepts the same dataset unchanged.
func TestFloat32OverflowGuard(t *testing.T) {
	dim := 16
	bound := metric.MaxAbsCoord32(dim)

	over := GenerateUniform(64, dim, 9)
	over.Data[5*dim+3] = bound * 2
	if _, err := NewIndex(over, WithFloat32()); err == nil {
		t.Fatal("NewIndex accepted a coordinate beyond the float32 magnitude bound")
	}
	if _, err := NewIndex(over, nil); err != nil {
		t.Fatalf("float64 path rejected the same dataset: %v", err)
	}

	nan := GenerateUniform(64, dim, 10)
	nan.Data[7*dim] = math.NaN()
	if _, err := NewIndex(nan, WithFloat32()); err == nil {
		t.Fatal("NewIndex accepted a NaN coordinate on the float32 path")
	}

	// Alternating ±0.9*bound maximizes every squared-space accumulation;
	// all reported distances must still be finite.
	big := NewPoints(64, dim)
	for i := range big.Data {
		v := 0.9 * bound
		if i%2 == 0 {
			v = -v
		}
		big.Data[i] = v + float64(i%64)
	}
	ix, err := NewIndex(big, WithFloat32())
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ix.KNN(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, nn := range nb {
		if math.IsInf(nn.Dist, 0) || math.IsNaN(nn.Dist) {
			t.Fatalf("near-bound magnitudes produced non-finite distance %v", nn.Dist)
		}
	}
}

// TestFloat32SnapshotRoundTrip pins the dtype header: a snapshot of a
// float32 Index restores in float32 mode and answers identically.
func TestFloat32SnapshotRoundTrip(t *testing.T) {
	pts := GenerateGaussianMixture(500, 16, 3, 11)
	ix, err := NewIndex(pts, WithFloat32())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.HDBSCAN(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, det, err := ReadSnapshotDetails(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !det.Float32 {
		t.Fatal("snapshot details lost the float32 dtype")
	}
	if !back.Float32() {
		t.Fatal("restored Index is not in float32 mode")
	}
	got, err := back.HDBSCAN(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWeight() != want.TotalWeight() {
		t.Fatalf("restored MST weight %v != %v", got.TotalWeight(), want.TotalWeight())
	}
	wc, gc := want.ClustersAt(1.5), got.ClustersAt(1.5)
	if wc.NumClusters != gc.NumClusters {
		t.Fatalf("restored cluster count %d != %d", gc.NumClusters, wc.NumClusters)
	}
	for i := range wc.Labels {
		if wc.Labels[i] != gc.Labels[i] {
			t.Fatalf("restored label %d differs", i)
		}
	}
}

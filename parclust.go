package parclust

import (
	"errors"
	"fmt"
	"math"

	"parclust/internal/dendrogram"
	"parclust/internal/generator"
	"parclust/internal/geometry"
	"parclust/internal/metric"
	"parclust/internal/mst"
)

// Metric selects the distance kernel the pipeline runs under. Every
// algorithm supports every kernel except EMSTDelaunay2D and ApproxOPTICS,
// whose underlying theory is Euclidean-specific (both require MetricL2).
// The WSPD-based algorithms rely on the kernel having the doubling
// property for their O(n) pair bound; all built-in kernels qualify.
type Metric int

const (
	// MetricL2 is the Euclidean metric (the paper's setting, and the
	// default everywhere).
	MetricL2 Metric = iota
	// MetricSqL2 is squared Euclidean distance: same trees and clusters
	// as MetricL2 with all reported weights squared.
	MetricSqL2
	// MetricL1 is the Manhattan metric.
	MetricL1
	// MetricLInf is the Chebyshev metric.
	MetricLInf
	// MetricAngular is the angle in radians between points treated as
	// directions; input rows are unit-normalized internally and zero
	// vectors are rejected. The MST matches the cosine-distance MST.
	MetricAngular
)

// metricKernels maps each Metric constant to its kernel instance; the
// enum order matches metric.All(). Names and parsing come from the metric
// package, so adding a kernel means extending metric.All/metric.Parse and
// appending one constant above.
var metricKernels = metric.All()

func (m Metric) String() string {
	if m < 0 || int(m) >= len(metricKernels) {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricKernels[m].Name()
}

// ParseMetric resolves a kernel name ("l2"/"euclidean", "sql2",
// "l1"/"manhattan", "linf"/"chebyshev", "angular"/"cosine").
func ParseMetric(name string) (Metric, error) {
	kern, err := metric.Parse(name)
	if err != nil {
		return 0, fmt.Errorf("parclust: unknown metric %q (want l2|sql2|l1|linf|angular)", name)
	}
	for i, k := range metricKernels {
		if k.Name() == kern.Name() {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("parclust: kernel %q has no public Metric constant", kern.Name())
}

// Metrics returns every supported kernel, in a fixed order.
func Metrics() []Metric {
	out := make([]Metric, len(metricKernels))
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

func (m Metric) kernel() (metric.Metric, error) {
	if m < 0 || int(m) >= len(metricKernels) {
		return nil, fmt.Errorf("parclust: unknown metric %v", m)
	}
	return metricKernels[m], nil
}

// prepareMetric validates pts and returns the point set the pipeline
// should run on (a unit-normalized copy for the angular kernel) together
// with the resolved kernel.
func prepareMetric(pts Points, m Metric) (Points, metric.Metric, error) {
	if err := validatePoints(pts); err != nil {
		return Points{}, nil, err
	}
	kern, err := m.kernel()
	if err != nil {
		return Points{}, nil, err
	}
	if m == MetricAngular {
		norm, err := metric.NormalizeRows(pts)
		if err != nil {
			return Points{}, nil, fmt.Errorf("parclust: %w", err)
		}
		return norm, kern, nil
	}
	return pts, kern, nil
}

// Points is a set of n points in d dimensions stored in a flat row-major
// buffer (point i occupies Data[i*Dim:(i+1)*Dim]).
type Points = geometry.Points

// Edge is a weighted undirected edge between point indices U < V.
type Edge = mst.Edge

// Stats collects per-phase wall-clock times and work/memory counters
// (WSPD pairs materialized, BCCP invocations, filter rounds).
type Stats = mst.Stats

// Dendrogram is a binary merge tree over the input points; see package
// documentation for the ordered-dendrogram property.
type Dendrogram = dendrogram.Dendrogram

// Bar is one entry of a reachability plot.
type Bar = dendrogram.Bar

// Clustering is a flat clustering with -1 labels for noise.
type Clustering = dendrogram.Clustering

// NewStats returns an empty Stats for passing to the *WithStats variants.
func NewStats() *Stats { return mst.NewStats() }

// NewPoints allocates an n x dim point set.
func NewPoints(n, dim int) Points { return geometry.NewPoints(n, dim) }

// PointsFromSlices copies a slice-of-rows into a Points.
func PointsFromSlices(rows [][]float64) Points { return geometry.FromSlices(rows) }

// GenerateUniform returns n points uniform in a hypergrid of side sqrt(n)
// (the paper's UniformFill workload).
func GenerateUniform(n, dim int, seed int64) Points { return generator.UniformFill(n, dim, seed) }

// GenerateVarden returns the seed-spreader variable-density workload
// (the paper's SS-varden).
func GenerateVarden(n, dim int, seed int64) Points { return generator.SSVarden(n, dim, seed) }

// GenerateGaussianMixture returns a k-cluster Gaussian mixture.
func GenerateGaussianMixture(n, dim, k int, seed int64) Points {
	return generator.GaussianMixture(n, dim, k, seed)
}

// EMSTAlgorithm selects the EMST implementation (Section 5 names).
type EMSTAlgorithm int

const (
	// EMSTMemoGFK is the paper's fastest algorithm: parallel
	// GeoFilterKruskal with the memory optimization (Algorithm 3).
	EMSTMemoGFK EMSTAlgorithm = iota
	// EMSTGFK is parallel GeoFilterKruskal over a materialized WSPD
	// (Algorithm 2).
	EMSTGFK
	// EMSTNaive computes the BCCP of every WSPD pair up front.
	EMSTNaive
	// EMSTBoruvka runs Borůvka rounds with component-pruned nearest
	// neighbor queries (the dual-tree-Borůvka-style baseline of Table 3).
	EMSTBoruvka
	// EMSTDelaunay2D computes the MST of the Delaunay triangulation;
	// 2D inputs only (Appendix A.1).
	EMSTDelaunay2D
	// EMSTWSPDBoruvka runs Borůvka rounds over the WSPD's BCCP edges
	// (the structure of the paper's Appendix B algorithm).
	EMSTWSPDBoruvka
)

func (a EMSTAlgorithm) String() string {
	switch a {
	case EMSTMemoGFK:
		return "EMST-MemoGFK"
	case EMSTGFK:
		return "EMST-GFK"
	case EMSTNaive:
		return "EMST-Naive"
	case EMSTBoruvka:
		return "EMST-Boruvka"
	case EMSTDelaunay2D:
		return "EMST-Delaunay"
	case EMSTWSPDBoruvka:
		return "EMST-WSPDBoruvka"
	default:
		return fmt.Sprintf("EMSTAlgorithm(%d)", int(a))
	}
}

// EMST computes the Euclidean minimum spanning tree of pts with the
// default (MemoGFK) algorithm.
func EMST(pts Points) ([]Edge, error) { return EMSTWithStats(pts, EMSTMemoGFK, nil) }

// EMSTWithStats computes the EMST with an explicit algorithm choice,
// recording phase timings and counters into stats when non-nil.
func EMSTWithStats(pts Points, algo EMSTAlgorithm, stats *Stats) ([]Edge, error) {
	return EMSTMetricWithStats(pts, algo, MetricL2, stats)
}

// EMSTMetric computes the minimum spanning tree of pts under the given
// metric kernel with the default (MemoGFK) algorithm.
func EMSTMetric(pts Points, m Metric) ([]Edge, error) {
	return EMSTMetricWithStats(pts, EMSTMemoGFK, m, nil)
}

// EMSTMetricWithStats computes the MST of pts under the given metric
// kernel with an explicit algorithm choice, recording phase timings and
// counters into stats when non-nil. EMSTDelaunay2D supports MetricL2 only.
// It is a thin wrapper over a throwaway Index.
func EMSTMetricWithStats(pts Points, algo EMSTAlgorithm, m Metric, stats *Stats) ([]Edge, error) {
	idx, err := NewIndex(pts, &IndexOptions{Metric: m})
	if err != nil {
		return nil, err
	}
	return idx.emstWithStats(algo, stats)
}

func validatePoints(pts Points) error {
	if pts.Dim <= 0 {
		return errors.New("parclust: points must have positive dimension")
	}
	if len(pts.Data) != pts.N*pts.Dim {
		return fmt.Errorf("parclust: point buffer length %d does not match n*dim=%d",
			len(pts.Data), pts.N*pts.Dim)
	}
	for i, v := range pts.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("parclust: point %d has non-finite coordinate %v in dimension %d",
				i/pts.Dim, v, i%pts.Dim)
		}
	}
	return nil
}

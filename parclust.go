package parclust

import (
	"errors"
	"fmt"
	"math"

	"parclust/internal/delaunay"
	"parclust/internal/dendrogram"
	"parclust/internal/generator"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/wspd"
)

// Points is a set of n points in d dimensions stored in a flat row-major
// buffer (point i occupies Data[i*Dim:(i+1)*Dim]).
type Points = geometry.Points

// Edge is a weighted undirected edge between point indices U < V.
type Edge = mst.Edge

// Stats collects per-phase wall-clock times and work/memory counters
// (WSPD pairs materialized, BCCP invocations, filter rounds).
type Stats = mst.Stats

// Dendrogram is a binary merge tree over the input points; see package
// documentation for the ordered-dendrogram property.
type Dendrogram = dendrogram.Dendrogram

// Bar is one entry of a reachability plot.
type Bar = dendrogram.Bar

// Clustering is a flat clustering with -1 labels for noise.
type Clustering = dendrogram.Clustering

// NewStats returns an empty Stats for passing to the *WithStats variants.
func NewStats() *Stats { return mst.NewStats() }

// NewPoints allocates an n x dim point set.
func NewPoints(n, dim int) Points { return geometry.NewPoints(n, dim) }

// PointsFromSlices copies a slice-of-rows into a Points.
func PointsFromSlices(rows [][]float64) Points { return geometry.FromSlices(rows) }

// GenerateUniform returns n points uniform in a hypergrid of side sqrt(n)
// (the paper's UniformFill workload).
func GenerateUniform(n, dim int, seed int64) Points { return generator.UniformFill(n, dim, seed) }

// GenerateVarden returns the seed-spreader variable-density workload
// (the paper's SS-varden).
func GenerateVarden(n, dim int, seed int64) Points { return generator.SSVarden(n, dim, seed) }

// GenerateGaussianMixture returns a k-cluster Gaussian mixture.
func GenerateGaussianMixture(n, dim, k int, seed int64) Points {
	return generator.GaussianMixture(n, dim, k, seed)
}

// EMSTAlgorithm selects the EMST implementation (Section 5 names).
type EMSTAlgorithm int

const (
	// EMSTMemoGFK is the paper's fastest algorithm: parallel
	// GeoFilterKruskal with the memory optimization (Algorithm 3).
	EMSTMemoGFK EMSTAlgorithm = iota
	// EMSTGFK is parallel GeoFilterKruskal over a materialized WSPD
	// (Algorithm 2).
	EMSTGFK
	// EMSTNaive computes the BCCP of every WSPD pair up front.
	EMSTNaive
	// EMSTBoruvka runs Borůvka rounds with component-pruned nearest
	// neighbor queries (the dual-tree-Borůvka-style baseline of Table 3).
	EMSTBoruvka
	// EMSTDelaunay2D computes the MST of the Delaunay triangulation;
	// 2D inputs only (Appendix A.1).
	EMSTDelaunay2D
	// EMSTWSPDBoruvka runs Borůvka rounds over the WSPD's BCCP edges
	// (the structure of the paper's Appendix B algorithm).
	EMSTWSPDBoruvka
)

func (a EMSTAlgorithm) String() string {
	switch a {
	case EMSTMemoGFK:
		return "EMST-MemoGFK"
	case EMSTGFK:
		return "EMST-GFK"
	case EMSTNaive:
		return "EMST-Naive"
	case EMSTBoruvka:
		return "EMST-Boruvka"
	case EMSTDelaunay2D:
		return "EMST-Delaunay"
	case EMSTWSPDBoruvka:
		return "EMST-WSPDBoruvka"
	default:
		return fmt.Sprintf("EMSTAlgorithm(%d)", int(a))
	}
}

// EMST computes the Euclidean minimum spanning tree of pts with the
// default (MemoGFK) algorithm.
func EMST(pts Points) ([]Edge, error) { return EMSTWithStats(pts, EMSTMemoGFK, nil) }

// EMSTWithStats computes the EMST with an explicit algorithm choice,
// recording phase timings and counters into stats when non-nil.
func EMSTWithStats(pts Points, algo EMSTAlgorithm, stats *Stats) ([]Edge, error) {
	if err := validatePoints(pts); err != nil {
		return nil, err
	}
	if pts.N <= 1 {
		return nil, nil
	}
	if algo == EMSTDelaunay2D {
		if pts.Dim != 2 {
			return nil, fmt.Errorf("parclust: %v requires 2D points, got %dD", algo, pts.Dim)
		}
		return delaunay.EMST(pts, stats), nil
	}
	var t *kdtree.Tree
	build := func() { t = kdtree.Build(pts, 1) }
	if stats != nil {
		stats.Time("build-tree", build)
	} else {
		build()
	}
	if algo == EMSTBoruvka {
		return mst.Boruvka(t, stats), nil
	}
	cfg := mst.Config{Tree: t, Metric: kdtree.Euclidean{Pts: pts}, Sep: wspd.Geometric{S: 2}, Stats: stats}
	switch algo {
	case EMSTMemoGFK:
		return mst.MemoGFK(cfg), nil
	case EMSTGFK:
		return mst.GFK(cfg), nil
	case EMSTNaive:
		return mst.Naive(cfg), nil
	case EMSTWSPDBoruvka:
		return mst.WSPDBoruvka(cfg), nil
	default:
		return nil, fmt.Errorf("parclust: unknown EMST algorithm %v", algo)
	}
}

func validatePoints(pts Points) error {
	if pts.Dim <= 0 {
		return errors.New("parclust: points must have positive dimension")
	}
	if len(pts.Data) != pts.N*pts.Dim {
		return fmt.Errorf("parclust: point buffer length %d does not match n*dim=%d",
			len(pts.Data), pts.N*pts.Dim)
	}
	for i, v := range pts.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("parclust: point %d has non-finite coordinate %v in dimension %d",
				i/pts.Dim, v, i%pts.Dim)
		}
	}
	return nil
}

package parclust

import (
	"fmt"

	"parclust/internal/engine"
	"parclust/internal/metric"
)

// Incremental updates: an Index absorbs inserts and deletes without full
// rebuilds. Inserted rows land in a brute-force-scanned overlay merged into
// every point query; deletes become tombstones the tree's leaf scans skip.
// Global stages (HDBSCAN*, EMST, core distances, DBSCAN, OPTICS) compact
// first — the live rows are rebuilt into a canonical base with the same
// build path a fresh Index uses — so their results are byte-identical to an
// Index freshly constructed over the surviving points. Compaction also
// triggers automatically once the mutation backlog exceeds 25% of the live
// set, amortizing rebuild cost across many mutations.
//
// # Id spaces
//
// Every point has a stable external id, assigned monotonically: the initial
// rows get 0..n-1, inserts continue from there, and ids are never reused.
// Insert returns the assigned ids; Delete takes them. Query APIs (KNN,
// RangeQuery, labels, MST edges) keep using dense ids — positions in the
// ascending external-id order — which is exactly the id space of a fresh
// Index built over the surviving rows, preserving the byte-identity
// contract. ExternalIDs maps dense positions back to external ids.
//
// # Epochs
//
// Every mutation bumps the Index's mutation epoch before it is applied.
// Servers capture the epoch when a query starts and compare on completion
// to detect responses that raced a mutation mid-flight (parclustd answers
// 409 Conflict on such races).

// ErrUnknownID is wrapped by Delete when an id does not name a live point
// (never assigned, already deleted, or repeated within the batch).
var ErrUnknownID = engine.ErrUnknownID

// Insert appends rows as new live points and returns their external ids
// (monotonic, never reused). The rows are validated like NewIndex input —
// finite coordinates, matching dimension, the float32 magnitude bound under
// WithFloat32 — and copied, so the caller's buffer is not retained. The
// mutation invalidates downstream stages (core distances, MSTs,
// hierarchies, cut caches) but keeps the tree: point queries merge the
// overlay until the Index compacts.
func (ix *Index) Insert(rows Points) ([]int64, error) {
	if rows.N == 0 {
		return nil, nil
	}
	if rows.Dim != ix.Dim() {
		return nil, fmt.Errorf("parclust: insert dimension %d, want %d", rows.Dim, ix.Dim())
	}
	prepared, _, err := prepareMetric(rows, ix.metric)
	if err != nil {
		return nil, err
	}
	if ix.metric != MetricAngular {
		// prepareMetric copies only under the angular kernel; the engine
		// retains the rows, so always hand it a private copy.
		prepared = Points{Data: append([]float64(nil), rows.Data...), N: rows.N, Dim: rows.Dim}
	}
	if ix.eng.Float32() {
		if err := metric.ValidateRows32(prepared); err != nil {
			return nil, err
		}
	}
	ids, err := ix.eng.Insert(prepared)
	if err != nil {
		return nil, fmt.Errorf("parclust: %w", err)
	}
	return ids, nil
}

// Delete removes the points with the given external ids. Validation is
// all-or-nothing: if any id does not name a live point, the Index is
// unchanged and the error wraps ErrUnknownID.
func (ix *Index) Delete(ids []int64) error {
	if len(ids) == 0 {
		return nil
	}
	if err := ix.eng.Delete(ids); err != nil {
		return fmt.Errorf("parclust: %w", err)
	}
	return nil
}

// MutationEpoch returns the Index's mutation epoch: a counter bumped at the
// start of every Insert/Delete, before the mutation is applied. Capture it
// when a query begins and compare on completion to detect a mutation racing
// the query mid-flight.
func (ix *Index) MutationEpoch() uint64 { return ix.eng.MutationEpoch() }

// Dirty reports whether uncompacted mutations exist: the base tree differs
// from the live point set. A dirty Index compacts automatically before any
// global stage query or snapshot write.
func (ix *Index) Dirty() bool { return ix.eng.Dirty() }

// ExternalIDs returns the live external ids in dense-id order: element q is
// the external id of the point that queries address as q. The slice is a
// copy.
func (ix *Index) ExternalIDs() []int64 { return ix.eng.ExternalIDs() }

// Compact forces a dirty Index into canonical form — the live rows become
// the base tree in external-id order, overlay and tombstones are reclaimed
// — without waiting for the automatic backlog threshold. Queries before and
// after compaction answer identically; only their cost profile changes.
func (ix *Index) Compact() error {
	if err := ix.eng.Compact(ix.ctx); err != nil {
		return err
	}
	return nil
}

// DynStats is a snapshot of the Index's dynamic-layer occupancy: live
// points, uncompacted overlay inserts, outstanding tombstones, and whether
// a compaction is pending.
type DynStats = engine.DynInfo

// DynStats returns the Index's current dynamic-layer occupancy.
func (ix *Index) DynStats() DynStats { return ix.eng.DynInfo() }

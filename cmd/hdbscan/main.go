// Command hdbscan computes an HDBSCAN* hierarchy (MST of the mutual
// reachability graph plus ordered dendrogram) and optionally extracts flat
// clusters at one or more radii or emits the reachability plot.
//
// Usage:
//
//	hdbscan -gen varden -n 100000 -dim 2 -minpts 10 -eps 2.5
//	hdbscan -input points.csv -minpts 25 -plot reach.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"parclust"
	"parclust/internal/dataio"
)

func main() {
	var (
		input   = flag.String("input", "", "CSV file of points (one point per line)")
		genKind = flag.String("gen", "varden", "synthetic generator when -input is empty: uniform | varden | mixture | geolife")
		n       = flag.Int("n", 100000, "number of generated points")
		dim     = flag.Int("dim", 2, "dimension of generated points")
		seed    = flag.Int64("seed", 42, "generator seed")
		minPts  = flag.Int("minpts", 10, "HDBSCAN* minPts parameter")
		algo    = flag.String("algo", "memogfk", "algorithm: memogfk | gantao | approx")
		metricF = flag.String("metric", "l2", "distance kernel: l2 | sql2 | l1 | linf | angular (approx is l2-only)")
		rho     = flag.Float64("rho", 0.125, "approximation parameter for -algo approx")
		epsList = flag.String("eps", "", "comma-separated radii for flat cluster extraction")
		plot    = flag.String("plot", "", "write the reachability plot (idx,height per line) to this file")
		newick  = flag.String("newick", "", "write the dendrogram in Newick format to this file")
		stable  = flag.Int("stable", 0, "extract stability-optimal clusters with this minimum cluster size")
		phases  = flag.Bool("phases", false, "print per-phase timing decomposition")
		threads = flag.Int("threads", 0, "GOMAXPROCS override (0 = all cores)")
	)
	flag.Parse()
	if *threads > 0 {
		runtime.GOMAXPROCS(*threads)
	}
	pts, err := dataio.LoadOrGenerate(*input, *genKind, *n, *dim, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdbscan:", err)
		os.Exit(1)
	}
	m, err := parclust.ParseMetric(*metricF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdbscan:", err)
		os.Exit(2)
	}
	stats := parclust.NewStats()
	start := time.Now()
	// Everything below runs off one Index: the hierarchy, every -eps cut,
	// the stable extraction, and the plot share a single tree build.
	var idx *parclust.Index
	var h *parclust.Hierarchy
	switch *algo {
	case "memogfk", "gantao":
		idx, err = parclust.NewIndex(pts, &parclust.IndexOptions{Metric: m})
		if err == nil {
			ha := parclust.HDBSCANMemoGFK
			if *algo == "gantao" {
				ha = parclust.HDBSCANGanTao
			}
			h, err = idx.HDBSCANWithAlgorithm(*minPts, ha)
			if err == nil {
				stats = h.Stats
			}
		}
	case "approx":
		if m != parclust.MetricL2 {
			err = fmt.Errorf("algorithm approx supports the l2 metric only, got %v", m)
		} else {
			h, err = parclust.ApproxOPTICSWithStats(pts, *minPts, *rho, stats)
		}
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdbscan:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("algorithm=%s metric=%v n=%d dim=%d minPts=%d threads=%d\n",
		*algo, m, pts.N, pts.Dim, *minPts, runtime.GOMAXPROCS(0))
	fmt.Printf("mst_edges=%d mst_weight=%.6f time=%.3fs\n",
		len(h.MST), h.TotalWeight(), elapsed.Seconds())
	if *phases {
		for name, d := range stats.Phases {
			fmt.Printf("phase %-12s %.3fs\n", name, d.Seconds())
		}
		if idx != nil {
			s := idx.Stats()
			fmt.Printf("stage cache: tree %d built/%d hit, core-dist %d/%d, mst %d/%d, dendrogram %d/%d\n",
				s.TreeBuilds, s.TreeHits, s.CoreDistBuilds, s.CoreDistHits,
				s.MSTBuilds, s.MSTHits, s.DendrogramBuilds, s.DendrogramHits)
		}
	}
	if *epsList != "" {
		for _, s := range strings.Split(*epsList, ",") {
			eps, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hdbscan: bad eps %q\n", s)
				os.Exit(2)
			}
			c := h.ClustersAt(eps)
			sizes := map[int32]int{}
			noise := 0
			for _, l := range c.Labels {
				if l == -1 {
					noise++
				} else {
					sizes[l]++
				}
			}
			largest := 0
			for _, s := range sizes {
				if s > largest {
					largest = s
				}
			}
			fmt.Printf("eps=%g clusters=%d noise=%d largest=%d\n", eps, c.NumClusters, noise, largest)
		}
	}
	if *stable > 0 {
		c := h.ExtractStableClusters(*stable)
		sizes := map[int32]int{}
		noise := 0
		for _, l := range c.Labels {
			if l == -1 {
				noise++
			} else {
				sizes[l]++
			}
		}
		fmt.Printf("stable extraction (minClusterSize=%d): %d clusters, %d noise\n",
			*stable, c.NumClusters, noise)
	}
	if *newick != "" {
		f, err := os.Create(*newick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdbscan:", err)
			os.Exit(1)
		}
		if err := h.WriteNewick(f, nil); err != nil {
			fmt.Fprintln(os.Stderr, "hdbscan:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *newick)
	}
	if *plot != "" {
		f, err := os.Create(*plot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdbscan:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		for _, b := range h.ReachabilityPlot() {
			fmt.Fprintf(w, "%d,%.9g\n", b.Idx, b.H)
		}
		w.Flush()
		f.Close()
		fmt.Printf("wrote %s\n", *plot)
	}
}

// Command benchsuite regenerates the paper's evaluation (Section 5): every
// table and figure has a corresponding experiment that prints the same rows
// or series the paper reports, on seeded synthetic workloads.
//
// Usage:
//
//	benchsuite -exp table4 -n 20000
//	benchsuite -exp fig6 -threads 1,2,4,8
//	benchsuite -exp all
//
// Experiments: table2 table3 table4 table5 fig6 fig7 fig8 fig9 fig10
// memory pairs metrics serve daemon restart ingest overload all. See
// EXPERIMENTS.md for the mapping to the paper.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parclust"
	"parclust/internal/daemon"
	"parclust/internal/dendrogram"
	"parclust/internal/generator"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/wspd"
)

var (
	expFlag      = flag.String("exp", "all", "experiment to run (table2 table3 table4 table5 fig6 fig7 fig8 fig9 fig10 memory pairs metrics serve daemon restart ingest overload highdim all)")
	nFlag        = flag.Int("n", 10000, "points per dataset")
	minPtsFlag   = flag.Int("minpts", 10, "HDBSCAN* minPts")
	seedFlag     = flag.Int64("seed", 42, "generator seed")
	threadsFlag  = flag.String("threads", "", "comma-separated thread counts for scaling experiments (default: 1,...,NumCPU)")
	rhoFlag      = flag.Float64("rho", 0.125, "approximation parameter for fig10")
	pairBudget   = flag.Int("pairbudget", 20_000_000, "skip full-WSPD algorithms when the pair count exceeds this budget (mirrors the paper's '-' entries)")
	jsonFlag     = flag.String("json", "", "write a JSON run summary (per-experiment wall times and run metadata) to this file")
	benchfmtFlag = flag.String("benchfmt", "", "append Go benchmark-format result lines (benchstat input) to this file")
)

// jsonSummary is the machine-readable record of one benchsuite run, written
// by -json so CI can archive BENCH_*.json trajectories across commits.
type jsonSummary struct {
	N           int              `json:"n"`
	MinPts      int              `json:"minpts"`
	Seed        int64            `json:"seed"`
	NumCPU      int              `json:"numcpu"`
	GoVersion   string           `json:"go_version"`
	Threads     []int            `json:"threads"`
	Experiments []expTime        `json:"experiments"`
	Daemon      []daemonBenchRow `json:"daemon,omitempty"`
	Highdim     []highdimRow     `json:"highdim,omitempty"`
}

type expTime struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// daemonBenchRow is one (mode, clients) cell of the daemon experiment:
// throughput, tail latency, and the peak Go-heap footprint of the phase.
type daemonBenchRow struct {
	Mode     string  `json:"mode"`
	Clients  int     `json:"clients"`
	Queries  int64   `json:"queries"`
	QPS      float64 `json:"qps"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	PeakHeap uint64  `json:"peak_heap_bytes"`
}

// highdimRow is one (op, dim, dtype) cell of the highdim experiment:
// the median-of-3 wall time and, for float32 rows, the speedup over the
// float64 median of the same cell.
type highdimRow struct {
	Op      string  `json:"op"` // coredist | hdbscan | knn
	Dim     int     `json:"dim"`
	Dtype   string  `json:"dtype"`
	MedianS float64 `json:"median_s"`
	Speedup float64 `json:"speedup,omitempty"`
}

// daemonRows / benchfmtLines / highdimRows collect per-study output for
// the -json summary and the -benchfmt series file.
var (
	daemonRows    []daemonBenchRow
	benchfmtLines []string
	highdimRows   []highdimRow
)

func main() {
	flag.Parse()
	threads := parseThreads(*threadsFlag)
	fmt.Printf("# parclust benchsuite: n=%d minPts=%d seed=%d NumCPU=%d\n",
		*nFlag, *minPtsFlag, *seedFlag, runtime.NumCPU())
	exps := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		exps = []string{"table3", "table4", "table5", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "memory", "pairs", "metrics", "serve", "daemon", "restart", "ingest", "overload", "highdim"}
	}
	summary := jsonSummary{
		N:         *nFlag,
		MinPts:    *minPtsFlag,
		Seed:      *seedFlag,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Threads:   threads,
	}
	for _, e := range exps {
		name := strings.TrimSpace(e)
		start := time.Now()
		switch name {
		case "table2":
			table2(threads)
		case "table3":
			table3()
		case "table4":
			table4(threads)
		case "table5":
			table5(threads)
		case "fig6":
			fig6(threads)
		case "fig7":
			fig7(threads)
		case "fig8":
			fig8()
		case "fig9":
			fig9(threads)
		case "fig10":
			fig10(threads)
		case "memory":
			memoryStudy()
		case "pairs":
			pairStudy()
		case "metrics":
			metricStudy()
		case "serve":
			serveStudy()
		case "daemon":
			daemonStudy()
		case "restart":
			restartStudy()
		case "ingest":
			ingestStudy()
		case "overload":
			overloadStudy()
		case "highdim":
			highdimStudy()
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
			os.Exit(2)
		}
		summary.Experiments = append(summary.Experiments, expTime{Name: name, Seconds: time.Since(start).Seconds()})
	}
	summary.Daemon = daemonRows
	summary.Highdim = highdimRows
	if *benchfmtFlag != "" && len(benchfmtLines) > 0 {
		f, err := os.OpenFile(*benchfmtFlag, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open %s: %v\n", *benchfmtFlag, err)
			os.Exit(1)
		}
		for _, line := range benchfmtLines {
			fmt.Fprintln(f, line)
		}
		f.Close()
		fmt.Printf("# appended %d benchmark-format lines to %s\n", len(benchfmtLines), *benchfmtFlag)
	}
	if *jsonFlag != "" {
		buf, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal json summary: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonFlag, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote JSON summary to %s\n", *jsonFlag)
	}
}

func parseThreads(s string) []int {
	if s == "" {
		p := runtime.NumCPU()
		out := []int{1}
		for t := 2; t < p; t *= 2 {
			out = append(out, t)
		}
		if p > 1 {
			out = append(out, p)
		}
		return out
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func datasets() []generator.Dataset { return generator.PaperDatasets() }

func gen(d generator.Dataset) geometry.Points { return d.Gen(*nFlag, *seedFlag) }

// withThreads runs f under GOMAXPROCS=p and returns its wall-clock seconds.
func withThreads(p int, f func()) float64 {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// wspdTooLarge reports whether materializing the full WSPD would exceed the
// pair budget (the paper marks such runs "-": out of memory / over 3h).
func wspdTooLarge(pts geometry.Points) bool {
	t := kdtree.Build(pts, 1)
	return wspd.Count(t, wspd.Geometric{S: 2}) > *pairBudget
}

func secs(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// ---------------------------------------------------------------- Table 3

func table3() {
	fmt.Println("\n## Table 3: sequential dual-tree-Boruvka-style EMST baseline (1 thread)")
	fmt.Println("dataset | boruvka_1t_s | memogfk_1t_s | memogfk_speedup_over_boruvka")
	for _, d := range datasets() {
		pts := gen(d)
		tb := withThreads(1, func() {
			if _, err := parclust.EMSTWithStats(pts, parclust.EMSTBoruvka, nil); err != nil {
				panic(err)
			}
		})
		tm := withThreads(1, func() {
			if _, err := parclust.EMST(pts); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%s | %.3f | %.3f | %.2fx\n", d.Name, tb, tm, tb/tm)
	}
}

// ---------------------------------------------------------------- Table 4

type emstRun struct {
	algo parclust.EMSTAlgorithm
	name string
}

var emstAlgos = []emstRun{
	{parclust.EMSTNaive, "EMST-Naive"},
	{parclust.EMSTGFK, "EMST-GFK"},
	{parclust.EMSTMemoGFK, "EMST-MemoGFK"},
	{parclust.EMSTDelaunay2D, "EMST-Delaunay"},
}

func runEMST(pts geometry.Points, algo parclust.EMSTAlgorithm, p int) (float64, bool) {
	if algo == parclust.EMSTDelaunay2D && pts.Dim != 2 {
		return 0, false
	}
	if (algo == parclust.EMSTNaive || algo == parclust.EMSTGFK) && wspdTooLarge(pts) {
		return 0, false
	}
	// A fresh Index inside the timed region measures the full one-shot
	// pipeline (tree build included) through the staged engine.
	t := withThreads(p, func() {
		idx, err := parclust.NewIndex(pts, nil)
		if err == nil {
			_, err = idx.EMSTWithAlgorithm(algo)
		}
		if err != nil {
			panic(err)
		}
	})
	return t, true
}

func table4(threads []int) {
	p := threads[len(threads)-1]
	fmt.Printf("\n## Table 4: EMST running times (seconds), 1 thread vs %d threads\n", p)
	fmt.Println("dataset | " + strings.Join(algoCols(emstAlgos, p), " | "))
	for _, d := range datasets() {
		pts := gen(d)
		row := []string{d.Name}
		for _, a := range emstAlgos {
			t1, ok1 := runEMST(pts, a.algo, 1)
			tp, okp := runEMST(pts, a.algo, p)
			row = append(row, secs(t1, ok1), secs(tp, okp))
		}
		fmt.Println(strings.Join(row, " | "))
	}
}

func algoCols(algos []emstRun, p int) []string {
	var cols []string
	for _, a := range algos {
		cols = append(cols, a.name+"_1t", fmt.Sprintf("%s_%dt", a.name, p))
	}
	return cols
}

// ---------------------------------------------------------------- Table 5

var hdbAlgos = []struct {
	algo parclust.HDBSCANAlgorithm
	name string
}{
	{parclust.HDBSCANMemoGFK, "HDBSCAN*-MemoGFK"},
	{parclust.HDBSCANGanTao, "HDBSCAN*-GanTao"},
}

func runHDBSCAN(pts geometry.Points, algo parclust.HDBSCANAlgorithm, p int) float64 {
	return withThreads(p, func() {
		idx, err := parclust.NewIndex(pts, nil)
		if err == nil {
			_, err = idx.HDBSCANWithAlgorithm(*minPtsFlag, algo)
		}
		if err != nil {
			panic(err)
		}
	})
}

func table5(threads []int) {
	p := threads[len(threads)-1]
	fmt.Printf("\n## Table 5: HDBSCAN* running times (seconds, minPts=%d, incl. dendrogram), 1 thread vs %d threads\n", *minPtsFlag, p)
	fmt.Printf("dataset | MemoGFK_1t | MemoGFK_%dt | GanTao_1t | GanTao_%dt\n", p, p)
	for _, d := range datasets() {
		pts := gen(d)
		fmt.Printf("%s | %.3f | %.3f | %.3f | %.3f\n", d.Name,
			runHDBSCAN(pts, parclust.HDBSCANMemoGFK, 1),
			runHDBSCAN(pts, parclust.HDBSCANMemoGFK, p),
			runHDBSCAN(pts, parclust.HDBSCANGanTao, 1),
			runHDBSCAN(pts, parclust.HDBSCANGanTao, p))
	}
}

// ---------------------------------------------------------------- Table 2

func table2(threads []int) {
	p := threads[len(threads)-1]
	fmt.Printf("\n## Table 2: speedup over best sequential and self-relative speedup (%d threads)\n", p)
	fmt.Println("method | speedup_over_best_seq (range, avg) | self_relative (range, avg)")
	type acc struct{ overBest, selfRel []float64 }
	accs := map[string]*acc{}
	order := []string{}
	add := func(name string, best, t1, tp float64, ok bool) {
		if !ok {
			return
		}
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
			order = append(order, name)
		}
		a.overBest = append(a.overBest, best/tp)
		a.selfRel = append(a.selfRel, t1/tp)
	}
	for _, d := range datasets() {
		pts := gen(d)
		// Best sequential EMST = fastest 1-thread run among all algorithms.
		bestSeq := math.Inf(1)
		type res struct {
			t1, tp float64
			ok     bool
		}
		results := map[string]res{}
		for _, a := range emstAlgos {
			t1, ok1 := runEMST(pts, a.algo, 1)
			tp, okp := runEMST(pts, a.algo, p)
			results[a.name] = res{t1, tp, ok1 && okp}
			if ok1 && t1 < bestSeq {
				bestSeq = t1
			}
		}
		for _, a := range emstAlgos {
			r := results[a.name]
			add(a.name, bestSeq, r.t1, r.tp, r.ok)
		}
		// HDBSCAN*.
		bestSeqH := math.Inf(1)
		resultsH := map[string]res{}
		for _, a := range hdbAlgos {
			t1 := runHDBSCAN(pts, a.algo, 1)
			tp := runHDBSCAN(pts, a.algo, p)
			resultsH[a.name] = res{t1, tp, true}
			if t1 < bestSeqH {
				bestSeqH = t1
			}
		}
		for _, a := range hdbAlgos {
			r := resultsH[a.name]
			add(a.name, bestSeqH, r.t1, r.tp, r.ok)
		}
	}
	for _, name := range order {
		a := accs[name]
		fmt.Printf("%s | %.2f-%.2fx avg %.2fx | %.2f-%.2fx avg %.2fx\n", name,
			minOf(a.overBest), maxOf(a.overBest), avgOf(a.overBest),
			minOf(a.selfRel), maxOf(a.selfRel), avgOf(a.selfRel))
	}
}

func minOf(a []float64) float64 {
	v := math.Inf(1)
	for _, x := range a {
		v = math.Min(v, x)
	}
	return v
}
func maxOf(a []float64) float64 {
	v := math.Inf(-1)
	for _, x := range a {
		v = math.Max(v, x)
	}
	return v
}
func avgOf(a []float64) float64 {
	s := 0.0
	for _, x := range a {
		s += x
	}
	return s / float64(len(a))
}

// ---------------------------------------------------------------- Figures 6 & 7

func fig6(threads []int) {
	fmt.Println("\n## Figure 6: EMST speedup over best sequential vs thread count")
	fmt.Println("dataset | algorithm | " + threadCols(threads))
	for _, d := range datasets() {
		pts := gen(d)
		best := math.Inf(1)
		for _, a := range emstAlgos {
			if t1, ok := runEMST(pts, a.algo, 1); ok {
				best = math.Min(best, t1)
			}
		}
		for _, a := range emstAlgos {
			var cells []string
			usable := true
			for _, p := range threads {
				t, ok := runEMST(pts, a.algo, p)
				if !ok {
					usable = false
					break
				}
				cells = append(cells, fmt.Sprintf("%.2f", best/t))
			}
			if usable {
				fmt.Printf("%s | %s | %s\n", d.Name, a.name, strings.Join(cells, " | "))
			} else {
				fmt.Printf("%s | %s | -\n", d.Name, a.name)
			}
		}
	}
}

func fig7(threads []int) {
	fmt.Println("\n## Figure 7: HDBSCAN* speedup over best sequential vs thread count")
	fmt.Println("dataset | algorithm | " + threadCols(threads))
	for _, d := range datasets() {
		pts := gen(d)
		best := math.Inf(1)
		for _, a := range hdbAlgos {
			best = math.Min(best, runHDBSCAN(pts, a.algo, 1))
		}
		for _, a := range hdbAlgos {
			var cells []string
			for _, p := range threads {
				cells = append(cells, fmt.Sprintf("%.2f", best/runHDBSCAN(pts, a.algo, p)))
			}
			fmt.Printf("%s | %s | %s\n", d.Name, a.name, strings.Join(cells, " | "))
		}
	}
}

func threadCols(threads []int) string {
	var cols []string
	for _, p := range threads {
		cols = append(cols, fmt.Sprintf("%dT", p))
	}
	return strings.Join(cols, " | ")
}

// ---------------------------------------------------------------- Figure 8

func fig8() {
	fmt.Println("\n## Figure 8: per-phase time decomposition (all threads)")
	fmt.Println("dataset | method | phase=seconds ...")
	sel := []int{0, 4, 8, 9} // 2D-UniformFill, 2D-SS-varden, GeoLife-like, Household-like
	ds := datasets()
	for _, di := range sel {
		d := ds[di]
		pts := gen(d)
		for _, a := range emstAlgos {
			if a.algo == parclust.EMSTDelaunay2D && pts.Dim != 2 {
				continue
			}
			if (a.algo == parclust.EMSTNaive || a.algo == parclust.EMSTGFK) && wspdTooLarge(pts) {
				continue
			}
			stats := parclust.NewStats()
			if _, err := parclust.EMSTWithStats(pts, a.algo, stats); err != nil {
				panic(err)
			}
			fmt.Printf("%s | %s | %s\n", d.Name, a.name, phaseString(stats))
		}
		for _, a := range hdbAlgos {
			stats := parclust.NewStats()
			if _, err := parclust.HDBSCANWithStats(pts, *minPtsFlag, a.algo, stats); err != nil {
				panic(err)
			}
			fmt.Printf("%s | %s | %s\n", d.Name, a.name, phaseString(stats))
		}
	}
}

func phaseString(s *parclust.Stats) string {
	keys := make([]string, 0, len(s.Phases))
	for k := range s.Phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.3f", k, s.Phases[k].Seconds()))
	}
	return strings.Join(parts, " ")
}

// ---------------------------------------------------------------- Figure 9

func fig9(threads []int) {
	p := threads[len(threads)-1]
	fmt.Printf("\n## Figure 9: ordered dendrogram construction, self-relative speedup on %d threads\n", p)
	fmt.Println("dataset | variant | seq_s | par_1t_s | par_pt_s | self_relative_speedup")
	for _, d := range datasets() {
		pts := gen(d)
		emst, err := parclust.EMST(pts)
		if err != nil {
			panic(err)
		}
		h, err := parclust.HDBSCAN(pts, *minPtsFlag)
		if err != nil {
			panic(err)
		}
		for _, v := range []struct {
			name  string
			edges []parclust.Edge
		}{
			{"single-linkage", emst},
			{fmt.Sprintf("HDBSCAN*(minPts=%d)", *minPtsFlag), h.MST},
		} {
			edges := v.edges
			tseq := withThreads(1, func() { dendrogram.BuildSequential(pts.N, edges, 0) })
			t1 := withThreads(1, func() { dendrogram.BuildParallel(pts.N, edges, 0) })
			tp := withThreads(p, func() { dendrogram.BuildParallel(pts.N, edges, 0) })
			fmt.Printf("%s | %s | %.3f | %.3f | %.3f | %.2fx\n", d.Name, v.name, tseq, t1, tp, t1/tp)
		}
	}
}

// ---------------------------------------------------------------- Figure 10

func fig10(threads []int) {
	p := threads[len(threads)-1]
	fmt.Printf("\n## Figure 10: approximate OPTICS (rho=%.3f) vs exact HDBSCAN* (%d threads)\n", *rhoFlag, p)
	fmt.Println("dataset | MemoGFK_s | GanTao_s | ApproxOPTICS_s | approx/GanTao | approx/MemoGFK")
	ds := datasets()
	for _, di := range []int{9, 11} { // Household-like, CHEM-like
		d := ds[di]
		pts := gen(d)
		tm := runHDBSCAN(pts, parclust.HDBSCANMemoGFK, p)
		tg := runHDBSCAN(pts, parclust.HDBSCANGanTao, p)
		ta := withThreads(p, func() {
			if _, err := parclust.ApproxOPTICS(pts, *minPtsFlag, *rhoFlag); err != nil {
				panic(err)
			}
		})
		fmt.Printf("%s | %.3f | %.3f | %.3f | %.2fx | %.2fx\n", d.Name, tm, tg, ta, ta/tg, ta/tm)
	}
}

// ---------------------------------------------------------------- memory & pairs

func memoryStudy() {
	fmt.Println("\n## Memory study (Section 3.1.3 / 5): peak resident WSPD pairs, GFK vs MemoGFK")
	fmt.Println("dataset | gfk_peak_pairs | memogfk_peak_pairs | reduction")
	for _, d := range datasets() {
		pts := gen(d)
		if wspdTooLarge(pts) {
			fmt.Printf("%s | - | - | - (pair budget exceeded)\n", d.Name)
			continue
		}
		sf := parclust.NewStats()
		if _, err := parclust.EMSTWithStats(pts, parclust.EMSTGFK, sf); err != nil {
			panic(err)
		}
		sm := parclust.NewStats()
		if _, err := parclust.EMSTWithStats(pts, parclust.EMSTMemoGFK, sm); err != nil {
			panic(err)
		}
		red := float64(sf.PeakPairsResident) / math.Max(1, float64(sm.PeakPairsResident))
		fmt.Printf("%s | %d | %d | %.2fx\n", d.Name, sf.PeakPairsResident, sm.PeakPairsResident, red)
	}
}

// metricStudy times every EMST variant and the HDBSCAN* MemoGFK pipeline
// under every supported distance kernel — the metric x algorithm matrix.
// EMST-Delaunay is skipped off-L2; total weights are printed so runs can
// be eyeballed against the differential-test oracle expectations.
func metricStudy() {
	fmt.Println("\n## Metric x algorithm matrix: wall time (seconds) and total MST weight per kernel")
	fmt.Println("dataset | metric | algorithm | seconds | total_weight")
	ds := datasets()
	emstSel := []emstRun{
		{parclust.EMSTNaive, "EMST-Naive"},
		{parclust.EMSTGFK, "EMST-GFK"},
		{parclust.EMSTMemoGFK, "EMST-MemoGFK"},
		{parclust.EMSTWSPDBoruvka, "EMST-WSPDBoruvka"},
	}
	for _, di := range []int{0, 6} { // 2D-UniformFill, 5D-SS-varden
		d := ds[di]
		pts := gen(d)
		for _, m := range parclust.Metrics() {
			// A fresh throwaway Index inside every timed region keeps the
			// per-algorithm rows comparable (each pays its own tree build,
			// as the one-shot APIs always have); the Index amortization win
			// is measured by the dedicated serve experiment instead.
			for _, a := range emstSel {
				var edges []parclust.Edge
				secs := withThreads(runtime.NumCPU(), func() {
					idx, err := parclust.NewIndex(pts, &parclust.IndexOptions{Metric: m})
					if err == nil {
						edges, err = idx.EMSTWithAlgorithm(a.algo)
					}
					if err != nil {
						panic(err)
					}
				})
				fmt.Printf("%s | %v | %s | %.3f | %.4f\n", d.Name, m, a.name, secs, mst.TotalWeight(edges))
			}
			var h *parclust.Hierarchy
			secs := withThreads(runtime.NumCPU(), func() {
				idx, err := parclust.NewIndex(pts, &parclust.IndexOptions{Metric: m})
				if err == nil {
					h, err = idx.HDBSCAN(*minPtsFlag)
				}
				if err != nil {
					panic(err)
				}
			})
			fmt.Printf("%s | %v | HDBSCAN*-MemoGFK | %.3f | %.4f\n", d.Name, m, secs, h.TotalWeight())
		}
	}
}

// serveStudy measures query throughput on a fixed dataset under the two
// serving regimes the Index exists to separate: parameter sweeps (minPts x
// eps) answered by one shared Index versus calling the one-shot APIs in a
// loop, which rebuilds the tree and reruns the pipeline per query. The
// reported speedup pins the amortization win of the staged engine.
func serveStudy() {
	fmt.Println("\n## Serve: query throughput, shared Index vs one-shot loop (minPts x eps sweep)")
	pts := generator.SSVarden(*nFlag, 2, *seedFlag)
	minPtsList := []int{5, 10, 20}
	// Derive a meaningful eps ladder from the MST weight distribution.
	probe, err := parclust.HDBSCAN(pts, 10)
	if err != nil {
		panic(err)
	}
	ws := make([]float64, len(probe.MST))
	for i, e := range probe.MST {
		ws[i] = e.W
	}
	sort.Float64s(ws)
	quantile := func(q float64) float64 { return ws[int(q*float64(len(ws)-1))] }
	epsList := []float64{quantile(0.5), quantile(0.7), quantile(0.8), quantile(0.9), quantile(0.95)}
	queries := len(minPtsList) * len(epsList)

	tIndex := withThreads(runtime.NumCPU(), func() {
		idx, err := parclust.NewIndex(pts, nil)
		if err != nil {
			panic(err)
		}
		for _, mp := range minPtsList {
			h, err := idx.HDBSCAN(mp)
			if err != nil {
				panic(err)
			}
			for _, eps := range epsList {
				h.ClustersAt(eps)
				h.NumNoiseAt(eps)
			}
		}
		s := idx.Stats()
		fmt.Printf("index stage cache: tree %d built, core-dist %d, mst %d, dendrogram %d\n",
			s.TreeBuilds, s.CoreDistBuilds, s.MSTBuilds, s.DendrogramBuilds)
	})
	tOneShot := withThreads(runtime.NumCPU(), func() {
		for _, mp := range minPtsList {
			for _, eps := range epsList {
				h, err := parclust.HDBSCAN(pts, mp)
				if err != nil {
					panic(err)
				}
				h.ClustersAt(eps)
				h.NumNoiseAt(eps)
			}
		}
	})
	qpsIndex := float64(queries) / tIndex
	qpsOneShot := float64(queries) / tOneShot
	fmt.Printf("n=%d queries=%d (minPts %v x eps 5 cuts)\n", pts.N, queries, minPtsList)
	fmt.Printf("one-shot loop | %.3fs | %.2f queries/s\n", tOneShot, qpsOneShot)
	fmt.Printf("shared index  | %.3fs | %.2f queries/s\n", tIndex, qpsIndex)
	fmt.Printf("speedup       | %.2fx\n", qpsIndex/qpsOneShot)
}

// peakSampler tracks the peak Go heap during one bench phase by polling
// runtime.MemStats. HeapAlloc is the phase-comparable footprint proxy: OS
// RSS (VmHWM) is a process-lifetime high-water mark that never comes back
// down, so it cannot distinguish a lean phase from a fat one inside a
// single run. The absolute VmHWM is still printed once at the end of the
// study for operators who budget in RSS terms.
type peakSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startPeakSampler() *peakSampler {
	runtime.GC() // a clean baseline so the previous phase's garbage doesn't count
	s := &peakSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak.Load() {
					s.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return s
}

// Stop ends sampling and returns the observed peak heap in bytes.
func (s *peakSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// percentile returns the q-quantile of sorted latency samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// vmHWM reads the process RSS high-water mark from /proc (0 off Linux).
func vmHWM() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, _ := strconv.ParseInt(fields[0], 10, 64)
				return kb << 10
			}
		}
	}
	return 0
}

// daemonStudy measures the serving layer end to end: an in-process
// parclustd handler hosts one warm dataset, and 1/4/16 concurrent HTTP
// clients sweep HDBSCAN* cuts against it for a fixed wall-clock window, in
// both response modes — buffered JSON documents and chunked NDJSON
// streams — with full label payloads. Every query rides the memoized
// stage pipeline (warm cuts are cut-cache hits), so the comparison
// isolates the serving layer: throughput, p50/p99 latency, and the peak
// Go heap of each phase. Buffered mode materializes every response before
// the first byte (json.Encoder builds the whole document), so its peak
// grows with clients x document size; streaming holds one chunk per
// in-flight request and should show a flatter peak at 16 clients.
//
// A second section batches a full minpts x eps grid into one POST /sweep
// request and compares it against the equivalent client-side query loop.
func daemonStudy() {
	fmt.Println("\n## Daemon: buffered vs streamed serving, 1/4/16 concurrent clients on one warm dataset")
	old := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(old)

	srv, err := daemon.New(daemon.Config{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Upload the dataset.
	pts := generator.SSVarden(*nFlag, 2, *seedFlag)
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = pts.Data[i*pts.Dim : (i+1)*pts.Dim]
	}
	body, err := json.Marshal(map[string]any{"points": rows})
	if err != nil {
		panic(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/bench", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		panic(fmt.Sprintf("upload: status %d", resp.StatusCode))
	}

	// Derive a meaningful eps ladder and warm every stage the sweep
	// touches (tree, core distances, MST, dendrogram, cut structure), so
	// the measured regime is the steady serving state.
	probe, err := parclust.HDBSCAN(pts, *minPtsFlag)
	if err != nil {
		panic(err)
	}
	ws := make([]float64, len(probe.MST))
	for i, e := range probe.MST {
		ws[i] = e.W
	}
	sort.Float64s(ws)
	quantile := func(q float64) float64 { return ws[int(q*float64(len(ws)-1))] }
	epsList := []float64{quantile(0.5), quantile(0.7), quantile(0.8), quantile(0.9), quantile(0.95)}
	paths := make([]string, len(epsList))
	for i, eps := range epsList {
		paths[i] = fmt.Sprintf("/v1/datasets/bench/hdbscan?minpts=%d&eps=%g", *minPtsFlag, eps)
	}
	warm := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	for _, p := range paths {
		r, err := warm.Get(ts.URL + p)
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("warmup %s: status %d", p, r.StatusCode))
		}
	}

	const window = 1200 * time.Millisecond
	// runPhase hammers the eps ladder from `clients` concurrent keep-alive
	// connections for one wall-clock window, recording per-request latency
	// and the phase's peak heap.
	runPhase := func(mode string, clients int) daemonBenchRow {
		accept := ""
		if mode == "ndjson" {
			accept = "application/x-ndjson"
		}
		var failed atomic.Int64
		latCh := make(chan []time.Duration, clients)
		sampler := startPeakSampler()
		deadline := time.Now().Add(window)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
				defer client.CloseIdleConnections()
				var lats []time.Duration
				for i := c; time.Now().Before(deadline); i++ {
					req, err := http.NewRequest(http.MethodGet, ts.URL+paths[i%len(paths)], nil)
					if err != nil {
						panic(err)
					}
					if accept != "" {
						req.Header.Set("Accept", accept)
					}
					t0 := time.Now()
					r, err := client.Do(req)
					if err != nil {
						failed.Add(1)
						continue
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						failed.Add(1)
						continue
					}
					lats = append(lats, time.Since(t0))
				}
				latCh <- lats
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		peak := sampler.Stop()
		close(latCh)
		var all []time.Duration
		for lats := range latCh {
			all = append(all, lats...)
		}
		if failed.Load() > 0 {
			panic(fmt.Sprintf("%d daemon bench queries failed", failed.Load()))
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		row := daemonBenchRow{
			Mode:     mode,
			Clients:  clients,
			Queries:  int64(len(all)),
			QPS:      float64(len(all)) / elapsed,
			P50ms:    percentile(all, 0.50).Seconds() * 1e3,
			P99ms:    percentile(all, 0.99).Seconds() * 1e3,
			PeakHeap: peak,
		}
		benchfmtLines = append(benchfmtLines, fmt.Sprintf(
			"BenchmarkDaemonQuery/mode=%s/clients=%d %d %.0f p50-ns/op %.0f p99-ns/op %d peak-heap-bytes",
			mode, clients, row.Queries, row.P50ms*1e6, row.P99ms*1e6, row.PeakHeap))
		return row
	}

	fmt.Printf("note: queries are CPU-bound, so the concurrency speedup is bounded by NumCPU=%d\n", runtime.NumCPU())
	fmt.Println("mode | clients | queries | agg_qps | p50_ms | p99_ms | peak_heap_MiB")
	for _, mode := range []string{"buffered", "ndjson"} {
		for _, clients := range []int{1, 4, 16} {
			row := runPhase(mode, clients)
			daemonRows = append(daemonRows, row)
			fmt.Printf("%s | %d | %d | %.1f | %.3f | %.3f | %.1f\n",
				row.Mode, row.Clients, row.Queries, row.QPS, row.P50ms, row.P99ms,
				float64(row.PeakHeap)/(1<<20))
		}
	}

	// Batched grid execution: one POST /sweep runs the whole minpts x eps
	// grid against the warm Index, vs the equivalent client-side loop of
	// per-cell /hdbscan requests (both read the same memoized stages, so
	// the difference is pure per-request overhead and payload count).
	sweepMinPts := []int{*minPtsFlag, *minPtsFlag + 5, *minPtsFlag + 10}
	sweepBody, err := json.Marshal(map[string]any{"minpts": sweepMinPts, "eps": epsList})
	if err != nil {
		panic(err)
	}
	doSweep := func() time.Duration {
		t0 := time.Now()
		r, err := warm.Post(ts.URL+"/v1/datasets/bench/sweep", "application/json", bytes.NewReader(sweepBody))
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("sweep: status %d", r.StatusCode))
		}
		return time.Since(t0)
	}
	doLoop := func() time.Duration {
		t0 := time.Now()
		for _, mp := range sweepMinPts {
			for _, eps := range epsList {
				r, err := warm.Get(ts.URL + fmt.Sprintf("/v1/datasets/bench/hdbscan?minpts=%d&eps=%g&labels=false", mp, eps))
				if err != nil {
					panic(err)
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("loop cell: status %d", r.StatusCode))
				}
			}
		}
		return time.Since(t0)
	}
	cells := len(sweepMinPts) * len(epsList)
	doSweep() // cold pass builds the two extra minPts stages and fills the cut caches
	sweepWarm, loopWarm := doSweep(), doLoop()
	fmt.Printf("\nbatched grid: %dx%d cells | sweep_warm %.3fms | loop_warm %.3fms (%d requests)\n",
		len(sweepMinPts), len(epsList), sweepWarm.Seconds()*1e3, loopWarm.Seconds()*1e3, cells)
	benchfmtLines = append(benchfmtLines,
		fmt.Sprintf("BenchmarkDaemonGrid/mode=sweep/cells=%d 1 %d ns/op", cells, sweepWarm.Nanoseconds()),
		fmt.Sprintf("BenchmarkDaemonGrid/mode=loop/cells=%d 1 %d ns/op", cells, loopWarm.Nanoseconds()))

	// The stage counters prove the whole run was served from one pipeline
	// build per minPts (plus any cold requests coalesced behind it), with
	// warm cuts answered from the cut-result cache.
	var stats struct {
		Datasets map[string]struct {
			Counters struct {
				TreeBuilds     int64 `json:"tree_builds"`
				MSTBuilds      int64 `json:"mst_builds"`
				DendrogramHits int64 `json:"dendrogram_hits"`
				CutBuilds      int64 `json:"cut_builds"`
				CutHits        int64 `json:"cut_hits"`
				CoalescedTotal int64 `json:"coalesced_total"`
			} `json:"counters"`
		} `json:"datasets"`
	}
	r, err := warm.Get(ts.URL + "/v1/stats")
	if err != nil {
		panic(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		panic(err)
	}
	r.Body.Close()
	c := stats.Datasets["bench"].Counters
	fmt.Printf("stage counters: tree_builds=%d mst_builds=%d dendrogram_hits=%d cut_builds=%d cut_hits=%d coalesced=%d\n",
		c.TreeBuilds, c.MSTBuilds, c.DendrogramHits, c.CutBuilds, c.CutHits, c.CoalescedTotal)
	if hwm := vmHWM(); hwm > 0 {
		fmt.Printf("process VmHWM (lifetime RSS high-water): %.1f MiB\n", float64(hwm)/(1<<20))
	}
}

// overloadStudy drives 64 concurrent clients into a deliberately
// capacity-limited daemon — 2 cold-build slots, a per-tenant rate limit,
// and a query deadline — and reports how the admission layer holds up:
// served vs shed (by cause) with the p50/p99 of the served requests. One
// dataset is pre-warmed (its fixed query is a cut-cache hit); the rest are
// cold, and clients keep rotating minPts so cold builds keep arriving
// faster than the gate admits them. The run ends with a goroutine settle
// check: shedding 429/503/504 under saturation must leak nothing.
func overloadStudy() {
	fmt.Println("\n## Overload: 64 clients vs a capacity-limited daemon (2 cold-build slots, per-tenant rate limit, query deadline)")
	srv, err := daemon.New(daemon.Config{
		MaxColdBuilds: 2,
		QueryTimeout:  2 * time.Second,
		RateQPS:       200,
		RateBurst:     20,
	})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := *nFlag
	if n > 4000 {
		n = 4000 // overload measures the admission layer, not pipeline scale
	}
	const numDatasets = 8
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	for i := 0; i < numDatasets; i++ {
		pts := generator.SSVarden(n, 2, *seedFlag+int64(i))
		rows := make([][]float64, pts.N)
		for j := 0; j < pts.N; j++ {
			rows[j] = pts.Data[j*pts.Dim : (j+1)*pts.Dim]
		}
		body, err := json.Marshal(map[string]any{"points": rows})
		if err != nil {
			panic(err)
		}
		req, err := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/v1/datasets/ov%d", ts.URL, i), bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		req.Header.Set("Content-Type", "application/json")
		r, err := client.Do(req)
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusCreated {
			panic(fmt.Sprintf("upload ov%d: status %d", i, r.StatusCode))
		}
	}
	// Pre-warm ov0 so the fixed warm query is a pure cut-cache hit.
	warmPath := fmt.Sprintf("/v1/datasets/ov0/hdbscan?minpts=%d&eps=0.5&labels=false", *minPtsFlag)
	r, err := client.Get(ts.URL + warmPath)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("warmup: status %d", r.StatusCode))
	}
	client.CloseIdleConnections()
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	const clients = 64
	window := 1500 * time.Millisecond
	var served, shed429, shed503, shed504, failed atomic.Int64
	latCh := make(chan []time.Duration, clients)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
			defer cl.CloseIdleConnections()
			var lats []time.Duration
			for i := 0; time.Now().Before(deadline); i++ {
				// Even clients hammer the warm cut; odd clients rotate
				// minPts across the cold datasets, demanding fresh builds.
				path := warmPath
				if c%2 == 1 {
					path = fmt.Sprintf("/v1/datasets/ov%d/hdbscan?minpts=%d&eps=0.5&labels=false",
						1+(c/2+i)%(numDatasets-1), *minPtsFlag+i%5)
				}
				req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
				if err != nil {
					panic(err)
				}
				req.Header.Set("X-Tenant", fmt.Sprintf("t%d", c%8))
				t0 := time.Now()
				resp, err := cl.Do(req)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
					lats = append(lats, time.Since(t0))
				case http.StatusTooManyRequests:
					shed429.Add(1)
					time.Sleep(5 * time.Millisecond) // honor the backoff
				case http.StatusServiceUnavailable:
					shed503.Add(1)
					time.Sleep(5 * time.Millisecond)
				case http.StatusGatewayTimeout:
					shed504.Add(1)
				default:
					failed.Add(1)
				}
			}
			latCh <- lats
		}(c)
	}
	wg.Wait()
	close(latCh)
	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}
	if failed.Load() > 0 {
		panic(fmt.Sprintf("%d overload queries failed outright (not shed)", failed.Load()))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := percentile(all, 0.50).Seconds() * 1e3
	p99 := percentile(all, 0.99).Seconds() * 1e3
	fmt.Println("clients | served | shed_429 | shed_503 | shed_504 | p50_ms | p99_ms")
	fmt.Printf("%d | %d | %d | %d | %d | %.3f | %.3f\n",
		clients, served.Load(), shed429.Load(), shed503.Load(), shed504.Load(), p50, p99)
	benchfmtLines = append(benchfmtLines, fmt.Sprintf(
		"BenchmarkDaemonOverload/clients=%d %d %.0f p50-ns/op %.0f p99-ns/op %d shed",
		clients, served.Load(), p50*1e6, p99*1e6,
		shed429.Load()+shed503.Load()+shed504.Load()))

	// Goroutine settle check: after the storm, everything the admission
	// layer spawned (flight watchers, timers, handlers) must be gone.
	client.CloseIdleConnections()
	settleDeadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			fmt.Printf("goroutine settle: baseline=%d settled=%d (no leak)\n", baseline, now)
			break
		}
		if time.Now().After(settleDeadline) {
			panic(fmt.Sprintf("goroutine leak after overload: baseline=%d now=%d", baseline, now))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// restartStudy measures what the persistent stage store buys across a
// daemon restart: building the full pipeline from raw points (cold) vs
// writing the warm snapshot once vs reloading it and answering the first
// query. The reload path must produce identical labels with zero stage
// rebuilds — the speedup column is exactly the warm-restart win.
func restartStudy() {
	fmt.Println("\n## Restart: snapshot load vs cold stage rebuild (tree + core + MST + dendrogram)")
	fmt.Println("n | cold_build_ms | snap_write_ms | snap_MiB | snap_load_ms | load_speedup")
	for _, n := range []int{10_000, 100_000} {
		pts := generator.SSVarden(n, 2, *seedFlag)
		minPts := *minPtsFlag

		coldStart := time.Now()
		ix, err := parclust.NewIndex(pts, nil)
		if err != nil {
			panic(err)
		}
		hier, err := ix.HDBSCAN(minPts)
		if err != nil {
			panic(err)
		}
		if _, err := ix.EMST(); err != nil {
			panic(err)
		}
		want := hier.ExtractStableClusters(minPts)
		cold := time.Since(coldStart)

		var snap bytes.Buffer
		writeStart := time.Now()
		if err := ix.WriteSnapshot(&snap); err != nil {
			panic(err)
		}
		write := time.Since(writeStart)

		loadStart := time.Now()
		back, err := parclust.ReadSnapshot(bytes.NewReader(snap.Bytes()))
		if err != nil {
			panic(err)
		}
		hier2, err := back.HDBSCAN(minPts)
		if err != nil {
			panic(err)
		}
		got := hier2.ExtractStableClusters(minPts)
		load := time.Since(loadStart)

		// The reload is only a win if it is also correct: identical labels,
		// nothing rebuilt.
		if got.NumClusters != want.NumClusters {
			panic(fmt.Sprintf("restart n=%d: %d clusters after reload, want %d", n, got.NumClusters, want.NumClusters))
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				panic(fmt.Sprintf("restart n=%d: label %d differs after reload", n, i))
			}
		}
		if s := back.Stats(); s.TreeBuilds+s.CoreDistBuilds+s.MSTBuilds+s.DendrogramBuilds != 0 {
			panic(fmt.Sprintf("restart n=%d: reload rebuilt stages: %+v", n, s))
		}

		fmt.Printf("%d | %.1f | %.1f | %.1f | %.1f | %.1fx\n",
			n, cold.Seconds()*1e3, write.Seconds()*1e3,
			float64(snap.Len())/(1<<20), load.Seconds()*1e3,
			cold.Seconds()/load.Seconds())
		benchfmtLines = append(benchfmtLines,
			fmt.Sprintf("BenchmarkRestart/phase=cold-build/n=%d 1 %d ns/op", n, cold.Nanoseconds()),
			fmt.Sprintf("BenchmarkRestart/phase=snapshot-write/n=%d 1 %d ns/op %d snapshot-bytes", n, write.Nanoseconds(), snap.Len()),
			fmt.Sprintf("BenchmarkRestart/phase=snapshot-load/n=%d 1 %d ns/op", n, load.Nanoseconds()))
	}
}

func pairStudy() {
	fmt.Println("\n## WSPD pair counts (Section 3.2.2): geometric vs new disjunctive separation")
	fmt.Println("dataset | geometric_pairs | mutual_pairs | reduction")
	for _, d := range datasets() {
		pts := gen(d)
		t := kdtree.Build(pts, 1)
		cd := t.CoreDistances(*minPtsFlag)
		t.AnnotateCoreDists(cd)
		geo := wspd.Count(t, wspd.Geometric{S: 2})
		mu := wspd.Count(t, wspd.MutualUnreachable{})
		fmt.Printf("%s | %d | %d | %.2fx\n", d.Name, geo, mu, float64(geo)/math.Max(1, float64(mu)))
	}
}

// ---------------------------------------------------------------- Highdim

// highdimMedian returns the median of a small sample (destructively sorts).
func highdimMedian(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// mstWeight sums the edge weights of an MST.
func mstWeight(edges []parclust.Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.W
	}
	return s
}

// highdimStudy measures the float32 SoA leaf-scan fast path against the
// float64 default on unit-sphere embedding workloads at dim 16 and 128:
// core-distance construction (kd-tree build + all-points kNN), end-to-end
// HDBSCAN* on a fresh Index (tree + core + MST + dendrogram), and warm
// per-query kNN. Each cell is the median of 3 fresh Index builds; every
// rep also lands in the -benchfmt series so benchstat computes its own
// medians. The float32 rows additionally report the relative MST-weight
// divergence from the float64 run — the precision cost of the speedup.
func highdimStudy() {
	fmt.Println("\n## Highdim: float32 SoA kernels vs float64 (embed workload, L2)")
	fmt.Printf("dim | dtype | coredist_ms | hdbscan_ms | knn_us/q | coredist_speedup | hdbscan_speedup | knn_speedup | mst_rel_err\n")
	const reps = 3
	for _, dim := range []int{16, 128} {
		pts := generator.Embed(*nFlag, dim, 16, *seedFlag)
		nq := *nFlag
		if nq > 2000 {
			nq = 2000
		}
		base := map[string]float64{} // float64 medians, keyed by op
		var baseMST float64
		for _, dtype := range []string{"float64", "float32"} {
			var coreS, hdbS, knnS []float64 // seconds (knn: per query)
			var mstW float64
			for rep := 0; rep < reps; rep++ {
				idx, err := parclust.NewIndex(pts, &parclust.IndexOptions{Float32: dtype == "float32"})
				if err != nil {
					panic(err)
				}
				start := time.Now()
				if _, err := idx.CoreDistances(*minPtsFlag); err != nil {
					panic(err)
				}
				core := time.Since(start)

				// End-to-end on a second fresh Index so the timed region is
				// the whole pipeline (tree + core + MST + dendrogram), not
				// just the stages left unmemoized by the core-distance run.
				idx2, err := parclust.NewIndex(pts, &parclust.IndexOptions{Float32: dtype == "float32"})
				if err != nil {
					panic(err)
				}
				start = time.Now()
				h, err := idx2.HDBSCAN(*minPtsFlag)
				if err != nil {
					panic(err)
				}
				hdb := time.Since(start)
				mstW = mstWeight(h.MST)

				start = time.Now()
				for q := 0; q < nq; q++ {
					if _, err := idx.KNN(int32(q), 10); err != nil {
						panic(err)
					}
				}
				knn := time.Since(start)

				coreS = append(coreS, core.Seconds())
				hdbS = append(hdbS, hdb.Seconds())
				knnS = append(knnS, knn.Seconds()/float64(nq))
				benchfmtLines = append(benchfmtLines,
					fmt.Sprintf("BenchmarkHighdim/op=coredist/dim=%d/dtype=%s 1 %d ns/op", dim, dtype, core.Nanoseconds()),
					fmt.Sprintf("BenchmarkHighdim/op=hdbscan/dim=%d/dtype=%s 1 %d ns/op", dim, dtype, hdb.Nanoseconds()),
					fmt.Sprintf("BenchmarkHighdim/op=knn/dim=%d/dtype=%s %d %d ns/op", dim, dtype, nq, knn.Nanoseconds()/int64(nq)))
			}
			med := map[string]float64{
				"coredist": highdimMedian(coreS),
				"hdbscan":  highdimMedian(hdbS),
				"knn":      highdimMedian(knnS),
			}
			speed := func(op string) float64 {
				if dtype == "float64" {
					return 0
				}
				return base[op] / med[op]
			}
			for _, op := range []string{"coredist", "hdbscan", "knn"} {
				highdimRows = append(highdimRows, highdimRow{
					Op: op, Dim: dim, Dtype: dtype, MedianS: med[op], Speedup: speed(op),
				})
			}
			if dtype == "float64" {
				base = med
				baseMST = mstW
				fmt.Printf("%d | %s | %.1f | %.1f | %.1f | - | - | - | -\n",
					dim, dtype, med["coredist"]*1e3, med["hdbscan"]*1e3, med["knn"]*1e6)
			} else {
				relErr := math.Abs(mstW-baseMST) / math.Max(baseMST, 1e-300)
				fmt.Printf("%d | %s | %.1f | %.1f | %.1f | %.2fx | %.2fx | %.2fx | %.2e\n",
					dim, dtype, med["coredist"]*1e3, med["hdbscan"]*1e3, med["knn"]*1e6,
					speed("coredist"), speed("hdbscan"), speed("knn"), relErr)
			}
		}
	}
}

// ---------------------------------------------------------------- Ingest

// ingestStudy measures the incremental-update contract: absorbing a stream
// of insert batches through Index.Insert (overlay + amortized compaction)
// versus rebuilding a fresh Index per batch, with one warm k-NN query after
// every batch in both modes so each must serve queries over the full set it
// has absorbed. The amortized per-insert cost of the incremental mode must
// be at least 10x cheaper than rebuild-per-batch at n >= 10k — the
// rebuild-amortization acceptance bar — or the study panics.
func ingestStudy() {
	fmt.Println("\n## Ingest: incremental Insert vs rebuild-per-batch (amortized per-insert cost)")
	fmt.Println("n | batches | batch_rows | incremental_us_per_insert | rebuild_us_per_insert | speedup")
	for _, n := range []int{10_000, 100_000} {
		base := generator.SSVarden(n, 2, *seedFlag)
		const batches = 50
		batchRows := n / 100
		stream := generator.SSVarden(batches*batchRows, 2, *seedFlag+1)
		batch := func(i int) parclust.Points {
			lo := i * batchRows * stream.Dim
			hi := (i + 1) * batchRows * stream.Dim
			return parclust.Points{Data: stream.Data[lo:hi], N: batchRows, Dim: stream.Dim}
		}
		totalInserts := batches * batchRows

		// Incremental: one live Index absorbs every batch; the final
		// Compact is charged to this mode so the timing covers the whole
		// amortization cycle, not just the cheap overlay appends.
		incIdx, err := parclust.NewIndex(base, nil)
		if err != nil {
			panic(err)
		}
		if _, err := incIdx.KNN(0, 8); err != nil { // build the base tree outside the timed loop, as rebuild mode gets base for free too
			panic(err)
		}
		incStart := time.Now()
		for i := 0; i < batches; i++ {
			if _, err := incIdx.Insert(batch(i)); err != nil {
				panic(err)
			}
			if _, err := incIdx.KNN(0, 8); err != nil {
				panic(err)
			}
		}
		if err := incIdx.Compact(); err != nil {
			panic(err)
		}
		inc := time.Since(incStart)

		// Rebuild-per-batch: the only way to "insert" without the dynamic
		// layer — append rows and build a fresh Index every batch.
		all := append([]float64(nil), base.Data...)
		var reb time.Duration
		for i := 0; i < batches; i++ {
			b := batch(i)
			start := time.Now()
			all = append(all, b.Data...)
			rebIdx, err := parclust.NewIndex(parclust.Points{Data: all, N: len(all) / 2, Dim: 2}, nil)
			if err != nil {
				panic(err)
			}
			if _, err := rebIdx.KNN(0, 8); err != nil {
				panic(err)
			}
			reb += time.Since(start)
		}

		incPer := inc.Nanoseconds() / int64(totalInserts)
		rebPer := reb.Nanoseconds() / int64(totalInserts)
		speedup := float64(rebPer) / float64(incPer)
		fmt.Printf("%d | %d | %d | %.1f | %.1f | %.1fx\n",
			n, batches, batchRows, float64(incPer)/1e3, float64(rebPer)/1e3, speedup)
		benchfmtLines = append(benchfmtLines,
			fmt.Sprintf("BenchmarkIngest/mode=incremental/n=%d 1 %d ns/op", n, incPer),
			fmt.Sprintf("BenchmarkIngest/mode=rebuild/n=%d 1 %d ns/op", n, rebPer))
		if n >= 100_000 && speedup < 10 {
			panic(fmt.Sprintf("ingest n=%d: incremental per-insert only %.1fx cheaper than rebuild-per-batch, want >= 10x", n, speedup))
		}

		// The speed means nothing if the absorbed stream is wrong: the
		// compacted Index must match a fresh build over base+stream.
		wantIdx, err := parclust.NewIndex(parclust.Points{Data: all, N: len(all) / 2, Dim: 2}, nil)
		if err != nil {
			panic(err)
		}
		got, err := incIdx.KNN(0, 8)
		if err != nil {
			panic(err)
		}
		want, err := wantIdx.KNN(0, 8)
		if err != nil {
			panic(err)
		}
		for i := range want {
			if got[i] != want[i] {
				panic(fmt.Sprintf("ingest n=%d: KNN diverges from fresh build after stream", n))
			}
		}
	}
}

// Command emst computes a Euclidean minimum spanning tree of a point set
// loaded from CSV (or generated synthetically) and reports the tree weight,
// timing, and optional per-phase decomposition.
//
// Usage:
//
//	emst -input points.csv -algo memogfk
//	emst -gen varden -n 100000 -dim 3 -algo memogfk -phases
//	emst -gen uniform -n 50000 -dim 2 -algo delaunay -out tree.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"parclust"
	"parclust/internal/dataio"
	"parclust/internal/mst"
)

func main() {
	var (
		input   = flag.String("input", "", "CSV file of points (one point per line)")
		genKind = flag.String("gen", "uniform", "synthetic generator when -input is empty: uniform | varden | mixture")
		n       = flag.Int("n", 100000, "number of generated points")
		dim     = flag.Int("dim", 2, "dimension of generated points")
		seed    = flag.Int64("seed", 42, "generator seed")
		algo    = flag.String("algo", "memogfk", "algorithm: memogfk | gfk | naive | boruvka | delaunay")
		metricF = flag.String("metric", "l2", "distance kernel: l2 | sql2 | l1 | linf | angular (delaunay is l2-only)")
		out     = flag.String("out", "", "write MST edges (u,v,w per line) to this file")
		phases  = flag.Bool("phases", false, "print per-phase timing decomposition")
		threads = flag.Int("threads", 0, "GOMAXPROCS override (0 = all cores)")
	)
	flag.Parse()
	if *threads > 0 {
		runtime.GOMAXPROCS(*threads)
	}
	pts, err := dataio.LoadOrGenerate(*input, *genKind, *n, *dim, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emst:", err)
		os.Exit(1)
	}
	var a parclust.EMSTAlgorithm
	switch *algo {
	case "memogfk":
		a = parclust.EMSTMemoGFK
	case "gfk":
		a = parclust.EMSTGFK
	case "naive":
		a = parclust.EMSTNaive
	case "boruvka":
		a = parclust.EMSTBoruvka
	case "delaunay":
		a = parclust.EMSTDelaunay2D
	default:
		fmt.Fprintf(os.Stderr, "emst: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	m, err := parclust.ParseMetric(*metricF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emst:", err)
		os.Exit(2)
	}
	stats := parclust.NewStats()
	start := time.Now()
	edges, err := parclust.EMSTMetricWithStats(pts, a, m, stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emst:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("algorithm=%v metric=%v n=%d dim=%d threads=%d\n", a, m, pts.N, pts.Dim, runtime.GOMAXPROCS(0))
	fmt.Printf("edges=%d total_weight=%.6f time=%.3fs\n", len(edges), mst.TotalWeight(edges), elapsed.Seconds())
	if *phases {
		for name, d := range stats.Phases {
			fmt.Printf("phase %-12s %.3fs\n", name, d.Seconds())
		}
		fmt.Printf("pairs_materialized=%d peak_resident=%d bccp=%d rounds=%d\n",
			stats.PairsMaterialized, stats.PeakPairsResident, stats.BCCPComputed, stats.Rounds)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "emst:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		for _, e := range edges {
			fmt.Fprintf(w, "%d,%d,%.9g\n", e.U, e.V, e.W)
		}
		w.Flush()
		f.Close()
		fmt.Printf("wrote %s\n", *out)
	}
}

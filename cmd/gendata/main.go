// Command gendata writes the paper's synthetic workloads (and the seeded
// substitutes for its real data sets) to CSV files for use with the other
// tools or external systems.
//
// Usage:
//
//	gendata -kind varden -n 1000000 -dim 3 -out varden3d.csv
//	gendata -dist embed -n 100000 -dim 128 -out embed128.csv
//	gendata -paper -n 100000 -outdir data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parclust/internal/dataio"
	"parclust/internal/generator"
	"parclust/internal/geometry"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "generator: uniform | varden | mixture | geolife | embed")
		dist     = flag.String("dist", "", "alias for -kind (takes precedence when set)")
		n        = flag.Int("n", 100000, "number of points")
		dim      = flag.Int("dim", 2, "dimension (embed: 2..512)")
		clusters = flag.Int("clusters", 16, "direction clusters for the embed generator")
		seed     = flag.Int64("seed", 42, "seed")
		out      = flag.String("out", "", "output CSV path")
		paper    = flag.Bool("paper", false, "generate all twelve paper datasets into -outdir")
		outdir   = flag.String("outdir", "data", "output directory for -paper")
	)
	flag.Parse()
	if *dist != "" {
		*kind = *dist
	}
	if *paper {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gendata:", err)
			os.Exit(1)
		}
		for _, d := range generator.PaperDatasets() {
			pts := d.Gen(*n, *seed)
			path := filepath.Join(*outdir, d.Name+".csv")
			if err := dataio.WriteCSV(path, pts); err != nil {
				fmt.Fprintln(os.Stderr, "gendata:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d points, %dD)\n", path, pts.N, pts.Dim)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gendata: -out is required (or use -paper)")
		os.Exit(2)
	}
	var pts = geometry.Points{}
	var err error
	if *kind == "embed" {
		// The embed generator takes an explicit cluster count; the other
		// kinds go through the shared dataio switch.
		if *dim < 2 || *dim > generator.EmbedMaxDim {
			fmt.Fprintf(os.Stderr, "gendata: embed needs 2 <= -dim <= %d, got %d\n", generator.EmbedMaxDim, *dim)
			os.Exit(2)
		}
		pts = generator.Embed(*n, *dim, *clusters, *seed)
	} else {
		pts, err = dataio.LoadOrGenerate("", *kind, *n, *dim, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	if err := dataio.WriteCSV(*out, pts); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d points, %dD)\n", *out, pts.N, pts.Dim)
}

// Command gendata writes the paper's synthetic workloads (and the seeded
// substitutes for its real data sets) to CSV files for use with the other
// tools or external systems.
//
// Usage:
//
//	gendata -kind varden -n 1000000 -dim 3 -out varden3d.csv
//	gendata -paper -n 100000 -outdir data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parclust/internal/dataio"
	"parclust/internal/generator"
)

func main() {
	var (
		kind   = flag.String("kind", "uniform", "generator: uniform | varden | mixture | geolife")
		n      = flag.Int("n", 100000, "number of points")
		dim    = flag.Int("dim", 2, "dimension")
		seed   = flag.Int64("seed", 42, "seed")
		out    = flag.String("out", "", "output CSV path")
		paper  = flag.Bool("paper", false, "generate all twelve paper datasets into -outdir")
		outdir = flag.String("outdir", "data", "output directory for -paper")
	)
	flag.Parse()
	if *paper {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gendata:", err)
			os.Exit(1)
		}
		for _, d := range generator.PaperDatasets() {
			pts := d.Gen(*n, *seed)
			path := filepath.Join(*outdir, d.Name+".csv")
			if err := dataio.WriteCSV(path, pts); err != nil {
				fmt.Fprintln(os.Stderr, "gendata:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d points, %dD)\n", path, pts.N, pts.Dim)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gendata: -out is required (or use -paper)")
		os.Exit(2)
	}
	pts, err := dataio.LoadOrGenerate("", *kind, *n, *dim, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	if err := dataio.WriteCSV(*out, pts); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d points, %dD)\n", *out, pts.N, pts.Dim)
}

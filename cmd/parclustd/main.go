// Command parclustd serves clustering queries over HTTP: upload named
// datasets, then answer HDBSCAN*/DBSCAN/OPTICS/EMST/k-NN/range queries
// from each dataset's memoized stage pipeline. Datasets live in a sharded
// LRU registry under a -max-bytes admission budget; concurrent cold
// queries for the same stage coalesce into a single build.
//
// Usage:
//
//	parclustd -addr :8650 -max-bytes $((1<<30))
//
// Upload and query:
//
//	curl -X PUT localhost:8650/v1/datasets/demo -H 'Content-Type: application/json' \
//	     -d '{"points": [[0,0],[0,1],[1,0],[9,9],[9,8],[8,9]]}'
//	curl 'localhost:8650/v1/datasets/demo/hdbscan?minpts=2&eps=1.5'
//	curl 'localhost:8650/v1/stats'
//
// With -data-dir the daemon keeps a persistent stage store: uploads and
// memory-budget evictions write versioned, checksummed snapshots there
// (see internal/store), and a restarted daemon lazily reloads them on
// first query, serving byte-identical responses with zero stage rebuilds.
//
// Overload protection is opt-in per mechanism: -query-timeout bounds one
// query (504 on expiry, its cold build cooperatively aborted),
// -rate-qps/-rate-burst rate-limit per tenant (429), -max-cold-builds
// bounds concurrent cold stage builds (503 while warm queries keep
// answering), and -tenant-max-bytes caps one tenant's resident bytes
// (507). Every shed response carries Retry-After.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, then
// in-flight queries get -drain to finish, then every resident dataset is
// persisted (with -data-dir) so the next start serves them warm.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parclust/internal/daemon"
)

var (
	addrFlag       = flag.String("addr", ":8650", "listen address")
	maxBytesFlag   = flag.Int64("max-bytes", 1<<30, "dataset registry memory budget in bytes (0 = unlimited): uploads are admitted against Index.ApproxBytes estimates, evicting idle datasets LRU-first, and refused with 507 when everything resident is pinned by in-flight queries")
	shardsFlag     = flag.Int("shards", 16, "registry shard count (rounded up to a power of two)")
	maxUploadFlag  = flag.Int64("max-upload-bytes", 1<<30, "largest accepted upload request body in bytes")
	sweepCellsFlag = flag.Int("sweep-max-cells", 10000, "largest minpts x eps grid one POST /v1/datasets/{name}/sweep request may ask for")
	drainFlag      = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight queries")
	dataDirFlag    = flag.String("data-dir", "", "snapshot directory for the persistent stage store (empty = in-memory only): uploads and shutdown persist datasets there, restarts reload them lazily with zero stage rebuilds")
	spillFlag      = flag.Bool("spill", true, "with -data-dir, write a warm snapshot when the memory budget evicts a dataset, so its computed stages survive the eviction")

	queryTimeoutFlag  = flag.Duration("query-timeout", 0, "deadline for one dataset query including any cold stage builds it triggers (0 = unlimited): an expired query answers 504 and its cold build is cooperatively aborted")
	rateQPSFlag       = flag.Float64("rate-qps", 0, "per-tenant request rate limit in requests/second (0 = unlimited): tenants are the X-Tenant header or the remote host, excess requests answer 429 with Retry-After")
	rateBurstFlag     = flag.Int("rate-burst", 0, "token-bucket burst size for -rate-qps (0 = ceil(rate-qps))")
	maxColdBuildsFlag = flag.Int("max-cold-builds", 0, "concurrently admitted cold stage builds across all datasets (0 = unlimited): excess cold builds answer 503 with Retry-After while warm queries keep answering")
	tenantBytesFlag   = flag.Int64("tenant-max-bytes", 0, "per-tenant resident dataset byte quota (0 = unlimited): an upload over quota answers 507 with Retry-After")
)

func main() {
	flag.Parse()
	srv, err := daemon.New(daemon.Config{
		MaxBytes:       *maxBytesFlag,
		Shards:         *shardsFlag,
		MaxUploadBytes: *maxUploadFlag,
		MaxSweepCells:  *sweepCellsFlag,
		DataDir:        *dataDirFlag,
		Spill:          *spillFlag && *dataDirFlag != "",
		QueryTimeout:   *queryTimeoutFlag,
		RateQPS:        *rateQPSFlag,
		RateBurst:      *rateBurstFlag,
		MaxColdBuilds:  *maxColdBuildsFlag,
		TenantMaxBytes: *tenantBytesFlag,
	})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	hs := &http.Server{
		Addr:              *addrFlag,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if *dataDirFlag != "" {
		log.Printf("parclustd listening on %s (max-bytes=%d, shards=%d, data-dir=%s, spill=%v)",
			*addrFlag, *maxBytesFlag, *shardsFlag, *dataDirFlag, *spillFlag)
	} else {
		log.Printf("parclustd listening on %s (max-bytes=%d, shards=%d)", *addrFlag, *maxBytesFlag, *shardsFlag)
	}

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
	}

	log.Printf("shutting down, draining in-flight queries for up to %s", *drainFlag)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete, closing: %v", err)
		hs.Close()
	}
	if *dataDirFlag != "" {
		// Persist after the drain so the snapshots include every stage the
		// final queries memoized; the next start serves them warm.
		n, err := srv.PersistAll()
		if err != nil {
			log.Printf("persist on shutdown: %v", err)
		}
		log.Printf("persisted %d dataset snapshot(s) to %s", n, *dataDirFlag)
	}
	log.Printf("parclustd stopped")
}

package parclust

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// mutModel mirrors the live point set of a mutated Index with the raw
// (pre-normalization) input rows in ascending external-id order — exactly
// the row order a compaction uses, so points() is the input an equivalent
// fresh Index would be built from.
type mutModel struct {
	dim  int
	ids  []int64
	rows [][]float64
}

func (m *mutModel) insert(t *testing.T, ids []int64, rows Points) {
	t.Helper()
	if len(ids) != rows.N {
		t.Fatalf("Insert returned %d ids for %d rows", len(ids), rows.N)
	}
	for i, id := range ids {
		if len(m.ids) > 0 && id <= m.ids[len(m.ids)-1] {
			t.Fatalf("Insert id %d not monotonic (last live %d)", id, m.ids[len(m.ids)-1])
		}
		m.ids = append(m.ids, id)
		m.rows = append(m.rows, append([]float64(nil), rows.Data[i*rows.Dim:(i+1)*rows.Dim]...))
	}
}

func (m *mutModel) remove(ids []int64) {
	drop := make(map[int64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	keepIDs := m.ids[:0]
	keepRows := m.rows[:0]
	for i, id := range m.ids {
		if !drop[id] {
			keepIDs = append(keepIDs, id)
			keepRows = append(keepRows, m.rows[i])
		}
	}
	m.ids = keepIDs
	m.rows = keepRows
}

func (m *mutModel) points() Points {
	data := make([]float64, 0, len(m.rows)*m.dim)
	for _, r := range m.rows {
		data = append(data, r...)
	}
	return Points{Data: data, N: len(m.rows), Dim: m.dim}
}

// pick samples k distinct live external ids.
func (m *mutModel) pick(rng *rand.Rand, k int) []int64 {
	if k > len(m.ids) {
		k = len(m.ids)
	}
	perm := rng.Perm(len(m.ids))[:k]
	out := make([]int64, k)
	for i, p := range perm {
		out[i] = m.ids[p]
	}
	return out
}

func randRows(rng *rand.Rand, n, dim int) Points {
	data := make([]float64, n*dim)
	for i := range data {
		data[i] = rng.Float64()*2 - 0.5
	}
	return Points{Data: data, N: n, Dim: dim}
}

// assertMutationOracle checks that idx — after an arbitrary mutation
// sequence — answers byte-identically to a fresh Index built over the
// equivalent surviving rows, across every query family.
func assertMutationOracle(t *testing.T, idx *Index, model *mutModel, opts *IndexOptions, rng *rand.Rand) {
	t.Helper()
	fresh, err := NewIndex(model.points(), opts)
	if err != nil {
		t.Fatalf("fresh build: %v", err)
	}
	n := fresh.N()
	if got := idx.N(); got != n {
		t.Fatalf("live N = %d, fresh N = %d", got, n)
	}
	if got := idx.ExternalIDs(); !reflect.DeepEqual(got, model.ids) && !(len(got) == 0 && len(model.ids) == 0) {
		t.Fatalf("ExternalIDs = %v, want %v", got, model.ids)
	}
	if n == 0 {
		return
	}

	minPts := 5
	if minPts > n {
		minPts = n
	}
	cdLive, err := idx.CoreDistances(minPts)
	if err != nil {
		t.Fatalf("live CoreDistances: %v", err)
	}
	cdFresh, err := fresh.CoreDistances(minPts)
	if err != nil {
		t.Fatalf("fresh CoreDistances: %v", err)
	}
	if !reflect.DeepEqual(cdLive, cdFresh) {
		t.Fatalf("core distances diverge from fresh build (minPts=%d)", minPts)
	}

	if n > 1 {
		emstLive, err := idx.EMST()
		if err != nil {
			t.Fatalf("live EMST: %v", err)
		}
		emstFresh, err := fresh.EMST()
		if err != nil {
			t.Fatalf("fresh EMST: %v", err)
		}
		if !reflect.DeepEqual(emstLive, emstFresh) {
			t.Fatalf("EMST diverges from fresh build")
		}

		hLive, err := idx.HDBSCAN(minPts)
		if err != nil {
			t.Fatalf("live HDBSCAN: %v", err)
		}
		hFresh, err := fresh.HDBSCAN(minPts)
		if err != nil {
			t.Fatalf("fresh HDBSCAN: %v", err)
		}
		if !reflect.DeepEqual(hLive.MST, hFresh.MST) {
			t.Fatalf("HDBSCAN MST diverges from fresh build")
		}
		for _, eps := range []float64{0.05, 0.2, 0.6} {
			cl, cf := hLive.ClustersAt(eps), hFresh.ClustersAt(eps)
			if !reflect.DeepEqual(cl, cf) {
				t.Fatalf("HDBSCAN labels diverge at eps=%v", eps)
			}
		}

		dLive, err := idx.DBSCAN(minPts, 0.3)
		if err != nil {
			t.Fatalf("live DBSCAN: %v", err)
		}
		dFresh, err := fresh.DBSCAN(minPts, 0.3)
		if err != nil {
			t.Fatalf("fresh DBSCAN: %v", err)
		}
		if !reflect.DeepEqual(dLive, dFresh) {
			t.Fatalf("DBSCAN labels diverge from fresh build")
		}
	}

	// Point queries, on a sample of dense ids. The live KNN path breaks
	// distance ties by dense id, which matches the static tree's ordering
	// only up to ties — the continuous random rows here make exact ties a
	// measure-zero event.
	k := 4
	if k > n {
		k = n
	}
	for i := 0; i < 6; i++ {
		q := int32(rng.Intn(n))
		nl, err := idx.KNN(q, k)
		if err != nil {
			t.Fatalf("live KNN(%d): %v", q, err)
		}
		nf, err := fresh.KNN(q, k)
		if err != nil {
			t.Fatalf("fresh KNN(%d): %v", q, err)
		}
		if !reflect.DeepEqual(nl, nf) {
			t.Fatalf("KNN(%d) diverges: live %v, fresh %v", q, nl, nf)
		}

		r := 0.1 + rng.Float64()*0.4
		rl, err := idx.RangeQuery(q, r)
		if err != nil {
			t.Fatalf("live RangeQuery(%d): %v", q, err)
		}
		rf, err := fresh.RangeQuery(q, r)
		if err != nil {
			t.Fatalf("fresh RangeQuery(%d): %v", q, err)
		}
		sort.Slice(rl, func(a, b int) bool { return rl[a] < rl[b] })
		sort.Slice(rf, func(a, b int) bool { return rf[a] < rf[b] })
		if !reflect.DeepEqual(rl, rf) && !(len(rl) == 0 && len(rf) == 0) {
			t.Fatalf("RangeQuery(%d, %v) diverges: live %v, fresh %v", q, r, rl, rf)
		}

		cl, err := idx.RangeCount(q, r)
		if err != nil {
			t.Fatalf("live RangeCount(%d): %v", q, err)
		}
		if cf, _ := fresh.RangeCount(q, r); cl != cf {
			t.Fatalf("RangeCount(%d, %v) = %d, fresh %d", q, r, cl, cf)
		}
	}
}

// TestMutationOracle is the PR's correctness pin: randomized insert/delete
// sequences across metrics and dtypes, with every query family compared
// byte-for-byte against an Index freshly built on the surviving rows.
func TestMutationOracle(t *testing.T) {
	configs := []struct {
		name string
		opts *IndexOptions
	}{
		{"l2", &IndexOptions{Metric: MetricL2}},
		{"l2-f32", (&IndexOptions{Metric: MetricL2}).WithFloat32()},
		{"sql2", &IndexOptions{Metric: MetricSqL2}},
		{"l1", &IndexOptions{Metric: MetricL1}},
		{"l1-f32", (&IndexOptions{Metric: MetricL1}).WithFloat32()},
		{"linf", &IndexOptions{Metric: MetricLInf}},
		{"angular", &IndexOptions{Metric: MetricAngular}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(42))
			const n0, dim = 220, 3
			initial := randRows(rng, n0, dim)
			idx, err := NewIndex(initial, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			model := &mutModel{dim: dim}
			for i := 0; i < n0; i++ {
				model.ids = append(model.ids, int64(i))
				model.rows = append(model.rows, initial.Data[i*dim:(i+1)*dim])
			}

			for round := 0; round < 5; round++ {
				ins := randRows(rng, 20+rng.Intn(30), dim)
				ids, err := idx.Insert(ins)
				if err != nil {
					t.Fatalf("round %d: Insert: %v", round, err)
				}
				model.insert(t, ids, ins)

				del := model.pick(rng, 10+rng.Intn(25))
				if err := idx.Delete(del); err != nil {
					t.Fatalf("round %d: Delete: %v", round, err)
				}
				model.remove(del)

				if round%2 == 1 {
					assertMutationOracle(t, idx, model, cfg.opts, rng)
				}
			}
			assertMutationOracle(t, idx, model, cfg.opts, rng)

			s := idx.Stats()
			if s.TreePatches == 0 {
				t.Fatalf("no tree patches recorded after mutations: %+v", s)
			}
			if s.MutationEpoch == 0 {
				t.Fatalf("mutation epoch never advanced: %+v", s)
			}
			if cfg.opts.Float32 {
				// f32 engines compact eagerly on every mutation: the SoA
				// panels must always describe the full live set.
				if idx.Dirty() {
					t.Fatalf("float32 Index left dirty after mutations")
				}
			} else if s.Compactions == 0 {
				t.Fatalf("backlog threshold never triggered a compaction: %+v", s)
			}
			if idx.MutationEpoch() != s.MutationEpoch {
				t.Fatalf("MutationEpoch() = %d, counters say %d", idx.MutationEpoch(), s.MutationEpoch)
			}
			// An explicit Compact leaves a clean Index whose dynamic stats
			// report zero backlog, and the oracle still holds afterwards.
			if err := idx.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			ds := idx.DynStats()
			if ds.Dirty || ds.Overlay != 0 || ds.Tombstones != 0 || ds.Live != idx.N() {
				t.Fatalf("post-Compact DynStats = %+v, want clean with live=%d", ds, idx.N())
			}
			assertMutationOracle(t, idx, model, cfg.opts, rng)
		})
	}
}

// TestMutationValidation pins the all-or-nothing mutation error contract.
func TestMutationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, err := NewIndex(randRows(rng, 50, 2), nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := idx.Insert(Points{Data: []float64{1, 2, 3}, N: 1, Dim: 3}); err == nil {
		t.Fatal("Insert with wrong dimension succeeded")
	}
	if _, err := idx.Insert(Points{Data: []float64{1, math.Inf(1)}, N: 1, Dim: 2}); err == nil {
		t.Fatal("Insert with non-finite coordinate succeeded")
	}

	// Unknown id: never assigned, already deleted, or duplicated in-batch.
	for _, ids := range [][]int64{{50}, {-1}, {3, 3}} {
		if err := idx.Delete(ids); !errors.Is(err, ErrUnknownID) {
			t.Fatalf("Delete(%v) = %v, want ErrUnknownID", ids, err)
		}
	}
	if err := idx.Delete([]int64{10}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete([]int64{10}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double delete = %v, want ErrUnknownID", err)
	}
	// A failed batch must leave the Index unchanged: id 20 stays live even
	// though it appeared in a batch with an unknown id.
	if err := idx.Delete([]int64{20, 10}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("mixed batch = %v, want ErrUnknownID", err)
	}
	if err := idx.Delete([]int64{20}); err != nil {
		t.Fatalf("id 20 was deleted by a failed batch: %v", err)
	}
	if idx.N() != 48 {
		t.Fatalf("N = %d, want 48", idx.N())
	}
}

// TestMutationShrinkToEmpty drains an Index via deletes and grows it back,
// exercising the N<=1 stage guards.
func TestMutationShrinkToEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	idx, err := NewIndex(randRows(rng, 8, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := &mutModel{dim: 2}
	for i := 0; i < 8; i++ {
		model.ids = append(model.ids, int64(i))
		model.rows = append(model.rows, append([]float64(nil), idx.eng.Pts.Data[i*2:(i+1)*2]...))
	}
	all := append([]int64(nil), model.ids...)
	if err := idx.Delete(all[:7]); err != nil {
		t.Fatal(err)
	}
	model.remove(all[:7])
	if edges, err := idx.EMST(); err != nil || len(edges) != 0 {
		t.Fatalf("EMST on 1 point = (%v, %v)", edges, err)
	}
	assertMutationOracle(t, idx, model, nil, rng)
	if err := idx.Delete(all[7:]); err != nil {
		t.Fatal(err)
	}
	model.remove(all[7:])
	if idx.N() != 0 {
		t.Fatalf("N = %d after full drain", idx.N())
	}
	ins := randRows(rng, 30, 2)
	ids, err := idx.Insert(ins)
	if err != nil {
		t.Fatal(err)
	}
	model.insert(t, ids, ins)
	assertMutationOracle(t, idx, model, nil, rng)
}

// TestMutatedSnapshotRoundTrip pins snapshot durability across mutations:
// WriteSnapshot on a dirty Index compacts and persists the canonical base,
// and the restored Index answers byte-identically (with dense ids
// renumbered 0..m-1).
func TestMutatedSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	idx, err := NewIndex(randRows(rng, 120, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := &mutModel{dim: 3}
	for i := 0; i < 120; i++ {
		model.ids = append(model.ids, int64(i))
		model.rows = append(model.rows, append([]float64(nil), idx.eng.Pts.Data[i*3:(i+1)*3]...))
	}
	ins := randRows(rng, 15, 3)
	ids, err := idx.Insert(ins)
	if err != nil {
		t.Fatal(err)
	}
	model.insert(t, ids, ins)
	del := model.pick(rng, 10)
	if err := idx.Delete(del); err != nil {
		t.Fatal(err)
	}
	model.remove(del)
	if _, err := idx.HDBSCAN(5); err != nil { // populate stages post-mutation
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if idx.Dirty() {
		t.Fatal("Index still dirty after WriteSnapshot")
	}
	restored, det, err := ReadSnapshotDetails(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.SkippedStages) != 0 {
		t.Fatalf("skipped stages: %v", det.SkippedStages)
	}
	if restored.N() != idx.N() {
		t.Fatalf("restored N = %d, want %d", restored.N(), idx.N())
	}
	// The restored Index renumbers external ids 0..m-1; dense-id queries
	// must still answer byte-identically.
	hLive, err := idx.HDBSCAN(5)
	if err != nil {
		t.Fatal(err)
	}
	hRest, err := restored.HDBSCAN(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hLive.MST, hRest.MST) {
		t.Fatal("restored HDBSCAN MST diverges")
	}
	if got := restored.Stats().MSTBuilds; got != 0 {
		t.Fatalf("restored Index rebuilt the MST (%d builds): snapshot did not carry the compacted stage", got)
	}
	for q := int32(0); q < 5; q++ {
		nl, err := idx.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		nr, err := restored.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(nl, nr) {
			t.Fatalf("restored KNN(%d) diverges", q)
		}
	}
	if ids := restored.ExternalIDs(); int64(len(ids)) != int64(restored.N()) || (len(ids) > 0 && ids[len(ids)-1] != int64(restored.N()-1)) {
		t.Fatalf("restored external ids not renumbered 0..m-1: %v", ids)
	}
}

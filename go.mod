module parclust

go 1.24

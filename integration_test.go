package parclust

// Integration tests: run the complete pipeline — generator, k-d tree, WSPD,
// MST, dendrogram, reachability plot, flat extraction — over every workload
// of the paper's evaluation at a reduced scale, cross-checking the pieces
// against each other and against dense oracles where affordable.

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"parclust/internal/dendrogram"
	"parclust/internal/generator"
	"parclust/internal/metric"
	"parclust/internal/mst"
	"parclust/internal/oracle"
)

const integrationN = 600

func TestPipelineOnAllPaperDatasets(t *testing.T) {
	for _, d := range generator.PaperDatasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			pts := d.Gen(integrationN, 7)
			minPts := 10

			// EMST: the fast path must match the dense oracle.
			edges, err := EMST(pts)
			if err != nil {
				t.Fatal(err)
			}
			wantE := mst.TotalWeight(mst.PrimDense(pts.N, func(i, j int32) float64 {
				return pts.Dist(int(i), int(j))
			}))
			if gotE := mst.TotalWeight(edges); math.Abs(gotE-wantE) > 1e-6*(1+wantE) {
				t.Fatalf("EMST weight %v, want %v", gotE, wantE)
			}

			// HDBSCAN*: both algorithms must match the mutual oracle.
			want := mst.TotalWeight(mst.PrimDense(pts.N, oracle.MutualReachability(pts, minPts, metric.L2{})))
			for _, algo := range []HDBSCANAlgorithm{HDBSCANMemoGFK, HDBSCANGanTao} {
				h, err := HDBSCANWithStats(pts, minPts, algo, NewStats())
				if err != nil {
					t.Fatalf("%v: %v", algo, err)
				}
				if math.Abs(h.TotalWeight()-want) > 1e-6*(1+want) {
					t.Fatalf("%v weight %v, want %v", algo, h.TotalWeight(), want)
				}
			}

			// Hierarchy internals: plot must match the Prim oracle; cuts must
			// match the direct DBSCAN* implementation at the median MST weight.
			h, err := HDBSCAN(pts, minPts)
			if err != nil {
				t.Fatal(err)
			}
			plot := h.ReachabilityPlot()
			oracle := dendrogram.PrimOrder(pts.N, h.MST, 0)
			for i := range oracle {
				if plot[i].Idx != oracle[i].Idx {
					t.Fatalf("reachability plot differs from Prim at position %d", i)
				}
			}
			mid := h.MST[len(h.MST)/2].W
			cut := h.ClustersAt(mid)
			direct, err := DBSCANStar(pts, minPts, mid)
			if err != nil {
				t.Fatal(err)
			}
			if cut.NumClusters != direct.NumClusters {
				t.Fatalf("cut at %v: %d clusters, direct DBSCAN* %d", mid, cut.NumClusters, direct.NumClusters)
			}

			// The dendrogram serializes to structurally valid Newick.
			var sb strings.Builder
			if err := h.WriteNewick(&sb, nil); err != nil {
				t.Fatal(err)
			}
			if strings.Count(sb.String(), "(") != pts.N-1 {
				t.Fatal("newick structure wrong")
			}
		})
	}
}

func TestPipelineApproxVsExactOnAllDatasets(t *testing.T) {
	for _, d := range generator.PaperDatasets() {
		pts := d.Gen(400, 11)
		exact, err := HDBSCAN(pts, 10)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ApproxOPTICS(pts, 10, 0.125)
		if err != nil {
			t.Fatal(err)
		}
		lo := exact.TotalWeight() / 1.125
		hi := exact.TotalWeight() * 1.125
		if w := approx.TotalWeight(); w < lo-1e-9 || w > hi+1e-9 {
			t.Fatalf("%s: approx weight %v outside [%v, %v]", d.Name, w, lo, hi)
		}
	}
}

func TestPipelineMinPtsSweep(t *testing.T) {
	pts := generator.SSVarden(500, 2, 13)
	prev := -1.0
	for _, minPts := range []int{1, 2, 5, 10, 25, 50} {
		h, err := HDBSCAN(pts, minPts)
		if err != nil {
			t.Fatal(err)
		}
		w := h.TotalWeight()
		// Mutual reachability distances are monotone in minPts, so MST
		// weight must be non-decreasing.
		if w < prev-1e-9 {
			t.Fatalf("minPts=%d: MST weight %v decreased below %v", minPts, w, prev)
		}
		prev = w
	}
}

func TestPipelineThreadIndependence(t *testing.T) {
	// The same input must give identical results regardless of worker count
	// (determinism is a stated design property). Sweep GOMAXPROCS explicitly
	// so the work-stealing scheduler runs both fully sequential and with
	// real steal traffic over the whole EMST + HDBSCAN* pipeline.
	pts := generator.GeoLifeLike(800, 3)
	run := func() ([]Bar, float64, []Edge) {
		h, err := HDBSCAN(pts, 10)
		if err != nil {
			t.Fatal(err)
		}
		emst, err := EMST(pts)
		if err != nil {
			t.Fatal(err)
		}
		return h.ReachabilityPlot(), h.TotalWeight(), emst
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	basePlot, baseW, baseEMST := run()
	for _, procs := range []int{2, 8} {
		runtime.GOMAXPROCS(procs)
		plot, w, emst := run()
		if w != baseW {
			t.Fatalf("GOMAXPROCS=%d: HDBSCAN* MST weight %v != %v at 1 worker", procs, w, baseW)
		}
		for i := range basePlot {
			if basePlot[i] != plot[i] {
				t.Fatalf("GOMAXPROCS=%d: reachability plot differs at %d", procs, i)
			}
		}
		if len(emst) != len(baseEMST) {
			t.Fatalf("GOMAXPROCS=%d: EMST has %d edges, want %d", procs, len(emst), len(baseEMST))
		}
		for i := range baseEMST {
			if emst[i] != baseEMST[i] {
				t.Fatalf("GOMAXPROCS=%d: EMST edge %d differs: %v vs %v", procs, i, emst[i], baseEMST[i])
			}
		}
	}
}

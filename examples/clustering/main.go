// Clustering: density-based cluster discovery on variable-density data —
// the workload HDBSCAN* is designed for. A single DBSCAN radius cannot
// capture clusters of different densities; the HDBSCAN* hierarchy exposes
// all of them at once, and this example sweeps the hierarchy to find a
// radius per density regime and renders a coarse ASCII reachability plot.
package main

import (
	"fmt"
	"math"
	"strings"

	"parclust"
)

func main() {
	pts := parclust.GenerateVarden(20000, 2, 7)
	stats := parclust.NewStats()
	h, err := parclust.HDBSCANWithStats(pts, 10, parclust.HDBSCANMemoGFK, stats)
	if err != nil {
		panic(err)
	}
	fmt.Printf("HDBSCAN* on %d variable-density points (minPts=10)\n", pts.N)
	for name, d := range stats.Phases {
		fmt.Printf("  phase %-12s %.3fs\n", name, d.Seconds())
	}

	// Sweep eps geometrically across the edge-weight range of the MST.
	lo, hi := math.Inf(1), 0.0
	for _, e := range h.MST {
		if e.W > 0 {
			lo = math.Min(lo, e.W)
		}
		hi = math.Max(hi, e.W)
	}
	fmt.Println("\n  eps        clusters   noise   largest")
	for eps := lo; eps <= hi; eps *= 4 {
		c := h.ClustersAt(eps)
		noise, largest := 0, 0
		sizes := map[int32]int{}
		for _, l := range c.Labels {
			if l == -1 {
				noise++
			} else {
				sizes[l]++
			}
		}
		for _, s := range sizes {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("  %-10.3f %-10d %-7d %d\n", eps, c.NumClusters, noise, largest)
	}

	// Coarse ASCII reachability plot: bucket the bars and draw log-scaled
	// column heights; valleys (runs of low columns) are clusters.
	plot := h.ReachabilityPlot()
	const cols = 72
	bucket := (len(plot) + cols - 1) / cols
	heights := make([]float64, 0, cols)
	for i := 0; i < len(plot); i += bucket {
		s, cnt := 0.0, 0
		for j := i; j < len(plot) && j < i+bucket; j++ {
			if !math.IsInf(plot[j].H, 1) {
				s += plot[j].H
				cnt++
			}
		}
		if cnt > 0 {
			heights = append(heights, s/float64(cnt))
		} else {
			heights = append(heights, 0)
		}
	}
	maxH := 0.0
	for _, v := range heights {
		maxH = math.Max(maxH, v)
	}
	fmt.Println("\nreachability plot (valleys = clusters):")
	const rows = 8
	for r := rows; r >= 1; r-- {
		var b strings.Builder
		for _, v := range heights {
			level := 0.0
			if v > 0 {
				level = math.Log1p(v) / math.Log1p(maxH) * rows
			}
			if level >= float64(r) {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Println("  |" + b.String())
	}
	fmt.Println("  +" + strings.Repeat("-", len(heights)))
}

// Client: drive a running parclustd daemon end to end — upload a dataset,
// sweep HDBSCAN* parameters against the server's memoized stage pipeline,
// run point queries, and read the stage-cache counters that prove the
// amortization. Start the daemon first:
//
//	go run ./cmd/parclustd -addr :8650
//	go run ./examples/client -addr http://localhost:8650
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"parclust"
)

var (
	addrFlag   = flag.String("addr", "http://localhost:8650", "parclustd base URL")
	nameFlag   = flag.String("name", "demo", "dataset name to upload under")
	nFlag      = flag.Int("n", 5000, "points to generate and upload")
	minPtsFlag = flag.Int("minpts", 10, "HDBSCAN* minPts for the sweep")
	keepFlag   = flag.Bool("keep", false, "leave the dataset on the server instead of evicting it")
)

// call performs one request and decodes the JSON response into out (which
// may be nil). Non-2xx responses abort with the server's error message.
func call(method, url string, body []byte, out any) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		log.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v (is parclustd running?)", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		log.Fatalf("%s %s: status %d: %s", method, url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("decode %s response: %v", url, err)
		}
	}
}

func main() {
	flag.Parse()
	base := *addrFlag

	// Generate four Gaussian blobs locally and upload them.
	pts := parclust.GenerateGaussianMixture(*nFlag, 2, 4, 7)
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = pts.Data[i*pts.Dim : (i+1)*pts.Dim]
	}
	body, err := json.Marshal(map[string]any{"points": rows})
	if err != nil {
		log.Fatal(err)
	}
	var info struct {
		Name  string `json:"name"`
		N     int    `json:"n"`
		Dim   int    `json:"dim"`
		Bytes int64  `json:"bytes"`
	}
	call(http.MethodPut, base+"/v1/datasets/"+*nameFlag, body, &info)
	fmt.Printf("uploaded %q: n=%d dim=%d (~%.1f MiB admitted)\n",
		info.Name, info.N, info.Dim, float64(info.Bytes)/(1<<20))

	// Sweep minPts x eps. The server pays one tree build for everything,
	// one core-distance + MST run per minPts, and near-O(n) per cut.
	type flat struct {
		NumClusters int `json:"num_clusters"`
		NumNoise    int `json:"num_noise"`
	}
	for _, minPts := range []int{5, *minPtsFlag, 25} {
		fmt.Printf("hdbscan minPts=%d:", minPts)
		for _, eps := range []float64{0.5, 1, 2, 4, 8} {
			var res flat
			call(http.MethodGet,
				fmt.Sprintf("%s/v1/datasets/%s/hdbscan?minpts=%d&eps=%g&labels=false", base, *nameFlag, minPts, eps),
				nil, &res)
			fmt.Printf("  eps=%g->%d clusters/%d noise", eps, res.NumClusters, res.NumNoise)
		}
		fmt.Println()
	}

	// Stability-based extraction needs no radius at all.
	var stable flat
	call(http.MethodGet,
		fmt.Sprintf("%s/v1/datasets/%s/hdbscan?minpts=%d&minclustersize=25&labels=false", base, *nameFlag, *minPtsFlag),
		nil, &stable)
	fmt.Printf("stable extraction (minclustersize=25): %d clusters, %d noise\n", stable.NumClusters, stable.NumNoise)

	// Flat DBSCAN and point queries ride the same shared tree.
	var db flat
	call(http.MethodGet,
		fmt.Sprintf("%s/v1/datasets/%s/dbscan?minpts=%d&eps=1.5&labels=false", base, *nameFlag, *minPtsFlag),
		nil, &db)
	fmt.Printf("dbscan(minPts=%d, eps=1.5): %d clusters\n", *minPtsFlag, db.NumClusters)

	var knn struct {
		Neighbors []struct {
			ID   int32   `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	call(http.MethodGet, fmt.Sprintf("%s/v1/datasets/%s/knn?q=0&k=4", base, *nameFlag), nil, &knn)
	fmt.Printf("4-NN of point 0: %v\n", knn.Neighbors)

	// The stage counters prove one tree build served every query above.
	var stats struct {
		Counters struct {
			TreeBuilds     int64 `json:"tree_builds"`
			CoreDistBuilds int64 `json:"core_dist_builds"`
			MSTBuilds      int64 `json:"mst_builds"`
			DendrogramHits int64 `json:"dendrogram_hits"`
			CoalescedTotal int64 `json:"coalesced_total"`
		} `json:"counters"`
	}
	call(http.MethodGet, base+"/v1/datasets/"+*nameFlag, nil, &stats)
	c := stats.Counters
	fmt.Printf("stage counters: tree_builds=%d core_dist_builds=%d mst_builds=%d dendrogram_hits=%d coalesced=%d\n",
		c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds, c.DendrogramHits, c.CoalescedTotal)

	if !*keepFlag {
		call(http.MethodDelete, base+"/v1/datasets/"+*nameFlag, nil, nil)
		fmt.Printf("evicted %q\n", *nameFlag)
	}
}

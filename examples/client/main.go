// Client: drive a running parclustd daemon end to end — upload a dataset,
// sweep HDBSCAN* parameters against the server's memoized stage pipeline,
// run point queries, and read the stage-cache counters that prove the
// amortization. Start the daemon first:
//
//	go run ./cmd/parclustd -addr :8650
//	go run ./examples/client -addr http://localhost:8650
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"parclust"
)

var (
	addrFlag   = flag.String("addr", "http://localhost:8650", "parclustd base URL")
	nameFlag   = flag.String("name", "demo", "dataset name to upload under")
	nFlag      = flag.Int("n", 5000, "points to generate and upload")
	minPtsFlag = flag.Int("minpts", 10, "HDBSCAN* minPts for the sweep")
	keepFlag   = flag.Bool("keep", false, "leave the dataset on the server instead of evicting it")
)

// call performs one request and decodes the JSON response into out (which
// may be nil). Non-2xx responses abort with the server's error message.
func call(method, url string, body []byte, out any) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		log.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v (is parclustd running?)", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		log.Fatalf("%s %s: status %d: %s", method, url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("decode %s response: %v", url, err)
		}
	}
}

func main() {
	flag.Parse()
	base := *addrFlag

	// Generate four Gaussian blobs locally and upload them.
	pts := parclust.GenerateGaussianMixture(*nFlag, 2, 4, 7)
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = pts.Data[i*pts.Dim : (i+1)*pts.Dim]
	}
	body, err := json.Marshal(map[string]any{"points": rows})
	if err != nil {
		log.Fatal(err)
	}
	var info struct {
		Name  string `json:"name"`
		N     int    `json:"n"`
		Dim   int    `json:"dim"`
		Bytes int64  `json:"bytes"`
	}
	call(http.MethodPut, base+"/v1/datasets/"+*nameFlag, body, &info)
	fmt.Printf("uploaded %q: n=%d dim=%d (~%.1f MiB admitted)\n",
		info.Name, info.N, info.Dim, float64(info.Bytes)/(1<<20))

	// Sweep minPts x eps as one batched request: the server pays one tree
	// build for everything, one core-distance + MST run per minPts, and
	// one cached cut per cell — and the client pays one round-trip instead
	// of fifteen.
	type flat struct {
		NumClusters int `json:"num_clusters"`
		NumNoise    int `json:"num_noise"`
	}
	sweepBody, err := json.Marshal(map[string]any{
		"minpts": []int{5, *minPtsFlag, 25},
		"eps":    []float64{0.5, 1, 2, 4, 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	var sweep struct {
		NumCells int `json:"num_cells"`
		Cells    []struct {
			MinPts int     `json:"minpts"`
			Eps    float64 `json:"eps"`
			flat
		} `json:"cells"`
	}
	call(http.MethodPost, fmt.Sprintf("%s/v1/datasets/%s/sweep", base, *nameFlag), sweepBody, &sweep)
	fmt.Printf("sweep: %d cells in one request\n", sweep.NumCells)
	lastMinPts := -1
	for _, cell := range sweep.Cells {
		if cell.MinPts != lastMinPts {
			if lastMinPts != -1 {
				fmt.Println()
			}
			fmt.Printf("hdbscan minPts=%d:", cell.MinPts)
			lastMinPts = cell.MinPts
		}
		fmt.Printf("  eps=%g->%d clusters/%d noise", cell.Eps, cell.NumClusters, cell.NumNoise)
	}
	fmt.Println()

	// The same query as a chunked NDJSON stream: header, label chunks, and
	// a {"done":true} trailer, flushed record by record, so a client can
	// start consuming labels before the server has serialized the rest.
	streamURL := fmt.Sprintf("%s/v1/datasets/%s/hdbscan?minpts=%d&eps=2", base, *nameFlag, *minPtsFlag)
	req, err := http.NewRequest(http.MethodGet, streamURL, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var streamed int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		var chunk struct {
			Labels []int32 `json:"labels"`
			Done   bool    `json:"done"`
			Items  int     `json:"items"`
		}
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			log.Fatalf("decode stream record: %v", err)
		}
		streamed += len(chunk.Labels)
		if chunk.Done {
			fmt.Printf("ndjson stream: %d labels in %d-item stream, trailer ok\n", streamed, chunk.Items)
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		log.Fatalf("read stream: %v", err)
	}

	// Stability-based extraction needs no radius at all.
	var stable flat
	call(http.MethodGet,
		fmt.Sprintf("%s/v1/datasets/%s/hdbscan?minpts=%d&minclustersize=25&labels=false", base, *nameFlag, *minPtsFlag),
		nil, &stable)
	fmt.Printf("stable extraction (minclustersize=25): %d clusters, %d noise\n", stable.NumClusters, stable.NumNoise)

	// Flat DBSCAN and point queries ride the same shared tree.
	var db flat
	call(http.MethodGet,
		fmt.Sprintf("%s/v1/datasets/%s/dbscan?minpts=%d&eps=1.5&labels=false", base, *nameFlag, *minPtsFlag),
		nil, &db)
	fmt.Printf("dbscan(minPts=%d, eps=1.5): %d clusters\n", *minPtsFlag, db.NumClusters)

	var knn struct {
		Neighbors []struct {
			ID   int32   `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	call(http.MethodGet, fmt.Sprintf("%s/v1/datasets/%s/knn?q=0&k=4", base, *nameFlag), nil, &knn)
	fmt.Printf("4-NN of point 0: %v\n", knn.Neighbors)

	// The stage counters prove one tree build served every query above,
	// with repeated cuts answered from the cut-result cache.
	var stats struct {
		Counters struct {
			TreeBuilds     int64 `json:"tree_builds"`
			CoreDistBuilds int64 `json:"core_dist_builds"`
			MSTBuilds      int64 `json:"mst_builds"`
			DendrogramHits int64 `json:"dendrogram_hits"`
			CutBuilds      int64 `json:"cut_builds"`
			CutHits        int64 `json:"cut_hits"`
			CoalescedTotal int64 `json:"coalesced_total"`
		} `json:"counters"`
	}
	call(http.MethodGet, base+"/v1/datasets/"+*nameFlag, nil, &stats)
	c := stats.Counters
	fmt.Printf("stage counters: tree_builds=%d core_dist_builds=%d mst_builds=%d dendrogram_hits=%d cut_builds=%d cut_hits=%d coalesced=%d\n",
		c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds, c.DendrogramHits, c.CutBuilds, c.CutHits, c.CoalescedTotal)

	if !*keepFlag {
		call(http.MethodDelete, base+"/v1/datasets/"+*nameFlag, nil, nil)
		fmt.Printf("evicted %q\n", *nameFlag)
	}
}

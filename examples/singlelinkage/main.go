// Single-linkage: agglomerative hierarchical clustering via the EMST
// (Gower & Ross 1969), the paper's other dendrogram application. This
// example clusters a synthetic "gene-expression-like" data set (high-dim
// Gaussian mixture), walks the dendrogram top-down to extract exactly k
// clusters, and prints the merge history near the root.
package main

import (
	"fmt"
	"sort"

	"parclust"
)

func main() {
	const k = 6
	pts := parclust.GenerateGaussianMixture(5000, 8, k, 3)
	h, err := parclust.SingleLinkage(pts)
	if err != nil {
		panic(err)
	}
	d := h.Dendrogram()
	fmt.Printf("single-linkage dendrogram over %d points (%d merges)\n",
		pts.N, d.NumInternal())

	// The k-cluster flat clustering removes the k-1 heaviest merges: cut
	// just below the (k-1)-th largest height.
	hs := append([]float64(nil), d.Height...)
	sort.Float64s(hs)
	cut := hs[len(hs)-(k-1)]
	c := h.ClustersAt(nextDown(cut))
	sizes := map[int32]int{}
	for _, l := range c.Labels {
		sizes[l]++
	}
	fmt.Printf("cutting below height %.3f yields %d clusters with sizes: ", cut, c.NumClusters)
	var ss []int
	for _, s := range sizes {
		ss = append(ss, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ss)))
	fmt.Println(ss)

	// Merge history near the root: the last few merges join whole blobs.
	fmt.Println("top merges (largest heights):")
	type merge struct {
		h           float64
		left, right int32
	}
	sz := d.Sizes()
	var top []merge
	for x := d.N; x < d.N+d.NumInternal(); x++ {
		l, r := d.Children(int32(x))
		top = append(top, merge{d.HeightOf(int32(x)), sz[l], sz[r]})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].h > top[j].h })
	for _, m := range top[:k] {
		fmt.Printf("  height %8.3f joins clusters of sizes %5d and %5d\n", m.h, m.left, m.right)
	}
}

// nextDown returns the largest float64 strictly below x.
func nextDown(x float64) float64 {
	return x * (1 - 1e-15)
}

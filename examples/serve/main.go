// Serve: build one parclust.Index over a dataset and answer many
// clustering queries from it — the build-once/query-many pattern the
// staged pipeline engine exists for. One tree build and one core-distance
// computation per minPts serve an entire minPts x eps parameter sweep,
// DBSCAN queries, and k-NN lookups; the Index's stage cache counters show
// exactly what was computed versus reused.
package main

import (
	"fmt"

	"parclust"
)

func main() {
	// Four Gaussian blobs in 2D; imagine this is a mostly-static dataset
	// behind a query endpoint.
	pts := parclust.GenerateGaussianMixture(5000, 2, 4, 7)

	idx, err := parclust.NewIndex(pts, nil) // nil options: Euclidean metric
	if err != nil {
		panic(err)
	}

	// Sweep minPts x eps. Each minPts pays core distances + one MST; every
	// eps cut runs off the precomputed merge order in near-O(n).
	for _, minPts := range []int{5, 10, 25} {
		h, err := idx.HDBSCAN(minPts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("minPts=%d (MST weight %.1f):", minPts, h.TotalWeight())
		for _, eps := range []float64{0.5, 1, 2, 4, 8} {
			c := h.ClustersAt(eps)
			fmt.Printf("  eps=%g->%d clusters/%d noise", eps, c.NumClusters, h.NumNoiseAt(eps))
		}
		fmt.Println()
	}

	// Flat DBSCAN at a fixed radius reuses the same tree and the memoized
	// core distances for minPts=10.
	c, err := idx.DBSCAN(10, 1.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("DBSCAN(minPts=10, eps=1.5): %d clusters\n", c.NumClusters)

	// Point queries ride on the same tree too.
	nb, err := idx.KNN(0, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("4-NN of point 0: %v\n", nb)

	// The stage cache counters prove the amortization: one tree build
	// served every query above.
	s := idx.Stats()
	fmt.Printf("stage cache: tree %d built / %d reused, core-dist %d built / %d reused, mst %d built / %d reused\n",
		s.TreeBuilds, s.TreeHits, s.CoreDistBuilds, s.CoreDistHits, s.MSTBuilds, s.MSTHits)
	if s.TreeBuilds != 1 {
		panic("expected exactly one tree build")
	}
}

// Quickstart: compute an EMST and an HDBSCAN* clustering on a small
// synthetic data set using the public parclust API.
package main

import (
	"fmt"

	"parclust"
)

func main() {
	// Three well-separated Gaussian blobs in 2D.
	pts := parclust.GenerateGaussianMixture(3000, 2, 3, 1)

	// Euclidean minimum spanning tree (parallel MemoGFK).
	edges, err := parclust.EMST(pts)
	if err != nil {
		panic(err)
	}
	var weight float64
	var longest parclust.Edge
	for _, e := range edges {
		weight += e.W
		if e.W > longest.W {
			longest = e
		}
	}
	fmt.Printf("EMST: %d edges, total weight %.2f\n", len(edges), weight)
	fmt.Printf("longest edge: %d--%d (%.2f) — a natural cluster separator\n",
		longest.U, longest.V, longest.W)

	// HDBSCAN* hierarchy with minPts = 10.
	h, err := parclust.HDBSCAN(pts, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("HDBSCAN*: MST weight %.2f (mutual reachability)\n", h.TotalWeight())

	// Sweep the radius and watch the three blobs appear.
	for _, eps := range []float64{0.5, 2, 5, 10, 20} {
		c := h.ClustersAt(eps)
		noise := 0
		for _, l := range c.Labels {
			if l == -1 {
				noise++
			}
		}
		fmt.Printf("  eps=%5.1f -> %3d clusters, %4d noise points\n", eps, c.NumClusters, noise)
	}

	// The reachability plot: valleys are clusters.
	plot := h.ReachabilityPlot()
	fmt.Printf("reachability plot: %d bars, first after start has height %.2f\n",
		len(plot), plot[1].H)
}

// DBSCAN-compare: the motivating scenario from the paper's introduction —
// a single DBSCAN radius cannot capture clusters of different densities,
// while the HDBSCAN* hierarchy (one computation) yields every radius at
// once plus a parameter-free stability-based clustering.
package main

import (
	"fmt"
	"math/rand"

	"parclust"
)

func main() {
	// One dense blob and one sparse blob (10x the spread), far apart,
	// plus background noise: the classic multi-density failure case.
	rng := rand.New(rand.NewSource(5))
	const n = 4000
	pts := parclust.NewPoints(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		switch {
		case i < n*45/100: // dense blob
			pts.Data[2*i] = rng.NormFloat64() * 1
			pts.Data[2*i+1] = rng.NormFloat64() * 1
			truth[i] = 0
		case i < n*90/100: // sparse blob
			pts.Data[2*i] = 500 + rng.NormFloat64()*10
			pts.Data[2*i+1] = rng.NormFloat64() * 10
			truth[i] = 1
		default: // uniform noise
			pts.Data[2*i] = rng.Float64()*1000 - 250
			pts.Data[2*i+1] = rng.Float64()*200 - 100
			truth[i] = -1
		}
	}
	minPts := 10

	fmt.Println("DBSCAN at a single radius (eps):")
	for _, eps := range []float64{0.5, 2, 8} {
		c, err := parclust.DBSCANStar(pts, minPts, eps)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  eps=%-4g -> %d clusters (%s)\n", eps, c.NumClusters, describe(c, truth))
	}

	fmt.Println("\nHDBSCAN* stability extraction (no radius parameter):")
	h, err := parclust.HDBSCAN(pts, minPts)
	if err != nil {
		panic(err)
	}
	c := h.ExtractStableClusters(50)
	fmt.Printf("  %d clusters (%s)\n", c.NumClusters, describe(c, truth))
}

// describe summarizes how well a clustering captures the two ground-truth
// blobs: for each blob, the fraction of its points inside the blob's
// dominant cluster.
func describe(c parclust.Clustering, truth []int) string {
	dom := map[int]map[int32]int{0: {}, 1: {}}
	tot := map[int]int{}
	for i, l := range c.Labels {
		b := truth[i]
		if b == -1 {
			continue
		}
		tot[b]++
		if l != -1 {
			dom[b][l]++
		}
	}
	out := ""
	for b := 0; b <= 1; b++ {
		best := 0
		for _, cnt := range dom[b] {
			if cnt > best {
				best = cnt
			}
		}
		name := "dense"
		if b == 1 {
			name = "sparse"
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s blob %d%% captured", name, best*100/tot[b])
	}
	return out
}

// Reachability: compare the exact HDBSCAN* hierarchy with the approximate
// OPTICS algorithm (Appendix C) on skewed GPS-trace-like data, extracting
// clusters from the reachability plot by valley detection.
package main

import (
	"fmt"
	"math"

	"parclust"
)

func main() {
	pts := parclust.GenerateVarden(15000, 3, 11)
	minPts := 10

	exact, err := parclust.HDBSCAN(pts, minPts)
	if err != nil {
		panic(err)
	}
	approx, err := parclust.ApproxOPTICS(pts, minPts, 0.125)
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact  MST weight: %.2f\n", exact.TotalWeight())
	fmt.Printf("approx MST weight: %.2f (rho=0.125, within a 1.125 factor)\n", approx.TotalWeight())
	ratio := approx.TotalWeight() / exact.TotalWeight()
	fmt.Printf("ratio: %.4f\n", ratio)

	// Valley extraction from the exact reachability plot: a new cluster
	// starts when the bar height drops below threshold after exceeding it.
	plot := exact.ReachabilityPlot()
	threshold := percentile(plot, 0.75)
	clusters, cur := 0, 0
	var sizes []int
	for _, b := range plot {
		if math.IsInf(b.H, 1) || b.H > threshold {
			if cur > minPts {
				clusters++
				sizes = append(sizes, cur)
			}
			cur = 0
		} else {
			cur++
		}
	}
	if cur > minPts {
		clusters++
		sizes = append(sizes, cur)
	}
	fmt.Printf("valley extraction at threshold %.3f finds %d clusters\n", threshold, clusters)
	if len(sizes) > 8 {
		sizes = sizes[:8]
	}
	fmt.Printf("first cluster sizes: %v\n", sizes)

	// Cross-check: the dendrogram cut at the same threshold agrees on the
	// broad structure.
	c := exact.ClustersAt(threshold)
	big := 0
	counts := map[int32]int{}
	for _, l := range c.Labels {
		if l >= 0 {
			counts[l]++
		}
	}
	for _, s := range counts {
		if s > minPts {
			big++
		}
	}
	fmt.Printf("dendrogram cut at %.3f: %d clusters larger than minPts\n", threshold, big)
}

func percentile(plot []parclust.Bar, q float64) float64 {
	var hs []float64
	for _, b := range plot {
		if !math.IsInf(b.H, 1) {
			hs = append(hs, b.H)
		}
	}
	// insertion-select the q-quantile (plot sizes are small here)
	k := int(q * float64(len(hs)))
	for i := 0; i <= k; i++ {
		min := i
		for j := i + 1; j < len(hs); j++ {
			if hs[j] < hs[min] {
				min = j
			}
		}
		hs[i], hs[min] = hs[min], hs[i]
	}
	return hs[k]
}

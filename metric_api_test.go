package parclust

// Public-API tests for the pluggable metric kernels: parsing, validation
// at the API boundary (non-finite coordinates, zero vectors for angular),
// cross-metric agreement with the brute-force oracle, and cross-layer
// consistency between the flat DBSCAN* baseline and the hierarchy cut
// under non-Euclidean kernels.

import (
	"math"
	"testing"

	"parclust/internal/mst"
	"parclust/internal/oracle"
)

func allMetrics() []Metric { return Metrics() }

func TestParseMetricRoundTrip(t *testing.T) {
	// Pin each public constant to its kernel name: the enum order must
	// match metric.All().
	want := map[Metric]string{
		MetricL2: "l2", MetricSqL2: "sql2", MetricL1: "l1",
		MetricLInf: "linf", MetricAngular: "angular",
	}
	for m, name := range want {
		if m.String() != name {
			t.Fatalf("constant %d stringifies to %q, want %q", int(m), m.String(), name)
		}
	}
	for _, m := range allMetrics() {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMetric(%q) = (%v, %v)", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("mahalanobis"); err == nil {
		t.Fatal("ParseMetric accepted an unknown kernel")
	}
}

func TestEMSTMetricMatchesOracle(t *testing.T) {
	pts := GenerateUniform(300, 3, 11)
	for _, m := range allMetrics() {
		for _, algo := range []EMSTAlgorithm{EMSTMemoGFK, EMSTGFK, EMSTNaive, EMSTBoruvka, EMSTWSPDBoruvka} {
			edges, err := EMSTMetricWithStats(pts, algo, m, nil)
			if err != nil {
				t.Fatalf("%v/%v: %v", m, algo, err)
			}
			if len(edges) != pts.N-1 {
				t.Fatalf("%v/%v: got %d edges", m, algo, len(edges))
			}
			// The oracle runs on the same prepared input the pipeline saw.
			prepared, kern, err := prepareMetric(pts, m)
			if err != nil {
				t.Fatal(err)
			}
			want := mst.TotalWeight(oracle.PrimMST(prepared.N, oracle.Dist(prepared, kern)))
			if got := mst.TotalWeight(edges); math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("%v/%v: weight %v, oracle %v", m, algo, got, want)
			}
		}
	}
}

func TestMetricEntryPointsRejectNonFinite(t *testing.T) {
	bad := []Points{
		PointsFromSlices([][]float64{{1, 2}, {math.NaN(), 0}}),
		PointsFromSlices([][]float64{{1, 2}, {math.Inf(1), 0}}),
		PointsFromSlices([][]float64{{1, 2}, {0, math.Inf(-1)}}),
	}
	for _, pts := range bad {
		for _, m := range allMetrics() {
			if _, err := EMSTMetric(pts, m); err == nil {
				t.Fatalf("EMSTMetric(%v) accepted non-finite input", m)
			}
			if _, err := HDBSCANMetric(pts, 2, m); err == nil {
				t.Fatalf("HDBSCANMetric(%v) accepted non-finite input", m)
			}
			if _, err := SingleLinkageMetric(pts, m); err == nil {
				t.Fatalf("SingleLinkageMetric(%v) accepted non-finite input", m)
			}
			if _, err := DBSCANStarMetric(pts, 2, 1.0, m); err == nil {
				t.Fatalf("DBSCANStarMetric(%v) accepted non-finite input", m)
			}
			if _, err := DBSCANMetric(pts, 2, 1.0, m); err == nil {
				t.Fatalf("DBSCANMetric(%v) accepted non-finite input", m)
			}
			if _, err := OPTICSMetric(pts, 2, 1.0, m); err == nil {
				t.Fatalf("OPTICSMetric(%v) accepted non-finite input", m)
			}
		}
	}
}

func TestAngularRejectsZeroVectorAndPreservesInput(t *testing.T) {
	withZero := PointsFromSlices([][]float64{{1, 0}, {0, 0}, {0, 1}})
	if _, err := EMSTMetric(withZero, MetricAngular); err == nil {
		t.Fatal("angular EMST accepted the zero vector")
	}
	if _, err := HDBSCANMetric(withZero, 2, MetricAngular); err == nil {
		t.Fatal("angular HDBSCAN accepted the zero vector")
	}
	pts := PointsFromSlices([][]float64{{3, 4}, {5, 12}, {-8, 6}})
	orig := append([]float64(nil), pts.Data...)
	if _, err := EMSTMetric(pts, MetricAngular); err != nil {
		t.Fatal(err)
	}
	for i, v := range pts.Data {
		if v != orig[i] {
			t.Fatal("angular normalization mutated the caller's points")
		}
	}
}

func TestDelaunayRequiresL2(t *testing.T) {
	pts := GenerateUniform(50, 2, 1)
	if _, err := EMSTMetricWithStats(pts, EMSTDelaunay2D, MetricL1, nil); err == nil {
		t.Fatal("Delaunay EMST accepted a non-L2 metric")
	}
	if _, err := EMSTMetricWithStats(pts, EMSTDelaunay2D, MetricL2, nil); err != nil {
		t.Fatalf("Delaunay EMST rejected l2: %v", err)
	}
}

// TestDBSCANStarMetricMatchesHierarchyCut extends the seed's L2
// cross-check to non-Euclidean kernels: cutting the metric HDBSCAN*
// hierarchy at radius eps must reproduce the direct flat DBSCAN* run
// under the same kernel.
func TestDBSCANStarMetricMatchesHierarchyCut(t *testing.T) {
	pts := GenerateVarden(400, 2, 9)
	minPts := 8
	for _, m := range []Metric{MetricL1, MetricLInf, MetricSqL2} {
		h, err := HDBSCANMetric(pts, minPts, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.5, 1.5, 4.0} {
			if m == MetricSqL2 {
				eps *= eps // same ball, squared radius
			}
			flat, err := DBSCANStarMetric(pts, minPts, eps, m)
			if err != nil {
				t.Fatal(err)
			}
			cut := h.ClustersAt(eps)
			if !sameClustering(flat, cut) {
				t.Fatalf("metric %v eps=%v: flat DBSCAN* and hierarchy cut disagree", m, eps)
			}
		}
	}
}

// sameClustering compares two flat clusterings up to label permutation.
func sameClustering(a, b Clustering) bool {
	if len(a.Labels) != len(b.Labels) || a.NumClusters != b.NumClusters {
		return false
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if (la == -1) != (lb == -1) {
			return false
		}
		if la == -1 {
			continue
		}
		if m, ok := fwd[la]; ok && m != lb {
			return false
		}
		if m, ok := rev[lb]; ok && m != la {
			return false
		}
		fwd[la], rev[lb] = lb, la
	}
	return true
}

// TestSqL2MatchesL2Clusters pins the monotone-transform contract at the
// public level: SqL2 must produce the same DBSCAN* clusters as L2 at the
// squared radius and the same HDBSCAN* dendrogram topology sizes.
func TestSqL2MatchesL2Clusters(t *testing.T) {
	pts := GenerateGaussianMixture(300, 3, 4, 17)
	eps := 1.2
	l2, err := DBSCANStarMetric(pts, 5, eps, MetricL2)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := DBSCANStarMetric(pts, 5, eps*eps, MetricSqL2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameClustering(l2, sq) {
		t.Fatal("sql2 at eps^2 disagrees with l2 at eps")
	}
}

func TestOPTICSMetricRuns(t *testing.T) {
	pts := GenerateUniform(120, 2, 3)
	for _, m := range allMetrics() {
		order, err := OPTICSMetric(pts, 5, math.Inf(1), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(order) != pts.N {
			t.Fatalf("%v: ordering has %d entries, want %d", m, len(order), pts.N)
		}
	}
}

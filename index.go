package parclust

import (
	"context"
	"fmt"
	"math"

	"parclust/internal/dbscan"
	"parclust/internal/engine"
	"parclust/internal/hdbscan"
	"parclust/internal/kdtree"
	"parclust/internal/optics"
)

// ErrOverloaded is returned by queries that needed a cold stage build while
// the Index's build gate (SetBuildGate) was saturated. Nothing was built;
// queries over already-memoized stages are unaffected.
var ErrOverloaded = engine.ErrOverloaded

// Neighbor is one k-NN result entry: an original point id and its
// tree-metric distance to the query point.
type Neighbor = kdtree.Neighbor

// IndexOptions configures NewIndex. The zero value (and a nil pointer)
// selects the defaults.
type IndexOptions struct {
	// Metric is the distance kernel every query runs under
	// (default MetricL2).
	Metric Metric

	// Float32 opts the Index into the float32 SoA fast path: the k-d tree
	// carries a dimension-blocked float32 copy of the points and KNN, core
	// distances, range queries, BCCP, and Borůvka run hand-unrolled lane
	// scans over it. Exact float64 remains the default; see WithFloat32 and
	// the precision contract in the package documentation.
	Float32 bool
}

// WithFloat32 returns o (allocating one if nil) with the float32 fast path
// enabled, so call sites can write
// NewIndex(pts, parclust.WithFloat32()) or chain it onto existing options.
//
// Precision contract: pruning bounds stay exact float64, point-pair
// distances are computed in float32 comparison space (squared Euclidean
// for l2/sql2/angular; the metric itself for l1/linf) and widened to
// float64 for every cross-candidate comparison, so results differ from the
// float64 path only by float32 rounding of individual distances — bounded
// relative error on MST weights and merge heights, and possible label
// flips only for points whose assignment is decided at float32 resolution.
// Coordinates must stay within metric.MaxAbsCoord32 (≈1.3e17 at dim 128);
// NewIndex rejects the dataset otherwise, so squared-space accumulation
// can never overflow to ±Inf.
func (o *IndexOptions) WithFloat32() *IndexOptions {
	if o == nil {
		o = &IndexOptions{}
	}
	o.Float32 = true
	return o
}

// WithFloat32 returns fresh IndexOptions with the float32 fast path
// enabled and the default metric.
func WithFloat32() *IndexOptions { return (&IndexOptions{}).WithFloat32() }

// Index is a reusable, build-once/query-many handle over one immutable
// point set: it decomposes the clustering pipeline into explicit stages —
//
//	tree ──> coreDist(minPts) ──> mst(algo, minPts) ──> dendrogram + cut
//
// — and memoizes each stage output keyed on its parameters, so every query
// reuses whatever upstream work previous queries already paid for.
// HDBSCAN, DBSCAN, OPTICS, EMST, SingleLinkage, and KNN all share one tree
// build (and one kd-order permutation); changing minPts recomputes only
// core distances and the MST, not the tree; changing eps recomputes nothing
// but the precomputed dendrogram cut. Stats reports per-stage cache
// hits/misses.
//
// # Concurrency
//
// An Index is safe for concurrent use by multiple goroutines. Memoized
// stage outputs are immutable after publication and are read without
// locking; stage computation (a cache miss) is serialized internally, so
// concurrent first queries for the same parameters compute the stage once.
// Pure read queries (KNN, RangeQuery, DBSCAN, OPTICS, flat cuts) run
// concurrently with each other and with an in-flight stage computation.
// Results that expose shared stage outputs — Hierarchy.MST,
// Hierarchy.CoreDist, CoreDistances — must be treated as read-only; the
// same applies to the points passed to NewIndex, which the Index keeps a
// reference to (the angular kernel excepted, which normalizes into a
// private copy).
//
// Repeated queries with equal parameters return results backed by the same
// memoized stage data; all results are byte-identical to the one-shot
// package-level functions, which are themselves thin wrappers over a
// throwaway Index.
type Index struct {
	metric Metric
	eng    *engine.Engine

	// ctx, when non-nil, bounds every cold stage build this handle
	// triggers (see WithContext). nil means context.Background().
	ctx context.Context
}

// WithContext returns a handle sharing this Index's memoized stages whose
// queries are bounded by ctx: a cold stage build checks ctx before
// starting, a parked duplicate request abandons its wait when ctx is done,
// and a running build is cooperatively cancelled once every request
// interested in it is gone (the query then returns ctx.Err()). Queries
// served from memoized stages never fail. The parent Index is unaffected.
func (ix *Index) WithContext(ctx context.Context) *Index {
	c := *ix
	c.ctx = ctx
	return &c
}

// SetBuildGate installs an admission gate consulted before every cold
// stage build: gate() either admits (returning a release func the engine
// calls when the build finishes) or rejects, failing the query with
// ErrOverloaded. Coalesced duplicate requests ride the admitted leader and
// never consume extra capacity; memoized reads bypass the gate entirely.
func (ix *Index) SetBuildGate(gate func() (release func(), ok bool)) {
	ix.eng.SetBuildGate(gate)
}

// NewIndex validates pts and returns an Index over it. The points are
// captured by reference (except under MetricAngular, which stores a
// unit-normalized copy) and must not be mutated while the Index is in use.
func NewIndex(pts Points, opts *IndexOptions) (*Index, error) {
	m := MetricL2
	f32 := false
	if opts != nil {
		m = opts.Metric
		f32 = opts.Float32
	}
	prepared, kern, err := prepareMetric(pts, m)
	if err != nil {
		return nil, err
	}
	ix := &Index{metric: m, eng: engine.New(prepared, kern)}
	if f32 {
		if err := ix.eng.EnableFloat32(); err != nil {
			return nil, fmt.Errorf("parclust: %w", err)
		}
	}
	return ix, nil
}

// Float32 reports whether the Index runs on the float32 fast path.
func (ix *Index) Float32() bool { return ix.eng.Float32() }

// N returns the number of live indexed points: the initial rows plus
// Inserts, minus Deletes.
func (ix *Index) N() int { return ix.eng.N() }

// Dim returns the dimensionality of the indexed points.
func (ix *Index) Dim() int { return ix.eng.Dim() }

// Metric returns the distance kernel the Index runs under.
func (ix *Index) Metric() Metric { return ix.metric }

// IndexStats is a snapshot of an Index's per-stage cache counters: Builds
// count stage executions (misses), Hits count queries served from a
// memoized stage, and Coalesced counts queries that parked on another
// goroutine's in-flight build of the same stage (the singleflight
// outcome). After any number of queries over one dataset,
// TreeBuilds == 1 and MSTBuilds equals the number of distinct
// (pipeline, algorithm, minPts) combinations queried.
type IndexStats = engine.Counters

// Stats returns a snapshot of the per-stage cache counters.
func (ix *Index) Stats() IndexStats { return ix.eng.Counters() }

// ApproxBytes estimates the resident memory of a warm Index in bytes: the
// retained input rows, the k-d tree (kd-ordered point copy, ~2n arena
// nodes with their [lo|hi|ctr] geometry blocks, the two permutations), a
// fully-exercised stage cache (an allowance of four core-distance sets,
// two MST edge lists, and the dendrogram + cut structures), plus the
// actual resident size of the cut-result caches (the one component that
// grows after warmup — each cached cut retains ~4·n bytes of labels,
// bounded per hierarchy stage). The serving registry charges this estimate
// against its -max-bytes budget at upload time and re-charges it after
// sweep traffic has populated the cut caches; it is a sizing model, not an
// accounting of live allocations, and deliberately errs on the warm side
// so a budget holds under sweep traffic.
func (ix *Index) ApproxBytes() int64 {
	n, dim := int64(ix.N()), int64(ix.Dim())
	if n == 0 {
		return 4096
	}
	pts := 8 * n * dim                      // caller's rows, retained by reference
	tree := 8*n*dim + 2*n*(24*dim+64) + 8*n // kd-order copy + node slab/geometry + Orig/Inv
	cache := 4*8*n + 2*24*n + 96*n          // core-distance sets + MSTs + dendrogram/cutter
	var f32 int64
	if ix.eng.Float32() {
		f32 = 8 * n * dim // float32 row copy + SoA panels (4 bytes each)
	}
	var dyn int64
	if info := ix.eng.DynInfo(); info.Dirty {
		// Uncompacted mutations: overlay rows plus the external-id and
		// dense-id maps kept alive until the next compaction.
		dyn = 8*int64(info.Overlay)*dim + 24*n
	}
	return pts + tree + cache + f32 + dyn + ix.eng.CutCacheBytes() + 4096
}

// HDBSCAN returns the memoized HDBSCAN* hierarchy for minPts (default
// space-efficient algorithm). The first call per minPts computes core
// distances and the mutual-reachability MST over the shared tree; later
// calls are cache hits.
func (ix *Index) HDBSCAN(minPts int) (*Hierarchy, error) {
	return ix.hdbscanWithStats(minPts, HDBSCANMemoGFK, nil)
}

// HDBSCANWithAlgorithm is HDBSCAN with an explicit MST algorithm choice.
func (ix *Index) HDBSCANWithAlgorithm(minPts int, algo HDBSCANAlgorithm) (*Hierarchy, error) {
	return ix.hdbscanWithStats(minPts, algo, nil)
}

func (ix *Index) hdbscanWithStats(minPts int, algo HDBSCANAlgorithm, stats *Stats) (*Hierarchy, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("parclust: minPts must be >= 1, got %d", minPts)
	}
	if n := ix.N(); minPts > n && n > 0 {
		return nil, fmt.Errorf("parclust: minPts=%d exceeds number of points %d", minPts, n)
	}
	ha, err := hdbscanAlgoFor(algo)
	if err != nil {
		return nil, err
	}
	if stats == nil {
		stats = NewStats()
	}
	st, err := ix.eng.Hierarchy(ix.ctx, engine.KindHDBSCAN, uint8(ha), minPts, stats)
	if err != nil {
		return nil, err
	}
	return newHierarchy(st, minPts, stats), nil
}

// SingleLinkage returns the memoized single-linkage hierarchy (the ordered
// dendrogram over the EMST).
func (ix *Index) SingleLinkage() (*Hierarchy, error) {
	return ix.singleLinkageWithStats(nil)
}

func (ix *Index) singleLinkageWithStats(stats *Stats) (*Hierarchy, error) {
	st, err := ix.eng.Hierarchy(ix.ctx, engine.KindEMST, uint8(engine.EMSTMemoGFK), 1, stats)
	if err != nil {
		return nil, err
	}
	return newHierarchy(st, 1, stats), nil
}

// EMST returns the memoized minimum spanning tree under the Index's kernel
// with the default (MemoGFK) algorithm. The returned slice is shared and
// must be treated as read-only.
func (ix *Index) EMST() ([]Edge, error) {
	return ix.emstWithStats(EMSTMemoGFK, nil)
}

// EMSTWithAlgorithm is EMST with an explicit algorithm choice.
// EMSTDelaunay2D requires MetricL2 and 2D points.
func (ix *Index) EMSTWithAlgorithm(algo EMSTAlgorithm) ([]Edge, error) {
	return ix.emstWithStats(algo, nil)
}

func (ix *Index) emstWithStats(algo EMSTAlgorithm, stats *Stats) ([]Edge, error) {
	if ix.N() <= 1 {
		return nil, nil
	}
	ea, err := emstAlgoFor(algo)
	if err != nil {
		return nil, err
	}
	if algo == EMSTDelaunay2D {
		if ix.metric != MetricL2 {
			return nil, fmt.Errorf("parclust: %v requires the l2 metric, got %v", algo, ix.metric)
		}
		if ix.Dim() != 2 {
			return nil, fmt.Errorf("parclust: %v requires 2D points, got %dD", algo, ix.Dim())
		}
	}
	return ix.eng.EMST(ix.ctx, ea, stats)
}

// DBSCANStar computes the flat DBSCAN* clustering at (minPts, eps) over
// the shared tree: repeated queries never rebuild it, only the per-call
// range queries run. For sweeps over many eps at one minPts,
// HDBSCAN(minPts) followed by ClustersAt is cheaper still (each cut is
// near-O(n) off the precomputed merge order).
func (ix *Index) DBSCANStar(minPts int, eps float64) (Clustering, error) {
	r, done, err := ix.dbscanStar(minPts, eps)
	if err != nil || done {
		return r, err
	}
	t, err := ix.eng.CanonTree(ix.ctx, nil)
	if err != nil {
		return Clustering{}, err
	}
	res := ix.dbscanResult(t, minPts, eps)
	return Clustering{Labels: res.Labels, NumClusters: res.NumClusters}, nil
}

// DBSCAN computes the original Ester et al. clustering (DBSCAN* plus
// border-point attachment) at (minPts, eps) over the shared tree.
func (ix *Index) DBSCAN(minPts int, eps float64) (Clustering, error) {
	r, done, err := ix.dbscanStar(minPts, eps)
	if err != nil || done {
		return r, err
	}
	t, err := ix.eng.CanonTree(ix.ctx, nil)
	if err != nil {
		return Clustering{}, err
	}
	core := ix.dbscanResult(t, minPts, eps)
	res := dbscan.AttachBorders(t, core, eps)
	return Clustering{Labels: res.Labels, NumClusters: res.NumClusters}, nil
}

// dbscanStar handles the validation and degenerate cases shared by DBSCAN
// and DBSCANStar; done reports that the returned clustering is final.
func (ix *Index) dbscanStar(minPts int, eps float64) (Clustering, bool, error) {
	if minPts < 1 || eps < 0 || math.IsNaN(eps) {
		return Clustering{}, false, fmt.Errorf("parclust: invalid minPts=%d or eps=%v", minPts, eps)
	}
	if minPts > ix.N() {
		// No point can have minPts neighbors: everything is noise, and
		// border attachment has no clusters to attach to.
		return allNoise(ix.N()), true, nil
	}
	return Clustering{}, false, nil
}

// dbscanResult runs the core-point DBSCAN* computation over the given
// canonical tree (one coherent tree serves core flags, components, and
// border attachment even if a mutation lands mid-query). Core flags come
// from range counts — the definition every DBSCAN entry point has always
// used — not from the sqrt'd memoized core distances, whose double rounding
// could flip boundary-eps cases.
func (ix *Index) dbscanResult(t *kdtree.Tree, minPts int, eps float64) dbscan.Result {
	return dbscan.StarWithCore(t, dbscan.CoreByRangeCount(t, minPts, eps), eps)
}

// OPTICS computes the classic sequential OPTICS ordering at (minPts, eps)
// over the shared tree and memoized core distances.
func (ix *Index) OPTICS(minPts int, eps float64) ([]OPTICSEntry, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("parclust: invalid minPts=%d", minPts)
	}
	if math.IsNaN(eps) || eps < 0 {
		return nil, fmt.Errorf("parclust: invalid eps=%v", eps)
	}
	if ix.N() == 0 {
		return nil, nil
	}
	for {
		t, err := ix.eng.CanonTree(ix.ctx, nil)
		if err != nil {
			return nil, err
		}
		cd, err := ix.eng.CoreDist(ix.ctx, minPts, nil)
		if err != nil {
			return nil, err
		}
		// A mutation can land between the two stage fetches; retry until the
		// core distances describe exactly this tree's point set.
		if len(cd) == t.Pts.N {
			return optics.RunOnTree(t, cd, eps, false), nil
		}
	}
}

// KNN returns the k nearest neighbors of the indexed point with dense id q
// (including q itself), sorted by increasing tree-metric distance. On a
// mutated Index the overlay is merged and tombstones are skipped, so the
// answer matches a fresh Index over the live rows.
func (ix *Index) KNN(q int32, k int) ([]Neighbor, error) {
	if q < 0 || int(q) >= ix.N() {
		return nil, fmt.Errorf("parclust: point id %d out of range [0, %d)", q, ix.N())
	}
	if k < 1 {
		return nil, fmt.Errorf("parclust: k must be >= 1, got %d", k)
	}
	var ws kdtree.KNNWorkspace
	return ix.eng.KNNLive(ix.ctx, int(q), k, &ws)
}

// RangeQuery returns the dense ids of all indexed points within
// tree-metric distance r of the point with dense id q (including q
// itself), in no particular order. On a mutated Index the overlay is
// merged and tombstones are skipped.
func (ix *Index) RangeQuery(q int32, r float64) ([]int32, error) {
	if q < 0 || int(q) >= ix.N() {
		return nil, fmt.Errorf("parclust: point id %d out of range [0, %d)", q, ix.N())
	}
	if r < 0 || math.IsNaN(r) {
		return nil, fmt.Errorf("parclust: invalid radius %v", r)
	}
	return ix.eng.RangeLive(ix.ctx, int(q), r)
}

// RangeCount returns the number of indexed points within tree-metric
// distance r of the point with dense id q (including q itself), counting
// overlay inserts and excluding tombstoned points on a mutated Index.
func (ix *Index) RangeCount(q int32, r float64) (int, error) {
	if q < 0 || int(q) >= ix.N() {
		return 0, fmt.Errorf("parclust: point id %d out of range [0, %d)", q, ix.N())
	}
	if r < 0 || math.IsNaN(r) {
		return 0, fmt.Errorf("parclust: invalid radius %v", r)
	}
	return ix.eng.RangeCountLive(ix.ctx, int(q), r)
}

// CoreDistances returns the memoized per-point core distances for minPts
// (the distance to the minPts-th nearest neighbor counting the point
// itself), in original id order. The returned slice is shared and must be
// treated as read-only.
func (ix *Index) CoreDistances(minPts int) ([]float64, error) {
	if minPts < 1 {
		return nil, fmt.Errorf("parclust: minPts must be >= 1, got %d", minPts)
	}
	if n := ix.N(); minPts > n && n > 0 {
		return nil, fmt.Errorf("parclust: minPts=%d exceeds number of points %d", minPts, n)
	}
	return ix.eng.CoreDist(ix.ctx, minPts, nil)
}

func allNoise(n int) Clustering {
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	return Clustering{Labels: labels, NumClusters: 0}
}

// emstAlgoFor maps the public EMST algorithm constants to the engine's.
func emstAlgoFor(algo EMSTAlgorithm) (engine.EMSTAlgo, error) {
	switch algo {
	case EMSTMemoGFK:
		return engine.EMSTMemoGFK, nil
	case EMSTGFK:
		return engine.EMSTGFK, nil
	case EMSTNaive:
		return engine.EMSTNaive, nil
	case EMSTBoruvka:
		return engine.EMSTBoruvka, nil
	case EMSTDelaunay2D:
		return engine.EMSTDelaunay2D, nil
	case EMSTWSPDBoruvka:
		return engine.EMSTWSPDBoruvka, nil
	default:
		return 0, fmt.Errorf("parclust: unknown EMST algorithm %v", algo)
	}
}

// hdbscanAlgoFor maps the public HDBSCAN algorithm constants to the
// internal package's.
func hdbscanAlgoFor(algo HDBSCANAlgorithm) (hdbscan.Algorithm, error) {
	switch algo {
	case HDBSCANMemoGFK:
		return hdbscan.MemoGFK, nil
	case HDBSCANGanTao:
		return hdbscan.GanTao, nil
	case HDBSCANGanTaoFull:
		return hdbscan.GanTaoFull, nil
	default:
		return 0, fmt.Errorf("parclust: unknown HDBSCAN algorithm %v", algo)
	}
}

package parclust

// Benchmarks, one per table and figure of the paper's evaluation
// (Section 5). Each benchmark exercises the exact code path the
// corresponding cmd/benchsuite experiment uses; benchsuite produces the
// paper-style rows, while these provide ns/op and allocation profiles.
// Sizes are kept modest so `go test -bench=.` completes quickly; use
// cmd/benchsuite -n to scale up.

import (
	"fmt"
	"testing"

	"parclust/internal/dendrogram"
	"parclust/internal/generator"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	mstpkg "parclust/internal/mst"
	"parclust/internal/wspd"
)

// mstConfig builds an internal MST config for ablation benchmarks.
func mstConfig(t *kdtree.Tree) mstpkg.Config {
	return mstpkg.Config{Tree: t, Metric: kdtree.NewEuclidean(t), Sep: wspd.Geometric{S: 2}}
}

const benchN = 10000

func benchPoints(dim int) Points { return generator.UniformFill(benchN, dim, 1) }
func benchVarden(dim int) Points { return generator.SSVarden(benchN, dim, 1) }

// BenchmarkTable2_SpeedupInputs measures the quantities Table 2 aggregates:
// the fastest algorithms on a representative dataset.
func BenchmarkTable2_SpeedupInputs(b *testing.B) {
	pts := benchVarden(3)
	b.Run("EMST-MemoGFK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EMST(pts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HDBSCAN-MemoGFK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HDBSCAN(pts, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3_DualTreeBoruvka is the sequential baseline the paper
// compares against mlpack (Table 3).
func BenchmarkTable3_DualTreeBoruvka(b *testing.B) {
	for _, dim := range []int{2, 3, 5} {
		pts := benchPoints(dim)
		b.Run(fmt.Sprintf("%dD-UniformFill", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EMSTWithStats(pts, EMSTBoruvka, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4_EMST covers the EMST algorithm matrix of Table 4.
func BenchmarkTable4_EMST(b *testing.B) {
	algos := []EMSTAlgorithm{EMSTNaive, EMSTGFK, EMSTMemoGFK}
	for _, dim := range []int{2, 5} {
		for _, gen := range []struct {
			name string
			pts  Points
		}{
			{"UniformFill", benchPoints(dim)},
			{"SS-varden", benchVarden(dim)},
		} {
			for _, algo := range algos {
				b.Run(fmt.Sprintf("%dD-%s/%v", dim, gen.name, algo), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := EMSTWithStats(gen.pts, algo, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
	// Delaunay is 2D-only.
	pts2 := benchPoints(2)
	b.Run("2D-UniformFill/EMST-Delaunay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EMSTWithStats(pts2, EMSTDelaunay2D, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable5_HDBSCAN covers the HDBSCAN* matrix of Table 5
// (times include dendrogram construction, as in the paper).
func BenchmarkTable5_HDBSCAN(b *testing.B) {
	for _, dim := range []int{2, 5} {
		for _, algo := range []HDBSCANAlgorithm{HDBSCANMemoGFK, HDBSCANGanTao} {
			pts := benchVarden(dim)
			b.Run(fmt.Sprintf("%dD-SS-varden/%v", dim, algo), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := HDBSCANWithStats(pts, 10, algo, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6_EMSTThreads is the thread-scaling series of Figure 6;
// vary GOMAXPROCS externally (benchsuite sweeps it automatically).
func BenchmarkFig6_EMSTThreads(b *testing.B) {
	pts := benchPoints(3)
	for i := 0; i < b.N; i++ {
		if _, err := EMST(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_HDBSCANThreads is the thread-scaling series of Figure 7.
func BenchmarkFig7_HDBSCANThreads(b *testing.B) {
	pts := benchVarden(3)
	for i := 0; i < b.N; i++ {
		if _, err := HDBSCAN(pts, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_Decomposition separates the phases of Figure 8: tree build,
// core distances, WSPD/MST, and dendrogram.
func BenchmarkFig8_Decomposition(b *testing.B) {
	pts := benchVarden(3)
	b.Run("build-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kdtree.Build(pts, 1)
		}
	})
	t := kdtree.Build(pts, 1)
	b.Run("core-dist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.CoreDistances(10)
		}
	})
	edges, err := EMST(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dendrogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dendrogram.BuildParallel(pts.N, edges, 0)
		}
	})
}

// BenchmarkFig9_Dendrogram compares sequential and parallel ordered
// dendrogram construction for single-linkage and HDBSCAN* inputs (Figure 9).
func BenchmarkFig9_Dendrogram(b *testing.B) {
	pts := benchVarden(2)
	emst, err := EMST(pts)
	if err != nil {
		b.Fatal(err)
	}
	h, err := HDBSCAN(pts, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name  string
		edges []Edge
	}{{"single-linkage", emst}, {"hdbscan-minpts10", h.MST}} {
		b.Run(v.name+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dendrogram.BuildSequential(pts.N, v.edges, 0)
			}
		})
		b.Run(v.name+"/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dendrogram.BuildParallel(pts.N, v.edges, 0)
			}
		})
	}
}

// BenchmarkFig10_ApproxOPTICS compares approximate OPTICS against the exact
// algorithms (Figure 10).
func BenchmarkFig10_ApproxOPTICS(b *testing.B) {
	pts := generator.GaussianMixture(benchN, 7, 20, 1)
	b.Run("approx-rho0.125", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ApproxOPTICS(pts, 10, 0.125); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-memogfk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HDBSCAN(pts, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemory_PairsMaterialized quantifies the MemoGFK memory win
// (Section 3.1.3): peak resident pairs, reported as custom metrics.
func BenchmarkMemory_PairsMaterialized(b *testing.B) {
	pts := benchPoints(5)
	b.Run("GFK-full-WSPD", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			stats := NewStats()
			if _, err := EMSTWithStats(pts, EMSTGFK, stats); err != nil {
				b.Fatal(err)
			}
			peak = stats.PeakPairsResident
		}
		b.ReportMetric(float64(peak), "peak-pairs")
	})
	b.Run("MemoGFK", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			stats := NewStats()
			if _, err := EMSTWithStats(pts, EMSTMemoGFK, stats); err != nil {
				b.Fatal(err)
			}
			peak = stats.PeakPairsResident
		}
		b.ReportMetric(float64(peak), "peak-pairs")
	})
}

// BenchmarkAblation_WellSeparation isolates the paper's new disjunctive
// well-separation (Section 3.2.2): same metric and machinery, different
// separation predicate.
func BenchmarkAblation_WellSeparation(b *testing.B) {
	pts := benchVarden(5)
	for _, algo := range []HDBSCANAlgorithm{HDBSCANMemoGFK, HDBSCANGanTao} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := HDBSCANWithStats(pts, 10, algo, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DendrogramThreshold sweeps the sequential cutoff of the
// parallel dendrogram builder (the paper's "switch below n/2" note).
func BenchmarkAblation_DendrogramThreshold(b *testing.B) {
	pts := benchVarden(2)
	edges, err := EMST(pts)
	if err != nil {
		b.Fatal(err)
	}
	for _, thr := range []int{256, 2048, 1 << 14} {
		b.Run(fmt.Sprintf("threshold-%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dendrogram.BuildParallelThreshold(pts.N, edges, 0, thr)
			}
		})
	}
}

// BenchmarkSubstrate_KdTree profiles the substrate operations every
// algorithm relies on.
func BenchmarkSubstrate_KdTree(b *testing.B) {
	pts := benchPoints(3)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kdtree.Build(pts, 1)
		}
	})
	t := kdtree.Build(pts, 1)
	b.Run("knn-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.KNN(int32(i%pts.N), 10)
		}
	})
	b.Run("wspd-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wspd.Count(t, wspd.Geometric{S: 2})
		}
	})
}

var sinkPts geometry.Points

// BenchmarkSubstrate_Generators measures workload generation throughput.
func BenchmarkSubstrate_Generators(b *testing.B) {
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkPts = generator.UniformFill(benchN, 3, int64(i))
		}
	})
	b.Run("varden", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkPts = generator.SSVarden(benchN, 3, int64(i))
		}
	})
}

// BenchmarkAblation_BetaSchedule contrasts the paper's doubling beta
// schedule with the linear schedule of the sequential GFK of Chatterjee et
// al. (Section 3.1.2 notes doubling is crucial for the depth bound).
func BenchmarkAblation_BetaSchedule(b *testing.B) {
	pts := benchPoints(3)
	t := kdtree.Build(pts, 1)
	for _, linear := range []bool{false, true} {
		name := "doubling"
		if linear {
			name = "linear"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := mstConfig(t)
				cfg.LinearBeta = linear
				mstpkg.MemoGFK(cfg)
			}
		})
	}
}

// BenchmarkAblation_MSTStrategy compares the Kruskal-based MemoGFK against
// the Borůvka-over-WSPD strategy of Appendix B and the single-tree Borůvka.
func BenchmarkAblation_MSTStrategy(b *testing.B) {
	pts := benchVarden(3)
	for _, algo := range []EMSTAlgorithm{EMSTMemoGFK, EMSTWSPDBoruvka, EMSTBoruvka} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EMSTWithStats(pts, algo, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexServe measures the serving regimes the Index separates: a
// minPts x eps parameter sweep answered by one shared Index versus the
// one-shot APIs in a loop (the cmd/benchsuite "serve" experiment).
func BenchmarkIndexServe(b *testing.B) {
	pts := benchVarden(2)
	minPtsList := []int{5, 10, 20}
	epsList := []float64{0.5, 1, 2, 4, 8}
	b.Run("shared-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := NewIndex(pts, nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, mp := range minPtsList {
				h, err := idx.HDBSCAN(mp)
				if err != nil {
					b.Fatal(err)
				}
				for _, eps := range epsList {
					h.ClustersAt(eps)
					h.NumNoiseAt(eps)
				}
			}
		}
	})
	b.Run("one-shot-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, mp := range minPtsList {
				for _, eps := range epsList {
					h, err := HDBSCAN(pts, mp)
					if err != nil {
						b.Fatal(err)
					}
					h.ClustersAt(eps)
					h.NumNoiseAt(eps)
				}
			}
		}
	})
}

// BenchmarkIndexCut isolates the precomputed-cut path: repeated ClustersAt
// on a warm hierarchy (near-O(n) off the sorted merge order) and the
// O(log n) NumNoiseAt.
func BenchmarkIndexCut(b *testing.B) {
	pts := benchVarden(2)
	idx, err := NewIndex(pts, nil)
	if err != nil {
		b.Fatal(err)
	}
	h, err := idx.HDBSCAN(10)
	if err != nil {
		b.Fatal(err)
	}
	h.ClustersAt(1) // warm the cut structure
	b.Run("ClustersAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.ClustersAt(float64(i%5) + 0.5)
		}
	})
	b.Run("NumNoiseAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.NumNoiseAt(float64(i%5) + 0.5)
		}
	})
}

// BenchmarkHighdim_Float32 compares the float32 SoA fast path against the
// float64 default on embedding-style high-dimensional data (the benchsuite
// `highdim` experiment in benchmark form): end-to-end HDBSCAN*, the
// core-distance stage, and warm per-query k-NN. The float64 runs are the
// baselines the acceptance ratios divide by.
func BenchmarkHighdim_Float32(b *testing.B) {
	for _, dim := range []int{16, 128} {
		n := benchN / 2
		if dim >= 128 {
			n = benchN / 10 // keep the -bench=. sweep quick; benchsuite scales up
		}
		pts := generator.Embed(n, dim, 16, 1)
		for _, dtype := range []string{"float64", "float32"} {
			opts := &IndexOptions{Float32: dtype == "float32"}
			b.Run(fmt.Sprintf("op=hdbscan/dim=%d/dtype=%s", dim, dtype), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx, err := NewIndex(pts, opts)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := idx.HDBSCAN(10); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("op=coredist/dim=%d/dtype=%s", dim, dtype), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer() // stage memoization needs a fresh Index per run
					idx, err := NewIndex(pts, opts)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := idx.CoreDistances(10); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("op=knn/dim=%d/dtype=%s", dim, dtype), func(b *testing.B) {
				idx, err := NewIndex(pts, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := idx.KNN(0, 10); err != nil { // warm the tree stage
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.KNN(int32(i%n), 10); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

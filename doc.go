// Package parclust provides fast parallel algorithms for Euclidean minimum
// spanning trees (EMST) and hierarchical density-based spatial clustering
// (HDBSCAN*), reproducing Wang, Yu, Gu, and Shun, "Fast Parallel Algorithms
// for Euclidean Minimum Spanning Tree and Hierarchical Spatial Clustering"
// (SIGMOD 2021).
//
// The library computes:
//
//   - EMSTs with the memory-optimized parallel GeoFilterKruskal algorithm
//     (MemoGFK) over a well-separated pair decomposition, plus the GFK,
//     Naive, Borůvka, and 2D-Delaunay baselines from the paper's evaluation;
//   - HDBSCAN* cluster hierarchies — MSTs of the mutual reachability graph —
//     using the paper's new disjunctive notion of well-separation, with the
//     exact Gan–Tao baseline and the approximate OPTICS variant;
//   - ordered dendrograms and reachability plots with a parallel top-down
//     divide-and-conquer algorithm, supporting single-linkage clustering and
//     DBSCAN* cluster extraction at any radius.
//
// All parallelism runs on a persistent work-stealing fork-join scheduler
// (package internal/parallel): a process-wide pool of GOMAXPROCS workers
// with per-worker steal queues and work-first inline execution, so nested
// forks — k-d tree build inside WSPD inside MemoGFK inside the dendrogram
// builder — cost a task handle, not a goroutine. The worker count follows
// runtime.GOMAXPROCS; all algorithms are deterministic for a fixed input
// regardless of the worker count or steal schedule, and with GOMAXPROCS=1
// every code path runs as plain sequential code.
//
// # Quick start
//
//	pts := parclust.GenerateUniform(100000, 2, 42)
//	edges, _ := parclust.EMST(pts)
//	h, _ := parclust.HDBSCAN(pts, 10)
//	clusters := h.ClustersAt(2.5)
package parclust

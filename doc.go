// Package parclust provides fast parallel algorithms for Euclidean minimum
// spanning trees (EMST) and hierarchical density-based spatial clustering
// (HDBSCAN*), reproducing Wang, Yu, Gu, and Shun, "Fast Parallel Algorithms
// for Euclidean Minimum Spanning Tree and Hierarchical Spatial Clustering"
// (SIGMOD 2021).
//
// The library computes:
//
//   - EMSTs with the memory-optimized parallel GeoFilterKruskal algorithm
//     (MemoGFK) over a well-separated pair decomposition, plus the GFK,
//     Naive, Borůvka, and 2D-Delaunay baselines from the paper's evaluation;
//   - HDBSCAN* cluster hierarchies — MSTs of the mutual reachability graph —
//     using the paper's new disjunctive notion of well-separation, with the
//     exact Gan–Tao baseline and the approximate OPTICS variant;
//   - ordered dendrograms and reachability plots with a parallel top-down
//     divide-and-conquer algorithm, supporting single-linkage clustering and
//     DBSCAN* cluster extraction at any radius.
//
// # The Index: build once, serve many queries
//
// Index is the staged pipeline engine behind every entry point: it
// decomposes the call chain into explicit stages — k-d tree, core
// distances per minPts, MST per (pipeline, algorithm, minPts), and the
// ordered dendrogram with its precomputed cut structure — and memoizes
// each stage output keyed on its parameters. All queries over one Index
// (HDBSCAN, DBSCAN, OPTICS, EMST, SingleLinkage, KNN, RangeQuery) share a
// single tree build and kd-order permutation; changing minPts recomputes
// only core distances and the MST; changing eps recomputes nothing but the
// dendrogram cut, which runs off a precomputed sorted merge order in
// near-O(n) (NumNoiseAt in O(log n)). Index.Stats exposes per-stage cache
// hit/miss counters. The one-shot package-level functions are thin
// wrappers over a throwaway Index and behave exactly as before.
//
// Concurrency: an Index is safe for concurrent use. Memoized stage
// outputs are immutable after publication and read without locking; stage
// computation is serialized internally (MST runs annotate the shared
// tree), and concurrent first queries for equal parameters compute the
// stage once. Pure read queries run concurrently with each other and with
// in-flight stage computation. Slices exposing shared stage data —
// Hierarchy.MST, Hierarchy.CoreDist, Index.CoreDistances — and the points
// passed to NewIndex must be treated as read-only while the Index is in
// use. Per-run MST scratch comes from a process-wide workspace pool, so an
// Index holds no mutable per-query state of its own.
//
// # Metric kernels
//
// Every algorithm is parameterized over a pluggable distance kernel
// selected by the Metric type: MetricL2 (the paper's Euclidean setting
// and the default), MetricSqL2 (squared Euclidean — same trees and
// clusters, squared weights), MetricL1 (Manhattan), MetricLInf
// (Chebyshev), and MetricAngular (the angle between points treated as
// directions; rows are unit-normalized internally and zero vectors are
// rejected). The *Metric entry points (EMSTMetric, HDBSCANMetric,
// SingleLinkageMetric, DBSCANStarMetric, DBSCANMetric, OPTICSMetric)
// accept a kernel; the unsuffixed functions run under MetricL2. Two
// algorithms are Euclidean-only by construction and reject other kernels:
// EMSTDelaunay2D (Delaunay triangulations are an L2 object) and
// ApproxOPTICS (its (1+rho) guarantee is L2-specific). The WSPD-based
// algorithms require kernels with the doubling property for their O(n)
// pair bound; all built-in kernels qualify. Correctness of every variant
// under every kernel is enforced differentially against brute-force
// oracles (package internal/oracle).
//
// All parallelism runs on a persistent work-stealing fork-join scheduler
// (package internal/parallel): a process-wide pool of GOMAXPROCS workers
// with per-worker steal queues and work-first inline execution, so nested
// forks — k-d tree build inside WSPD inside MemoGFK inside the dendrogram
// builder — cost a task handle, not a goroutine. The worker count follows
// runtime.GOMAXPROCS; all algorithms are deterministic for a fixed input
// regardless of the worker count or steal schedule, and with GOMAXPROCS=1
// every code path runs as plain sequential code.
//
// # Memory layout
//
// The hot paths are laid out for the cache, not the allocator. The k-d
// tree slab-allocates all of its nodes in one arena with int32 child
// indices and a single contiguous backing array for every node's bounding
// box and center, and it physically permutes its own copy of the points
// into kd-order, so leaf scans in k-NN, range, BCCP, and Borůvka queries
// stream over contiguous rows (the caller's buffer is never mutated, and
// all public results are reported in the caller's original point ids).
// The MST drivers keep their per-round state — union-find, component
// labels, candidate edges, dense per-component reduction slots — in a
// reusable workspace, so steady-state Borůvka and filter-Kruskal rounds
// perform zero heap allocations. See the README's "Performance notes" for
// measured effects.
//
// # Float32 fast path for high-dimensional data
//
// WithFloat32 (IndexOptions.Float32; daemon uploads: "dtype":"float32")
// opts an Index into a float32 SoA fast path aimed at high-dimensional
// workloads, where the O(dim) leaf scans dominate: the k-d tree carries a
// dimension-blocked float32 copy of the points, and k-NN, core distances,
// range queries, BCCP, and Borůvka all lane-scan it with branch-free,
// vectorizable loops. Exact float64 stays the default. The precision
// contract: all spatial pruning uses exact float64 bounds and every
// cross-candidate comparison widens to float64, so results differ from
// the float64 path only by float32 rounding of individual point-pair
// distances — bounded relative error on MST weights and merge heights,
// with label flips possible only for points whose assignment is decided
// at float32 resolution. NewIndex rejects coordinates whose magnitude
// exceeds metric.MaxAbsCoord32(dim), so accumulations can never round to
// ±Inf. Snapshots record the dtype and restore the Index in the same
// mode. At dim 16–128 the fast path measures roughly 2.5–10x on k-NN,
// core distances, and end-to-end HDBSCAN* (see the README's float32
// section).
//
// # Serving and registry memory accounting
//
// The parclustd daemon (cmd/parclustd, handlers in internal/daemon) hosts
// many named datasets, each backed by one Index, in a sharded LRU registry
// (internal/registry) under a -max-bytes admission budget. Concurrent cold
// queries that need the same unbuilt stage coalesce into a single build
// (the N-1 followers park on the leader's flight and are reported in the
// Coalesced counters of IndexStats), and evicting a dataset never frees it
// out from under an in-flight query: queries hold ref-counted handles, and
// an evicted dataset's memory stays charged against the budget until the
// last handle drains.
//
// The budget is accounted in units of ApproxBytes, a warm-Index sizing
// model rather than a live-allocation count: the retained input rows
// (8·n·dim), the k-d tree (its kd-ordered point copy, ~2n arena nodes with
// their contiguous [lo|hi|ctr] geometry blocks, and the two int32
// permutations), plus a stage-cache allowance of four core-distance sets,
// two MST edge lists, and the dendrogram with its cut structure. The
// estimate is charged once at upload, deliberately on the warm side, so a
// budget negotiated at admission time still holds after sweep traffic has
// populated the stage caches.
//
// One component of ApproxBytes is dynamic: each hierarchy stage memoizes
// flat-cut results in a bounded per-stage cache (repeated ClustersAt radii
// are O(1); see CutBuilds/CutHits in Counters), and ApproxBytes includes
// the labels currently retained by those caches. The daemon re-charges a
// dataset's registry accounting after every sweep request, so cut-cache
// growth stays visible to the admission budget between uploads.
//
// # Incremental updates and the stage epoch
//
// Insert and Delete mutate a live Index without rebuilding it: inserted
// rows buffer in an overlay merged into point queries by brute force,
// deleted rows become tombstones the tree traversals skip, and the index
// compacts (rebuilds its canonical base over the survivors, in ascending
// external-id order, through the exact build path a fresh Index uses)
// when the backlog crosses 25% of the live set or a global stage needs
// the full live set. That shared build path is the correctness argument:
// after any mutation sequence, every result — clusterings, MSTs, point
// queries — is byte-identical to a fresh Index over the equivalent
// points.
//
// Every mutation bumps the Index's stage epoch (MutationEpoch) before it
// is applied, then drops exactly the downstream stages — core distances,
// MSTs, dendrograms, and the cut-result caches — while the tree survives
// as a patched base (TreePatches counts these; Compactions counts full
// rebuilds). The epoch is the serving layer's race detector: a daemon
// query captures the epoch at admission and re-checks it before writing
// its response, answering 409 Conflict when a mutation landed mid-query
// instead of serving a mix of pre- and post-mutation state. External ids
// are monotonic and never reused; they are not persisted — WriteSnapshot
// compacts first and a restored Index renumbers survivors 0..m-1 in the
// same dense order, so dense-space answers survive a restart
// byte-for-byte.
//
// # Snapshots: persistence for warm Indexes
//
// WriteSnapshot serializes an Index — its prepared points and every
// memoized stage output (k-d tree arena, core distances per minPts, MSTs,
// dendrograms) — into a versioned, checksummed container; ReadSnapshot
// restores an Index that answers every serialized stage byte-identically
// with zero rebuilds (its Stats build counters stay 0 until a query needs
// something the snapshot did not carry). The container carries a CRC-32C
// per chunk and a content hash over the points: a damaged stage chunk is
// dropped and rebuilt on demand (ReadSnapshotDetails lists the drops),
// while a damaged header or points section fails the whole decode rather
// than serving wrong results. The normative byte-level format
// specification lives in the internal/store package documentation.
//
// The parclustd daemon builds its persistent stage store on snapshots
// (flag -data-dir): uploads persist, memory-budget evictions spill the
// warm stage set (stale-aware — an unchanged dataset is written once),
// queries against non-resident datasets lazily reload, and a graceful
// shutdown persists everything resident, so a restarted daemon serves
// identical responses without rebuilding any stage. See the README's
// "Persistence" section for the serving-level lifecycle.
//
// # Quick start
//
//	pts := parclust.GenerateUniform(100000, 2, 42)
//	edges, _ := parclust.EMST(pts)
//	h, _ := parclust.HDBSCAN(pts, 10)
//	clusters := h.ClustersAt(2.5)
//
//	// Build once, serve many queries:
//	idx, _ := parclust.NewIndex(pts, nil)
//	h5, _ := idx.HDBSCAN(5)    // builds the tree, core distances, MST
//	h9, _ := idx.HDBSCAN(9)    // reuses the tree; new core distances + MST
//	c := h9.ClustersAt(2.5)    // near-O(n) cut off the precomputed merge order
//	nn, _ := idx.KNN(17, 10)   // same tree again
package parclust

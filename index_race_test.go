package parclust

import (
	"reflect"
	"sync"
	"testing"
)

// TestIndexConcurrentStress hammers one shared Index from 8 goroutines with
// a mix of HDBSCAN (two minPts values), DBSCAN/DBSCAN*, flat cuts, OPTICS,
// EMST, and KNN/range queries, verifying every result against a fresh
// one-shot computation. Run under -race it is the memory-safety proof of
// the shared-Index concurrency contract: stage computation serialized,
// published stages read lock-free, pure reads concurrent with in-flight
// stage computation.
func TestIndexConcurrentStress(t *testing.T) {
	n := 1200
	iters := 6
	if testing.Short() {
		n, iters = 600, 3
	}
	pts := GenerateVarden(n, 2, 31)
	idx, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Reference results from fresh one-shot computations.
	const eps = 2.0
	wantH := map[int]*Hierarchy{}
	wantCut := map[int]Clustering{}
	for _, mp := range []int{5, 15} {
		h, err := HDBSCAN(pts, mp)
		if err != nil {
			t.Fatal(err)
		}
		wantH[mp] = h
		wantCut[mp] = h.ClustersAt(eps)
	}
	wantStar, err := DBSCANStar(pts, 5, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantDB, err := DBSCAN(pts, 5, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantEMST, err := EMST(pts)
	if err != nil {
		t.Fatal(err)
	}
	wantOPTICS, err := OPTICS(pts, 5, eps)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (g + it) % 6 {
				case 0, 1:
					mp := []int{5, 15}[(g+it)%2]
					h, err := idx.HDBSCAN(mp)
					if err != nil {
						fail("HDBSCAN(%d): %v", mp, err)
						return
					}
					if !reflect.DeepEqual(h.MST, wantH[mp].MST) {
						fail("HDBSCAN(%d): MST mismatch under concurrency", mp)
						return
					}
					if !reflect.DeepEqual(h.ClustersAt(eps), wantCut[mp]) {
						fail("HDBSCAN(%d): cut mismatch under concurrency", mp)
						return
					}
				case 2:
					c, err := idx.DBSCANStar(5, eps)
					if err != nil || !reflect.DeepEqual(c, wantStar) {
						fail("DBSCANStar mismatch under concurrency (err %v)", err)
						return
					}
				case 3:
					c, err := idx.DBSCAN(5, eps)
					if err != nil || !reflect.DeepEqual(c, wantDB) {
						fail("DBSCAN mismatch under concurrency (err %v)", err)
						return
					}
				case 4:
					q := int32((g*131 + it*17) % n)
					nb, err := idx.KNN(q, 8)
					if err != nil || len(nb) != 8 || nb[0].Idx != q {
						fail("KNN(%d): err %v, %d results", q, err, len(nb))
						return
					}
					// The sqrt->square roundtrip can exclude the k-th
					// neighbor itself, so check query/count consistency
					// rather than an exact count.
					ids, err := idx.RangeQuery(q, nb[7].Dist)
					if err != nil {
						fail("RangeQuery(%d): %v", q, err)
						return
					}
					cnt, err := idx.RangeCount(q, nb[7].Dist)
					if err != nil || cnt != len(ids) || cnt < 1 {
						fail("RangeCount(%d): %d vs %d ids (err %v)", q, cnt, len(ids), err)
						return
					}
				case 5:
					if it%2 == 0 {
						edges, err := idx.EMST()
						if err != nil || !reflect.DeepEqual(edges, wantEMST) {
							fail("EMST mismatch under concurrency (err %v)", err)
							return
						}
					} else {
						o, err := idx.OPTICS(5, eps)
						if err != nil || !reflect.DeepEqual(o, wantOPTICS) {
							fail("OPTICS mismatch under concurrency (err %v)", err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := idx.Stats()
	if s.TreeBuilds != 1 {
		t.Fatalf("concurrent stress built the tree %d times, want 1", s.TreeBuilds)
	}
	if s.MSTBuilds > 3 { // HDBSCAN minPts {5,15} + EMST
		t.Fatalf("concurrent stress ran %d MST builds, want <= 3", s.MSTBuilds)
	}
}

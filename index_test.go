package parclust

import (
	"math"
	"reflect"
	"testing"
)

// TestIndexParameterSweepStats is the acceptance criterion of the staged
// pipeline: a 3 minPts x 5 eps sweep over one Index performs exactly one
// tree build and three MST runs.
func TestIndexParameterSweepStats(t *testing.T) {
	pts := GenerateVarden(2000, 2, 7)
	idx, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	epsList := []float64{0.5, 1, 2, 4, 8}
	for _, minPts := range []int{5, 10, 20} {
		h, err := idx.HDBSCAN(minPts)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range epsList {
			c := h.ClustersAt(eps)
			if got := h.NumNoiseAt(eps); got != countNoise(c) {
				t.Fatalf("minPts=%d eps=%v: NumNoiseAt %d, labels say %d", minPts, eps, got, countNoise(c))
			}
		}
	}
	s := idx.Stats()
	if s.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds = %d, want exactly 1", s.TreeBuilds)
	}
	if s.MSTBuilds != 3 {
		t.Fatalf("MSTBuilds = %d, want exactly 3", s.MSTBuilds)
	}
	if s.CoreDistBuilds != 3 {
		t.Fatalf("CoreDistBuilds = %d, want exactly 3", s.CoreDistBuilds)
	}
	if s.DendrogramBuilds != 3 {
		t.Fatalf("DendrogramBuilds = %d, want exactly 3", s.DendrogramBuilds)
	}
	// Repeating the full sweep must be all hits.
	for _, minPts := range []int{5, 10, 20} {
		if _, err := idx.HDBSCAN(minPts); err != nil {
			t.Fatal(err)
		}
	}
	s2 := idx.Stats()
	if s2.TreeBuilds != 1 || s2.MSTBuilds != 3 || s2.DendrogramHits != s.DendrogramHits+3 {
		t.Fatalf("repeat sweep recomputed stages: %+v -> %+v", s, s2)
	}
}

func countNoise(c Clustering) int {
	n := 0
	for _, l := range c.Labels {
		if l == -1 {
			n++
		}
	}
	return n
}

// TestIndexMatchesOneShot is the differential sweep: a warm shared Index —
// queried in scrambled order so memoized stages are reused across
// parameters — must return byte-identical results to the one-shot APIs
// (themselves throwaway-Index wrappers, so this pins memoization and
// annotation reuse to fresh-computation results) across metrics x minPts x
// eps.
func TestIndexMatchesOneShot(t *testing.T) {
	pts := GenerateVarden(400, 2, 13)
	minPtsList := []int{3, 9}
	epsList := []float64{0, 0.5, 1.5, 4, 1e9}
	for _, m := range Metrics() {
		idx, err := NewIndex(pts, &IndexOptions{Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		// Warm the index out of order so later checks hit memoized stages
		// computed under interleaved annotations.
		for _, mp := range []int{9, 3, 9} {
			if _, err := idx.HDBSCAN(mp); err != nil {
				t.Fatalf("%v: %v", m, err)
			}
		}
		if _, err := idx.EMST(); err != nil {
			t.Fatal(err)
		}
		for _, mp := range minPtsList {
			h1, err := idx.HDBSCAN(mp)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := HDBSCANMetric(pts, mp, m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(h1.MST, h2.MST) {
				t.Fatalf("%v minPts=%d: MST differs between Index and one-shot", m, mp)
			}
			if !reflect.DeepEqual(h1.CoreDist, h2.CoreDist) {
				t.Fatalf("%v minPts=%d: core distances differ", m, mp)
			}
			if !reflect.DeepEqual(h1.ReachabilityPlot(), h2.ReachabilityPlot()) {
				t.Fatalf("%v minPts=%d: reachability plots differ", m, mp)
			}
			for _, eps := range epsList {
				if !reflect.DeepEqual(h1.ClustersAt(eps), h2.ClustersAt(eps)) {
					t.Fatalf("%v minPts=%d eps=%v: cuts differ", m, mp, eps)
				}
				if h1.NumNoiseAt(eps) != h2.NumNoiseAt(eps) {
					t.Fatalf("%v minPts=%d eps=%v: noise counts differ", m, mp, eps)
				}
				c1, err1 := idx.DBSCANStar(mp, eps)
				c2, err2 := DBSCANStarMetric(pts, mp, eps, m)
				if err1 != nil || err2 != nil {
					t.Fatalf("%v: dbscan* errors %v / %v", m, err1, err2)
				}
				if !reflect.DeepEqual(c1, c2) {
					t.Fatalf("%v minPts=%d eps=%v: DBSCAN* differs", m, mp, eps)
				}
				d1, err1 := idx.DBSCAN(mp, eps)
				d2, err2 := DBSCANMetric(pts, mp, eps, m)
				if err1 != nil || err2 != nil {
					t.Fatalf("%v: dbscan errors %v / %v", m, err1, err2)
				}
				if !reflect.DeepEqual(d1, d2) {
					t.Fatalf("%v minPts=%d eps=%v: DBSCAN differs", m, mp, eps)
				}
			}
			o1, err1 := idx.OPTICS(mp, 2.5)
			o2, err2 := OPTICSMetric(pts, mp, 2.5, m)
			if err1 != nil || err2 != nil {
				t.Fatalf("%v: optics errors %v / %v", m, err1, err2)
			}
			if !reflect.DeepEqual(o1, o2) {
				t.Fatalf("%v minPts=%d: OPTICS orderings differ", m, mp)
			}
		}
		for _, algo := range []EMSTAlgorithm{EMSTMemoGFK, EMSTGFK, EMSTNaive, EMSTBoruvka, EMSTWSPDBoruvka} {
			e1, err := idx.EMSTWithAlgorithm(algo)
			if err != nil {
				t.Fatalf("%v %v: %v", m, algo, err)
			}
			e2, err := EMSTMetricWithStats(pts, algo, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(e1, e2) {
				t.Fatalf("%v %v: EMSTs differ between Index and one-shot", m, algo)
			}
		}
		sl1, err := idx.SingleLinkage()
		if err != nil {
			t.Fatal(err)
		}
		sl2, err := SingleLinkageMetric(pts, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sl1.MST, sl2.MST) || !reflect.DeepEqual(sl1.ReachabilityPlot(), sl2.ReachabilityPlot()) {
			t.Fatalf("%v: single-linkage differs", m)
		}
	}
}

func TestIndexKNNAndRangeMatchTree(t *testing.T) {
	pts := GenerateUniform(300, 3, 17)
	idx, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// KNN distances must be non-decreasing and start at the query itself.
	nb, err := idx.KNN(7, 5)
	if err != nil || len(nb) != 5 {
		t.Fatalf("KNN: %v, %d results", err, len(nb))
	}
	if nb[0].Idx != 7 || nb[0].Dist != 0 {
		t.Fatalf("KNN[0] = %+v, want the query point at distance 0", nb[0])
	}
	for i := 1; i < len(nb); i++ {
		if nb[i].Dist < nb[i-1].Dist {
			t.Fatal("KNN distances not sorted")
		}
	}
	r := nb[len(nb)-1].Dist
	ids, err := idx.RangeQuery(7, r)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := idx.RangeCount(7, r)
	if err != nil || cnt != len(ids) {
		t.Fatalf("RangeCount %d != RangeQuery size %d (err %v)", cnt, len(ids), err)
	}
	// The sqrt->square roundtrip can exclude the k-th neighbor itself, so
	// only the first four are guaranteed back.
	if cnt < 4 {
		t.Fatalf("range at 5-NN radius found %d points, want >= 4", cnt)
	}
	// The whole query surface shares one tree.
	if s := idx.Stats(); s.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds = %d, want 1", s.TreeBuilds)
	}
}

func TestIndexValidation(t *testing.T) {
	pts := GenerateUniform(50, 2, 1)
	idx, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.HDBSCAN(0); err == nil {
		t.Fatal("minPts=0 accepted")
	}
	if _, err := idx.HDBSCAN(51); err == nil {
		t.Fatal("minPts>n accepted")
	}
	if _, err := idx.DBSCANStar(0, 1); err == nil {
		t.Fatal("DBSCANStar minPts=0 accepted")
	}
	if _, err := idx.DBSCAN(5, math.NaN()); err == nil {
		t.Fatal("NaN eps accepted")
	}
	if _, err := idx.OPTICS(5, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := idx.KNN(-1, 3); err == nil {
		t.Fatal("negative point id accepted")
	}
	if _, err := idx.KNN(3, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := idx.RangeQuery(50, 1); err == nil {
		t.Fatal("out-of-range point id accepted")
	}
	if _, err := idx.EMSTWithAlgorithm(EMSTDelaunay2D); err != nil {
		t.Fatalf("2D Delaunay rejected: %v", err)
	}
	pts3 := GenerateUniform(50, 3, 1)
	idx3, err := NewIndex(pts3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx3.EMSTWithAlgorithm(EMSTDelaunay2D); err == nil {
		t.Fatal("3D Delaunay accepted")
	}
	if _, err := NewIndex(Points{Data: make([]float64, 5), N: 2, Dim: 3}, nil); err == nil {
		t.Fatal("mis-sized buffer accepted")
	}
	// DBSCAN with minPts > n: everything is noise, matching the one-shot.
	c, err := idx.DBSCANStar(51, 1)
	if err != nil || c.NumClusters != 0 || countNoise(c) != 50 {
		t.Fatalf("minPts>n DBSCAN*: %v, %d clusters, %d noise", err, c.NumClusters, countNoise(c))
	}
	want, err := DBSCANStar(pts, 51, 1)
	if err != nil || !reflect.DeepEqual(c, want) {
		t.Fatalf("minPts>n DBSCAN* differs from one-shot (err %v)", err)
	}
}

func TestIndexTrivialSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		pts := GenerateUniform(n, 2, 3)
		idx, err := NewIndex(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		edges, err := idx.EMST()
		if err != nil || len(edges) != max(0, n-1) {
			t.Fatalf("n=%d: EMST %d edges, err %v", n, len(edges), err)
		}
		if n == 0 {
			continue
		}
		h, err := idx.HDBSCAN(1)
		if err != nil || h.N != n {
			t.Fatalf("n=%d: HDBSCAN err %v", n, err)
		}
		if c := h.ClustersAt(math.Inf(1)); c.NumClusters != 1 {
			t.Fatalf("n=%d: cut at +Inf gives %d clusters", n, c.NumClusters)
		}
	}
}

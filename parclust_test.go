package parclust

import (
	"math"
	"testing"
	"testing/quick"

	"parclust/internal/metric"
	"parclust/internal/mst"
	"parclust/internal/oracle"
)

func TestEMSTAlgorithmsAgreePublicAPI(t *testing.T) {
	pts := GenerateUniform(800, 2, 1)
	var weights []float64
	for _, algo := range []EMSTAlgorithm{EMSTMemoGFK, EMSTGFK, EMSTNaive, EMSTBoruvka, EMSTDelaunay2D} {
		edges, err := EMSTWithStats(pts, algo, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(edges) != pts.N-1 {
			t.Fatalf("%v: %d edges", algo, len(edges))
		}
		weights = append(weights, mst.TotalWeight(edges))
	}
	for _, w := range weights[1:] {
		if math.Abs(w-weights[0]) > 1e-6*(1+weights[0]) {
			t.Fatalf("EMST weights disagree: %v", weights)
		}
	}
}

func TestEMSTDelaunayRejectsNon2D(t *testing.T) {
	pts := GenerateUniform(100, 3, 2)
	if _, err := EMSTWithStats(pts, EMSTDelaunay2D, nil); err == nil {
		t.Fatal("expected an error for 3D input to the Delaunay algorithm")
	}
}

func TestEMSTInvalidInput(t *testing.T) {
	bad := Points{Data: make([]float64, 5), N: 2, Dim: 3}
	if _, err := EMST(bad); err == nil {
		t.Fatal("expected an error for a mis-sized buffer")
	}
	if _, err := EMST(Points{N: 0, Dim: 0}); err == nil {
		t.Fatal("expected an error for zero dimension")
	}
	if edges, err := EMST(NewPoints(1, 2)); err != nil || len(edges) != 0 {
		t.Fatal("singleton input should yield an empty EMST")
	}
}

func TestHDBSCANEndToEnd(t *testing.T) {
	pts := GenerateGaussianMixture(600, 2, 3, 7)
	h, err := HDBSCAN(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.MST) != pts.N-1 {
		t.Fatalf("MST has %d edges", len(h.MST))
	}
	want := mst.TotalWeight(mst.PrimDense(pts.N, oracle.MutualReachability(pts, 10, metric.L2{})))
	if math.Abs(h.TotalWeight()-want) > 1e-6*(1+want) {
		t.Fatalf("hierarchy weight %v, want %v", h.TotalWeight(), want)
	}
	plot := h.ReachabilityPlot()
	if len(plot) != pts.N || plot[0].Idx != h.Start {
		t.Fatal("reachability plot malformed")
	}
	// A generous radius groups everything into one cluster with no noise.
	all := h.ClustersAt(1e12)
	if all.NumClusters != 1 || h.NumNoiseAt(1e12) != 0 {
		t.Fatalf("huge eps: %d clusters, %d noise", all.NumClusters, h.NumNoiseAt(1e12))
	}
	// Radius zero: everything is noise (core distances are positive).
	if h.NumNoiseAt(0) != pts.N {
		t.Fatalf("eps=0: %d noise, want %d", h.NumNoiseAt(0), pts.N)
	}
}

func TestHDBSCANAlgorithmsAgree(t *testing.T) {
	pts := GenerateVarden(500, 3, 11)
	var weights []float64
	for _, algo := range []HDBSCANAlgorithm{HDBSCANMemoGFK, HDBSCANGanTao, HDBSCANGanTaoFull} {
		h, err := HDBSCANWithStats(pts, 10, algo, NewStats())
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		weights = append(weights, h.TotalWeight())
	}
	for _, w := range weights[1:] {
		if math.Abs(w-weights[0]) > 1e-6*(1+weights[0]) {
			t.Fatalf("HDBSCAN* weights disagree: %v", weights)
		}
	}
}

func TestHDBSCANValidation(t *testing.T) {
	pts := GenerateUniform(50, 2, 1)
	if _, err := HDBSCAN(pts, 0); err == nil {
		t.Fatal("minPts=0 accepted")
	}
	if _, err := HDBSCAN(pts, 51); err == nil {
		t.Fatal("minPts>n accepted")
	}
}

func TestSingleLinkagePublicAPI(t *testing.T) {
	pts := GenerateGaussianMixture(400, 2, 4, 3)
	h, err := SingleLinkage(pts)
	if err != nil {
		t.Fatal(err)
	}
	if h.CoreDist != nil || h.MinPts != 1 {
		t.Fatal("single linkage should have no core distances")
	}
	d := h.Dendrogram()
	if d.NumInternal() != pts.N-1 {
		t.Fatal("dendrogram size wrong")
	}
	// Cutting just above the largest merge yields one cluster; cutting below
	// the smallest yields n.
	maxH, minH := 0.0, math.Inf(1)
	for _, hh := range d.Height {
		maxH = math.Max(maxH, hh)
		minH = math.Min(minH, hh)
	}
	if c := h.ClustersAt(maxH); c.NumClusters != 1 {
		t.Fatalf("cut at max height: %d clusters", c.NumClusters)
	}
	if c := h.ClustersAt(minH / 2); c.NumClusters != pts.N {
		t.Fatalf("cut below min height: %d clusters", c.NumClusters)
	}
}

func TestApproxOPTICSPublicAPI(t *testing.T) {
	pts := GenerateUniform(300, 2, 9)
	h, err := ApproxOPTICS(pts, 10, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := HDBSCAN(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalWeight() > exact.TotalWeight()*1.125+1e-9 {
		t.Fatalf("approx weight %v too far above exact %v", h.TotalWeight(), exact.TotalWeight())
	}
	if _, err := ApproxOPTICS(pts, 10, 0); err == nil {
		t.Fatal("rho=0 accepted")
	}
}

func TestHDBSCANMinPtsOneMatchesSingleLinkageQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%150
		pts := GenerateUniform(n, 2, seed)
		h1, err1 := HDBSCAN(pts, 1)
		h2, err2 := SingleLinkage(pts)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(h1.TotalWeight()-h2.TotalWeight()) < 1e-9*(1+h2.TotalWeight())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	pts := GenerateVarden(700, 2, 5)
	h1, _ := HDBSCAN(pts, 10)
	h2, _ := HDBSCAN(pts, 10)
	p1, p2 := h1.ReachabilityPlot(), h2.ReachabilityPlot()
	for i := range p1 {
		if p1[i].Idx != p2[i].Idx {
			t.Fatalf("reachability plot not deterministic at %d", i)
		}
	}
	e1, _ := EMST(pts)
	e2, _ := EMST(pts)
	if mst.TotalWeight(e1) != mst.TotalWeight(e2) {
		t.Fatal("EMST weight not deterministic")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenerateVarden(100, 3, 42)
	b := GenerateVarden(100, 3, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("generator not deterministic")
		}
	}
	c := GenerateVarden(100, 3, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestWSPDBoruvkaPublicAPI(t *testing.T) {
	pts := GenerateUniform(500, 3, 13)
	want, err := EMST(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EMSTWithStats(pts, EMSTWSPDBoruvka, NewStats())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mst.TotalWeight(got)-mst.TotalWeight(want)) > 1e-9*(1+mst.TotalWeight(want)) {
		t.Fatalf("WSPD-Boruvka weight %v, want %v", mst.TotalWeight(got), mst.TotalWeight(want))
	}
}

func TestDBSCANStarMatchesHierarchyCut(t *testing.T) {
	pts := GenerateGaussianMixture(400, 2, 3, 17)
	minPts := 8
	h, err := HDBSCAN(pts, minPts)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{1, 3, 10} {
		direct, err := DBSCANStar(pts, minPts, eps)
		if err != nil {
			t.Fatal(err)
		}
		cut := h.ClustersAt(eps)
		if direct.NumClusters != cut.NumClusters {
			t.Fatalf("eps=%v: direct %d clusters, hierarchy cut %d", eps, direct.NumClusters, cut.NumClusters)
		}
		// Co-membership must agree exactly.
		for i := 0; i < pts.N; i += 7 {
			for j := i + 1; j < pts.N; j += 11 {
				if (direct.Labels[i] == -1) != (cut.Labels[i] == -1) {
					t.Fatalf("eps=%v: noise disagreement at %d", eps, i)
				}
				if direct.Labels[i] == -1 || direct.Labels[j] == -1 {
					continue
				}
				if (direct.Labels[i] == direct.Labels[j]) != (cut.Labels[i] == cut.Labels[j]) {
					t.Fatalf("eps=%v: co-membership disagreement (%d,%d)", eps, i, j)
				}
			}
		}
	}
}

func TestExtractStableClustersPublicAPI(t *testing.T) {
	pts := GenerateGaussianMixture(600, 2, 4, 5)
	h, err := HDBSCAN(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := h.ExtractStableClusters(25)
	if c.NumClusters != 4 {
		t.Fatalf("stable extraction found %d clusters, want 4", c.NumClusters)
	}
}

func TestOPTICSPublicAPI(t *testing.T) {
	pts := GenerateUniform(200, 2, 19)
	order, err := OPTICS(pts, 5, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != pts.N {
		t.Fatalf("ordering has %d entries", len(order))
	}
	if _, err := OPTICS(pts, 0, 1); err == nil {
		t.Fatal("minPts=0 accepted")
	}
	if _, err := OPTICS(pts, 5, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestMSTEdgesNonDecreasing(t *testing.T) {
	// Hierarchy.MST documents Kruskal acceptance order: weights must be
	// non-decreasing (batches arrive in non-overlapping ascending ranges).
	pts := GenerateVarden(800, 3, 23)
	h, err := HDBSCAN(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(h.MST); i++ {
		if h.MST[i].W < h.MST[i-1].W {
			t.Fatalf("MST edge %d weight %v below predecessor %v", i, h.MST[i].W, h.MST[i-1].W)
		}
	}
	edges, err := EMST(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].W < edges[i-1].W {
			t.Fatalf("EMST edge %d out of order", i)
		}
	}
}

func TestHierarchyInputNotMutated(t *testing.T) {
	// Dendrogram construction must not reorder the caller-visible MST.
	pts := GenerateUniform(400, 2, 29)
	h, err := HDBSCAN(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]Edge(nil), h.MST...)
	h.ReachabilityPlot()
	h.ExtractStableClusters(10)
	h.ClustersAt(1.0)
	for i := range snapshot {
		if h.MST[i] != snapshot[i] {
			t.Fatalf("MST mutated at %d", i)
		}
	}
}

func TestStatsPublicAPI(t *testing.T) {
	pts := GenerateUniform(2000, 3, 31)
	stats := NewStats()
	if _, err := HDBSCANWithStats(pts, 10, HDBSCANMemoGFK, stats); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"build-tree", "core-dist", "wspd", "kruskal", "dendrogram"} {
		if stats.Phases[phase] <= 0 {
			t.Fatalf("phase %q not timed", phase)
		}
	}
	if stats.Rounds == 0 || stats.BCCPComputed == 0 {
		t.Fatal("counters not recorded")
	}
}

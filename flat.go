package parclust

import (
	"parclust/internal/optics"
)

// Flat clustering entry points complementing the hierarchy: the classic
// single-radius DBSCAN/DBSCAN* baselines, the stability-based automatic
// extraction from an HDBSCAN* hierarchy, and the classic OPTICS ordering.
// Each one-shot function is a thin wrapper over a throwaway Index; build an
// Index explicitly to amortize the tree and core-distance stages across
// repeated queries. The shared tree uses leaf size 1 (the WSPD
// requirement) where the standalone flat implementations historically used
// 16 — results are identical (labels are traversal-order independent), at
// a modest constant-factor cost per one-shot range query that buying into
// the shared pipeline accepts.

// DBSCANStar computes the flat DBSCAN* clustering of Campello et al. at a
// single radius eps: points with at least minPts neighbors within eps
// (counting themselves) are core points, clusters are eps-connected
// components of core points, everything else is noise. Equivalent to
// HDBSCAN(pts, minPts).ClustersAt(eps), but computed directly; prefer an
// Index (or the hierarchy) when several parameters will be explored.
func DBSCANStar(pts Points, minPts int, eps float64) (Clustering, error) {
	return DBSCANStarMetric(pts, minPts, eps, MetricL2)
}

// DBSCANStarMetric is DBSCANStar with neighborhoods taken under the given
// metric kernel (for MetricSqL2, eps is compared against squared
// distances).
func DBSCANStarMetric(pts Points, minPts int, eps float64, m Metric) (Clustering, error) {
	idx, err := NewIndex(pts, &IndexOptions{Metric: m})
	if err != nil {
		return Clustering{}, err
	}
	return idx.DBSCANStar(minPts, eps)
}

// DBSCAN computes the original Ester et al. clustering, which additionally
// assigns border points (non-core points within eps of a core point) to the
// cluster of their nearest core neighbor.
func DBSCAN(pts Points, minPts int, eps float64) (Clustering, error) {
	return DBSCANMetric(pts, minPts, eps, MetricL2)
}

// DBSCANMetric is DBSCAN with neighborhoods and border attachment taken
// under the given metric kernel.
func DBSCANMetric(pts Points, minPts int, eps float64, m Metric) (Clustering, error) {
	idx, err := NewIndex(pts, &IndexOptions{Metric: m})
	if err != nil {
		return Clustering{}, err
	}
	return idx.DBSCAN(minPts, eps)
}

// ExtractStableClusters runs the stability-based (excess of mass) flat
// extraction of Campello et al. on the hierarchy's dendrogram: the
// dendrogram is condensed with the given minimum cluster size and the
// non-overlapping set of clusters maximizing total stability is returned.
// This is the standard "automatic" HDBSCAN* clustering that requires no
// radius parameter.
func (h *Hierarchy) ExtractStableClusters(minClusterSize int) Clustering {
	return h.dendro.ExtractStable(minClusterSize)
}

// OPTICSEntry is one position of a classic OPTICS ordering.
type OPTICSEntry = optics.Entry

// OPTICS computes the classic sequential OPTICS ordering of Ankerst et al.
// with neighborhood radius eps (use math.Inf(1) for the unbounded variant).
// It exists as a reference implementation; for large inputs prefer
// HDBSCAN(...).ReachabilityPlot(), which computes the same kind of plot
// through the parallel pipeline.
func OPTICS(pts Points, minPts int, eps float64) ([]OPTICSEntry, error) {
	return OPTICSMetric(pts, minPts, eps, MetricL2)
}

// OPTICSMetric is OPTICS with distances, core distances, and neighborhoods
// taken under the given metric kernel.
func OPTICSMetric(pts Points, minPts int, eps float64, m Metric) ([]OPTICSEntry, error) {
	idx, err := NewIndex(pts, &IndexOptions{Metric: m})
	if err != nil {
		return nil, err
	}
	return idx.OPTICS(minPts, eps)
}

package parclust

import (
	"bytes"
	"testing"
)

// TestIndexSnapshotRoundTrip warms an Index across the public query
// surface, snapshots it, and checks the restored Index answers everything
// byte-identically with zero stage rebuilds.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	pts := GenerateGaussianMixture(800, 3, 4, 42)
	for _, m := range []Metric{MetricL2, MetricL1, MetricAngular} {
		ix, err := NewIndex(pts, &IndexOptions{Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.HDBSCAN(5); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.EMST(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.WriteSnapshot(&buf); err != nil {
			t.Fatalf("%v: write: %v", m, err)
		}
		back, det, err := ReadSnapshotDetails(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: read: %v", m, err)
		}
		if det.Metric != m || det.N != 800 || det.Dim != 3 || len(det.SkippedStages) != 0 {
			t.Fatalf("%v: details %+v", m, det)
		}
		// tree + core(5) + HDBSCAN MST + EMST + HDBSCAN hierarchy
		if det.Stages != 5 {
			t.Fatalf("%v: %d stages, want 5", m, det.Stages)
		}

		wantH, err := ix.HDBSCAN(5)
		if err != nil {
			t.Fatal(err)
		}
		gotH, err := back.HDBSCAN(5)
		if err != nil {
			t.Fatal(err)
		}
		wc, gc := wantH.ClustersAt(1.2), gotH.ClustersAt(1.2)
		if wc.NumClusters != gc.NumClusters {
			t.Fatalf("%v: cluster count %d vs %d", m, gc.NumClusters, wc.NumClusters)
		}
		for i := range wc.Labels {
			if wc.Labels[i] != gc.Labels[i] {
				t.Fatalf("%v: label %d differs after restore", m, i)
			}
		}
		we, _ := ix.EMST()
		ge, _ := back.EMST()
		if len(we) != len(ge) {
			t.Fatalf("%v: EMST edge counts differ", m)
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("%v: EMST edge %d differs", m, i)
			}
		}
		wk, _ := ix.KNN(0, 5)
		gk, _ := back.KNN(0, 5)
		for i := range wk {
			if wk[i] != gk[i] {
				t.Fatalf("%v: KNN result %d differs", m, i)
			}
		}

		s := back.Stats()
		if s.TreeBuilds != 0 || s.CoreDistBuilds != 0 || s.MSTBuilds != 0 || s.DendrogramBuilds != 0 {
			t.Fatalf("%v: restored Index rebuilt stages: %+v", m, s)
		}
	}
}

// TestIndexSnapshotSignature checks signature stability and growth.
func TestIndexSnapshotSignature(t *testing.T) {
	pts := GenerateUniform(200, 2, 7)
	ix, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig0 := ix.SnapshotSignature()
	if sig0.Chunks != 1 || sig0.ContentHash == "" {
		t.Fatalf("cold signature %+v", sig0)
	}
	if _, err := ix.HDBSCAN(4); err != nil {
		t.Fatal(err)
	}
	sig1 := ix.SnapshotSignature()
	if sig1.ContentHash != sig0.ContentHash {
		t.Fatal("content hash changed without the points changing")
	}
	// tree + core + mst + hier joined the points chunk.
	if sig1.Chunks != 5 {
		t.Fatalf("warm signature has %d chunks, want 5", sig1.Chunks)
	}
	// A different dataset hashes differently.
	other, err := NewIndex(GenerateUniform(200, 2, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.SnapshotSignature().ContentHash == sig0.ContentHash {
		t.Fatal("distinct datasets share a content hash")
	}

	// The signature matches what a written snapshot's header reports.
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, det, err := ReadSnapshotDetails(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if det.Stages+1 != sig1.Chunks {
		t.Fatalf("header has %d chunks, signature says %d", det.Stages+1, sig1.Chunks)
	}
	if got := back.SnapshotSignature(); got != sig1 {
		t.Fatalf("restored signature %+v, want %+v", got, sig1)
	}
}

// TestIndexSnapshotGarbage checks the public API rejects damaged streams.
func TestIndexSnapshotGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	ix, err := NewIndex(GenerateUniform(50, 2, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

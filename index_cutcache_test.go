package parclust

import (
	"math"
	"testing"
)

// TestIndexCutCache pins the public face of the per-stage cut-result
// cache: repeated ClustersAt radii on an Index-backed hierarchy are cache
// hits sharing one labels slice, the CutBuilds/CutHits counters report
// them, and ApproxBytes grows as cut results are retained.
func TestIndexCutCache(t *testing.T) {
	pts := GenerateGaussianMixture(600, 2, 3, 11)
	idx, err := NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Metric().String() != MetricL2.String() {
		t.Fatalf("default metric = %s, want %s", idx.Metric(), MetricL2)
	}
	base := idx.ApproxBytes()
	if base <= 0 {
		t.Fatalf("ApproxBytes = %d", base)
	}

	h, err := idx.HDBSCANWithAlgorithm(5, HDBSCANGanTao)
	if err != nil {
		t.Fatal(err)
	}
	a := h.ClustersAt(1.5)
	b := h.ClustersAt(1.5)
	if &a.Labels[0] != &b.Labels[0] {
		t.Fatal("repeated cut did not share the cached labels slice")
	}
	if s := idx.Stats(); s.CutBuilds != 1 || s.CutHits != 1 {
		t.Fatalf("cut counters = %d builds / %d hits, want 1/1", s.CutBuilds, s.CutHits)
	}
	if grown := idx.ApproxBytes(); grown <= base {
		t.Fatalf("ApproxBytes %d -> %d, want growth from the cut cache", base, grown)
	}

	// A second hierarchy handle over the same (minPts, algo) shares the
	// stage and therefore the cut cache.
	h2, err := idx.HDBSCANWithAlgorithm(5, HDBSCANGanTao)
	if err != nil {
		t.Fatal(err)
	}
	c := h2.ClustersAt(1.5)
	if &c.Labels[0] != &a.Labels[0] {
		t.Fatal("equal query did not share the cached cut result")
	}

	// The cached result agrees with a hierarchy built outside any Index
	// (the non-stage-backed ClustersAt path).
	plain, err := HDBSCANWithStats(pts, 5, HDBSCANGanTao, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := plain.ClustersAt(1.5)
	if want.NumClusters != a.NumClusters {
		t.Fatalf("cached NumClusters = %d, want %d", a.NumClusters, want.NumClusters)
	}
	for i := range want.Labels {
		if a.Labels[i] != want.Labels[i] {
			t.Fatalf("cached label[%d] = %d, want %d", i, a.Labels[i], want.Labels[i])
		}
	}

	// A NaN radius admits no comparison at all — no point is noise, no
	// edge merges, so every point is a singleton cluster — and the result
	// is never cached (a NaN map key could not be looked up again).
	nan := h.ClustersAt(math.NaN())
	if nan.NumClusters != pts.N {
		t.Fatalf("NaN cut found %d clusters, want %d singletons", nan.NumClusters, pts.N)
	}
	bytesBefore := idx.ApproxBytes()
	h.ClustersAt(math.NaN())
	if got := idx.ApproxBytes(); got != bytesBefore {
		t.Fatalf("NaN cut changed ApproxBytes: %d -> %d", bytesBefore, got)
	}

	// CoreDistances rides the same memoized stage as the hierarchy.
	cd, err := idx.CoreDistances(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cd) != pts.N {
		t.Fatalf("CoreDistances returned %d values for %d points", len(cd), pts.N)
	}
	if s := idx.Stats(); s.CoreDistBuilds != 1 {
		t.Fatalf("CoreDistBuilds = %d after CoreDistances, want 1 (shared stage)", s.CoreDistBuilds)
	}
	if _, err := idx.CoreDistances(0); err == nil {
		t.Fatal("CoreDistances(0) did not error")
	}
	if _, err := idx.CoreDistances(pts.N + 1); err == nil {
		t.Fatal("CoreDistances(n+1) did not error")
	}
}

// TestHDBSCANAlgorithmString pins the wire names the daemon reports.
func TestHDBSCANAlgorithmString(t *testing.T) {
	cases := map[HDBSCANAlgorithm]string{
		HDBSCANMemoGFK:       "HDBSCAN*-MemoGFK",
		HDBSCANGanTao:        "HDBSCAN*-GanTao",
		HDBSCANGanTaoFull:    "HDBSCAN*-GanTao-Full",
		HDBSCANAlgorithm(99): "HDBSCANAlgorithm(99)",
	}
	for algo, want := range cases {
		if got := algo.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(algo), got, want)
		}
	}
}

package parclust

import (
	"fmt"
	"io"
	"sync"

	"parclust/internal/dendrogram"
	"parclust/internal/engine"
	"parclust/internal/hdbscan"
	"parclust/internal/mst"
)

// HDBSCANAlgorithm selects the HDBSCAN* MST implementation.
type HDBSCANAlgorithm int

const (
	// HDBSCANMemoGFK is the paper's space-efficient algorithm
	// (Section 3.2.2): MemoGFK under the new disjunctive well-separation.
	HDBSCANMemoGFK HDBSCANAlgorithm = iota
	// HDBSCANGanTao is the exact parallelized Gan-Tao baseline
	// (Section 3.2.1) with the classic geometric well-separation.
	HDBSCANGanTao
	// HDBSCANGanTaoFull is HDBSCANGanTao without the memory optimization
	// (the full WSPD is materialized).
	HDBSCANGanTaoFull
)

func (a HDBSCANAlgorithm) String() string {
	switch a {
	case HDBSCANMemoGFK:
		return "HDBSCAN*-MemoGFK"
	case HDBSCANGanTao:
		return "HDBSCAN*-GanTao"
	case HDBSCANGanTaoFull:
		return "HDBSCAN*-GanTao-Full"
	default:
		return fmt.Sprintf("HDBSCANAlgorithm(%d)", int(a))
	}
}

// Hierarchy is a cluster hierarchy: the MST of the (mutual reachability or
// Euclidean) graph plus the ordered dendrogram built from it.
//
// A Hierarchy returned by an Index shares the Index's memoized stage
// outputs: MST and CoreDist must be treated as read-only, and all methods
// are safe for concurrent use.
type Hierarchy struct {
	N int
	// MST edges in the order Kruskal accepted them (non-decreasing weight).
	MST []Edge
	// CoreDist is each point's core distance (nil for single linkage,
	// where every point is treated as core).
	CoreDist []float64
	// MinPts is the density parameter used (1 for single linkage).
	MinPts int
	// Start is the reachability-plot start vertex of the ordered dendrogram.
	Start int32
	// Stats holds phase timings and counters when requested.
	Stats *Stats

	dendro *Dendrogram

	// stage is the Index-memoized hierarchy stage backing this Hierarchy
	// (nil for hierarchies built outside the engine, e.g. ApproxOPTICS);
	// it shares the precomputed cut structure across equal queries.
	stage *engine.HierStage
	// cutOnce/cutter lazily build a private cut structure when no stage is
	// attached.
	cutOnce sync.Once
	cutter  *dendrogram.Cutter
}

// newHierarchy wraps a memoized engine hierarchy stage in the public type.
func newHierarchy(st *engine.HierStage, minPts int, stats *Stats) *Hierarchy {
	return &Hierarchy{
		N:        st.N,
		MST:      st.MST,
		CoreDist: st.CoreDist,
		MinPts:   minPts,
		Stats:    stats,
		dendro:   st.Dendro,
		stage:    st,
	}
}

// HDBSCAN computes the HDBSCAN* hierarchy for pts with the default
// space-efficient algorithm and dendrogram start vertex 0.
func HDBSCAN(pts Points, minPts int) (*Hierarchy, error) {
	return HDBSCANWithStats(pts, minPts, HDBSCANMemoGFK, nil)
}

// HDBSCANWithStats computes the HDBSCAN* hierarchy with an explicit
// algorithm choice, recording phase timings into stats when non-nil.
// The returned hierarchy includes the ordered dendrogram (the paper's
// HDBSCAN* timings likewise include dendrogram construction).
func HDBSCANWithStats(pts Points, minPts int, algo HDBSCANAlgorithm, stats *Stats) (*Hierarchy, error) {
	return HDBSCANMetricWithStats(pts, minPts, algo, MetricL2, stats)
}

// HDBSCANMetric computes the HDBSCAN* hierarchy with the base distance
// taken under the given metric kernel, using the default space-efficient
// algorithm.
func HDBSCANMetric(pts Points, minPts int, m Metric) (*Hierarchy, error) {
	return HDBSCANMetricWithStats(pts, minPts, HDBSCANMemoGFK, m, nil)
}

// HDBSCANMetricWithStats is HDBSCANWithStats under an arbitrary metric
// kernel: core distances, mutual reachability, and the well-separation
// predicate all run under m. It is a thin wrapper over a throwaway Index.
func HDBSCANMetricWithStats(pts Points, minPts int, algo HDBSCANAlgorithm, m Metric, stats *Stats) (*Hierarchy, error) {
	idx, err := NewIndex(pts, &IndexOptions{Metric: m})
	if err != nil {
		return nil, err
	}
	return idx.hdbscanWithStats(minPts, algo, stats)
}

// SingleLinkage computes the single-linkage clustering hierarchy of pts:
// the ordered dendrogram over the EMST (Section 4).
func SingleLinkage(pts Points) (*Hierarchy, error) {
	return SingleLinkageWithStats(pts, nil)
}

// SingleLinkageMetric computes the single-linkage hierarchy over the MST
// under the given metric kernel.
func SingleLinkageMetric(pts Points, m Metric) (*Hierarchy, error) {
	return SingleLinkageMetricWithStats(pts, m, nil)
}

// SingleLinkageWithStats is SingleLinkage with instrumentation.
func SingleLinkageWithStats(pts Points, stats *Stats) (*Hierarchy, error) {
	return SingleLinkageMetricWithStats(pts, MetricL2, stats)
}

// SingleLinkageMetricWithStats is SingleLinkage under an arbitrary metric
// kernel with instrumentation. It is a thin wrapper over a throwaway Index.
func SingleLinkageMetricWithStats(pts Points, m Metric, stats *Stats) (*Hierarchy, error) {
	idx, err := NewIndex(pts, &IndexOptions{Metric: m})
	if err != nil {
		return nil, err
	}
	return idx.singleLinkageWithStats(stats)
}

// ApproxOPTICS computes the approximate OPTICS hierarchy of Appendix C with
// approximation parameter rho > 0 (the paper evaluates rho = 0.125). Its
// (1+rho) guarantee is Euclidean-specific, so it runs under MetricL2 only.
func ApproxOPTICS(pts Points, minPts int, rho float64) (*Hierarchy, error) {
	return ApproxOPTICSWithStats(pts, minPts, rho, nil)
}

// ApproxOPTICSWithStats is ApproxOPTICS with instrumentation.
func ApproxOPTICSWithStats(pts Points, minPts int, rho float64, stats *Stats) (*Hierarchy, error) {
	if err := validatePoints(pts); err != nil {
		return nil, err
	}
	if minPts < 1 || (minPts > pts.N && pts.N > 0) {
		return nil, fmt.Errorf("parclust: invalid minPts=%d for %d points", minPts, pts.N)
	}
	if rho <= 0 {
		return nil, fmt.Errorf("parclust: rho must be > 0, got %v", rho)
	}
	res := hdbscan.ApproxOPTICS(pts, minPts, rho, stats)
	h := &Hierarchy{
		N:        pts.N,
		MST:      res.MST,
		CoreDist: res.CoreDist,
		MinPts:   minPts,
		Stats:    res.Stats,
	}
	h.buildDendrogram()
	return h, nil
}

func (h *Hierarchy) buildDendrogram() {
	if h.N == 0 {
		return
	}
	timed := func(f func()) { f() }
	if h.Stats != nil {
		timed = func(f func()) { h.Stats.Time("dendrogram", f) }
	}
	timed(func() {
		h.dendro = dendrogram.BuildParallel(h.N, h.MST, h.Start)
	})
}

// Dendrogram returns the ordered dendrogram of the hierarchy.
func (h *Hierarchy) Dendrogram() *Dendrogram { return h.dendro }

// ReachabilityPlot returns the OPTICS-style reachability plot: the in-order
// leaf traversal of the ordered dendrogram (Section 4.1).
func (h *Hierarchy) ReachabilityPlot() []Bar { return h.dendro.ReachabilityPlot() }

// cut returns the precomputed cut structure: the Index-memoized one when
// this Hierarchy is stage-backed, a lazily-built private one otherwise.
func (h *Hierarchy) cut() *dendrogram.Cutter {
	if h.stage != nil {
		return h.stage.Cutter()
	}
	h.cutOnce.Do(func() {
		h.cutter = dendrogram.NewCutter(h.N, h.MST, h.CoreDist)
	})
	return h.cutter
}

// ClustersAt extracts the flat DBSCAN* clustering at radius eps: points
// with core distance above eps are noise, remaining points are grouped by
// MST edges of weight at most eps. For single-linkage hierarchies every
// point is core. The first call precomputes the sorted merge order; every
// call after that runs in O(n) with no union-find and no edge re-walk, so
// sweeping many radii over one hierarchy is cheap. Index-backed
// hierarchies additionally memoize cut results per radius in a bounded
// per-stage cache, so a repeated identical cut is O(1); the returned
// Labels slice is then shared with every other caller of the same (stage,
// eps) pair and must be treated as read-only, like every other slice an
// Index exposes.
func (h *Hierarchy) ClustersAt(eps float64) Clustering {
	if h.stage != nil {
		return h.stage.CutAt(eps)
	}
	return h.cut().CutAt(eps)
}

// NumNoiseAt returns the number of noise points at radius eps in O(log n)
// via binary search over the precomputed sorted core distances.
func (h *Hierarchy) NumNoiseAt(eps float64) int {
	return h.cut().NumNoiseAt(eps)
}

// TotalWeight returns the total MST weight (a scale-free summary used by
// tests and benchmarks).
func (h *Hierarchy) TotalWeight() float64 { return mst.TotalWeight(h.MST) }

// WriteNewick serializes the hierarchy's dendrogram in Newick format for
// standard dendrogram viewers; names may be nil to use point indices.
func (h *Hierarchy) WriteNewick(w io.Writer, names []string) error {
	return h.dendro.WriteNewick(w, names)
}

package parclust

import (
	"fmt"
	"io"

	"parclust/internal/dendrogram"
	"parclust/internal/hdbscan"
	"parclust/internal/mst"
)

// HDBSCANAlgorithm selects the HDBSCAN* MST implementation.
type HDBSCANAlgorithm int

const (
	// HDBSCANMemoGFK is the paper's space-efficient algorithm
	// (Section 3.2.2): MemoGFK under the new disjunctive well-separation.
	HDBSCANMemoGFK HDBSCANAlgorithm = iota
	// HDBSCANGanTao is the exact parallelized Gan-Tao baseline
	// (Section 3.2.1) with the classic geometric well-separation.
	HDBSCANGanTao
	// HDBSCANGanTaoFull is HDBSCANGanTao without the memory optimization
	// (the full WSPD is materialized).
	HDBSCANGanTaoFull
)

func (a HDBSCANAlgorithm) String() string {
	switch a {
	case HDBSCANMemoGFK:
		return "HDBSCAN*-MemoGFK"
	case HDBSCANGanTao:
		return "HDBSCAN*-GanTao"
	case HDBSCANGanTaoFull:
		return "HDBSCAN*-GanTao-Full"
	default:
		return fmt.Sprintf("HDBSCANAlgorithm(%d)", int(a))
	}
}

// Hierarchy is a cluster hierarchy: the MST of the (mutual reachability or
// Euclidean) graph plus the ordered dendrogram built from it.
type Hierarchy struct {
	N int
	// MST edges in the order Kruskal accepted them (non-decreasing weight).
	MST []Edge
	// CoreDist is each point's core distance (nil for single linkage,
	// where every point is treated as core).
	CoreDist []float64
	// MinPts is the density parameter used (1 for single linkage).
	MinPts int
	// Start is the reachability-plot start vertex of the ordered dendrogram.
	Start int32
	// Stats holds phase timings and counters when requested.
	Stats *Stats

	dendro *Dendrogram
}

// HDBSCAN computes the HDBSCAN* hierarchy for pts with the default
// space-efficient algorithm and dendrogram start vertex 0.
func HDBSCAN(pts Points, minPts int) (*Hierarchy, error) {
	return HDBSCANWithStats(pts, minPts, HDBSCANMemoGFK, nil)
}

// HDBSCANWithStats computes the HDBSCAN* hierarchy with an explicit
// algorithm choice, recording phase timings into stats when non-nil.
// The returned hierarchy includes the ordered dendrogram (the paper's
// HDBSCAN* timings likewise include dendrogram construction).
func HDBSCANWithStats(pts Points, minPts int, algo HDBSCANAlgorithm, stats *Stats) (*Hierarchy, error) {
	return HDBSCANMetricWithStats(pts, minPts, algo, MetricL2, stats)
}

// HDBSCANMetric computes the HDBSCAN* hierarchy with the base distance
// taken under the given metric kernel, using the default space-efficient
// algorithm.
func HDBSCANMetric(pts Points, minPts int, m Metric) (*Hierarchy, error) {
	return HDBSCANMetricWithStats(pts, minPts, HDBSCANMemoGFK, m, nil)
}

// HDBSCANMetricWithStats is HDBSCANWithStats under an arbitrary metric
// kernel: core distances, mutual reachability, and the well-separation
// predicate all run under m.
func HDBSCANMetricWithStats(pts Points, minPts int, algo HDBSCANAlgorithm, m Metric, stats *Stats) (*Hierarchy, error) {
	pts, kern, err := prepareMetric(pts, m)
	if err != nil {
		return nil, err
	}
	if minPts < 1 {
		return nil, fmt.Errorf("parclust: minPts must be >= 1, got %d", minPts)
	}
	if minPts > pts.N && pts.N > 0 {
		return nil, fmt.Errorf("parclust: minPts=%d exceeds number of points %d", minPts, pts.N)
	}
	var ha hdbscan.Algorithm
	switch algo {
	case HDBSCANMemoGFK:
		ha = hdbscan.MemoGFK
	case HDBSCANGanTao:
		ha = hdbscan.GanTao
	case HDBSCANGanTaoFull:
		ha = hdbscan.GanTaoFull
	default:
		return nil, fmt.Errorf("parclust: unknown HDBSCAN algorithm %v", algo)
	}
	res := hdbscan.BuildMetric(pts, minPts, ha, kern, stats)
	h := &Hierarchy{
		N:        pts.N,
		MST:      res.MST,
		CoreDist: res.CoreDist,
		MinPts:   minPts,
		Stats:    res.Stats,
	}
	h.buildDendrogram()
	return h, nil
}

// SingleLinkage computes the single-linkage clustering hierarchy of pts:
// the ordered dendrogram over the EMST (Section 4).
func SingleLinkage(pts Points) (*Hierarchy, error) {
	return SingleLinkageWithStats(pts, nil)
}

// SingleLinkageMetric computes the single-linkage hierarchy over the MST
// under the given metric kernel.
func SingleLinkageMetric(pts Points, m Metric) (*Hierarchy, error) {
	return SingleLinkageMetricWithStats(pts, m, nil)
}

// SingleLinkageWithStats is SingleLinkage with instrumentation.
func SingleLinkageWithStats(pts Points, stats *Stats) (*Hierarchy, error) {
	return SingleLinkageMetricWithStats(pts, MetricL2, stats)
}

// SingleLinkageMetricWithStats is SingleLinkage under an arbitrary metric
// kernel with instrumentation.
func SingleLinkageMetricWithStats(pts Points, m Metric, stats *Stats) (*Hierarchy, error) {
	edges, err := EMSTMetricWithStats(pts, EMSTMemoGFK, m, stats)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{N: pts.N, MST: edges, MinPts: 1, Stats: stats}
	h.buildDendrogram()
	return h, nil
}

// ApproxOPTICS computes the approximate OPTICS hierarchy of Appendix C with
// approximation parameter rho > 0 (the paper evaluates rho = 0.125). Its
// (1+rho) guarantee is Euclidean-specific, so it runs under MetricL2 only.
func ApproxOPTICS(pts Points, minPts int, rho float64) (*Hierarchy, error) {
	return ApproxOPTICSWithStats(pts, minPts, rho, nil)
}

// ApproxOPTICSWithStats is ApproxOPTICS with instrumentation.
func ApproxOPTICSWithStats(pts Points, minPts int, rho float64, stats *Stats) (*Hierarchy, error) {
	if err := validatePoints(pts); err != nil {
		return nil, err
	}
	if minPts < 1 || (minPts > pts.N && pts.N > 0) {
		return nil, fmt.Errorf("parclust: invalid minPts=%d for %d points", minPts, pts.N)
	}
	if rho <= 0 {
		return nil, fmt.Errorf("parclust: rho must be > 0, got %v", rho)
	}
	res := hdbscan.ApproxOPTICS(pts, minPts, rho, stats)
	h := &Hierarchy{
		N:        pts.N,
		MST:      res.MST,
		CoreDist: res.CoreDist,
		MinPts:   minPts,
		Stats:    res.Stats,
	}
	h.buildDendrogram()
	return h, nil
}

func (h *Hierarchy) buildDendrogram() {
	if h.N == 0 {
		return
	}
	timed := func(f func()) { f() }
	if h.Stats != nil {
		timed = func(f func()) { h.Stats.Time("dendrogram", f) }
	}
	timed(func() {
		h.dendro = dendrogram.BuildParallel(h.N, h.MST, h.Start)
	})
}

// Dendrogram returns the ordered dendrogram of the hierarchy.
func (h *Hierarchy) Dendrogram() *Dendrogram { return h.dendro }

// ReachabilityPlot returns the OPTICS-style reachability plot: the in-order
// leaf traversal of the ordered dendrogram (Section 4.1).
func (h *Hierarchy) ReachabilityPlot() []Bar { return h.dendro.ReachabilityPlot() }

// ClustersAt extracts the flat DBSCAN* clustering at radius eps: points
// with core distance above eps are noise, remaining points are grouped by
// MST edges of weight at most eps. For single-linkage hierarchies every
// point is core.
func (h *Hierarchy) ClustersAt(eps float64) Clustering {
	return dendrogram.CutTree(h.N, h.MST, h.CoreDist, eps)
}

// NumNoiseAt returns the number of noise points at radius eps.
func (h *Hierarchy) NumNoiseAt(eps float64) int {
	c := h.ClustersAt(eps)
	noise := 0
	for _, l := range c.Labels {
		if l == -1 {
			noise++
		}
	}
	return noise
}

// TotalWeight returns the total MST weight (a scale-free summary used by
// tests and benchmarks).
func (h *Hierarchy) TotalWeight() float64 { return mst.TotalWeight(h.MST) }

// WriteNewick serializes the hierarchy's dendrogram in Newick format for
// standard dendrogram viewers; names may be nil to use point indices.
func (h *Hierarchy) WriteNewick(w io.Writer, names []string) error {
	return h.dendro.WriteNewick(w, names)
}

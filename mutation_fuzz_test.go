package parclust

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// FuzzMutationSequence drives an Index through an arbitrary byte-encoded
// insert/delete/checkpoint sequence and differentially checks, at every
// checkpoint, that tie-robust query results (core distances, range
// queries, KNN over continuous rows) match a fresh Index built on the
// surviving points. Inserted rows are drawn from PRNGs seeded by the op
// position, so coordinates stay continuous and distance ties measure-zero.
func FuzzMutationSequence(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1, 2})
	f.Add([]byte{64, 129, 2, 200, 70, 5, 2, 255, 254, 253, 2})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		const dim = 2
		rng := rand.New(rand.NewSource(1))
		initial := randRows(rng, 16, dim)
		idx, err := NewIndex(initial, nil)
		if err != nil {
			t.Fatal(err)
		}
		model := &mutModel{dim: dim}
		for i := 0; i < initial.N; i++ {
			model.ids = append(model.ids, int64(i))
			model.rows = append(model.rows, initial.Data[i*dim:(i+1)*dim])
		}
		for pos, b := range data {
			switch b % 3 {
			case 0: // insert 1..4 rows
				rows := randRows(rand.New(rand.NewSource(int64(pos)<<8|int64(b))), 1+int(b/64), dim)
				ids, err := idx.Insert(rows)
				if err != nil {
					t.Fatalf("op %d: Insert: %v", pos, err)
				}
				model.insert(t, ids, rows)
			case 1: // delete 1..4 live points
				if len(model.ids) == 0 {
					continue
				}
				del := model.pick(rng, 1+int(b/64))
				if err := idx.Delete(del); err != nil {
					t.Fatalf("op %d: Delete(%v): %v", pos, del, err)
				}
				model.remove(del)
			case 2:
				mutationCheckpoint(t, idx, model, rng)
			}
		}
		mutationCheckpoint(t, idx, model, rng)
	})
}

// mutationCheckpoint is the light differential check the fuzzer runs: N,
// external ids, core distances, KNN, and sorted range results against a
// fresh build.
func mutationCheckpoint(t *testing.T, idx *Index, model *mutModel, rng *rand.Rand) {
	t.Helper()
	fresh, err := NewIndex(model.points(), nil)
	if err != nil {
		t.Fatalf("fresh build: %v", err)
	}
	n := fresh.N()
	if got := idx.N(); got != n {
		t.Fatalf("live N = %d, fresh N = %d", got, n)
	}
	if n == 0 {
		return
	}
	minPts := 3
	if minPts > n {
		minPts = n
	}
	cdLive, err := idx.CoreDistances(minPts)
	if err != nil {
		t.Fatal(err)
	}
	cdFresh, _ := fresh.CoreDistances(minPts)
	if !reflect.DeepEqual(cdLive, cdFresh) {
		t.Fatalf("core distances diverge (n=%d)", n)
	}
	for i := 0; i < 3; i++ {
		q := int32(rng.Intn(n))
		nl, err := idx.KNN(q, minPts)
		if err != nil {
			t.Fatal(err)
		}
		nf, _ := fresh.KNN(q, minPts)
		if !reflect.DeepEqual(nl, nf) {
			t.Fatalf("KNN(%d) diverges: live %v, fresh %v", q, nl, nf)
		}
		rl, err := idx.RangeQuery(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		rf, _ := fresh.RangeQuery(q, 0.3)
		sort.Slice(rl, func(a, b int) bool { return rl[a] < rl[b] })
		sort.Slice(rf, func(a, b int) bool { return rf[a] < rf[b] })
		if !reflect.DeepEqual(rl, rf) && !(len(rl) == 0 && len(rf) == 0) {
			t.Fatalf("RangeQuery(%d) diverges", q)
		}
		cl, err := idx.RangeCount(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if cf, _ := fresh.RangeCount(q, 0.3); cl != cf {
			t.Fatalf("RangeCount(%d) = %d, fresh %d", q, cl, cf)
		}
	}
}

// Package geometry provides d-dimensional point sets, axis-aligned bounding
// boxes, and the distance computations used throughout the library.
//
// Points are stored in a single flat []float64 buffer (row-major, n x d) for
// cache friendliness; algorithms address points by integer index.
package geometry

import (
	"fmt"
	"math"
)

// Points is a set of n points in d dimensions backed by a flat buffer.
// Point i occupies Data[i*Dim : (i+1)*Dim].
type Points struct {
	Data []float64
	N    int
	Dim  int
}

// NewPoints allocates an n x dim point set with zeroed coordinates.
func NewPoints(n, dim int) Points {
	if n < 0 || dim <= 0 {
		panic(fmt.Sprintf("geometry: invalid point set size n=%d dim=%d", n, dim))
	}
	return Points{Data: make([]float64, n*dim), N: n, Dim: dim}
}

// FromSlices builds a Points from a slice of coordinate slices. All rows must
// share the same dimensionality.
func FromSlices(rows [][]float64) Points {
	if len(rows) == 0 {
		return Points{N: 0, Dim: 1}
	}
	d := len(rows[0])
	p := NewPoints(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("geometry: row %d has dim %d, want %d", i, len(r), d))
		}
		copy(p.Data[i*d:(i+1)*d], r)
	}
	return p
}

// At returns the coordinates of point i as a subslice of the backing buffer.
// The caller must not modify the result unless it owns the point set.
func (p Points) At(i int) []float64 {
	return p.Data[i*p.Dim : (i+1)*p.Dim : (i+1)*p.Dim]
}

// Rows copies the point set into a slice-of-slices representation.
func (p Points) Rows() [][]float64 {
	out := make([][]float64, p.N)
	for i := range out {
		out[i] = append([]float64(nil), p.At(i)...)
	}
	return out
}

// SqDist returns the squared Euclidean distance between points i and j.
// Dimensions 2 and 3 take specialized paths via SqDistVec; hot loops that
// want to hoist the dimension dispatch entirely use SqDistKernel instead.
func (p Points) SqDist(i, j int) float64 {
	return SqDistVec(p.Data[i*p.Dim:(i+1)*p.Dim], p.Data[j*p.Dim:(j+1)*p.Dim])
}

// Dist returns the Euclidean distance between points i and j.
func (p Points) Dist(i, j int) float64 { return math.Sqrt(p.SqDist(i, j)) }

// SqDistTo returns the squared Euclidean distance between point i and the raw
// coordinate vector q (len(q) must equal Dim).
func (p Points) SqDistTo(i int, q []float64) float64 {
	return SqDistVec(p.Data[i*p.Dim:(i+1)*p.Dim], q)
}

// SqDistVec returns the squared Euclidean distance between two coordinate
// vectors of equal length.
func SqDistVec(a, b []float64) float64 {
	switch len(a) {
	case 2:
		return sqDist2(a, b)
	case 3:
		return sqDist3(a, b)
	}
	return sqDistGeneric(a, b)
}

// SqDistKernel returns the squared-Euclidean kernel monomorphized for the
// given dimension: dimensions 2 and 3 get straight-line bodies with no loop
// and no per-call dimension branch. Traversals select the kernel once and
// call it in their inner loops, so the dispatch cost is paid per traversal,
// not per point pair.
func SqDistKernel(dim int) func(a, b []float64) float64 {
	switch dim {
	case 2:
		return sqDist2
	case 3:
		return sqDist3
	}
	return sqDistGeneric
}

func sqDist2(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	return d0*d0 + d1*d1
}

func sqDist3(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	d2 := a[2] - b[2]
	return d0*d0 + d1*d1 + d2*d2
}

func sqDistGeneric(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return s
}

// Box is an axis-aligned bounding box.
type Box struct {
	Lo, Hi []float64
}

// EmptyBox returns a box with inverted infinite bounds, ready for Extend.
func EmptyBox(dim int) Box {
	b := Box{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for k := 0; k < dim; k++ {
		b.Lo[k] = math.Inf(1)
		b.Hi[k] = math.Inf(-1)
	}
	return b
}

// Extend grows the box to contain coordinate vector q.
func (b *Box) Extend(q []float64) {
	for k, v := range q {
		if v < b.Lo[k] {
			b.Lo[k] = v
		}
		if v > b.Hi[k] {
			b.Hi[k] = v
		}
	}
}

// ExtendBox grows the box to contain another box.
func (b *Box) ExtendBox(o Box) {
	for k := range b.Lo {
		if o.Lo[k] < b.Lo[k] {
			b.Lo[k] = o.Lo[k]
		}
		if o.Hi[k] > b.Hi[k] {
			b.Hi[k] = o.Hi[k]
		}
	}
}

// BoundingBox computes the bounding box of points idx (indices into p).
func BoundingBox(p Points, idx []int32) Box {
	b := EmptyBox(p.Dim)
	for _, i := range idx {
		b.Extend(p.At(int(i)))
	}
	return b
}

// BoundingBoxRange computes the bounding box of the contiguous rows
// [lo, hi) of p into b, whose Lo/Hi must already have length p.Dim. The
// scan runs straight over the backing buffer, allocating nothing.
func BoundingBoxRange(b *Box, p Points, lo, hi int) {
	d := p.Dim
	for k := 0; k < d; k++ {
		b.Lo[k] = math.Inf(1)
		b.Hi[k] = math.Inf(-1)
	}
	rows := p.Data[lo*d : hi*d]
	for r := 0; r < len(rows); r += d {
		b.Extend(rows[r : r+d : r+d])
	}
}

// Center writes the box center into out and returns it.
func (b Box) Center(out []float64) []float64 {
	for k := range b.Lo {
		out[k] = (b.Lo[k] + b.Hi[k]) / 2
	}
	return out
}

// Radius returns the radius of the bounding sphere circumscribing the box
// (half the box diagonal).
func (b Box) Radius() float64 {
	var s float64
	for k := range b.Lo {
		d := (b.Hi[k] - b.Lo[k]) / 2
		s += d * d
	}
	return math.Sqrt(s)
}

// WidestDim returns the dimension with the largest extent and that extent.
func (b Box) WidestDim() (int, float64) {
	best, bestW := 0, -1.0
	for k := range b.Lo {
		if w := b.Hi[k] - b.Lo[k]; w > bestW {
			best, bestW = k, w
		}
	}
	return best, bestW
}

// SqDistBoxes returns the squared minimum distance between two boxes
// (0 if they intersect).
func SqDistBoxes(a, b Box) float64 {
	var s float64
	for k := range a.Lo {
		var d float64
		switch {
		case b.Lo[k] > a.Hi[k]:
			d = b.Lo[k] - a.Hi[k]
		case a.Lo[k] > b.Hi[k]:
			d = a.Lo[k] - b.Hi[k]
		}
		s += d * d
	}
	return s
}

// SqDistBoxesBounded is SqDistBoxes with an early exit: the scan stops as
// soon as the partial sum reaches bound. The result is exact when it is
// below bound; a result >= bound only certifies that the true squared box
// distance is >= bound, so callers may use it solely for threshold tests
// against bound. In high dimension most candidate pairs fail their pruning
// threshold within the first few coordinates, making this much cheaper
// than the full scan on traversal-heavy workloads.
func SqDistBoxesBounded(a, b Box, bound float64) float64 {
	var s float64
	for k := range a.Lo {
		var d float64
		switch {
		case b.Lo[k] > a.Hi[k]:
			d = b.Lo[k] - a.Hi[k]
		case a.Lo[k] > b.Hi[k]:
			d = a.Lo[k] - b.Hi[k]
		default:
			continue
		}
		s += d * d
		if s >= bound {
			return s
		}
	}
	return s
}

// SqMaxDistBoxes returns the squared maximum distance between any two points
// of the two boxes.
func SqMaxDistBoxes(a, b Box) float64 {
	var s float64
	for k := range a.Lo {
		d := math.Max(a.Hi[k]-b.Lo[k], b.Hi[k]-a.Lo[k])
		if d < 0 {
			d = 0
		}
		s += d * d
	}
	return s
}

// SqMaxDistBoxesBounded is SqMaxDistBoxes with the same early-exit
// contract as SqDistBoxesBounded: exact below bound, and >= bound only
// certifies the true squared max distance is >= bound.
func SqMaxDistBoxesBounded(a, b Box, bound float64) float64 {
	var s float64
	for k := range a.Lo {
		d := math.Max(a.Hi[k]-b.Lo[k], b.Hi[k]-a.Lo[k])
		if d < 0 {
			d = 0
		}
		s += d * d
		if s >= bound {
			return s
		}
	}
	return s
}

// SqDistPointBox returns the squared distance from coordinate vector q to box b.
func SqDistPointBox(q []float64, b Box) float64 {
	var s float64
	for k, v := range q {
		var d float64
		switch {
		case v < b.Lo[k]:
			d = b.Lo[k] - v
		case v > b.Hi[k]:
			d = v - b.Hi[k]
		}
		s += d * d
	}
	return s
}

package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoints(n, dim int, seed int64) Points {
	rng := rand.New(rand.NewSource(seed))
	p := NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

func TestFromSlicesRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	p := FromSlices(rows)
	got := p.Rows()
	for i := range rows {
		for k := range rows[i] {
			if got[i][k] != rows[i][k] {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
}

func TestDistProperties(t *testing.T) {
	p := randPoints(50, 3, 1)
	f := func(ai, bi uint8) bool {
		i, j := int(ai)%p.N, int(bi)%p.N
		d := p.Dist(i, j)
		if d != p.Dist(j, i) {
			return false
		}
		if i == j && d != 0 {
			return false
		}
		return d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	p := randPoints(30, 4, 2)
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			for k := 0; k < p.N; k += 7 {
				if p.Dist(i, j) > p.Dist(i, k)+p.Dist(k, j)+1e-12 {
					t.Fatalf("triangle inequality violated (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestBoundingBoxContainsPoints(t *testing.T) {
	p := randPoints(100, 5, 3)
	idx := make([]int32, p.N)
	for i := range idx {
		idx[i] = int32(i)
	}
	b := BoundingBox(p, idx)
	for i := 0; i < p.N; i++ {
		for k, v := range p.At(i) {
			if v < b.Lo[k] || v > b.Hi[k] {
				t.Fatalf("point %d outside box in dim %d", i, k)
			}
		}
	}
	if SqDistPointBox(p.At(0), b) != 0 {
		t.Fatal("contained point has nonzero box distance")
	}
}

func TestBoxRadiusCoversBox(t *testing.T) {
	p := randPoints(64, 3, 4)
	idx := make([]int32, p.N)
	for i := range idx {
		idx[i] = int32(i)
	}
	b := BoundingBox(p, idx)
	ctr := b.Center(make([]float64, 3))
	r := b.Radius()
	for i := 0; i < p.N; i++ {
		if d := math.Sqrt(p.SqDistTo(i, ctr)); d > r+1e-9 {
			t.Fatalf("point %d at distance %v exceeds radius %v", i, d, r)
		}
	}
}

func TestSqDistBoxesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randPoints(10, 2, int64(trial))
		bpts := NewPoints(10, 2)
		for i := range bpts.Data {
			bpts.Data[i] = rng.Float64()*100 + 50
		}
		ia := make([]int32, a.N)
		ib := make([]int32, bpts.N)
		for i := range ia {
			ia[i] = int32(i)
			ib[i] = int32(i)
		}
		ba := BoundingBox(a, ia)
		bb := BoundingBox(bpts, ib)
		lo := math.Sqrt(SqDistBoxes(ba, bb))
		hi := math.Sqrt(SqMaxDistBoxes(ba, bb))
		for i := 0; i < a.N; i++ {
			for j := 0; j < bpts.N; j++ {
				var s float64
				for k := 0; k < 2; k++ {
					d := a.At(i)[k] - bpts.At(j)[k]
					s += d * d
				}
				d := math.Sqrt(s)
				if d < lo-1e-9 {
					t.Fatalf("point distance %v below box lower bound %v", d, lo)
				}
				if d > hi+1e-9 {
					t.Fatalf("point distance %v above box upper bound %v", d, hi)
				}
			}
		}
	}
}

func TestWidestDim(t *testing.T) {
	b := Box{Lo: []float64{0, 0, 0}, Hi: []float64{1, 5, 2}}
	dim, w := b.WidestDim()
	if dim != 1 || w != 5 {
		t.Fatalf("got (%d,%v), want (1,5)", dim, w)
	}
}

func TestEmptyBoxExtend(t *testing.T) {
	b := EmptyBox(2)
	b.Extend([]float64{1, 2})
	b.Extend([]float64{-1, 5})
	if b.Lo[0] != -1 || b.Hi[0] != 1 || b.Lo[1] != 2 || b.Hi[1] != 5 {
		t.Fatalf("extend produced wrong box: %+v", b)
	}
	var c Box
	c = EmptyBox(2)
	c.ExtendBox(b)
	if c.Lo[0] != b.Lo[0] || c.Hi[1] != b.Hi[1] {
		t.Fatal("ExtendBox mismatch")
	}
}

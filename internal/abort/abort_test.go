package abort

import "testing"

func TestNilFlagIsInert(t *testing.T) {
	var f *Flag
	f.Set() // must not panic
	if f.Aborted() {
		t.Fatal("nil flag reports aborted")
	}
	f.Check() // must not panic
}

func TestZeroValueNotAborted(t *testing.T) {
	var f Flag
	if f.Aborted() {
		t.Fatal("zero flag reports aborted")
	}
	f.Check()
}

func TestSetThenCheckPanicsWithSignal(t *testing.T) {
	var f Flag
	f.Set()
	if !f.Aborted() {
		t.Fatal("Set did not mark the flag")
	}
	defer func() {
		r := recover()
		if _, ok := r.(Signal); !ok {
			t.Fatalf("Check panicked with %v (%T), want Signal", r, r)
		}
	}()
	f.Check()
	t.Fatal("Check returned on an aborted flag")
}

func TestSetIsIdempotent(t *testing.T) {
	var f Flag
	f.Set()
	f.Set()
	if !f.Aborted() {
		t.Fatal("flag lost after double Set")
	}
}

// Package abort provides a cheap cooperative-cancellation primitive for
// the long-running stage builds in the clustering pipeline.
//
// A context.Context is the right interface at the API boundary, but the
// hot loops inside a kd-tree build or a Borůvka round cannot afford a
// channel select — or even a ctx.Err() call — per node. A Flag is a
// single atomic bool: setting it is the rare path (a client disconnected,
// all singleflight waiters gave up), and polling it from a worker is one
// relaxed-ish atomic load.
//
// Cancellation unwinds by panicking with the Signal sentinel rather than
// threading error returns through every recursive traversal. This is safe
// through internal/parallel: the scheduler re-raises the first panic value
// verbatim at Sync, so the sentinel crosses fork-join boundaries intact
// and is recovered exactly once, at the build leader in internal/engine.
package abort

import "sync/atomic"

// Flag is a set-once cancellation flag shared between a build leader and
// whoever decides the build is no longer wanted. The zero value is usable.
// All methods are safe on a nil *Flag, which behaves as "never aborted" —
// one-shot callers pass nil and pay a single branch per checkpoint.
type Flag struct {
	v atomic.Bool
}

// Signal is the panic value raised by Check on an aborted flag. It is
// recovered at the stage-build boundary in internal/engine and translated
// into an error; any other panic value is someone else's bug and is
// re-wrapped, not swallowed.
type Signal struct{}

// Set marks the flag aborted. Idempotent, safe from any goroutine.
func (f *Flag) Set() {
	if f != nil {
		f.v.Store(true)
	}
}

// Aborted reports whether Set has been called.
func (f *Flag) Aborted() bool {
	return f != nil && f.v.Load()
}

// Check panics with Signal{} if the flag is set; otherwise it is a single
// atomic load. Call it at loop/recursion checkpoints that are coarse
// enough to amortize the load but fine enough to bound abort latency
// (per tree node, per Borůvka round, per parallel chunk).
func (f *Flag) Check() {
	if f != nil && f.v.Load() {
		panic(Signal{})
	}
}

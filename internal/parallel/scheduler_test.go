package parallel

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withGOMAXPROCS runs f under the given GOMAXPROCS and restores the old
// value afterwards.
func withGOMAXPROCS(p int, f func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

// schedTreeSum is treeSum (bench_test.go) via explicit Group use.
func schedTreeSum(lo, hi, cutoff int) int64 {
	if hi-lo <= cutoff {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}
	mid := (lo + hi) / 2
	var a, b int64
	var g Group
	g.Spawn(func() { b = schedTreeSum(mid, hi, cutoff) })
	g.Run(func() { a = schedTreeSum(lo, mid, cutoff) })
	g.Sync()
	return a + b
}

func TestGroupNestedSpawnSync(t *testing.T) {
	const n = 1 << 16
	want := int64(n) * (n - 1) / 2
	for _, procs := range []int{1, 2, 8} {
		withGOMAXPROCS(procs, func() {
			for _, cutoff := range []int{1, 7, 64, n} {
				if got := schedTreeSum(0, n, cutoff); got != want {
					t.Fatalf("GOMAXPROCS=%d cutoff=%d: sum = %d, want %d", procs, cutoff, got, want)
				}
			}
		})
	}
}

func TestGroupReuse(t *testing.T) {
	withGOMAXPROCS(4, func() {
		var g Group
		var count atomic.Int64
		for round := 0; round < 100; round++ {
			for i := 0; i < 5; i++ {
				g.Spawn(func() { count.Add(1) })
			}
			g.Sync()
			if got := count.Load(); got != int64((round+1)*5) {
				t.Fatalf("round %d: count = %d, want %d", round, got, (round+1)*5)
			}
		}
	})
}

func TestGroupPanicPropagation(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withGOMAXPROCS(procs, func() {
			// A panic in a spawned task must surface at Sync on the owner's
			// goroutine, with the original panic value, after all sibling
			// tasks finished.
			var siblings atomic.Int64
			got := func() (r any) {
				defer func() { r = recover() }()
				var g Group
				for i := 0; i < 8; i++ {
					g.Spawn(func() { siblings.Add(1) })
				}
				g.Spawn(func() { panic("boom") })
				g.Sync()
				return nil
			}()
			if got != "boom" {
				t.Fatalf("GOMAXPROCS=%d: recovered %v, want \"boom\"", procs, got)
			}
			if siblings.Load() != 8 {
				t.Fatalf("GOMAXPROCS=%d: %d siblings ran before rethrow, want 8", procs, siblings.Load())
			}
		})
	}
}

func TestDoPanicPropagation(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withGOMAXPROCS(procs, func() {
			for name, fork := range map[string]func(){
				"spawned": func() { Do(func() {}, func() { panic("spawned boom") }) },
				"inline":  func() { Do(func() { panic("inline boom") }, func() {}) },
			} {
				got := func() (r any) {
					defer func() { r = recover() }()
					fork()
					return nil
				}()
				s, ok := got.(string)
				if !ok || s == "" {
					t.Fatalf("GOMAXPROCS=%d %s: recovered %v, want a boom", procs, name, got)
				}
			}
		})
	}
}

func TestNestedPanicUnwindsThroughLevels(t *testing.T) {
	withGOMAXPROCS(4, func() {
		var depth func(d int)
		depth = func(d int) {
			if d == 0 {
				panic("bottom")
			}
			Do(func() { depth(d - 1) }, func() {})
		}
		got := func() (r any) {
			defer func() { r = recover() }()
			depth(6)
			return nil
		}()
		if got != "bottom" {
			t.Fatalf("recovered %v, want \"bottom\"", got)
		}
	})
}

// TestDeterminismAcrossWorkerCounts checks the package's central contract:
// every primitive returns identical results for any GOMAXPROCS.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	type results struct {
		sorted    []float64
		prefix    []int
		total     int
		filtered  []int
		minIdx    int
		minVal    float64
		rank      []float64
		semisort  map[int64]int
		treeDepth []int32
	}
	collect := func() results {
		rng := rand.New(rand.NewSource(99))
		var r results
		r.sorted = make([]float64, 1<<14)
		for i := range r.sorted {
			r.sorted[i] = rng.Float64()
		}
		Sort(r.sorted, func(x, y float64) bool { return x < y })

		r.prefix = make([]int, 10000)
		for i := range r.prefix {
			r.prefix[i] = i % 13
		}
		r.total = PrefixSum(r.prefix)

		in := make([]int, 50000)
		for i := range in {
			in[i] = i * 7 % 101
		}
		r.filtered = Filter(in, func(x int) bool { return x%3 == 1 })

		vals := make([]float64, 20000)
		for i := range vals {
			vals[i] = float64((i*2654435761)%977) / 977
		}
		r.minIdx, r.minVal = ReduceMin(len(vals), 0, func(i int) float64 { return vals[i] })

		next := make([]int32, 1<<15)
		value := make([]float64, len(next))
		for i := 0; i < len(next)-1; i++ {
			next[i] = int32(i + 1)
			value[i] = float64(i % 5)
		}
		next[len(next)-1] = -1
		r.rank = ListRank(next, value)

		items := make([]int, 30000)
		for i := range items {
			items[i] = i
		}
		groups := Semisort(items, func(x int) int64 { return int64(x % 257) })
		r.semisort = make(map[int64]int)
		for _, g := range groups {
			r.semisort[int64(g[0]%257)] = len(g)
		}

		edges := make([]TreeEdge, 0, 999)
		for i := 1; i < 1000; i++ {
			edges = append(edges, TreeEdge{U: int32(rng.Intn(i)), V: int32(i)})
		}
		_, r.treeDepth = RootTree(1000, edges, 0)
		return r
	}

	var base results
	withGOMAXPROCS(1, func() { base = collect() })
	for _, procs := range []int{2, 8} {
		withGOMAXPROCS(procs, func() {
			got := collect()
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("GOMAXPROCS=%d: results differ from GOMAXPROCS=1", procs)
			}
		})
	}
}

// TestSchedulerStressNoDeadlock hammers the scheduler from many root
// goroutines at once with nested, irregular fork-join trees. Run under
// -race in CI; a hang here fails via the timeout watchdog.
func TestSchedulerStressNoDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	withGOMAXPROCS(8, func() {
		done := make(chan struct{})
		go func() {
			defer close(done)
			var wg sync.WaitGroup
			var total atomic.Int64
			for root := 0; root < 16; root++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					for iter := 0; iter < 50; iter++ {
						// Branch choice is a pure function of the path so the
						// tree shape is irregular but parallel branches share
						// no mutable state.
						var walk func(d int, path uint64)
						walk = func(d int, path uint64) {
							total.Add(1)
							if d == 0 {
								return
							}
							switch (path ^ seed ^ uint64(iter)*0x9e3779b9) % 3 {
							case 0:
								Do(func() { walk(d-1, path*31+1) }, func() { walk(d-1, path*31+2) })
							case 1:
								DoN(
									func() { walk(d-1, path*31+1) },
									func() { walk(d-1, path*31+2) },
									func() { walk(d-1, path*31+3) },
								)
							default:
								ForRange(64, 16, func(lo, hi int) { walk(d-1, path*31+uint64(lo)) })
							}
						}
						walk(3, seed)
					}
				}(uint64(root))
			}
			wg.Wait()
			if total.Load() == 0 {
				t.Error("stress ran no work")
			}
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Minute):
			t.Fatal("scheduler stress test deadlocked (2m timeout)")
		}
	})
}

// TestForRangeFromManyGoroutines checks concurrent root-level entry into
// the scheduler from plain (non-worker) goroutines.
func TestForRangeFromManyGoroutines(t *testing.T) {
	withGOMAXPROCS(4, func() {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([]int64, 4096)
				For(len(out), 32, func(i int) { out[i] = int64(i) })
				for i, v := range out {
					if v != int64(i) {
						t.Errorf("out[%d] = %d", i, v)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestGOMAXPROCSGrowth verifies the pool adapts when GOMAXPROCS rises
// mid-process (the benchsuite raises and lowers it between runs).
func TestGOMAXPROCSGrowth(t *testing.T) {
	var first, second int64
	withGOMAXPROCS(2, func() { first = schedTreeSum(0, 1<<14, 128) })
	withGOMAXPROCS(8, func() { second = schedTreeSum(0, 1<<14, 128) })
	if first != second {
		t.Fatalf("results differ after GOMAXPROCS growth: %d vs %d", first, second)
	}
}

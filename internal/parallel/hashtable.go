package parallel

import (
	"math/bits"
	"sync/atomic"
)

// Map is the parallel hash table of Section 2.2: a lock-free linear-probing
// table over int64 keys and int64 values supporting n concurrent inserts
// and finds in O(n) work and O(log n) depth w.h.p. The table is insert-only
// (no deletes) with last-writer-wins semantics on duplicate keys, which is
// what the dendrogram contraction step needs; capacity is fixed at
// construction.
type Map struct {
	mask  uint64
	keys  []int64 // emptyKey when unoccupied
	vals  []int64
	count int64
}

const emptyKey = int64(-0x8000000000000000)

// NewMap returns a table able to hold at least capacity entries.
func NewMap(capacity int) *Map {
	if capacity < 1 {
		capacity = 1
	}
	size := 1 << uint(bits.Len(uint(capacity*2)))
	m := &Map{mask: uint64(size - 1), keys: make([]int64, size), vals: make([]int64, size)}
	for i := range m.keys {
		m.keys[i] = emptyKey
	}
	return m
}

// hash64 is a Fibonacci/avalanche mix (splitmix64 finalizer).
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Put inserts or overwrites key. Safe for concurrent use. Keys must not be
// the reserved minimum int64 value. Put panics when the table is full.
func (m *Map) Put(key, val int64) {
	if key == emptyKey {
		panic("parallel: reserved key")
	}
	i := hash64(uint64(key)) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		slot := &m.keys[i]
		cur := atomic.LoadInt64(slot)
		if cur == key {
			atomic.StoreInt64(&m.vals[i], val)
			return
		}
		if cur == emptyKey {
			if atomic.CompareAndSwapInt64(slot, emptyKey, key) {
				atomic.StoreInt64(&m.vals[i], val)
				atomic.AddInt64(&m.count, 1)
				return
			}
			// Lost the race; re-examine the slot (it may now hold our key).
			if atomic.LoadInt64(slot) == key {
				atomic.StoreInt64(&m.vals[i], val)
				return
			}
		}
		i = (i + 1) & m.mask
	}
	panic("parallel: hash table full")
}

// Get returns the value for key and whether it is present. The table is
// phase-concurrent in the sense of the paper's hash table primitive: any
// number of Puts may run concurrently, and any number of Gets may run
// concurrently, but Gets must be separated from Puts by a barrier (a Get
// racing a Put of the same key may observe a partially published entry).
func (m *Map) Get(key int64) (int64, bool) {
	i := hash64(uint64(key)) & m.mask
	for probes := uint64(0); probes <= m.mask; probes++ {
		cur := atomic.LoadInt64(&m.keys[i])
		if cur == key {
			return atomic.LoadInt64(&m.vals[i]), true
		}
		if cur == emptyKey {
			return 0, false
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// Len returns the number of distinct keys inserted.
func (m *Map) Len() int { return int(atomic.LoadInt64(&m.count)) }

package parallel

// Euler tour and list ranking, used by the dendrogram algorithm of Section 4
// to root trees and compute vertex distances from the start vertex.

// TreeEdge is an undirected tree edge between vertices U and V.
type TreeEdge struct {
	U, V int32
}

// EulerTour holds a directed circuit traversing each tree edge twice (once in
// each direction). Arc 2*e is edge e in input orientation (U->V); arc 2*e+1
// is the reverse. Next[a] is the successor arc of a in the circuit.
type EulerTour struct {
	Edges []TreeEdge
	Next  []int32
	// FirstArc[v] is one outgoing arc of vertex v (-1 if isolated).
	FirstArc []int32
}

// arcHead returns the destination vertex of arc a.
func arcHead(edges []TreeEdge, a int32) int32 {
	e := edges[a>>1]
	if a&1 == 0 {
		return e.V
	}
	return e.U
}

// arcTail returns the source vertex of arc a.
func arcTail(edges []TreeEdge, a int32) int32 {
	e := edges[a>>1]
	if a&1 == 0 {
		return e.U
	}
	return e.V
}

// NewEulerTour builds an Euler tour of the tree with n vertices. The standard
// construction links, for every arc a = (u,v), Next[a] to the arc after
// (v,u) in v's adjacency ring.
func NewEulerTour(n int, edges []TreeEdge) *EulerTour {
	m := len(edges)
	// Bucket arcs by tail vertex (counting sort).
	cnt := make([]int32, n+1)
	for a := int32(0); a < int32(2*m); a++ {
		cnt[arcTail(edges, a)+1]++
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	pos := append([]int32(nil), cnt[:n]...)
	adj := make([]int32, 2*m)
	for a := int32(0); a < int32(2*m); a++ {
		t := arcTail(edges, a)
		adj[pos[t]] = a
		pos[t]++
	}
	// ringNext[a]: next arc with the same tail (cyclic within the bucket).
	ringNext := make([]int32, 2*m)
	first := make([]int32, n)
	for v := range first {
		first[v] = -1
	}
	for v := 0; v < n; v++ {
		lo, hi := cnt[v], cnt[v+1]
		if lo == hi {
			continue
		}
		first[v] = adj[lo]
		for i := lo; i < hi; i++ {
			j := i + 1
			if j == hi {
				j = lo
			}
			ringNext[adj[i]] = adj[j]
		}
	}
	next := make([]int32, 2*m)
	For(2*m, 0, func(ai int) {
		a := int32(ai)
		next[a] = ringNext[a^1]
	})
	return &EulerTour{Edges: edges, Next: next, FirstArc: first}
}

// ListRank computes, for a linked list given by next (next[i] = -1 at the
// tail), the suffix sums of value from each node to the end of the list.
// It uses pointer jumping for O(n log n) work and O(log n) depth; for small
// inputs it falls back to a sequential pass.
func ListRank(next []int32, value []float64) []float64 {
	n := len(next)
	rank := append([]float64(nil), value...)
	if n == 0 {
		return rank
	}
	if Workers() == 1 || n < 1<<14 {
		// Sequential: process in reverse topological order via successor chain.
		order := make([]int32, 0, n)
		indeg := make([]int32, n)
		for _, nx := range next {
			if nx >= 0 {
				indeg[nx]++
			}
		}
		for i := int32(0); i < int32(n); i++ {
			if indeg[i] == 0 {
				// walk the chain from each head
				for j := i; j >= 0; j = next[j] {
					order = append(order, j)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			j := order[i]
			if next[j] >= 0 {
				rank[j] += rank[next[j]]
			}
		}
		return rank
	}
	nx := append([]int32(nil), next...)
	tmpR := make([]float64, n)
	tmpN := make([]int32, n)
	for {
		done := true
		For(n, 0, func(i int) {
			if nx[i] >= 0 {
				tmpR[i] = rank[i] + rank[nx[i]]
				tmpN[i] = nx[nx[i]]
			} else {
				tmpR[i] = rank[i]
				tmpN[i] = -1
			}
		})
		rank, tmpR = tmpR, rank
		nx, tmpN = tmpN, nx
		for i := 0; i < n; i++ {
			if nx[i] >= 0 {
				done = false
				break
			}
		}
		if done {
			return rank
		}
	}
}

// RootTree orients the tree with n vertices at root s using its Euler tour:
// it returns parent[v] (parent vertex, -1 for s) and depth[v] (unweighted
// hop distance from s, the paper's "vertex distance").
func RootTree(n int, edges []TreeEdge, s int32) (parent, depth []int32) {
	parent = make([]int32, n)
	depth = make([]int32, n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	depth[s] = 0
	if len(edges) == 0 {
		return parent, depth
	}
	et := NewEulerTour(n, edges)
	start := et.FirstArc[s]
	if start < 0 {
		return parent, depth
	}
	m2 := len(et.Next)
	// Break the circuit at the arc entering `start`, then list-rank with
	// +1 on "downward" arcs. An arc a=(u,v) is downward iff it is the first
	// of {a, a^1} on the tour starting at `start`; we determine this from
	// tour positions, computed with a unit-value list rank.
	next := make([]int32, m2)
	copy(next, et.Next)
	// Find predecessor of start to cut the cycle.
	var pred int32 = -1
	for a := int32(0); a < int32(m2); a++ {
		if next[a] == start {
			pred = a
			break
		}
	}
	next[pred] = -1
	ones := make([]float64, m2)
	for i := range ones {
		ones[i] = 1
	}
	suffix := ListRank(next, ones) // position from end, start has the max
	// Arc a appears before arc b on the tour iff suffix[a] > suffix[b].
	For(m2/2, 0, func(e int) {
		a, b := int32(2*e), int32(2*e+1)
		down := a
		if suffix[b] > suffix[a] {
			down = b
		}
		u, v := arcTail(et.Edges, down), arcHead(et.Edges, down)
		parent[v] = u
	})
	// Depth via list ranking: +1 on downward arcs, -1 on upward arcs.
	vals := make([]float64, m2)
	For(m2/2, 0, func(e int) {
		a, b := int32(2*e), int32(2*e+1)
		if suffix[a] > suffix[b] {
			vals[a], vals[b] = 1, -1
		} else {
			vals[a], vals[b] = -1, 1
		}
	})
	suf := ListRank(next, vals)
	// depth(head(a)) for downward arcs: total downs minus ups from tour start
	// to a inclusive = total(vals) - suffix-after(a) ... simpler: depth of the
	// head of arc a equals sum of vals over arcs from start..a, which is
	// total - (suf[a] - vals[a]).
	total := 0.0 // the Euler tour returns to s, so the total is 0
	For(m2, 0, func(ai int) {
		a := int32(ai)
		h := arcHead(et.Edges, a)
		d := total - (suf[a] - vals[a])
		if vals[a] == 1 { // downward arc determines depth of its head
			depth[h] = int32(d + 0.5)
		}
	})
	return parent, depth
}

package parallel

// Sequence primitives: prefix sum, filter, pack, split. All are implemented
// with the classic two-pass (count, then write) parallel scheme over fixed
// chunk boundaries, giving O(n) work and O(log n) depth.

// PrefixSum replaces a with its exclusive prefix sum and returns the total.
func PrefixSum(a []int) int {
	n := len(a)
	if n == 0 {
		return 0
	}
	p := Workers()
	if p == 1 || n < 4096 {
		sum := 0
		for i := range a {
			v := a[i]
			a[i] = sum
			sum += v
		}
		return sum
	}
	chunk := (n + p - 1) / p
	nchunks := (n + chunk - 1) / chunk
	sums := make([]int, nchunks)
	ForRange(n, chunk, func(lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[lo/chunk] = s
	})
	total := 0
	for i, s := range sums {
		sums[i] = total
		total += s
	}
	ForRange(n, chunk, func(lo, hi int) {
		s := sums[lo/chunk]
		for i := lo; i < hi; i++ {
			v := a[i]
			a[i] = s
			s += v
		}
	})
	return total
}

// Filter returns the elements of a satisfying pred, preserving order.
func Filter[T any](a []T, pred func(T) bool) []T {
	n := len(a)
	if n == 0 {
		return nil
	}
	if Workers() == 1 || n < 4096 {
		out := make([]T, 0, n/2+1)
		for _, v := range a {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out
	}
	flags := make([]int, n)
	For(n, 0, func(i int) {
		if pred(a[i]) {
			flags[i] = 1
		}
	})
	total := PrefixSum(flags)
	out := make([]T, total)
	For(n, 0, func(i int) {
		pos := flags[i]
		if i+1 < n && flags[i+1] == pos || i+1 == n && pos == total {
			return
		}
		out[pos] = a[i]
	})
	return out
}

// Split partitions a into (true-part, false-part), preserving relative order
// within each part (the paper's SPLIT primitive).
func Split[T any](a []T, pred func(T) bool) (yes, no []T) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	if Workers() == 1 || n < 4096 {
		yes = make([]T, 0, n/2+1)
		no = make([]T, 0, n/2+1)
		for _, v := range a {
			if pred(v) {
				yes = append(yes, v)
			} else {
				no = append(no, v)
			}
		}
		return yes, no
	}
	flags := make([]int, n)
	For(n, 0, func(i int) {
		if pred(a[i]) {
			flags[i] = 1
		}
	})
	nyes := PrefixSum(flags)
	yes = make([]T, nyes)
	no = make([]T, n-nyes)
	For(n, 0, func(i int) {
		pos := flags[i]
		var taken bool
		if i+1 < n {
			taken = flags[i+1] != pos
		} else {
			taken = pos != nyes
		}
		if taken {
			yes[pos] = a[i]
		} else {
			no[i-pos] = a[i]
		}
	})
	return yes, no
}

// GroupBy implements semisort: it groups items by integer key and returns the
// groups (order of groups and of items within a group is unspecified).
func GroupBy[T any](items []T, key func(T) int) map[int][]T {
	out := make(map[int][]T)
	for _, it := range items {
		out[key(it)] = append(out[key(it)], it)
	}
	return out
}

// Package parallel implements the shared-memory parallel primitives from
// Section 2.2 of the paper: fork-join helpers, parallel for, prefix sum,
// filter, split, parallel merge sort, parallel selection, priority
// concurrent writes (write-min), Euler tours, and list ranking.
//
// All parallelism runs on a persistent work-stealing fork-join scheduler
// (see scheduler.go): a process-wide pool of GOMAXPROCS workers with
// per-worker steal queues, a Group/Spawn/Sync task API with panic
// propagation, and work-first inline execution so that subproblems below
// the sequential cutoffs never leave the goroutine that forked them. The
// primitives here — Do, DoN, For, ForRange, ReduceMin and everything built
// on them — are thin layers over that scheduler.
//
// The worker count follows runtime.GOMAXPROCS, matching the paper's
// practice of varying thread count externally for scalability experiments;
// with GOMAXPROCS=1 every primitive degenerates to plain sequential code
// with no scheduler involvement. Results are deterministic: identical for
// any worker count and any steal schedule.
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers reports the number of workers parallel operations will use.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Do runs f and g as a two-way fork-join: g becomes stealable by idle pool
// workers while f runs on the calling goroutine; if no worker takes g it is
// run inline, so the pair costs no goroutine switch at all. If either
// function panics, both still run to completion and the first panic is
// re-raised here — the same contract at every worker count.
func Do(f, g func()) {
	gr := newGroup()
	if Workers() == 1 {
		gr.Run(f)
		gr.Run(g)
	} else {
		gr.Spawn(g)
		gr.Run(f)
	}
	gr.Sync()
	gr.release()
}

// DoN runs all fns as one fork-join group: fns[1:] become stealable while
// fns[0] runs on the calling goroutine. Like Do, a panic in one function
// does not stop its siblings; the first panic re-raises here.
func DoN(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	gr := newGroup()
	if Workers() == 1 {
		for _, f := range fns {
			gr.Run(f)
		}
	} else {
		for _, f := range fns[1:] {
			gr.Spawn(f)
		}
		gr.Run(fns[0])
	}
	gr.Sync()
	gr.release()
}

// For executes body(i) for i in [0, n) in parallel, chunking work so that
// each task covers at least grain iterations. grain <= 0 selects a default.
func For(n, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) over a partition of [0, n) in parallel.
// Chunks are handed out by an atomic cursor to a group of scheduler tasks
// (one per worker), so load imbalance between chunks self-corrects; with a
// single worker, or when n fits in one grain, body runs inline. A panic in
// body re-raises here; how many other chunks still run once a chunk has
// panicked is unspecified (panicking executions carry no determinism
// guarantee).
func ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = n/(8*p) + 1
	}
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > 8*p {
		chunks = 8 * p
		grain = (n + chunks - 1) / chunks
		chunks = (n + grain - 1) / grain
	}
	var next int64
	loop := func() {
		for {
			c := int(atomic.AddInt64(&next, 1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	workers := p
	if workers > chunks {
		workers = chunks
	}
	gr := newGroup()
	for w := 1; w < workers; w++ {
		gr.Spawn(loop)
	}
	gr.Run(loop)
	gr.Sync()
	gr.release()
}

// ReduceMin finds, over i in [0,n), the minimum key with its index using a
// per-worker local reduction. value returns the key for index i; indices with
// key = +Inf are skipped. Returns (-1, +Inf) when no finite key exists.
// Ties are broken toward the smaller index, making the result deterministic.
func ReduceMin(n, grain int, value func(i int) float64) (int, float64) {
	type best struct {
		idx int
		key float64
	}
	var mu sync.Mutex
	global := best{-1, math.Inf(1)}
	ForRange(n, grain, func(lo, hi int) {
		local := best{-1, math.Inf(1)}
		for i := lo; i < hi; i++ {
			if v := value(i); v < local.key || (v == local.key && local.idx >= 0 && i < local.idx) {
				local = best{i, v}
			}
		}
		if local.idx < 0 {
			return
		}
		mu.Lock()
		if local.key < global.key || (local.key == global.key && (global.idx < 0 || local.idx < global.idx)) {
			global = local
		}
		mu.Unlock()
	})
	return global.idx, global.key
}

// AtomicMinFloat64 implements the paper's WriteMin priority concurrent write
// for float64 values. The stored value only decreases.
type AtomicMinFloat64 struct{ bits uint64 }

// NewAtomicMinFloat64 returns a write-min cell initialized to v.
func NewAtomicMinFloat64(v float64) *AtomicMinFloat64 {
	a := &AtomicMinFloat64{}
	atomic.StoreUint64(&a.bits, math.Float64bits(v))
	return a
}

// Load returns the current minimum.
func (a *AtomicMinFloat64) Load() float64 {
	return math.Float64frombits(atomic.LoadUint64(&a.bits))
}

// Min atomically lowers the stored value to v if v is smaller. It reports
// whether the store happened.
func (a *AtomicMinFloat64) Min(v float64) bool {
	for {
		old := atomic.LoadUint64(&a.bits)
		if math.Float64frombits(old) <= v {
			return false
		}
		if atomic.CompareAndSwapUint64(&a.bits, old, math.Float64bits(v)) {
			return true
		}
	}
}

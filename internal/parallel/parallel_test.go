package parallel

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		hit := make([]int32, n)
		var mu sync.Mutex
		For(n, 3, func(i int) {
			mu.Lock()
			hit[i]++
			mu.Unlock()
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForRangePartition(t *testing.T) {
	n := 12345
	covered := make([]bool, n)
	var mu sync.Mutex
	ForRange(n, 100, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Errorf("index %d covered twice", i)
			}
			covered[i] = true
		}
		mu.Unlock()
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestDoNRunsAll(t *testing.T) {
	var a, b, c bool
	DoN(func() { a = true }, func() { b = true }, func() { c = true })
	if !a || !b || !c {
		t.Fatal("DoN skipped a function")
	}
}

func TestPrefixSum(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]int, n)
		want := make([]int, n)
		sum := 0
		for i := range a {
			a[i] = rng.Intn(10)
			want[i] = sum
			sum += a[i]
		}
		got := PrefixSum(a)
		if got != sum {
			t.Fatalf("n=%d: total %d, want %d", n, got, sum)
		}
		if n > 0 && !reflect.DeepEqual(a, want) {
			t.Fatalf("n=%d: prefix mismatch", n)
		}
	}
}

func TestPrefixSumLargeParallel(t *testing.T) {
	n := 100000
	a := make([]int, n)
	for i := range a {
		a[i] = i % 7
	}
	b := append([]int(nil), a...)
	totA := PrefixSum(a)
	// sequential reference
	sum := 0
	for i := range b {
		v := b[i]
		b[i] = sum
		sum += v
	}
	if totA != sum || !reflect.DeepEqual(a, b) {
		t.Fatal("parallel prefix sum differs from sequential")
	}
}

func TestFilterMatchesSequential(t *testing.T) {
	f := func(a []int16) bool {
		in := make([]int, len(a))
		for i, v := range a {
			in[i] = int(v)
		}
		pred := func(x int) bool { return x%3 == 0 }
		var want []int
		for _, v := range in {
			if pred(v) {
				want = append(want, v)
			}
		}
		got := Filter(in, pred)
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterLarge(t *testing.T) {
	n := 50000
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	got := Filter(in, func(x int) bool { return x%2 == 0 })
	if len(got) != n/2 {
		t.Fatalf("got %d elements, want %d", len(got), n/2)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d]=%d, want %d", i, v, 2*i)
		}
	}
}

func TestSplit(t *testing.T) {
	for _, n := range []int{0, 1, 17, 50000} {
		in := make([]int, n)
		for i := range in {
			in[i] = i * 3 % 11
		}
		pred := func(x int) bool { return x < 5 }
		yes, no := Split(in, pred)
		if len(yes)+len(no) != n {
			t.Fatalf("n=%d: split sizes %d+%d", n, len(yes), len(no))
		}
		var wantYes, wantNo []int
		for _, v := range in {
			if pred(v) {
				wantYes = append(wantYes, v)
			} else {
				wantNo = append(wantNo, v)
			}
		}
		for i := range wantYes {
			if yes[i] != wantYes[i] {
				t.Fatalf("yes[%d] mismatch", i)
			}
		}
		for i := range wantNo {
			if no[i] != wantNo[i] {
				t.Fatalf("no[%d] mismatch", i)
			}
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 100, 1 << 14} {
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
		}
		b := append([]float64(nil), a...)
		Sort(a, func(x, y float64) bool { return x < y })
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: parallel sort differs at %d", n, i)
			}
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(a []float32) bool {
		x := append([]float32(nil), a...)
		Sort(x, func(p, q float32) bool { return p < q })
		return sort.SliceIsSorted(x, func(i, j int) bool { return x[i] < x[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNthElement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 50, 1000} {
		for trial := 0; trial < 5; trial++ {
			a := make([]int, n)
			for i := range a {
				a[i] = rng.Intn(100)
			}
			k := rng.Intn(n)
			b := append([]int(nil), a...)
			sort.Ints(b)
			NthElement(a, k, func(x, y int) bool { return x < y })
			if a[k] != b[k] {
				t.Fatalf("n=%d k=%d: got %d want %d", n, k, a[k], b[k])
			}
			for i := 0; i < k; i++ {
				if a[i] > a[k] {
					t.Fatalf("element before k exceeds kth")
				}
			}
			for i := k + 1; i < n; i++ {
				if a[i] < a[k] {
					t.Fatalf("element after k below kth")
				}
			}
		}
	}
}

func TestReduceMin(t *testing.T) {
	vals := []float64{5, 3, 8, 3, 9}
	idx, v := ReduceMin(len(vals), 1, func(i int) float64 { return vals[i] })
	if v != 3 || idx != 1 {
		t.Fatalf("got (%d,%v), want (1,3) with smallest-index tie-break", idx, v)
	}
	idx, v = ReduceMin(0, 1, func(i int) float64 { return 0 })
	if idx != -1 || !math.IsInf(v, 1) {
		t.Fatalf("empty reduce: got (%d,%v)", idx, v)
	}
}

func TestAtomicMinFloat64(t *testing.T) {
	a := NewAtomicMinFloat64(math.Inf(1))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Min(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if a.Load() != 0 {
		t.Fatalf("concurrent min: got %v, want 0", a.Load())
	}
	if a.Min(5) {
		t.Fatal("Min reported a store for a larger value")
	}
}

func TestListRankSequentialAndParallel(t *testing.T) {
	for _, n := range []int{1, 5, 100, 1 << 15} {
		next := make([]int32, n)
		value := make([]float64, n)
		for i := 0; i < n-1; i++ {
			next[i] = int32(i + 1)
		}
		next[n-1] = -1
		for i := range value {
			value[i] = 1
		}
		rank := ListRank(next, value)
		for i := 0; i < n; i++ {
			want := float64(n - i)
			if rank[i] != want {
				t.Fatalf("n=%d: rank[%d]=%v, want %v", n, i, rank[i], want)
			}
		}
	}
}

func TestRootTreeMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 10, 200} {
		// random tree: vertex i attaches to a random earlier vertex
		edges := make([]TreeEdge, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, TreeEdge{U: int32(rng.Intn(i)), V: int32(i)})
		}
		s := int32(rng.Intn(n))
		parent, depth := RootTree(n, edges, s)
		// BFS reference
		adj := make([][]int32, n)
		for _, e := range edges {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
		wantDepth := make([]int32, n)
		wantParent := make([]int32, n)
		for i := range wantDepth {
			wantDepth[i] = -1
			wantParent[i] = -1
		}
		wantDepth[s] = 0
		queue := []int32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if wantDepth[w] < 0 && w != s {
					wantDepth[w] = wantDepth[v] + 1
					wantParent[w] = v
					queue = append(queue, w)
				}
			}
		}
		if !reflect.DeepEqual(depth, wantDepth) {
			t.Fatalf("n=%d s=%d: depth mismatch\n got %v\nwant %v", n, s, depth, wantDepth)
		}
		if !reflect.DeepEqual(parent, wantParent) {
			t.Fatalf("n=%d s=%d: parent mismatch\n got %v\nwant %v", n, s, parent, wantParent)
		}
	}
}

func TestEulerTourIsCircuit(t *testing.T) {
	edges := []TreeEdge{{0, 1}, {1, 2}, {1, 3}, {3, 4}}
	et := NewEulerTour(5, edges)
	// Following Next from any arc must visit all 2m arcs and return.
	start := int32(0)
	seen := make(map[int32]bool)
	a := start
	for i := 0; i < 2*len(edges); i++ {
		if seen[a] {
			t.Fatalf("arc %d revisited before circuit complete", a)
		}
		seen[a] = true
		// consecutive arcs must share a vertex: head(a) == tail(next(a))
		if arcHead(et.Edges, a) != arcTail(et.Edges, et.Next[a]) {
			t.Fatalf("tour discontinuity at arc %d", a)
		}
		a = et.Next[a]
	}
	if a != start {
		t.Fatalf("tour did not return to start")
	}
}

func TestGroupBy(t *testing.T) {
	items := []int{5, 3, 8, 3, 5, 5}
	groups := GroupBy(items, func(x int) int { return x % 5 })
	if len(groups[0]) != 3 || len(groups[3]) != 3 {
		t.Fatalf("unexpected group sizes: %v", groups)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(items) {
		t.Fatalf("groups cover %d items, want %d", total, len(items))
	}
}

package parallel

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMapBasic(t *testing.T) {
	m := NewMap(10)
	if _, ok := m.Get(5); ok {
		t.Fatal("empty map claims to contain a key")
	}
	m.Put(5, 50)
	m.Put(-7, 70)
	m.Put(5, 51) // overwrite
	if v, ok := m.Get(5); !ok || v != 51 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if v, ok := m.Get(-7); !ok || v != 70 {
		t.Fatalf("Get(-7) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", m.Len())
	}
}

func TestMapAgainstBuiltin(t *testing.T) {
	f := func(keys []int64, vals []int64) bool {
		m := NewMap(len(keys) + 1)
		ref := map[int64]int64{}
		for i, k := range keys {
			if k == emptyKey {
				continue
			}
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			m.Put(k, v)
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapConcurrentPuts(t *testing.T) {
	const n = 20000
	m := NewMap(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				m.Put(int64(i), int64(2*i))
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != n {
		t.Fatalf("Len() = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(int64(i)); !ok || v != int64(2*i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestMapConcurrentDuplicateKeys(t *testing.T) {
	m := NewMap(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Put(int64(i%16), int64(w))
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 16 {
		t.Fatalf("Len() = %d, want 16", m.Len())
	}
	for i := 0; i < 16; i++ {
		if v, ok := m.Get(int64(i)); !ok || v < 0 || v >= 8 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestSemisortGroups(t *testing.T) {
	for _, n := range []int{0, 1, 100, 50000} {
		items := make([]int64, n)
		for i := range items {
			items[i] = int64(i % 37)
		}
		groups := Semisort(items, func(x int64) int64 { return x })
		distinct := 37
		if n == 0 {
			distinct = 0
		} else if n < 37 {
			distinct = n
		}
		if len(groups) != distinct {
			t.Fatalf("n=%d: %d groups, want %d", n, len(groups), distinct)
		}
		total := 0
		for _, g := range groups {
			total += len(g)
			for _, v := range g[1:] {
				if v != g[0] {
					t.Fatal("group mixes keys")
				}
			}
		}
		if total != n {
			t.Fatalf("groups cover %d of %d items", total, n)
		}
	}
}

func TestSemisortQuick(t *testing.T) {
	f := func(keys []int16) bool {
		items := make([]int64, len(keys))
		counts := map[int64]int{}
		for i, k := range keys {
			items[i] = int64(k)
			counts[int64(k)]++
		}
		groups := Semisort(items, func(x int64) int64 { return x })
		if len(groups) != len(counts) {
			return false
		}
		for _, g := range groups {
			if len(g) != counts[g[0]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package parallel

// Persistent work-stealing fork-join scheduler.
//
// Instead of spawning fresh goroutines on every fork (the seed
// implementation), all parallelism in this package runs on a process-wide
// pool of GOMAXPROCS worker goroutines, started lazily on first use. The
// design is Cilk-style "work-first" fork-join, adapted to Go's lack of
// goroutine-local storage:
//
//   - Spawn publishes a stealable task handle and returns immediately; the
//     spawning goroutine keeps executing its own code. Sync then claims the
//     group's still-unstolen tasks newest-first (LIFO) and runs them inline
//     on the current goroutine, so small subproblems never migrate: they are
//     executed exactly where a sequential program would execute them, in
//     depth-first order. This frame-local LIFO is the "local end of the
//     deque" of a classic work-stealing scheduler.
//   - Each worker owns one steal queue (a mutex-protected FIFO ring).
//     Publishes are distributed round-robin across the queues; idle workers
//     drain their own queue first and then scan the others, always stealing
//     the oldest task (FIFO), which is the largest-granularity work — the
//     top end of the deque.
//   - A goroutine that reaches Sync with stolen tasks still running does not
//     block idle: it leapfrogs, stealing and running unrelated pending tasks
//     until its own group drains, then parks on a per-group channel.
//
// Claiming is a single compare-and-swap on the task state, so every task
// runs exactly once no matter how many queue entries or claimants race for
// it. Deadlock freedom follows from the fork-join structure: a Sync only
// waits on tasks that some other goroutine is actively executing, and the
// executor of the deepest in-flight task always finds its own spawns
// unclaimed and finishes them inline.
//
// Panics inside spawned tasks are captured and re-raised (first one wins,
// original panic value preserved) on the goroutine that calls Sync, after
// all of the group's tasks have completed, so a panicking parallel phase
// unwinds exactly like a panicking sequential loop would.
//
// Determinism: the scheduler never makes results depend on the interleaving
// — all primitives built on it either write disjoint locations or combine
// per-chunk results with deterministic, order-independent tie-breaking — so
// every algorithm in this library returns identical output for any
// GOMAXPROCS value and any steal schedule.

import (
	"sync"
	"sync/atomic"
)

// task states. A task moves taskPending -> taskTaken exactly once; the CAS
// winner runs it. Queue entries holding a taken task are discarded by
// thieves.
const (
	taskPending int32 = iota
	taskTaken
)

type task struct {
	fn    func()
	g     *Group
	state atomic.Int32
}

// groupInline is the number of task slots stored inside the Group itself;
// two covers Do and three-way DoN forks without any per-spawn allocation.
const groupInline = 2

// A Group is a fork-join scope: Spawn hands tasks to the scheduler, Run
// executes a task inline as part of the group, and Sync waits for all of
// them, re-raising the first panic any of them raised. The zero value is
// ready to use. A Group must not be copied, and Spawn/Run/Sync must all be
// called from the same goroutine; after Sync returns the Group may be
// reused for another round.
type Group struct {
	inline [groupInline]task
	extra  []*task
	ntasks int

	pending atomic.Int32 // published tasks not yet finished
	waiting atomic.Bool  // owner is parked in Sync
	wake    chan struct{}

	pan atomic.Pointer[panicValue]
}

type panicValue struct {
	val any
}

// groupPool recycles Groups for the package's own fork-join entry points
// (Do, DoN, ForRange), amortizing the Group and wake-channel allocations.
// Recycling is safe even though stale queue entries may still reference a
// recycled group's inline task slots: a slot's state only returns to
// taskPending (with its new fn already written) at the next Spawn, and the
// claim CAS guarantees each published task runs exactly once regardless of
// how many queue entries point at it.
var groupPool = sync.Pool{New: func() any { return new(Group) }}

// newGroup returns a pooled Group ready for a fresh round of spawns.
func newGroup() *Group { return groupPool.Get().(*Group) }

// release returns a synced Group to the pool. Callers must not release a
// Group whose Sync panicked (just drop it) or one they might still use.
func (g *Group) release() { groupPool.Put(g) }

// Spawn schedules fn to run as part of the group. With a single worker it
// runs fn inline immediately (capturing panics for Sync, like the parallel
// path); otherwise fn becomes stealable by idle workers and is otherwise
// run inline by Sync.
func (g *Group) Spawn(fn func()) {
	if Workers() == 1 {
		g.Run(fn)
		return
	}
	var t *task
	if g.ntasks < groupInline {
		t = &g.inline[g.ntasks]
		t.fn, t.g = fn, g
		t.state.Store(taskPending)
	} else {
		t = &task{fn: fn, g: g}
		g.extra = append(g.extra, t)
	}
	g.ntasks++
	if g.wake == nil {
		// Allocated before the first publish, so thieves (ordered after the
		// publish by the queue lock and the claim CAS) always observe it.
		g.wake = make(chan struct{}, 1)
	}
	g.pending.Add(1)
	getPool().publish(t)
}

// Run executes fn inline as part of the group, capturing a panic instead of
// propagating it so that Sync still waits for the group's spawned tasks
// before unwinding. The panic re-surfaces at Sync.
func (g *Group) Run(fn func()) {
	defer g.recoverInto()
	fn()
}

// Sync runs the group's unstolen tasks inline (newest first), waits for the
// stolen ones — stealing unrelated work while it waits — and then re-raises
// the first captured panic, if any. It resets the group for reuse.
func (g *Group) Sync() {
	for i := g.ntasks - 1; i >= 0; i-- {
		var t *task
		if i < groupInline {
			t = &g.inline[i]
		} else {
			t = g.extra[i-groupInline]
		}
		if t.state.CompareAndSwap(taskPending, taskTaken) {
			t.run()
		}
	}
	if g.pending.Load() > 0 {
		p := getPool()
		for g.pending.Load() > 0 {
			if t := p.steal(-1); t != nil {
				t.run()
				continue
			}
			g.park()
		}
	}
	g.ntasks = 0
	for i := range g.extra {
		g.extra[i] = nil
	}
	g.extra = g.extra[:0]
	if pv := g.pan.Swap(nil); pv != nil {
		panic(pv.val)
	}
}

// recoverInto records the first panic of the group.
func (g *Group) recoverInto() {
	if r := recover(); r != nil {
		g.pan.CompareAndSwap(nil, &panicValue{val: r})
	}
}

// run executes a claimed task and signals its group. The claimant owns the
// slot after winning the CAS, so it clears fn and g up front: stale queue
// entries (and pooled Groups awaiting reuse) then hold no references to the
// closure or anything it captured.
func (t *task) run() {
	g, fn := t.g, t.fn
	t.fn, t.g = nil, nil
	defer g.finish()
	defer g.recoverInto()
	fn()
}

// finish marks one task done and wakes the group's parked owner, if any.
func (g *Group) finish() {
	if g.pending.Add(-1) == 0 && g.waiting.Load() {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
}

// park blocks the owner until the pending count may have reached zero.
// Spurious wakeups are fine: Sync re-checks pending in its loop.
func (g *Group) park() {
	g.waiting.Store(true)
	if g.pending.Load() > 0 {
		<-g.wake
	}
	g.waiting.Store(false)
}

// ---------------------------------------------------------------- the pool

// queue is one worker's steal queue: a mutex-protected FIFO of task
// handles. Thieves pop from the head (the oldest, coarsest-granularity
// spawn). Entries whose task lost its claim race are dropped on pop.
type queue struct {
	mu   sync.Mutex
	head int
	q    []*task
}

func (s *queue) push(t *task) {
	s.mu.Lock()
	s.q = append(s.q, t)
	s.mu.Unlock()
}

// pop removes and returns the oldest still-pending task, or nil.
// It also drops already-taken entries and compacts the ring.
func (s *queue) pop() (*task, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for s.head < len(s.q) {
		t := s.q[s.head]
		s.q[s.head] = nil
		s.head++
		if s.head == len(s.q) {
			s.q = s.q[:0]
			s.head = 0
		} else if s.head > 64 && s.head > len(s.q)/2 {
			n := copy(s.q, s.q[s.head:])
			for i := n; i < len(s.q); i++ {
				s.q[i] = nil
			}
			s.q = s.q[:n]
			s.head = 0
		}
		removed++
		if t.state.CompareAndSwap(taskPending, taskTaken) {
			return t, removed
		}
	}
	return nil, removed
}

// pool is the process-wide scheduler state.
type pool struct {
	mu       sync.Mutex // guards workers/queues growth and cond
	cond     *sync.Cond
	sleepers atomic.Int32
	items    atomic.Int64             // queued entries across all queues
	queues   atomic.Pointer[[]*queue] // grown copy-on-write
	nworkers int                      // spawned worker goroutines
	rr       atomic.Uint32            // round-robin publish/steal cursor
}

var (
	poolOnce sync.Once
	thePool  *pool
)

func getPool() *pool {
	poolOnce.Do(func() {
		thePool = &pool{}
		thePool.cond = sync.NewCond(&thePool.mu)
	})
	return thePool
}

// ensure grows the pool to at least target workers (and steal queues).
// Workers are never torn down when GOMAXPROCS shrinks; the entry-point
// sequential cutoffs simply stop feeding them, and they park.
func (p *pool) ensure(target int) {
	if len(*p.loadQueues()) >= target {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := *p.queues.Load()
	if len(cur) >= target {
		return
	}
	grown := make([]*queue, target)
	copy(grown, cur)
	for i := len(cur); i < target; i++ {
		grown[i] = &queue{}
	}
	p.queues.Store(&grown)
	for ; p.nworkers < target; p.nworkers++ {
		go p.worker(p.nworkers)
	}
}

func (p *pool) loadQueues() *[]*queue {
	qs := p.queues.Load()
	if qs == nil {
		empty := []*queue{}
		p.mu.Lock()
		if p.queues.Load() == nil {
			p.queues.Store(&empty)
		}
		p.mu.Unlock()
		qs = p.queues.Load()
	}
	return qs
}

// publish makes t stealable and wakes a parked worker.
func (p *pool) publish(t *task) {
	p.ensure(Workers())
	qs := *p.queues.Load()
	i := int(p.rr.Add(1) % uint32(len(qs))) // mod in uint32: safe on 32-bit ints
	qs[i].push(t)
	p.items.Add(1)
	if p.sleepers.Load() > 0 {
		p.mu.Lock()
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// steal scans all queues for a pending task, preferring queue pref (a
// worker's own queue; pass -1 for no preference). FIFO within each queue.
func (p *pool) steal(pref int) *task {
	qsp := p.queues.Load()
	if qsp == nil {
		return nil
	}
	qs := *qsp
	n := len(qs)
	if n == 0 {
		return nil
	}
	start := pref
	if start < 0 || start >= n {
		start = int(p.rr.Add(1) % uint32(n))
	}
	for k := 0; k < n; k++ {
		t, removed := qs[(start+k)%n].pop()
		if removed > 0 {
			p.items.Add(int64(-removed))
		}
		if t != nil {
			return t
		}
	}
	return nil
}

// worker is the run loop of one pool goroutine.
func (p *pool) worker(id int) {
	for {
		if t := p.steal(id); t != nil {
			t.run()
			continue
		}
		p.mu.Lock()
		p.sleepers.Add(1)
		for p.items.Load() == 0 {
			p.cond.Wait()
		}
		p.sleepers.Add(-1)
		p.mu.Unlock()
	}
}

package parallel

import "sort"

// Semisort groups items by key (Section 2.2): items with equal keys become
// contiguous, with no guarantee on the order of different keys. The
// implementation follows the hash-and-scatter structure of Gu et al.:
// items are scattered into hash buckets with a two-pass counting scheme
// (parallel over chunks), then each bucket is grouped locally in parallel.
// It returns the groups as subslices of one backing array.
func Semisort[T any](items []T, key func(T) int64) [][]T {
	n := len(items)
	if n == 0 {
		return nil
	}
	if n < 4096 || Workers() == 1 {
		return semisortSeq(items, key)
	}
	// Bucket count ~ n/64, a power of two.
	nb := 1
	for nb < n/64 {
		nb *= 2
	}
	mask := uint64(nb - 1)
	bucketOf := func(it T) int {
		return int(hash64(uint64(key(it))) & mask)
	}
	// Two-pass scatter over fixed chunks.
	p := Workers()
	chunk := (n + 8*p - 1) / (8 * p)
	nchunks := (n + chunk - 1) / chunk
	counts := make([]int, nchunks*nb)
	ForRange(n, chunk, func(lo, hi int) {
		c := lo / chunk
		row := counts[c*nb : (c+1)*nb]
		for i := lo; i < hi; i++ {
			row[bucketOf(items[i])]++
		}
	})
	// Column-major prefix sum so each bucket's chunks are contiguous.
	offsets := make([]int, nchunks*nb)
	total := 0
	bucketStart := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		bucketStart[b] = total
		for c := 0; c < nchunks; c++ {
			offsets[c*nb+b] = total
			total += counts[c*nb+b]
		}
	}
	bucketStart[nb] = total
	out := make([]T, n)
	ForRange(n, chunk, func(lo, hi int) {
		c := lo / chunk
		row := offsets[c*nb : (c+1)*nb]
		for i := lo; i < hi; i++ {
			b := bucketOf(items[i])
			out[row[b]] = items[i]
			row[b]++
		}
	})
	// Group within each bucket in parallel.
	groupsPer := make([][][]T, nb)
	For(nb, 1, func(b int) {
		seg := out[bucketStart[b]:bucketStart[b+1]]
		if len(seg) == 0 {
			return
		}
		sort.Slice(seg, func(i, j int) bool { return key(seg[i]) < key(seg[j]) })
		var gs [][]T
		start := 0
		for i := 1; i <= len(seg); i++ {
			if i == len(seg) || key(seg[i]) != key(seg[start]) {
				gs = append(gs, seg[start:i])
				start = i
			}
		}
		groupsPer[b] = gs
	})
	var groups [][]T
	for _, gs := range groupsPer {
		groups = append(groups, gs...)
	}
	return groups
}

func semisortSeq[T any](items []T, key func(T) int64) [][]T {
	byKey := make(map[int64][]T)
	var order []int64
	for _, it := range items {
		k := key(it)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], it)
	}
	groups := make([][]T, 0, len(order))
	for _, k := range order {
		groups = append(groups, byKey[k])
	}
	return groups
}

package parallel

import (
	"slices"
	"sort"
)

// Sort sorts a in place with a parallel merge sort using less as the strict
// weak ordering. It falls back to the standard library generic sort (no
// reflection, monomorphized comparator) for small inputs or single-worker
// runs. The sort is not stable.
func Sort[T any](a []T, less func(x, y T) bool) {
	n := len(a)
	if Workers() == 1 || n < 1<<13 {
		seqSort(a, less)
		return
	}
	buf := make([]T, n)
	mergeSort(a, buf, less, 0)
}

// seqSort is the sequential leaf sort shared by Sort and mergeSort.
func seqSort[T any](a []T, less func(x, y T) bool) {
	slices.SortFunc(a, func(x, y T) int {
		if less(x, y) {
			return -1
		}
		if less(y, x) {
			return 1
		}
		return 0
	})
}

const sortGrain = 1 << 12

// mergeSort sorts a using buf as scratch. depth caps goroutine spawning.
func mergeSort[T any](a, buf []T, less func(x, y T) bool, depth int) {
	if len(a) <= sortGrain || depth > 10 {
		seqSort(a, less)
		return
	}
	mid := len(a) / 2
	Do(
		func() { mergeSort(a[:mid], buf[:mid], less, depth+1) },
		func() { mergeSort(a[mid:], buf[mid:], less, depth+1) },
	)
	parMerge(a[:mid], a[mid:], buf, less, depth)
	copy(a, buf)
}

// parMerge merges sorted x and y into out (len(out) == len(x)+len(y)),
// splitting recursively by the median of the larger input.
func parMerge[T any](x, y, out []T, less func(x, y T) bool, depth int) {
	if len(x)+len(y) <= 2*sortGrain || depth > 10 {
		seqMerge(x, y, out, less)
		return
	}
	if len(x) < len(y) {
		x, y = y, x
	}
	mx := len(x) / 2
	pivot := x[mx]
	my := sort.Search(len(y), func(i int) bool { return !less(y[i], pivot) })
	Do(
		func() { parMerge(x[:mx], y[:my], out[:mx+my], less, depth+1) },
		func() { parMerge(x[mx:], y[my:], out[mx+my:], less, depth+1) },
	)
}

func seqMerge[T any](x, y, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if less(y[j], x[i]) {
			out[k] = y[j]
			j++
		} else {
			out[k] = x[i]
			i++
		}
		k++
	}
	for i < len(x) {
		out[k] = x[i]
		i++
		k++
	}
	for j < len(y) {
		out[k] = y[j]
		j++
		k++
	}
}

// NthElement partially sorts a so that the element with rank k (0-based)
// under less is at index k, smaller elements before it and larger after it
// (quickselect). It is used for the heavy/light edge split of Section 4.
func NthElement[T any](a []T, k int, less func(x, y T) bool) {
	lo, hi := 0, len(a)
	for hi-lo > 32 {
		// Median-of-three pivot on a deterministic probe.
		m := lo + (hi-lo)/2
		p1, p2, p3 := a[lo], a[m], a[hi-1]
		pivot := medianOf3(p1, p2, p3, less)
		i, j := lo, hi-1
		for i <= j {
			for less(a[i], pivot) {
				i++
			}
			for less(pivot, a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
	sub := a[lo:hi]
	sort.Slice(sub, func(i, j int) bool { return less(sub[i], sub[j]) })
}

func medianOf3[T any](a, b, c T, less func(x, y T) bool) T {
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			b = a
		}
	}
	return b
}

package parallel

import (
	"sync/atomic"
	"testing"
)

// treeSum recursively sums [lo, hi) with fork-join at every level above the
// cutoff, the shape of every recursive algorithm in this library (k-d tree
// build, WSPD traversal, MemoGFK, dendrogram divide-and-conquer).
func treeSum(lo, hi, cutoff int) int64 {
	if hi-lo <= cutoff {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}
	mid := (lo + hi) / 2
	var a, b int64
	Do(
		func() { a = treeSum(lo, mid, cutoff) },
		func() { b = treeSum(mid, hi, cutoff) },
	)
	return a + b
}

// BenchmarkDoNestedTree measures nested fork-join with fine granularity:
// ~4096 forks per op, each leaf doing 256 additions. This is the workload
// the spawn-per-call implementation paid goroutine-creation costs on.
func BenchmarkDoNestedTree(b *testing.B) {
	const n = 1 << 20
	want := int64(n) * (n - 1) / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := treeSum(0, n, 256); got != want {
			b.Fatalf("sum = %d, want %d", got, want)
		}
	}
}

// BenchmarkDoNestedTreeCoarse uses a coarse cutoff (few forks, big leaves),
// where scheduling overhead should be negligible for any implementation.
func BenchmarkDoNestedTreeCoarse(b *testing.B) {
	const n = 1 << 20
	want := int64(n) * (n - 1) / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := treeSum(0, n, 1<<16); got != want {
			b.Fatalf("sum = %d, want %d", got, want)
		}
	}
}

// BenchmarkDoFlat measures the cost of a single two-way fork-join.
func BenchmarkDoFlat(b *testing.B) {
	b.ReportAllocs()
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		Do(
			func() { sink.Add(1) },
			func() { sink.Add(1) },
		)
	}
}

// BenchmarkForRangeFine measures a parallel for with many small chunks.
func BenchmarkForRangeFine(b *testing.B) {
	const n = 1 << 18
	out := make([]int64, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForRange(n, 64, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				out[j] = int64(j)
			}
		})
	}
}

// BenchmarkNestedForInDo exercises a parallel for nested inside a fork, the
// pattern of Borůvka rounds inside MemoGFK's outer loop.
func BenchmarkNestedForInDo(b *testing.B) {
	const n = 1 << 16
	out := make([]int64, 2*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Do(
			func() {
				ForRange(n, 128, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						out[j] = int64(j)
					}
				})
			},
			func() {
				ForRange(n, 128, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						out[n+j] = int64(j)
					}
				})
			},
		)
	}
}

// Package engine is the staged pipeline behind the public parclust.Index:
// it decomposes the clustering call chain into explicit stages —
//
//	tree ──> coreDist(minPts) ──> mst(kind, algo, minPts) ──> dendrogram+cut
//
// — memoizes every stage output keyed on its parameters, and shares the
// expensive upstream stages across queries. A parameter change recomputes
// only its own stage and the stages downstream of it: a new minPts reuses
// the tree and recomputes core distances + MST; a new MST algorithm reuses
// the tree and core distances; an eps change touches nothing but the
// precomputed cut structure.
//
// # Concurrency
//
// Stage outputs are immutable once published and may be read from any
// goroutine. Stage computation is serialized by a per-engine build mutex,
// because MST runs mutate the shared tree's transient annotations (the
// per-minPts CDMin/CDMax core-distance bounds and the per-round union-find
// component labels); publication happens under a registry RW-mutex, so a
// memoized result is read lock-free of the build path. Pure read queries
// (k-NN, range, DBSCAN component formation, OPTICS) traverse only the
// tree's immutable structure — nodes' boxes, the kd-ordered rows, and the
// Orig/Inv permutations — and therefore run concurrently with each other
// and with an in-flight MST computation (which writes only the disjoint
// annotation fields). Per-round MST buffers come from a process-wide
// sync.Pool of mst.Workspace, never from engine state, so a run leaves no
// mutable scratch behind on the engine.
//
// # Cancellation and failure
//
// Every stage entry takes a context. Concurrent requests for one unbuilt
// stage coalesce into a single flight whose leader runs the build; the
// flight counts its interested waiters, and each waiter whose context ends
// abandons the flight individually. Only when the last waiter abandons is
// the build's abort flag set — the leader's build then unwinds at its next
// cooperative checkpoint (kd-tree node, Borůvka round, WSPD traversal) via
// a panic-sentinel recovered at the flight boundary, publishing nothing.
// The contract on failure paths:
//
//   - An aborted or panicking build never poisons the memo: no partial
//     stage is published, and the next request starts a clean flight.
//   - All parked followers are woken with the flight's error — ErrAborted,
//     ErrOverloaded, or a *BuildPanicError carrying the stage name. A
//     follower that is still live after ErrAborted retries as the new
//     leader rather than failing the caller.
//   - A caller's own context expiry is reported as that context's error
//     (context.Canceled / DeadlineExceeded), never as ErrAborted.
//   - An optional BuildGate bounds cold builds: it is consulted once per
//     flight, by the leader only, so memoized reads and coalesced
//     followers never consume build capacity.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"parclust/internal/abort"
	"parclust/internal/delaunay"
	"parclust/internal/dendrogram"
	"parclust/internal/faultinject"
	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/mst"
	"parclust/internal/wspd"
)

// ErrAborted is returned by a stage entry whose build was cooperatively
// cancelled: every request interested in the flight abandoned it (each on
// its own context), so the leader unwound at the next checkpoint and
// published nothing. A caller whose own context is still live never sees
// ErrAborted — it retries the flight as the new leader.
var ErrAborted = errors.New("engine: stage build aborted")

// ErrOverloaded is returned by a stage entry that needed a cold build while
// the engine's BuildGate was saturated. Nothing was built or published;
// warm (memoized) reads never consult the gate.
var ErrOverloaded = errors.New("engine: cold build rejected, build capacity saturated")

// BuildPanicError wraps a panic that escaped a stage build. The panic is
// recovered at the flight boundary so every parked follower is woken with
// this error and the memo map stays unpoisoned; the next identical query
// starts a fresh build.
type BuildPanicError struct {
	Stage string // "tree", "core", "mst", or "hier"
	Value any    // the recovered panic value
}

func (e *BuildPanicError) Error() string {
	return fmt.Sprintf("engine: %s stage build panicked: %v", e.Stage, e.Value)
}

// BuildGate admits one cold stage build: it returns (release, true) to
// admit — release must be called when the build finishes — or (nil, false)
// to reject, surfacing as ErrOverloaded. The gate is consulted only by
// singleflight leaders, so coalesced followers of an admitted build never
// consume extra capacity.
type BuildGate func() (release func(), ok bool)

// EMSTAlgo selects the EMST variant; values mirror the public
// parclust.EMSTAlgorithm constants.
type EMSTAlgo uint8

const (
	EMSTMemoGFK EMSTAlgo = iota
	EMSTGFK
	EMSTNaive
	EMSTBoruvka
	EMSTDelaunay2D
	EMSTWSPDBoruvka
)

// Kind distinguishes the two MST stage families: plain metric MSTs (EMST)
// and mutual-reachability MSTs (HDBSCAN*).
type Kind uint8

const (
	KindEMST Kind = iota
	KindHDBSCAN
)

// mstKey identifies one memoized MST stage output. For KindEMST, Algo is an
// EMSTAlgo and MinPts is 0; for KindHDBSCAN, Algo is an hdbscan.Algorithm.
type mstKey struct {
	Kind   Kind
	Algo   uint8
	MinPts int
}

// HierStage is a memoized hierarchy stage output: the MST, the ordered
// dendrogram built from it, and the lazily-built cut structure. All fields
// are immutable after publication; CoreDist is nil for single-linkage
// hierarchies.
type HierStage struct {
	N        int
	MST      []mst.Edge
	CoreDist []float64
	MinPts   int
	Dendro   *dendrogram.Dendrogram

	cutOnce sync.Once
	cutter  *dendrogram.Cutter

	// Cut-result cache: flat cuts keyed on eps, bounded to maxCutResults
	// entries per stage with FIFO eviction. The cache belongs to the stage,
	// so stage identity doubles as the version key — anything that produced
	// a new HierStage (a different minPts, algorithm, or pipeline) starts
	// from an empty cache, and the downstream invalidation of the stage DAG
	// carries over to cut results for free. eng is the owning engine (nil
	// for stages constructed outside one, e.g. in tests), which carries the
	// hit/build counters and the resident-bytes account.
	cutMu    sync.Mutex
	cutOrder []float64
	cuts     map[float64]dendrogram.Clustering
	eng      *Engine
}

// maxCutResults bounds the cut-result cache per hierarchy stage. A cached
// cut retains ~4·n bytes of labels; 16 entries cover a generous eps ladder
// while keeping the worst-case retained memory at 64·n bytes per stage.
const maxCutResults = 16

// Cutter returns the stage's precomputed cut structure, building it on
// first use (safe for concurrent callers).
func (h *HierStage) Cutter() *dendrogram.Cutter {
	h.cutOnce.Do(func() {
		h.cutter = dendrogram.NewCutter(h.N, h.MST, h.CoreDist)
	})
	return h.cutter
}

// CutAt returns the flat clustering at radius eps, serving repeated radii
// from the stage's cut-result cache: a hit is an O(1) map lookup returning
// the shared labels slice (callers must treat it as read-only), a miss runs
// the near-O(n) cut off the precomputed merge order and caches the result.
// NaN radii are computed but never cached (NaN map keys are unretrievable).
func (h *HierStage) CutAt(eps float64) dendrogram.Clustering {
	if !math.IsNaN(eps) {
		h.cutMu.Lock()
		if res, ok := h.cuts[eps]; ok {
			h.cutMu.Unlock()
			if h.eng != nil {
				h.eng.c.cutHits.Add(1)
			}
			return res
		}
		h.cutMu.Unlock()
	}
	res := h.Cutter().CutAt(eps)
	if h.eng != nil {
		h.eng.c.cutBuilds.Add(1)
	}
	if math.IsNaN(eps) {
		return res
	}
	h.cutMu.Lock()
	if _, ok := h.cuts[eps]; !ok {
		if h.cuts == nil {
			h.cuts = make(map[float64]dendrogram.Clustering, maxCutResults)
		}
		if len(h.cutOrder) >= maxCutResults {
			oldest := h.cutOrder[0]
			h.cutOrder = h.cutOrder[1:]
			if victim, ok := h.cuts[oldest]; ok {
				delete(h.cuts, oldest)
				if h.eng != nil {
					h.eng.cutBytes.Add(-cutResultBytes(victim))
				}
			}
		}
		h.cuts[eps] = res
		h.cutOrder = append(h.cutOrder, eps)
		if h.eng != nil {
			h.eng.cutBytes.Add(cutResultBytes(res))
		}
	}
	h.cutMu.Unlock()
	return res
}

// cutResultBytes is the resident size charged for one cached cut: the
// labels slice plus map/slice bookkeeping.
func cutResultBytes(c dendrogram.Clustering) int64 {
	return int64(4*len(c.Labels)) + 64
}

// CutCacheBytes returns the resident bytes currently retained by the
// engine's cut-result caches across all hierarchy stages.
func (e *Engine) CutCacheBytes() int64 { return e.cutBytes.Load() }

// wsPool shares MST round workspaces across engines and runs: a run checks
// one out for its duration (runs are serialized per engine by buildMu, and
// workspaces never alias returned results), so engines hold no per-instance
// mutable scratch.
var wsPool = sync.Pool{New: func() any { return mst.NewWorkspace() }}

// Engine memoizes the staged clustering pipeline over one immutable
// prepared point set. Use New, then query stages; all methods are safe for
// concurrent use.
type Engine struct {
	// Pts is the prepared base point set (validated, and unit-normalized
	// for the angular kernel). Its rows are never written in place, but
	// compaction (see dynamic.go) replaces the whole struct under
	// buildMu+regMu — read it under regMu.RLock (or buildMu), or through
	// SnapshotView for a stage-coherent copy.
	Pts geometry.Points
	// Kern is the distance kernel every stage runs under.
	Kern metric.Metric

	// buildMu serializes stage computation: MST runs annotate the shared
	// tree (core-distance bounds, per-round component labels), so at most
	// one computation may be in flight. Reads of published stages never
	// take it.
	buildMu sync.Mutex
	// regMu guards the memo registry below. Write-locked only to publish a
	// finished stage; read-locked on every lookup.
	regMu sync.RWMutex
	// sfMu guards inflight, the singleflight table of stage computations
	// currently executing: concurrent requests for the same unbuilt stage
	// park on the leader's completion instead of queueing on buildMu, and
	// are counted as "coalesced" rather than builds or hits.
	sfMu     sync.Mutex
	inflight map[sfKey]*flight

	tree  *kdtree.Tree
	cores map[int][]float64 // minPts -> core distances, original-id order
	msts  map[mstKey][]mst.Edge
	hiers map[mstKey]*HierStage

	// dyn is the dynamic-layer state (overlay inserts, tombstoned deletes,
	// external-id map); nil until the first mutation. Published under regMu
	// like the stage maps; replaced wholesale, never written in place. See
	// dynamic.go.
	dyn *dynState

	// epoch counts mutations; bumped at the start of every Insert/Delete,
	// before the mutation is applied (see MutationEpoch).
	epoch atomic.Uint64

	// annotated is the minPts the tree's CDMin/CDMax annotations currently
	// reflect (0: none). Guarded by buildMu.
	annotated int

	// f32 selects the float32 SoA fast path for every tree the engine
	// builds (or seeds). Set once via EnableFloat32 before the engine is
	// shared; read-only afterwards.
	f32 bool

	// cutBytes is the resident size of all stages' cut-result caches.
	cutBytes atomic.Int64

	// gate, when set, admits cold stage builds (see BuildGate).
	gate atomic.Value // of BuildGate

	c counters
}

// SetBuildGate installs the engine's cold-build admission gate. Safe to
// call concurrently with queries; a nil-func store is rejected.
func (e *Engine) SetBuildGate(g BuildGate) {
	if g != nil {
		e.gate.Store(g)
	}
}

func (e *Engine) buildGate() BuildGate {
	if g, ok := e.gate.Load().(BuildGate); ok {
		return g
	}
	return nil
}

// New returns an engine over the prepared points. The caller has already
// validated pts and normalized it for the kernel; the engine takes
// ownership in the sense that pts must not be mutated afterwards.
func New(pts geometry.Points, kern metric.Metric) *Engine {
	return &Engine{
		Pts:      pts,
		Kern:     kern,
		inflight: make(map[sfKey]*flight),
		cores:    make(map[int][]float64),
		msts:     make(map[mstKey][]mst.Edge),
		hiers:    make(map[mstKey]*HierStage),
	}
}

// EnableFloat32 opts the engine into the float32 SoA representation:
// every tree it builds from now on carries the lane-scan fast path, and an
// already-built (or seeded) tree is converted in place. Call before the
// engine is shared with queries — the flag itself is not synchronized for
// mid-flight toggling. Fails (leaving the engine on the float64 path) if
// the kernel has no float32 family or a coordinate exceeds the float32
// magnitude bound.
func (e *Engine) EnableFloat32() error {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	e.regMu.RLock()
	t := e.tree
	e.regMu.RUnlock()
	if t != nil {
		if err := t.EnableFloat32(); err != nil {
			return err
		}
	} else if _, ok := metric.Kernel32For(e.Kern); !ok {
		return fmt.Errorf("engine: metric %q has no float32 kernel", e.Kern.Name())
	} else if err := metric.ValidateRows32(e.Pts); err != nil {
		return err
	}
	e.f32 = true
	return nil
}

// Float32 reports whether the engine runs on the float32 fast path.
func (e *Engine) Float32() bool { return e.f32 }

// Stage families of the singleflight table.
const (
	sfTree uint8 = iota
	sfCore
	sfMST
	sfHier
)

// sfKey identifies one coalescable stage computation: requests with equal
// keys need the same stage output, so only the first should run it.
type sfKey struct {
	stage  uint8
	kind   Kind
	algo   uint8
	minPts int
}

// flight is one in-flight stage computation. done is closed (after err is
// set) once the leader has published the stage output or failed; waiters
// counts the requests still interested in the result — the leader's own
// share plus every parked follower. A request that abandons the flight on
// its own context decrements waiters, and whoever drops the count to zero
// sets the abort flag: the leader unwinds at its next checkpoint, because
// nobody is left to consume the result.
type flight struct {
	done    chan struct{}
	stop    chan struct{} // closed when the leader concludes; parks the ctx watcher
	err     error         // write-once before close(done)
	waiters atomic.Int64
	abort   abort.Flag
}

// TestBuildHook, when non-nil, is invoked by a singleflight leader (with the
// stage family "tree", "core", "mst", or "hier") after it has registered its
// flight and before it starts the build. Tests use it to hold a cold build
// open until a known number of concurrent requests have parked on the
// flight; it must never be set outside tests.
var TestBuildHook func(stage string)

func sfStageName(stage uint8) string {
	switch stage {
	case sfTree:
		return "tree"
	case sfCore:
		return "core"
	case sfMST:
		return "mst"
	case sfHier:
		return "hier"
	}
	return "unknown"
}

// coalesce runs build under singleflight semantics for key: the first
// caller becomes the leader and executes build (which publishes the stage
// output to the memo registry); callers that arrive while the leader is
// still running increment coalesced and park until the leader finishes —
// or until their own ctx is done, in which case they abandon the flight.
// When every interested request is gone the flight's abort flag is set and
// the leader unwinds at its next cancellation checkpoint.
//
// On a nil return the stage output for key is published. Errors: ctx.Err()
// when this request gave up; ErrOverloaded when the BuildGate rejected the
// cold build; *BuildPanicError when the build panicked (the flight is
// cleared and every follower is woken — the memo map is never poisoned).
// ErrAborted is only ever surfaced to requests whose own ctx is done
// concurrently with the abort; a live follower that finds its flight
// aborted retries as the new leader.
func (e *Engine) coalesce(ctx context.Context, key sfKey, coalesced *atomic.Int64, build func(af *abort.Flag)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.sfMu.Lock()
		if f, ok := e.inflight[key]; ok {
			f.waiters.Add(1)
			e.sfMu.Unlock()
			coalesced.Add(1)
			select {
			case <-f.done:
				if errors.Is(f.err, ErrAborted) && ctx.Err() == nil {
					// The abort raced this follower's arrival: everyone else
					// left, but this request is still live. Try again as the
					// new leader.
					continue
				}
				return f.err
			case <-ctx.Done():
				if f.waiters.Add(-1) == 0 {
					f.abort.Set()
				}
				return ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{}), stop: make(chan struct{})}
		f.waiters.Store(1) // the leader's own share
		e.inflight[key] = f
		e.sfMu.Unlock()
		return e.lead(ctx, key, f, build)
	}
}

// lead executes one flight as its leader: it watches ctx to release the
// leader's waiter share, recovers aborts and panics into errors, and — in
// every path — clears the flight and wakes all followers.
func (e *Engine) lead(ctx context.Context, key sfKey, f *flight, build func(af *abort.Flag)) (err error) {
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				if f.waiters.Add(-1) == 0 {
					f.abort.Set()
				}
			case <-f.stop:
			}
		}()
	}
	defer func() {
		close(f.stop)
		if r := recover(); r != nil {
			if _, ok := r.(abort.Signal); ok {
				err = ErrAborted
				e.c.buildAborts.Add(1)
			} else {
				err = &BuildPanicError{Stage: sfStageName(key.stage), Value: r}
				e.c.buildPanics.Add(1)
			}
		}
		f.err = err
		e.sfMu.Lock()
		delete(e.inflight, key)
		e.sfMu.Unlock()
		close(f.done)
		if errors.Is(err, ErrAborted) && ctx.Err() != nil {
			// The leader itself abandoned too; report its own ctx error so
			// callers see a deadline/cancellation, not the internal sentinel.
			err = ctx.Err()
		}
	}()
	if gate := e.buildGate(); gate != nil {
		release, ok := gate()
		if !ok {
			return ErrOverloaded
		}
		defer release()
	}
	if hook := TestBuildHook; hook != nil {
		hook(sfStageName(key.stage))
	}
	if ferr := faultinject.Check("engine.build"); ferr != nil {
		return ferr
	}
	build(&f.abort)
	return nil
}

// N returns the number of live indexed points (the base set adjusted for
// uncompacted inserts and deletes).
func (e *Engine) N() int { return e.LiveN() }

// Tree returns the shared k-d tree, building it on first use. stats (which
// may be nil) receives the "build-tree" phase time on a miss. ctx (nil
// means background) bounds a cold build: see coalesce for the error
// contract. Memoized reads never fail.
func (e *Engine) Tree(ctx context.Context, stats *mst.Stats) (*kdtree.Tree, error) {
	e.regMu.RLock()
	t := e.tree
	e.regMu.RUnlock()
	if t != nil {
		e.c.treeHits.Add(1)
		return t, nil
	}
	err := e.coalesce(ctx, sfKey{stage: sfTree}, &e.c.treeCoalesced, func(af *abort.Flag) {
		e.buildMu.Lock()
		defer e.buildMu.Unlock()
		e.treeLocked(af, stats)
	})
	if err != nil {
		return nil, err
	}
	e.regMu.RLock()
	t = e.tree
	e.regMu.RUnlock()
	return t, nil
}

// treeLocked is the build-mutex-held stage body. The *Locked internals
// never count cache hits — hits are recorded only at the public entry
// points, so the counters mean "public queries served from a memoized
// stage output", not internal plumbing lookups.
func (e *Engine) treeLocked(af *abort.Flag, stats *mst.Stats) *kdtree.Tree {
	e.regMu.RLock()
	t := e.tree
	e.regMu.RUnlock()
	if t != nil {
		return t
	}
	stats.Time("build-tree", func() {
		// Leaf size 1 is required by the WSPD construction and serves every
		// other stage and query.
		t = kdtree.BuildMetricCancel(e.Pts, 1, e.Kern, af)
		if e.f32 {
			// EnableFloat32 validated the points and kernel up front, so
			// this can fail only on internal inconsistency.
			if err := t.EnableFloat32(); err != nil {
				panic(fmt.Sprintf("engine: float32 attach failed after validation: %v", err))
			}
		}
	})
	e.c.treeBuilds.Add(1)
	e.regMu.Lock()
	e.tree = t
	e.regMu.Unlock()
	return t
}

// CoreDist returns the core distances for minPts in original-id order,
// computing (and memoizing) them on first use. The returned slice is shared
// and must not be mutated. ctx bounds a cold build (see coalesce).
func (e *Engine) CoreDist(ctx context.Context, minPts int, stats *mst.Stats) ([]float64, error) {
	// The post-flight lookup can miss when a mutation invalidated the stage
	// between the leader's publish and this read; loop until a lookup lands
	// on a published value (each round is a fresh flight).
	for {
		e.regMu.RLock()
		cd, ok := e.cores[minPts]
		e.regMu.RUnlock()
		if ok {
			e.c.coreHits.Add(1)
			return cd, nil
		}
		err := e.coalesce(ctx, sfKey{stage: sfCore, minPts: minPts}, &e.c.coreCoalesced, func(af *abort.Flag) {
			e.buildMu.Lock()
			defer e.buildMu.Unlock()
			e.coreDistLocked(af, minPts, stats)
		})
		if err != nil {
			return nil, err
		}
		e.regMu.RLock()
		cd, ok = e.cores[minPts]
		e.regMu.RUnlock()
		if ok {
			return cd, nil
		}
	}
}

func (e *Engine) coreDistLocked(af *abort.Flag, minPts int, stats *mst.Stats) []float64 {
	e.regMu.RLock()
	cd, ok := e.cores[minPts]
	e.regMu.RUnlock()
	if ok {
		return cd
	}
	t := e.canonLocked(af, stats)
	stats.Time("core-dist", func() {
		cd = t.CoreDistancesCancel(minPts, af)
	})
	e.c.coreBuilds.Add(1)
	e.regMu.Lock()
	e.cores[minPts] = cd
	e.regMu.Unlock()
	return cd
}

// annotateLocked installs minPts's core-distance annotations on the shared
// tree if they are not already in place (buildMu held). annotated is
// cleared before the rewrite starts so an abort or panic that unwinds
// mid-annotation can never leave a stale minPts claiming half-written
// bounds — the next build under buildMu re-annotates from scratch.
func (e *Engine) annotateLocked(af *abort.Flag, minPts int, cd []float64, stats *mst.Stats) {
	if e.annotated == minPts {
		return
	}
	t := e.treeLocked(af, stats)
	e.annotated = 0
	stats.Time("core-dist", func() {
		t.AnnotateCoreDists(cd)
	})
	e.annotated = minPts
}

func (e *Engine) lookupMST(key mstKey) ([]mst.Edge, bool) {
	e.regMu.RLock()
	edges, ok := e.msts[key]
	e.regMu.RUnlock()
	return edges, ok
}

func (e *Engine) storeMST(key mstKey, edges []mst.Edge) {
	e.c.mstBuilds.Add(1)
	e.regMu.Lock()
	e.msts[key] = edges
	e.regMu.Unlock()
}

// EMST returns the memoized MST of the point set under the engine's kernel
// with the selected algorithm. Delaunay preconditions (2D, L2) are the
// caller's responsibility. An input of fewer than two points yields nil
// without building anything (the one-shot API contract). ctx bounds a cold
// build (see coalesce).
func (e *Engine) EMST(ctx context.Context, algo EMSTAlgo, stats *mst.Stats) ([]mst.Edge, error) {
	if e.LiveN() <= 1 {
		return nil, nil
	}
	key := mstKey{Kind: KindEMST, Algo: uint8(algo)}
	// Loop: a mutation can clear the memo between the leader's publish and
	// the post-flight lookup (see CoreDist).
	for {
		if edges, ok := e.lookupMST(key); ok {
			e.c.mstHits.Add(1)
			return edges, nil
		}
		err := e.coalesce(ctx, sfKey{stage: sfMST, kind: KindEMST, algo: uint8(algo)}, &e.c.mstCoalesced, func(af *abort.Flag) {
			e.buildMu.Lock()
			defer e.buildMu.Unlock()
			e.emstLocked(af, key, algo, stats)
		})
		if err != nil {
			return nil, err
		}
		if edges, ok := e.lookupMST(key); ok {
			return edges, nil
		}
		if e.LiveN() <= 1 {
			return nil, nil
		}
	}
}

func (e *Engine) emstLocked(af *abort.Flag, key mstKey, algo EMSTAlgo, stats *mst.Stats) []mst.Edge {
	if e.liveNLocked() <= 1 {
		return nil // nothing to span; matches the one-shot early return
	}
	if edges, ok := e.lookupMST(key); ok {
		return edges
	}
	var edges []mst.Edge
	if algo == EMSTDelaunay2D {
		af.Check() // the Delaunay path has no interior checkpoints
		e.compactLocked(af, stats)
		edges = delaunay.EMST(e.Pts, stats)
		e.storeMST(key, edges)
		return edges
	}
	t := e.canonLocked(af, stats)
	ws := wsPool.Get().(*mst.Workspace)
	defer wsPool.Put(ws)
	if algo == EMSTBoruvka {
		edges = mst.BoruvkaCancelWS(t, stats, ws, af)
		e.storeMST(key, edges)
		return edges
	}
	cfg := mst.Config{Tree: t, Metric: edgeMetricFor(t), Sep: separationFor(e.Kern), Stats: stats, WS: ws, Abort: af}
	switch algo {
	case EMSTMemoGFK:
		edges = mst.MemoGFK(cfg)
	case EMSTGFK:
		edges = mst.GFK(cfg)
	case EMSTNaive:
		edges = mst.Naive(cfg)
	case EMSTWSPDBoruvka:
		edges = mst.WSPDBoruvka(cfg)
	default:
		panic("engine: unknown EMST algorithm")
	}
	e.storeMST(key, edges)
	return edges
}

// HDBSCANMST returns the memoized MST of the mutual-reachability graph for
// minPts with the selected algorithm, together with the memoized core
// distances. minPts has been validated by the caller (>= 1, <= N for
// non-empty inputs). ctx bounds a cold build (see coalesce).
func (e *Engine) HDBSCANMST(ctx context.Context, minPts int, algo hdbscan.Algorithm, stats *mst.Stats) ([]mst.Edge, []float64, error) {
	key := mstKey{Kind: KindHDBSCAN, Algo: uint8(algo), MinPts: minPts}
	if edges, ok := e.lookupMST(key); ok {
		e.regMu.RLock()
		cd := e.cores[minPts]
		e.regMu.RUnlock()
		if cd != nil {
			e.c.mstHits.Add(1)
			return edges, cd, nil
		}
	}
	// Loop: a mutation can clear the memos between the leader's publish and
	// the post-flight lookup (see CoreDist).
	for {
		err := e.coalesce(ctx, sfKey{stage: sfMST, kind: KindHDBSCAN, algo: uint8(algo), minPts: minPts}, &e.c.mstCoalesced, func(af *abort.Flag) {
			e.buildMu.Lock()
			defer e.buildMu.Unlock()
			e.hdbscanMSTLocked(af, key, minPts, algo, stats)
		})
		if err != nil {
			return nil, nil, err
		}
		edges, ok := e.lookupMST(key)
		e.regMu.RLock()
		cd := e.cores[minPts]
		e.regMu.RUnlock()
		if ok && cd != nil {
			return edges, cd, nil
		}
	}
}

func (e *Engine) hdbscanMSTLocked(af *abort.Flag, key mstKey, minPts int, algo hdbscan.Algorithm, stats *mst.Stats) ([]mst.Edge, []float64) {
	cd := e.coreDistLocked(af, minPts, stats)
	if edges, ok := e.lookupMST(key); ok {
		return edges, cd
	}
	t := e.canonLocked(af, stats)
	e.annotateLocked(af, minPts, cd, stats)
	ws := wsPool.Get().(*mst.Workspace)
	defer wsPool.Put(ws)
	edges := hdbscan.MSTOnAnnotatedTreeCancel(t, algo, e.Kern, ws, stats, af)
	e.storeMST(key, edges)
	return edges, cd
}

// Hierarchy returns the memoized hierarchy stage — MST, ordered dendrogram
// (start vertex 0), and cut structure — for the given MST stage. For
// KindEMST the algorithm is an EMSTAlgo and CoreDist is nil (single-linkage
// semantics); for KindHDBSCAN it is an hdbscan.Algorithm.
func (e *Engine) Hierarchy(ctx context.Context, kind Kind, algo uint8, minPts int, stats *mst.Stats) (*HierStage, error) {
	key := mstKey{Kind: kind, Algo: algo, MinPts: minPts}
	if kind == KindEMST {
		key.MinPts = 0
	}
	// Loop: a mutation can clear the memo between the leader's publish and
	// the post-flight lookup (see CoreDist).
	for {
		e.regMu.RLock()
		st := e.hiers[key]
		e.regMu.RUnlock()
		if st != nil {
			e.c.hierHits.Add(1)
			return st, nil
		}
		err := e.coalesce(ctx, sfKey{stage: sfHier, kind: kind, algo: algo, minPts: key.MinPts}, &e.c.hierCoalesced, func(af *abort.Flag) {
			e.buildMu.Lock()
			defer e.buildMu.Unlock()
			e.hierarchyLocked(af, key, kind, algo, minPts, stats)
		})
		if err != nil {
			return nil, err
		}
		e.regMu.RLock()
		st = e.hiers[key]
		e.regMu.RUnlock()
		if st != nil {
			return st, nil
		}
	}
}

// hierarchyLocked is the build-mutex-held hierarchy stage body.
func (e *Engine) hierarchyLocked(af *abort.Flag, key mstKey, kind Kind, algo uint8, minPts int, stats *mst.Stats) *HierStage {
	e.regMu.RLock()
	st := e.hiers[key]
	e.regMu.RUnlock()
	if st != nil {
		return st
	}
	var edges []mst.Edge
	var cd []float64
	if kind == KindEMST {
		edges = e.emstLocked(af, key, EMSTAlgo(algo), stats)
	} else {
		edges, cd = e.hdbscanMSTLocked(af, key, minPts, hdbscan.Algorithm(algo), stats)
	}
	af.Check() // last checkpoint before the (uncancellable) dendrogram build
	st = &HierStage{N: e.liveNLocked(), MST: edges, CoreDist: cd, MinPts: minPts, eng: e}
	if st.N > 0 {
		stats.Time("dendrogram", func() {
			st.Dendro = dendrogram.BuildParallel(st.N, edges, 0)
		})
	}
	e.c.hierBuilds.Add(1)
	e.regMu.Lock()
	e.hiers[key] = st
	e.regMu.Unlock()
	return st
}

// edgeMetricFor adapts the tree's kernel to the MST edge-weight interface
// over the kd-ordered points, preserving the monomorphized Euclidean fast
// path.
func edgeMetricFor(t *kdtree.Tree) kdtree.Metric {
	if t.IsL2() {
		return kdtree.NewEuclidean(t)
	}
	return kdtree.NewPointDist(t)
}

// separationFor selects the s=2 geometric well-separation for the kernel.
func separationFor(kern metric.Metric) wspd.Separation {
	if metric.IsL2(kern) {
		return wspd.Geometric{S: 2}
	}
	return wspd.MetricGeometric{M: kern, S: 2}
}

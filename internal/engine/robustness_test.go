package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"parclust/internal/faultinject"
	"parclust/internal/hdbscan"
	"parclust/internal/metric"
)

// TestCancelMidTreeBuild proves a disconnected client stops its own cold
// build: the leader is held at the build hook while its context is
// cancelled, the ctx watcher releases the leader's waiter share (dropping
// the flight to zero interest and setting the abort flag), and the build
// unwinds at its first checkpoint. No stage output is published and the
// abort is counted.
func TestCancelMidTreeBuild(t *testing.T) {
	e := New(randPoints(2000, 2, 21), metric.L2{})
	ctx, cancel := context.WithCancel(context.Background())

	entered := make(chan struct{})
	release := make(chan struct{})
	TestBuildHook = func(s string) {
		if s == "tree" {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { TestBuildHook = nil })

	errc := make(chan error, 1)
	go func() {
		_, err := e.Tree(ctx, nil)
		errc <- err
	}()

	<-entered
	cancel()
	// Give the ctx watcher a moment to drop the leader's waiter share; the
	// 2000-node build that follows has a checkpoint per tree node, so the
	// abort lands even if the watcher fires a beat late.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Tree returned %v, want context.Canceled", err)
	}
	c := e.Counters()
	if c.TreeBuilds != 0 {
		t.Fatalf("TreeBuilds = %d, want 0 (aborted build must not publish)", c.TreeBuilds)
	}
	if c.BuildAborts != 1 {
		t.Fatalf("BuildAborts = %d, want 1", c.BuildAborts)
	}
	// The flight is cleared: a fresh request rebuilds cleanly.
	TestBuildHook = nil
	if tr := testTree(e); tr == nil {
		t.Fatal("rebuild after abort returned nil tree")
	}
	if c := e.Counters(); c.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds after rebuild = %d, want 1", c.TreeBuilds)
	}
}

// TestCancelledFollowerAbandonsFlight proves a follower abandons a parked
// wait on its own context without disturbing the leader: the build
// completes, the leader and the surviving followers get the stage, and the
// abandoning follower gets its ctx error.
func TestCancelledFollowerAbandonsFlight(t *testing.T) {
	e := New(randPoints(400, 2, 22), metric.L2{})
	entered := make(chan struct{})
	gate := make(chan struct{})
	var enterOnce, releaseOnce sync.Once
	TestBuildHook = func(s string) {
		if s == "tree" {
			enterOnce.Do(func() { close(entered) })
			<-gate
		}
	}
	t.Cleanup(func() { TestBuildHook = nil })
	release := func() { releaseOnce.Do(func() { close(gate) }) }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		testTree(e)
	}()
	// Wait for the hook, not a counter: only this signal proves the
	// background-ctx goroutine (and not the cancellable one below) won the
	// race to lead the flight.
	<-entered

	// Park a follower, then cancel it while the leader is still held open.
	ctx, cancel := context.WithCancel(context.Background())
	follower := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := e.Tree(ctx, nil)
		follower <- err
	}()
	waitForCoalesced(t, release, func() int64 { return e.Counters().TreeCoalesced }, 1)
	cancel()
	if err := <-follower; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower got %v, want context.Canceled", err)
	}

	release()
	wg.Wait()
	c := e.Counters()
	if c.TreeBuilds != 1 || c.BuildAborts != 0 {
		t.Fatalf("builds=%d aborts=%d, want 1/0 (leader had live interest)", c.TreeBuilds, c.BuildAborts)
	}
}

// TestLeaderPanicWakesAllFollowers is the regression test for the latent
// singleflight hazard: a leader that panics mid-build must wake every
// parked follower with the error, clear the flight, and leave the memo
// registry unpoisoned so the next identical query rebuilds cleanly.
// Exercised under -race in CI's chaos job.
func TestLeaderPanicWakesAllFollowers(t *testing.T) {
	const followers = 8
	e := New(randPoints(500, 2, 23), metric.L2{})

	gate := make(chan struct{})
	TestBuildHook = func(s string) {
		if s == "hier" {
			<-gate
			panic("injected build failure")
		}
	}
	t.Cleanup(func() { TestBuildHook = nil })

	errs := make(chan error, followers+1)
	var wg sync.WaitGroup
	for range followers + 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Hierarchy(context.Background(), KindHDBSCAN, uint8(hdbscan.MemoGFK), 10, nil)
			errs <- err
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for e.Counters().DendrogramCoalesced != followers {
		if time.Now().After(deadline) {
			close(gate)
			t.Fatalf("timed out parking followers: coalesced=%d", e.Counters().DendrogramCoalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errs)

	got := 0
	for err := range errs {
		got++
		var bp *BuildPanicError
		if !errors.As(err, &bp) {
			t.Fatalf("waiter got %v, want *BuildPanicError", err)
		}
		if bp.Stage != "hier" || bp.Value != "injected build failure" {
			t.Fatalf("panic error = %+v, want stage=hier value=injected build failure", bp)
		}
		if msg := bp.Error(); msg != "engine: hier stage build panicked: injected build failure" {
			t.Fatalf("BuildPanicError message = %q", msg)
		}
	}
	if got != followers+1 {
		t.Fatalf("woke %d waiters, want %d", got, followers+1)
	}
	c := e.Counters()
	if c.BuildPanics != 1 || c.DendrogramBuilds != 0 {
		t.Fatalf("panics=%d dendroBuilds=%d, want 1/0", c.BuildPanics, c.DendrogramBuilds)
	}

	// The flight is cleared and the memo unpoisoned: the same query now
	// rebuilds from scratch and succeeds.
	TestBuildHook = nil
	st := testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 10)
	if st == nil || st.Dendro == nil {
		t.Fatal("rebuild after panic returned nil stage")
	}
	if c := e.Counters(); c.DendrogramBuilds != 1 {
		t.Fatalf("DendrogramBuilds after rebuild = %d, want 1", c.DendrogramBuilds)
	}
}

// TestBuildGateShedsColdBuilds proves the admission gate rejects cold
// builds with ErrOverloaded while leaving warm memoized reads untouched.
func TestBuildGateShedsColdBuilds(t *testing.T) {
	e := New(randPoints(300, 2, 24), metric.L2{})
	tr := testTree(e) // warm the tree before closing the gate

	e.SetBuildGate(func() (func(), bool) { return nil, false })
	if _, err := e.CoreDist(context.Background(), 5, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cold CoreDist under closed gate: %v, want ErrOverloaded", err)
	}
	got, err := e.Tree(context.Background(), nil)
	if err != nil || got != tr {
		t.Fatalf("warm Tree under closed gate: (%p, %v), want memoized hit", got, err)
	}

	// Reopen: the same cold query is admitted, and release is called.
	var admitted, released int
	e.SetBuildGate(func() (func(), bool) {
		admitted++
		return func() { released++ }, true
	})
	if _, err := e.CoreDist(context.Background(), 5, nil); err != nil {
		t.Fatalf("cold CoreDist under open gate: %v", err)
	}
	if admitted != 1 || released != 1 {
		t.Fatalf("gate admitted=%d released=%d, want 1/1", admitted, released)
	}
}

// TestBuildFaultInjection proves an armed engine.build failure point
// surfaces as the stage error to every waiter, leaves the memo unpoisoned,
// and disappears once disarmed.
func TestBuildFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	e := New(randPoints(300, 2, 25), metric.L2{})
	boom := errors.New("injected: disk on fire")
	faultinject.Activate("engine.build", faultinject.Fault{Mode: faultinject.Error, Err: boom, Count: 1})

	if _, err := e.Tree(context.Background(), nil); !errors.Is(err, boom) {
		t.Fatalf("Tree under fault = %v, want %v", err, boom)
	}
	if c := e.Counters(); c.TreeBuilds != 0 {
		t.Fatalf("TreeBuilds = %d, want 0 (failed build must not publish)", c.TreeBuilds)
	}
	// Count: 1 self-disarmed; the retry succeeds.
	if tr := testTree(e); tr == nil {
		t.Fatal("rebuild after fault returned nil tree")
	}
}

package engine

import (
	"math/rand"
	"sync"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
	"parclust/internal/metric"
	"parclust/internal/mst"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

func TestStageMemoizationCounters(t *testing.T) {
	e := New(randPoints(500, 2, 1), metric.L2{})
	// Three minPts values, each queried twice; the tree must build once,
	// core distances and MSTs once per minPts.
	for _, minPts := range []int{3, 7, 12, 3, 7, 12} {
		edges, cd := testHDB(e, minPts, hdbscan.MemoGFK)
		if len(edges) != 499 || len(cd) != 500 {
			t.Fatalf("minPts=%d: %d edges, %d core distances", minPts, len(edges), len(cd))
		}
	}
	c := e.Counters()
	if c.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds = %d, want 1", c.TreeBuilds)
	}
	if c.CoreDistBuilds != 3 {
		t.Fatalf("CoreDistBuilds = %d, want 3", c.CoreDistBuilds)
	}
	if c.MSTBuilds != 3 {
		t.Fatalf("MSTBuilds = %d, want 3", c.MSTBuilds)
	}
	if c.MSTHits != 3 {
		t.Fatalf("MSTHits = %d, want 3", c.MSTHits)
	}
	// A different algorithm at a known minPts reuses tree and core
	// distances but runs a new MST.
	testHDB(e, 3, hdbscan.GanTao)
	c = e.Counters()
	if c.TreeBuilds != 1 || c.CoreDistBuilds != 3 || c.MSTBuilds != 4 {
		t.Fatalf("after algo change: tree=%d core=%d mst=%d, want 1/3/4",
			c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds)
	}
	// EMST shares the same tree.
	if edges := testEMST(e, EMSTMemoGFK); len(edges) != 499 {
		t.Fatalf("EMST edges = %d", len(edges))
	}
	if c := e.Counters(); c.TreeBuilds != 1 || c.MSTBuilds != 5 {
		t.Fatalf("after EMST: tree=%d mst=%d, want 1/5", c.TreeBuilds, c.MSTBuilds)
	}
}

func TestHierarchyStageSharedAcrossCalls(t *testing.T) {
	e := New(randPoints(300, 2, 2), metric.L2{})
	a := testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 5)
	b := testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 5)
	if a != b {
		t.Fatal("equal queries returned distinct hierarchy stages")
	}
	if a.Cutter() != b.Cutter() {
		t.Fatal("cut structure not shared")
	}
	c := e.Counters()
	if c.DendrogramBuilds != 1 || c.DendrogramHits != 1 {
		t.Fatalf("dendrogram builds=%d hits=%d, want 1/1", c.DendrogramBuilds, c.DendrogramHits)
	}
	// Single-linkage is a distinct stage.
	sl := testHier(e, KindEMST, uint8(EMSTMemoGFK), 1)
	if sl == a || sl.CoreDist != nil {
		t.Fatal("single-linkage stage must be distinct with nil core distances")
	}
}

func TestMSTResultsMatchFreshEngine(t *testing.T) {
	// A warm engine (annotations overwritten by interleaved minPts runs)
	// must produce byte-identical MSTs to fresh ones.
	pts := randPoints(400, 3, 3)
	warm := New(pts, metric.L2{})
	order := []int{9, 2, 9, 5, 2}
	for _, mp := range order {
		testHDB(warm, mp, hdbscan.MemoGFK)
	}
	for _, mp := range []int{2, 5, 9} {
		fresh := New(pts, metric.L2{})
		we, wcd := testHDB(warm, mp, hdbscan.MemoGFK)
		fe, fcd := testHDB(fresh, mp, hdbscan.MemoGFK)
		if len(we) != len(fe) {
			t.Fatalf("minPts=%d: edge count differs", mp)
		}
		for i := range we {
			if we[i] != fe[i] {
				t.Fatalf("minPts=%d: edge %d differs: %v vs %v", mp, i, we[i], fe[i])
			}
		}
		for i := range wcd {
			if wcd[i] != fcd[i] {
				t.Fatalf("minPts=%d: core distance %d differs", mp, i)
			}
		}
	}
}

func TestConcurrentStageComputation(t *testing.T) {
	// Eight goroutines race to compute overlapping stages on a cold engine;
	// every stage must run exactly once per key and all results must agree.
	pts := randPoints(600, 2, 4)
	e := New(pts, metric.L2{})
	want := map[int]float64{}
	for _, mp := range []int{4, 8} {
		fresh := New(pts, metric.L2{})
		edges, _ := testHDB(fresh, mp, hdbscan.MemoGFK)
		want[mp] = mst.TotalWeight(edges)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 6; it++ {
				mp := []int{4, 8}[(g+it)%2]
				edges, _ := testHDB(e, mp, hdbscan.MemoGFK)
				if got := mst.TotalWeight(edges); got != want[mp] {
					t.Errorf("minPts=%d: weight %v, want %v", mp, got, want[mp])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c := e.Counters()
	if c.TreeBuilds != 1 || c.CoreDistBuilds != 2 || c.MSTBuilds != 2 {
		t.Fatalf("concurrent cold start: tree=%d core=%d mst=%d, want 1/2/2",
			c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds)
	}
}

func TestEMSTTrivialInputs(t *testing.T) {
	for _, n := range []int{0, 1} {
		e := New(randPoints(n, 2, 5), metric.L2{})
		if edges := testEMST(e, EMSTMemoGFK); edges != nil {
			t.Fatalf("n=%d: EMST returned %d edges", n, len(edges))
		}
		if c := e.Counters(); c.TreeBuilds != 0 {
			t.Fatalf("n=%d: trivial EMST built a tree", n)
		}
	}
}

package engine

import (
	"context"

	"parclust/internal/hdbscan"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
)

// Background-context, panic-on-error wrappers over the ctx-aware stage
// entries for the happy-path tests, which predate cancellation and never
// expect a build to fail.

func testTree(e *Engine) *kdtree.Tree {
	tr, err := e.Tree(context.Background(), nil)
	if err != nil {
		panic(err)
	}
	return tr
}

func testHier(e *Engine, kind Kind, algo uint8, minPts int) *HierStage {
	st, err := e.Hierarchy(context.Background(), kind, algo, minPts, nil)
	if err != nil {
		panic(err)
	}
	return st
}

func testHDB(e *Engine, minPts int, algo hdbscan.Algorithm) ([]mst.Edge, []float64) {
	edges, cd, err := e.HDBSCANMST(context.Background(), minPts, algo, nil)
	if err != nil {
		panic(err)
	}
	return edges, cd
}

func testEMST(e *Engine, algo EMSTAlgo) []mst.Edge {
	edges, err := e.EMST(context.Background(), algo, nil)
	if err != nil {
		panic(err)
	}
	return edges
}

package engine

import (
	"sync"
	"testing"
	"time"

	"parclust/internal/hdbscan"
	"parclust/internal/metric"
)

// holdBuildOpen installs a TestBuildHook that blocks the singleflight
// leader of the given stage family until the returned release function is
// called. The cleanup removes the hook.
func holdBuildOpen(t *testing.T, stage string) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	TestBuildHook = func(s string) {
		if s == stage {
			<-gate
		}
	}
	t.Cleanup(func() { TestBuildHook = nil })
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// waitForCoalesced polls read until it reaches want, failing the test (and
// releasing the build gate) on timeout.
func waitForCoalesced(t *testing.T, release func(), read func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for read() != want {
		if time.Now().After(deadline) {
			release()
			t.Fatalf("timed out waiting for coalesced counter: got %d, want %d", read(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightColdTreeBuild proves that 16 concurrent cold tree
// requests perform exactly one build: the build hook holds the leader's
// build open until the other 15 requests have parked on its flight, so the
// coalesced counter is deterministic, not schedule-dependent.
func TestSingleflightColdTreeBuild(t *testing.T) {
	const clients = 16
	e := New(randPoints(400, 2, 7), metric.L2{})
	release := holdBuildOpen(t, "tree")

	var wg sync.WaitGroup
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if testTree(e) == nil {
				t.Error("Tree returned nil")
			}
		}()
	}
	waitForCoalesced(t, release, func() int64 { return e.Counters().TreeCoalesced }, clients-1)
	release()
	wg.Wait()

	c := e.Counters()
	if c.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds = %d, want 1", c.TreeBuilds)
	}
	if c.TreeCoalesced != clients-1 {
		t.Fatalf("TreeCoalesced = %d, want %d", c.TreeCoalesced, clients-1)
	}
	if c.Coalesced() != clients-1 {
		t.Fatalf("Coalesced() = %d, want %d", c.Coalesced(), clients-1)
	}
	// A warm request after the dust settles is a plain hit.
	testTree(e)
	if c := e.Counters(); c.TreeHits != 1 || c.TreeBuilds != 1 {
		t.Fatalf("warm request: hits=%d builds=%d, want 1/1", c.TreeHits, c.TreeBuilds)
	}
}

// TestSingleflightColdHierarchyQueries is the end-to-end variant: 16
// concurrent cold HDBSCAN hierarchy queries on one dataset coalesce into a
// single pipeline run — one tree build, one core-distance set, one MST, one
// dendrogram — with the 15 followers counted as coalesced, and every
// follower receives the leader's published stage.
func TestSingleflightColdHierarchyQueries(t *testing.T) {
	const clients = 16
	e := New(randPoints(500, 2, 8), metric.L2{})
	release := holdBuildOpen(t, "hier")

	results := make([]*HierStage, clients)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 10)
		}()
	}
	waitForCoalesced(t, release, func() int64 { return e.Counters().DendrogramCoalesced }, clients-1)
	release()
	wg.Wait()

	c := e.Counters()
	if c.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds = %d, want 1", c.TreeBuilds)
	}
	if c.CoreDistBuilds != 1 || c.MSTBuilds != 1 || c.DendrogramBuilds != 1 {
		t.Fatalf("core=%d mst=%d dendro=%d builds, want 1/1/1",
			c.CoreDistBuilds, c.MSTBuilds, c.DendrogramBuilds)
	}
	if c.Coalesced() != clients-1 {
		t.Fatalf("Coalesced() = %d, want %d", c.Coalesced(), clients-1)
	}
	for i, st := range results {
		if st == nil || st != results[0] {
			t.Fatalf("client %d received a different (or nil) stage", i)
		}
	}
}

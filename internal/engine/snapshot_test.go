package engine

import (
	"testing"

	"parclust/internal/hdbscan"
	"parclust/internal/metric"
)

// TestExportSeedStagesZeroRebuilds warms an engine, exports its stages into
// a fresh engine over the same points, and checks that every query is
// answered identically with all build counters still at zero — the
// warm-restart contract.
func TestExportSeedStagesZeroRebuilds(t *testing.T) {
	pts := randPoints(500, 2, 11)
	warm := New(pts, metric.L2{})
	testHier(warm, KindHDBSCAN, uint8(hdbscan.MemoGFK), 5)
	testHier(warm, KindHDBSCAN, uint8(hdbscan.MemoGFK), 9)
	testHier(warm, KindEMST, uint8(EMSTMemoGFK), 1)

	set := warm.ExportStages()
	if set.Tree == nil || len(set.Cores) != 2 || len(set.MSTs) != 3 || len(set.Hiers) != 3 {
		t.Fatalf("export: tree=%v cores=%d msts=%d hiers=%d, want tree/2/3/3",
			set.Tree != nil, len(set.Cores), len(set.MSTs), len(set.Hiers))
	}

	cold := New(pts, metric.L2{})
	cold.SeedStages(set)

	for _, mp := range []int{5, 9} {
		wSt := testHier(warm, KindHDBSCAN, uint8(hdbscan.MemoGFK), mp)
		cSt := testHier(cold, KindHDBSCAN, uint8(hdbscan.MemoGFK), mp)
		if len(wSt.MST) != len(cSt.MST) {
			t.Fatalf("minPts=%d: MST length differs", mp)
		}
		for i := range wSt.MST {
			if wSt.MST[i] != cSt.MST[i] {
				t.Fatalf("minPts=%d: MST edge %d differs", mp, i)
			}
		}
		for i := range wSt.CoreDist {
			if wSt.CoreDist[i] != cSt.CoreDist[i] {
				t.Fatalf("minPts=%d: core distance %d differs", mp, i)
			}
		}
		w, c := wSt.CutAt(1.5), cSt.CutAt(1.5)
		if w.NumClusters != c.NumClusters || len(w.Labels) != len(c.Labels) {
			t.Fatalf("minPts=%d: cut shape differs", mp)
		}
		for i := range w.Labels {
			if w.Labels[i] != c.Labels[i] {
				t.Fatalf("minPts=%d: label %d differs", mp, i)
			}
		}
	}
	sl := testHier(cold, KindEMST, uint8(EMSTMemoGFK), 1)
	if sl.CoreDist != nil || sl.MinPts != 1 {
		t.Fatal("seeded single-linkage stage must have nil core distances and minPts=1")
	}

	c := cold.Counters()
	if c.TreeBuilds != 0 || c.CoreDistBuilds != 0 || c.MSTBuilds != 0 || c.DendrogramBuilds != 0 {
		t.Fatalf("seeded engine rebuilt stages: tree=%d core=%d mst=%d dendro=%d, want all 0",
			c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds, c.DendrogramBuilds)
	}
	if c.DendrogramHits != 3 {
		t.Fatalf("DendrogramHits = %d, want 3", c.DendrogramHits)
	}
}

// TestSeedStagesPartial seeds only upstream stages and checks downstream
// builds still run (and only them), and that present entries are never
// overwritten.
func TestSeedStagesPartial(t *testing.T) {
	pts := randPoints(300, 2, 12)
	warm := New(pts, metric.L2{})
	testHier(warm, KindHDBSCAN, uint8(hdbscan.MemoGFK), 4)
	set := warm.ExportStages()

	// Drop the MSTs: the dependent hierarchy must not be seeded either.
	set.MSTs = nil
	cold := New(pts, metric.L2{})
	cold.SeedStages(set)
	testHier(cold, KindHDBSCAN, uint8(hdbscan.MemoGFK), 4)
	c := cold.Counters()
	if c.TreeBuilds != 0 || c.CoreDistBuilds != 0 {
		t.Fatalf("seeded upstream stages rebuilt: tree=%d core=%d", c.TreeBuilds, c.CoreDistBuilds)
	}
	if c.MSTBuilds != 1 || c.DendrogramBuilds != 1 {
		t.Fatalf("downstream builds: mst=%d dendro=%d, want 1/1", c.MSTBuilds, c.DendrogramBuilds)
	}

	// Seeding into an engine that already built the same stage keeps the
	// engine's copy.
	st := testHier(cold, KindHDBSCAN, uint8(hdbscan.MemoGFK), 4)
	cold.SeedStages(warm.ExportStages())
	if got := testHier(cold, KindHDBSCAN, uint8(hdbscan.MemoGFK), 4); got != st {
		t.Fatal("SeedStages replaced an already-published stage")
	}
}

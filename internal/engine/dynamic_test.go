package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
)

// In-package tests for the dynamic layer: the engine-level mutation oracle
// lives in the root package (mutation_oracle_test.go) and exercises the
// public Index; these pin the engine internals — id bookkeeping, compaction
// thresholds, counter accounting, and the live query entry points — against
// fresh engines over the equivalent point set.

// freshOver builds a clean engine over the given rows (row-major, dim
// wide), the same way compaction materializes its canonical base.
func freshOver(rows [][]float64, dim int) *Engine {
	p := geometry.NewPoints(len(rows), dim)
	for i, r := range rows {
		copy(p.Data[i*dim:(i+1)*dim], r)
	}
	return New(p, metric.L2{})
}

// dynModel mirrors the engine's live set: rows keyed by external id, in
// ascending id order.
type dynModel struct {
	ids  []int64
	rows [][]float64
}

func (m *dynModel) insert(ids []int64, pts geometry.Points) {
	for i, id := range ids {
		m.ids = append(m.ids, id)
		row := append([]float64(nil), pts.Data[i*pts.Dim:(i+1)*pts.Dim]...)
		m.rows = append(m.rows, row)
	}
}

func (m *dynModel) remove(ids []int64) {
	drop := make(map[int64]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	keptIDs := m.ids[:0]
	keptRows := m.rows[:0]
	for i, id := range m.ids {
		if !drop[id] {
			keptIDs = append(keptIDs, id)
			keptRows = append(keptRows, m.rows[i])
		}
	}
	m.ids, m.rows = keptIDs, keptRows
}

func TestDynamicMutationsMatchFresh(t *testing.T) {
	ctx := context.Background()
	dim := 2
	base := randPoints(120, dim, 101)
	e := New(base, metric.L2{})
	testTree(e) // warm the base tree so mutations patch, not rebuild

	model := &dynModel{}
	for i := 0; i < base.N; i++ {
		model.ids = append(model.ids, int64(i))
		model.rows = append(model.rows, base.At(i))
	}

	// Small batches stay under the 25% compaction threshold.
	ins1 := randPoints(10, dim, 102)
	ids1, err := e.Insert(ins1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids1) != 10 || ids1[0] != 120 || ids1[9] != 129 {
		t.Fatalf("first insert ids = %v, want 120..129", ids1)
	}
	model.insert(ids1, ins1)

	// Delete a mix of base rows and one overlay row.
	del := []int64{3, 77, 119, ids1[4]}
	if err := e.Delete(del); err != nil {
		t.Fatal(err)
	}
	model.remove(del)

	if !e.Dirty() {
		t.Fatal("engine should be dirty after sub-threshold mutations")
	}
	info := e.DynInfo()
	if info.Live != len(model.ids) || info.Overlay != 9 || info.Tombstones != 3 || !info.Dirty {
		t.Fatalf("DynInfo = %+v, want live=%d overlay=9 tombstones=3 dirty", info, len(model.ids))
	}
	if e.LiveN() != len(model.ids) {
		t.Fatalf("LiveN = %d, want %d", e.LiveN(), len(model.ids))
	}
	if e.Dim() != dim {
		t.Fatalf("Dim = %d, want %d", e.Dim(), dim)
	}
	if got := e.ExternalIDs(); !reflect.DeepEqual(got, model.ids) {
		t.Fatalf("ExternalIDs = %v, want %v", got, model.ids)
	}
	if e.MutationEpoch() != 2 {
		t.Fatalf("MutationEpoch = %d, want 2", e.MutationEpoch())
	}

	// Point queries on the dirty engine vs a fresh engine over the live set.
	fresh := freshOver(model.rows, dim)
	for _, q := range []int{0, 17, len(model.ids) - 1} {
		var ws, wsF kdtree.KNNWorkspace
		got, err := e.KNNLive(ctx, q, 6, &ws)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.KNNLive(ctx, q, 6, &wsF)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("KNNLive(%d) = %v, want %v", q, got, want)
		}
		gr, err := e.RangeLive(ctx, q, 20)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := fresh.RangeLive(ctx, q, 20)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(gr, func(a, b int) bool { return gr[a] < gr[b] })
		sort.Slice(wr, func(a, b int) bool { return wr[a] < wr[b] })
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("RangeLive(%d) = %v, want %v", q, gr, wr)
		}
		gc, err := e.RangeCountLive(ctx, q, 20)
		if err != nil {
			t.Fatal(err)
		}
		if gc != len(wr) {
			t.Fatalf("RangeCountLive(%d) = %d, want %d", q, gc, len(wr))
		}
	}

	// Global stages compact first and agree with the fresh build exactly.
	cd, err := e.CoreDist(ctx, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	cdF, err := fresh.CoreDist(ctx, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cd, cdF) {
		t.Fatal("core distances differ from fresh build after compaction")
	}
	if e.Dirty() {
		t.Fatal("engine still dirty after a global stage compacted it")
	}
	c := e.Counters()
	if c.TreePatches != 2 || c.Compactions != 1 || c.MutationEpoch != 2 {
		t.Fatalf("counters = patches=%d compactions=%d epoch=%d, want 2/1/2",
			c.TreePatches, c.Compactions, c.MutationEpoch)
	}
	// After compaction dense ids renumber but external ids survive.
	if got := e.ExternalIDs(); !reflect.DeepEqual(got, model.ids) {
		t.Fatalf("post-compaction ExternalIDs = %v, want %v", got, model.ids)
	}

	// Deleting by external id through the non-identity baseExt map (binary
	// search path), then inserting past the threshold forces a second
	// compaction inside Insert itself.
	if err := e.Delete([]int64{ids1[0]}); err != nil {
		t.Fatal(err)
	}
	model.remove([]int64{ids1[0]})
	big := randPoints(80, dim, 103) // > 25% of ~126 live
	ids2, err := e.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	model.insert(ids2, big)
	if e.Dirty() {
		t.Fatal("engine should have compacted eagerly past the backlog threshold")
	}
	if c := e.Counters(); c.Compactions != 2 {
		t.Fatalf("compactions = %d, want 2", c.Compactions)
	}
	fresh2 := freshOver(model.rows, dim)
	var ws, wsF kdtree.KNNWorkspace
	got, err := e.KNNLive(ctx, 3, 8, &ws)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh2.KNNLive(ctx, 3, 8, &wsF)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction KNNLive = %v, want %v", got, want)
	}
}

func TestDynamicValidation(t *testing.T) {
	e := New(randPoints(40, 2, 7), metric.L2{})

	if ids, err := e.Insert(geometry.Points{}); err != nil || ids != nil {
		t.Fatalf("empty insert = (%v, %v), want (nil, nil)", ids, err)
	}
	if err := e.Delete(nil); err != nil {
		t.Fatalf("empty delete = %v, want nil", err)
	}
	if _, err := e.Insert(randPoints(3, 5, 8)); err == nil {
		t.Fatal("dimension-mismatched insert accepted")
	}
	for _, ids := range [][]int64{{40}, {-1}, {5, 5}, {39, 1000}} {
		if err := e.Delete(ids); !errors.Is(err, ErrUnknownID) {
			t.Fatalf("Delete(%v) = %v, want ErrUnknownID", ids, err)
		}
	}
	// All-or-nothing: the failed batches above must not have tombstoned 39.
	if err := e.Delete([]int64{39}); err != nil {
		t.Fatalf("deleting id 39 after failed batches: %v", err)
	}
	if err := e.Delete([]int64{39}); !errors.Is(err, ErrUnknownID) {
		t.Fatal("double delete of id 39 accepted")
	}
	if e.LiveN() != 39 {
		t.Fatalf("LiveN = %d, want 39", e.LiveN())
	}
}

func TestDynamicFloat32CompactsEagerly(t *testing.T) {
	ctx := context.Background()
	pts := randPoints(60, 3, 21)
	e := New(pts, metric.L2{})
	if err := e.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	testTree(e)
	ins := randPoints(4, 3, 22)
	if _, err := e.Insert(ins); err != nil {
		t.Fatal(err)
	}
	if e.Dirty() {
		t.Fatal("float32 engine must compact on every mutation")
	}
	if c := e.Counters(); c.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", c.Compactions)
	}
	model := make([][]float64, 0, 64)
	for i := 0; i < pts.N; i++ {
		model = append(model, pts.At(i))
	}
	for i := 0; i < ins.N; i++ {
		model = append(model, ins.At(i))
	}
	fresh := freshOver(model, 3)
	if err := fresh.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	var ws, wsF kdtree.KNNWorkspace
	got, err := e.KNNLive(ctx, 0, 5, &ws)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.KNNLive(ctx, 0, 5, &wsF)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("f32 KNNLive = %v, want %v", got, want)
	}
}

func TestCompactAndCanonTree(t *testing.T) {
	ctx := context.Background()
	e := New(randPoints(50, 2, 33), metric.L2{})
	if err := e.Compact(ctx); err != nil {
		t.Fatalf("Compact on a clean engine: %v", err)
	}
	if _, err := e.Insert(randPoints(2, 2, 34)); err != nil {
		t.Fatal(err)
	}
	tr, err := e.CanonTree(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pts.N != 52 {
		t.Fatalf("canonical tree over %d points, want 52", tr.Pts.N)
	}
	if e.Dirty() {
		t.Fatal("CanonTree left the engine dirty")
	}
	if err := e.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1 (second Compact was a no-op)", c.Compactions)
	}
}

// TestMutationDropsStagesAndCuts pins the invalidation contract at the
// engine level: a mutation drops core distances, MSTs, hierarchies, and
// the hierarchy cut caches, but keeps the tree as a patched base.
func TestMutationDropsStagesAndCuts(t *testing.T) {
	e := New(randPoints(150, 2, 55), metric.L2{})
	st := testHier(e, KindHDBSCAN, 0, 5)
	st.CutAt(1.0)
	c0 := e.Counters()
	if c0.TreeBuilds != 1 || c0.CutBuilds != 1 {
		t.Fatalf("warm counters = %+v", c0)
	}
	if _, err := e.Insert(randPoints(1, 2, 56)); err != nil {
		t.Fatal(err)
	}
	c1 := e.Counters()
	if c1.TreeBuilds != 1 {
		t.Fatalf("tree rebuilt on a sub-threshold insert (builds=%d)", c1.TreeBuilds)
	}
	if c1.TreePatches != 1 {
		t.Fatalf("tree patches = %d, want 1", c1.TreePatches)
	}
	// Re-deriving the hierarchy compacts and rebuilds downstream stages;
	// the same eps must re-cut (a cache hit here would be a stale cut
	// served against the mutated point set).
	st2 := testHier(e, KindHDBSCAN, 0, 5)
	if st2 == st {
		t.Fatal("stale hierarchy stage survived the mutation")
	}
	st2.CutAt(1.0)
	c2 := e.Counters()
	if c2.CoreDistBuilds != 2 || c2.MSTBuilds != 2 || c2.DendrogramBuilds != 2 {
		t.Fatalf("rebuild counters = %+v, want all stage builds == 2", c2)
	}
	if c2.CutBuilds != 2 || c2.CutHits != 0 {
		t.Fatalf("cut counters = builds=%d hits=%d, want 2/0 (no stale hits)",
			c2.CutBuilds, c2.CutHits)
	}
}

func TestSnapshotViewCoherence(t *testing.T) {
	e := New(randPoints(80, 2, 66), metric.L2{})
	testHier(e, KindHDBSCAN, 0, 4)
	pts, stages := e.SnapshotView()
	if pts.N != 80 || stages.Tree == nil || len(stages.Cores) != 1 {
		t.Fatalf("clean view: n=%d tree=%v cores=%d", pts.N, stages.Tree != nil, len(stages.Cores))
	}
	if _, err := e.Insert(randPoints(1, 2, 67)); err != nil {
		t.Fatal(err)
	}
	// After a mutation the view must not pair the old stage outputs with
	// the patched point set: stages were dropped with the mutation.
	_, stages = e.SnapshotView()
	if len(stages.Cores) != 0 || len(stages.MSTs) != 0 || len(stages.Hiers) != 0 {
		t.Fatalf("mutated view still carries stages: %d cores, %d msts, %d hiers",
			len(stages.Cores), len(stages.MSTs), len(stages.Hiers))
	}
}

// TestDynamicShrinkGrow drains the engine to a single point and grows it
// back, crossing the empty-overlay and all-tombstone edge cases.
func TestDynamicShrinkGrow(t *testing.T) {
	ctx := context.Background()
	e := New(randPoints(12, 2, 77), metric.L2{})
	rng := rand.New(rand.NewSource(78))
	live := make([]int64, 12)
	for i := range live {
		live[i] = int64(i)
	}
	for len(live) > 1 {
		k := rng.Intn(len(live))
		if err := e.Delete([]int64{live[k]}); err != nil {
			t.Fatal(err)
		}
		live = append(live[:k], live[k+1:]...)
	}
	if e.LiveN() != 1 {
		t.Fatalf("LiveN = %d, want 1", e.LiveN())
	}
	var ws kdtree.KNNWorkspace
	nb, err := e.KNNLive(ctx, 0, 3, &ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 1 || nb[0].Idx != 0 || nb[0].Dist != 0 {
		t.Fatalf("KNN over a single survivor = %v", nb)
	}
	ids, err := e.Insert(randPoints(9, 2, 79))
	if err != nil {
		t.Fatal(err)
	}
	if e.LiveN() != 10 {
		t.Fatalf("LiveN = %d, want 10", e.LiveN())
	}
	if err := e.Delete(ids[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CanonTree(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if e.LiveN() != 7 || e.Dirty() {
		t.Fatalf("after regrow+compact: LiveN=%d dirty=%v", e.LiveN(), e.Dirty())
	}
}

package engine

import "sync/atomic"

// counters tracks stage cache activity with atomics so hot read paths never
// take a lock to record a hit.
type counters struct {
	treeBuilds    atomic.Int64
	treeHits      atomic.Int64
	treeCoalesced atomic.Int64
	coreBuilds    atomic.Int64
	coreHits      atomic.Int64
	coreCoalesced atomic.Int64
	mstBuilds     atomic.Int64
	mstHits       atomic.Int64
	mstCoalesced  atomic.Int64
	hierBuilds    atomic.Int64
	hierHits      atomic.Int64
	hierCoalesced atomic.Int64
	cutBuilds     atomic.Int64
	cutHits       atomic.Int64
	buildAborts   atomic.Int64
	buildPanics   atomic.Int64
	treePatches   atomic.Int64
	compactions   atomic.Int64
}

// Counters is a point-in-time snapshot of an Engine's stage cache counters.
// Builds count stage executions (cache misses that ran the computation);
// Hits count queries answered from a memoized stage output; Coalesced
// counts queries that arrived while another goroutine was already building
// the same stage and parked on that build instead of triggering their own
// (the singleflight outcome — neither a build nor a hit). "Tree was built
// exactly once" is TreeBuilds == 1.
type Counters struct {
	// TreeBuilds / TreeHits / TreeCoalesced: k-d tree constructions vs.
	// reuses vs. requests parked on an in-flight construction.
	TreeBuilds, TreeHits, TreeCoalesced int64
	// CoreDistBuilds / CoreDistHits / CoreDistCoalesced: core-distance
	// computations (one per distinct minPts) vs. reuses vs. parked requests.
	CoreDistBuilds, CoreDistHits, CoreDistCoalesced int64
	// MSTBuilds / MSTHits / MSTCoalesced: MST runs (one per distinct kind x
	// algorithm x minPts) vs. reuses vs. parked requests.
	MSTBuilds, MSTHits, MSTCoalesced int64
	// DendrogramBuilds / DendrogramHits / DendrogramCoalesced:
	// ordered-dendrogram (+ cut structure) constructions vs. reuses vs.
	// parked requests.
	DendrogramBuilds, DendrogramHits, DendrogramCoalesced int64
	// CutBuilds / CutHits: flat-cut executions (one per distinct radius per
	// hierarchy stage, up to the per-stage cache bound) vs. cuts answered in
	// O(1) from a stage's cut-result cache. Cuts have no Coalesced counter:
	// a cut is cheap enough that concurrent cold requests just run it.
	CutBuilds, CutHits int64
	// BuildAborts counts stage builds cooperatively cancelled after every
	// interested request abandoned the flight; BuildPanics counts builds
	// that panicked (recovered at the flight boundary). Neither publishes a
	// stage output, so they never appear in the Builds counters.
	BuildAborts, BuildPanics int64
	// TreePatches counts mutations (Insert/Delete batches) absorbed by the
	// dynamic layer: each patched the overlay/tombstone state and
	// invalidated only downstream stages, keeping the base tree.
	// Compactions counts canonical rebuilds that folded the backlog into a
	// fresh base tree (each also increments TreeBuilds). MutationEpoch is
	// the current mutation epoch (see Engine.MutationEpoch).
	TreePatches, Compactions int64
	MutationEpoch            uint64
}

// Coalesced returns the total number of requests, across all stages, that
// parked on another goroutine's in-flight stage build instead of running
// their own. After N concurrent identical cold queries, Coalesced is N-1.
func (c Counters) Coalesced() int64 {
	return c.TreeCoalesced + c.CoreDistCoalesced + c.MSTCoalesced + c.DendrogramCoalesced
}

// Counters returns a snapshot of the engine's stage cache counters.
func (e *Engine) Counters() Counters {
	return Counters{
		TreeBuilds:          e.c.treeBuilds.Load(),
		TreeHits:            e.c.treeHits.Load(),
		TreeCoalesced:       e.c.treeCoalesced.Load(),
		CoreDistBuilds:      e.c.coreBuilds.Load(),
		CoreDistHits:        e.c.coreHits.Load(),
		CoreDistCoalesced:   e.c.coreCoalesced.Load(),
		MSTBuilds:           e.c.mstBuilds.Load(),
		MSTHits:             e.c.mstHits.Load(),
		MSTCoalesced:        e.c.mstCoalesced.Load(),
		DendrogramBuilds:    e.c.hierBuilds.Load(),
		DendrogramHits:      e.c.hierHits.Load(),
		DendrogramCoalesced: e.c.hierCoalesced.Load(),
		CutBuilds:           e.c.cutBuilds.Load(),
		CutHits:             e.c.cutHits.Load(),
		BuildAborts:         e.c.buildAborts.Load(),
		BuildPanics:         e.c.buildPanics.Load(),
		TreePatches:         e.c.treePatches.Load(),
		Compactions:         e.c.compactions.Load(),
		MutationEpoch:       e.epoch.Load(),
	}
}

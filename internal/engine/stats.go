package engine

import "sync/atomic"

// counters tracks stage cache activity with atomics so hot read paths never
// take a lock to record a hit.
type counters struct {
	treeBuilds atomic.Int64
	treeHits   atomic.Int64
	coreBuilds atomic.Int64
	coreHits   atomic.Int64
	mstBuilds  atomic.Int64
	mstHits    atomic.Int64
	hierBuilds atomic.Int64
	hierHits   atomic.Int64
}

// Counters is a point-in-time snapshot of an Engine's stage cache counters.
// Builds count stage executions (cache misses that ran the computation);
// Hits count queries answered from a memoized stage output. "Tree was built
// exactly once" is TreeBuilds == 1.
type Counters struct {
	// TreeBuilds / TreeHits: k-d tree constructions vs. reuses.
	TreeBuilds, TreeHits int64
	// CoreDistBuilds / CoreDistHits: core-distance computations (one per
	// distinct minPts) vs. reuses.
	CoreDistBuilds, CoreDistHits int64
	// MSTBuilds / MSTHits: MST runs (one per distinct kind x algorithm x
	// minPts) vs. reuses.
	MSTBuilds, MSTHits int64
	// DendrogramBuilds / DendrogramHits: ordered-dendrogram (+ cut
	// structure) constructions vs. reuses.
	DendrogramBuilds, DendrogramHits int64
}

// Counters returns a snapshot of the engine's stage cache counters.
func (e *Engine) Counters() Counters {
	return Counters{
		TreeBuilds:       e.c.treeBuilds.Load(),
		TreeHits:         e.c.treeHits.Load(),
		CoreDistBuilds:   e.c.coreBuilds.Load(),
		CoreDistHits:     e.c.coreHits.Load(),
		MSTBuilds:        e.c.mstBuilds.Load(),
		MSTHits:          e.c.mstHits.Load(),
		DendrogramBuilds: e.c.hierBuilds.Load(),
		DendrogramHits:   e.c.hierHits.Load(),
	}
}

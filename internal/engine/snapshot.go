package engine

import (
	"parclust/internal/dendrogram"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
)

// Stage export/seed hooks for the persistent store (internal/store): an
// engine's memoized stage outputs can be lifted out as a StageSet for
// serialization and installed back into a fresh engine after a restart. A
// seeded stage is indistinguishable from a built one to every query path —
// except that the build counters stay at zero, which is exactly how the
// warm-restart tests prove nothing was recomputed.

// StageKey identifies one MST/hierarchy stage across the engine boundary.
// It mirrors the unexported mstKey: for KindEMST, Algo is an EMSTAlgo and
// MinPts is 0; for KindHDBSCAN, Algo is an hdbscan.Algorithm.
type StageKey struct {
	Kind   Kind
	Algo   uint8
	MinPts int
}

// StageSet is a point-in-time copy of an engine's memoized stage outputs.
// The maps are private to the caller, but the values (tree, slices,
// dendrograms) are shared with the engine and must be treated as read-only
// — which is also their contract inside the engine.
type StageSet struct {
	Tree  *kdtree.Tree
	Cores map[int][]float64
	MSTs  map[StageKey][]mst.Edge
	Hiers map[StageKey]*dendrogram.Dendrogram
}

// ExportStages snapshots the engine's published stage outputs. It takes
// only the registry read lock, so it can run concurrently with queries and
// with an in-flight build (whose result is simply not yet visible).
func (e *Engine) ExportStages() StageSet {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	return e.exportStagesLocked()
}

// SnapshotView captures the base point set together with the published
// stage outputs under one registry read lock, so a serializer sees a
// mutation-coherent pair: the stages always describe exactly these points.
// (A mutation clears the stages before publishing, and compaction replaces
// points, tree, and dynamic state in one critical section.)
func (e *Engine) SnapshotView() (geometry.Points, StageSet) {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	return e.Pts, e.exportStagesLocked()
}

func (e *Engine) exportStagesLocked() StageSet {
	s := StageSet{
		Tree:  e.tree,
		Cores: make(map[int][]float64, len(e.cores)),
		MSTs:  make(map[StageKey][]mst.Edge, len(e.msts)),
		Hiers: make(map[StageKey]*dendrogram.Dendrogram, len(e.hiers)),
	}
	for mp, cd := range e.cores {
		s.Cores[mp] = cd
	}
	for k, edges := range e.msts {
		s.MSTs[StageKey(k)] = edges
	}
	for k, st := range e.hiers {
		if st.Dendro != nil {
			s.Hiers[StageKey(k)] = st.Dendro
		}
	}
	return s
}

// SeedStages installs previously exported stage outputs into the engine
// without running any build and without touching the build counters. Stages
// already present are kept (the engine's copy wins); a hierarchy stage is
// seeded only if its MST — and, for HDBSCAN, its core distances — landed
// too, since queries read those fields off the stage. Safe to call
// concurrently with queries; the usual registry locking applies.
func (e *Engine) SeedStages(s StageSet) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if e.tree == nil && s.Tree != nil {
		if !e.f32 || s.Tree.EnableFloat32() == nil {
			e.tree = s.Tree
		}
		// On a (theoretical) float32 attach failure the tree seed is simply
		// dropped; the next query rebuilds it cold.
	}
	for mp, cd := range s.Cores {
		if _, ok := e.cores[mp]; !ok && cd != nil {
			e.cores[mp] = cd
		}
	}
	for k, edges := range s.MSTs {
		if _, ok := e.msts[mstKey(k)]; !ok && edges != nil {
			e.msts[mstKey(k)] = edges
		}
	}
	for k, d := range s.Hiers {
		if _, ok := e.hiers[mstKey(k)]; ok || d == nil {
			continue
		}
		edges, ok := e.msts[mstKey(k)]
		if !ok {
			continue
		}
		st := &HierStage{N: e.Pts.N, MST: edges, MinPts: k.MinPts, Dendro: d, eng: e}
		if k.Kind == KindHDBSCAN {
			cd, ok := e.cores[k.MinPts]
			if !ok {
				continue
			}
			st.CoreDist = cd
		} else {
			// The EMST hierarchy is single-linkage: CoreDist stays nil and
			// the public entry point always passes minPts=1.
			st.MinPts = 1
		}
		e.hiers[mstKey(k)] = st
	}
}

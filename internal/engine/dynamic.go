package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
)

// The dynamic layer turns the engine's immutable point set into a mutable
// one without giving up the staged pipeline's byte-for-byte reproducibility:
//
//   - Inserted rows land in a small overlay buffer that point queries
//     (k-NN, range) merge with the base tree by brute-force scan.
//   - Deleted points become tombstones: a bitmap over the base tree that
//     leaf scans skip, plus removal from the overlay.
//   - Every surviving point keeps a stable external id (assigned
//     monotonically, starting at 0 for the initial rows); the public query
//     id space is "dense" — position in the ascending external-id order —
//     which is exactly the id space of an Index freshly built over the
//     surviving rows in that order.
//   - Global stages (core distances, MSTs, hierarchies, DBSCAN, OPTICS)
//     never run over the patched view: the first such query after a
//     mutation compacts — rebuilds the canonical base from the surviving
//     rows in external-id order with the very same build path a fresh
//     engine uses — so their outputs are byte-identical to a fresh build by
//     construction. Compaction also triggers once the overlay+tombstone
//     backlog crosses a fraction of the live set, amortizing rebuild cost
//     over many point-query-only mutations.
//
// A mutation bumps the engine's mutation epoch (visible before the mutation
// is applied, so a server can detect queries racing a bump mid-flight) and
// invalidates only the downstream stages: core distances, MSTs,
// hierarchies, and their cut-result caches are dropped; the tree survives
// as the base for patched point queries until compaction replaces it.
//
// Concurrency: dynState is immutable after publication and replaced
// wholesale — readers snapshot (tree, dyn) under one regMu read-lock and
// work on a coherent pair. Mutations serialize with stage builds on buildMu
// and publish under regMu, preserving the existing locking discipline.

// ErrUnknownID is wrapped by Delete when an external id does not name a
// live point (never assigned, or already deleted).
var ErrUnknownID = errors.New("engine: unknown or deleted point id")

// compactDen is the denominator of the backlog threshold: a mutation
// compacts eagerly once overlay+tombstone count exceeds live/compactDen
// (25%), bounding both point-query overhead (overlay scans, dead leaf
// slots) and memory (tombstoned rows) to a constant factor.
const compactDen = 4

// dynState is one immutable snapshot of the mutation state. All slices are
// shared structurally between snapshots and must never be written after
// publication.
type dynState struct {
	// baseExt maps base original ids (the tree's id space) to external ids;
	// nil means identity (a never-compacted initial base). Always ascending.
	baseExt []int64
	// tomb marks deleted base original ids; nil means none. nTomb counts
	// the marks.
	tomb  []bool
	nTomb int
	// ov holds the overlay rows (prepared coordinates, row-major) and ovExt
	// their external ids, ascending.
	ov    []float64
	ovExt []int64
	// nextID is the next external id to assign.
	nextID int64
	// dirty reports that the base tree does not equal the live set (overlay
	// or tombstones exist).
	dirty bool

	// Derived by reindex — the dense id space:
	// ids[dense] = external id (ascending); denseOfBase[b] = dense id of
	// base original id b (-1 if tombstoned); denseOfOv[i] = dense id of
	// overlay row i; srcOfDense[dense] = base original id if >= 0, else
	// -(overlay index + 1).
	ids         []int64
	denseOfBase []int32
	denseOfOv   []int32
	srcOfDense  []int32
}

// reindex rebuilds the dense-id mapping by merging the (ascending) live
// base external ids with the (ascending) overlay external ids.
func (d *dynState) reindex(baseN int) {
	live := baseN - d.nTomb + len(d.ovExt)
	d.ids = make([]int64, 0, live)
	d.srcOfDense = make([]int32, 0, live)
	d.denseOfBase = make([]int32, baseN)
	d.denseOfOv = make([]int32, len(d.ovExt))
	bi, oi := 0, 0
	for bi < baseN || oi < len(d.ovExt) {
		for bi < baseN && d.tomb != nil && d.tomb[bi] {
			d.denseOfBase[bi] = -1
			bi++
		}
		if bi >= baseN && oi >= len(d.ovExt) {
			break
		}
		takeBase := bi < baseN
		if takeBase && oi < len(d.ovExt) && d.ovExt[oi] < d.extOfBase(bi) {
			takeBase = false
		}
		dense := int32(len(d.ids))
		if takeBase {
			d.ids = append(d.ids, d.extOfBase(bi))
			d.denseOfBase[bi] = dense
			d.srcOfDense = append(d.srcOfDense, int32(bi))
			bi++
		} else {
			d.ids = append(d.ids, d.ovExt[oi])
			d.denseOfOv[oi] = dense
			d.srcOfDense = append(d.srcOfDense, -int32(oi)-1)
			oi++
		}
	}
}

func (d *dynState) extOfBase(b int) int64 {
	if d.baseExt == nil {
		return int64(b)
	}
	return d.baseExt[b]
}

// ovRow returns overlay row i.
func (d *dynState) ovRow(i, dim int) []float64 {
	return d.ov[i*dim : (i+1)*dim : (i+1)*dim]
}

// liveLen is the number of live points in this snapshot.
func (d *dynState) liveLen() int { return len(d.ids) }

// backlog is the mutation debt compaction clears: overlay rows plus
// tombstoned base rows.
func (d *dynState) backlog() int { return len(d.ovExt) + d.nTomb }

// DynInfo is a snapshot of the engine's dynamic-layer occupancy.
type DynInfo struct {
	// Live is the number of live (queryable) points.
	Live int
	// Overlay is the number of inserted rows not yet compacted into the
	// base tree; Tombstones the number of deleted base rows not yet
	// reclaimed.
	Overlay    int
	Tombstones int
	// Dirty reports that the base tree differs from the live set (a global
	// stage query or snapshot write will compact first).
	Dirty bool
}

// DynInfo returns the engine's current dynamic-layer occupancy.
func (e *Engine) DynInfo() DynInfo {
	e.regMu.RLock()
	d := e.dyn
	n := e.Pts.N
	e.regMu.RUnlock()
	if d == nil {
		return DynInfo{Live: n}
	}
	return DynInfo{Live: d.liveLen(), Overlay: len(d.ovExt), Tombstones: d.nTomb, Dirty: d.dirty}
}

// LiveN returns the number of live points: the base set plus overlay
// inserts, minus tombstoned deletes. Equal to Pts.N on a clean engine.
func (e *Engine) LiveN() int {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	if e.dyn != nil {
		return e.dyn.liveLen()
	}
	return e.Pts.N
}

// Dim returns the dimensionality of the engine's points.
func (e *Engine) Dim() int {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	return e.Pts.Dim
}

// Dirty reports whether the base tree differs from the live point set
// (uncompacted inserts or deletes exist). A dirty engine compacts before
// any global stage runs or a snapshot is written.
func (e *Engine) Dirty() bool {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	return e.dyn != nil && e.dyn.dirty
}

// MutationEpoch returns the engine's mutation epoch: a counter bumped at
// the start of every Insert/Delete, before the mutation is applied. A
// server that captures the epoch when a query begins and compares on
// completion detects responses that raced a mutation mid-flight.
func (e *Engine) MutationEpoch() uint64 { return e.epoch.Load() }

// ExternalIDs returns a copy of the live external ids in dense-id order
// (ascending): element q is the external id of the point that dense
// queries address as q.
func (e *Engine) ExternalIDs() []int64 {
	e.regMu.RLock()
	d := e.dyn
	n := e.Pts.N
	e.regMu.RUnlock()
	if d == nil {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
		}
		return ids
	}
	return append([]int64(nil), d.ids...)
}

// dynLocked returns the current dynState, materializing the clean identity
// state on first mutation. buildMu must be held.
func (e *Engine) dynLocked() *dynState {
	if e.dyn != nil {
		return e.dyn
	}
	d := &dynState{nextID: int64(e.Pts.N)}
	d.reindex(e.Pts.N)
	return d
}

// Insert appends the prepared rows (validated and kernel-normalized by the
// caller; dimensions must match) as live points and returns their external
// ids. The rows are copied into the overlay; downstream stages (core
// distances, MSTs, hierarchies, cut caches) are invalidated, the base tree
// survives for patched point queries, and the engine compacts eagerly when
// the mutation backlog crosses the threshold (always, on float32 engines).
func (e *Engine) Insert(rows geometry.Points) ([]int64, error) {
	if rows.N == 0 {
		return nil, nil
	}
	if rows.Dim != e.Dim() {
		return nil, fmt.Errorf("engine: insert dimension %d, want %d", rows.Dim, e.Dim())
	}
	e.epoch.Add(1)
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	old := e.dynLocked()
	nd := &dynState{
		baseExt: old.baseExt,
		tomb:    old.tomb,
		nTomb:   old.nTomb,
		ov:      append(append(make([]float64, 0, len(old.ov)+len(rows.Data)), old.ov...), rows.Data...),
		ovExt:   append(make([]int64, 0, len(old.ovExt)+rows.N), old.ovExt...),
		nextID:  old.nextID + int64(rows.N),
	}
	ids := make([]int64, rows.N)
	for i := range ids {
		ids[i] = old.nextID + int64(i)
		nd.ovExt = append(nd.ovExt, ids[i])
	}
	nd.dirty = true
	nd.reindex(e.Pts.N)
	e.publishMutationLocked(nd)
	e.maybeCompactLocked(nd)
	return ids, nil
}

// Delete removes the points with the given external ids. Validation is
// all-or-nothing: if any id does not name a live point the engine is
// unchanged and the error wraps ErrUnknownID. Overlay points are dropped
// outright; base points become tombstones skipped by every query until
// compaction reclaims them.
func (e *Engine) Delete(ids []int64) error {
	if len(ids) == 0 {
		return nil
	}
	e.epoch.Add(1)
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	old := e.dynLocked()
	baseN := e.Pts.N
	dim := e.Pts.Dim

	// Validate every id against the current snapshot before changing
	// anything; classify into base tombstones and overlay drops.
	tombAdd := make([]int32, 0, len(ids))
	ovDrop := make(map[int]bool)
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("%w: id %d repeated in delete batch", ErrUnknownID, id)
		}
		seen[id] = true
		if b, ok := old.findBase(id, baseN); ok {
			if old.tomb != nil && old.tomb[b] {
				return fmt.Errorf("%w: id %d", ErrUnknownID, id)
			}
			tombAdd = append(tombAdd, int32(b))
			continue
		}
		if oi, ok := old.findOverlay(id); ok {
			ovDrop[oi] = true
			continue
		}
		return fmt.Errorf("%w: id %d", ErrUnknownID, id)
	}

	nd := &dynState{
		baseExt: old.baseExt,
		tomb:    old.tomb,
		nTomb:   old.nTomb,
		ov:      old.ov,
		ovExt:   old.ovExt,
		nextID:  old.nextID,
	}
	if len(tombAdd) > 0 {
		tomb := make([]bool, baseN)
		copy(tomb, old.tomb)
		for _, b := range tombAdd {
			tomb[b] = true
		}
		nd.tomb = tomb
		nd.nTomb = old.nTomb + len(tombAdd)
	}
	if len(ovDrop) > 0 {
		ov := make([]float64, 0, len(old.ov))
		ovExt := make([]int64, 0, len(old.ovExt))
		for i, ext := range old.ovExt {
			if ovDrop[i] {
				continue
			}
			ov = append(ov, old.ovRow(i, dim)...)
			ovExt = append(ovExt, ext)
		}
		nd.ov, nd.ovExt = ov, ovExt
	}
	nd.dirty = len(nd.ovExt) > 0 || nd.nTomb > 0
	nd.reindex(baseN)
	e.publishMutationLocked(nd)
	e.maybeCompactLocked(nd)
	return nil
}

// findBase locates external id as a base original id (binary search over
// the ascending baseExt map, identity when nil).
func (d *dynState) findBase(id int64, baseN int) (int, bool) {
	if d.baseExt == nil {
		if id >= 0 && id < int64(baseN) {
			return int(id), true
		}
		return 0, false
	}
	i := sort.Search(len(d.baseExt), func(i int) bool { return d.baseExt[i] >= id })
	if i < len(d.baseExt) && d.baseExt[i] == id {
		return i, true
	}
	return 0, false
}

// findOverlay locates external id as an overlay row index.
func (d *dynState) findOverlay(id int64) (int, bool) {
	i := sort.Search(len(d.ovExt), func(i int) bool { return d.ovExt[i] >= id })
	if i < len(d.ovExt) && d.ovExt[i] == id {
		return i, true
	}
	return 0, false
}

// publishMutationLocked installs the new dynamic state and drops every
// downstream stage: core distances, MSTs, hierarchies, and the hierarchy
// stages' cut-result caches (their resident bytes are refunded). The tree
// is kept — point queries patch around the mutation until compaction.
// buildMu must be held.
func (e *Engine) publishMutationLocked(nd *dynState) {
	e.regMu.Lock()
	e.dyn = nd
	hiers := e.hiers
	e.cores = make(map[int][]float64)
	e.msts = make(map[mstKey][]mst.Edge)
	e.hiers = make(map[mstKey]*HierStage)
	e.regMu.Unlock()
	for _, st := range hiers {
		st.dropCuts()
	}
	e.annotated = 0
	e.c.treePatches.Add(1)
}

// dropCuts empties the stage's cut-result cache and refunds its resident
// bytes. Goroutines still holding the stage may repopulate the cache
// (bounded by maxCutResults); the stage itself is unreachable for new
// queries once dropped from the registry.
func (h *HierStage) dropCuts() {
	h.cutMu.Lock()
	var freed int64
	for _, c := range h.cuts {
		freed += cutResultBytes(c)
	}
	h.cuts = nil
	h.cutOrder = nil
	h.cutMu.Unlock()
	if h.eng != nil {
		h.eng.cutBytes.Add(-freed)
	}
}

// maybeCompactLocked compacts when the backlog crossed the amortization
// threshold — or immediately on float32 engines, whose SoA panels are
// rebuilt with the tree (the overlay has no float32 representation).
// buildMu must be held.
func (e *Engine) maybeCompactLocked(nd *dynState) {
	if !nd.dirty {
		return
	}
	if e.f32 || nd.backlog()*compactDen > nd.liveLen() {
		e.compactLocked(nil, nil)
	}
}

// compactLocked rebuilds the canonical base: the surviving rows are
// materialized in external-id (= dense-id) order and the tree is rebuilt
// with the exact build path a fresh engine uses, so every downstream stage
// output over the compacted base is byte-identical to a fresh build over
// the equivalent point set. Publishes points, tree, and the clean dynamic
// state together; an abort mid-build publishes nothing. buildMu must be
// held.
func (e *Engine) compactLocked(af *abort.Flag, stats *mst.Stats) {
	d := e.dyn
	if d == nil || !d.dirty {
		return
	}
	dim := e.Pts.Dim
	m := d.liveLen()
	np := geometry.NewPoints(m, dim)
	for dense, src := range d.srcOfDense {
		dst := np.Data[dense*dim : (dense+1)*dim]
		if src >= 0 {
			copy(dst, e.Pts.At(int(src)))
		} else {
			copy(dst, d.ovRow(int(-src-1), dim))
		}
	}
	var t *kdtree.Tree
	stats.Time("build-tree", func() {
		t = kdtree.BuildMetricCancel(np, 1, e.Kern, af)
		if e.f32 {
			if err := t.EnableFloat32(); err != nil {
				panic(fmt.Sprintf("engine: float32 attach failed during compaction: %v", err))
			}
		}
	})
	nd := &dynState{baseExt: d.ids, nextID: d.nextID}
	nd.reindex(m)
	e.regMu.Lock()
	e.Pts = np
	e.tree = t
	e.dyn = nd
	e.regMu.Unlock()
	e.annotated = 0
	e.c.treeBuilds.Add(1)
	e.c.compactions.Add(1)
}

// canonLocked returns the canonical tree: it compacts first when the
// engine is dirty, so the returned tree covers exactly the live points in
// dense-id order. Global stages and snapshot writes use this instead of
// treeLocked. buildMu must be held.
func (e *Engine) canonLocked(af *abort.Flag, stats *mst.Stats) *kdtree.Tree {
	e.compactLocked(af, stats)
	return e.treeLocked(af, stats)
}

// liveNLocked is LiveN under buildMu (no registry lock needed: dyn is only
// replaced under buildMu).
func (e *Engine) liveNLocked() int {
	if e.dyn != nil {
		return e.dyn.liveLen()
	}
	return e.Pts.N
}

// CanonTree returns the canonical tree over the live points, compacting a
// dirty engine first (under the tree singleflight, so concurrent callers
// coalesce). Queries that must reflect the full live set — DBSCAN, OPTICS,
// border attachment — use this; patched point queries use the live entry
// points below instead.
func (e *Engine) CanonTree(ctx context.Context, stats *mst.Stats) (*kdtree.Tree, error) {
	for {
		e.regMu.RLock()
		t, d := e.tree, e.dyn
		e.regMu.RUnlock()
		if t != nil && (d == nil || !d.dirty) {
			e.c.treeHits.Add(1)
			return t, nil
		}
		err := e.coalesce(ctx, sfKey{stage: sfTree}, &e.c.treeCoalesced, func(af *abort.Flag) {
			e.buildMu.Lock()
			defer e.buildMu.Unlock()
			e.canonLocked(af, stats)
		})
		if err != nil {
			return nil, err
		}
	}
}

// Compact forces a dirty engine into its canonical form (see canonLocked);
// a clean engine returns immediately. Snapshot writers call this so the
// encoded base equals the live set.
func (e *Engine) Compact(ctx context.Context) error {
	if !e.Dirty() {
		return nil
	}
	_, err := e.CanonTree(ctx, nil)
	return err
}

// liveView snapshots a coherent (tree, dyn) pair, building the tree if
// needed. dyn may be nil (never mutated).
func (e *Engine) liveView(ctx context.Context) (*kdtree.Tree, *dynState, error) {
	for {
		e.regMu.RLock()
		t, d := e.tree, e.dyn
		e.regMu.RUnlock()
		if t != nil {
			return t, d, nil
		}
		if _, err := e.Tree(ctx, nil); err != nil {
			return nil, nil, err
		}
	}
}

// liveQC resolves a dense id to its coordinate row within the given view:
// the tree's kd-ordered copy for base points, the overlay for inserts.
func liveQC(t *kdtree.Tree, d *dynState, q int) []float64 {
	if d == nil || d.srcOfDense == nil {
		return t.Pts.At(int(t.Inv[q]))
	}
	src := d.srcOfDense[q]
	if src >= 0 {
		return t.Pts.At(int(t.Inv[src]))
	}
	return d.ovRow(int(-src-1), t.Pts.Dim)
}

// KNNLive returns the k nearest live points to the live point with dense id
// q (including q itself), sorted by increasing tree-metric distance with
// ties broken by dense id. Result ids are dense ids — on a clean engine
// (including after compaction) this is exactly the static KNN.
func (e *Engine) KNNLive(ctx context.Context, q, k int, ws *kdtree.KNNWorkspace) ([]kdtree.Neighbor, error) {
	t, d, err := e.liveView(ctx)
	if err != nil {
		return nil, err
	}
	if d == nil || !d.dirty {
		return t.KNNInto(int32(q), k, ws), nil
	}
	qc := liveQC(t, d, q)
	base := t.KNNLiveInto(qc, k, d.tomb, ws)
	// base is already sorted by (dist, base id), and denseOfBase is
	// monotone over live base ids, so the remap preserves the
	// (dist, dense id) order.
	best := make([]kdtree.Neighbor, 0, k)
	for _, nb := range base {
		best = append(best, kdtree.Neighbor{Idx: d.denseOfBase[nb.Idx], Dist: nb.Dist})
	}
	// Fold each overlay row into the bounded best-k list; most rows fail
	// the cutoff against the current kth neighbor, so this stays O(overlay)
	// instead of sorting every candidate.
	dim := t.Pts.Dim
	for i := range d.ovExt {
		nb := kdtree.Neighbor{Idx: d.denseOfOv[i], Dist: t.DistCoords(qc, d.ovRow(i, dim))}
		if len(best) == k {
			w := best[k-1]
			if nb.Dist > w.Dist || (nb.Dist == w.Dist && nb.Idx >= w.Idx) {
				continue
			}
			best = best[:k-1]
		}
		j := len(best)
		best = append(best, nb)
		for j > 0 && (best[j-1].Dist > nb.Dist ||
			(best[j-1].Dist == nb.Dist && best[j-1].Idx > nb.Idx)) {
			best[j] = best[j-1]
			j--
		}
		best[j] = nb
	}
	return best, nil
}

// RangeLive returns the dense ids of all live points within tree-metric
// distance r of the live point with dense id q (including q itself), in
// ascending dense-id order.
func (e *Engine) RangeLive(ctx context.Context, q int, r float64) ([]int32, error) {
	t, d, err := e.liveView(ctx)
	if err != nil {
		return nil, err
	}
	if d == nil || !d.dirty {
		return t.RangeQuery(int32(q), r), nil
	}
	qc := liveQC(t, d, q)
	base := t.RangeQueryLiveAppend(qc, r, d.tomb, nil)
	out := make([]int32, 0, len(base))
	for _, b := range base {
		out = append(out, d.denseOfBase[b])
	}
	dim := t.Pts.Dim
	for i := range d.ovExt {
		if t.DistCoords(qc, d.ovRow(i, dim)) <= r {
			out = append(out, d.denseOfOv[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// RangeCountLive returns the number of live points within tree-metric
// distance r of the live point with dense id q (including q itself).
func (e *Engine) RangeCountLive(ctx context.Context, q int, r float64) (int, error) {
	t, d, err := e.liveView(ctx)
	if err != nil {
		return 0, err
	}
	if d == nil || !d.dirty {
		return t.RangeCount(int32(q), r), nil
	}
	qc := liveQC(t, d, q)
	cnt := t.RangeCountLive(qc, r, d.tomb)
	dim := t.Pts.Dim
	for i := range d.ovExt {
		if t.DistCoords(qc, d.ovRow(i, dim)) <= r {
			cnt++
		}
	}
	return cnt, nil
}

package engine

import (
	"math"
	"testing"

	"parclust/internal/hdbscan"
	"parclust/internal/metric"
)

func TestCutResultCache(t *testing.T) {
	const n = 400
	e := New(randPoints(n, 2, 3), metric.L2{})
	st := testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 5)

	a := st.CutAt(1.5)
	if c := e.Counters(); c.CutBuilds != 1 || c.CutHits != 0 {
		t.Fatalf("after first cut: builds=%d hits=%d, want 1/0", c.CutBuilds, c.CutHits)
	}
	perCut := cutResultBytes(a)
	if got := e.CutCacheBytes(); got != perCut {
		t.Fatalf("CutCacheBytes = %d, want %d", got, perCut)
	}

	b := st.CutAt(1.5)
	if c := e.Counters(); c.CutBuilds != 1 || c.CutHits != 1 {
		t.Fatalf("after repeat cut: builds=%d hits=%d, want 1/1", c.CutBuilds, c.CutHits)
	}
	if len(a.Labels) != n || &a.Labels[0] != &b.Labels[0] {
		t.Fatal("repeated cut did not return the cached labels slice")
	}
	// The cached result matches a fresh (uncached) cut.
	want := st.Cutter().CutAt(1.5)
	if b.NumClusters != want.NumClusters {
		t.Fatalf("cached NumClusters = %d, want %d", b.NumClusters, want.NumClusters)
	}
	for i := range want.Labels {
		if b.Labels[i] != want.Labels[i] {
			t.Fatalf("cached label[%d] = %d, want %d", i, b.Labels[i], want.Labels[i])
		}
	}

	// A different radius is a miss; a different stage has its own cache.
	st.CutAt(2.5)
	st2 := testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 7)
	st2.CutAt(1.5)
	if c := e.Counters(); c.CutBuilds != 3 || c.CutHits != 1 {
		t.Fatalf("after new radius + new stage: builds=%d hits=%d, want 3/1", c.CutBuilds, c.CutHits)
	}

	// NaN cuts run but are never cached: a NaN map key could not be looked
	// up again, so caching it would leak one dead entry per call.
	before := e.CutCacheBytes()
	st.CutAt(math.NaN())
	st.CutAt(math.NaN())
	if c := e.Counters(); c.CutBuilds != 5 || c.CutHits != 1 {
		t.Fatalf("after NaN cuts: builds=%d hits=%d, want 5/1", c.CutBuilds, c.CutHits)
	}
	if got := e.CutCacheBytes(); got != before {
		t.Fatalf("NaN cut changed CutCacheBytes: %d -> %d", before, got)
	}
}

func TestCutResultCacheFIFOBound(t *testing.T) {
	const n = 200
	e := New(randPoints(n, 2, 9), metric.L2{})
	st := testHier(e, KindHDBSCAN, uint8(hdbscan.MemoGFK), 4)

	// Overfill the cache; the per-cut charge is constant (every result
	// holds n labels), so the byte ceiling is maxCutResults cuts.
	perCut := cutResultBytes(st.CutAt(0.01))
	for i := 1; i < maxCutResults+8; i++ {
		st.CutAt(0.01 + float64(i)*0.05)
	}
	if got, want := e.CutCacheBytes(), int64(maxCutResults)*perCut; got != want {
		t.Fatalf("CutCacheBytes after overfill = %d, want %d", got, want)
	}

	// The oldest radius was evicted (FIFO), so re-cutting it is a build;
	// the newest is still resident, so re-cutting it is a hit.
	c0 := e.Counters()
	st.CutAt(0.01)
	if c := e.Counters(); c.CutBuilds != c0.CutBuilds+1 || c.CutHits != c0.CutHits {
		t.Fatalf("evicted radius: builds %d->%d hits %d->%d, want a rebuild",
			c0.CutBuilds, c.CutBuilds, c0.CutHits, c.CutHits)
	}
	c0 = e.Counters()
	st.CutAt(0.01 + float64(maxCutResults+7)*0.05)
	if c := e.Counters(); c.CutHits != c0.CutHits+1 {
		t.Fatalf("resident radius: hits %d->%d, want a hit", c0.CutHits, c.CutHits)
	}
}

package metric

import (
	"math"
	"math/rand"
	"testing"

	"parclust/internal/geometry"
)

// TestBoundsSound is the property every kernel must satisfy for the k-d
// tree, WSPD, and MST pruning to be correct: for random point subsets A
// and B, BoxesLB(box(A), box(B)) lower-bounds and BoxesUB upper-bounds
// every realized cross distance, and PointBoxLB lower-bounds every
// point-to-box distance.
func TestBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, m := range All() {
		for _, dim := range []int{1, 2, 3, 5} {
			for trial := 0; trial < 50; trial++ {
				a := randCloud(rng, 8, dim, m)
				b := randCloud(rng, 8, dim, m)
				boxA, boxB := cloudBox(a), cloudBox(b)
				lb := m.BoxesLB(boxA, boxB)
				ub := m.BoxesUB(boxA, boxB)
				if lb > ub+1e-12 {
					t.Fatalf("%s dim=%d: BoxesLB %v > BoxesUB %v", m.Name(), dim, lb, ub)
				}
				for i := 0; i < a.N; i++ {
					plb := m.PointBoxLB(a.At(i), boxB)
					for j := 0; j < b.N; j++ {
						d := m.Dist(a.At(i), b.At(j))
						if d < lb-1e-12 || d > ub+1e-12 {
							t.Fatalf("%s dim=%d: dist %v outside box bounds [%v, %v]",
								m.Name(), dim, d, lb, ub)
						}
						if d < plb-1e-12 {
							t.Fatalf("%s dim=%d: dist %v below PointBoxLB %v", m.Name(), dim, d, plb)
						}
					}
				}
			}
		}
	}
}

// TestDistAxioms checks symmetry, identity, and non-negativity for every
// kernel, and the triangle inequality for the true metrics (SqL2 is
// excluded by design).
func TestDistAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range All() {
		_, isSq := m.(SqL2)
		for trial := 0; trial < 200; trial++ {
			c := randCloud(rng, 3, 4, m)
			x, y, z := c.At(0), c.At(1), c.At(2)
			dxy, dyx := m.Dist(x, y), m.Dist(y, x)
			if dxy != dyx {
				t.Fatalf("%s: asymmetric: %v vs %v", m.Name(), dxy, dyx)
			}
			if m.Dist(x, x) != 0 {
				t.Fatalf("%s: Dist(x,x) = %v", m.Name(), m.Dist(x, x))
			}
			if dxy < 0 {
				t.Fatalf("%s: negative distance %v", m.Name(), dxy)
			}
			if !isSq {
				if m.Dist(x, z) > dxy+m.Dist(y, z)+1e-9 {
					t.Fatalf("%s: triangle inequality violated", m.Name())
				}
			}
		}
	}
}

func TestAngularMatchesArccosOfCosineSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ang Angular
	for trial := 0; trial < 200; trial++ {
		a := randUnit(rng, 5)
		b := randUnit(rng, 5)
		var dot float64
		for k := range a {
			dot += a[k] * b[k]
		}
		want := math.Acos(math.Max(-1, math.Min(1, dot)))
		if got := ang.Dist(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("angle %v, want acos(cos-sim) %v", got, want)
		}
	}
}

func TestParseRoundTripsAndAliases(t *testing.T) {
	for _, m := range All() {
		got, err := Parse(m.Name())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("Parse(%q) resolved to %q", m.Name(), got.Name())
		}
	}
	for alias, want := range map[string]string{
		"euclidean": "l2", "sqeuclidean": "sql2", "manhattan": "l1",
		"chebyshev": "linf", "cosine": "angular",
	} {
		m, err := Parse(alias)
		if err != nil || m.Name() != want {
			t.Fatalf("Parse(%q) = (%v, %v), want %s", alias, m, err, want)
		}
	}
	if _, err := Parse("hamming"); err == nil {
		t.Fatal("Parse accepted an unknown kernel")
	}
}

func TestNormalizeRows(t *testing.T) {
	pts := geometry.FromSlices([][]float64{{3, 4}, {0, -2}})
	norm, err := NormalizeRows(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm.At(0)[0]-0.6) > 1e-15 || math.Abs(norm.At(0)[1]-0.8) > 1e-15 {
		t.Fatalf("row 0 not normalized: %v", norm.At(0))
	}
	if pts.At(0)[0] != 3 {
		t.Fatal("NormalizeRows mutated its input")
	}
	if _, err := NormalizeRows(geometry.FromSlices([][]float64{{1, 1}, {0, 0}})); err == nil {
		t.Fatal("NormalizeRows accepted a zero vector")
	}
}

// TestNormalizeRowsExtremeMagnitudes guards the hypot-style scaling: rows
// whose naive squared norm would overflow to +Inf or underflow to 0 must
// still normalize to the correct unit direction.
func TestNormalizeRowsExtremeMagnitudes(t *testing.T) {
	pts := geometry.FromSlices([][]float64{
		{1e200, 1e200},   // naive sum of squares overflows to +Inf
		{1e-200, 1e-200}, // naive sum of squares underflows to 0
		{1, 0},
	})
	norm, err := NormalizeRows(pts)
	if err != nil {
		t.Fatalf("valid directions rejected: %v", err)
	}
	invSqrt2 := 1 / math.Sqrt2
	for _, i := range []int{0, 1} {
		row := norm.At(i)
		if math.Abs(row[0]-invSqrt2) > 1e-15 || math.Abs(row[1]-invSqrt2) > 1e-15 {
			t.Fatalf("row %d normalized to %v, want [%v %v]", i, row, invSqrt2, invSqrt2)
		}
	}
	var ang Angular
	if d := ang.Dist(norm.At(0), norm.At(2)); math.Abs(d-math.Pi/4) > 1e-12 {
		t.Fatalf("angle after extreme-magnitude normalization is %v, want pi/4", d)
	}
}

func TestDoublingReportedForAllBuiltins(t *testing.T) {
	for _, m := range All() {
		if !m.Doubling() {
			t.Fatalf("%s reports non-doubling; WSPD algorithms would be unsupported", m.Name())
		}
	}
}

// randCloud draws points in [0,100)^dim, unit-normalized for Angular.
func randCloud(rng *rand.Rand, n, dim int, m Metric) geometry.Points {
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64()*100 + 0.001
	}
	if _, ok := m.(Angular); ok {
		norm, err := NormalizeRows(p)
		if err != nil {
			panic(err)
		}
		return norm
	}
	return p
}

func randUnit(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	var s float64
	for k := range v {
		v[k] = rng.NormFloat64()
		s += v[k] * v[k]
	}
	inv := 1 / math.Sqrt(s)
	for k := range v {
		v[k] *= inv
	}
	return v
}

func cloudBox(p geometry.Points) geometry.Box {
	b := geometry.EmptyBox(p.Dim)
	for i := 0; i < p.N; i++ {
		b.Extend(p.At(i))
	}
	return b
}

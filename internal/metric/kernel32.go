package metric

import (
	"fmt"
	"math"

	"parclust/internal/geometry"
)

// Kernel32 is the float32 fast-path companion of a Metric: hand-unrolled
// row kernels plus per-dimension lane accumulators for the k-d tree's
// dimension-blocked SoA leaf panels. Distances are computed and compared
// in the kernel's comparison space — squared Euclidean for the L2 family
// (l2, sql2, angular: squaring and the chord→angle map are monotone, so
// orderings are preserved) and the metric itself for l1/linf — while all
// spatial pruning keeps using the exact float64 box bounds, so a float32
// traversal diverges from the float64 one only by float32 rounding of the
// point-pair distances themselves, never by unsound pruning.
type Kernel32 struct {
	// Name is the canonical name of the underlying kernel.
	Name string

	// Sq reports that the comparison space is squared Euclidean (true for
	// l2, sql2, and angular). Such kernels can substitute directly into the
	// squared-space traversals (BCCP-Sq, mutual reachability).
	Sq bool

	// Row returns the comparison-space distance between two rows of equal
	// length. It runs four independent accumulator chains so the compiler
	// keeps partial sums in registers.
	Row func(a, b []float32) float32

	// Op selects the lane accumulator for the SoA panel scans. It is an
	// enum rather than a func value because the scan's caller keeps its
	// accumulators in a stack array: an indirect call would make escape
	// analysis assume the slice leaks and force that array to the heap on
	// every query, while a switch over Op resolves to direct calls of the
	// named lane functions below.
	Op LaneOp

	// Finish maps a comparison-space value (widened to float64) to the
	// metric's reported distance.
	Finish func(float64) float64

	// CmpRadius maps a metric-space radius to comparison space, so range
	// predicates `dist <= r` become `cmp <= CmpRadius(r)`.
	CmpRadius func(r float64) float64

	// PointBoxLB lower-bounds the comparison-space distance from q to any
	// point of box b, in exact float64 arithmetic.
	PointBoxLB func(q []float64, b geometry.Box) float64

	// PointBoxUB upper-bounds the comparison-space distance from q to any
	// point of box b, in exact float64 arithmetic.
	PointBoxUB func(q []float64, b geometry.Box) float64
}

// LaneOp names one of the lane accumulators (SqLane32, L1Lane32,
// LInfLane32).
type LaneOp uint8

const (
	LaneSq LaneOp = iota
	LaneL1
	LaneLInf
)

// Kernel32For returns the float32 fast-path family for m. Every built-in
// kernel is supported; ok is false for unknown third-party metrics.
func Kernel32For(m Metric) (k Kernel32, ok bool) {
	switch m.(type) {
	case L2:
		return Kernel32{
			Name: "l2", Sq: true,
			Row: SqDistRow32, Op: LaneSq,
			Finish:    math.Sqrt,
			CmpRadius: func(r float64) float64 { return r * r },
			PointBoxLB: func(q []float64, b geometry.Box) float64 {
				return geometry.SqDistPointBox(q, b)
			},
			PointBoxUB: func(q []float64, b geometry.Box) float64 {
				return geometry.SqMaxDistBoxes(pointBox32(q), b)
			},
		}, true
	case SqL2:
		return Kernel32{
			Name: "sql2", Sq: true,
			Row: SqDistRow32, Op: LaneSq,
			Finish:    ident64,
			CmpRadius: ident64,
			PointBoxLB: func(q []float64, b geometry.Box) float64 {
				return geometry.SqDistPointBox(q, b)
			},
			PointBoxUB: func(q []float64, b geometry.Box) float64 {
				return geometry.SqMaxDistBoxes(pointBox32(q), b)
			},
		}, true
	case Angular:
		return Kernel32{
			Name: "angular", Sq: true,
			Row: SqDistRow32, Op: LaneSq,
			Finish: angleFromSqChord,
			CmpRadius: func(r float64) float64 {
				// Invert angle→chord: squared chord of angle r, clamped to
				// the sphere's diameter.
				s := math.Sin(math.Min(r, math.Pi) / 2)
				return 4 * s * s
			},
			PointBoxLB: func(q []float64, b geometry.Box) float64 {
				return geometry.SqDistPointBox(q, b)
			},
			PointBoxUB: func(q []float64, b geometry.Box) float64 {
				return geometry.SqMaxDistBoxes(pointBox32(q), b)
			},
		}, true
	case L1:
		return Kernel32{
			Name: "l1", Sq: false,
			Row: L1DistRow32, Op: LaneL1,
			Finish:     ident64,
			CmpRadius:  ident64,
			PointBoxLB: L1{}.PointBoxLB,
			PointBoxUB: func(q []float64, b geometry.Box) float64 {
				return L1{}.BoxesUB(pointBox32(q), b)
			},
		}, true
	case LInf:
		return Kernel32{
			Name: "linf", Sq: false,
			Row: LInfDistRow32, Op: LaneLInf,
			Finish:     ident64,
			CmpRadius:  ident64,
			PointBoxLB: LInf{}.PointBoxLB,
			PointBoxUB: func(q []float64, b geometry.Box) float64 {
				return LInf{}.BoxesUB(pointBox32(q), b)
			},
		}, true
	}
	return Kernel32{}, false
}

func ident64(d float64) float64 { return d }

func pointBox32(q []float64) geometry.Box { return geometry.Box{Lo: q, Hi: q} }

// SqDistRow32 returns the squared Euclidean distance between equal-length
// float32 rows, accumulating four independent partial sums so the inner
// loop has no loop-carried dependency chain longer than one add.
func SqDistRow32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		d3 := a[3] - b[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		a, b = a[4:], b[4:]
	}
	for i := range a {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// L1DistRow32 returns the Manhattan distance between equal-length float32
// rows with the same 4× accumulator structure as SqDistRow32.
func L1DistRow32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		s0 += abs32(a[0] - b[0])
		s1 += abs32(a[1] - b[1])
		s2 += abs32(a[2] - b[2])
		s3 += abs32(a[3] - b[3])
		a, b = a[4:], b[4:]
	}
	for i := range a {
		s0 += abs32(a[i] - b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// LInfDistRow32 returns the Chebyshev distance between equal-length float32
// rows, folding four independent running maxima.
func LInfDistRow32(a, b []float32) float32 {
	var m0, m1, m2, m3 float32
	for len(a) >= 4 && len(b) >= 4 {
		m0 = max32(m0, abs32(a[0]-b[0]))
		m1 = max32(m1, abs32(a[1]-b[1]))
		m2 = max32(m2, abs32(a[2]-b[2]))
		m3 = max32(m3, abs32(a[3]-b[3]))
		a, b = a[4:], b[4:]
	}
	for i := range a {
		m0 = max32(m0, abs32(a[i]-b[i]))
	}
	return max32(max32(m0, m1), max32(m2, m3))
}

// SqLane32 folds one coordinate lane into squared-distance accumulators.
func SqLane32(acc, lane []float32, q float32) {
	lane = lane[:len(acc)]
	for j := range acc {
		d := lane[j] - q
		acc[j] += d * d
	}
}

// L1Lane32 folds one coordinate lane into L1 accumulators.
func L1Lane32(acc, lane []float32, q float32) {
	lane = lane[:len(acc)]
	for j := range acc {
		acc[j] += abs32(lane[j] - q)
	}
}

// LInfLane32 folds one coordinate lane into running-max accumulators.
func LInfLane32(acc, lane []float32, q float32) {
	lane = lane[:len(acc)]
	for j := range acc {
		if d := abs32(lane[j] - q); d > acc[j] {
			acc[j] = d
		}
	}
}

func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

func max32(a, b float32) float32 {
	if b > a {
		return b
	}
	return a
}

// MaxAbsCoord32 is the largest coordinate magnitude the float32 fast path
// accepts for the given dimension. It is chosen so that every squared-space
// accumulation stays at least 4× below math.MaxFloat32 in the worst case
// (all dim lanes at opposite extremes), so comparison-space values can
// never round up to +Inf.
func MaxAbsCoord32(dim int) float64 {
	if dim < 1 {
		dim = 1
	}
	return 0.25 * math.Sqrt(math.MaxFloat32/float64(dim))
}

// ValidateRows32 checks that every coordinate of pts is representable on
// the float32 fast path: finite and within MaxAbsCoord32(dim). It returns
// an error naming the first offending point; the float64 path remains
// available for such inputs.
func ValidateRows32(pts geometry.Points) error {
	bound := MaxAbsCoord32(pts.Dim)
	for i, v := range pts.Data {
		if math.Abs(v) > bound || math.IsNaN(v) {
			return fmt.Errorf("metric: point %d coordinate %d (%v) exceeds the float32 magnitude bound %.4g; use the float64 path for this dataset",
				i/pts.Dim, i%pts.Dim, v, bound)
		}
	}
	return nil
}

// Package metric defines the point-space distance kernels the clustering
// pipeline is parameterized over. A Metric supplies the point-to-point
// distance plus the bounding-box distance bounds the k-d tree, WSPD, and
// MST algorithms use for pruning; any implementation whose bounds are
// sound (LB below every realizable pair distance, UB above) plugs into
// every algorithm of the library.
//
// The WSPD-based MST algorithms (EMST-Naive/GFK/MemoGFK/WSPD-Borůvka and
// the HDBSCAN* variants) additionally require the metric to have the
// doubling property, which bounds the number of well-separated pairs;
// Doubling reports whether that analysis applies. All built-in kernels are
// doubling (SqL2 and Angular qualify as monotone transforms of L2, which
// preserve the minimum spanning tree and the separation structure).
package metric

import (
	"fmt"
	"math"

	"parclust/internal/geometry"
)

// Metric is a distance kernel over coordinate vectors together with the
// axis-aligned-box bounds used for spatial pruning.
type Metric interface {
	// Name is the canonical kernel name ("l2", "l1", ...).
	Name() string
	// Dist returns the distance between coordinate vectors a and b.
	Dist(a, b []float64) float64
	// PointBoxLB lower-bounds Dist(q, x) over all x in box b.
	PointBoxLB(q []float64, b geometry.Box) float64
	// BoxesLB lower-bounds Dist(x, y) over all x in a, y in b.
	BoxesLB(a, b geometry.Box) float64
	// BoxesUB upper-bounds Dist(x, y) over all x in a, y in b.
	BoxesUB(a, b geometry.Box) float64
	// Doubling reports whether the metric has the doubling property the
	// WSPD pair-count analysis requires (true for every built-in kernel).
	Doubling() bool
}

// L2 is the Euclidean metric, the kernel the source paper states its
// algorithms for.
type L2 struct{}

func (L2) Name() string                { return "l2" }
func (L2) Dist(a, b []float64) float64 { return math.Sqrt(geometry.SqDistVec(a, b)) }
func (L2) Doubling() bool              { return true }
func (L2) PointBoxLB(q []float64, b geometry.Box) float64 {
	return math.Sqrt(geometry.SqDistPointBox(q, b))
}
func (L2) BoxesLB(a, b geometry.Box) float64 { return math.Sqrt(geometry.SqDistBoxes(a, b)) }
func (L2) BoxesUB(a, b geometry.Box) float64 { return math.Sqrt(geometry.SqMaxDistBoxes(a, b)) }

// SqL2 is squared Euclidean distance. It is not a metric (the triangle
// inequality fails) but is a strictly monotone transform of L2, so it
// yields the same minimum spanning tree, the same k-NN sets, and the same
// DBSCAN* clusterings at radius eps² — with all reported weights squared.
type SqL2 struct{}

func (SqL2) Name() string                { return "sql2" }
func (SqL2) Dist(a, b []float64) float64 { return geometry.SqDistVec(a, b) }
func (SqL2) Doubling() bool              { return true }
func (SqL2) PointBoxLB(q []float64, b geometry.Box) float64 {
	return geometry.SqDistPointBox(q, b)
}
func (SqL2) BoxesLB(a, b geometry.Box) float64 { return geometry.SqDistBoxes(a, b) }
func (SqL2) BoxesUB(a, b geometry.Box) float64 { return geometry.SqMaxDistBoxes(a, b) }

// L1 is the Manhattan / taxicab metric.
type L1 struct{}

func (L1) Name() string   { return "l1" }
func (L1) Doubling() bool { return true }

func (L1) Dist(a, b []float64) float64 {
	var s float64
	for k := range a {
		s += math.Abs(a[k] - b[k])
	}
	return s
}

func (L1) PointBoxLB(q []float64, b geometry.Box) float64 {
	var s float64
	for k, v := range q {
		switch {
		case v < b.Lo[k]:
			s += b.Lo[k] - v
		case v > b.Hi[k]:
			s += v - b.Hi[k]
		}
	}
	return s
}

func (L1) BoxesLB(a, b geometry.Box) float64 {
	var s float64
	for k := range a.Lo {
		s += axisGap(a, b, k)
	}
	return s
}

func (L1) BoxesUB(a, b geometry.Box) float64 {
	var s float64
	for k := range a.Lo {
		s += axisSpan(a, b, k)
	}
	return s
}

// LInf is the Chebyshev / maximum metric.
type LInf struct{}

func (LInf) Name() string   { return "linf" }
func (LInf) Doubling() bool { return true }

func (LInf) Dist(a, b []float64) float64 {
	var m float64
	for k := range a {
		if d := math.Abs(a[k] - b[k]); d > m {
			m = d
		}
	}
	return m
}

func (LInf) PointBoxLB(q []float64, b geometry.Box) float64 {
	var m float64
	for k, v := range q {
		var d float64
		switch {
		case v < b.Lo[k]:
			d = b.Lo[k] - v
		case v > b.Hi[k]:
			d = v - b.Hi[k]
		}
		if d > m {
			m = d
		}
	}
	return m
}

func (LInf) BoxesLB(a, b geometry.Box) float64 {
	var m float64
	for k := range a.Lo {
		if d := axisGap(a, b, k); d > m {
			m = d
		}
	}
	return m
}

func (LInf) BoxesUB(a, b geometry.Box) float64 {
	var m float64
	for k := range a.Lo {
		if d := axisSpan(a, b, k); d > m {
			m = d
		}
	}
	return m
}

// Angular is the angle (in radians) between unit vectors. Input points
// MUST be unit-normalized (the public API normalizes a copy and rejects
// zero vectors); on the unit sphere the angle is the strictly monotone
// transform 2·asin(chord/2) of the L2 chord length, so the box bounds are
// the transformed L2 box bounds and the MST matches the cosine-distance
// MST exactly.
type Angular struct{}

func (Angular) Name() string   { return "angular" }
func (Angular) Doubling() bool { return true }

func (Angular) Dist(a, b []float64) float64 {
	return angleFromSqChord(geometry.SqDistVec(a, b))
}

func (Angular) PointBoxLB(q []float64, b geometry.Box) float64 {
	return angleFromSqChord(geometry.SqDistPointBox(q, b))
}

func (Angular) BoxesLB(a, b geometry.Box) float64 {
	return angleFromSqChord(geometry.SqDistBoxes(a, b))
}

func (Angular) BoxesUB(a, b geometry.Box) float64 {
	return angleFromSqChord(geometry.SqMaxDistBoxes(a, b))
}

// angleFromSqChord maps a squared chord length between unit vectors to the
// subtended angle, clamping against rounding past the sphere's diameter.
func angleFromSqChord(sq float64) float64 {
	h := math.Sqrt(sq) / 2
	if h > 1 {
		h = 1
	}
	return 2 * math.Asin(h)
}

// axisGap is the separation of the two boxes along axis k (0 when their
// projections overlap).
func axisGap(a, b geometry.Box, k int) float64 {
	switch {
	case b.Lo[k] > a.Hi[k]:
		return b.Lo[k] - a.Hi[k]
	case a.Lo[k] > b.Hi[k]:
		return a.Lo[k] - b.Hi[k]
	}
	return 0
}

// axisSpan is the farthest separation of any two projections of the boxes
// along axis k.
func axisSpan(a, b geometry.Box, k int) float64 {
	d := math.Max(a.Hi[k]-b.Lo[k], b.Hi[k]-a.Lo[k])
	if d < 0 {
		return 0
	}
	return d
}

// All returns one instance of every built-in kernel, in a fixed order.
func All() []Metric {
	return []Metric{L2{}, SqL2{}, L1{}, LInf{}, Angular{}}
}

// Parse resolves a kernel by name, accepting the common aliases.
func Parse(name string) (Metric, error) {
	switch name {
	case "l2", "euclidean":
		return L2{}, nil
	case "sql2", "sqeuclidean":
		return SqL2{}, nil
	case "l1", "manhattan":
		return L1{}, nil
	case "linf", "chebyshev":
		return LInf{}, nil
	case "angular", "cosine":
		return Angular{}, nil
	}
	return nil, fmt.Errorf("metric: unknown kernel %q (want l2|sql2|l1|linf|angular)", name)
}

// IsL2 reports whether m is the plain Euclidean kernel, which the k-d tree
// and BCCP use to select their monomorphized squared-distance fast paths.
func IsL2(m Metric) bool {
	_, ok := m.(L2)
	return ok
}

// NormalizeRows returns a unit-normalized copy of pts for the Angular
// kernel, or an error naming the first zero-length row.
func NormalizeRows(pts geometry.Points) (geometry.Points, error) {
	out := geometry.NewPoints(pts.N, pts.Dim)
	copy(out.Data, pts.Data)
	for i := 0; i < out.N; i++ {
		row := out.At(i)
		// Scale by the largest magnitude before squaring (hypot-style) so
		// rows with extreme coordinates neither overflow the squared norm
		// to +Inf (silently collapsing the row to the zero vector) nor
		// underflow it to 0 (falsely rejecting a valid direction).
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			return geometry.Points{}, fmt.Errorf("metric: point %d is the zero vector; the angular kernel requires nonzero points", i)
		}
		var s float64
		for _, v := range row {
			u := v / maxAbs
			s += u * u
		}
		inv := 1 / math.Sqrt(s)
		for k := range row {
			row[k] = row[k] / maxAbs * inv
		}
	}
	return out, nil
}

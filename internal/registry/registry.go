// Package registry implements the multi-dataset serving store behind the
// parclustd daemon: a sharded name -> value map with a configurable memory
// budget, least-recently-used eviction, and per-entry reference counting.
//
// The memory budget is enforced at admission: Put evicts the
// least-recently-used unpinned entries until the new value fits, and fails
// with ErrOverBudget when everything still resident is pinned by in-flight
// queries (a failed admission never disturbs a pinned entry). Explicit
// eviction and replacement never release a value out from under a query:
// Acquire pins an entry with a reference count, an evicted entry merely
// becomes invisible to new Acquires, and its bytes stay charged against
// the budget (and its OnRelease callback deferred) until the last
// outstanding Handle is released. Values themselves are never mutated by
// the registry, so a pinned value remains fully usable after eviction.
//
// All methods are safe for concurrent use. Lookups take one shard RLock
// plus one LRU-list lock; the shards keep concurrent queries for different
// datasets from contending on a single map mutex.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	// ErrTooLarge reports a value whose size alone exceeds the budget.
	ErrTooLarge = errors.New("registry: value exceeds the memory budget")
	// ErrOverBudget reports that the budget is exhausted and every resident
	// byte is pinned by in-flight queries, so nothing can be evicted.
	ErrOverBudget = errors.New("registry: memory budget exhausted by in-use entries")
)

// ReleaseCause tells an OnRelease callback why the entry left the
// registry, so a persistence layer can distinguish "spill this, the budget
// pushed it out" from "the user deleted it".
type ReleaseCause uint8

const (
	// CausePressure: evicted by Put's LRU scan to make room under the
	// memory budget. The natural spill-to-disk trigger.
	CausePressure ReleaseCause = iota
	// CauseReplaced: a Put stored a new value under the same key.
	CauseReplaced
	// CauseEvicted: removed by an explicit Evict call.
	CauseEvicted
)

func (c ReleaseCause) String() string {
	switch c {
	case CausePressure:
		return "pressure"
	case CauseReplaced:
		return "replaced"
	case CauseEvicted:
		return "evicted"
	}
	return "unknown"
}

// Registry is a sharded name -> value store with an LRU memory budget.
// maxBytes <= 0 disables the budget (nothing is ever auto-evicted).
type Registry[V any] struct {
	// OnRelease, when non-nil, is called exactly once per evicted entry —
	// after the entry has been removed from the map AND its last
	// outstanding Handle released — from whichever goroutine performed the
	// final step, with the cause recorded when the entry was claimed. Set
	// it before the registry is shared; it must not call back into the
	// registry for the same key.
	OnRelease func(key string, val V, cause ReleaseCause)

	maxBytes int64
	mask     uint32
	shards   []shard[V]

	// mu guards the LRU list (oldest first), the byte account, and the
	// eviction counter. Entry pin state lives under each entry's own mutex.
	// Lock order: mu may nest an entry mutex inside it (Put's victim scan);
	// no path may wait on mu while holding an entry mutex.
	mu         sync.Mutex
	head, tail *entry[V]
	bytes      int64
	evictions  int64
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]*entry[V]
}

type entry[V any] struct {
	key   string
	val   V
	bytes int64
	// extra is an adjustable charge on top of the admitted bytes, updated
	// by Recharge when a value's estimated size changes after admission
	// (e.g. a dataset's cut-result caches filling under sweep traffic). It
	// is credited back together with bytes when the entry drains.
	extra atomic.Int64

	// mu guards the pin state below.
	mu       sync.Mutex
	refs     int
	dead     bool // no longer acquirable; removed (or being removed) from its shard
	released bool // bytes returned to the budget and OnRelease fired
	// cause records why the entry was retired; set together with dead
	// (under mu) so a deferred release reports the original reason.
	cause ReleaseCause

	// LRU links, guarded by Registry.mu. inLRU distinguishes "off-list
	// because evicted" from "head/tail of list".
	prev, next *entry[V]
	inLRU      bool
}

// Handle is a pinned reference to a stored value: the value it exposes
// cannot be released by eviction until Release is called. Release is
// idempotent.
type Handle[V any] struct {
	r    *Registry[V]
	e    *entry[V]
	done atomic.Bool
}

// Value returns the pinned value.
func (h *Handle[V]) Value() V { return h.e.val }

// Key returns the name the value was stored under.
func (h *Handle[V]) Key() string { return h.e.key }

// Bytes returns the size currently charged for the value: the admitted
// size plus any post-admission Recharge adjustment.
func (h *Handle[V]) Bytes() int64 { return h.e.bytes + h.e.extra.Load() }

// Release unpins the value. If the entry was evicted while this handle was
// outstanding and this was the last reference, the entry's bytes are
// returned to the budget now and OnRelease fires.
func (h *Handle[V]) Release() {
	if !h.done.CompareAndSwap(false, true) {
		return
	}
	e := h.e
	e.mu.Lock()
	e.refs--
	free := e.dead && e.refs == 0 && !e.released
	if free {
		e.released = true
	}
	e.mu.Unlock()
	if free {
		h.r.creditBytes(e)
	}
}

// New returns a registry with the given memory budget (<= 0: unlimited)
// and shard count (<= 0: 16; rounded up to a power of two).
func New[V any](maxBytes int64, shards int) *Registry[V] {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry[V]{maxBytes: maxBytes, mask: uint32(n - 1), shards: make([]shard[V], n)}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*entry[V])
	}
	return r
}

// shardFor hashes key with FNV-1a; the shard count is a power of two.
func (r *Registry[V]) shardFor(key string) *shard[V] {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &r.shards[h&r.mask]
}

// Put stores val under key with the given size, replacing any existing
// entry (the old value is evicted; its release is deferred if queries
// still pin it). When the budget would be exceeded, least-recently-used
// unpinned entries are evicted first, counting the replaced entry's own
// unpinned bytes as reclaimable; Put fails with ErrOverBudget when the
// resident pinned bytes leave no room, and with ErrTooLarge if bytes
// exceeds the whole budget. A failed Put changes nothing for the key: the
// existing entry (pinned or not) stays resident and serving.
func (r *Registry[V]) Put(key string, val V, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("registry: negative size %d for %q", bytes, key)
	}
	if r.maxBytes > 0 && bytes > r.maxBytes {
		return ErrTooLarge
	}
	s := r.shardFor(key)
	s.mu.RLock()
	old := s.m[key]
	s.mu.RUnlock()

	e := &entry[V]{key: key, val: val, bytes: bytes}
	var oldClaimed bool
	r.mu.Lock()
	// reclaimable reports how many bytes retiring the old same-key entry
	// would free right now (0 when it is pinned, dead, or absent). Nesting
	// an entry mutex under r.mu is safe: no other path waits on r.mu while
	// holding an entry mutex.
	reclaimable := func() int64 {
		if old == nil {
			return 0
		}
		old.mu.Lock()
		defer old.mu.Unlock()
		if old.dead || old.refs > 0 {
			return 0
		}
		return old.bytes + old.extra.Load()
	}
	for r.maxBytes > 0 && r.bytes+bytes-reclaimable() > r.maxBytes {
		// Find the least-recently-used entry that no query pins. Pinned
		// entries are skipped — evicting them could not free their bytes
		// anyway — and the old same-key entry is reclaimed only after
		// admission is certain, so a failed admission never disturbs a
		// resident entry.
		var victim *entry[V]
		for cand := r.head; cand != nil; cand = cand.next {
			if cand == old {
				continue
			}
			cand.mu.Lock()
			if cand.refs == 0 && !cand.dead {
				// Claim it before any Acquire can pin it; the bytes are
				// credited below, so mark it released here.
				cand.dead = true
				cand.released = true
				cand.cause = CausePressure
				cand.mu.Unlock()
				victim = cand
				break
			}
			cand.mu.Unlock()
		}
		if victim == nil {
			r.mu.Unlock()
			return ErrOverBudget
		}
		r.unlink(victim)
		r.bytes -= victim.bytes + victim.extra.Load()
		r.evictions++
		r.mu.Unlock()
		// Remove the victim from its shard unless a concurrent Evict or
		// Put already did, then notify.
		vs := r.shardFor(victim.key)
		vs.mu.Lock()
		if vs.m[victim.key] == victim {
			delete(vs.m, victim.key)
		}
		vs.mu.Unlock()
		if r.OnRelease != nil {
			r.OnRelease(victim.key, victim.val, CausePressure)
		}
		r.mu.Lock()
	}
	// Admission is certain: reclaim the replaced entry now if it is still
	// unpinned (a pinned one is retired with deferred release at the
	// insert below — its bytes stay charged until its queries drain; if it
	// was pinned after the loop relied on reclaiming it, the budget can
	// transiently overshoot by that one entry until then).
	if old != nil {
		old.mu.Lock()
		if !old.dead && old.refs == 0 {
			old.dead = true
			old.released = true
			old.cause = CauseReplaced
			oldClaimed = true
			r.bytes -= old.bytes + old.extra.Load()
			r.evictions++
			if old.inLRU {
				r.unlink(old)
			}
		}
		old.mu.Unlock()
	}
	r.bytes += bytes
	r.mu.Unlock()

	if oldClaimed {
		s.mu.Lock()
		if s.m[key] == old {
			delete(s.m, key)
		}
		s.mu.Unlock()
		if r.OnRelease != nil {
			r.OnRelease(old.key, old.val, CauseReplaced)
		}
	}

	// Insert into the shard before linking into the LRU: a concurrent
	// admission scan must not be able to evict an entry that no Acquire
	// can see yet.
	s.mu.Lock()
	prev := s.m[key]
	s.m[key] = e
	s.mu.Unlock()
	if prev != nil {
		// The old entry was pinned (deferred release), or a concurrent Put
		// for the same key slipped in; retire the loser.
		r.retire(prev, CauseReplaced)
	}

	r.mu.Lock()
	e.mu.Lock()
	if !e.dead {
		// A concurrent Evict may have already retired e through the shard
		// map; a dead entry must not re-enter the LRU.
		r.pushBack(e)
		e.inLRU = true
	}
	e.mu.Unlock()
	r.mu.Unlock()
	return nil
}

// pin looks up key and takes a reference on the live entry; the false
// result covers absent and evicted keys alike.
func (r *Registry[V]) pin(key string) (*Handle[V], bool) {
	s := r.shardFor(key)
	s.mu.RLock()
	e := s.m[key]
	s.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return nil, false
	}
	e.refs++
	e.mu.Unlock()
	return &Handle[V]{r: r, e: e}, true
}

// Acquire pins and returns the value stored under key, bumping its LRU
// recency. The second result is false when the key is absent or evicted.
// Callers must Release the handle when the query is done.
func (r *Registry[V]) Acquire(key string) (*Handle[V], bool) {
	h, ok := r.pin(key)
	if !ok {
		return nil, false
	}
	e := h.e
	r.mu.Lock()
	if e.inLRU {
		r.unlink(e)
		r.pushBack(e)
		e.inLRU = true
	}
	r.mu.Unlock()
	return h, true
}

// Peek is Acquire without the LRU recency bump, for admin surfaces (stats,
// listings) that must not distort the eviction order. The handle pins the
// value exactly like Acquire's and must be Released.
func (r *Registry[V]) Peek(key string) (*Handle[V], bool) {
	return r.pin(key)
}

// Evict removes key from the registry so no future Acquire can see it, and
// reports whether it was present. Bytes (and OnRelease) are deferred until
// outstanding handles drain; queries already holding the value keep a
// fully usable reference.
func (r *Registry[V]) Evict(key string) bool {
	s := r.shardFor(key)
	s.mu.Lock()
	e := s.m[key]
	if e != nil {
		delete(s.m, key)
	}
	s.mu.Unlock()
	if e == nil {
		return false
	}
	r.retire(e, CauseEvicted)
	return true
}

// retire finalizes an entry that has been removed from its shard map:
// marks it dead, unlinks it from the LRU, counts the eviction, and credits
// its bytes back now if unpinned (the last Release does it otherwise).
func (r *Registry[V]) retire(e *entry[V], cause ReleaseCause) {
	e.mu.Lock()
	if e.dead {
		// Already retired by a racing path; bytes are handled exactly once
		// via the released flag, nothing left to do.
		e.mu.Unlock()
		return
	}
	e.dead = true
	e.cause = cause
	free := e.refs == 0 && !e.released
	if free {
		e.released = true
	}
	e.mu.Unlock()
	r.mu.Lock()
	if e.inLRU {
		r.unlink(e)
	}
	r.evictions++
	r.mu.Unlock()
	if free {
		r.creditBytes(e)
	}
}

// creditBytes returns a retired entry's bytes (admitted plus any Recharge
// adjustment) to the budget and fires OnRelease. Called exactly once per
// entry (guarded by entry.released).
func (r *Registry[V]) creditBytes(e *entry[V]) {
	r.mu.Lock()
	r.bytes -= e.bytes + e.extra.Load()
	r.mu.Unlock()
	if r.OnRelease != nil {
		// e.cause was written under e.mu together with dead; every path
		// reaching here has since observed dead under e.mu.
		r.OnRelease(e.key, e.val, e.cause)
	}
}

// Recharge updates the bytes charged for the live entry under key to
// newTotal, reporting whether the key was resident. It exists for values
// whose estimated size legitimately changes after admission — the daemon
// re-charges a dataset after a sweep has populated its cut-result caches —
// and adjusts accounting only: it never evicts, so the budget may
// transiently overshoot until the next Put applies pressure. A negative
// newTotal is clamped to the admitted size.
func (r *Registry[V]) Recharge(key string, newTotal int64) bool {
	s := r.shardFor(key)
	s.mu.RLock()
	e := s.m[key]
	s.mu.RUnlock()
	if e == nil {
		return false
	}
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return false
	}
	if newTotal < e.bytes {
		newTotal = e.bytes
	}
	delta := newTotal - (e.bytes + e.extra.Load())
	e.extra.Add(delta)
	e.mu.Unlock()
	r.mu.Lock()
	r.bytes += delta
	r.mu.Unlock()
	return true
}

// unlink removes e from the LRU list (Registry.mu held).
func (r *Registry[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		r.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		r.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
}

// pushBack appends e as the most recently used entry (Registry.mu held).
func (r *Registry[V]) pushBack(e *entry[V]) {
	e.prev = r.tail
	e.next = nil
	if r.tail != nil {
		r.tail.next = e
	} else {
		r.head = e
	}
	r.tail = e
}

// Keys returns the resident keys in sorted order.
func (r *Registry[V]) Keys() []string {
	var keys []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k := range s.m {
			keys = append(keys, k)
		}
		s.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of resident (acquirable) entries.
func (r *Registry[V]) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Stats is a snapshot of the registry occupancy.
type Stats struct {
	// Entries is the number of resident (acquirable) entries.
	Entries int
	// Bytes is the charged budget, including evicted entries whose release
	// is deferred behind in-flight queries.
	Bytes int64
	// MaxBytes is the configured budget (<= 0: unlimited).
	MaxBytes int64
	// Evictions counts entries removed for any reason: LRU pressure,
	// explicit Evict, and Put replacement.
	Evictions int64
}

// Stats returns a coherent snapshot of the registry occupancy: the entry
// count, byte total, and eviction count are read in one critical section,
// so a scrape during churn never reports a combination that never existed
// (an entry is charged under r.mu before it becomes acquirable, and
// uncharged no earlier than its retirement, so Bytes always covers every
// counted entry). Taking shard read locks and entry mutexes inside r.mu
// follows the documented lock order: no path waits on r.mu while holding
// either.
func (r *Registry[V]) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		ents := make([]*entry[V], 0, len(s.m))
		for _, e := range s.m {
			ents = append(ents, e)
		}
		s.mu.RUnlock()
		for _, e := range ents {
			e.mu.Lock()
			if !e.dead {
				n++
			}
			e.mu.Unlock()
		}
	}
	return Stats{Entries: n, Bytes: r.bytes, MaxBytes: r.maxBytes, Evictions: r.evictions}
}

package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPutAcquireEvict(t *testing.T) {
	r := New[string](0, 4)
	if err := r.Put("a", "alpha", 10); err != nil {
		t.Fatal(err)
	}
	h, ok := r.Acquire("a")
	if !ok || h.Value() != "alpha" || h.Key() != "a" || h.Bytes() != 10 {
		t.Fatalf("Acquire(a) = %+v, %v", h, ok)
	}
	h.Release()
	if _, ok := r.Acquire("missing"); ok {
		t.Fatal("acquired a key that was never stored")
	}
	if !r.Evict("a") {
		t.Fatal("Evict(a) reported absent")
	}
	if r.Evict("a") {
		t.Fatal("second Evict(a) reported present")
	}
	if _, ok := r.Acquire("a"); ok {
		t.Fatal("acquired an evicted key")
	}
	if s := r.Stats(); s.Entries != 0 || s.Bytes != 0 || s.Evictions != 1 {
		t.Fatalf("stats after evict: %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	r := New[int](30, 4)
	for i, k := range []string{"a", "b", "c"} {
		if err := r.Put(k, i, 10); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" becomes the least recently used.
	h, _ := r.Acquire("a")
	h.Release()
	if err := r.Put("d", 3, 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Acquire("b"); ok {
		t.Fatal("LRU victim b still acquirable")
	}
	for _, k := range []string{"a", "c", "d"} {
		h, ok := r.Acquire(k)
		if !ok {
			t.Fatalf("%s was evicted, want b only", k)
		}
		h.Release()
	}
	if s := r.Stats(); s.Entries != 3 || s.Bytes != 30 || s.Evictions != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAdmissionErrors(t *testing.T) {
	r := New[int](25, 1)
	if err := r.Put("huge", 0, 26); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Put: %v, want ErrTooLarge", err)
	}
	if err := r.Put("a", 1, 20); err != nil {
		t.Fatal(err)
	}
	// Pin "a": the budget cannot make room, so admission must fail without
	// disturbing the pinned entry.
	h, _ := r.Acquire("a")
	if err := r.Put("b", 2, 10); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("Put over pinned budget: %v, want ErrOverBudget", err)
	}
	if hv, ok := r.Acquire("a"); !ok {
		t.Fatal("pinned entry lost by failed admission")
	} else {
		hv.Release()
	}
	h.Release()
	// Unpinned, the same Put succeeds by evicting "a".
	if err := r.Put("b", 2, 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Acquire("a"); ok {
		t.Fatal("a should have been evicted to admit b")
	}
}

func TestReplaceSameKey(t *testing.T) {
	released := make(map[string]int)
	r := New[int](0, 2)
	r.OnRelease = func(key string, val int, _ ReleaseCause) { released[fmt.Sprintf("%s=%d", key, val)]++ }
	if err := r.Put("k", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", 2, 20); err != nil {
		t.Fatal(err)
	}
	h, ok := r.Acquire("k")
	if !ok || h.Value() != 2 {
		t.Fatalf("Acquire after replace = %v, %v", h.Value(), ok)
	}
	h.Release()
	if released["k=1"] != 1 || released["k=2"] != 0 {
		t.Fatalf("OnRelease calls: %v", released)
	}
	if s := r.Stats(); s.Entries != 1 || s.Bytes != 20 || s.Evictions != 1 {
		t.Fatalf("stats after replace: %+v", s)
	}
}

// TestFailedReplacementKeepsOldEntry: when a same-key Put cannot be
// admitted, the existing entry must remain resident and serving — a 507'd
// re-upload must never destroy the dataset it failed to replace.
func TestFailedReplacementKeepsOldEntry(t *testing.T) {
	r := New[int](30, 1)
	if err := r.Put("pin", 1, 20); err != nil {
		t.Fatal(err)
	}
	hp, _ := r.Acquire("pin")
	if err := r.Put("demo", 2, 10); err != nil {
		t.Fatal(err)
	}
	// Needs 25; even reclaiming old demo (10) leaves 20(pinned)+25 > 30.
	if err := r.Put("demo", 3, 25); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over-budget replacement: %v, want ErrOverBudget", err)
	}
	h, ok := r.Acquire("demo")
	if !ok || h.Value() != 2 {
		t.Fatalf("old entry destroyed by failed replacement: %v, %v", h, ok)
	}
	h.Release()
	hp.Release()
	if s := r.Stats(); s.Entries != 2 || s.Bytes != 30 || s.Evictions != 0 {
		t.Fatalf("failed replacement mutated the registry: %+v", s)
	}
}

// TestReplacementReclaimsItsOwnBytes: replacing an entry counts the old
// entry's own unpinned bytes as reclaimable during admission, so an
// upgrade that fits only after removing its predecessor succeeds.
func TestReplacementReclaimsItsOwnBytes(t *testing.T) {
	r := New[int](12, 1)
	if err := r.Put("only", 1, 10); err != nil {
		t.Fatal(err)
	}
	// 10 resident + 11 new > 12, but reclaiming the old 10 admits it.
	if err := r.Put("only", 2, 11); err != nil {
		t.Fatalf("self-reclaiming replacement failed: %v", err)
	}
	h, ok := r.Acquire("only")
	if !ok || h.Value() != 2 {
		t.Fatalf("Acquire after replacement = %v, %v", h, ok)
	}
	h.Release()
	if s := r.Stats(); s.Entries != 1 || s.Bytes != 11 || s.Evictions != 1 {
		t.Fatalf("stats after self-reclaim: %+v", s)
	}
}

// TestEvictionDefersReleaseUntilQueriesDrain is the core safety contract:
// evicting an entry that an in-flight query holds must keep the value
// usable and its bytes charged until the last handle is released.
func TestEvictionDefersReleaseUntilQueriesDrain(t *testing.T) {
	var releases atomic.Int64
	r := New[string](0, 2)
	r.OnRelease = func(string, string, ReleaseCause) { releases.Add(1) }
	if err := r.Put("x", "payload", 40); err != nil {
		t.Fatal(err)
	}
	h1, _ := r.Acquire("x")
	h2, _ := r.Acquire("x")
	if !r.Evict("x") {
		t.Fatal("Evict reported absent")
	}
	if _, ok := r.Acquire("x"); ok {
		t.Fatal("evicted entry still acquirable")
	}
	if releases.Load() != 0 {
		t.Fatal("OnRelease fired while queries still hold the value")
	}
	if s := r.Stats(); s.Bytes != 40 {
		t.Fatalf("evicted-but-pinned bytes uncharged: %+v", s)
	}
	if h1.Value() != "payload" {
		t.Fatal("pinned value corrupted after eviction")
	}
	h1.Release()
	h1.Release() // idempotent
	if releases.Load() != 0 {
		t.Fatal("OnRelease fired before the last handle released")
	}
	h2.Release()
	if releases.Load() != 1 {
		t.Fatalf("OnRelease fired %d times, want 1", releases.Load())
	}
	if s := r.Stats(); s.Bytes != 0 {
		t.Fatalf("bytes not credited after drain: %+v", s)
	}
}

// blob is the payload for the race test: a checksummed buffer whose
// OnRelease flips released, so any query observing released==true while
// holding a handle has caught a mid-query free.
type blob struct {
	data     []byte
	sum      byte
	released atomic.Bool
}

func newBlob(rng *rand.Rand) *blob {
	b := &blob{data: make([]byte, 256)}
	rng.Read(b.data)
	for _, v := range b.data {
		b.sum += v
	}
	return b
}

// TestEvictUnderLoadRace hammers one registry from concurrent readers,
// writers (Puts forcing LRU eviction), and explicit evictors under -race:
// the regression test for eviction freeing an entry mid-query. Readers
// verify their pinned blob is never released and never corrupted.
func TestEvictUnderLoadRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; the dedicated CI race step runs it without -short")
	}
	const (
		keys     = 8
		perEntry = 100
		budget   = perEntry * 4 // at most half the keys resident
		iters    = 400
		readers  = 4
		writers  = 2
		evictors = 1
	)
	var releases atomic.Int64
	r := New[*blob](budget, 4)
	r.OnRelease = func(_ string, b *blob, _ ReleaseCause) {
		if b.released.Swap(true) {
			t.Error("OnRelease fired twice for one entry")
		}
		releases.Add(1)
	}
	keyOf := func(i int) string { return fmt.Sprintf("ds-%d", i%keys) }
	seed := func(rng *rand.Rand, i int) {
		// ErrOverBudget is expected under pin pressure; drop the Put.
		if err := r.Put(keyOf(i), newBlob(rng), perEntry); err != nil && !errors.Is(err, ErrOverBudget) {
			t.Error(err)
		}
	}
	{
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < keys; i++ {
			seed(rng, i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				seed(rng, rng.Intn(keys))
			}
		}(w)
	}
	for ev := 0; ev < evictors; ev++ {
		wg.Add(1)
		go func(ev int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + ev)))
			for i := 0; i < iters; i++ {
				r.Evict(keyOf(rng.Intn(keys)))
			}
		}(ev)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + rd)))
			for i := 0; i < iters; i++ {
				h, ok := r.Acquire(keyOf(rng.Intn(keys)))
				if !ok {
					continue
				}
				b := h.Value()
				if b.released.Load() {
					t.Error("acquired blob was released mid-query")
				}
				var sum byte
				for _, v := range b.data {
					sum += v
				}
				if sum != b.sum {
					t.Error("pinned blob corrupted")
				}
				if b.released.Load() {
					t.Error("blob released while still pinned")
				}
				h.Release()
			}
		}(rd)
	}
	wg.Wait()
	// All handles are released: the byte account must equal the resident
	// entries exactly, and every removed entry must have been released
	// exactly once.
	s := r.Stats()
	if want := int64(r.Len()) * perEntry; s.Bytes != want {
		t.Fatalf("bytes=%d, want %d (%d resident entries)", s.Bytes, want, r.Len())
	}
	if s.Bytes > budget {
		t.Fatalf("resident bytes %d exceed budget %d after drain", s.Bytes, budget)
	}
	if releases.Load() != s.Evictions {
		t.Fatalf("releases=%d, evictions=%d: some removed entry never released (or released twice)",
			releases.Load(), s.Evictions)
	}
}

func TestKeysAndLen(t *testing.T) {
	r := New[int](0, 8)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := r.Put(k, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Keys()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

// TestReleaseCauses pins down which cause reaches OnRelease on every
// removal path, including releases deferred behind outstanding handles.
func TestReleaseCauses(t *testing.T) {
	causes := make(map[string]ReleaseCause)
	r := New[int](25, 2)
	r.OnRelease = func(key string, _ int, cause ReleaseCause) { causes[key] = cause }

	// LRU pressure: admitting "c" pushes out "a".
	for _, k := range []string{"a", "b"} {
		if err := r.Put(k, 0, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Put("c", 0, 10); err != nil {
		t.Fatal(err)
	}
	if causes["a"] != CausePressure {
		t.Fatalf("pressure eviction reported %v", causes["a"])
	}
	// Same-key replacement.
	if err := r.Put("b", 1, 10); err != nil {
		t.Fatal(err)
	}
	if causes["b"] != CauseReplaced {
		t.Fatalf("replacement reported %v", causes["b"])
	}
	// Explicit evict, deferred behind a pinned handle: the cause recorded
	// at eviction time must survive until the drain.
	h, _ := r.Acquire("c")
	r.Evict("c")
	if _, ok := causes["c"]; ok {
		t.Fatal("OnRelease fired while pinned")
	}
	h.Release()
	if causes["c"] != CauseEvicted {
		t.Fatalf("deferred explicit eviction reported %v", causes["c"])
	}
	// Pinned same-key replacement defers with CauseReplaced.
	h, _ = r.Acquire("b")
	if err := r.Put("b", 2, 10); err != nil {
		t.Fatal(err)
	}
	delete(causes, "b")
	h.Release()
	if causes["b"] != CauseReplaced {
		t.Fatalf("deferred replacement reported %v", causes["b"])
	}
	if CausePressure.String() != "pressure" || CauseReplaced.String() != "replaced" ||
		CauseEvicted.String() != "evicted" || ReleaseCause(9).String() != "unknown" {
		t.Fatal("ReleaseCause.String mismatch")
	}
}

// TestStatsCoherentUnderChurn scrapes Stats while writers churn equal-size
// entries. Every entry charges exactly perEntry bytes no later than it
// becomes countable, so a coherent snapshot always satisfies
// Bytes >= Entries*perEntry; the pre-fix torn read (Entries outside the
// critical section) violates it readily under this load.
func TestStatsCoherentUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; the dedicated CI race step runs it without -short")
	}
	const (
		perEntry = 64
		keys     = 16
		iters    = 300
		writers  = 4
		scrapers = 2
	)
	r := New[int](0, 4)
	var writersWG, scrapersWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k-%d", (w*iters+i)%keys)
				if err := r.Put(k, i, perEntry); err != nil {
					t.Error(err)
				}
				if i%3 == 0 {
					r.Evict(k)
				}
			}
		}(w)
	}
	for sc := 0; sc < scrapers; sc++ {
		scrapersWG.Add(1)
		go func() {
			defer scrapersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Stats()
				if s.Bytes < int64(s.Entries)*perEntry {
					t.Errorf("torn stats: %d entries but only %d bytes", s.Entries, s.Bytes)
					return
				}
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	scrapersWG.Wait()
}

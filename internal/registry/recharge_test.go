package registry

import "testing"

func TestRecharge(t *testing.T) {
	r := New[string](100, 1)
	if err := r.Put("a", "alpha", 10); err != nil {
		t.Fatal(err)
	}
	if r.Recharge("missing", 50) {
		t.Fatal("Recharge reported an absent key resident")
	}

	// Growing the charge is visible in both the handle and the occupancy.
	if !r.Recharge("a", 30) {
		t.Fatal("Recharge(a) reported absent")
	}
	h, _ := r.Acquire("a")
	if h.Bytes() != 30 {
		t.Fatalf("Bytes after recharge = %d, want 30", h.Bytes())
	}
	h.Release()
	if s := r.Stats(); s.Bytes != 30 {
		t.Fatalf("registry bytes after recharge = %d, want 30", s.Bytes)
	}

	// Recharging is idempotent on the total, not additive.
	r.Recharge("a", 30)
	if s := r.Stats(); s.Bytes != 30 {
		t.Fatalf("repeat recharge changed bytes to %d", s.Bytes)
	}

	// Shrinking below the admitted size clamps to it.
	r.Recharge("a", 3)
	if s := r.Stats(); s.Bytes != 10 {
		t.Fatalf("bytes after under-clamped recharge = %d, want 10", s.Bytes)
	}

	// Eviction credits the admitted bytes plus the extra charge.
	r.Recharge("a", 40)
	r.Evict("a")
	if s := r.Stats(); s.Bytes != 0 {
		t.Fatalf("bytes after evicting recharged entry = %d, want 0", s.Bytes)
	}
	if r.Recharge("a", 40) {
		t.Fatal("Recharge succeeded on an evicted key")
	}
}

func TestRechargePressuresNextPut(t *testing.T) {
	// A recharge never evicts on its own, but the grown occupancy counts
	// against the budget at the next admission: putting 40 more bytes into
	// a 100-byte registry holding 10+60 must evict the recharged entry.
	r := New[int](100, 1)
	if err := r.Put("big", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("small", 2, 10); err != nil {
		t.Fatal(err)
	}
	r.Recharge("big", 70)
	if s := r.Stats(); s.Bytes != 80 {
		t.Fatalf("bytes = %d, want 80", s.Bytes)
	}
	if err := r.Put("next", 3, 40); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Acquire("big"); ok {
		t.Fatal("recharged LRU entry survived an over-budget Put")
	}
	if s := r.Stats(); s.Bytes != 50 {
		t.Fatalf("bytes after eviction = %d, want 50 (10 small + 40 next)", s.Bytes)
	}
}

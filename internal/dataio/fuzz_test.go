package dataio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPoints drives the point-file parser with arbitrary bytes. The
// parser must never panic, and any successfully parsed point set must be
// internally consistent: positive dimension, buffer length n*dim, and
// every row addressable at that dimension.
func FuzzReadPoints(f *testing.F) {
	f.Add([]byte("1,2\n3,4\n"))
	f.Add([]byte("# comment\n\n1.5e3, -2\n0,0\n"))
	f.Add([]byte("1,2\n3\n"))       // dimension mismatch
	f.Add([]byte("nan,inf\n1,2\n")) // non-finite coordinates parse; API layer rejects
	f.Add([]byte(",,\n"))
	f.Add([]byte("1e309,0\n"))
	f.Add([]byte(strings.Repeat("7,", 200) + "7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := ReadPoints(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if pts.N <= 0 || pts.Dim <= 0 {
			t.Fatalf("accepted empty/invalid shape n=%d dim=%d", pts.N, pts.Dim)
		}
		if len(pts.Data) != pts.N*pts.Dim {
			t.Fatalf("buffer length %d != n*dim = %d", len(pts.Data), pts.N*pts.Dim)
		}
		for i := 0; i < pts.N; i++ {
			if len(pts.At(i)) != pts.Dim {
				t.Fatalf("row %d has %d coordinates, want %d", i, len(pts.At(i)), pts.Dim)
			}
		}
	})
}

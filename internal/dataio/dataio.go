// Package dataio loads point sets from CSV files and writes them back,
// shared by the command-line tools.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"parclust/internal/generator"
	"parclust/internal/geometry"
)

// ReadPoints reads a point set from r with one point per line
// (comma-separated coordinates; blank lines and lines starting with '#'
// are skipped). All rows must have the same dimension. name labels the
// source in error messages.
func ReadPoints(r io.Reader, name string) (geometry.Points, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for i, fstr := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(fstr), 64)
			if err != nil {
				return geometry.Points{}, fmt.Errorf("%s:%d: bad coordinate %q", name, lineno, fstr)
			}
			row[i] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return geometry.Points{}, fmt.Errorf("%s:%d: dimension %d, want %d", name, lineno, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return geometry.Points{}, err
	}
	if len(rows) == 0 {
		return geometry.Points{}, fmt.Errorf("%s: no points", name)
	}
	return geometry.FromSlices(rows), nil
}

// LoadCSV reads a point set from a CSV file via ReadPoints.
func LoadCSV(path string) (geometry.Points, error) {
	f, err := os.Open(path)
	if err != nil {
		return geometry.Points{}, err
	}
	defer f.Close()
	return ReadPoints(f, path)
}

// WriteCSV writes a point set with one comma-separated point per line.
func WriteCSV(path string, pts geometry.Points) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < pts.N; i++ {
		row := pts.At(i)
		for k, v := range row {
			if k > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}

// LoadOrGenerate loads points from path when non-empty, and otherwise runs
// the named synthetic generator (uniform | varden | mixture | geolife |
// embed). embed produces unit-norm embedding-like vectors (a Gaussian
// mixture of direction clusters on the unit sphere; dim 2..512).
func LoadOrGenerate(path, kind string, n, dim int, seed int64) (geometry.Points, error) {
	if path != "" {
		return LoadCSV(path)
	}
	switch kind {
	case "uniform":
		return generator.UniformFill(n, dim, seed), nil
	case "varden":
		return generator.SSVarden(n, dim, seed), nil
	case "mixture":
		return generator.GaussianMixture(n, dim, 10, seed), nil
	case "geolife":
		return generator.GeoLifeLike(n, seed), nil
	case "embed":
		if dim < 2 || dim > generator.EmbedMaxDim {
			return geometry.Points{}, fmt.Errorf("embed generator needs 2 <= dim <= %d, got %d", generator.EmbedMaxDim, dim)
		}
		return generator.Embed(n, dim, 16, seed), nil
	default:
		return geometry.Points{}, fmt.Errorf("unknown generator %q", kind)
	}
}

package dataio

import (
	"os"
	"path/filepath"
	"testing"

	"parclust/internal/generator"
)

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	pts := generator.UniformFill(500, 4, 7)
	if err := WriteCSV(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != pts.N || got.Dim != pts.Dim {
		t.Fatalf("round trip shape %dx%d, want %dx%d", got.N, got.Dim, pts.N, pts.Dim)
	}
	for i := range pts.Data {
		if got.Data[i] != pts.Data[i] {
			t.Fatalf("coordinate %d changed: %v -> %v", i, pts.Data[i], got.Data[i])
		}
	}
}

func TestLoadCSVCommentsAndBlanks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	content := "# header comment\n1.5, 2.5\n\n3.0,4.0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if pts.N != 2 || pts.Dim != 2 {
		t.Fatalf("got %dx%d", pts.N, pts.Dim)
	}
	if pts.Data[0] != 1.5 || pts.Data[3] != 4.0 {
		t.Fatal("values wrong")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"bad-number.csv": "1,2\nx,4\n",
		"ragged.csv":     "1,2\n3,4,5\n",
		"empty.csv":      "# nothing\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCSV(path); err == nil {
			t.Fatalf("%s: expected an error", name)
		}
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file: expected an error")
	}
}

func TestLoadOrGenerate(t *testing.T) {
	for _, kind := range []string{"uniform", "varden", "mixture", "geolife"} {
		pts, err := LoadOrGenerate("", kind, 100, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if pts.N != 100 {
			t.Fatalf("%s: n=%d", kind, pts.N)
		}
	}
	if _, err := LoadOrGenerate("", "nope", 10, 2, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	if err := Check("nope"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	Activate("p", Fault{Mode: Error, Err: sentinel})
	if err := Check("p"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	// Other points stay quiet while one is armed.
	if err := Check("other"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	Deactivate("p")
	if err := Check("p"); err != nil {
		t.Fatalf("deactivated point fired: %v", err)
	}
}

func TestErrorModeDefaultErr(t *testing.T) {
	defer Reset()
	Activate("p", Fault{Mode: Error})
	if err := Check("p"); err == nil {
		t.Fatal("Error mode with nil Err returned nil")
	}
}

func TestDelayMode(t *testing.T) {
	defer Reset()
	Activate("p", Fault{Mode: Delay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("delay mode returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Activate("p", Fault{Mode: Panic})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Point != "p" {
			t.Fatalf("recovered %v (%T), want PanicValue{p}", r, r)
		}
		if msg := pv.Error(); msg != "faultinject: injected panic at p" {
			t.Fatalf("PanicValue message = %q", msg)
		}
	}()
	Check("p")
	t.Fatal("Check returned in panic mode")
}

func TestCountSelfDisarms(t *testing.T) {
	defer Reset()
	Activate("p", Fault{Mode: Error, Err: errors.New("x"), Count: 2})
	if Check("p") == nil || Check("p") == nil {
		t.Fatal("counted fault did not fire twice")
	}
	if err := Check("p"); err != nil {
		t.Fatalf("counted fault fired a third time: %v", err)
	}
	// Fully disarmed again: fast path restored.
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d after self-disarm", armed.Load())
	}
}

func TestResetClearsAll(t *testing.T) {
	Activate("a", Fault{Mode: Error})
	Activate("b", Fault{Mode: Error})
	Reset()
	if err := Check("a"); err != nil {
		t.Fatalf("point fired after Reset: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d after Reset", armed.Load())
	}
}

func TestReactivateReplaces(t *testing.T) {
	defer Reset()
	e1, e2 := errors.New("one"), errors.New("two")
	Activate("p", Fault{Mode: Error, Err: e1})
	Activate("p", Fault{Mode: Error, Err: e2})
	if err := Check("p"); !errors.Is(err, e2) {
		t.Fatalf("got %v, want replacement fault", err)
	}
	Reset()
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d, double-counted reactivation", armed.Load())
	}
}

// Package faultinject is a tiny runtime-armed fault-injection harness for
// chaos tests. Production code sprinkles named failure points at the
// boundaries that can realistically fail (snapshot writes, snapshot reads,
// engine stage builds); tests arm a point with an error, a delay, or a
// panic and assert the system degrades gracefully.
//
// The disarmed fast path is a single atomic load of a package counter —
// no map lookup, no lock — so the hooks stay compiled into ordinary
// builds (and therefore run under the tier-1 test suite and count toward
// coverage) without costing anything in production.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed failure point does.
type Mode int

const (
	// Error makes Check return Fault.Err.
	Error Mode = iota
	// Delay makes Check sleep Fault.Delay, then return nil.
	Delay
	// Panic makes Check panic with PanicValue{Point}.
	Panic
)

// Fault describes one armed failure point.
type Fault struct {
	Mode  Mode
	Err   error         // returned when Mode == Error
	Delay time.Duration // slept when Mode == Delay
	// Count limits how many times the fault fires; 0 means unlimited.
	// After Count firings the point disarms itself.
	Count int
}

// PanicValue is the value panicked by a Panic-mode fault, so tests can
// tell an injected panic from a real one.
type PanicValue struct{ Point string }

func (p PanicValue) Error() string { return "faultinject: injected panic at " + p.Point }

var (
	armed atomic.Int64 // number of currently armed points; 0 ⇒ Check is a no-op
	mu    sync.Mutex
	table map[string]*entry
)

type entry struct {
	f    Fault
	left int // remaining firings when f.Count > 0
}

// Activate arms the named failure point. Re-activating an armed point
// replaces its fault.
func Activate(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*entry)
	}
	if _, ok := table[point]; !ok {
		armed.Add(1)
	}
	table[point] = &entry{f: f, left: f.Count}
}

// Deactivate disarms the named failure point. Disarming an unarmed point
// is a no-op.
func Deactivate(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := table[point]; ok {
		delete(table, point)
		armed.Add(-1)
	}
}

// Reset disarms every failure point. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(table)))
	table = nil
}

// Check fires the named failure point if armed: it returns the injected
// error, sleeps the injected delay, or panics. When nothing is armed
// anywhere in the process it is a single atomic load.
func Check(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	e, ok := table[point]
	if ok && e.f.Count > 0 {
		e.left--
		if e.left <= 0 {
			delete(table, point)
			armed.Add(-1)
		}
	}
	mu.Unlock()
	if !ok {
		return nil
	}
	switch e.f.Mode {
	case Delay:
		time.Sleep(e.f.Delay)
		return nil
	case Panic:
		panic(PanicValue{Point: point})
	default:
		if e.f.Err != nil {
			return e.f.Err
		}
		return fmt.Errorf("faultinject: injected error at %s", point)
	}
}

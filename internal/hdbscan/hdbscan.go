// Package hdbscan implements the paper's HDBSCAN* algorithms (Section 3.2):
// parallel core-distance computation, the exact parallelized Gan–Tao
// baseline (classic geometric well-separation), the improved space-efficient
// algorithm using the new disjunctive well-separation, and the parallel
// approximate OPTICS algorithm of Appendix C. All variants produce the MST
// of the mutual reachability graph, from which package dendrogram derives
// the cluster hierarchy and reachability plot.
package hdbscan

import (
	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/mst"
	"parclust/internal/wspd"
)

// Result bundles the outputs of an HDBSCAN* MST computation.
type Result struct {
	MST      []mst.Edge
	CoreDist []float64
	Tree     *kdtree.Tree
	Stats    *mst.Stats
}

// Algorithm selects the HDBSCAN* MST variant.
type Algorithm int

const (
	// MemoGFK is the paper's space-efficient algorithm (Section 3.2.2):
	// MemoGFK with the new disjunctive well-separation.
	MemoGFK Algorithm = iota
	// GanTao is the exact parallelized Gan–Tao baseline (Section 3.2.1):
	// MemoGFK machinery with the classic geometric well-separation.
	GanTao
	// GanTaoFull is GanTao without the memory optimization: the full WSPD
	// is materialized and run through GFK.
	GanTaoFull
)

// Build computes the MST of the Euclidean mutual reachability graph for
// the given minPts using the selected algorithm. stats may be nil.
func Build(pts geometry.Points, minPts int, algo Algorithm, stats *mst.Stats) Result {
	return BuildMetric(pts, minPts, algo, metric.L2{}, stats)
}

// BuildMetric is Build with the base distance taken under an arbitrary
// metric kernel: core distances, mutual reachability, and the
// well-separation predicate all run under m. The Euclidean kernel takes
// the paper's bounding-sphere separation tests; other kernels use their
// own box-bound ball geometry.
func BuildMetric(pts geometry.Points, minPts int, algo Algorithm, m metric.Metric, stats *mst.Stats) Result {
	if stats == nil {
		stats = mst.NewStats()
	}
	var t *kdtree.Tree
	stats.Time("build-tree", func() {
		t = kdtree.BuildMetric(pts, 1, m)
	})
	var cd []float64
	stats.Time("core-dist", func() {
		cd = t.CoreDistances(minPts)
		t.AnnotateCoreDists(cd)
	})
	edges := MSTOnAnnotatedTree(t, algo, m, nil, stats)
	return Result{MST: edges, CoreDist: cd, Tree: t, Stats: stats}
}

// MSTOnAnnotatedTree runs the selected HDBSCAN* MST variant over a tree
// whose core-distance annotations (AnnotateCoreDists) are already in place
// for the desired minPts — the MST stage of the pipeline, separated so a
// caller memoizing trees and core distances (internal/engine) can rerun
// only this stage when minPts changes. ws supplies reusable round buffers
// (nil for a private workspace); stats may be nil.
func MSTOnAnnotatedTree(t *kdtree.Tree, algo Algorithm, m metric.Metric, ws *mst.Workspace, stats *mst.Stats) []mst.Edge {
	return MSTOnAnnotatedTreeCancel(t, algo, m, ws, stats, nil)
}

// MSTOnAnnotatedTreeCancel is MSTOnAnnotatedTree with a cooperative
// cancellation flag threaded into the MST rounds and WSPD traversals
// (see mst.Config.Abort). af may be nil.
func MSTOnAnnotatedTreeCancel(t *kdtree.Tree, algo Algorithm, m metric.Metric, ws *mst.Workspace, stats *mst.Stats, af *abort.Flag) []mst.Edge {
	// The edge metric runs in the tree's kd-order space (contiguous leaf
	// scans); results are mapped back to original ids by the MST driver.
	w := kdtree.NewMutualReachability(t)
	var disjunctive, geometric wspd.Separation
	if metric.IsL2(m) {
		disjunctive, geometric = wspd.MutualUnreachable{}, wspd.Geometric{S: 2}
	} else {
		disjunctive, geometric = wspd.MetricMutualUnreachable{M: m}, wspd.MetricGeometric{M: m, S: 2}
	}
	switch algo {
	case MemoGFK:
		return mst.MemoGFK(mst.Config{Tree: t, Metric: w, Sep: disjunctive, Stats: stats, WS: ws, Abort: af})
	case GanTao:
		return mst.MemoGFK(mst.Config{Tree: t, Metric: w, Sep: geometric, Stats: stats, WS: ws, Abort: af})
	case GanTaoFull:
		return mst.GFK(mst.Config{Tree: t, Metric: w, Sep: geometric, Stats: stats, WS: ws, Abort: af})
	default:
		panic("hdbscan: unknown algorithm")
	}
}

// PairCounts reports the number of WSPD pairs generated under the classic
// geometric separation and under the new disjunctive separation for the
// same point set — the "2.5-10.29x fewer pairs" measurement of Section 5.
func PairCounts(pts geometry.Points, minPts int) (geo, mutual int) {
	t := kdtree.Build(pts, 1)
	cd := t.CoreDistances(minPts)
	t.AnnotateCoreDists(cd)
	geo = wspd.Count(t, wspd.Geometric{S: 2})
	mutual = wspd.Count(t, wspd.MutualUnreachable{})
	return geo, mutual
}

// Package hdbscan implements the paper's HDBSCAN* algorithms (Section 3.2):
// parallel core-distance computation, the exact parallelized Gan–Tao
// baseline (classic geometric well-separation), the improved space-efficient
// algorithm using the new disjunctive well-separation, and the parallel
// approximate OPTICS algorithm of Appendix C. All variants produce the MST
// of the mutual reachability graph, from which package dendrogram derives
// the cluster hierarchy and reachability plot.
package hdbscan

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// Result bundles the outputs of an HDBSCAN* MST computation.
type Result struct {
	MST      []mst.Edge
	CoreDist []float64
	Tree     *kdtree.Tree
	Stats    *mst.Stats
}

// Algorithm selects the HDBSCAN* MST variant.
type Algorithm int

const (
	// MemoGFK is the paper's space-efficient algorithm (Section 3.2.2):
	// MemoGFK with the new disjunctive well-separation.
	MemoGFK Algorithm = iota
	// GanTao is the exact parallelized Gan–Tao baseline (Section 3.2.1):
	// MemoGFK machinery with the classic geometric well-separation.
	GanTao
	// GanTaoFull is GanTao without the memory optimization: the full WSPD
	// is materialized and run through GFK.
	GanTaoFull
)

// Build computes the MST of the mutual reachability graph for the given
// minPts using the selected algorithm. stats may be nil.
func Build(pts geometry.Points, minPts int, algo Algorithm, stats *mst.Stats) Result {
	if stats == nil {
		stats = mst.NewStats()
	}
	var t *kdtree.Tree
	stats.Time("build-tree", func() {
		t = kdtree.Build(pts, 1)
	})
	var cd []float64
	stats.Time("core-dist", func() {
		cd = t.CoreDistances(minPts)
		t.AnnotateCoreDists(cd)
	})
	metric := kdtree.MutualReachability{Pts: pts, CD: cd}
	var edges []mst.Edge
	switch algo {
	case MemoGFK:
		edges = mst.MemoGFK(mst.Config{Tree: t, Metric: metric, Sep: wspd.MutualUnreachable{}, Stats: stats})
	case GanTao:
		edges = mst.MemoGFK(mst.Config{Tree: t, Metric: metric, Sep: wspd.Geometric{S: 2}, Stats: stats})
	case GanTaoFull:
		edges = mst.GFK(mst.Config{Tree: t, Metric: metric, Sep: wspd.Geometric{S: 2}, Stats: stats})
	default:
		panic("hdbscan: unknown algorithm")
	}
	return Result{MST: edges, CoreDist: cd, Tree: t, Stats: stats}
}

// PairCounts reports the number of WSPD pairs generated under the classic
// geometric separation and under the new disjunctive separation for the
// same point set — the "2.5-10.29x fewer pairs" measurement of Section 5.
func PairCounts(pts geometry.Points, minPts int) (geo, mutual int) {
	t := kdtree.Build(pts, 1)
	cd := t.CoreDistances(minPts)
	t.AnnotateCoreDists(cd)
	geo = wspd.Count(t, wspd.Geometric{S: 2})
	mutual = wspd.Count(t, wspd.MutualUnreachable{})
	return geo, mutual
}

// MutualReachabilityOracle returns the dense mutual reachability distance
// function for validation against the Prim oracle: d_m(i,j) =
// max{cd(i), cd(j), d(i,j)} with core distances computed by brute force.
func MutualReachabilityOracle(pts geometry.Points, minPts int) func(i, j int32) float64 {
	cd := BruteForceCoreDistances(pts, minPts)
	return func(i, j int32) float64 {
		d := pts.Dist(int(i), int(j))
		return math.Max(d, math.Max(cd[i], cd[j]))
	}
}

// BruteForceCoreDistances computes core distances in O(n^2 log n), used by
// tests to validate the k-d tree k-NN path.
func BruteForceCoreDistances(pts geometry.Points, minPts int) []float64 {
	cd := make([]float64, pts.N)
	if minPts <= 1 {
		return cd
	}
	parallel.For(pts.N, 16, func(i int) {
		ds := make([]float64, pts.N)
		for j := 0; j < pts.N; j++ {
			ds[j] = pts.Dist(i, j)
		}
		// selection of the minPts-th smallest (including self distance 0)
		k := minPts
		if k > pts.N {
			k = pts.N
		}
		parallel.NthElement(ds, k-1, func(a, b float64) bool { return a < b })
		cd[i] = ds[k-1]
	})
	return cd
}

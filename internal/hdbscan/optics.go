package hdbscan

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// ApproxOPTICS implements the parallel approximate OPTICS algorithm of
// Appendix C (after Gan and Tao): a WSPD with separation s = sqrt(8/rho)
// generates O(n * minPts^2) candidate edges — all cross pairs when both
// sides are smaller than minPts, representative-to-all otherwise — weighted
// by w(u,v) = max{cd(u), cd(v), d(u,v)/(1+rho)}; the MST of that graph
// approximates the OPTICS/HDBSCAN* MST within a factor of (1+rho).
//
// Following the paper's implementation note, the representative point of a
// node is a fixed sample (its first point) rather than an approximate BCCP.
func ApproxOPTICS(pts geometry.Points, minPts int, rho float64, stats *mst.Stats) Result {
	if stats == nil {
		stats = mst.NewStats()
	}
	if rho <= 0 {
		panic("hdbscan: ApproxOPTICS requires rho > 0")
	}
	var t *kdtree.Tree
	stats.Time("build-tree", func() {
		t = kdtree.Build(pts, 1)
	})
	var cd []float64
	stats.Time("core-dist", func() {
		cd = t.CoreDistances(minPts)
		t.AnnotateCoreDists(cd)
	})
	s := math.Sqrt(8 / rho)
	var pairs []wspd.Pair
	stats.Time("wspd", func() {
		pairs = wspd.Decompose(t, wspd.Geometric{S: s})
	})
	// Candidate generation runs in the tree's kd-order space (node point
	// ranges are contiguous); edges are mapped back to original ids after
	// Kruskal. t.CoreDist is the kd-order copy AnnotateCoreDists made.
	weight := func(u, v int32) float64 {
		d := t.Pts.Dist(int(u), int(v)) / (1 + rho)
		return math.Max(d, math.Max(t.CoreDist[u], t.CoreDist[v]))
	}
	// Generate candidate edges per pair (cases (a)-(d) of Appendix C).
	perPair := make([][]mst.Edge, len(pairs))
	genEdges := func() {
		parallel.For(len(pairs), 8, func(i int) {
			a, b := pairs[i].A, pairs[i].B
			pa, pb := t.Points(a), t.Points(b)
			var out []mst.Edge
			switch {
			case len(pa) < minPts && len(pb) < minPts:
				out = make([]mst.Edge, 0, len(pa)*len(pb))
				for _, u := range pa {
					for _, v := range pb {
						out = append(out, mst.MakeEdge(u, v, weight(u, v)))
					}
				}
			case len(pa) >= minPts && len(pb) < minPts:
				rep := pa[0]
				out = make([]mst.Edge, 0, len(pb))
				for _, v := range pb {
					out = append(out, mst.MakeEdge(rep, v, weight(rep, v)))
				}
			case len(pa) < minPts && len(pb) >= minPts:
				rep := pb[0]
				out = make([]mst.Edge, 0, len(pa))
				for _, u := range pa {
					out = append(out, mst.MakeEdge(u, rep, weight(u, rep)))
				}
			default:
				out = []mst.Edge{mst.MakeEdge(pa[0], pb[0], weight(pa[0], pb[0]))}
			}
			perPair[i] = out
		})
	}
	var edges []mst.Edge
	stats.Time("gen-edges", func() {
		genEdges()
		total := 0
		for _, es := range perPair {
			total += len(es)
		}
		edges = make([]mst.Edge, 0, total)
		for _, es := range perPair {
			edges = append(edges, es...)
		}
	})
	stats.AddPairs(int64(len(pairs)))
	stats.NotePeak(int64(len(edges)))
	var out []mst.Edge
	stats.Time("kruskal", func() {
		out = mst.Kruskal(pts.N, edges)
	})
	for i, e := range out {
		out[i] = mst.MakeEdge(t.Orig[e.U], t.Orig[e.V], e.W)
	}
	return Result{MST: out, CoreDist: cd, Tree: t, Stats: stats}
}

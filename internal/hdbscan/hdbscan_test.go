package hdbscan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/mst"
	"parclust/internal/oracle"
	"parclust/internal/unionfind"
	"parclust/internal/wspd"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

func checkSpanningTree(t *testing.T, n int, edges []mst.Edge) {
	t.Helper()
	if len(edges) != n-1 {
		t.Fatalf("got %d edges, want %d", len(edges), n-1)
	}
	uf := unionfind.New(n)
	for _, e := range edges {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("edge %+v creates a cycle", e)
		}
	}
}

// TestBuildMatchesDenseOracle: all three variants must produce an MST of
// the mutual reachability graph with the exact dense-Prim weight.
func TestBuildMatchesDenseOracle(t *testing.T) {
	for _, minPts := range []int{1, 2, 3, 5, 10} {
		for _, n := range []int{2, 20, 150, 400} {
			if minPts > n {
				continue
			}
			pts := randPoints(n, 3, int64(n*10+minPts))
			want := mst.TotalWeight(mst.PrimDense(n, oracle.MutualReachability(pts, minPts, metric.L2{})))
			for _, algo := range []Algorithm{MemoGFK, GanTao, GanTaoFull} {
				res := Build(pts, minPts, algo, nil)
				checkSpanningTree(t, n, res.MST)
				got := mst.TotalWeight(res.MST)
				if math.Abs(got-want) > 1e-6*(1+want) {
					t.Fatalf("algo=%d minPts=%d n=%d: weight %v, want %v", algo, minPts, n, got, want)
				}
			}
		}
	}
}

// TestMinPtsOneEqualsEMST: with minPts = 1 the mutual reachability distance
// is the Euclidean distance, so the HDBSCAN* MST weight equals the EMST
// weight (Section 2.1).
func TestMinPtsOneEqualsEMST(t *testing.T) {
	pts := randPoints(300, 2, 3)
	tr := kdtree.Build(pts, 1)
	emst := mst.MemoGFK(mst.Config{Tree: tr, Metric: kdtree.NewEuclidean(tr), Sep: wspd.Geometric{S: 2}})
	res := Build(pts, 1, MemoGFK, nil)
	if math.Abs(mst.TotalWeight(emst)-mst.TotalWeight(res.MST)) > 1e-9 {
		t.Fatalf("minPts=1 MST weight %v differs from EMST %v",
			mst.TotalWeight(res.MST), mst.TotalWeight(emst))
	}
}

// TestTheoremD1: for minPts <= 3, the EMST is an MST of the mutual
// reachability graph (Appendix D), i.e. its weight under d_m equals the
// HDBSCAN* MST weight.
func TestTheoremD1(t *testing.T) {
	for _, minPts := range []int{2, 3} {
		pts := randPoints(200, 2, int64(minPts*7))
		tr := kdtree.Build(pts, 1)
		emst := mst.MemoGFK(mst.Config{Tree: tr, Metric: kdtree.NewEuclidean(tr), Sep: wspd.Geometric{S: 2}})
		dm := oracle.MutualReachability(pts, minPts, metric.L2{})
		var emstUnderDM float64
		for _, e := range emst {
			emstUnderDM += dm(e.U, e.V)
		}
		res := Build(pts, minPts, MemoGFK, nil)
		if math.Abs(emstUnderDM-mst.TotalWeight(res.MST)) > 1e-6 {
			t.Fatalf("minPts=%d: EMST weight under d_m %v != HDBSCAN* MST weight %v",
				minPts, emstUnderDM, mst.TotalWeight(res.MST))
		}
	}
}

func TestFigure1WorkedExample(t *testing.T) {
	// A worked example in the spirit of the paper's Figure 1 (2D,
	// minPts = 3), with coordinates chosen so the key caption facts hold:
	// b is a's third nearest neighbor (including a itself) at distance 4,
	// so cd(a) = 4; and cd(d) = d(d,b) = sqrt(10).
	pts := geometry.FromSlices([][]float64{
		{0, 0},   // a
		{4, 0},   // b
		{7, 0},   // c
		{1, 1},   // d
		{10, 10}, // e
		{11, 10}, // f
		{10, 11}, // g
		{11, 11}, // h
		{30, 30}, // i
	})
	minPts := 3
	cd := oracle.CoreDistances(pts, minPts, metric.L2{})
	if math.Abs(cd[0]-4) > 1e-9 {
		t.Fatalf("cd(a)=%v, want 4", cd[0])
	}
	if math.Abs(cd[3]-math.Sqrt(10)) > 1e-9 {
		t.Fatalf("cd(d)=%v, want sqrt(10)", cd[3])
	}
	res := Build(pts, minPts, MemoGFK, nil)
	checkSpanningTree(t, pts.N, res.MST)
	want := mst.TotalWeight(mst.PrimDense(pts.N, oracle.MutualReachability(pts, minPts, metric.L2{})))
	if math.Abs(mst.TotalWeight(res.MST)-want) > 1e-9 {
		t.Fatalf("figure-1 MST weight %v, want %v", mst.TotalWeight(res.MST), want)
	}
	// The edge (a,d) must have weight max{cd(a), cd(d), d(a,d)} = 4 if present;
	// regardless, every MST edge weight must equal its mutual reachability.
	dm := oracle.MutualReachability(pts, minPts, metric.L2{})
	for _, e := range res.MST {
		if math.Abs(e.W-dm(e.U, e.V)) > 1e-9 {
			t.Fatalf("edge %+v weight differs from d_m=%v", e, dm(e.U, e.V))
		}
	}
}

func TestPairCounts(t *testing.T) {
	pts := randPoints(1000, 3, 17)
	geo, mu := PairCounts(pts, 10)
	if mu > geo {
		t.Fatalf("new separation produced more pairs (%d > %d)", mu, geo)
	}
	if geo == 0 || mu == 0 {
		t.Fatal("pair counts are zero")
	}
}

func TestBruteForceCoreDistancesQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 2 + int(nRaw)%60
		k := 1 + int(kRaw)%n
		pts := randPoints(n, 2, seed)
		cd := oracle.CoreDistances(pts, k, metric.L2{})
		tr := kdtree.Build(pts, 1)
		cd2 := tr.CoreDistances(k)
		for i := range cd {
			if math.Abs(cd[i]-cd2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestApproxOPTICSBounds: every candidate edge weight satisfies
// d_m/(1+rho) <= w <= d_m, so the approximate MST weight is at least
// exact/(1+rho); the Gan-Tao construction guarantees the graph contains a
// spanning tree within a (1+rho) factor of the exact MST.
func TestApproxOPTICSBounds(t *testing.T) {
	for _, rho := range []float64{0.125, 0.5, 1} {
		pts := randPoints(250, 2, int64(rho*100))
		minPts := 5
		exact := mst.TotalWeight(mst.PrimDense(pts.N, oracle.MutualReachability(pts, minPts, metric.L2{})))
		res := ApproxOPTICS(pts, minPts, rho, nil)
		checkSpanningTree(t, pts.N, res.MST)
		got := mst.TotalWeight(res.MST)
		if got > exact*(1+rho)+1e-9 {
			t.Fatalf("rho=%v: approx weight %v exceeds exact*(1+rho)=%v", rho, got, exact*(1+rho))
		}
		if got < exact/(1+rho)-1e-9 {
			t.Fatalf("rho=%v: approx weight %v below exact/(1+rho)=%v", rho, got, exact/(1+rho))
		}
	}
}

func TestApproxOPTICSEdgeBudget(t *testing.T) {
	// Appendix C: O(n * minPts^2) edges. Check the constant is sane.
	pts := randPoints(2000, 2, 23)
	minPts := 5
	stats := mst.NewStats()
	ApproxOPTICS(pts, minPts, 0.125, stats)
	maxEdges := int64(40 * pts.N * minPts * minPts)
	if stats.PeakPairsResident > maxEdges {
		t.Fatalf("approx OPTICS generated %d candidate edges, budget %d",
			stats.PeakPairsResident, maxEdges)
	}
}

func TestStatsPhases(t *testing.T) {
	pts := randPoints(500, 2, 29)
	stats := mst.NewStats()
	Build(pts, 10, MemoGFK, stats)
	for _, phase := range []string{"build-tree", "core-dist", "wspd", "kruskal"} {
		if _, ok := stats.Phases[phase]; !ok {
			t.Fatalf("phase %q missing from stats", phase)
		}
	}
}

package optics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
	"parclust/internal/metric"
	"parclust/internal/oracle"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

// TestMutualUnboundedMatchesHDBSCANMST: with mutual reachability and
// eps = +Inf, OPTICS is Prim on the mutual reachability graph, so its
// finite reachability values are exactly the HDBSCAN* MST edge weights.
func TestMutualUnboundedMatchesHDBSCANMST(t *testing.T) {
	for _, minPts := range []int{2, 5, 10} {
		pts := randPoints(250, 2, int64(minPts))
		order := Run(pts, minPts, math.Inf(1), true)
		if len(order) != pts.N {
			t.Fatalf("ordering has %d entries", len(order))
		}
		if order[0].Idx != 0 || !math.IsInf(order[0].Reachability, 1) {
			t.Fatal("ordering must start at point 0 with infinite reachability")
		}
		var got []float64
		for _, e := range order[1:] {
			got = append(got, e.Reachability)
		}
		res := hdbscan.Build(pts, minPts, hdbscan.MemoGFK, nil)
		var want []float64
		for _, e := range res.MST {
			want = append(want, e.W)
		}
		sort.Float64s(got)
		sort.Float64s(want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("minPts=%d: reachability[%d]=%v, MST weight %v", minPts, i, got[i], want[i])
			}
		}
	}
}

// TestClassicAsymmetricDiffers: the original OPTICS reachability is
// asymmetric (footnote 4 of the paper); on data with varied density its
// total differs from the mutual variant, and never exceeds it.
func TestClassicAsymmetricDiffers(t *testing.T) {
	pts := randPoints(200, 2, 7)
	minPts := 10
	classic := Run(pts, minPts, math.Inf(1), false)
	mutual := Run(pts, minPts, math.Inf(1), true)
	var sc, sm float64
	for i := 1; i < len(classic); i++ {
		sc += classic[i].Reachability
		sm += mutual[i].Reachability
	}
	if sc > sm+1e-9 {
		t.Fatalf("asymmetric total %v exceeds mutual total %v", sc, sm)
	}
}

// TestBoundedEps: with a finite eps, unreachable points start new
// components with infinite reachability, matching DBSCAN connectivity.
func TestBoundedEps(t *testing.T) {
	// Two far-apart blobs.
	rows := [][]float64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		rows = append(rows, []float64{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 30; i++ {
		rows = append(rows, []float64{1000 + rng.Float64(), rng.Float64()})
	}
	pts := geometry.FromSlices(rows)
	order := Run(pts, 5, 10, false)
	if len(order) != pts.N {
		t.Fatalf("ordering has %d entries, want %d", len(order), pts.N)
	}
	infs := 0
	for _, e := range order {
		if math.IsInf(e.Reachability, 1) {
			infs++
		}
	}
	if infs != 2 {
		t.Fatalf("expected 2 infinite-reachability component starts, got %d", infs)
	}
}

// TestOrderingIsPermutation guards the heap implementation.
func TestOrderingIsPermutation(t *testing.T) {
	pts := randPoints(300, 3, 13)
	order := Run(pts, 5, math.Inf(1), true)
	seen := make([]bool, pts.N)
	for _, e := range order {
		if seen[e.Idx] {
			t.Fatalf("point %d visited twice", e.Idx)
		}
		seen[e.Idx] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d never visited", i)
		}
	}
}

// TestReachabilityLowerBound: every reachability is at least the core
// distance of the predecessor structure — concretely, at least the point's
// own core distance under mutual semantics.
func TestReachabilityLowerBound(t *testing.T) {
	pts := randPoints(150, 2, 17)
	minPts := 5
	cd := oracle.CoreDistances(pts, minPts, metric.L2{})
	for _, e := range Run(pts, minPts, math.Inf(1), true)[1:] {
		if e.Reachability < cd[e.Idx]-1e-12 {
			t.Fatalf("reachability %v below core distance %v", e.Reachability, cd[e.Idx])
		}
	}
}

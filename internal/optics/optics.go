// Package optics implements the classic sequential OPTICS algorithm of
// Ankerst et al. (cited as [7] in the paper) as a from-the-definition
// reference for the parallel pipeline. Two reachability semantics are
// supported: the original asymmetric max{cd(p), d(p,q)} of Ankerst et al.,
// and the symmetric mutual reachability max{cd(p), cd(q), d(p,q)} used by
// HDBSCAN*. With mutual semantics and eps = +Inf the algorithm is exactly
// Prim's algorithm on the mutual reachability graph, so its finite
// reachability values equal the HDBSCAN* MST edge weights — the tests use
// this to cross-validate the WSPD-based pipeline against an entirely
// independent implementation. The unbounded variant performs O(n^2)
// distance updates and is intended for validation, not production use.
package optics

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
)

// Entry is one position of the OPTICS ordering.
type Entry struct {
	Idx int32
	// Reachability is the reachability distance at which the point was
	// reached (+Inf for the first point of each connected component).
	Reachability float64
}

// Run computes the OPTICS ordering starting from point 0. eps bounds the
// neighborhoods considered (math.Inf(1) for the unbounded variant);
// minPts is the density parameter; mutual selects HDBSCAN*'s symmetric
// reachability instead of the original asymmetric one.
func Run(pts geometry.Points, minPts int, eps float64, mutual bool) []Entry {
	return RunMetric(pts, minPts, eps, mutual, metric.L2{})
}

// RunMetric is Run with distances, core distances, and neighborhoods taken
// under an arbitrary metric kernel.
func RunMetric(pts geometry.Points, minPts int, eps float64, mutual bool, m metric.Metric) []Entry {
	if pts.N == 0 {
		return nil
	}
	t := kdtree.BuildMetric(pts, 16, m)
	return RunOnTree(t, t.CoreDistances(minPts), eps, mutual)
}

// RunOnTree is the OPTICS ordering over a prebuilt tree with precomputed
// core distances (original-id order, computed with the caller's minPts).
// All distance updates are min-reductions and the ordering heap breaks ties
// by point id, so the result is independent of the tree's leaf size and of
// neighbor enumeration order — a tree shared with the rest of the pipeline
// produces exactly the standalone result. The tree is only read.
func RunOnTree(t *kdtree.Tree, cd []float64, eps float64, mutual bool) []Entry {
	n := t.Pts.N
	if n == 0 {
		return nil
	}
	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}
	order := make([]Entry, 0, n)

	// Indexed binary min-heap over (reach, idx) so reachability updates can
	// decrease keys.
	heap := newIndexedHeap(n, reach)

	update := func(p int32) {
		if cd[p] > eps {
			return // not a core point within eps: spreads no reachability
		}
		var nbrs []int32
		if math.IsInf(eps, 1) {
			nbrs = allIndices(n)
		} else {
			nbrs = t.RangeQuery(p, eps)
		}
		for _, q := range nbrs {
			if processed[q] || q == p {
				continue
			}
			d := t.PairDist(p, q)
			if d > eps {
				continue
			}
			r := math.Max(cd[p], d)
			if mutual {
				r = math.Max(r, cd[q])
			}
			if r < reach[q] {
				reach[q] = r
				heap.decrease(q)
			}
		}
	}

	for len(order) < n {
		p, ok := heap.popUnprocessed(processed)
		if !ok {
			break
		}
		processed[p] = true
		order = append(order, Entry{Idx: p, Reachability: reach[p]})
		update(p)
	}
	return order
}

func allIndices(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// indexedHeap is a binary min-heap over point indices keyed by an external
// reachability array, with position tracking for decrease-key. Ties break
// toward the smaller index for deterministic output.
type indexedHeap struct {
	keys []float64
	heap []int32
	pos  []int32
}

func newIndexedHeap(n int, keys []float64) *indexedHeap {
	h := &indexedHeap{keys: keys, heap: make([]int32, n), pos: make([]int32, n)}
	for i := 0; i < n; i++ {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

func (h *indexedHeap) less(a, b int32) bool {
	ka, kb := h.keys[a], h.keys[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

func (h *indexedHeap) swap(i, j int32) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *indexedHeap) siftUp(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *indexedHeap) siftDown(i int32) {
	n := int32(len(h.heap))
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], h.heap[i]) {
			return
		}
		h.swap(i, c)
		i = c
	}
}

// decrease restores heap order after keys[q] decreased.
func (h *indexedHeap) decrease(q int32) {
	if int(q) < len(h.pos) && h.pos[q] >= 0 {
		h.siftUp(h.pos[q])
	}
}

// popUnprocessed removes and returns the minimum-key index.
func (h *indexedHeap) popUnprocessed(processed []bool) (int32, bool) {
	for len(h.heap) > 0 {
		top := h.heap[0]
		last := int32(len(h.heap) - 1)
		h.swap(0, last)
		h.heap = h.heap[:last]
		h.pos[top] = -1
		if last > 0 {
			h.siftDown(0)
		}
		if !processed[top] {
			return top, true
		}
	}
	return -1, false
}

package daemon

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzParseSweep fuzzes the sweep-request parser: whatever the body, an
// accepted request must come out with both axes non-empty, deduplicated,
// in-range, and under the cell cap, and must survive a marshal/re-parse
// round trip unchanged.
func FuzzParseSweep(f *testing.F) {
	seeds := []string{
		`{"minpts":[3,5,7],"eps":[0.25,0.5,1.0,2.0,4.0]}`,
		`{"minpts":[1],"eps":[0]}`,
		`{"minpts":[3,3,3],"eps":[1,1,1]}`,
		`{"minpts":[2],"eps":[0.5],"algo":"gantao","labels":true}`,
		`{"minpts":[],"eps":[1]}`,
		`{"minpts":[3],"eps":[]}`,
		`{"minpts":[0],"eps":[1]}`,
		`{"minpts":[-1],"eps":[1]}`,
		`{"minpts":[3],"eps":[-0.5]}`,
		`{"minpts":[3],"eps":[1e999]}`,
		`{"minpts":[3],"eps":[1],"algo":"kmeans"}`,
		`{"minpts":[3],"eps":[1],"bogus":true}`,
		`{"minpts":[3],"eps":[1]} trailing`,
		`{"minpts":[1,2,3,4,5,6,7,8,9,10],"eps":[1,2,3,4,5,6,7,8,9,10]}`,
		`not json at all`,
		``,
		`null`,
		`{"minpts":[9007199254740993],"eps":[1]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), 64)
	}
	f.Fuzz(func(t *testing.T, data []byte, maxCells int) {
		if maxCells < 1 || maxCells > 1<<20 {
			maxCells = 64
		}
		req, err := parseSweep(data, maxCells)
		if err != nil {
			return
		}
		if len(req.MinPts) == 0 || len(req.Eps) == 0 {
			t.Fatalf("accepted request with empty axis: %+v", req)
		}
		if int64(len(req.MinPts))*int64(len(req.Eps)) > int64(maxCells) {
			t.Fatalf("accepted %dx%d grid over the %d-cell cap", len(req.MinPts), len(req.Eps), maxCells)
		}
		seenM := map[int]bool{}
		for _, mp := range req.MinPts {
			if mp < 1 {
				t.Fatalf("accepted minpts %d", mp)
			}
			if seenM[mp] {
				t.Fatalf("duplicate minpts %d survived dedup: %v", mp, req.MinPts)
			}
			seenM[mp] = true
		}
		seenE := map[float64]bool{}
		for _, e := range req.Eps {
			if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
				t.Fatalf("accepted eps %v", e)
			}
			if seenE[e] {
				t.Fatalf("duplicate eps %v survived dedup: %v", e, req.Eps)
			}
			seenE[e] = true
		}
		// A validated request is a fixed point: re-marshaling and
		// re-parsing must accept it and preserve both axes.
		round, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal accepted request: %v", err)
		}
		req2, err := parseSweep(round, maxCells)
		if err != nil {
			t.Fatalf("re-parse of accepted request %s failed: %v", round, err)
		}
		if len(req2.MinPts) != len(req.MinPts) || len(req2.Eps) != len(req.Eps) {
			t.Fatalf("round trip changed the grid: %+v -> %+v", req, req2)
		}
	})
}

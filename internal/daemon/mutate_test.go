package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"parclust"
	"parclust/internal/engine"
)

// insertBody marshals rows into the insert endpoint's JSON body.
func insertBody(t *testing.T, rows [][]float64) []byte {
	t.Helper()
	b, err := json.Marshal(insertRequest{Points: rows})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func deleteBody(t *testing.T, ids []int64) []byte {
	t.Helper()
	b, err := json.Marshal(deleteRequest{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMutationEndpoints drives the insert/delete endpoints and checks the
// mutated dataset answers like a fresh Index over the surviving rows.
func TestMutationEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{})
	pts := testPoints(100)
	if code := ts.upload("mut", pts, ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	var ins struct {
		IDs []int64 `json:"ids"`
		N   int     `json:"n"`
	}
	rows := [][]float64{{9.5, 9.5}, {9.6, 9.4}, {-3.25, 8.125}}
	if code := ts.do(http.MethodPost, "/v1/datasets/mut/points", insertBody(t, rows), "application/json", &ins); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if ins.N != 103 || len(ins.IDs) != 3 || ins.IDs[0] != 100 {
		t.Fatalf("insert response: %+v", ins)
	}

	// CSV body path, mirroring upload.
	if code := ts.do(http.MethodPost, "/v1/datasets/mut/points", []byte("1.5,2.5\n"), "text/csv", &ins); code != http.StatusOK {
		t.Fatalf("csv insert: status %d", code)
	}
	if ins.N != 104 || ins.IDs[0] != 103 {
		t.Fatalf("csv insert response: %+v", ins)
	}

	var del struct {
		Deleted int `json:"deleted"`
		N       int `json:"n"`
	}
	if code := ts.do(http.MethodDelete, "/v1/datasets/mut/points", deleteBody(t, []int64{0, 50, 103}), "application/json", &del); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if del.Deleted != 3 || del.N != 101 {
		t.Fatalf("delete response: %+v", del)
	}

	// Error contract: unknown ids are 404 and all-or-nothing, malformed
	// bodies and dimension mismatches are 400.
	if code := ts.do(http.MethodDelete, "/v1/datasets/mut/points", deleteBody(t, []int64{1, 103}), "application/json", nil); code != http.StatusNotFound {
		t.Fatalf("delete of dead id: status %d, want 404", code)
	}
	if code := ts.do(http.MethodDelete, "/v1/datasets/mut/points", []byte("{"), "application/json", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed delete: status %d, want 400", code)
	}
	if code := ts.do(http.MethodPost, "/v1/datasets/mut/points", insertBody(t, [][]float64{{1, 2, 3}}), "application/json", nil); code != http.StatusBadRequest {
		t.Fatalf("wrong-dimension insert: status %d, want 400", code)
	}
	if code := ts.do(http.MethodPost, "/v1/datasets/nosuch/points", insertBody(t, rows), "application/json", nil); code != http.StatusNotFound {
		t.Fatalf("insert into unknown dataset: status %d, want 404", code)
	}

	// The mutated dataset must answer like a fresh Index over the
	// equivalent point set: initial rows minus {0,50}, plus the three JSON
	// rows and the CSV row minus the deleted one (ext id 103).
	var want []float64
	for i := 0; i < pts.N; i++ {
		if i == 0 || i == 50 {
			continue
		}
		want = append(want, pts.Data[i*2:(i+1)*2]...)
	}
	want = append(want, 9.5, 9.5, 9.6, 9.4, -3.25, 8.125)
	fresh, err := parclust.NewIndex(parclust.Points{Data: want, N: len(want) / 2, Dim: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 42, 100} {
		var got struct {
			Neighbors []struct {
				ID   int32   `json:"id"`
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
		}
		path := fmt.Sprintf("/v1/datasets/mut/knn?q=%d&k=3", q)
		if code := ts.get(path, &got); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		wantN, err := fresh.KNN(int32(q), 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, nb := range got.Neighbors {
			if nb.ID != wantN[i].Idx || nb.Dist != wantN[i].Dist {
				t.Fatalf("knn(%d)[%d] = %+v, want %+v", q, i, nb, wantN[i])
			}
		}
	}
}

// TestMutationInvalidationCounters pins the stage-epoch invalidation
// contract at the daemon level: one mutation patches the tree exactly once
// (no rebuild), forces exactly k core-distance rebuilds on the next
// k-minpts sweep, and serves zero stale cut-cache hits.
func TestMutationInvalidationCounters(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("inval", testPoints(300), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	counters := func() countersJSON {
		var info struct {
			Counters countersJSON `json:"counters"`
		}
		if code := ts.get("/v1/datasets/inval", &info); code != http.StatusOK {
			t.Fatalf("info: status %d", code)
		}
		return info.Counters
	}
	sweep := func() {
		body := []byte(`{"minpts": [3, 7, 11], "eps": [0.5, 1.0, 2.0], "labels": false}`)
		if code := ts.do(http.MethodPost, "/v1/datasets/inval/sweep", body, "application/json", nil); code != http.StatusOK {
			t.Fatalf("sweep: status %d", code)
		}
	}

	sweep()
	warm := counters()
	if warm.TreeBuilds != 1 || warm.CoreDistBuilds != 3 || warm.CutBuilds != 9 {
		t.Fatalf("warmup counters off: %+v", warm)
	}

	if code := ts.do(http.MethodPost, "/v1/datasets/inval/points", insertBody(t, [][]float64{{0.25, 0.75}}), "application/json", nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	c := counters()
	if c.TreePatches != 1 {
		t.Fatalf("tree_patches = %d, want exactly 1", c.TreePatches)
	}
	if c.TreeBuilds != 1 {
		t.Fatalf("tree_builds = %d after mutation, want still 1 (patch, not rebuild)", c.TreeBuilds)
	}
	if c.MutationEpoch != 1 {
		t.Fatalf("mutation_epoch = %d, want 1", c.MutationEpoch)
	}

	sweep()
	c = counters()
	if got := c.CoreDistBuilds - warm.CoreDistBuilds; got != 3 {
		t.Fatalf("core_dist rebuilds after mutation = %d, want k=3", got)
	}
	if got := c.DendrogramBuilds - warm.DendrogramBuilds; got != 3 {
		t.Fatalf("dendrogram rebuilds after mutation = %d, want 3", got)
	}
	if c.CutHits != warm.CutHits {
		t.Fatalf("cut_hits moved %d -> %d across the mutation: stale cut-cache results served", warm.CutHits, c.CutHits)
	}
	if c.CutBuilds != 18 {
		t.Fatalf("cut_builds = %d, want 18 (9 warm + 9 rebuilt)", c.CutBuilds)
	}
}

// TestConcurrentInsertSweep409 pins the bugfix for queries racing a
// mutation: a query whose pipeline build straddles an insert answers 409
// Conflict, never a payload computed against invalidated state (and never
// a 500). The engine build hook holds the query's hierarchy build open
// while the insert lands.
func TestConcurrentInsertSweep409(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("race", testPoints(200), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	engine.TestBuildHook = func(stage string) {
		if stage == "hier" {
			once.Do(func() { close(entered) })
			<-gate
		}
	}
	t.Cleanup(func() { engine.TestBuildHook = nil })

	type result struct {
		code int
	}
	done := make(chan result, 1)
	go func() {
		code := ts.do(http.MethodGet, "/v1/datasets/race/hdbscan?minpts=5&eps=1.0&labels=false", nil, "", nil)
		done <- result{code}
	}()

	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		close(gate)
		t.Fatal("query never reached the hierarchy build")
	}
	// The query is parked inside its hierarchy build; the insert must not
	// block behind it (the epoch bumps before the build lock) and must
	// flip the in-flight query to a conflict.
	if code := ts.do(http.MethodPost, "/v1/datasets/race/points", insertBody(t, [][]float64{{5, 5}}), "application/json", nil); code != http.StatusOK {
		t.Fatalf("insert during in-flight query: status %d", code)
	}
	close(gate)
	res := <-done
	if res.code != http.StatusConflict {
		t.Fatalf("racing query: status %d, want 409", res.code)
	}

	// A clean retry (no concurrent mutation) succeeds.
	engine.TestBuildHook = nil
	if code := ts.get("/v1/datasets/race/hdbscan?minpts=5&eps=1.0&labels=false", nil); code != http.StatusOK {
		t.Fatalf("retry after conflict: status %d", code)
	}
	var stats struct {
		Robustness struct {
			Mutations int64 `json:"mutations"`
			Conflicts int64 `json:"conflicts"`
		} `json:"robustness"`
	}
	if code := ts.get("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Robustness.Mutations != 1 || stats.Robustness.Conflicts != 1 {
		t.Fatalf("robustness counters: %+v, want 1 mutation and 1 conflict", stats.Robustness)
	}
}

// TestMutatedWarmRestart pins snapshot durability across mutations at the
// daemon level: a mutated dataset persists its compacted live set, and a
// brand-new server over the same data dir answers every query
// byte-identically from exactly one snapshot load.
func TestMutatedWarmRestart(t *testing.T) {
	dir := t.TempDir()
	queries := []string{
		"/v1/datasets/mwr/hdbscan?minpts=5&eps=1.2",
		"/v1/datasets/mwr/emst",
		"/v1/datasets/mwr/knn?q=0&k=4",
		"/v1/datasets/mwr/range?q=3&r=1.5",
	}

	ts1 := newTestServer(t, Config{DataDir: dir})
	if code := ts1.upload("mwr", testPoints(400), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	// Warm the pipeline, then mutate: the upload-time snapshot on disk is
	// now stale in both points and stages.
	if _, code := ts1.raw(http.MethodGet, queries[0]); code != http.StatusOK {
		t.Fatalf("warmup: status %d", code)
	}
	if code := ts1.do(http.MethodPost, "/v1/datasets/mwr/points", insertBody(t, [][]float64{{7.5, -2.5}, {7.25, -2.75}}), "application/json", nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if code := ts1.do(http.MethodDelete, "/v1/datasets/mwr/points", deleteBody(t, []int64{1, 2, 3}), "application/json", nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		body, code := ts1.raw(http.MethodGet, q)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d (%s)", q, code, body)
		}
		want[i] = body
	}
	// PersistAll must see the dirty index as stale (the content hash alone
	// would match the pre-mutation file) and write the compacted live set.
	if n, err := ts1.srv.PersistAll(); err != nil || n != 1 {
		t.Fatalf("PersistAll: n=%d err=%v", n, err)
	}

	ts2 := newTestServer(t, Config{DataDir: dir})
	for i, q := range queries {
		body, code := ts2.raw(http.MethodGet, q)
		if code != http.StatusOK {
			t.Fatalf("restart GET %s: status %d (%s)", q, code, body)
		}
		if !bytes.Equal(body, want[i]) {
			t.Fatalf("GET %s differs after restart:\n  before: %s\n  after:  %s", q, want[i], body)
		}
	}
	var st storeStatsResponse
	if code := ts2.get("/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Store.Loads != 1 || st.Store.LoadFails != 0 {
		t.Fatalf("store stats after mutated restart: %+v", st.Store)
	}
	var info struct {
		Dataset datasetInfo `json:"dataset"`
	}
	if code := ts2.get("/v1/datasets/mwr", &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Dataset.N != 399 {
		t.Fatalf("restored N = %d, want 399 (400 + 2 inserts - 3 deletes)", info.Dataset.N)
	}
}

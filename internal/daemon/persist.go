package daemon

import (
	"parclust"
	"parclust/internal/registry"
)

// This file wires the snapshot store (internal/store) into the serving
// loop: uploads persist a cold snapshot, pressure evictions spill the warm
// stage set, and queries against a non-resident dataset lazily reload the
// snapshot instead of 404ing. Every path is inert when Config.DataDir is
// unset (s.st == nil).

// loadFlight coalesces concurrent cold loads for one dataset name: the
// first miss decodes the snapshot, everyone else waits on done.
type loadFlight struct {
	done chan struct{}
	d    *dataset
	err  error
}

// coldLoad brings a snapshotted dataset back into service. The leader
// decodes the snapshot and offers it to the registry; followers block
// until the leader finishes and then pin the admitted entry. Admission is
// best-effort — if the registry cannot take the dataset (budget exhausted
// by pinned entries, or it was evicted again immediately), the query is
// still served from the decoded copy with a no-op release.
func (s *Server) coldLoad(name string) (*dataset, func(), error) {
	s.loadMu.Lock()
	if f, ok := s.loading[name]; ok {
		s.loadMu.Unlock()
		<-f.done
		if h, ok := s.reg.Acquire(name); ok {
			return h.Value(), h.Release, nil
		}
		if f.err != nil {
			return nil, nil, f.err
		}
		return f.d, func() {}, nil
	}
	// Close the gap where the previous leader admitted the dataset between
	// our registry miss and taking loadMu — without this, every racer
	// would decode its own copy.
	if h, ok := s.reg.Acquire(name); ok {
		s.loadMu.Unlock()
		return h.Value(), h.Release, nil
	}
	f := &loadFlight{done: make(chan struct{})}
	s.loading[name] = f
	s.loadMu.Unlock()

	f.d, f.err = s.loadSnapshot(name)
	if f.err == nil {
		// An admission failure is not a load failure: the decoded dataset
		// still serves this query below.
		_ = s.reg.Put(name, f.d, f.d.bytes)
	}
	s.loadMu.Lock()
	delete(s.loading, name)
	s.loadMu.Unlock()
	close(f.done)

	if f.err != nil {
		return nil, nil, f.err
	}
	if h, ok := s.reg.Acquire(name); ok {
		return h.Value(), h.Release, nil
	}
	return f.d, func() {}, nil
}

// loadSnapshot decodes name's snapshot file into a dataset.
func (s *Server) loadSnapshot(name string) (*dataset, error) {
	f, err := s.st.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	idx, det, err := parclust.ReadSnapshotDetails(f)
	if err != nil {
		s.loadFails.Add(1)
		return nil, err
	}
	s.installGate(idx)
	s.loads.Add(1)
	return &dataset{name: name, metric: det.Metric, idx: idx, bytes: idx.ApproxBytes()}, nil
}

// onRelease is the registry eviction hook (set only when spilling is on).
// A pressure eviction spills the dataset's warm stage set to disk; user
// deletions and upload replacements manage their snapshot files at the
// request site, so other causes are ignored. The registry guarantees the
// callback runs with no registry locks held, so the disk write here only
// slows the evicting request, never blocks the registry.
func (s *Server) onRelease(key string, d *dataset, cause registry.ReleaseCause) {
	if cause != registry.CausePressure {
		return
	}
	if err := s.persist(d); err == nil {
		s.spills.Add(1)
	}
}

// persist writes d's snapshot unless the copy on disk is already current:
// same point-set content hash and at least as many stage chunks. The
// staleness check makes repeated spill/reload cycles of an unchanged
// dataset write the file once. A Dirty index is unconditionally stale —
// its signature still describes the pre-mutation base points, so the hash
// comparison would wrongly skip the write (WriteSnapshot compacts, making
// the written snapshot carry the live set).
func (s *Server) persist(d *dataset) error {
	sig := d.idx.SnapshotSignature()
	if hdr, err := s.st.ReadHeaderFile(d.name); err == nil && !d.idx.Dirty() &&
		hdr.ContentHash == sig.ContentHash && len(hdr.Chunks) >= sig.Chunks {
		return nil
	}
	_, err := s.st.Write(d.name, d.idx.WriteSnapshot)
	return err
}

// PersistAll snapshots every resident dataset (stale-aware), for graceful
// shutdown: the next daemon start serves the same datasets warm. Returns
// how many datasets are durable on disk and the first write error.
func (s *Server) PersistAll() (int, error) {
	if s.st == nil {
		return 0, nil
	}
	var firstErr error
	n := 0
	for _, key := range s.reg.Keys() {
		h, ok := s.reg.Peek(key)
		if !ok {
			continue
		}
		err := s.persist(h.Value())
		h.Release()
		if err == nil {
			n++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return n, firstErr
}

// storeJSON is the "store" section of /v1/stats.
type storeJSON struct {
	Enabled   bool  `json:"enabled"`
	Spill     bool  `json:"spill"`
	Snapshots int   `json:"snapshots"`
	DiskBytes int64 `json:"disk_bytes"`
	Spills    int64 `json:"spills"`
	Loads     int64 `json:"loads"`
	LoadFails int64 `json:"load_failures"`
}

func (s *Server) storeStats() storeJSON {
	out := storeJSON{Enabled: s.st != nil, Spill: s.cfg.Spill}
	if s.st == nil {
		return out
	}
	out.Snapshots, out.DiskBytes = s.st.DiskStats()
	out.Spills = s.spills.Load()
	out.Loads = s.loads.Load()
	out.LoadFails = s.loadFails.Load()
	return out
}

package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"parclust"
)

// Streaming response path: a request with "application/x-ndjson" in its
// Accept header opts into a chunked NDJSON stream instead of the buffered
// JSON document. The stream is one JSON object per line:
//
//	line 1    the header — the buffered response object minus its large
//	          array field (labels / edges / order / cells)
//	lines 2+  chunk records carrying slices of that array, in order
//	last      a trailer {"done":true,"items":N} with the total item count
//
// Reassembly (concatenate the chunks, reattach to the header) yields a
// document byte-identical to the buffered response, which the e2e tests
// assert. The writer flushes after every record so results reach the
// client while the server is still producing, and it checks the request
// context between records so a disconnected client stops the producer at
// the next chunk boundary instead of keeping a goroutine encoding into a
// dead connection. Peak server memory per streamed request is one chunk,
// not the whole document.

// streamChunkSize is the number of array items carried per NDJSON chunk
// record. 8192 labels is ~64 KiB of JSON text — large enough to amortize
// the per-record encode/flush, small enough that per-request peak memory
// stays far below a full n-point document. A var so tests can shrink it to
// exercise chunk boundaries without multi-hundred-thousand-point datasets.
var streamChunkSize = 8192

// wantsNDJSON reports whether the request opted into a streamed NDJSON
// response.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamTrailer is the final record of every complete NDJSON stream; a
// client that never sees one knows the stream was truncated.
type streamTrailer struct {
	Done  bool `json:"done"`
	Items int  `json:"items"`
}

// streamWriter emits NDJSON records with a flush after every record and a
// context check before it. A write failure or client disconnect latches
// err; all further writes are no-ops, so producer loops can just stop on
// the first false return.
type streamWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	ctx     context.Context
	enc     *json.Encoder
	err     error
	items   int
}

// newStreamWriter commits the response to NDJSON (status 200 and the
// content type go out immediately), so every error past this point must be
// reported in-band or by truncation — callers validate everything first.
func newStreamWriter(w http.ResponseWriter, r *http.Request) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	f, _ := w.(http.Flusher)
	return &streamWriter{w: w, flusher: f, ctx: r.Context(), enc: enc}
}

// write emits one record and flushes it; false means the stream is dead
// (client gone, context cancelled, or write failure) and the producer must
// stop.
func (s *streamWriter) write(v any) bool {
	if s.err != nil {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return false
	}
	if err := s.enc.Encode(v); err != nil {
		s.err = err
		return false
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return true
}

// finish emits the trailer record with the accumulated item count.
func (s *streamWriter) finish() {
	s.write(streamTrailer{Done: true, Items: s.items})
}

// labelChunk / edgeChunk / barChunk / cellChunk are the per-endpoint chunk
// record shapes; the field name matches the array field of the buffered
// response so reassembly is mechanical.
type labelChunk struct {
	Labels []int32 `json:"labels"`
}

type edgeChunk struct {
	Edges []edgeJSON `json:"edges"`
}

type barChunk struct {
	Order []opticsBar `json:"order"`
}

// streamLabels chunks one labels slice over the writer.
func (s *streamWriter) streamLabels(labels []int32) bool {
	for off := 0; off < len(labels); off += streamChunkSize {
		end := min(off+streamChunkSize, len(labels))
		if !s.write(labelChunk{Labels: labels[off:end]}) {
			return false
		}
		s.items += end - off
	}
	return true
}

// streamEdges chunks an edge list over the writer, converting to the wire
// shape one chunk at a time so only a chunk's worth of edgeJSON is ever
// resident.
func (s *streamWriter) streamEdges(edges []parclust.Edge) bool {
	buf := make([]edgeJSON, 0, min(streamChunkSize, len(edges)))
	for off := 0; off < len(edges); off += streamChunkSize {
		end := min(off+streamChunkSize, len(edges))
		buf = buf[:0]
		for _, e := range edges[off:end] {
			buf = append(buf, edgeJSON{U: e.U, V: e.V, W: e.W})
		}
		if !s.write(edgeChunk{Edges: buf}) {
			return false
		}
		s.items += end - off
	}
	return true
}

// streamBars chunks an OPTICS ordering over the writer, converting entries
// to wire bars one chunk at a time.
func (s *streamWriter) streamBars(entries []parclust.OPTICSEntry) bool {
	buf := make([]opticsBar, 0, min(streamChunkSize, len(entries)))
	for off := 0; off < len(entries); off += streamChunkSize {
		end := min(off+streamChunkSize, len(entries))
		buf = buf[:0]
		for _, e := range entries[off:end] {
			buf = append(buf, toOpticsBar(e))
		}
		if !s.write(barChunk{Order: buf}) {
			return false
		}
		s.items += end - off
	}
	return true
}

package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parclust"
	"parclust/internal/engine"
)

// testServer wraps an httptest server around a fresh daemon.
type testServer struct {
	*httptest.Server
	srv *Server
	t   *testing.T
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &testServer{Server: ts, srv: s, t: t}
}

// do performs one request and decodes the JSON response into out (which
// may be nil), returning the status code.
func (ts *testServer) do(method, path string, body []byte, contentType string, out any) int {
	ts.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		ts.t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			ts.t.Fatalf("decode %s %s response %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

func (ts *testServer) get(path string, out any) int {
	return ts.do(http.MethodGet, path, nil, "", out)
}

// upload stores pts under name via the JSON body format.
func (ts *testServer) upload(name string, pts parclust.Points, metric string) int {
	ts.t.Helper()
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = append([]float64(nil), pts.Data[i*pts.Dim:(i+1)*pts.Dim]...)
	}
	body, err := json.Marshal(uploadRequest{Metric: metric, Points: rows})
	if err != nil {
		ts.t.Fatal(err)
	}
	return ts.do(http.MethodPut, "/v1/datasets/"+name, body, "application/json", nil)
}

func testPoints(n int) parclust.Points {
	return parclust.GenerateGaussianMixture(n, 2, 3, 7)
}

type labelsResponse struct {
	NumClusters int     `json:"num_clusters"`
	NumNoise    int     `json:"num_noise"`
	Labels      []int32 `json:"labels"`
}

func sameLabels(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestDaemonEndToEnd uploads a dataset and checks that every query
// endpoint returns results byte-identical to the one-shot library API: a
// minPts x eps HDBSCAN sweep, DBSCAN/DBSCAN*, OPTICS, EMST, k-NN and
// range queries.
func TestDaemonEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	pts := testPoints(300)
	if code := ts.upload("e2e", pts, ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	minPtsList := []int{3, 7}
	epsList := []float64{0.5, 1.0, 2.0, 4.0}
	for _, minPts := range minPtsList {
		oneShot, err := parclust.HDBSCAN(pts, minPts)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range epsList {
			var got labelsResponse
			path := fmt.Sprintf("/v1/datasets/e2e/hdbscan?minpts=%d&eps=%g", minPts, eps)
			if code := ts.get(path, &got); code != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, code)
			}
			want := oneShot.ClustersAt(eps)
			if got.NumClusters != want.NumClusters || got.NumNoise != oneShot.NumNoiseAt(eps) {
				t.Fatalf("hdbscan(%d,%g): clusters=%d noise=%d, want %d/%d",
					minPts, eps, got.NumClusters, got.NumNoise, want.NumClusters, oneShot.NumNoiseAt(eps))
			}
			sameLabels(t, path, got.Labels, want.Labels)
		}
	}

	// The whole sweep above must have reused one tree and one pipeline run
	// per minPts.
	var info struct {
		Counters countersJSON `json:"counters"`
	}
	if code := ts.get("/v1/datasets/e2e", &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	c := info.Counters
	if c.TreeBuilds != 1 || c.CoreDistBuilds != 2 || c.MSTBuilds != 2 || c.DendrogramBuilds != 2 {
		t.Fatalf("sweep counters: tree=%d core=%d mst=%d dendro=%d, want 1/2/2/2",
			c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds, c.DendrogramBuilds)
	}

	// Stability-based extraction.
	{
		var got labelsResponse
		if code := ts.get("/v1/datasets/e2e/hdbscan?minpts=5&minclustersize=10", &got); code != http.StatusOK {
			t.Fatalf("stable extraction: status %d", code)
		}
		oneShot, _ := parclust.HDBSCAN(pts, 5)
		want := oneShot.ExtractStableClusters(10)
		if got.NumClusters != want.NumClusters {
			t.Fatalf("stable extraction: %d clusters, want %d", got.NumClusters, want.NumClusters)
		}
		sameLabels(t, "stable extraction", got.Labels, want.Labels)
	}

	// DBSCAN and DBSCAN*.
	for _, star := range []bool{false, true} {
		var got labelsResponse
		path := fmt.Sprintf("/v1/datasets/e2e/dbscan?minpts=5&eps=1.5&star=%v", star)
		if code := ts.get(path, &got); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		var want parclust.Clustering
		var err error
		if star {
			want, err = parclust.DBSCANStar(pts, 5, 1.5)
		} else {
			want, err = parclust.DBSCAN(pts, 5, 1.5)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != want.NumClusters {
			t.Fatalf("%s: %d clusters, want %d", path, got.NumClusters, want.NumClusters)
		}
		sameLabels(t, path, got.Labels, want.Labels)
	}

	// OPTICS: ids identical, reachability identical with null <-> +Inf.
	{
		var got struct {
			Order []opticsBar `json:"order"`
		}
		if code := ts.get("/v1/datasets/e2e/optics?minpts=5&eps=2.0", &got); code != http.StatusOK {
			t.Fatalf("optics: status %d", code)
		}
		want, err := parclust.OPTICS(pts, 5, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Order) != len(want) {
			t.Fatalf("optics: %d entries, want %d", len(got.Order), len(want))
		}
		for i, e := range want {
			g := got.Order[i]
			if g.ID != e.Idx {
				t.Fatalf("optics[%d]: id %d, want %d", i, g.ID, e.Idx)
			}
			if math.IsInf(e.Reachability, 1) {
				if g.Reachability != nil {
					t.Fatalf("optics[%d]: reachability %v, want null", i, *g.Reachability)
				}
			} else if g.Reachability == nil || *g.Reachability != e.Reachability {
				t.Fatalf("optics[%d]: reachability %v, want %v", i, g.Reachability, e.Reachability)
			}
		}
	}

	// EMST edges byte-identical to the one-shot result.
	{
		var got struct {
			NumEdges int        `json:"num_edges"`
			Edges    []edgeJSON `json:"edges"`
		}
		if code := ts.get("/v1/datasets/e2e/emst", &got); code != http.StatusOK {
			t.Fatalf("emst: status %d", code)
		}
		want, err := parclust.EMST(pts)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumEdges != len(want) || len(got.Edges) != len(want) {
			t.Fatalf("emst: %d edges, want %d", got.NumEdges, len(want))
		}
		for i, e := range want {
			g := got.Edges[i]
			if g.U != e.U || g.V != e.V || g.W != e.W {
				t.Fatalf("emst edge %d: (%d,%d,%v), want (%d,%d,%v)", i, g.U, g.V, g.W, e.U, e.V, e.W)
			}
		}
	}

	// k-NN and range against a fresh Index.
	{
		fresh, err := parclust.NewIndex(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Neighbors []neighborJSON `json:"neighbors"`
		}
		if code := ts.get("/v1/datasets/e2e/knn?q=0&k=5", &got); code != http.StatusOK {
			t.Fatalf("knn: status %d", code)
		}
		want, _ := fresh.KNN(0, 5)
		if len(got.Neighbors) != len(want) {
			t.Fatalf("knn: %d neighbors, want %d", len(got.Neighbors), len(want))
		}
		for i, nb := range want {
			g := got.Neighbors[i]
			if g.ID != nb.Idx || g.Dist != nb.Dist {
				t.Fatalf("knn[%d]: (%d,%v), want (%d,%v)", i, g.ID, g.Dist, nb.Idx, nb.Dist)
			}
		}
		var gotRange struct {
			Count int     `json:"count"`
			IDs   []int32 `json:"ids"`
		}
		if code := ts.get("/v1/datasets/e2e/range?q=0&r=1.5", &gotRange); code != http.StatusOK {
			t.Fatalf("range: status %d", code)
		}
		wantIDs, _ := fresh.RangeQuery(0, 1.5)
		if gotRange.Count != len(wantIDs) || len(gotRange.IDs) != len(wantIDs) {
			t.Fatalf("range: count=%d ids=%d, want %d", gotRange.Count, len(gotRange.IDs), len(wantIDs))
		}
		idSet := map[int32]bool{}
		for _, id := range wantIDs {
			idSet[id] = true
		}
		for _, id := range gotRange.IDs {
			if !idSet[id] {
				t.Fatalf("range: unexpected id %d", id)
			}
		}
	}
}

// TestDaemonCSVUpload checks the CSV body format produces the same
// dataset as the JSON one.
func TestDaemonCSVUpload(t *testing.T) {
	ts := newTestServer(t, Config{})
	pts := testPoints(120)
	var csv strings.Builder
	csv.WriteString("# demo dataset\n")
	for i := 0; i < pts.N; i++ {
		row := pts.Data[i*pts.Dim : (i+1)*pts.Dim]
		fmt.Fprintf(&csv, "%v,%v\n", row[0], row[1])
	}
	if code := ts.do(http.MethodPut, "/v1/datasets/csvds", []byte(csv.String()), "text/csv", nil); code != http.StatusCreated {
		t.Fatalf("CSV upload: status %d", code)
	}
	var got labelsResponse
	if code := ts.get("/v1/datasets/csvds/hdbscan?minpts=5&eps=2.0", &got); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	oneShot, err := parclust.HDBSCAN(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameLabels(t, "csv-uploaded dataset", got.Labels, oneShot.ClustersAt(2.0).Labels)
}

// TestDaemonColdQueriesCoalesce proves the serving-path singleflight: 16
// concurrent cold HTTP queries against one dataset perform exactly one
// tree build, with the other 15 counted as coalesced. The engine build
// hook holds the leader's pipeline run open until all followers have
// parked, making the counter deterministic.
func TestDaemonColdQueriesCoalesce(t *testing.T) {
	const clients = 16
	ts := newTestServer(t, Config{})
	if code := ts.upload("cold", testPoints(400), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	engine.TestBuildHook = func(stage string) {
		if stage == "hier" {
			<-gate
		}
	}
	defer func() { engine.TestBuildHook = nil }()

	counters := func() countersJSON {
		var info struct {
			Counters countersJSON `json:"counters"`
		}
		if code := ts.get("/v1/datasets/cold", &info); code != http.StatusOK {
			t.Fatalf("info: status %d", code)
		}
		return info.Counters
	}

	var wg sync.WaitGroup
	var bad atomic.Int64
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got labelsResponse
			if code := ts.get("/v1/datasets/cold/hdbscan?minpts=10&eps=1.0&labels=false", &got); code != http.StatusOK {
				bad.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for counters().DendrogramCoalesced != clients-1 {
		if time.Now().After(deadline) {
			release()
			t.Fatalf("timed out: coalesced=%d, want %d", counters().DendrogramCoalesced, clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d of %d concurrent cold queries failed", bad.Load(), clients)
	}
	c := counters()
	if c.TreeBuilds != 1 {
		t.Fatalf("TreeBuilds = %d, want exactly 1", c.TreeBuilds)
	}
	if c.CoalescedTotal != clients-1 {
		t.Fatalf("coalesced_total = %d, want %d", c.CoalescedTotal, clients-1)
	}
	if c.CoreDistBuilds != 1 || c.MSTBuilds != 1 || c.DendrogramBuilds != 1 {
		t.Fatalf("builds: core=%d mst=%d dendro=%d, want 1/1/1", c.CoreDistBuilds, c.MSTBuilds, c.DendrogramBuilds)
	}
}

// TestDaemonEvictUnderLoad evicts and re-uploads a dataset while query
// goroutines hammer it: every query must either succeed against a pinned
// Index or 404 cleanly — never crash, corrupt, or observe a half-freed
// dataset. Run under -race in CI.
func TestDaemonEvictUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; the dedicated CI race step runs it without -short")
	}
	ts := newTestServer(t, Config{})
	pts := testPoints(200)
	if code := ts.upload("churn", pts, ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	want, err := parclust.HDBSCAN(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := want.ClustersAt(1.5).Labels

	const (
		readers = 4
		iters   = 60
		churns  = 30
	)
	var wg sync.WaitGroup
	errs := make(chan string, readers*iters)
	for range readers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var got labelsResponse
				code := ts.get("/v1/datasets/churn/hdbscan?minpts=5&eps=1.5", &got)
				switch code {
				case http.StatusOK:
					if len(got.Labels) != len(wantLabels) {
						errs <- fmt.Sprintf("query under churn: %d labels, want %d", len(got.Labels), len(wantLabels))
						return
					}
					for j := range wantLabels {
						if got.Labels[j] != wantLabels[j] {
							errs <- fmt.Sprintf("query under churn: label[%d] differs", j)
							return
						}
					}
				case http.StatusNotFound:
					// evicted between requests; fine
				default:
					errs <- fmt.Sprintf("query under churn: status %d", code)
					return
				}
			}
		}()
	}
	for i := 0; i < churns; i++ {
		ts.do(http.MethodDelete, "/v1/datasets/churn", nil, "", nil)
		if code := ts.upload("churn", pts, ""); code != http.StatusCreated {
			t.Fatalf("re-upload %d: status %d", i, code)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestDaemonAdmissionAndLRU exercises the -max-bytes budget end to end:
// datasets beyond the budget evict the least recently used one, and a
// dataset larger than the whole budget is refused with 507.
func TestDaemonAdmissionAndLRU(t *testing.T) {
	// Budget sized for two ~120-point datasets but not three.
	probe, err := parclust.NewIndex(testPoints(120), nil)
	if err != nil {
		t.Fatal(err)
	}
	per := probe.ApproxBytes()
	ts := newTestServer(t, Config{MaxBytes: 2*per + per/2})

	for _, name := range []string{"a", "b"} {
		if code := ts.upload(name, testPoints(120), ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, code)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	ts.get("/v1/datasets/a/knn?q=0&k=2", nil)
	if code := ts.upload("c", testPoints(120), ""); code != http.StatusCreated {
		t.Fatalf("upload c: status %d", code)
	}
	if code := ts.get("/v1/datasets/b", nil); code != http.StatusNotFound {
		t.Fatalf("expected b evicted, got status %d", code)
	}
	for _, name := range []string{"a", "c"} {
		if code := ts.get("/v1/datasets/"+name, nil); code != http.StatusOK {
			t.Fatalf("dataset %s missing after LRU eviction, status %d", name, code)
		}
	}
	// A dataset bigger than the whole budget is refused outright.
	if code := ts.upload("huge", testPoints(2000), ""); code != http.StatusInsufficientStorage {
		t.Fatalf("oversized upload: status %d, want 507", code)
	}
	var stats struct {
		Registry registryJSON `json:"registry"`
	}
	if code := ts.get("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Registry.Datasets != 2 || stats.Registry.Evictions != 1 {
		t.Fatalf("registry stats: %+v, want 2 datasets / 1 eviction", stats.Registry)
	}
}

// TestDaemonBroadcast fans one HDBSCAN cut out across all datasets and
// checks each slice against the per-dataset endpoint.
func TestDaemonBroadcast(t *testing.T) {
	ts := newTestServer(t, Config{})
	sets := map[string]parclust.Points{
		"alpha": parclust.GenerateGaussianMixture(150, 2, 2, 1),
		"beta":  parclust.GenerateGaussianMixture(250, 2, 4, 2),
	}
	for name, pts := range sets {
		if code := ts.upload(name, pts, ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, code)
		}
	}
	var got struct {
		Results []broadcastEntry `json:"results"`
	}
	if code := ts.get("/v1/broadcast/hdbscan?minpts=5&eps=1.5", &got); code != http.StatusOK {
		t.Fatalf("broadcast: status %d", code)
	}
	if len(got.Results) != len(sets) {
		t.Fatalf("broadcast covered %d datasets, want %d", len(got.Results), len(sets))
	}
	for _, res := range got.Results {
		if res.Error != "" {
			t.Fatalf("broadcast %s: %s", res.Dataset, res.Error)
		}
		var single labelsResponse
		path := fmt.Sprintf("/v1/datasets/%s/hdbscan?minpts=5&eps=1.5&labels=false", res.Dataset)
		if code := ts.get(path, &single); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		if res.NumClusters != single.NumClusters || res.NumNoise != single.NumNoise {
			t.Fatalf("broadcast %s: %d/%d, single query %d/%d",
				res.Dataset, res.NumClusters, res.NumNoise, single.NumClusters, single.NumNoise)
		}
		if res.N != sets[res.Dataset].N {
			t.Fatalf("broadcast %s: n=%d, want %d", res.Dataset, res.N, sets[res.Dataset].N)
		}
	}
}

// TestDaemonBroadcastColdNoDeadlock hammers the broadcast fan-out while
// every dataset is cold at several minPts values, racing fan-out bodies
// against singleflight stage-build leaders. Regression for the leapfrog-
// steal deadlock: fan-out bodies block on engine build synchronization,
// so they must run as plain goroutines, never as work-stealing scheduler
// tasks (a build leader's Sync could steal one and park on a flight only
// it can complete).
func TestDaemonBroadcastColdNoDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; the dedicated CI race step runs it without -short")
	}
	ts := newTestServer(t, Config{})
	const datasets = 3
	for i := range datasets {
		if code := ts.upload(fmt.Sprintf("cold%d", i), parclust.GenerateGaussianMixture(250+50*i, 2, 3, int64(i)), ""); code != http.StatusCreated {
			t.Fatalf("upload cold%d: status %d", i, code)
		}
	}
	done := make(chan struct{})
	errs := make(chan string, 64)
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				client := ts.Client()
				getOK := func(path string) {
					resp, err := client.Get(ts.URL + path)
					if err != nil {
						errs <- err.Error()
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("GET %s: status %d", path, resp.StatusCode)
					}
				}
				for it := 0; it < 4; it++ {
					mp := 3 + (g+it)%5
					getOK(fmt.Sprintf("/v1/broadcast/hdbscan?minpts=%d&eps=1.0", mp))
					getOK(fmt.Sprintf("/v1/datasets/cold%d/hdbscan?minpts=%d&eps=1.0&labels=false", it%datasets, mp))
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("broadcast over cold datasets deadlocked")
	}
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestDaemonErrors covers the input-validation surface.
func TestDaemonErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("ok", testPoints(50), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	cases := []struct {
		method, path string
		body         string
		contentType  string
		want         int
	}{
		{"GET", "/v1/datasets/missing/hdbscan?minpts=5&eps=1", "", "", http.StatusNotFound},
		{"GET", "/v1/datasets/ok/hdbscan?eps=1", "", "", http.StatusBadRequest},    // missing minpts
		{"GET", "/v1/datasets/ok/hdbscan?minpts=5", "", "", http.StatusBadRequest}, // no eps / minclustersize
		{"GET", "/v1/datasets/ok/hdbscan?minpts=5&eps=1&algo=nope", "", "", http.StatusBadRequest},
		{"GET", "/v1/datasets/ok/hdbscan?minpts=999&eps=1", "", "", http.StatusBadRequest}, // minPts > n
		{"GET", "/v1/datasets/ok/dbscan?minpts=5", "", "", http.StatusBadRequest},          // missing eps
		{"GET", "/v1/datasets/ok/knn?q=-1&k=3", "", "", http.StatusBadRequest},
		{"GET", "/v1/datasets/ok/knn?q=0&k=0", "", "", http.StatusBadRequest},
		{"GET", "/v1/datasets/ok/knn?q=4294967296&k=3", "", "", http.StatusBadRequest},   // would alias to 0 if truncated
		{"GET", "/v1/datasets/ok/range?q=4294967296&r=1", "", "", http.StatusBadRequest}, // ditto
		{"GET", "/v1/datasets/ok/range?q=0&r=-2", "", "", http.StatusBadRequest},
		{"GET", "/v1/datasets/ok/emst?algo=quantum", "", "", http.StatusBadRequest},
		{"GET", "/v1/datasets/ok/dbscan?minpts=5&eps=1&star=yes", "", "", http.StatusBadRequest},   // malformed bool must not silently flip semantics
		{"GET", "/v1/datasets/ok/hdbscan?minpts=5&eps=1&labels=no", "", "", http.StatusBadRequest}, // ditto
		{"DELETE", "/v1/datasets/missing", "", "", http.StatusNotFound},
		{"PUT", "/v1/datasets/bad%20name", `{"points":[[1,2]]}`, "application/json", http.StatusBadRequest},
		{"PUT", "/v1/datasets/empty", `{"points":[]}`, "application/json", http.StatusBadRequest},
		{"PUT", "/v1/datasets/ragged", `{"points":[[1,2],[3]]}`, "application/json", http.StatusBadRequest},
		{"PUT", "/v1/datasets/badmetric", `{"points":[[1,2]],"metric":"warp"}`, "application/json", http.StatusBadRequest},
		{"PUT", "/v1/datasets/nonfinite", `{"points":[[1e999,2]]}`, "application/json", http.StatusBadRequest},
		{"PUT", "/v1/datasets/badcsv", "1,2\nx,y\n", "text/csv", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var body []byte
		if tc.body != "" {
			body = []byte(tc.body)
		}
		if code := ts.do(tc.method, tc.path, body, tc.contentType, nil); code != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, code, tc.want)
		}
	}
	// Health check still fine after the abuse.
	if code := ts.get("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
}

package daemon

import (
	"net/http"
	"testing"
)

// TestQueryParamValidation sweeps every malformed-parameter path: each one
// must be a 400 written before any stage work runs.
func TestQueryParamValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("p", testPoints(60), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	bad := []string{
		"/v1/datasets/p/hdbscan?minpts=abc&eps=1",
		"/v1/datasets/p/hdbscan?minpts=3",
		"/v1/datasets/p/hdbscan?minpts=3&eps=xyz",
		"/v1/datasets/p/hdbscan?minpts=3&minclustersize=0",
		"/v1/datasets/p/hdbscan?minpts=3&minclustersize=abc",
		"/v1/datasets/p/hdbscan?minpts=3&eps=1&algo=bogus",
		"/v1/datasets/p/hdbscan?minpts=3&eps=1&labels=maybe",
		"/v1/datasets/p/dbscan?eps=1",
		"/v1/datasets/p/dbscan?minpts=3",
		"/v1/datasets/p/dbscan?minpts=3&eps=1&star=perhaps",
		"/v1/datasets/p/dbscan?minpts=3&eps=1&labels=maybe",
		"/v1/datasets/p/optics?minpts=3&eps=bad",
		"/v1/datasets/p/emst?algo=bogus",
		"/v1/datasets/p/emst?edges=maybe",
		"/v1/datasets/p/knn?q=0",
		"/v1/datasets/p/knn?k=3",
		"/v1/datasets/p/knn?q=99999999999999999999&k=3",
		"/v1/datasets/p/range?q=0",
		"/v1/datasets/p/range?q=0&r=bad",
		"/v1/datasets/p/range?q=0&r=1&ids=maybe",
		"/v1/broadcast/hdbscan?minpts=3",
		"/v1/broadcast/hdbscan?eps=1",
	}
	for _, p := range bad {
		if code := ts.get(p, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", p, code)
		}
	}
	if code := ts.get("/v1/datasets/p/optics?minpts=", nil); code != http.StatusBadRequest {
		t.Errorf("empty minpts: want 400")
	}

	// Every EMST algorithm name is accepted and answers the same tree.
	for _, algo := range []string{"memogfk", "gfk", "naive", "boruvka", "delaunay2d", "wspdboruvka"} {
		var out struct {
			NumEdges int `json:"num_edges"`
		}
		p := "/v1/datasets/p/emst?edges=false&algo=" + algo
		if code := ts.get(p, &out); code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", p, code)
		} else if out.NumEdges != 59 {
			t.Errorf("GET %s: %d edges, want 59", p, out.NumEdges)
		}
	}

	// The registry accessor exposes the live store to embedding code.
	if got := ts.srv.Registry().Len(); got != 1 {
		t.Fatalf("Registry().Len() = %d, want 1", got)
	}
}

package daemon

import (
	"net/http"
	"strings"
	"testing"
)

// TestQueryParamValidation sweeps every malformed-parameter path: each one
// must be a 400 written before any stage work runs.
func TestQueryParamValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("p", testPoints(60), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	bad := []string{
		"/v1/datasets/p/hdbscan?minpts=abc&eps=1",
		"/v1/datasets/p/hdbscan?minpts=3",
		"/v1/datasets/p/hdbscan?minpts=3&eps=xyz",
		"/v1/datasets/p/hdbscan?minpts=3&minclustersize=0",
		"/v1/datasets/p/hdbscan?minpts=3&minclustersize=abc",
		"/v1/datasets/p/hdbscan?minpts=3&eps=1&algo=bogus",
		"/v1/datasets/p/hdbscan?minpts=3&eps=1&labels=maybe",
		"/v1/datasets/p/dbscan?eps=1",
		"/v1/datasets/p/dbscan?minpts=3",
		"/v1/datasets/p/dbscan?minpts=3&eps=1&star=perhaps",
		"/v1/datasets/p/dbscan?minpts=3&eps=1&labels=maybe",
		"/v1/datasets/p/optics?minpts=3&eps=bad",
		"/v1/datasets/p/emst?algo=bogus",
		"/v1/datasets/p/emst?edges=maybe",
		"/v1/datasets/p/knn?q=0",
		"/v1/datasets/p/knn?k=3",
		"/v1/datasets/p/knn?q=99999999999999999999&k=3",
		"/v1/datasets/p/range?q=0",
		"/v1/datasets/p/range?q=0&r=bad",
		"/v1/datasets/p/range?q=0&r=1&ids=maybe",
		"/v1/broadcast/hdbscan?minpts=3",
		"/v1/broadcast/hdbscan?eps=1",
	}
	for _, p := range bad {
		if code := ts.get(p, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", p, code)
		}
	}
	if code := ts.get("/v1/datasets/p/optics?minpts=", nil); code != http.StatusBadRequest {
		t.Errorf("empty minpts: want 400")
	}

	// Every EMST algorithm name is accepted and answers the same tree.
	for _, algo := range []string{"memogfk", "gfk", "naive", "boruvka", "delaunay2d", "wspdboruvka"} {
		var out struct {
			NumEdges int `json:"num_edges"`
		}
		p := "/v1/datasets/p/emst?edges=false&algo=" + algo
		if code := ts.get(p, &out); code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", p, code)
		} else if out.NumEdges != 59 {
			t.Errorf("GET %s: %d edges, want 59", p, out.NumEdges)
		}
	}

	// The registry accessor exposes the live store to embedding code.
	if got := ts.srv.Registry().Len(); got != 1 {
		t.Fatalf("Registry().Len() = %d, want 1", got)
	}
}

// TestUploadNameValidation pins the dataset-name rule against path
// traversal: names that resolve to directory entries (".", "..",
// dot-prefixed hidden files) must be rejected before any body parsing,
// because a dataset name becomes a snapshot file stem verbatim.
func TestUploadNameValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	// "." and ".." are sent percent-encoded: ServeMux path-cleans the
	// literal segments away before routing, but %2E-encoded dots survive
	// cleaning and reach the handler as the decoded traversal name — the
	// exact vector the leading-dot rule exists for.
	bad := []string{
		"%2E", "%2E%2E", "%2E%2E%2E",
		"...", ".hidden", ".tmp-x-1", "..sneaky", ".pcsnap",
		strings.Repeat("a", 129),
	}
	body := []byte(`{"points":[[0,0],[1,1],[2,2]]}`)
	for _, p := range bad {
		if code := ts.do(http.MethodPut, "/v1/datasets/"+p, body, "application/json", nil); code != http.StatusBadRequest {
			t.Errorf("upload %q: status %d, want 400", p, code)
		}
	}
	// Interior and trailing dots stay legal — only the leading dot is the
	// directory-entry hazard.
	for _, name := range []string{"v1.2.3", "trailing.", "a"} {
		if code := ts.do(http.MethodPut, "/v1/datasets/"+name, body, "application/json", nil); code != http.StatusCreated {
			t.Errorf("upload %q: status %d, want 201", name, code)
		}
	}
}

package daemon

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"parclust"
	"parclust/internal/engine"
)

// This file is the daemon's overload-protection layer: per-tenant request
// rate limiting (429), a bounded cold-build admission gate (503), query
// deadlines (504), and per-tenant resident-byte quotas (507). Every
// mechanism is off by default and independently enabled by its Config
// field; every shed response carries Retry-After so well-behaved clients
// back off instead of hammering. Warm queries — answered from memoized
// stages and cut caches — never consult the build gate, so a saturated
// cold-build budget degrades cold traffic only.

// maxTrackedTenants bounds the rate limiter's bucket table. When the table
// fills (an adversary cycling spoofed tenant keys), it is reset wholesale:
// momentarily refilling honest buckets is a far smaller failure than
// unbounded memory growth.
const maxTrackedTenants = 4096

// tbucket is one tenant's token bucket, guarded by the owning limiter.
type tbucket struct {
	tokens float64
	last   time.Time
}

// limiter is a token-bucket rate limiter keyed by tenant. A request takes
// one token; tokens refill at qps up to burst.
type limiter struct {
	qps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tbucket
}

func newLimiter(qps float64, burst int) *limiter {
	if burst <= 0 {
		burst = int(math.Ceil(qps))
		if burst < 1 {
			burst = 1
		}
	}
	return &limiter{qps: qps, burst: float64(burst), buckets: make(map[string]*tbucket)}
}

// allow takes a token for key, reporting how long the caller should wait
// before retrying when the bucket is empty.
func (l *limiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[key]
	if !found {
		if len(l.buckets) >= maxTrackedTenants {
			l.buckets = make(map[string]*tbucket)
		}
		b = &tbucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.qps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.qps * float64(time.Second))
}

// tenantKey identifies the client for rate limiting and byte quotas: the
// X-Tenant header when present, else the host part of the remote address
// (so untagged clients are limited per source, not globally).
func tenantKey(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// setRetryAfter writes a Retry-After header of at least one second.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// isQueryPath reports whether the request is a dataset query (a
// sub-resource like /hdbscan or /sweep, or a broadcast fan-out) — the
// requests the query deadline applies to. Uploads and admin probes are
// exempt: a large upload legitimately outlives a query deadline, and
// health/stats must answer even on a saturated box.
func isQueryPath(r *http.Request) bool {
	if strings.HasPrefix(r.URL.Path, "/v1/broadcast/") {
		return true
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/datasets/")
	return ok && strings.Contains(rest, "/")
}

// withRobustness wraps the handler tree with admission control: the rate
// limiter sheds before any routing or body read, and the query deadline is
// installed on the request context so it propagates through the Index into
// cooperative stage-build cancellation. /healthz bypasses both — a
// liveness probe that 429s is worse than useless.
func (s *Server) withRobustness(h http.Handler) http.Handler {
	if s.lim == nil && s.cfg.QueryTimeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			h.ServeHTTP(w, r)
			return
		}
		if s.lim != nil {
			if ok, retry := s.lim.allow(tenantKey(r), time.Now()); !ok {
				s.rateLimited.Add(1)
				setRetryAfter(w, retry)
				writeError(w, http.StatusTooManyRequests, "rate limit exceeded, retry after %v", retry.Round(time.Millisecond))
				return
			}
		}
		if s.cfg.QueryTimeout > 0 && isQueryPath(r) {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h.ServeHTTP(w, r)
	})
}

// installGate points ix's engine at the server's shared cold-build
// semaphore. No-op when MaxColdBuilds is unset.
func (s *Server) installGate(ix *parclust.Index) {
	if s.buildSem == nil {
		return
	}
	sem := s.buildSem
	ix.SetBuildGate(func() (func(), bool) {
		select {
		case sem <- struct{}{}:
			return func() { <-sem }, true
		default:
			return nil, false
		}
	})
}

// queryError maps an Index query error to its HTTP response. A client that
// is already gone gets nothing (there is no one to write to); a deadline
// expiry is a 504; a cold build shed by the saturated build gate is a 503
// with Retry-After; a recovered build panic is a 500; everything else is
// the caller's 400.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		// A retry may hit warm: another query can finish the build the
		// deadline cut short, so a short backoff is the honest hint.
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusGatewayTimeout, "query deadline (%v) exceeded", s.cfg.QueryTimeout)
	case r.Context().Err() != nil:
		// Client disconnected mid-query; its cold build (if any) has been
		// cooperatively aborted by the context plumbing.
	case errors.Is(err, parclust.ErrOverloaded):
		s.overloaded.Add(1)
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "cold build capacity saturated, retry later")
	default:
		var bp *engine.BuildPanicError
		if errors.As(err, &bp) {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// tenantBytes sums the resident bytes of tenant's datasets, excluding
// skipName (the dataset an upload is about to replace).
func (s *Server) tenantBytes(tenant, skipName string) int64 {
	var total int64
	for _, key := range s.reg.Keys() {
		if key == skipName {
			continue
		}
		if h, ok := s.reg.Peek(key); ok {
			if d := h.Value(); d.tenant == tenant {
				total += d.bytes
			}
			h.Release()
		}
	}
	return total
}

// robustJSON is the "robustness" section of /v1/stats: the shed/timeout
// counters of the admission layer plus the engines' cooperative-abort
// counters aggregated across resident datasets.
type robustJSON struct {
	QueryTimeoutMS int64 `json:"query_timeout_ms"`
	MaxColdBuilds  int   `json:"max_cold_builds"`
	RateLimited    int64 `json:"rate_limited"`
	Overloaded     int64 `json:"overloaded"`
	Timeouts       int64 `json:"timeouts"`
	QuotaRejected  int64 `json:"quota_rejected"`
	BuildAborts    int64 `json:"build_aborts"`
	BuildPanics    int64 `json:"build_panics"`
	Mutations      int64 `json:"mutations"`
	Conflicts      int64 `json:"conflicts"`
}

func (s *Server) robustStats() robustJSON {
	out := robustJSON{
		QueryTimeoutMS: s.cfg.QueryTimeout.Milliseconds(),
		MaxColdBuilds:  s.cfg.MaxColdBuilds,
		RateLimited:    s.rateLimited.Load(),
		Overloaded:     s.overloaded.Load(),
		Timeouts:       s.timeouts.Load(),
		QuotaRejected:  s.quotaRejected.Load(),
		Mutations:      s.mutations.Load(),
		Conflicts:      s.conflicts.Load(),
	}
	for _, key := range s.reg.Keys() {
		if h, ok := s.reg.Peek(key); ok {
			c := h.Value().idx.Stats()
			out.BuildAborts += c.BuildAborts
			out.BuildPanics += c.BuildPanics
			h.Release()
		}
	}
	return out
}

package daemon

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestUploadDtypeFloat32 pins the wire dtype: an upload with
// dtype=float32 builds a float32 Index, the dataset info reports it, and
// queries flow through the fast path end to end.
func TestUploadDtypeFloat32(t *testing.T) {
	ts := newTestServer(t, Config{})
	pts := testPoints(300)
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = append([]float64(nil), pts.Data[i*pts.Dim:(i+1)*pts.Dim]...)
	}
	body, err := json.Marshal(uploadRequest{Dtype: "float32", Points: rows})
	if err != nil {
		t.Fatal(err)
	}
	if code := ts.do(http.MethodPut, "/v1/datasets/f32", body, "application/json", nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	var info struct {
		Dataset datasetInfo `json:"dataset"`
	}
	if code := ts.get("/v1/datasets/f32", &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Dataset.Dtype != "float32" || info.Dataset.N != pts.N {
		t.Fatalf("info = %+v, want dtype float32 with %d points", info.Dataset, pts.N)
	}

	var lr labelsResponse
	if code := ts.get("/v1/datasets/f32/hdbscan?minpts=5&eps=1.0", &lr); code != http.StatusOK {
		t.Fatalf("hdbscan: status %d", code)
	}
	if len(lr.Labels) != pts.N {
		t.Fatalf("hdbscan returned %d labels, want %d", len(lr.Labels), pts.N)
	}
}

// TestUploadDtypeDefaultAndInvalid pins the default (float64, no dtype in
// the info response) and rejection of unknown dtypes.
func TestUploadDtypeDefaultAndInvalid(t *testing.T) {
	ts := newTestServer(t, Config{})
	pts := testPoints(50)
	if code := ts.upload("plain", pts, ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	var info struct {
		Dataset datasetInfo `json:"dataset"`
	}
	if code := ts.get("/v1/datasets/plain", &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Dataset.Dtype != "" {
		t.Fatalf("float64 dataset reports dtype %q, want omitted", info.Dataset.Dtype)
	}

	rows := [][]float64{{0, 0}, {1, 1}}
	body, err := json.Marshal(uploadRequest{Dtype: "float16", Points: rows})
	if err != nil {
		t.Fatal(err)
	}
	if code := ts.do(http.MethodPut, "/v1/datasets/bad", body, "application/json", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown dtype: status %d, want 400", code)
	}
}

package daemon

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parclust/internal/engine"
	"parclust/internal/faultinject"
)

// This file is the fault-injection chaos suite: named failure points in
// the store and engine are armed mid-flight to prove the daemon degrades
// instead of corrupting — a failing spill never loses the in-memory Index,
// a slow disk never blocks unrelated warm queries, and a panicking build
// answers 500 exactly once and rebuilds cleanly. CI runs this suite under
// -race in the chaos job.

// TestFailingSpillKeepsServing arms the store.write failure point and
// proves a snapshot-write failure is reported but never fails the upload
// or loses the in-memory Index: the dataset is admitted and queryable.
func TestFailingSpillKeepsServing(t *testing.T) {
	defer faultinject.Reset()
	ts := newTestServer(t, Config{DataDir: t.TempDir()})
	faultinject.Activate("store.write", faultinject.Fault{
		Mode: faultinject.Error, Err: errors.New("injected: disk full"),
	})

	var resp struct {
		Persisted *bool `json:"persisted"`
	}
	pts := testPoints(200)
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = append([]float64(nil), pts.Data[i*2:(i+1)*2]...)
	}
	body := []byte(`{"points":` + jsonRows(rows) + `}`)
	if code := ts.do(http.MethodPut, "/v1/datasets/spillfail", body, "application/json", &resp); code != http.StatusCreated {
		t.Fatalf("upload with failing disk: status %d, want 201", code)
	}
	if resp.Persisted == nil || *resp.Persisted {
		t.Fatalf("persisted = %v, want false (the write failed)", resp.Persisted)
	}
	// The in-memory Index is intact: the full pipeline runs from RAM.
	var out labelsResponse
	if code := ts.get("/v1/datasets/spillfail/hdbscan?minpts=5&eps=0.5", &out); code != http.StatusOK {
		t.Fatalf("query after failed spill: status %d", code)
	}
	if len(out.Labels) != 200 {
		t.Fatalf("query returned %d labels, want 200", len(out.Labels))
	}
}

// jsonRows renders [[x,y],...] without pulling in a marshal dependency on
// the test's hot path.
func jsonRows(rows [][]float64) string {
	b := make([]byte, 0, len(rows)*16)
	b = append(b, '[')
	for i, row := range rows {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		for j, v := range row {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, []byte(fmt.Sprintf("%g", v))...)
		}
		b = append(b, ']')
	}
	b = append(b, ']')
	return string(b)
}

// TestSlowDiskDoesNotBlockWarmQueries arms a store.read delay and proves a
// cold snapshot load stalled on disk I/O never blocks warm queries against
// a resident dataset: the warm queries all complete while the cold load is
// still sleeping in the driver.
func TestSlowDiskDoesNotBlockWarmQueries(t *testing.T) {
	defer faultinject.Reset()
	ts := newTestServer(t, Config{DataDir: t.TempDir()})
	for _, name := range []string{"resident", "colddisk"} {
		if code := ts.upload(name, testPoints(200), ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, code)
		}
	}
	// Warm the resident dataset, then push the other one out of RAM so its
	// next query must reload the snapshot.
	if code := ts.get("/v1/datasets/resident/hdbscan?minpts=5&eps=0.5", nil); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}
	if !ts.srv.Registry().Evict("colddisk") {
		t.Fatal("evict colddisk failed")
	}

	faultinject.Activate("store.read", faultinject.Fault{
		Mode: faultinject.Delay, Delay: 2 * time.Second, Count: 1,
	})
	coldDone := make(chan int, 1)
	go func() {
		coldDone <- ts.get("/v1/datasets/colddisk/hdbscan?minpts=5&eps=0.5", nil)
	}()

	// The warm queries must finish while the cold load is still sleeping.
	for i := 0; i < 8; i++ {
		select {
		case code := <-coldDone:
			t.Fatalf("cold load finished (status %d) before warm queries — delay fault did not arm?", code)
		default:
		}
		if code := ts.get("/v1/datasets/resident/hdbscan?minpts=5&eps=0.5", nil); code != http.StatusOK {
			t.Fatalf("warm query %d during slow cold load: status %d", i, code)
		}
	}
	if code := <-coldDone; code != http.StatusOK {
		t.Fatalf("cold load after delay: status %d, want 200", code)
	}
}

// TestPanickingBuildAnswers500Once injects a panic into a stage build and
// proves the daemon answers 500 exactly once — no crash, no poisoned memo
// — and the next identical query rebuilds cleanly.
func TestPanickingBuildAnswers500Once(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("panicky", testPoints(300), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	fired := false
	engine.TestBuildHook = func(stage string) {
		if stage == "hier" && !fired {
			fired = true
			panic("injected: build blew up")
		}
	}
	t.Cleanup(func() { engine.TestBuildHook = nil })

	var errResp struct {
		Error string `json:"error"`
	}
	if code := ts.get("/v1/datasets/panicky/hdbscan?minpts=5&eps=0.5", &errResp); code != http.StatusInternalServerError {
		t.Fatalf("panicking build: status %d, want 500", code)
	}
	if errResp.Error == "" {
		t.Fatal("500 response carries no error body")
	}
	if got := ts.robustStats().BuildPanics; got != 1 {
		t.Fatalf("build_panics = %d, want 1", got)
	}
	var out labelsResponse
	if code := ts.get("/v1/datasets/panicky/hdbscan?minpts=5&eps=0.5", &out); code != http.StatusOK {
		t.Fatalf("retry after panic: status %d, want 200", code)
	}
	if len(out.Labels) != 300 {
		t.Fatalf("retry returned %d labels, want 300", len(out.Labels))
	}
}

// TestOverloadStressNoGoroutineLeak hammers a tightly-limited daemon with
// 64 concurrent clients mixing warm queries, cold builds, rate-limited and
// timed-out requests, then asserts the goroutine count settles back to the
// pre-stress baseline: no flight watcher, limiter, or handler goroutine
// leaks under sustained shedding.
func TestOverloadStressNoGoroutineLeak(t *testing.T) {
	ts := newTestServer(t, Config{
		MaxColdBuilds: 2,
		QueryTimeout:  2 * time.Second,
		RateQPS:       500,
		RateBurst:     50,
	})
	for _, name := range []string{"s0", "s1", "s2", "s3"} {
		if code := ts.upload(name, testPoints(300), ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, code)
		}
	}
	// Warm one dataset and the scheduler/transport pools before taking the
	// baseline, so the measurement sees steady state, not first-use setup.
	if code := ts.get("/v1/datasets/s0/hdbscan?minpts=5&eps=0.5", nil); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}
	ts.Client().CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	const clients = 64
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", i%4)
			mp := 5 + i%3
			code := ts.get(fmt.Sprintf("/v1/datasets/%s/hdbscan?minpts=%d&eps=0.5", name, mp), nil)
			switch code {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				shed.Add(1)
			default:
				t.Errorf("client %d: unexpected status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("overload stress served nothing — limits are miscalibrated")
	}
	t.Logf("overload stress: served=%d shed=%d", served.Load(), shed.Load())

	// Settle loop: transports, flight watchers, and timed-out handlers need
	// a beat to unwind before the count is meaningful.
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d, baseline %d — leak?\n%s", now, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
		ts.Client().CloseIdleConnections()
	}
}

package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"parclust"
	"parclust/internal/dataio"
)

// Incremental-update endpoints: POST /v1/datasets/{name}/points inserts
// rows into a live dataset, DELETE removes points by external id. Both
// mutate the Index in place through its dynamic layer — no re-upload, no
// full rebuild — then re-charge the registry with the new footprint.
//
// Every query handler guards against the race these endpoints introduce:
// it captures the dataset's mutation epoch after pinning the dataset and
// answers 409 Conflict when the epoch moved before its response was
// written, so a client never receives a payload computed against state a
// concurrent mutation invalidated mid-flight.

// queryDone finalizes a query handler's compute phase. It answers 409
// Conflict when a mutation raced the query (the epoch moved past the value
// captured at admission), maps err to its usual response otherwise, and
// reports whether the handler may proceed to write its 200 payload.
func (s *Server) queryDone(w http.ResponseWriter, r *http.Request, d *dataset, epoch uint64, err error) bool {
	if r.Context().Err() == nil && d.idx.MutationEpoch() != epoch {
		s.conflicts.Add(1)
		writeError(w, http.StatusConflict, "dataset %q mutated during query; retry", d.name)
		return false
	}
	if err != nil {
		s.queryError(w, r, err)
		return false
	}
	return true
}

// insertRequest is the JSON body of POST /v1/datasets/{name}/points.
// Non-JSON bodies are parsed as CSV/whitespace rows via dataio.ReadPoints,
// mirroring upload.
type insertRequest struct {
	Points [][]float64 `json:"points"`
}

func (s *Server) handleInsertPoints(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()

	var pts parclust.Points
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		var req insertRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, uploadErrCode(err), "decode points: %v", err)
			return
		}
		if len(req.Points) == 0 {
			writeError(w, http.StatusBadRequest, "no points in insert")
			return
		}
		dim := len(req.Points[0])
		for i, row := range req.Points {
			if len(row) != dim {
				writeError(w, http.StatusBadRequest, "point %d has dimension %d, want %d", i, len(row), dim)
				return
			}
		}
		pts = parclust.PointsFromSlices(req.Points)
	} else {
		var err error
		pts, err = dataio.ReadPoints(body, d.name)
		if err != nil {
			writeError(w, uploadErrCode(err), "parse points: %v", err)
			return
		}
	}

	ids, err := d.idx.Insert(pts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mutations.Add(1)
	s.reg.Recharge(d.name, d.idx.ApproxBytes())
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": d.name,
		"ids":     ids,
		"n":       d.idx.N(),
	})
}

// deleteRequest is the JSON body of DELETE /v1/datasets/{name}/points.
type deleteRequest struct {
	IDs []int64 `json:"ids"`
}

func (s *Server) handleDeletePoints(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()

	var req deleteRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, uploadErrCode(err), "decode ids: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "no ids in delete")
		return
	}
	if err := d.idx.Delete(req.IDs); err != nil {
		// Unknown-id batches are all-or-nothing: the dataset is unchanged.
		if errors.Is(err, parclust.ErrUnknownID) {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mutations.Add(1)
	s.reg.Recharge(d.name, d.idx.ApproxBytes())
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": d.name,
		"deleted": len(req.IDs),
		"n":       d.idx.N(),
	})
}

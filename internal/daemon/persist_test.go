package daemon

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"parclust"
	"parclust/internal/store"
)

// raw performs one request and returns the exact response body, for
// byte-identity checks across a restart.
func (ts *testServer) raw(method, path string) ([]byte, int) {
	ts.t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	return body, resp.StatusCode
}

type storeStatsResponse struct {
	Store storeJSON `json:"store"`
}

// TestDaemonWarmRestart is the tentpole scenario: upload, warm the stage
// pipeline, persist, start a brand-new server over the same data dir, and
// require byte-identical responses with zero stage rebuilds.
func TestDaemonWarmRestart(t *testing.T) {
	dir := t.TempDir()
	queries := []string{
		"/v1/datasets/wr/hdbscan?minpts=5&eps=1.2",
		"/v1/datasets/wr/hdbscan?minpts=5&minclustersize=10",
		"/v1/datasets/wr/emst",
		"/v1/datasets/wr/knn?q=0&k=4",
		"/v1/datasets/wr/range?q=3&r=1.5",
	}

	ts1 := newTestServer(t, Config{DataDir: dir})
	if code := ts1.upload("wr", testPoints(500), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		body, code := ts1.raw(http.MethodGet, q)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d (%s)", q, code, body)
		}
		want[i] = body
	}
	if n, err := ts1.srv.PersistAll(); err != nil || n != 1 {
		t.Fatalf("PersistAll: n=%d err=%v", n, err)
	}

	// A brand-new server over the same data dir: the dataset is cold but
	// listed, and the first query reloads it from the snapshot.
	ts2 := newTestServer(t, Config{DataDir: dir})
	var list struct {
		Datasets []datasetInfo `json:"datasets"`
		Cold     []string      `json:"cold"`
	}
	if code := ts2.get("/v1/datasets", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Datasets) != 0 || len(list.Cold) != 1 || list.Cold[0] != "wr" {
		t.Fatalf("after restart: resident %v, cold %v", list.Datasets, list.Cold)
	}
	// Cold info answers from the snapshot header without loading.
	var info struct {
		Dataset datasetInfo `json:"dataset"`
		Cold    bool        `json:"cold"`
	}
	if code := ts2.get("/v1/datasets/wr", &info); code != http.StatusOK {
		t.Fatalf("cold info: status %d", code)
	}
	if !info.Cold || info.Dataset.N != 500 || info.Dataset.Dim != 2 {
		t.Fatalf("cold info: %+v", info)
	}

	for i, q := range queries {
		body, code := ts2.raw(http.MethodGet, q)
		if code != http.StatusOK {
			t.Fatalf("restart GET %s: status %d (%s)", q, code, body)
		}
		if !bytes.Equal(body, want[i]) {
			t.Fatalf("GET %s differs after restart:\n  before: %s\n  after:  %s", q, want[i], body)
		}
	}

	// The warm restart must not have rebuilt any persisted stage.
	var after struct {
		Counters countersJSON `json:"counters"`
	}
	if code := ts2.get("/v1/datasets/wr", &after); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	c := after.Counters
	if c.TreeBuilds != 0 || c.CoreDistBuilds != 0 || c.MSTBuilds != 0 || c.DendrogramBuilds != 0 {
		t.Fatalf("stages rebuilt after warm restart: %+v", c)
	}

	var st storeStatsResponse
	if code := ts2.get("/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if !st.Store.Enabled || st.Store.Loads != 1 || st.Store.LoadFails != 0 || st.Store.Snapshots != 1 {
		t.Fatalf("store stats after restart: %+v", st.Store)
	}
}

// TestDaemonSpillReload drives a dataset out of the registry with byte
// pressure and checks the eviction spilled its warm stages: the reloaded
// dataset answers the same query with zero rebuilds.
func TestDaemonSpillReload(t *testing.T) {
	dir := t.TempDir()
	pts := testPoints(400)
	ix, err := parclust.NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits ~1.5 datasets, so the second upload evicts the first.
	budget := ix.ApproxBytes() * 3 / 2
	ts := newTestServer(t, Config{DataDir: dir, Spill: true, MaxBytes: budget})

	if code := ts.upload("a", pts, ""); code != http.StatusCreated {
		t.Fatalf("upload a: status %d", code)
	}
	wantBody, code := ts.raw(http.MethodGet, "/v1/datasets/a/hdbscan?minpts=5&eps=1.2")
	if code != http.StatusOK {
		t.Fatalf("warm a: status %d", code)
	}
	if code := ts.upload("b", parclust.GenerateGaussianMixture(400, 2, 3, 11), ""); code != http.StatusCreated {
		t.Fatalf("upload b: status %d", code)
	}
	if _, ok := ts.srv.Registry().Peek("a"); ok {
		t.Fatal("a still resident; budget did not force the eviction")
	}

	// The reload serves the identical bytes without rebuilding: the spill
	// carried the memoized stages, not just the points.
	gotBody, code := ts.raw(http.MethodGet, "/v1/datasets/a/hdbscan?minpts=5&eps=1.2")
	if code != http.StatusOK {
		t.Fatalf("reload a: status %d (%s)", code, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatal("response differs after spill/reload")
	}
	var info struct {
		Counters countersJSON `json:"counters"`
	}
	if code := ts.get("/v1/datasets/a", &info); code != http.StatusOK {
		t.Fatalf("info a: status %d", code)
	}
	if info.Counters.TreeBuilds != 0 || info.Counters.CoreDistBuilds != 0 ||
		info.Counters.MSTBuilds != 0 || info.Counters.DendrogramBuilds != 0 {
		t.Fatalf("spilled stages were rebuilt: %+v", info.Counters)
	}
	var st storeStatsResponse
	if code := ts.get("/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Store.Spills < 1 || st.Store.Loads < 1 {
		t.Fatalf("store stats after spill/reload: %+v", st.Store)
	}
}

// TestDaemonSpillReloadRace hammers a budget that holds only one of two
// datasets, so every query round trips spill -> cold load -> admission ->
// re-eviction concurrently. Run under -race in CI; every query must
// succeed (an unadmittable load still serves its own request).
func TestDaemonSpillReloadRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; the dedicated CI race step runs it without -short")
	}
	dir := t.TempDir()
	pts := testPoints(80)
	ix, err := parclust.NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{DataDir: dir, Spill: true, MaxBytes: ix.ApproxBytes() * 3 / 2})
	for _, name := range []string{"ra", "rb"} {
		if code := ts.upload(name, pts, ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, code)
		}
	}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"ra", "rb"}
			for i := 0; i < iters; i++ {
				name := names[(w+i)%2]
				var out labelsResponse
				p := fmt.Sprintf("/v1/datasets/%s/hdbscan?minpts=4&eps=1.5", name)
				if code := ts.get(p, &out); code != http.StatusOK {
					errc <- fmt.Errorf("worker %d iter %d: GET %s: status %d", w, i, p, code)
					return
				}
				if len(out.Labels) != pts.N {
					errc <- fmt.Errorf("worker %d iter %d: %d labels, want %d", w, i, len(out.Labels), pts.N)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestDaemonDeleteRemovesSnapshot pins DELETE semantics with a store:
// forgetting a dataset covers its snapshot file, including a cold dataset
// that is only on disk.
func TestDaemonDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, Config{DataDir: dir})
	if code := ts.upload("del", testPoints(60), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	snap := filepath.Join(dir, "del"+store.Ext)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("upload did not persist a snapshot: %v", err)
	}
	if _, code := ts.raw(http.MethodDelete, "/v1/datasets/del"); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived DELETE: %v", err)
	}
	if _, code := ts.raw(http.MethodGet, "/v1/datasets/del/emst"); code != http.StatusNotFound {
		t.Fatal("deleted dataset still answers queries")
	}
	if _, code := ts.raw(http.MethodDelete, "/v1/datasets/del"); code != http.StatusNotFound {
		t.Fatal("second DELETE should 404")
	}

	// A cold, disk-only dataset (evicted directly through the registry,
	// bypassing the handler) is still deletable over HTTP.
	if code := ts.upload("colddel", testPoints(60), ""); code != http.StatusCreated {
		t.Fatalf("upload colddel: status %d", code)
	}
	ts.srv.Registry().Evict("colddel")
	if _, code := ts.raw(http.MethodDelete, "/v1/datasets/colddel"); code != http.StatusOK {
		t.Fatal("cold DELETE should succeed")
	}
	if _, err := os.Stat(filepath.Join(dir, "colddel"+store.Ext)); !os.IsNotExist(err) {
		t.Fatal("cold snapshot survived DELETE")
	}
}

// TestDaemonCorruptSnapshotFallsBack damages snapshots and requires clean
// degradation: a truncated stage chunk rebuilds on demand with identical
// results; an unreadable snapshot is a 404, never a panic or wrong labels.
func TestDaemonCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	ts1 := newTestServer(t, Config{DataDir: dir})
	if code := ts1.upload("corr", testPoints(300), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	q := "/v1/datasets/corr/hdbscan?minpts=5&eps=1.2"
	want, code := ts1.raw(http.MethodGet, q)
	if code != http.StatusOK {
		t.Fatalf("warm query: status %d", code)
	}
	if n, err := ts1.srv.PersistAll(); err != nil || n != 1 {
		t.Fatalf("PersistAll: n=%d err=%v", n, err)
	}
	snap := filepath.Join(dir, "corr"+store.Ext)
	full, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Chop off the tail: the points survive (they are the first chunk),
	// later stage chunks fail their range check and rebuild on demand.
	if err := os.WriteFile(snap, full[:len(full)-len(full)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServer(t, Config{DataDir: dir})
	got, code := ts2.raw(http.MethodGet, q)
	if code != http.StatusOK {
		t.Fatalf("query over truncated snapshot: status %d (%s)", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("truncated snapshot produced different labels")
	}
	var info struct {
		Counters countersJSON `json:"counters"`
	}
	if code := ts2.get("/v1/datasets/corr", &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	rebuilt := info.Counters.TreeBuilds + info.Counters.CoreDistBuilds +
		info.Counters.MSTBuilds + info.Counters.DendrogramBuilds
	if rebuilt == 0 {
		t.Fatal("truncation dropped no stage, the test cut too little")
	}

	// Destroy the header: the snapshot is unusable, the query degrades to
	// a clean 404 and the failure is counted.
	garbage := append([]byte(nil), full...)
	for i := 0; i < 32 && i < len(garbage); i++ {
		garbage[i] ^= 0xa5
	}
	if err := os.WriteFile(snap, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	ts3 := newTestServer(t, Config{DataDir: dir})
	if _, code := ts3.raw(http.MethodGet, q); code != http.StatusNotFound {
		t.Fatalf("query over garbage snapshot: status %d, want 404", code)
	}
	var st storeStatsResponse
	if code := ts3.get("/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Store.LoadFails != 1 {
		t.Fatalf("load_failures = %d, want 1", st.Store.LoadFails)
	}
}

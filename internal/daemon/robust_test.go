package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"parclust"
	"parclust/internal/engine"
	"parclust/internal/faultinject"
)

// robustSection mirrors the "robustness" object of /v1/stats.
type robustSection struct {
	RateLimited   int64 `json:"rate_limited"`
	Overloaded    int64 `json:"overloaded"`
	Timeouts      int64 `json:"timeouts"`
	QuotaRejected int64 `json:"quota_rejected"`
	BuildAborts   int64 `json:"build_aborts"`
	BuildPanics   int64 `json:"build_panics"`
}

func (ts *testServer) robustStats() robustSection {
	ts.t.Helper()
	var resp struct {
		Robustness robustSection `json:"robustness"`
	}
	if code := ts.get("/v1/stats", &resp); code != http.StatusOK {
		ts.t.Fatalf("stats: status %d", code)
	}
	return resp.Robustness
}

func (ts *testServer) datasetCounters(name string) countersJSON {
	ts.t.Helper()
	var resp struct {
		Counters countersJSON `json:"counters"`
	}
	if code := ts.get("/v1/datasets/"+name, &resp); code != http.StatusOK {
		ts.t.Fatalf("info %s: status %d", name, code)
	}
	return resp.Counters
}

// doHeaders is ts.do with request headers and access to the response.
func (ts *testServer) doHeaders(method, path string, hdr map[string]string) *http.Response {
	ts.t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestQueryCancelAbortsColdBuild is the disconnected-client e2e: a client
// starts a cold HDBSCAN query, the build is held open at the flight
// boundary, and the client disconnects. The daemon's context plumbing must
// cooperatively abort the build — no stage output is published, the abort
// is counted — and the next identical request rebuilds and succeeds.
func TestQueryCancelAbortsColdBuild(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("cancel", testPoints(2000), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	engine.TestBuildHook = func(stage string) {
		if stage == "hier" {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { engine.TestBuildHook = nil })

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/datasets/cancel/hdbscan?minpts=5&eps=0.5", nil)
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		reqDone <- err
	}()

	<-entered
	cancel()
	if err := <-reqDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want context.Canceled", err)
	}
	// Give the server-side cancellation a moment to reach the flight's ctx
	// watcher, then let the held build run into its first checkpoint.
	time.Sleep(100 * time.Millisecond)
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for ts.robustStats().BuildAborts < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("build abort never counted: %+v", ts.robustStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := ts.datasetCounters("cancel")
	if c.TreeBuilds != 0 || c.DendrogramBuilds != 0 {
		t.Fatalf("aborted build published stages: tree=%d dendro=%d, want 0/0",
			c.TreeBuilds, c.DendrogramBuilds)
	}

	// The flight is gone and the memo unpoisoned: the same query succeeds.
	engine.TestBuildHook = nil
	var out labelsResponse
	if code := ts.get("/v1/datasets/cancel/hdbscan?minpts=5&eps=0.5", &out); code != http.StatusOK {
		t.Fatalf("retry after abort: status %d", code)
	}
	if len(out.Labels) != 2000 {
		t.Fatalf("retry returned %d labels, want 2000", len(out.Labels))
	}
	if c := ts.datasetCounters("cancel"); c.TreeBuilds != 1 || c.DendrogramBuilds != 1 {
		t.Fatalf("rebuild counters: tree=%d dendro=%d, want 1/1", c.TreeBuilds, c.DendrogramBuilds)
	}
}

// TestRateLimitPerTenant proves the token bucket sheds per tenant: one
// tenant exhausting its burst gets 429 + Retry-After while another tenant
// and the health probe keep answering.
func TestRateLimitPerTenant(t *testing.T) {
	ts := newTestServer(t, Config{RateQPS: 0.1, RateBurst: 2})
	if code := ts.upload("rl", testPoints(50), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	// The upload carried no X-Tenant, so it drew from the remote-host
	// bucket; tagged tenants start with full bursts.
	for i := 0; i < 2; i++ {
		if resp := ts.doHeaders(http.MethodGet, "/v1/datasets/rl", map[string]string{"X-Tenant": "a"}); resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant a request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := ts.doHeaders(http.MethodGet, "/v1/datasets/rl", map[string]string{"X-Tenant": "a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant a over burst: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if resp := ts.doHeaders(http.MethodGet, "/v1/datasets/rl", map[string]string{"X-Tenant": "b"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant b blocked by tenant a's bucket: status %d", resp.StatusCode)
	}
	if resp := ts.doHeaders(http.MethodGet, "/healthz", map[string]string{"X-Tenant": "a"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz rate-limited: status %d", resp.StatusCode)
	}
	if got := ts.robustStats().RateLimited; got < 1 {
		t.Fatalf("rate_limited = %d, want >= 1", got)
	}
}

// TestColdBuildGateShedsWhileWarmServes saturates the single cold-build
// slot with a held build and proves (a) another cold query is shed with
// 503 + Retry-After and (b) 16 concurrent warm cut-cache queries against a
// different dataset keep answering throughout.
func TestColdBuildGateShedsWhileWarmServes(t *testing.T) {
	ts := newTestServer(t, Config{MaxColdBuilds: 1})
	for _, name := range []string{"warm", "cold1", "cold2"} {
		if code := ts.upload(name, testPoints(400), ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d", name, code)
		}
	}
	// Warm one dataset fully (pipeline + cut cache) before arming the hook.
	if code := ts.get("/v1/datasets/warm/hdbscan?minpts=5&eps=0.5", nil); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	engine.TestBuildHook = func(stage string) {
		if stage == "hier" {
			enterOnce.Do(func() { close(entered) })
			<-release
		}
	}
	t.Cleanup(func() {
		engine.TestBuildHook = nil
		select {
		case <-release:
		default:
			close(release)
		}
	})

	heldDone := make(chan int, 1)
	go func() {
		heldDone <- ts.get("/v1/datasets/cold1/hdbscan?minpts=5&eps=0.5", nil)
	}()
	<-entered // cold1's leader now holds the only build slot

	resp := ts.doHeaders(http.MethodGet, "/v1/datasets/cold2/hdbscan?minpts=5&eps=0.5", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second cold build: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	var wg sync.WaitGroup
	codes := make([]int, 16)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/warm/hdbscan?minpts=5&eps=0.5", nil)
			r, err := ts.Client().Do(req)
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			codes[i] = r.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("warm query %d during saturation: status %d, want 200", i, code)
		}
	}

	close(release)
	if code := <-heldDone; code != http.StatusOK {
		t.Fatalf("held cold build finished with status %d, want 200", code)
	}
	if got := ts.robustStats().Overloaded; got < 1 {
		t.Fatalf("overloaded = %d, want >= 1", got)
	}
}

// TestQueryTimeout proves an expired query deadline surfaces as 504 and is
// counted, using a delay fault to make the cold build reliably outlast the
// deadline.
func TestQueryTimeout(t *testing.T) {
	defer faultinject.Reset()
	ts := newTestServer(t, Config{QueryTimeout: 100 * time.Millisecond})
	if code := ts.upload("slow", testPoints(2000), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	faultinject.Activate("engine.build", faultinject.Fault{
		Mode: faultinject.Delay, Delay: 400 * time.Millisecond, Count: 1,
	})
	resp := ts.doHeaders(http.MethodGet, "/v1/datasets/slow/hdbscan?minpts=5&eps=0.5", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired query: status %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504 response missing Retry-After")
	}
	if got := ts.robustStats().Timeouts; got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	// The fault self-disarmed, but the deadline still applies to retries and
	// a loaded machine could miss it; retry until one lands. A 200 proves
	// the timed-out flight did not poison the pipeline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code := ts.get("/v1/datasets/slow/hdbscan?minpts=5&eps=0.5", nil)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never recovered after timeout: status %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTenantByteQuota proves per-tenant resident-byte quotas: a tenant at
// quota gets 507 + Retry-After on its next upload while another tenant is
// admitted, and replacing your own dataset is not double-counted.
func TestTenantByteQuota(t *testing.T) {
	pts := testPoints(300)
	probe, err := parclust.NewIndex(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	quota := probe.ApproxBytes() + probe.ApproxBytes()/2 // room for 1 dataset, not 2

	ts := newTestServer(t, Config{TenantMaxBytes: quota})
	uploadAs := func(tenant, name string) *http.Response {
		rows := make([][]float64, pts.N)
		for i := 0; i < pts.N; i++ {
			rows[i] = append([]float64(nil), pts.Data[i*2:(i+1)*2]...)
		}
		body, _ := json.Marshal(uploadRequest{Points: rows})
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/"+name, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := uploadAs("t1", "first"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first upload: status %d", resp.StatusCode)
	}
	resp := uploadAs("t1", "second")
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-quota upload: status %d, want 507", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("507 response missing Retry-After")
	}
	if resp := uploadAs("t2", "other"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("other tenant blocked by t1's quota: status %d", resp.StatusCode)
	}
	// Replacing your own dataset only counts the delta, not a second copy.
	if resp := uploadAs("t1", "first"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("self-replacement: status %d, want 201", resp.StatusCode)
	}
	if got := ts.robustStats().QuotaRejected; got != 1 {
		t.Fatalf("quota_rejected = %d, want 1", got)
	}
}

// TestOverBudgetUploadRetryAfter proves the registry-budget 507 carries
// Retry-After: over-budget is transient (evictions free space), so clients
// are told when to come back.
func TestOverBudgetUploadRetryAfter(t *testing.T) {
	ts := newTestServer(t, Config{MaxBytes: 1})
	pts := testPoints(100)
	rows := make([][]float64, pts.N)
	for i := 0; i < pts.N; i++ {
		rows[i] = append([]float64(nil), pts.Data[i*2:(i+1)*2]...)
	}
	body, _ := json.Marshal(uploadRequest{Points: rows})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/big", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-budget upload: status %d, want 507", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("507 response missing Retry-After")
	}
}

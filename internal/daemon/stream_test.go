package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// rawGet performs one request with an optional Accept header and returns
// the status, content type, and full body.
func (ts *testServer) rawGet(path, accept string) (int, string, []byte) {
	ts.t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		ts.t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// ndjsonLines splits a complete NDJSON stream into its records, asserting
// the trailer is present, well-formed, and carries the expected item count.
func ndjsonLines(t *testing.T, body []byte) (header []byte, chunks [][]byte, items int) {
	t.Helper()
	var lines [][]byte
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want header + trailer at least", len(lines))
	}
	var tr streamTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil || !tr.Done {
		t.Fatalf("last line %q is not a trailer (err=%v)", lines[len(lines)-1], err)
	}
	return lines[0], lines[1 : len(lines)-1], tr.Items
}

// reencode marshals v exactly the way writeJSON does (no HTML escaping,
// trailing newline), so reassembled streams can be compared byte-for-byte
// against buffered responses.
func reencode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamReassemblyMatchesBuffered asserts that for every streaming
// endpoint the NDJSON stream, reassembled (chunks concatenated back onto
// the header), is byte-identical to the buffered JSON response of the same
// query — same fields, same order, same float formatting.
func TestStreamReassemblyMatchesBuffered(t *testing.T) {
	defer func(old int) { streamChunkSize = old }(streamChunkSize)
	streamChunkSize = 7 // force multiple chunks and a ragged tail on n=300

	ts := newTestServer(t, Config{})
	pts := testPoints(300)
	if code := ts.upload("stream", pts, ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	check := func(path string, header any, appendChunk func(chunk []byte)) {
		t.Helper()
		bufStatus, bufCT, buffered := ts.rawGet(path, "")
		if bufStatus != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, bufStatus, buffered)
		}
		if !strings.Contains(bufCT, "application/json") {
			t.Fatalf("GET %s: buffered content type %q", path, bufCT)
		}
		status, ct, body := ts.rawGet(path, "application/x-ndjson")
		if status != http.StatusOK {
			t.Fatalf("GET %s (ndjson): status %d: %s", path, status, body)
		}
		if ct != "application/x-ndjson" {
			t.Fatalf("GET %s (ndjson): content type %q", path, ct)
		}
		head, chunks, items := ndjsonLines(t, body)
		if err := json.Unmarshal(head, header); err != nil {
			t.Fatalf("GET %s: decode header %q: %v", path, head, err)
		}
		for _, c := range chunks {
			appendChunk(c)
		}
		reassembled := reencode(t, header)
		if !bytes.Equal(reassembled, buffered) {
			t.Fatalf("GET %s: reassembled stream differs from buffered response\nstream:   %.200s\nbuffered: %.200s",
				path, reassembled, buffered)
		}
		var wantItems int
		switch h := header.(type) {
		case *flatResult:
			wantItems = len(h.Labels)
		case *emstResult:
			wantItems = len(h.Edges)
		case *opticsResult:
			wantItems = len(h.Order)
		}
		if items != wantItems {
			t.Fatalf("GET %s: trailer items = %d, want %d", path, items, wantItems)
		}
		if len(chunks) < 2 {
			t.Fatalf("GET %s: %d chunks, want several at streamChunkSize=%d", path, len(chunks), streamChunkSize)
		}
	}

	var hd flatResult
	check("/v1/datasets/stream/hdbscan?minpts=5&eps=1.25", &hd, func(c []byte) {
		var ch labelChunk
		if err := json.Unmarshal(c, &ch); err != nil {
			t.Fatal(err)
		}
		hd.Labels = append(hd.Labels, ch.Labels...)
	})
	var db flatResult
	check("/v1/datasets/stream/dbscan?minpts=5&eps=1.25&star=true", &db, func(c []byte) {
		var ch labelChunk
		if err := json.Unmarshal(c, &ch); err != nil {
			t.Fatal(err)
		}
		db.Labels = append(db.Labels, ch.Labels...)
	})
	var em emstResult
	check("/v1/datasets/stream/emst", &em, func(c []byte) {
		var ch edgeChunk
		if err := json.Unmarshal(c, &ch); err != nil {
			t.Fatal(err)
		}
		em.Edges = append(em.Edges, ch.Edges...)
	})
	var op opticsResult
	check("/v1/datasets/stream/optics?minpts=5", &op, func(c []byte) {
		var ch barChunk
		if err := json.Unmarshal(c, &ch); err != nil {
			t.Fatal(err)
		}
		op.Order = append(op.Order, ch.Order...)
	})

	// labels=false streams just a header and a zero-item trailer.
	status, _, body := ts.rawGet("/v1/datasets/stream/hdbscan?minpts=5&eps=1.25&labels=false", "application/x-ndjson")
	if status != http.StatusOK {
		t.Fatalf("labels=false: status %d", status)
	}
	if _, chunks, items := ndjsonLines(t, body); len(chunks) != 0 || items != 0 {
		t.Fatalf("labels=false: %d chunks, %d items, want 0/0", len(chunks), items)
	}
}

// postSweep posts a sweep body with an optional Accept header.
func (ts *testServer) postSweep(name string, body string, accept string) (int, []byte) {
	ts.t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/"+name+"/sweep", strings.NewReader(body))
	if err != nil {
		ts.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		ts.t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestSweepCountersAndCutCache runs a 3x5 grid in one request against a
// cold dataset and asserts the stage-reuse contract: the whole grid costs
// one tree build, one coreDist + MST + dendrogram build per distinct
// minPts, and one flat cut per cell. A second identical sweep is answered
// entirely from the cut-result cache.
func TestSweepCountersAndCutCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("grid", testPoints(500), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	var before struct {
		Registry registryJSON `json:"registry"`
	}
	ts.get("/v1/datasets", &before)

	body := `{"minpts":[3,5,7],"eps":[0.25,0.5,1.0,2.0,4.0]}`
	var res sweepResult
	if code, raw := ts.postSweep("grid", body, ""); code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", code, raw)
	} else if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.NumCells != 15 || len(res.Cells) != 15 {
		t.Fatalf("sweep returned %d/%d cells, want 15", res.NumCells, len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Labels != nil {
			t.Fatalf("cell %+v carries labels without labels:true", cell)
		}
	}

	counters := func() countersJSON {
		var info struct {
			Counters countersJSON `json:"counters"`
		}
		ts.get("/v1/datasets/grid", &info)
		return info.Counters
	}
	c := counters()
	if c.TreeBuilds != 1 || c.CoreDistBuilds != 3 || c.MSTBuilds != 3 || c.DendrogramBuilds != 3 {
		t.Fatalf("after 3x5 sweep: tree=%d core=%d mst=%d dendro=%d, want 1/3/3/3",
			c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds, c.DendrogramBuilds)
	}
	if c.CutBuilds != 15 || c.CutHits != 0 {
		t.Fatalf("after 3x5 sweep: cut builds=%d hits=%d, want 15/0", c.CutBuilds, c.CutHits)
	}

	// The sweep grew the Index's cut caches and the handler re-charged the
	// registry, so occupancy accounting reflects the growth.
	var after struct {
		Registry registryJSON `json:"registry"`
	}
	ts.get("/v1/datasets", &after)
	if after.Registry.Bytes <= before.Registry.Bytes {
		t.Fatalf("registry bytes %d -> %d, want growth from the cut caches",
			before.Registry.Bytes, after.Registry.Bytes)
	}

	// The identical grid again: every cell is a cut-cache hit, no new
	// stage work of any kind.
	var res2 sweepResult
	if code, raw := ts.postSweep("grid", body, ""); code != http.StatusOK {
		t.Fatalf("repeat sweep: status %d", code)
	} else if err := json.Unmarshal(raw, &res2); err != nil {
		t.Fatal(err)
	}
	c = counters()
	if c.TreeBuilds != 1 || c.CoreDistBuilds != 3 || c.MSTBuilds != 3 {
		t.Fatalf("repeat sweep rebuilt stages: tree=%d core=%d mst=%d", c.TreeBuilds, c.CoreDistBuilds, c.MSTBuilds)
	}
	if c.CutBuilds != 15 || c.CutHits < 15 {
		t.Fatalf("repeat sweep: cut builds=%d hits=%d, want 15 builds and >=15 hits", c.CutBuilds, c.CutHits)
	}

	// The NDJSON stream of the same sweep reassembles to the buffered doc.
	_, bufferedRaw := ts.postSweep("grid", body, "")
	status, raw := ts.postSweep("grid", body, "application/x-ndjson")
	if status != http.StatusOK {
		t.Fatalf("ndjson sweep: status %d", status)
	}
	head, cells, items := ndjsonLines(t, raw)
	var streamed sweepResult
	if err := json.Unmarshal(head, &streamed); err != nil {
		t.Fatal(err)
	}
	for _, line := range cells {
		var cell sweepCell
		if err := json.Unmarshal(line, &cell); err != nil {
			t.Fatal(err)
		}
		streamed.Cells = append(streamed.Cells, cell)
	}
	if items != 15 || len(streamed.Cells) != 15 {
		t.Fatalf("ndjson sweep: %d cells, trailer items %d, want 15", len(streamed.Cells), items)
	}
	if got := reencode(t, &streamed); !bytes.Equal(got, bufferedRaw) {
		t.Fatalf("ndjson sweep reassembly differs from buffered response\nstream:   %.200s\nbuffered: %.200s", got, bufferedRaw)
	}
}

// TestSweepValidation exercises the strict request parser through the
// endpoint: every malformed grid is a 400 before any stage work runs.
func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t, Config{MaxSweepCells: 6})
	if code := ts.upload("v", testPoints(50), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	bad := []struct {
		name, body string
	}{
		{"empty body", ``},
		{"not json", `minpts=3`},
		{"empty minpts", `{"minpts":[],"eps":[1]}`},
		{"empty eps", `{"minpts":[3],"eps":[]}`},
		{"minpts zero", `{"minpts":[0],"eps":[1]}`},
		{"minpts negative", `{"minpts":[-2],"eps":[1]}`},
		{"minpts over n", `{"minpts":[51],"eps":[1]}`},
		{"eps negative", `{"minpts":[3],"eps":[-0.5]}`},
		{"eps huge literal", `{"minpts":[3],"eps":[1e999]}`},
		{"unknown field", `{"minpts":[3],"eps":[1],"radius":2}`},
		{"trailing data", `{"minpts":[3],"eps":[1]} {"again":true}`},
		{"bad algo", `{"minpts":[3],"eps":[1],"algo":"kmeans"}`},
		{"grid over cap", `{"minpts":[3,4,5],"eps":[1,2,3]}`},
	}
	for _, tc := range bad {
		if code, raw := ts.postSweep("v", tc.body, ""); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, code, raw)
		}
	}

	// Duplicates collapse instead of erroring: a 3x3 grid of repeated
	// values is one distinct cell and passes the 6-cell cap.
	var res sweepResult
	code, raw := ts.postSweep("v", `{"minpts":[3,3,3],"eps":[1,1,1]}`, "")
	if code != http.StatusOK {
		t.Fatalf("duplicate grid: status %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.NumCells != 1 || len(res.Cells) != 1 {
		t.Fatalf("duplicate grid: %d cells, want 1", len(res.Cells))
	}
	if code := ts.do(http.MethodPost, "/v1/datasets/nosuch/sweep", []byte(`{"minpts":[3],"eps":[1]}`), "application/json", nil); code != http.StatusNotFound {
		t.Fatalf("sweep on absent dataset: status %d, want 404", code)
	}
}

// TestDaemonStreamingDisconnect hammers one shared daemon with concurrent
// NDJSON streams while half the clients disconnect mid-stream, asserting
// the server neither wedges nor corrupts later responses. The interesting
// failure modes are racy (writer goroutines outliving their request,
// shared cut-cache slices), so the CI race step runs this explicitly.
func TestDaemonStreamingDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming disconnect stress test skipped in -short mode")
	}
	defer func(old int) { streamChunkSize = old }(streamChunkSize)
	streamChunkSize = 16 // many small records: wide cancellation window

	ts := newTestServer(t, Config{})
	if code := ts.upload("churn", testPoints(2000), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	const clients = 24
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var body io.Reader
			path := fmt.Sprintf("/v1/datasets/churn/hdbscan?minpts=%d&eps=1.0", 3+i%4)
			method := http.MethodGet
			if i%3 == 0 {
				path = "/v1/datasets/churn/sweep"
				method = http.MethodPost
				body = strings.NewReader(`{"minpts":[3,4,5],"eps":[0.5,1.0,2.0],"labels":true}`)
			}
			req, err := http.NewRequestWithContext(ctx, method, ts.URL+path, body)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Accept", "application/x-ndjson")
			resp, err := ts.Client().Do(req)
			if err != nil {
				return // cancellation racing connection setup is fine
			}
			defer resp.Body.Close()
			if i%2 == 0 {
				// Disconnect after the first record: the server must stop
				// producing at the next chunk boundary.
				rd := bufio.NewReader(resp.Body)
				_, _ = rd.ReadBytes('\n')
				cancel()
				return
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("client %d: read stream: %v", i, err)
				return
			}
			if !bytes.Contains(raw, []byte(`"done":true`)) {
				t.Errorf("client %d: stream ended without a trailer", i)
			}
		}(i)
	}
	wg.Wait()

	// The daemon is still healthy: a fresh buffered query succeeds.
	var out labelsResponse
	if code := ts.get("/v1/datasets/churn/hdbscan?minpts=3&eps=1.0", &out); code != http.StatusOK {
		t.Fatalf("post-churn query: status %d", code)
	}
	if len(out.Labels) != 2000 {
		t.Fatalf("post-churn query: %d labels, want 2000", len(out.Labels))
	}
}

// TestBroadcastObservesCancellation asserts the fan-out bugfix: a
// broadcast whose client disconnected must not launch per-dataset builds
// for datasets its goroutines had not reached yet.
func TestBroadcastObservesCancellation(t *testing.T) {
	ts := newTestServer(t, Config{})
	for i := 0; i < 4; i++ {
		if code := ts.upload(fmt.Sprintf("bc%d", i), testPoints(200), ""); code != http.StatusCreated {
			t.Fatalf("upload %d: status %d", i, code)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already disconnected before the handler runs
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/broadcast/hdbscan?minpts=3&eps=1.0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := ts.Client().Do(req); err == nil {
		resp.Body.Close()
	}

	// No dataset may have built anything for the dead broadcast. The
	// request may have been killed before reaching the handler at all;
	// either way stage counters must be zero everywhere.
	var stats struct {
		Datasets map[string]struct {
			Counters countersJSON `json:"counters"`
		} `json:"datasets"`
	}
	ts.get("/v1/stats", &stats)
	for name, d := range stats.Datasets {
		if d.Counters.TreeBuilds != 0 || d.Counters.MSTBuilds != 0 {
			t.Fatalf("dataset %s built stages for a cancelled broadcast: %+v", name, d.Counters)
		}
	}
}

// TestStreamCountsAsQuery pins the interaction between streaming and the
// engine's memoization: an NDJSON query warms the same stages a buffered
// query reads, so mixing modes never doubles stage work.
func TestStreamCountsAsQuery(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := ts.upload("mix", testPoints(300), ""); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	if status, _, body := ts.rawGet("/v1/datasets/mix/hdbscan?minpts=4&eps=1.0", "application/x-ndjson"); status != http.StatusOK {
		t.Fatalf("ndjson warmup: status %d: %s", status, body)
	}
	var out labelsResponse
	if code := ts.get("/v1/datasets/mix/hdbscan?minpts=4&eps=1.0", &out); code != http.StatusOK {
		t.Fatalf("buffered query: status %d", code)
	}
	var info struct {
		Counters countersJSON `json:"counters"`
	}
	ts.get("/v1/datasets/mix", &info)
	if info.Counters.TreeBuilds != 1 || info.Counters.MSTBuilds != 1 {
		t.Fatalf("mixed modes rebuilt stages: %+v", info.Counters)
	}
	if info.Counters.CutHits < 1 {
		t.Fatalf("buffered repeat of a streamed cut missed the cut cache: %+v", info.Counters)
	}
}

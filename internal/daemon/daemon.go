// Package daemon implements the parclustd HTTP/JSON serving layer: named
// datasets are uploaded into a sharded, memory-budgeted registry of
// parclust Indexes, and every clustering query is answered from the
// memoized stage pipeline behind the dataset's Index. Concurrent cold
// queries for the same stage coalesce into one build (the engine's
// singleflight), warm queries run lock-free, and evicting a dataset never
// frees it out from under an in-flight query (the registry's ref-counted
// deferred release).
//
// The handler tree (all responses application/json):
//
//	GET    /healthz                       liveness probe
//	GET    /v1/datasets                   list datasets + registry occupancy
//	PUT    /v1/datasets/{name}            upload (JSON {"points":[[...]]} or CSV body)
//	POST   /v1/datasets/{name}            alias for PUT
//	GET    /v1/datasets/{name}            one dataset's info + stage counters
//	DELETE /v1/datasets/{name}            evict
//	GET    /v1/datasets/{name}/hdbscan    ?minpts=&eps= | &minclustersize=  [&algo=&labels=false]
//	GET    /v1/datasets/{name}/dbscan     ?minpts=&eps=  [&star=true&labels=false]
//	GET    /v1/datasets/{name}/optics     ?minpts=  [&eps=]
//	GET    /v1/datasets/{name}/emst       [?algo=&edges=false]
//	GET    /v1/datasets/{name}/knn        ?q=&k=
//	GET    /v1/datasets/{name}/range      ?q=&r=  [&ids=false]
//	POST   /v1/datasets/{name}/sweep      {"minpts":[...],"eps":[...]} full parameter grid
//	POST   /v1/datasets/{name}/points     insert rows (JSON {"points":[[...]]} or CSV body)
//	DELETE /v1/datasets/{name}/points     delete points by external id ({"ids":[...]})
//	GET    /v1/broadcast/hdbscan          ?minpts=&eps=   fan-out across all datasets
//	GET    /v1/stats                      engine counters per dataset + registry occupancy
//
// The label-, edge-, and reachability-producing endpoints (hdbscan,
// dbscan, optics, emst, sweep) additionally stream their response as
// chunked NDJSON when the request carries "Accept: application/x-ndjson";
// the buffered JSON document stays the default. See stream.go for the
// record protocol.
//
// With Config.DataDir set, the server keeps a persistent stage store
// (internal/store): uploads persist a snapshot, memory-pressure evictions
// spill the warm stage set to disk, and queries against non-resident
// datasets lazily reload their snapshot with zero stage rebuilds. See
// persist.go for the load/spill machinery.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parclust"
	"parclust/internal/dataio"
	"parclust/internal/engine"
	"parclust/internal/registry"
	"parclust/internal/store"
)

// Config sizes a Server.
type Config struct {
	// MaxBytes is the registry memory budget for admitted datasets
	// (estimated via Index.ApproxBytes); <= 0 disables the budget.
	MaxBytes int64
	// Shards is the registry shard count (<= 0: 16).
	Shards int
	// MaxUploadBytes caps one upload request body (<= 0: 1 GiB).
	MaxUploadBytes int64
	// MaxSweepCells caps the minpts x eps grid size one sweep request may
	// ask for (<= 0: 10000).
	MaxSweepCells int
	// DataDir, when non-empty, enables the persistent stage store: uploads
	// and pressure evictions write snapshots there, and queries against a
	// non-resident dataset lazily reload its snapshot instead of 404ing.
	DataDir string
	// Spill writes a full warm snapshot when the registry evicts a dataset
	// under byte pressure, so its memoized stages survive the eviction.
	// Requires DataDir.
	Spill bool
	// QueryTimeout bounds one dataset query (including any cold stage
	// builds it triggers); an expired query answers 504. <= 0 disables.
	QueryTimeout time.Duration
	// RateQPS enables the per-tenant token-bucket rate limiter: each tenant
	// (X-Tenant header, else the remote host) gets RateQPS requests/second
	// with bursts of RateBurst (<= 0: ceil(RateQPS)). Excess requests
	// answer 429 with Retry-After. <= 0 disables.
	RateQPS   float64
	RateBurst int
	// MaxColdBuilds bounds concurrently-admitted cold stage builds across
	// all datasets; excess cold builds answer 503 with Retry-After while
	// warm (memoized) queries keep answering. <= 0 disables.
	MaxColdBuilds int
	// TenantMaxBytes caps one tenant's total resident dataset bytes; an
	// upload over quota answers 507 with Retry-After. <= 0 disables.
	TenantMaxBytes int64
}

// Server hosts the dataset registry behind the HTTP handler tree.
type Server struct {
	cfg Config
	reg *registry.Registry[*dataset]

	// st is the snapshot store, nil when Config.DataDir is empty. The
	// remaining fields are only used when st != nil.
	st      *store.Dir
	loadMu  sync.Mutex
	loading map[string]*loadFlight // per-name singleflight for cold loads

	spills    atomic.Int64 // pressure evictions persisted to disk
	loads     atomic.Int64 // snapshots reloaded into the registry
	loadFails atomic.Int64 // snapshots that existed but failed to decode

	// Overload protection (see robust.go). lim and buildSem are nil when
	// their Config fields are unset.
	lim      *limiter
	buildSem chan struct{}

	rateLimited   atomic.Int64 // requests shed by the rate limiter (429)
	overloaded    atomic.Int64 // cold builds shed by the build gate (503)
	timeouts      atomic.Int64 // queries past their deadline (504)
	quotaRejected atomic.Int64 // uploads over a tenant byte quota (507)
	mutations     atomic.Int64 // insert/delete batches applied (see mutate.go)
	conflicts     atomic.Int64 // queries answered 409 after racing a mutation
}

// dataset is one registry entry: a named Index, mutable through the
// incremental-update endpoints (see mutate.go). tenant is the uploader's
// identity for byte-quota accounting ("" for datasets loaded from
// snapshots, which predate or outlive any one tenant's session).
type dataset struct {
	name   string
	metric parclust.Metric
	idx    *parclust.Index
	bytes  int64
	tenant string
}

// New returns a Server with an empty registry. When cfg.DataDir is set the
// snapshot directory is created and snapshots already on disk become
// lazily loadable; New fails only on an unusable data dir or Spill without
// a DataDir.
func New(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	if cfg.MaxSweepCells <= 0 {
		cfg.MaxSweepCells = 10000
	}
	if cfg.Spill && cfg.DataDir == "" {
		return nil, errors.New("daemon: Spill requires DataDir")
	}
	s := &Server{cfg: cfg, reg: registry.New[*dataset](cfg.MaxBytes, cfg.Shards)}
	if cfg.RateQPS > 0 {
		s.lim = newLimiter(cfg.RateQPS, cfg.RateBurst)
	}
	if cfg.MaxColdBuilds > 0 {
		s.buildSem = make(chan struct{}, cfg.MaxColdBuilds)
	}
	if cfg.DataDir != "" {
		st, err := store.OpenDir(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.st = st
		s.loading = make(map[string]*loadFlight)
		if cfg.Spill {
			s.reg.OnRelease = s.onRelease
		}
	}
	return s, nil
}

// Registry exposes the underlying dataset registry (occupancy stats,
// direct eviction) to embedding code such as cmd/parclustd and tests.
func (s *Server) Registry() *registry.Registry[*dataset] { return s.reg }

// Handler returns the daemon's HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("PUT /v1/datasets/{name}", s.handleUpload)
	mux.HandleFunc("POST /v1/datasets/{name}", s.handleUpload)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleEvict)
	mux.HandleFunc("GET /v1/datasets/{name}/hdbscan", s.handleHDBSCAN)
	mux.HandleFunc("GET /v1/datasets/{name}/dbscan", s.handleDBSCAN)
	mux.HandleFunc("GET /v1/datasets/{name}/optics", s.handleOPTICS)
	mux.HandleFunc("GET /v1/datasets/{name}/emst", s.handleEMST)
	mux.HandleFunc("GET /v1/datasets/{name}/knn", s.handleKNN)
	mux.HandleFunc("GET /v1/datasets/{name}/range", s.handleRange)
	mux.HandleFunc("POST /v1/datasets/{name}/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/datasets/{name}/points", s.handleInsertPoints)
	mux.HandleFunc("DELETE /v1/datasets/{name}/points", s.handleDeletePoints)
	mux.HandleFunc("GET /v1/broadcast/hdbscan", s.handleBroadcast)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s.withRobustness(mux)
}

// ---------------------------------------------------------------- encoding

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is out; nothing useful to do on error
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// countersJSON mirrors engine.Counters with wire names plus the coalesced
// total the 16-cold-clients test (and dashboards) key on.
type countersJSON struct {
	TreeBuilds          int64  `json:"tree_builds"`
	TreeHits            int64  `json:"tree_hits"`
	TreeCoalesced       int64  `json:"tree_coalesced"`
	CoreDistBuilds      int64  `json:"core_dist_builds"`
	CoreDistHits        int64  `json:"core_dist_hits"`
	CoreDistCoalesced   int64  `json:"core_dist_coalesced"`
	MSTBuilds           int64  `json:"mst_builds"`
	MSTHits             int64  `json:"mst_hits"`
	MSTCoalesced        int64  `json:"mst_coalesced"`
	DendrogramBuilds    int64  `json:"dendrogram_builds"`
	DendrogramHits      int64  `json:"dendrogram_hits"`
	DendrogramCoalesced int64  `json:"dendrogram_coalesced"`
	CutBuilds           int64  `json:"cut_builds"`
	CutHits             int64  `json:"cut_hits"`
	CoalescedTotal      int64  `json:"coalesced_total"`
	BuildAborts         int64  `json:"build_aborts"`
	BuildPanics         int64  `json:"build_panics"`
	TreePatches         int64  `json:"tree_patches"`
	Compactions         int64  `json:"compactions"`
	MutationEpoch       uint64 `json:"mutation_epoch"`
}

func toCountersJSON(c engine.Counters) countersJSON {
	return countersJSON{
		TreeBuilds:          c.TreeBuilds,
		TreeHits:            c.TreeHits,
		TreeCoalesced:       c.TreeCoalesced,
		CoreDistBuilds:      c.CoreDistBuilds,
		CoreDistHits:        c.CoreDistHits,
		CoreDistCoalesced:   c.CoreDistCoalesced,
		MSTBuilds:           c.MSTBuilds,
		MSTHits:             c.MSTHits,
		MSTCoalesced:        c.MSTCoalesced,
		DendrogramBuilds:    c.DendrogramBuilds,
		DendrogramHits:      c.DendrogramHits,
		DendrogramCoalesced: c.DendrogramCoalesced,
		CutBuilds:           c.CutBuilds,
		CutHits:             c.CutHits,
		CoalescedTotal:      c.Coalesced(),
		BuildAborts:         c.BuildAborts,
		BuildPanics:         c.BuildPanics,
		TreePatches:         c.TreePatches,
		Compactions:         c.Compactions,
		MutationEpoch:       c.MutationEpoch,
	}
}

type registryJSON struct {
	Datasets  int   `json:"datasets"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Evictions int64 `json:"evictions"`
}

func toRegistryJSON(s registry.Stats) registryJSON {
	return registryJSON{Datasets: s.Entries, Bytes: s.Bytes, MaxBytes: s.MaxBytes, Evictions: s.Evictions}
}

type datasetInfo struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	Dim    int    `json:"dim"`
	Metric string `json:"metric"`
	Dtype  string `json:"dtype,omitempty"`
	Bytes  int64  `json:"bytes"`
}

func infoOf(d *dataset) datasetInfo {
	info := datasetInfo{Name: d.name, N: d.idx.N(), Dim: d.idx.Dim(), Metric: d.metric.String(), Bytes: d.bytes}
	if d.idx.Float32() {
		info.Dtype = "float32"
	}
	return info
}

// ---------------------------------------------------------------- params

// validName delegates to the store's file-stem rule so a dataset name is
// valid iff it is safe to become a snapshot file name: 1-128 characters
// from [A-Za-z0-9._-], not starting with a dot. The leading-dot rule is
// load-bearing even without a data dir — it rejects ".", "..", and hidden
// names outright instead of trusting later path joins to neutralize them.
func validName(name string) bool {
	return store.SafeName(name)
}

// qInt parses a required integer query parameter; ok=false means the error
// response has been written.
func qInt(w http.ResponseWriter, r *http.Request, key string) (int, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter %q", key)
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s=%q: %v", key, raw, err)
		return 0, false
	}
	return v, true
}

// qInt32 parses a required point-id query parameter, rejecting values
// outside int32 range (a silent truncation would alias huge ids onto
// valid points).
func qInt32(w http.ResponseWriter, r *http.Request, key string) (int32, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter %q", key)
		return 0, false
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s=%q: %v", key, raw, err)
		return 0, false
	}
	return int32(v), true
}

func qFloat(w http.ResponseWriter, r *http.Request, key string) (float64, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter %q", key)
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s=%q: %v", key, raw, err)
		return 0, false
	}
	return v, true
}

// qBool reads an optional boolean parameter, defaulting to def when
// absent; a malformed value is a 400 like every other parameter, not a
// silent fallback (ok=false means the error response has been written).
func qBool(w http.ResponseWriter, r *http.Request, key string, def bool) (bool, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad %s=%q: %v", key, raw, err)
		return false, false
	}
	return v, true
}

func parseHDBSCANAlgo(raw string) (parclust.HDBSCANAlgorithm, error) {
	switch strings.ToLower(raw) {
	case "", "memogfk":
		return parclust.HDBSCANMemoGFK, nil
	case "gantao":
		return parclust.HDBSCANGanTao, nil
	case "gantaofull":
		return parclust.HDBSCANGanTaoFull, nil
	}
	return 0, fmt.Errorf("unknown hdbscan algo %q (want memogfk|gantao|gantaofull)", raw)
}

func parseEMSTAlgo(raw string) (parclust.EMSTAlgorithm, error) {
	switch strings.ToLower(raw) {
	case "", "memogfk":
		return parclust.EMSTMemoGFK, nil
	case "gfk":
		return parclust.EMSTGFK, nil
	case "naive":
		return parclust.EMSTNaive, nil
	case "boruvka":
		return parclust.EMSTBoruvka, nil
	case "delaunay2d":
		return parclust.EMSTDelaunay2D, nil
	case "wspdboruvka":
		return parclust.EMSTWSPDBoruvka, nil
	}
	return 0, fmt.Errorf("unknown emst algo %q (want memogfk|gfk|naive|boruvka|delaunay2d|wspdboruvka)", raw)
}

// ctxDone reports whether the request was already cancelled (client gone,
// server shutting down). Handlers check it after parameter validation and
// before the expensive query so a disconnected client neither triggers a
// pipeline build nobody will read nor pays for serialization into a dead
// connection. There is nothing useful to write — the peer is gone — so
// callers just return.
func ctxDone(r *http.Request) bool {
	return r.Context().Err() != nil
}

// acquire pins the named dataset for the duration of one query, writing
// the 404 when it is absent. When the dataset is not resident but the
// snapshot store holds it, acquire lazily reloads it (cold loads for the
// same name coalesce into one decode). Callers must call release exactly
// once; ok=false means the error response has been written.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) (d *dataset, release func(), ok bool) {
	name := r.PathValue("name")
	if h, hit := s.reg.Acquire(name); hit {
		return h.Value(), h.Release, true
	}
	if s.st == nil || !validName(name) || !s.st.Has(name) {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return nil, nil, false
	}
	d, release, err := s.coldLoad(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "dataset %q not found (snapshot unusable: %v)", name, err)
		return nil, nil, false
	}
	return d, release, true
}

// ---------------------------------------------------------------- upload

type uploadRequest struct {
	Metric string `json:"metric"`
	// Dtype selects the numeric representation: "float64" (default, exact)
	// or "float32" (SoA lane-scan fast path; see parclust.WithFloat32).
	Dtype  string      `json:"dtype"`
	Points [][]float64 `json:"points"`
}

// parseDtype maps the wire dtype to the Index float32 flag.
func parseDtype(s string) (float32Mode bool, err error) {
	switch s {
	case "", "float64":
		return false, nil
	case "float32":
		return true, nil
	}
	return false, fmt.Errorf("unknown dtype %q (want float64|float32)", s)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		writeError(w, http.StatusBadRequest, "invalid dataset name %q (want [A-Za-z0-9._-]{1,128})", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	defer body.Close()

	metricName := r.URL.Query().Get("metric")
	dtypeName := r.URL.Query().Get("dtype")
	var pts parclust.Points
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		var req uploadRequest
		dec := json.NewDecoder(body)
		if err := dec.Decode(&req); err != nil {
			writeError(w, uploadErrCode(err), "decode points: %v", err)
			return
		}
		if len(req.Points) == 0 {
			writeError(w, http.StatusBadRequest, "no points in upload")
			return
		}
		dim := len(req.Points[0])
		for i, row := range req.Points {
			if len(row) != dim {
				writeError(w, http.StatusBadRequest, "point %d has dimension %d, want %d", i, len(row), dim)
				return
			}
		}
		pts = parclust.PointsFromSlices(req.Points)
		if req.Metric != "" {
			metricName = req.Metric
		}
		if req.Dtype != "" {
			dtypeName = req.Dtype
		}
	} else {
		var err error
		pts, err = dataio.ReadPoints(body, name)
		if err != nil {
			writeError(w, uploadErrCode(err), "parse points: %v", err)
			return
		}
	}

	m := parclust.MetricL2
	if metricName != "" {
		var err error
		m, err = parclust.ParseMetric(metricName)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	f32, err := parseDtype(dtypeName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	idx, err := parclust.NewIndex(pts, &parclust.IndexOptions{Metric: m, Float32: f32})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.installGate(idx)
	d := &dataset{name: name, metric: m, idx: idx, bytes: idx.ApproxBytes(), tenant: tenantKey(r)}
	if s.cfg.TenantMaxBytes > 0 {
		if held := s.tenantBytes(d.tenant, name); held+d.bytes > s.cfg.TenantMaxBytes {
			s.quotaRejected.Add(1)
			setRetryAfter(w, time.Second)
			writeError(w, http.StatusInsufficientStorage,
				"tenant %q holds %d bytes; adding %d exceeds the %d-byte quota",
				d.tenant, held, d.bytes, s.cfg.TenantMaxBytes)
			return
		}
	}
	if err := s.reg.Put(name, d, d.bytes); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, registry.ErrTooLarge) || errors.Is(err, registry.ErrOverBudget) {
			code = http.StatusInsufficientStorage
			// Over-budget is transient — evictions or deletions free space —
			// so tell the client when to come back.
			setRetryAfter(w, time.Second)
		}
		writeError(w, code, "admit dataset: %v", err)
		return
	}
	resp := map[string]any{"dataset": infoOf(d)}
	if s.st != nil {
		// Persist the (cold) snapshot now so the dataset survives a crash
		// before its first eviction; a replaced upload overwrites the old
		// file atomically. A failed write never fails the upload — the
		// dataset is admitted and serving — but the response says so.
		_, perr := s.st.Write(name, d.idx.WriteSnapshot)
		resp["persisted"] = perr == nil
	}
	writeJSON(w, http.StatusCreated, resp)
}

// uploadErrCode maps body-read failures to 413 when the MaxBytesReader
// tripped and 400 otherwise.
func uploadErrCode(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ---------------------------------------------------------------- admin

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var infos []datasetInfo
	resident := map[string]bool{}
	for _, key := range s.reg.Keys() {
		if h, ok := s.reg.Peek(key); ok {
			infos = append(infos, infoOf(h.Value()))
			resident[key] = true
			h.Release()
		}
	}
	resp := map[string]any{
		"datasets": infos,
		"registry": toRegistryJSON(s.reg.Stats()),
	}
	if s.st != nil {
		// Snapshots without a resident entry are still queryable (the
		// first query reloads them); list them so clients can see the full
		// serving surface, not just what happens to be in RAM.
		cold := []string{}
		if names, err := s.st.List(); err == nil {
			for _, name := range names {
				if !resident[name] {
					cold = append(cold, name)
				}
			}
		}
		resp["cold"] = cold
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	h, ok := s.reg.Peek(name)
	if !ok {
		// A cold dataset answers from its snapshot header without paying
		// for a full reload (info is an admin probe, not a query).
		if s.st != nil && validName(name) {
			if hdr, err := s.st.ReadHeaderFile(name); err == nil {
				writeJSON(w, http.StatusOK, map[string]any{
					"dataset": datasetInfo{Name: name, N: hdr.N, Dim: hdr.Dim, Metric: hdr.Metric, Dtype: hdr.Dtype},
					"cold":    true,
				})
				return
			}
		}
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	defer h.Release()
	d := h.Value()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":  infoOf(d),
		"counters": toCountersJSON(d.idx.Stats()),
	})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	evicted := s.reg.Evict(name)
	removed := false
	// DELETE means "forget this dataset", which covers the snapshot too —
	// including a cold one that is only on disk.
	if s.st != nil && validName(name) && s.st.Has(name) {
		removed = s.st.Remove(name) == nil
	}
	if !evicted && !removed {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"evicted": name, "snapshot_removed": removed})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	perDataset := map[string]any{}
	for _, key := range s.reg.Keys() {
		if h, ok := s.reg.Peek(key); ok {
			d := h.Value()
			perDataset[key] = map[string]any{
				"n":        d.idx.N(),
				"dim":      d.idx.Dim(),
				"metric":   d.metric.String(),
				"bytes":    d.bytes,
				"counters": toCountersJSON(d.idx.Stats()),
			}
			h.Release()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"registry":   toRegistryJSON(s.reg.Stats()),
		"datasets":   perDataset,
		"store":      s.storeStats(),
		"robustness": s.robustStats(),
	})
}

// ---------------------------------------------------------------- queries

type flatResult struct {
	Dataset        string  `json:"dataset"`
	MinPts         int     `json:"minpts"`
	Eps            float64 `json:"eps,omitempty"`
	MinClusterSize int     `json:"min_cluster_size,omitempty"`
	Algo           string  `json:"algo,omitempty"`
	Star           bool    `json:"star,omitempty"`
	NumClusters    int     `json:"num_clusters"`
	NumNoise       int     `json:"num_noise"`
	Labels         []int32 `json:"labels,omitempty"`
}

func countNoise(labels []int32) int {
	n := 0
	for _, l := range labels {
		if l < 0 {
			n++
		}
	}
	return n
}

func (s *Server) handleHDBSCAN(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	minPts, ok := qInt(w, r, "minpts")
	if !ok {
		return
	}
	algo, err := parseHDBSCANAlgo(r.URL.Query().Get("algo"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Parse the cut mode before touching the index: a malformed request
	// must not pay for (or trigger) a pipeline build.
	var (
		useEps bool
		eps    float64
		mcs    int
	)
	switch {
	case r.URL.Query().Get("eps") != "":
		if eps, ok = qFloat(w, r, "eps"); !ok {
			return
		}
		useEps = true
	case r.URL.Query().Get("minclustersize") != "":
		if mcs, ok = qInt(w, r, "minclustersize"); !ok {
			return
		}
		if mcs < 1 {
			writeError(w, http.StatusBadRequest, "minclustersize must be >= 1, got %d", mcs)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "need eps= (flat cut) or minclustersize= (stability extraction)")
		return
	}
	withLabels, ok := qBool(w, r, "labels", true)
	if !ok {
		return
	}
	if ctxDone(r) {
		return
	}
	hier, err := d.idx.WithContext(r.Context()).HDBSCANWithAlgorithm(minPts, algo)
	if !s.queryDone(w, r, d, epoch, err) {
		return
	}
	res := flatResult{Dataset: d.name, MinPts: minPts, Algo: algo.String()}
	var c parclust.Clustering
	if useEps {
		c = hier.ClustersAt(eps)
		res.Eps = eps
		res.NumNoise = hier.NumNoiseAt(eps)
	} else {
		c = hier.ExtractStableClusters(mcs)
		res.MinClusterSize = mcs
		res.NumNoise = countNoise(c.Labels)
	}
	res.NumClusters = c.NumClusters
	if wantsNDJSON(r) {
		sw := newStreamWriter(w, r)
		if !sw.write(res) {
			return
		}
		if withLabels && !sw.streamLabels(c.Labels) {
			return
		}
		sw.finish()
		return
	}
	if withLabels {
		res.Labels = c.Labels
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleDBSCAN(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	minPts, ok := qInt(w, r, "minpts")
	if !ok {
		return
	}
	eps, ok := qFloat(w, r, "eps")
	if !ok {
		return
	}
	star, ok := qBool(w, r, "star", false)
	if !ok {
		return
	}
	withLabels, ok := qBool(w, r, "labels", true)
	if !ok {
		return
	}
	if ctxDone(r) {
		return
	}
	idx := d.idx.WithContext(r.Context())
	var c parclust.Clustering
	var err error
	if star {
		c, err = idx.DBSCANStar(minPts, eps)
	} else {
		c, err = idx.DBSCAN(minPts, eps)
	}
	if !s.queryDone(w, r, d, epoch, err) {
		return
	}
	res := flatResult{
		Dataset: d.name, MinPts: minPts, Eps: eps, Star: star,
		NumClusters: c.NumClusters, NumNoise: countNoise(c.Labels),
	}
	if wantsNDJSON(r) {
		sw := newStreamWriter(w, r)
		if !sw.write(res) {
			return
		}
		if withLabels && !sw.streamLabels(c.Labels) {
			return
		}
		sw.finish()
		return
	}
	if withLabels {
		res.Labels = c.Labels
	}
	writeJSON(w, http.StatusOK, res)
}

// opticsBar is one OPTICS position; Reachability is null for points that
// start a new connected component (+Inf has no JSON encoding).
type opticsBar struct {
	ID           int32    `json:"id"`
	Reachability *float64 `json:"reachability"`
}

// toOpticsBar converts one OPTICS entry to its wire shape.
func toOpticsBar(e parclust.OPTICSEntry) opticsBar {
	b := opticsBar{ID: e.Idx}
	if !math.IsInf(e.Reachability, 1) {
		reach := e.Reachability
		b.Reachability = &reach
	}
	return b
}

// opticsResult is the OPTICS response document; Order is the omitted array
// field in a streamed header.
type opticsResult struct {
	Dataset string      `json:"dataset"`
	MinPts  int         `json:"minpts"`
	Order   []opticsBar `json:"order,omitempty"`
}

func (s *Server) handleOPTICS(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	minPts, ok := qInt(w, r, "minpts")
	if !ok {
		return
	}
	eps := math.Inf(1)
	if r.URL.Query().Get("eps") != "" {
		if eps, ok = qFloat(w, r, "eps"); !ok {
			return
		}
	}
	if ctxDone(r) {
		return
	}
	entries, err := d.idx.WithContext(r.Context()).OPTICS(minPts, eps)
	if !s.queryDone(w, r, d, epoch, err) {
		return
	}
	res := opticsResult{Dataset: d.name, MinPts: minPts}
	if wantsNDJSON(r) {
		sw := newStreamWriter(w, r)
		if !sw.write(res) {
			return
		}
		if !sw.streamBars(entries) {
			return
		}
		sw.finish()
		return
	}
	res.Order = make([]opticsBar, len(entries))
	for i, e := range entries {
		res.Order[i] = toOpticsBar(e)
	}
	writeJSON(w, http.StatusOK, res)
}

type edgeJSON struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	W float64 `json:"w"`
}

// emstResult is the EMST response document; Edges is the omitted array
// field in a streamed header.
type emstResult struct {
	Dataset     string     `json:"dataset"`
	Algo        string     `json:"algo"`
	NumEdges    int        `json:"num_edges"`
	TotalWeight float64    `json:"total_weight"`
	Edges       []edgeJSON `json:"edges,omitempty"`
}

func (s *Server) handleEMST(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	algo, err := parseEMSTAlgo(r.URL.Query().Get("algo"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	withEdges, ok := qBool(w, r, "edges", true)
	if !ok {
		return
	}
	if ctxDone(r) {
		return
	}
	edges, err := d.idx.WithContext(r.Context()).EMSTWithAlgorithm(algo)
	if !s.queryDone(w, r, d, epoch, err) {
		return
	}
	total := 0.0
	for _, e := range edges {
		total += e.W
	}
	res := emstResult{
		Dataset: d.name, Algo: algo.String(),
		NumEdges: len(edges), TotalWeight: total,
	}
	if wantsNDJSON(r) {
		sw := newStreamWriter(w, r)
		if !sw.write(res) {
			return
		}
		if withEdges && !sw.streamEdges(edges) {
			return
		}
		sw.finish()
		return
	}
	if withEdges {
		res.Edges = make([]edgeJSON, len(edges))
		for i, e := range edges {
			res.Edges[i] = edgeJSON{U: e.U, V: e.V, W: e.W}
		}
	}
	writeJSON(w, http.StatusOK, res)
}

type neighborJSON struct {
	ID   int32   `json:"id"`
	Dist float64 `json:"dist"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	q, ok := qInt32(w, r, "q")
	if !ok {
		return
	}
	k, ok := qInt(w, r, "k")
	if !ok {
		return
	}
	nbs, err := d.idx.WithContext(r.Context()).KNN(q, k)
	if !s.queryDone(w, r, d, epoch, err) {
		return
	}
	out := make([]neighborJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborJSON{ID: nb.Idx, Dist: nb.Dist}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": d.name, "q": q, "k": k, "neighbors": out,
	})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	q, ok := qInt32(w, r, "q")
	if !ok {
		return
	}
	radius, ok := qFloat(w, r, "r")
	if !ok {
		return
	}
	ids, err := d.idx.WithContext(r.Context()).RangeQuery(q, radius)
	if !s.queryDone(w, r, d, epoch, err) {
		return
	}
	resp := map[string]any{
		"dataset": d.name, "q": q, "r": radius, "count": len(ids),
	}
	withIDs, ok := qBool(w, r, "ids", true)
	if !ok {
		return
	}
	if withIDs {
		resp["ids"] = ids
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------- fan-out

// broadcastEntry is one dataset's slice of a fan-out query.
type broadcastEntry struct {
	Dataset     string `json:"dataset"`
	N           int    `json:"n"`
	NumClusters int    `json:"num_clusters"`
	NumNoise    int    `json:"num_noise"`
	Error       string `json:"error,omitempty"`
}

// handleBroadcast answers one HDBSCAN cut against every resident dataset,
// fanning the per-dataset queries out concurrently so a multi-tenant sweep
// uses the whole machine instead of iterating datasets sequentially.
//
// The fan-out deliberately uses one goroutine per dataset, NOT the
// work-stealing scheduler (parallel.For): a query body can block on an
// engine's build mutex or park on a singleflight flight, and a blocking
// body inside a scheduler task can be leapfrog-stolen by a stage-build
// leader's Sync — which would park the leader on a flight only it can
// complete (or self-lock its own buildMu), deadlocking the daemon. The
// per-dataset query work below still runs on the scheduler internally.
func (s *Server) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	minPts, ok := qInt(w, r, "minpts")
	if !ok {
		return
	}
	eps, ok := qFloat(w, r, "eps")
	if !ok {
		return
	}
	keys := s.reg.Keys()
	results := make([]broadcastEntry, len(keys))
	ctx := r.Context()
	var wg sync.WaitGroup
	queryOne := func(i int) {
		results[i] = broadcastEntry{Dataset: keys[i]}
		// A cancelled broadcast must not keep launching per-dataset
		// builds: datasets whose goroutine starts after the client
		// disconnects bail out here instead of running a query nobody
		// will read. Queries already inside the engine run to completion
		// (their result stays memoized for the next caller).
		if ctx.Err() != nil {
			results[i].Error = "request cancelled"
			return
		}
		h, ok := s.reg.Acquire(keys[i])
		if !ok {
			results[i].Error = "evicted during broadcast"
			return
		}
		defer h.Release()
		d := h.Value()
		results[i].N = d.idx.N()
		hier, err := d.idx.WithContext(ctx).HDBSCAN(minPts)
		if err != nil {
			results[i].Error = err.Error()
			return
		}
		c := hier.ClustersAt(eps)
		results[i].NumClusters = c.NumClusters
		results[i].NumNoise = hier.NumNoiseAt(eps)
	}
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			queryOne(i)
		}(i)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"minpts": minPts, "eps": eps, "results": results,
	})
}

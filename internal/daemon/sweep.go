package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
)

// POST /v1/datasets/{name}/sweep runs a full minpts x eps parameter grid
// against one warm Index in a single request. The stage pipeline makes the
// grid cheap: the k-d tree is shared by every cell, each distinct minPts
// costs one coreDist + one MST + one dendrogram build, and each distinct
// eps within a minPts costs one flat cut (cached thereafter) — a |M| x |E|
// grid runs 1 tree + |M| coreDist + |M| MST builds, not |M| x |E| full
// pipelines. Compare a client-side loop over /hdbscan: same stage reuse,
// but |M| x |E| HTTP round-trips and |M| x |E| response documents.

// maxSweepBodyBytes caps a sweep request body; grids are tiny, so anything
// beyond 1 MiB is garbage.
const maxSweepBodyBytes = 1 << 20

// sweepRequest is the POST body: the grid axes plus per-cell options.
type sweepRequest struct {
	// MinPts is the density axis; every value costs one coreDist + MST +
	// dendrogram build on a cold Index (amortized across its eps row).
	MinPts []int `json:"minpts"`
	// Eps is the radius axis; every (minpts, eps) cell is one flat cut.
	Eps []float64 `json:"eps"`
	// Algo selects the HDBSCAN MST algorithm ("" = memogfk).
	Algo string `json:"algo"`
	// Labels includes the full per-point label array in every cell record
	// (default false: sweeps are usually parameter scans reading only the
	// cluster/noise counts).
	Labels bool `json:"labels"`
}

// sweepCell is one grid cell's result.
type sweepCell struct {
	MinPts      int     `json:"minpts"`
	Eps         float64 `json:"eps"`
	NumClusters int     `json:"num_clusters"`
	NumNoise    int     `json:"num_noise"`
	Labels      []int32 `json:"labels,omitempty"`
}

// sweepResult is the buffered response document; Cells is the omitted
// array field in a streamed header, where each cell instead arrives as its
// own NDJSON record.
type sweepResult struct {
	Dataset  string      `json:"dataset"`
	Algo     string      `json:"algo"`
	NumCells int         `json:"num_cells"`
	Cells    []sweepCell `json:"cells,omitempty"`
}

// parseSweep decodes and validates a sweep request body. It is strict —
// unknown fields, trailing data, empty axes, minpts < 1, and non-finite or
// negative eps are all errors — and it deduplicates both axes preserving
// first-occurrence order, so the grid a handler iterates is exactly the
// distinct cells. This is the fuzz target for the endpoint's parser.
func parseSweep(data []byte, maxCells int) (sweepRequest, error) {
	var req sweepRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return sweepRequest{}, fmt.Errorf("decode sweep request: %v", err)
	}
	if dec.More() {
		return sweepRequest{}, fmt.Errorf("trailing data after sweep request body")
	}
	if len(req.MinPts) == 0 {
		return sweepRequest{}, fmt.Errorf("minpts grid is empty")
	}
	if len(req.Eps) == 0 {
		return sweepRequest{}, fmt.Errorf("eps grid is empty")
	}
	if _, err := parseHDBSCANAlgo(req.Algo); err != nil {
		return sweepRequest{}, err
	}
	minPts := req.MinPts[:0]
	seenM := make(map[int]bool, len(req.MinPts))
	for _, mp := range req.MinPts {
		if mp < 1 {
			return sweepRequest{}, fmt.Errorf("minpts must be >= 1, got %d", mp)
		}
		if !seenM[mp] {
			seenM[mp] = true
			minPts = append(minPts, mp)
		}
	}
	eps := req.Eps[:0]
	seenE := make(map[float64]bool, len(req.Eps))
	for _, e := range req.Eps {
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			return sweepRequest{}, fmt.Errorf("eps must be finite and >= 0, got %v", e)
		}
		if !seenE[e] {
			seenE[e] = true
			eps = append(eps, e)
		}
	}
	req.MinPts, req.Eps = minPts, eps
	// Both axis lengths are bounded by the body size, so the product fits
	// in int64 even before the cap check.
	if cells := int64(len(minPts)) * int64(len(eps)); cells > int64(maxCells) {
		return sweepRequest{}, fmt.Errorf("grid of %d cells exceeds the %d-cell limit", cells, maxCells)
	}
	return req, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	d, release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	epoch := d.idx.MutationEpoch()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSweepBodyBytes))
	if err != nil {
		writeError(w, uploadErrCode(err), "read sweep request: %v", err)
		return
	}
	req, err := parseSweep(body, s.cfg.MaxSweepCells)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	algo, _ := parseHDBSCANAlgo(req.Algo)
	// Validate the whole grid against the dataset before the first byte
	// goes out: once a stream has committed its 200 there is no way to
	// report a bad cell other than truncation.
	for _, mp := range req.MinPts {
		if mp > d.idx.N() {
			writeError(w, http.StatusBadRequest, "minpts=%d exceeds dataset size %d", mp, d.idx.N())
			return
		}
	}
	if ctxDone(r) {
		return
	}

	idx := d.idx.WithContext(r.Context())
	res := sweepResult{
		Dataset:  d.name,
		Algo:     algo.String(),
		NumCells: len(req.MinPts) * len(req.Eps),
	}
	if wantsNDJSON(r) {
		// The stream is about to commit its 200; a mutation that already
		// raced in answers 409 while that is still possible. Mutations
		// landing after this point truncate the stream below.
		if !s.queryDone(w, r, d, epoch, nil) {
			return
		}
		sw := newStreamWriter(w, r)
		if !sw.write(res) {
			return
		}
	row:
		for _, mp := range req.MinPts {
			hier, err := idx.HDBSCANWithAlgorithm(mp, algo)
			if err != nil || d.idx.MutationEpoch() != epoch {
				// A cancelled/expired context, a shed cold build, or a
				// mutation racing the sweep; the stream has committed its
				// 200, so a truncated stream (no trailer) is the only
				// honest answer.
				return
			}
			for _, eps := range req.Eps {
				c := hier.ClustersAt(eps)
				cell := sweepCell{
					MinPts: mp, Eps: eps,
					NumClusters: c.NumClusters,
					NumNoise:    hier.NumNoiseAt(eps),
				}
				if req.Labels {
					cell.Labels = c.Labels
				}
				if !sw.write(cell) {
					break row
				}
				sw.items++
			}
		}
		if sw.err == nil {
			sw.finish()
		}
	} else {
		res.Cells = make([]sweepCell, 0, res.NumCells)
		for _, mp := range req.MinPts {
			if ctxDone(r) {
				return
			}
			hier, err := idx.HDBSCANWithAlgorithm(mp, algo)
			if !s.queryDone(w, r, d, epoch, err) {
				return
			}
			for _, eps := range req.Eps {
				c := hier.ClustersAt(eps)
				cell := sweepCell{
					MinPts: mp, Eps: eps,
					NumClusters: c.NumClusters,
					NumNoise:    hier.NumNoiseAt(eps),
				}
				if req.Labels {
					cell.Labels = c.Labels
				}
				res.Cells = append(res.Cells, cell)
			}
		}
		if ctxDone(r) {
			return
		}
		if !s.queryDone(w, r, d, epoch, nil) {
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
	// The sweep grew the Index's cut-result caches; re-charge the registry
	// so occupancy accounting tracks the real footprint.
	s.reg.Recharge(d.name, d.idx.ApproxBytes())
}

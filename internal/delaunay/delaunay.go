// Package delaunay implements 2D Delaunay triangulation via incremental
// Bowyer-Watson insertion with walking point location over a Morton-sorted
// insertion order, and the EMST-Delaunay baseline of Appendix A.1: in two
// dimensions the EMST is a subgraph of the Delaunay triangulation, so an
// MST over its O(n) edges is the EMST.
package delaunay

import (
	"math"
	"sort"

	"parclust/internal/geometry"
	"parclust/internal/mst"
)

type tri struct {
	v     [3]int32 // vertices, counter-clockwise
	adj   [3]int32 // adj[i] is the neighbor across the edge opposite v[i]
	alive bool
}

// Triangulation is a Delaunay triangulation of a 2D point set. Vertex ids
// n, n+1, n+2 are the synthetic super-triangle vertices.
type Triangulation struct {
	n      int
	xs, ys []float64 // n+3 coordinates
	tris   []tri
	last   int32 // walk start hint
}

// Triangulate computes the Delaunay triangulation of pts (which must be
// 2-dimensional).
func Triangulate(pts geometry.Points) *Triangulation {
	if pts.Dim != 2 {
		panic("delaunay: triangulation requires 2D points")
	}
	n := pts.N
	t := &Triangulation{n: n, xs: make([]float64, n+3), ys: make([]float64, n+3)}
	loX, hiX := math.Inf(1), math.Inf(-1)
	loY, hiY := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		x, y := pts.Data[2*i], pts.Data[2*i+1]
		t.xs[i], t.ys[i] = x, y
		loX, hiX = math.Min(loX, x), math.Max(hiX, x)
		loY, hiY = math.Min(loY, y), math.Max(hiY, y)
	}
	if n == 0 {
		return t
	}
	cx, cy := (loX+hiX)/2, (loY+hiY)/2
	m := math.Max(hiX-loX, hiY-loY)
	if m == 0 {
		m = 1
	}
	big := 1e4 * m
	sv := int32(n)
	t.xs[sv], t.ys[sv] = cx-2*big, cy-big
	t.xs[sv+1], t.ys[sv+1] = cx+2*big, cy-big
	t.xs[sv+2], t.ys[sv+2] = cx, cy+2*big
	t.tris = append(t.tris, tri{v: [3]int32{sv, sv + 1, sv + 2}, adj: [3]int32{-1, -1, -1}, alive: true})

	// Morton-sorted insertion order for walk locality.
	order := mortonOrder(t.xs[:n], t.ys[:n], loX, loY, m)
	for _, p := range order {
		t.insert(p)
	}
	return t
}

func mortonOrder(xs, ys []float64, loX, loY, extent float64) []int32 {
	n := len(xs)
	keys := make([]uint64, n)
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		qx := uint32((xs[i] - loX) / extent * 65535)
		qy := uint32((ys[i] - loY) / extent * 65535)
		keys[i] = interleave(qx) | interleave(qy)<<1
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

func interleave(v uint32) uint64 {
	x := uint64(v) & 0xffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func (t *Triangulation) orient(a, b, c int32) float64 {
	return (t.xs[b]-t.xs[a])*(t.ys[c]-t.ys[a]) - (t.ys[b]-t.ys[a])*(t.xs[c]-t.xs[a])
}

// inCircumcircle reports whether point d lies strictly inside the
// circumcircle of CCW triangle (a, b, c).
func (t *Triangulation) inCircumcircle(a, b, c, d int32) bool {
	ax, ay := t.xs[a]-t.xs[d], t.ys[a]-t.ys[d]
	bx, by := t.xs[b]-t.xs[d], t.ys[b]-t.ys[d]
	cx, cy := t.xs[c]-t.xs[d], t.ys[c]-t.ys[d]
	det := (ax*ax+ay*ay)*(bx*cy-by*cx) -
		(bx*bx+by*by)*(ax*cy-ay*cx) +
		(cx*cx+cy*cy)*(ax*by-ay*bx)
	return det > 0
}

// locate walks from the hint triangle toward p and returns a live triangle
// containing p.
func (t *Triangulation) locate(p int32) int32 {
	cur := t.last
	if !t.tris[cur].alive {
		for i := len(t.tris) - 1; i >= 0; i-- {
			if t.tris[i].alive {
				cur = int32(i)
				break
			}
		}
	}
	for steps := 0; steps < 4*len(t.tris)+16; steps++ {
		tr := &t.tris[cur]
		moved := false
		for e := 0; e < 3; e++ {
			a := tr.v[(e+1)%3]
			b := tr.v[(e+2)%3]
			if t.orient(a, b, p) < 0 { // p beyond edge (a,b)
				nb := tr.adj[e]
				if nb >= 0 {
					cur = nb
					moved = true
					break
				}
			}
		}
		if !moved {
			return cur
		}
	}
	// Degenerate walk (should not happen with a super-triangle); fall back
	// to a linear scan.
	for i, tr := range t.tris {
		if !tr.alive {
			continue
		}
		if t.orient(tr.v[0], tr.v[1], p) >= 0 &&
			t.orient(tr.v[1], tr.v[2], p) >= 0 &&
			t.orient(tr.v[2], tr.v[0], p) >= 0 {
			return int32(i)
		}
	}
	panic("delaunay: point location failed")
}

// insert adds point p with the Bowyer-Watson cavity algorithm.
func (t *Triangulation) insert(p int32) {
	seed := t.locate(p)
	// BFS for the cavity: all live triangles whose circumcircle contains p.
	bad := map[int32]bool{seed: true}
	queue := []int32{seed}
	type bedge struct {
		a, b    int32 // directed boundary edge (cavity on the left)
		outside int32 // triangle beyond the edge (-1 at the hull)
	}
	var boundary []bedge
	for len(queue) > 0 {
		ti := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		tr := t.tris[ti]
		for e := 0; e < 3; e++ {
			nb := tr.adj[e]
			a := tr.v[(e+1)%3]
			b := tr.v[(e+2)%3]
			if nb >= 0 && !bad[nb] {
				nbt := t.tris[nb]
				if t.inCircumcircle(nbt.v[0], nbt.v[1], nbt.v[2], p) {
					bad[nb] = true
					queue = append(queue, nb)
					continue
				}
			}
			if nb < 0 || !bad[nb] {
				boundary = append(boundary, bedge{a: a, b: b, outside: nb})
			}
		}
	}
	// A later neighbor may have been marked bad after its boundary edge was
	// recorded; drop stale entries.
	clean := boundary[:0]
	for _, be := range boundary {
		if be.outside < 0 || !bad[be.outside] {
			clean = append(clean, be)
		}
	}
	boundary = clean
	for ti := range bad {
		t.tris[ti].alive = false
	}
	// Re-triangulate the star of p.
	newByEdge := make(map[int64]int32, len(boundary))
	key := func(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }
	for _, be := range boundary {
		ni := int32(len(t.tris))
		nt := tri{v: [3]int32{p, be.a, be.b}, adj: [3]int32{be.outside, -1, -1}, alive: true}
		t.tris = append(t.tris, nt)
		if be.outside >= 0 {
			out := &t.tris[be.outside]
			for e := 0; e < 3; e++ {
				oa := out.v[(e+1)%3]
				ob := out.v[(e+2)%3]
				if oa == be.b && ob == be.a {
					out.adj[e] = ni
				}
			}
		}
		newByEdge[key(be.a, be.b)] = ni
	}
	// Stitch fan neighbors. The cavity boundary is a closed polygon, so each
	// vertex appears exactly once as an edge start and once as an edge end.
	startAt := make(map[int32]int32, len(boundary))
	endAt := make(map[int32]int32, len(boundary))
	for _, be := range boundary {
		ni := newByEdge[key(be.a, be.b)]
		startAt[be.a] = ni
		endAt[be.b] = ni
	}
	for _, be := range boundary {
		ni := newByEdge[key(be.a, be.b)]
		t.tris[ni].adj[1] = startAt[be.b] // across edge (p, b): tri (p, b, *)
		t.tris[ni].adj[2] = endAt[be.a]   // across edge (p, a): tri (p, *, a)
	}
	t.last = int32(len(t.tris) - 1)
}

// Edges returns the undirected Delaunay edges between input points (edges
// to super-triangle vertices excluded), weighted by Euclidean distance.
func (t *Triangulation) Edges() []mst.Edge {
	seen := make(map[int64]bool)
	var out []mst.Edge
	for _, tr := range t.tris {
		if !tr.alive {
			continue
		}
		for e := 0; e < 3; e++ {
			a, b := tr.v[e], tr.v[(e+1)%3]
			if int(a) >= t.n || int(b) >= t.n {
				continue
			}
			if a > b {
				a, b = b, a
			}
			k := int64(a)<<32 | int64(b)
			if seen[k] {
				continue
			}
			seen[k] = true
			dx, dy := t.xs[a]-t.xs[b], t.ys[a]-t.ys[b]
			out = append(out, mst.Edge{U: a, V: b, W: math.Hypot(dx, dy)})
		}
	}
	return out
}

// Triangles returns the alive triangles among input points only.
func (t *Triangulation) Triangles() [][3]int32 {
	var out [][3]int32
	for _, tr := range t.tris {
		if !tr.alive {
			continue
		}
		if int(tr.v[0]) >= t.n || int(tr.v[1]) >= t.n || int(tr.v[2]) >= t.n {
			continue
		}
		out = append(out, tr.v)
	}
	return out
}

// EMST computes the 2D EMST via Delaunay triangulation + parallel Kruskal
// (Appendix A.1). The triangulation itself is sequential (see DESIGN.md).
func EMST(pts geometry.Points, stats *mst.Stats) []mst.Edge {
	if pts.N <= 1 {
		return nil
	}
	var edges []mst.Edge
	if stats != nil {
		stats.Time("delaunay", func() { edges = Triangulate(pts).Edges() })
	} else {
		edges = Triangulate(pts).Edges()
	}
	var out []mst.Edge
	run := func() { out = mst.Kruskal(pts.N, edges) }
	if stats != nil {
		stats.Time("kruskal", run)
	} else {
		run()
	}
	return out
}

package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/wspd"
)

func randPoints2D(n int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, 2)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

// TestEmptyCircumcircle verifies the Delaunay property directly: no input
// point lies strictly inside the circumcircle of any triangle.
func TestEmptyCircumcircle(t *testing.T) {
	for _, n := range []int{3, 10, 60, 200} {
		pts := randPoints2D(n, int64(n))
		tri := Triangulate(pts)
		for _, tv := range tri.Triangles() {
			for p := int32(0); p < int32(n); p++ {
				if p == tv[0] || p == tv[1] || p == tv[2] {
					continue
				}
				if tri.inCircumcircle(tv[0], tv[1], tv[2], p) {
					// allow boundary-epsilon slack via a slightly shrunk check
					t.Fatalf("n=%d: point %d inside circumcircle of %v", n, p, tv)
				}
			}
		}
	}
}

func TestEdgeCountPlanarity(t *testing.T) {
	// A planar triangulation on n points has at most 3n-6 edges.
	pts := randPoints2D(500, 7)
	edges := Triangulate(pts).Edges()
	if len(edges) > 3*pts.N-6 {
		t.Fatalf("%d edges exceeds planar bound %d", len(edges), 3*pts.N-6)
	}
	if len(edges) < pts.N-1 {
		t.Fatalf("%d edges cannot connect %d points", len(edges), pts.N)
	}
}

// TestEMSTMatchesMemoGFK is Appendix A.1's correctness claim: the MST of
// the Delaunay triangulation is the EMST.
func TestEMSTMatchesMemoGFK(t *testing.T) {
	for _, n := range []int{2, 3, 50, 400, 2000} {
		pts := randPoints2D(n, int64(n*3))
		got := EMST(pts, nil)
		tr := kdtree.Build(pts, 1)
		want := mst.MemoGFK(mst.Config{Tree: tr, Metric: kdtree.NewEuclidean(tr), Sep: wspd.Geometric{S: 2}})
		if len(got) != n-1 {
			t.Fatalf("n=%d: %d edges, want %d", n, len(got), n-1)
		}
		gw, ww := mst.TotalWeight(got), mst.TotalWeight(want)
		if math.Abs(gw-ww) > 1e-6*(1+ww) {
			t.Fatalf("n=%d: Delaunay EMST weight %v, want %v", n, gw, ww)
		}
	}
}

func TestCollinearPoints(t *testing.T) {
	// Collinear inputs are a classic degenerate case for Delaunay codes.
	n := 20
	pts := geometry.NewPoints(n, 2)
	for i := 0; i < n; i++ {
		pts.Data[2*i] = float64(i)
		pts.Data[2*i+1] = 0
	}
	got := EMST(pts, nil)
	if len(got) != n-1 {
		t.Fatalf("collinear: %d edges, want %d", len(got), n-1)
	}
	if w := mst.TotalWeight(got); math.Abs(w-float64(n-1)) > 1e-9 {
		t.Fatalf("collinear EMST weight %v, want %d", w, n-1)
	}
}

func TestGridPoints(t *testing.T) {
	// Co-circular grid points stress incircle ties.
	side := 8
	pts := geometry.NewPoints(side*side, 2)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			pts.Data[2*(i*side+j)] = float64(i)
			pts.Data[2*(i*side+j)+1] = float64(j)
		}
	}
	got := EMST(pts, nil)
	if len(got) != pts.N-1 {
		t.Fatalf("grid: %d edges, want %d", len(got), pts.N-1)
	}
	want := float64(pts.N - 1) // grid MST uses unit edges only
	if math.Abs(mst.TotalWeight(got)-want) > 1e-9 {
		t.Fatalf("grid EMST weight %v, want %v", mst.TotalWeight(got), want)
	}
}

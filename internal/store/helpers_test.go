package store

import (
	"context"

	"parclust/internal/engine"
)

// Background-context, panic-on-error wrappers over the ctx-aware engine
// stage entries for these tests, which never expect a build to fail.

func testHier(e *engine.Engine, kind engine.Kind, algo uint8, minPts int) *engine.HierStage {
	st, err := e.Hierarchy(context.Background(), kind, algo, minPts, nil)
	if err != nil {
		panic(err)
	}
	return st
}

func testCoreDist(e *engine.Engine, minPts int) []float64 {
	cd, err := e.CoreDist(context.Background(), minPts, nil)
	if err != nil {
		panic(err)
	}
	return cd
}

package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"parclust/internal/engine"
	"parclust/internal/metric"
)

func TestSafeName(t *testing.T) {
	good := []string{"a", "iris", "a-b_c.d", "A9", "x" + string(make([]byte, 0)), "trailing.", "v1.2.3"}
	for _, name := range good {
		if !SafeName(name) {
			t.Errorf("SafeName(%q) = false, want true", name)
		}
	}
	bad := []string{"", ".", "..", "...", ".hidden", "a/b", "a\\b", "a b", "über", "a\x00b",
		string(bytes.Repeat([]byte("x"), 129))}
	for _, name := range bad {
		if SafeName(name) {
			t.Errorf("SafeName(%q) = true, want false", name)
		}
	}
	if !SafeName(string(bytes.Repeat([]byte("x"), 128))) {
		t.Error("128-char name rejected")
	}
}

func TestDirWriteReadRemove(t *testing.T) {
	dir, err := OpenDir(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	e := warmEngine(randPoints(100, 2, 1))
	size, err := dir.Write("iris", func(w io.Writer) error { return Encode(w, "l2", e) })
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir.Path("iris")); err != nil || fi.Size() != size {
		t.Fatalf("stat after write: %v (size %d, want %d)", err, fi.Size(), size)
	}
	hdr, err := dir.ReadHeaderFile("iris")
	if err != nil || hdr.N != 100 {
		t.Fatalf("header: %v (n=%d)", err, hdr.N)
	}
	if names, _ := dir.List(); len(names) != 1 || names[0] != "iris" {
		t.Fatalf("List = %v", names)
	}
	if count, b := dir.DiskStats(); count != 1 || b != size {
		t.Fatalf("DiskStats = %d, %d", count, b)
	}
	f, err := dir.Open("iris")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(f)
	f.Close()
	if err != nil || res.Engine.N() != 100 {
		t.Fatalf("decode from file: %v", err)
	}
	if err := dir.Remove("iris"); err != nil {
		t.Fatal(err)
	}
	if dir.Has("iris") {
		t.Fatal("snapshot still present after Remove")
	}
	if err := dir.Remove("iris"); err != nil {
		t.Fatalf("removing a missing snapshot: %v", err)
	}
	if _, err := dir.Open("iris"); !os.IsNotExist(errors.Unwrap(err)) && !os.IsNotExist(err) {
		t.Fatalf("Open after remove: %v", err)
	}
}

// TestDirWriteAtomic interrupts a write mid-stream: the published snapshot
// must be the old intact one, and no temp litter may remain visible.
func TestDirWriteAtomic(t *testing.T) {
	dir, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := warmEngine(randPoints(80, 2, 2))
	if _, err := dir.Write("d", func(w io.Writer) error { return Encode(w, "l2", e) }); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(dir.Path("d"))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	if _, err := dir.Write("d", func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failed write returned %v", err)
	}
	after, err := os.ReadFile(dir.Path("d"))
	if err != nil || !bytes.Equal(before, after) {
		t.Fatal("failed write damaged the published snapshot")
	}
	if names, _ := dir.List(); len(names) != 1 {
		t.Fatalf("List after failed write = %v", names)
	}
}

func TestDirRejectsUnsafeNames(t *testing.T) {
	dir, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"..", ".hidden", "a/b", ""} {
		if _, err := dir.Write(name, func(w io.Writer) error { return nil }); err == nil {
			t.Errorf("Write(%q) accepted", name)
		}
		if _, err := dir.Open(name); err == nil {
			t.Errorf("Open(%q) accepted", name)
		}
		if err := dir.Remove(name); err == nil {
			t.Errorf("Remove(%q) accepted", name)
		}
		if dir.Has(name) {
			t.Errorf("Has(%q) = true", name)
		}
	}
}

// TestDecodeSkipReportsAreActionable checks Result.Skipped names the
// damaged stage.
func TestDecodeSkipReportsAreActionable(t *testing.T) {
	pts := randPoints(120, 2, 6)
	e := engine.New(pts, metric.L2{})
	testCoreDist(e, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, "l2", e); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	hdr, err := ReadHeader(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	payloadBase := len(snap) - int(payloadSize(hdr))
	for _, c := range hdr.Chunks {
		if c.Stage != StageCore {
			continue
		}
		mut := append([]byte(nil), snap...)
		mut[payloadBase+int(c.Off)] ^= 0x01
		res, err := Decode(bytes.NewReader(mut))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Skipped) != 1 || !bytes.Contains([]byte(res.Skipped[0]), []byte("core(minpts=5)")) {
			t.Fatalf("Skipped = %v, want core(minpts=5) checksum report", res.Skipped)
		}
	}
}

package store

import (
	"bytes"
	"testing"
)

// FuzzSnapshotHeader throws arbitrary bytes at the snapshot reader: both
// the header-only parse and the full decode must return an error or a
// valid result — never panic, never over-allocate from unvalidated header
// fields.
func FuzzSnapshotHeader(f *testing.F) {
	snap := func(n int) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, "l2", warmEngine(randPoints(n, 2, int64(n)))); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := snap(40)
	f.Add(valid)
	f.Add(snap(0))
	f.Add(valid[:prefixLen])
	f.Add(valid[:len(valid)/2])
	trunc := append([]byte(nil), valid[:len(valid)-7]...)
	f.Add(trunc)
	flip := append([]byte(nil), valid...)
	flip[prefixLen+3] ^= 0xff
	f.Add(flip)
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		if hdr, err := ReadHeader(bytes.NewReader(data)); err == nil && hdr == nil {
			t.Fatal("ReadHeader returned nil, nil")
		}
		res, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must hold its structural promises: the engine
		// exists and answers a basic query without panicking.
		if res.Engine == nil {
			t.Fatal("Decode returned nil engine without error")
		}
		if n := res.Engine.N(); n != res.Header.N {
			t.Fatalf("engine has %d points, header says %d", n, res.Header.N)
		}
		if res.Header.N > 0 && res.Header.N <= 64 {
			testHier(res.Engine, 1, 0, min(res.Header.N, 4)).CutAt(1)
		}
	})
}

package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parclust/internal/faultinject"
)

// Ext is the snapshot file extension.
const Ext = ".pcsnap"

// SafeName reports whether name is safe to use as a snapshot file stem:
// 1-128 characters from [A-Za-z0-9._-], not starting with a dot. The
// leading-dot rule is what keeps ".", "..", and hidden files out of the
// data directory — dataset names become file names verbatim.
func SafeName(name string) bool {
	if len(name) == 0 || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Dir manages a flat directory of snapshot files, one per dataset name.
// All methods are safe for concurrent use (the filesystem provides the
// synchronization; writes are atomic renames).
type Dir struct {
	path string
}

// OpenDir creates (if needed) and opens a snapshot directory.
func OpenDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the snapshot file path for a dataset name. The caller must
// have checked SafeName.
func (d *Dir) Path(name string) string {
	return filepath.Join(d.path, name+Ext)
}

// Write atomically replaces the snapshot for name: the content is written
// to a temp file in the same directory, fsynced, and renamed into place,
// so a crash mid-write never leaves a torn snapshot behind. Returns the
// byte size written.
func (d *Dir) Write(name string, write func(w io.Writer) error) (int64, error) {
	if !SafeName(name) {
		return 0, fmt.Errorf("store: unsafe dataset name %q", name)
	}
	// "store.write" covers the whole snapshot spill, simulating a full or
	// failing disk before any temp file is created.
	if err := faultinject.Check("store.write"); err != nil {
		return 0, fmt.Errorf("store: write snapshot: %w", err)
	}
	f, err := os.CreateTemp(d.path, ".tmp-"+name+"-*")
	if err != nil {
		return 0, fmt.Errorf("store: create temp snapshot: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if err := write(f); err != nil {
		f.Close()
		return 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("store: finalize temp snapshot: %w", err)
	}
	if err := os.Rename(tmp, d.Path(name)); err != nil {
		return 0, fmt.Errorf("store: publish snapshot: %w", err)
	}
	return size, nil
}

// Open opens the snapshot for name for reading. A missing snapshot yields
// an error satisfying os.IsNotExist.
func (d *Dir) Open(name string) (*os.File, error) {
	if !SafeName(name) {
		return nil, fmt.Errorf("store: unsafe dataset name %q", name)
	}
	// "store.read" simulates failing or slow cold-load reads (Delay mode
	// stalls here without holding any lock, so warm queries are unaffected).
	if err := faultinject.Check("store.read"); err != nil {
		return nil, fmt.Errorf("store: open snapshot: %w", err)
	}
	return os.Open(d.Path(name))
}

// ReadHeaderFile parses and validates only the header of name's snapshot.
func (d *Dir) ReadHeaderFile(name string) (*Header, error) {
	f, err := d.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadHeader(f)
}

// Remove deletes the snapshot for name; removing a missing snapshot is not
// an error.
func (d *Dir) Remove(name string) error {
	if !SafeName(name) {
		return fmt.Errorf("store: unsafe dataset name %q", name)
	}
	if err := os.Remove(d.Path(name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Has reports whether a snapshot for name exists.
func (d *Dir) Has(name string) bool {
	if !SafeName(name) {
		return false
	}
	_, err := os.Stat(d.Path(name))
	return err == nil
}

// List returns the dataset names with a snapshot on disk, sorted. Files
// with unsafe stems (including in-flight temp files, which start with a
// dot) are ignored.
func (d *Dir) List() ([]string, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("store: list data dir: %w", err)
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), Ext) {
			continue
		}
		stem := strings.TrimSuffix(ent.Name(), Ext)
		if SafeName(stem) {
			names = append(names, stem)
		}
	}
	sort.Strings(names)
	return names, nil
}

// DiskStats returns the number of snapshots and their total byte size.
func (d *Dir) DiskStats() (count int, bytes int64) {
	names, err := d.List()
	if err != nil {
		return 0, 0
	}
	for _, name := range names {
		if fi, err := os.Stat(d.Path(name)); err == nil {
			count++
			bytes += fi.Size()
		}
	}
	return count, bytes
}

// Package store implements the persistent stage store: a versioned on-disk
// snapshot container for a warm engine (tree, core distances, MSTs,
// dendrograms) plus the directory manager the daemon uses for atomic
// snapshot files.
//
// # Snapshot container format (version 1, normative)
//
// A snapshot is a fixed prefix, a JSON header, and a payload of
// checksummed chunks. All integers are little-endian.
//
//	offset  size  field
//	0       6     magic "PCSNAP"
//	6       2     uint16 format version (currently 1)
//	8       4     uint32 header length H
//	12      4     uint32 CRC-32C (Castagnoli) of the H header bytes
//	16      H     header, canonical JSON (see Header)
//	16+H    ...   payload: concatenated chunks
//
// The header records the point count, dimensionality, metric name, a
// content hash (64-bit FNV-1a of the points chunk bytes, lower-case hex),
// and one entry per chunk with its stage identity, byte range (offset
// relative to the payload start), and CRC-32C.
//
// Chunk payload encodings over n points in d dimensions:
//
//	points  [n*d]float64        prepared rows, original id order
//	tree    kd-tree arena       see internal/kdtree snapshot layout
//	core    [n]float64          core distances for minpts, original order
//	mst     [n-1]{u,v int32; w float64}
//	hier    [n-1]int32 left, [n-1]int32 right, [n-1]float64 height
//
// # Compatibility promise
//
// The version is bumped on any incompatible layout change; a reader
// rejects snapshots whose version it does not know. A snapshot is a cache,
// not a database: on any mismatch the engine rebuilds from points, so
// deleting *.pcsnap files is always safe.
//
// # Corruption semantics
//
// The prefix, header, and points chunk are load-bearing: if any of them
// fails validation, Decode returns an error and the caller falls back to a
// cold rebuild (the daemon treats the dataset as absent). Every other
// chunk degrades independently: a stage chunk with a bad checksum or a
// failed structural validation is skipped — reported in Result.Skipped —
// and that stage is rebuilt on first use. Decode never panics on
// malformed input, and a checksum forgery cannot produce an out-of-bounds
// traversal: every index the query paths follow is re-validated
// structurally during decode.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"

	"parclust/internal/engine"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/mst"

	"parclust/internal/dendrogram"
)

const (
	magic          = "PCSNAP"
	formatVersion  = 1
	prefixLen      = 6 + 2 + 4 + 4
	maxHeaderBytes = 1 << 20

	// Chunk stage names.
	StagePoints = "points"
	StageTree   = "tree"
	StageCore   = "core"
	StageMST    = "mst"
	StageHier   = "hier"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the snapshot's JSON header.
type Header struct {
	Version int    `json:"version"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	Metric  string `json:"metric"`
	// Dtype records the numeric representation the engine ran under:
	// "float32" for the SoA fast path, empty (or "float64") for the exact
	// default. Points are always serialized as float64 either way — the
	// float32 panels are derived data and are rebuilt on load — so the
	// field only round-trips the engine's mode. Absent in pre-PR9
	// snapshots, which decode as float64.
	Dtype string `json:"dtype,omitempty"`
	// ContentHash is the 64-bit FNV-1a of the points chunk bytes in
	// lower-case hex; two snapshots of the same prepared point set always
	// share it.
	ContentHash string  `json:"content_hash"`
	Chunks      []Chunk `json:"chunks"`
}

// Chunk describes one payload chunk: its stage identity and checksummed
// byte range (Off is relative to the payload start, i.e. the first byte
// after the header).
type Chunk struct {
	Stage  string `json:"stage"`
	Kind   uint8  `json:"kind,omitempty"`
	Algo   uint8  `json:"algo,omitempty"`
	MinPts int    `json:"minpts,omitempty"`
	Off    int64  `json:"off"`
	Len    int64  `json:"len"`
	CRC    uint32 `json:"crc"`
}

// label renders the chunk's stage identity for skip reports.
func (c Chunk) label() string {
	switch c.Stage {
	case StageCore:
		return fmt.Sprintf("core(minpts=%d)", c.MinPts)
	case StageMST, StageHier:
		return fmt.Sprintf("%s(kind=%d,algo=%d,minpts=%d)", c.Stage, c.Kind, c.Algo, c.MinPts)
	}
	return c.Stage
}

// Result is a successfully decoded snapshot: the rebuilt engine (stages
// seeded, build counters untouched) and the list of chunks that failed
// their checksum or validation and were skipped.
type Result struct {
	Header  Header
	Engine  *engine.Engine
	Skipped []string
}

// Encode writes a snapshot of the engine's points and published stages.
// metricName must be the canonical kernel name (metric.Metric.Name()) the
// engine runs under; Decode uses it to reconstruct the kernel.
func Encode(w io.Writer, metricName string, e *engine.Engine) error {
	if _, err := metric.Parse(metricName); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// One coherent (points, stages) capture: a mutation landing mid-encode
	// cannot pair new points with stale stages or vice versa.
	pts, set := e.SnapshotView()
	n, dim := pts.N, pts.Dim

	var payload bytes.Buffer
	hdr := Header{Version: formatVersion, N: n, Dim: dim, Metric: metricName}
	if e.Float32() {
		hdr.Dtype = "float32"
	}
	add := func(c Chunk, body []byte) {
		c.Off = int64(payload.Len())
		c.Len = int64(len(body))
		c.CRC = crc32.Checksum(body, castagnoli)
		payload.Write(body)
		hdr.Chunks = append(hdr.Chunks, c)
	}

	ptsBody := appendFloats(make([]byte, 0, 8*len(pts.Data)), pts.Data)
	h := fnv.New64a()
	h.Write(ptsBody)
	hdr.ContentHash = fmt.Sprintf("%016x", h.Sum64())
	add(Chunk{Stage: StagePoints}, ptsBody)

	if set.Tree != nil {
		add(Chunk{Stage: StageTree}, set.Tree.AppendSnapshot(make([]byte, 0, set.Tree.SnapshotSize())))
	}
	for mp, cd := range set.Cores {
		add(Chunk{Stage: StageCore, MinPts: mp}, appendFloats(make([]byte, 0, 8*len(cd)), cd))
	}
	for k, edges := range set.MSTs {
		body := make([]byte, 0, 16*len(edges))
		for _, ed := range edges {
			body = binary.LittleEndian.AppendUint32(body, uint32(ed.U))
			body = binary.LittleEndian.AppendUint32(body, uint32(ed.V))
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(ed.W))
		}
		add(Chunk{Stage: StageMST, Kind: uint8(k.Kind), Algo: k.Algo, MinPts: k.MinPts}, body)
	}
	for k, d := range set.Hiers {
		body := make([]byte, 0, 16*d.NumInternal())
		for _, v := range d.Left {
			body = binary.LittleEndian.AppendUint32(body, uint32(v))
		}
		for _, v := range d.Right {
			body = binary.LittleEndian.AppendUint32(body, uint32(v))
		}
		for _, v := range d.Height {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v))
		}
		add(Chunk{Stage: StageHier, Kind: uint8(k.Kind), Algo: k.Algo, MinPts: k.MinPts}, body)
	}

	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("store: marshal header: %w", err)
	}
	prefix := make([]byte, 0, prefixLen)
	prefix = append(prefix, magic...)
	prefix = binary.LittleEndian.AppendUint16(prefix, formatVersion)
	prefix = binary.LittleEndian.AppendUint32(prefix, uint32(len(hdrBytes)))
	prefix = binary.LittleEndian.AppendUint32(prefix, crc32.Checksum(hdrBytes, castagnoli))
	for _, part := range [][]byte{prefix, hdrBytes, payload.Bytes()} {
		if _, err := w.Write(part); err != nil {
			return fmt.Errorf("store: write snapshot: %w", err)
		}
	}
	return nil
}

// Signature returns the content hash a snapshot of e would carry and the
// number of chunks it would contain, without materializing the payload.
// Persistence layers use it for stale-aware writes: skip rewriting a
// snapshot whose on-disk header already has the same content hash and at
// least as many chunks.
func Signature(e *engine.Engine) (contentHash string, chunks int) {
	pts, set := e.SnapshotView()
	h := fnv.New64a()
	var b [8]byte
	for _, v := range pts.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	chunks = 1 + len(set.Cores) + len(set.MSTs) + len(set.Hiers)
	if set.Tree != nil {
		chunks++
	}
	return fmt.Sprintf("%016x", h.Sum64()), chunks
}

func appendFloats(buf []byte, vs []float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// readValidatedHeader consumes the prefix and header from r and returns the
// parsed header. It validates the magic, version, header bound, and header
// checksum.
func readValidatedHeader(r io.Reader) (*Header, error) {
	prefix := make([]byte, prefixLen)
	if _, err := io.ReadFull(r, prefix); err != nil {
		return nil, fmt.Errorf("store: snapshot prefix: %w", err)
	}
	if string(prefix[:6]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", prefix[:6])
	}
	if v := binary.LittleEndian.Uint16(prefix[6:]); v != formatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (reader knows %d)", v, formatVersion)
	}
	hlen := binary.LittleEndian.Uint32(prefix[8:])
	hcrc := binary.LittleEndian.Uint32(prefix[12:])
	if hlen == 0 || hlen > maxHeaderBytes {
		return nil, fmt.Errorf("store: header length %d out of range", hlen)
	}
	hdrBytes := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdrBytes); err != nil {
		return nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	if got := crc32.Checksum(hdrBytes, castagnoli); got != hcrc {
		return nil, fmt.Errorf("store: header checksum mismatch (got %08x, want %08x)", got, hcrc)
	}
	var hdr Header
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("store: parse header: %w", err)
	}
	if hdr.Version != formatVersion {
		return nil, fmt.Errorf("store: header version %d disagrees with container", hdr.Version)
	}
	if hdr.N < 0 || hdr.Dim <= 0 {
		return nil, fmt.Errorf("store: header n=%d dim=%d out of range", hdr.N, hdr.Dim)
	}
	return &hdr, nil
}

// ReadHeader parses and validates only the snapshot header; the payload is
// not read. Useful for listings and staleness checks.
func ReadHeader(r io.Reader) (*Header, error) {
	return readValidatedHeader(r)
}

// Decode reads a full snapshot and reconstructs a seeded engine. The
// prefix, header, and points chunk must validate; every other chunk
// degrades independently into Result.Skipped (that stage rebuilds on first
// use). Decode never panics on malformed input.
func Decode(r io.Reader) (*Result, error) {
	hdr, err := readValidatedHeader(r)
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot payload: %w", err)
	}

	// chunkBody returns the checksum-verified bytes of c, or an error for a
	// range/length/CRC violation.
	chunkBody := func(c Chunk) ([]byte, error) {
		if c.Off < 0 || c.Len < 0 || c.Off+c.Len > int64(len(payload)) || c.Off+c.Len < c.Off {
			return nil, fmt.Errorf("store: chunk %s range [%d,+%d) outside %d-byte payload",
				c.label(), c.Off, c.Len, len(payload))
		}
		body := payload[c.Off : c.Off+c.Len]
		if got := crc32.Checksum(body, castagnoli); got != c.CRC {
			return nil, fmt.Errorf("store: chunk %s checksum mismatch", c.label())
		}
		return body, nil
	}

	n, dim := hdr.N, hdr.Dim
	kern, err := metric.Parse(hdr.Metric)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	// The points chunk is required and load-bearing.
	var ptsBody []byte
	found := false
	for _, c := range hdr.Chunks {
		if c.Stage != StagePoints {
			continue
		}
		if found {
			return nil, fmt.Errorf("store: duplicate points chunk")
		}
		found = true
		if ptsBody, err = chunkBody(c); err != nil {
			return nil, err
		}
	}
	if !found {
		return nil, fmt.Errorf("store: snapshot has no points chunk")
	}
	if len(ptsBody) != 8*n*dim {
		return nil, fmt.Errorf("store: points chunk is %d bytes, want %d", len(ptsBody), 8*n*dim)
	}
	h := fnv.New64a()
	h.Write(ptsBody)
	if got := fmt.Sprintf("%016x", h.Sum64()); got != hdr.ContentHash {
		return nil, fmt.Errorf("store: content hash mismatch (got %s, want %s)", got, hdr.ContentHash)
	}
	pts := geometry.Points{Data: decodeFloats(ptsBody), N: n, Dim: dim}
	for i, v := range pts.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("store: point %d has non-finite coordinate", i/dim)
		}
	}

	res := &Result{Header: *hdr}
	set := engine.StageSet{
		Cores: make(map[int][]float64),
		MSTs:  make(map[engine.StageKey][]mst.Edge),
		Hiers: make(map[engine.StageKey]*dendrogram.Dendrogram),
	}
	skip := func(c Chunk, why error) {
		res.Skipped = append(res.Skipped, fmt.Sprintf("%s: %v", c.label(), why))
	}
	for _, c := range hdr.Chunks {
		if c.Stage == StagePoints {
			continue
		}
		body, err := chunkBody(c)
		if err != nil {
			skip(c, err)
			continue
		}
		switch c.Stage {
		case StageTree:
			tr, err := kdtree.DecodeSnapshot(body, pts, kern)
			if err != nil {
				skip(c, err)
				continue
			}
			set.Tree = tr
		case StageCore:
			if c.MinPts < 1 || c.MinPts > n {
				skip(c, fmt.Errorf("minpts out of range"))
				continue
			}
			if len(body) != 8*n {
				skip(c, fmt.Errorf("%d bytes, want %d", len(body), 8*n))
				continue
			}
			set.Cores[c.MinPts] = decodeFloats(body)
		case StageMST:
			edges, err := decodeMST(body, n, c)
			if err != nil {
				skip(c, err)
				continue
			}
			set.MSTs[engine.StageKey{Kind: engine.Kind(c.Kind), Algo: c.Algo, MinPts: c.MinPts}] = edges
		case StageHier:
			d, err := decodeDendrogram(body, n)
			if err != nil {
				skip(c, err)
				continue
			}
			set.Hiers[engine.StageKey{Kind: engine.Kind(c.Kind), Algo: c.Algo, MinPts: c.MinPts}] = d
		default:
			skip(c, fmt.Errorf("unknown stage"))
		}
	}

	eng := engine.New(pts, kern)
	switch hdr.Dtype {
	case "", "float64":
	case "float32":
		// Enable before seeding so the seeded tree gets its panels attached.
		if err := eng.EnableFloat32(); err != nil {
			return nil, fmt.Errorf("store: restore float32 mode: %w", err)
		}
	default:
		return nil, fmt.Errorf("store: unknown dtype %q", hdr.Dtype)
	}
	eng.SeedStages(set)
	res.Engine = eng
	return res, nil
}

func decodeFloats(body []byte) []float64 {
	out := make([]float64, len(body)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return out
}

// decodeMST validates and decodes an MST chunk: a spanning tree over n
// points has exactly max(n-1, 0) edges with both endpoints in [0, n).
func decodeMST(body []byte, n int, c Chunk) ([]mst.Edge, error) {
	if c.Kind > uint8(engine.KindHDBSCAN) {
		return nil, fmt.Errorf("unknown MST kind")
	}
	if c.Kind == uint8(engine.KindEMST) && c.MinPts != 0 {
		return nil, fmt.Errorf("EMST chunk with minpts")
	}
	if c.Kind == uint8(engine.KindHDBSCAN) && (c.MinPts < 1 || c.MinPts > n) {
		return nil, fmt.Errorf("minpts out of range")
	}
	want := 0
	if n > 1 {
		want = n - 1
	}
	if len(body) != 16*want {
		return nil, fmt.Errorf("%d bytes, want %d for %d edges", len(body), 16*want, want)
	}
	edges := make([]mst.Edge, want)
	for i := range edges {
		u := int32(binary.LittleEndian.Uint32(body[16*i:]))
		v := int32(binary.LittleEndian.Uint32(body[16*i+4:]))
		w := math.Float64frombits(binary.LittleEndian.Uint64(body[16*i+8:]))
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n || u == v {
			return nil, fmt.Errorf("edge %d endpoints (%d, %d) out of range", i, u, v)
		}
		edges[i] = mst.Edge{U: u, V: v, W: w}
	}
	return edges, nil
}

// decodeDendrogram validates and decodes a hier chunk into a merge tree
// over n points: n-1 internal nodes with ids n..2n-2, each child id below
// its parent's and used exactly once, root 2n-2. The validation guarantees
// every traversal of the result is in-bounds and acyclic.
func decodeDendrogram(body []byte, n int) (*dendrogram.Dendrogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("hier chunk for empty point set")
	}
	m := n - 1 // internal nodes
	if len(body) != 4*m+4*m+8*m {
		return nil, fmt.Errorf("%d bytes, want %d for %d merges", len(body), 16*m, m)
	}
	d := &dendrogram.Dendrogram{
		N:      n,
		Left:   make([]int32, m),
		Right:  make([]int32, m),
		Height: make([]float64, m),
		Root:   int32(2*n - 2),
	}
	for i := 0; i < m; i++ {
		d.Left[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		d.Right[i] = int32(binary.LittleEndian.Uint32(body[4*m+4*i:]))
	}
	for i := 0; i < m; i++ {
		d.Height[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*m+8*i:]))
	}
	childOf := make([]bool, 2*n-1)
	for i := 0; i < m; i++ {
		parent := int32(n + i)
		for _, ch := range [2]int32{d.Left[i], d.Right[i]} {
			if ch < 0 || ch >= parent {
				return nil, fmt.Errorf("merge %d has child %d outside [0, %d)", i, ch, parent)
			}
			if childOf[ch] {
				return nil, fmt.Errorf("node %d is the child of two merges", ch)
			}
			childOf[ch] = true
		}
	}
	return d, nil
}

package store

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"parclust/internal/engine"
	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
	"parclust/internal/metric"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

// warmEngine builds an engine with a representative stage mix: tree, two
// core-distance sets, HDBSCAN MSTs + hierarchies, and an EMST hierarchy.
func warmEngine(pts geometry.Points) *engine.Engine {
	e := engine.New(pts, metric.L2{})
	testHier(e, engine.KindHDBSCAN, uint8(hdbscan.MemoGFK), 5)
	testHier(e, engine.KindHDBSCAN, uint8(hdbscan.MemoGFK), 9)
	testHier(e, engine.KindEMST, uint8(engine.EMSTMemoGFK), 1)
	return e
}

// labelsAt runs the reference HDBSCAN query the corruption tests compare.
func labelsAt(e *engine.Engine, minPts int, eps float64) []int32 {
	return testHier(e, engine.KindHDBSCAN, uint8(hdbscan.MemoGFK), minPts).CutAt(eps).Labels
}

func encodeWarm(t *testing.T, pts geometry.Points) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, "l2", warmEngine(pts)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 400} {
		pts := randPoints(n, 3, int64(n+1))
		e := engine.New(pts, metric.L2{})
		if n > 0 {
			testHier(e, engine.KindHDBSCAN, uint8(hdbscan.MemoGFK), min(n, 5))
			testHier(e, engine.KindEMST, uint8(engine.EMSTMemoGFK), 1)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, "l2", e); err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		res, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(res.Skipped) != 0 {
			t.Fatalf("n=%d: clean snapshot skipped chunks: %v", n, res.Skipped)
		}
		if res.Header.N != n || res.Header.Dim != 3 || res.Header.Metric != "l2" {
			t.Fatalf("n=%d: header %+v", n, res.Header)
		}
		for i := range pts.Data {
			if res.Engine.Pts.Data[i] != pts.Data[i] {
				t.Fatalf("n=%d: decoded points differ at %d", n, i)
			}
		}
		if n == 0 {
			continue
		}
		mp := min(n, 5)
		want := labelsAt(e, mp, 2.5)
		got := labelsAt(res.Engine, mp, 2.5)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: label %d differs after round trip", n, i)
			}
		}
		c := res.Engine.Counters()
		if c.TreeBuilds != 0 || c.CoreDistBuilds != 0 || c.MSTBuilds != 0 || c.DendrogramBuilds != 0 {
			t.Fatalf("n=%d: decoded engine rebuilt stages: %+v", n, c)
		}
	}
}

func TestSnapshotRoundTripMetrics(t *testing.T) {
	pts := randPoints(200, 2, 9)
	for _, name := range []string{"l2", "sql2", "l1", "linf", "angular"} {
		kern, err := metric.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		p := pts
		if name == "angular" {
			if p, err = metric.NormalizeRows(pts); err != nil {
				t.Fatal(err)
			}
		}
		e := engine.New(p, kern)
		testHier(e, engine.KindHDBSCAN, uint8(hdbscan.MemoGFK), 4)
		var buf bytes.Buffer
		if err := Encode(&buf, name, e); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		res, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		want, got := labelsAt(e, 4, 0.8), labelsAt(res.Engine, 4, 0.8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: label %d differs", name, i)
			}
		}
		if c := res.Engine.Counters(); c.TreeBuilds != 0 || c.MSTBuilds != 0 {
			t.Fatalf("%s: decoded engine rebuilt stages", name)
		}
	}
}

// TestSnapshotTruncation cuts the snapshot at every chunk boundary (and a
// few interior offsets): decode must either fail cleanly or succeed with
// the damaged stages skipped — and a surviving engine must still answer
// the reference query correctly.
func TestSnapshotTruncation(t *testing.T) {
	pts := randPoints(300, 2, 3)
	snap := encodeWarm(t, pts)
	hdr, err := ReadHeader(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	payloadBase := len(snap) - int(payloadSize(hdr))
	want := labelsAt(engine.New(pts, metric.L2{}), 5, 2.5)

	cuts := []int{0, 3, prefixLen - 1, prefixLen, prefixLen + 5, payloadBase - 1}
	for _, c := range hdr.Chunks {
		cuts = append(cuts, payloadBase+int(c.Off), payloadBase+int(c.Off+c.Len/2), payloadBase+int(c.Off+c.Len))
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(snap) {
			continue
		}
		res, err := Decode(bytes.NewReader(snap[:cut]))
		if err != nil {
			continue // clean failure: caller rebuilds from scratch
		}
		// Points survived; damaged stage chunks must be skipped and the
		// engine must still produce correct labels by rebuilding them.
		if len(res.Skipped) == 0 && cut < len(snap) {
			t.Fatalf("cut=%d: truncated snapshot decoded with no skipped chunks", cut)
		}
		got := labelsAt(res.Engine, 5, 2.5)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut=%d: wrong label %d after truncation", cut, i)
			}
		}
	}
}

// TestSnapshotBitFlips corrupts one byte inside every region (prefix,
// header, each chunk): decode must fail cleanly or skip exactly the
// damaged chunk, and labels must stay correct. CRC-32C catches every
// single-byte flip, so a flipped stage chunk always lands in Skipped.
func TestSnapshotBitFlips(t *testing.T) {
	pts := randPoints(300, 2, 4)
	snap := encodeWarm(t, pts)
	hdr, err := ReadHeader(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	payloadBase := len(snap) - int(payloadSize(hdr))
	want := labelsAt(engine.New(pts, metric.L2{}), 5, 2.5)

	// Prefix and header flips must fail decode outright.
	for _, off := range []int{0, 6, 8, 12, prefixLen, payloadBase - 1} {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0x40
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at prefix/header offset %d decoded successfully", off)
		}
	}
	for _, c := range hdr.Chunks {
		if c.Len == 0 {
			continue
		}
		for _, rel := range []int64{0, c.Len / 2, c.Len - 1} {
			off := payloadBase + int(c.Off+rel)
			mut := append([]byte(nil), snap...)
			mut[off] ^= 0x40
			res, err := Decode(bytes.NewReader(mut))
			if c.Stage == StagePoints {
				if err == nil {
					t.Fatalf("flipped points chunk at +%d decoded successfully", rel)
				}
				continue
			}
			if err != nil {
				t.Fatalf("flip in chunk %s at +%d failed whole decode: %v", c.Stage, rel, err)
			}
			if len(res.Skipped) != 1 {
				t.Fatalf("flip in chunk %s at +%d: skipped %v, want exactly the damaged chunk",
					c.Stage, rel, res.Skipped)
			}
			got := labelsAt(res.Engine, 5, 2.5)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("flip in chunk %s: wrong label %d", c.Stage, i)
				}
			}
		}
	}
}

func TestSnapshotRejectsBadInputs(t *testing.T) {
	pts := randPoints(50, 2, 5)
	snap := encodeWarm(t, pts)

	// Unknown version.
	mut := append([]byte(nil), snap...)
	binary.LittleEndian.PutUint16(mut[6:], 99)
	if _, err := Decode(bytes.NewReader(mut)); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Bad metric name never reaches Encode's output.
	var buf bytes.Buffer
	if err := Encode(&buf, "bogus", engine.New(pts, metric.L2{})); err == nil {
		t.Fatal("Encode accepted an unknown metric name")
	}
	// Empty and garbage inputs.
	for _, data := range [][]byte{nil, []byte("x"), []byte("PCSNAPxxxxxxxxxxxx")} {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Fatal("garbage input accepted")
		}
		if _, err := ReadHeader(bytes.NewReader(data)); err == nil {
			t.Fatal("garbage header accepted")
		}
	}
}

// payloadSize sums the chunk extents (chunks are laid out back to back).
func payloadSize(hdr *Header) int64 {
	var end int64
	for _, c := range hdr.Chunks {
		if c.Off+c.Len > end {
			end = c.Off + c.Len
		}
	}
	return end
}

package generator

import (
	"math"
	"testing"
)

func TestUniformFillBounds(t *testing.T) {
	n := 1000
	pts := UniformFill(n, 3, 1)
	side := math.Sqrt(float64(n))
	if pts.N != n || pts.Dim != 3 {
		t.Fatalf("wrong shape %dx%d", pts.N, pts.Dim)
	}
	for _, v := range pts.Data {
		if v < 0 || v > side {
			t.Fatalf("coordinate %v outside [0,%v]", v, side)
		}
	}
}

func TestSSVardenShape(t *testing.T) {
	pts := SSVarden(5000, 2, 2)
	if pts.N != 5000 || pts.Dim != 2 {
		t.Fatal("wrong shape")
	}
	// Variable-density data should be substantially more clumped than
	// uniform: compare mean nearest-neighbor-ish statistics cheaply via
	// coordinate variance of a subsample against uniform expectation.
	var mean, m2 float64
	for i := 0; i < pts.N; i++ {
		v := pts.Data[i*2]
		mean += v
	}
	mean /= float64(pts.N)
	for i := 0; i < pts.N; i++ {
		d := pts.Data[i*2] - mean
		m2 += d * d
	}
	if m2 == 0 {
		t.Fatal("degenerate varden data")
	}
}

func TestGeoLifeLikeSkew(t *testing.T) {
	pts := GeoLifeLike(5000, 3)
	if pts.N != 5000 || pts.Dim != 3 {
		t.Fatal("wrong shape")
	}
	// Skew check: a substantial fraction of points should concentrate in a
	// small ball (the densest hotspot).
	counts := map[[3]int]int{}
	for i := 0; i < pts.N; i++ {
		key := [3]int{int(pts.Data[i*3] / 1000), int(pts.Data[i*3+1] / 1000), int(pts.Data[i*3+2] / 1000)}
		counts[key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < pts.N/20 {
		t.Fatalf("GeoLife-like data not skewed enough (max cell %d of %d)", max, pts.N)
	}
}

func TestGaussianMixtureShape(t *testing.T) {
	pts := GaussianMixture(2000, 7, 5, 4)
	if pts.N != 2000 || pts.Dim != 7 {
		t.Fatal("wrong shape")
	}
}

func TestPaperDatasets(t *testing.T) {
	ds := PaperDatasets()
	if len(ds) != 12 {
		t.Fatalf("expected 12 datasets, got %d", len(ds))
	}
	for _, d := range ds {
		pts := d.Gen(200, 1)
		if pts.N != 200 || pts.Dim != d.Dim {
			t.Fatalf("%s: generated %dx%d, want dim %d", d.Name, pts.N, pts.Dim, d.Dim)
		}
	}
}

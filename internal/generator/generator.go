// Package generator produces the synthetic workloads of the paper's
// evaluation (Section 5) and seeded substitutes for its real-world data
// sets. All generators are deterministic given a seed.
package generator

import (
	"math"
	"math/rand"

	"parclust/internal/geometry"
)

// UniformFill generates n points distributed uniformly at random inside a
// hypergrid with side length sqrt(n), matching the paper's UniformFill.
func UniformFill(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n))
	pts := geometry.NewPoints(n, dim)
	for i := range pts.Data {
		pts.Data[i] = rng.Float64() * side
	}
	return pts
}

// SSVarden generates the seed-spreader-with-variable-density data of Gan and
// Tao's generator: a random walk emits points in a local vicinity, teleports
// to a random location with small probability, and alternates between dense
// and sparse vicinity radii, producing clusters of highly varying density
// plus uniform background noise.
func SSVarden(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n)) * 10
	pts := geometry.NewPoints(n, dim)
	pos := make([]float64, dim)
	teleport := func() {
		for k := range pos {
			pos[k] = rng.Float64() * side
		}
	}
	teleport()
	radius := side / 100
	noise := n / 10000 // ~0.01% uniform noise, as in the generator's default
	step := 0
	for i := 0; i < n-noise; i++ {
		if step%100 == 99 || rng.Float64() < 0.001 {
			teleport()
			// Alternate density regimes across restarts.
			if rng.Intn(2) == 0 {
				radius = side / 500
			} else {
				radius = side / 50
			}
		}
		row := pts.Data[i*dim : (i+1)*dim]
		for k := range row {
			row[k] = pos[k] + (rng.Float64()*2-1)*radius
		}
		// Drift the spreader.
		for k := range pos {
			pos[k] += (rng.Float64()*2 - 1) * radius / 2
		}
		step++
	}
	for i := n - noise; i < n; i++ {
		row := pts.Data[i*dim : (i+1)*dim]
		for k := range row {
			row[k] = rng.Float64() * side
		}
	}
	return pts
}

// GeoLifeLike generates a 3-dimensional extremely skewed point set standing
// in for the GeoLife GPS trace data: a small number of heavy-tailed hotspots
// (cities) holding most points at wildly different densities, plus sparse
// global noise. The skew is what stresses WSPD size on GeoLife.
func GeoLifeLike(n int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	const dim = 3
	pts := geometry.NewPoints(n, dim)
	side := math.Sqrt(float64(n)) * 100
	nHot := 12
	centers := make([][]float64, nHot)
	scales := make([]float64, nHot)
	for h := range centers {
		c := make([]float64, dim)
		for k := range c {
			c[k] = rng.Float64() * side
		}
		centers[h] = c
		// Pareto-like spread of hotspot radii over 3 decades.
		scales[h] = side / 10000 * math.Pow(1000, rng.Float64())
	}
	for i := 0; i < n; i++ {
		row := pts.Data[i*dim : (i+1)*dim]
		if rng.Float64() < 0.02 { // global noise
			for k := range row {
				row[k] = rng.Float64() * side
			}
			continue
		}
		// Zipf-ish hotspot choice: hotspot h gets weight ~ 1/(h+1).
		h := 0
		r := rng.Float64() * harmonic(nHot)
		for acc := 0.0; h < nHot-1; h++ {
			acc += 1 / float64(h+1)
			if r < acc {
				break
			}
		}
		for k := range row {
			row[k] = centers[h][k] + rng.NormFloat64()*scales[h]
		}
	}
	return pts
}

func harmonic(n int) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1 / float64(i)
	}
	return s
}

// GaussianMixture generates a mixture of k spherical Gaussian clusters in
// dim dimensions with uniformly placed centers, standing in for the
// Household (7D), HT (10D), and CHEM (16D) sensor data sets.
func GaussianMixture(n, dim, k int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(float64(n))
	centers := make([][]float64, k)
	sigma := make([]float64, k)
	for c := range centers {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * side
		}
		centers[c] = v
		sigma[c] = side / 40 * (0.5 + rng.Float64())
	}
	pts := geometry.NewPoints(n, dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		row := pts.Data[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*sigma[c]
		}
	}
	return pts
}

// EmbedMaxDim bounds the dimensionality of Embed: high-dimensional
// embedding workloads top out at 512 here, matching common learned-vector
// sizes.
const EmbedMaxDim = 512

// Embed generates n unit-norm embedding-like vectors in dim dimensions
// (2 <= dim <= EmbedMaxDim): a Gaussian mixture of k direction clusters on
// the unit sphere. Each cluster is an isotropic Gaussian around a uniformly
// random unit direction with a per-cluster variance spread over roughly a
// decade, re-projected onto the sphere — the shape of learned text/image
// embeddings, where clusters are cones of directions at varying tightness.
// Panics on out-of-range dim or k < 1; deterministic given seed.
func Embed(n, dim, k int, seed int64) geometry.Points {
	if dim < 2 || dim > EmbedMaxDim {
		panic("generator: Embed dim out of range [2, 512]")
	}
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	sigma := make([]float64, k)
	for c := range centers {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		normalizeRow(v)
		centers[c] = v
		// Per-cluster angular spread from tight (~0.03) to diffuse (~0.3).
		sigma[c] = 0.03 * math.Pow(10, rng.Float64())
	}
	pts := geometry.NewPoints(n, dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		row := pts.Data[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*sigma[c]
		}
		normalizeRow(row)
	}
	return pts
}

// normalizeRow scales v to unit L2 norm (the zero vector, unreachable with
// probability 1, becomes the first basis vector).
func normalizeRow(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		v[0] = 1
		return
	}
	inv := 1 / math.Sqrt(s)
	for j := range v {
		v[j] *= inv
	}
}

// Dataset is a named generated workload mirroring one row of the paper's
// tables.
type Dataset struct {
	Name string
	Dim  int
	Gen  func(n int, seed int64) geometry.Points
}

// PaperDatasets lists the twelve workloads of Tables 4-5 (with real data
// sets replaced by the seeded substitutes documented in DESIGN.md).
func PaperDatasets() []Dataset {
	mk := func(dim int, g func(n, dim int, seed int64) geometry.Points) func(int, int64) geometry.Points {
		return func(n int, seed int64) geometry.Points { return g(n, dim, seed) }
	}
	return []Dataset{
		{Name: "2D-UniformFill", Dim: 2, Gen: mk(2, UniformFill)},
		{Name: "3D-UniformFill", Dim: 3, Gen: mk(3, UniformFill)},
		{Name: "5D-UniformFill", Dim: 5, Gen: mk(5, UniformFill)},
		{Name: "7D-UniformFill", Dim: 7, Gen: mk(7, UniformFill)},
		{Name: "2D-SS-varden", Dim: 2, Gen: mk(2, SSVarden)},
		{Name: "3D-SS-varden", Dim: 3, Gen: mk(3, SSVarden)},
		{Name: "5D-SS-varden", Dim: 5, Gen: mk(5, SSVarden)},
		{Name: "7D-SS-varden", Dim: 7, Gen: mk(7, SSVarden)},
		{Name: "3D-GeoLife-like", Dim: 3, Gen: func(n int, seed int64) geometry.Points { return GeoLifeLike(n, seed) }},
		{Name: "7D-Household-like", Dim: 7, Gen: func(n int, seed int64) geometry.Points { return GaussianMixture(n, 7, 20, seed) }},
		{Name: "10D-HT-like", Dim: 10, Gen: func(n int, seed int64) geometry.Points { return GaussianMixture(n, 10, 12, seed) }},
		{Name: "16D-CHEM-like", Dim: 16, Gen: func(n int, seed int64) geometry.Points { return GaussianMixture(n, 16, 8, seed) }},
	}
}

package dbscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parclust/internal/dendrogram"
	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
	"parclust/internal/unionfind"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

// bruteStar is DBSCAN* from the definition.
func bruteStar(pts geometry.Points, minPts int, eps float64) Result {
	n := pts.N
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		cnt := 0
		for j := 0; j < n; j++ {
			if pts.Dist(i, j) <= eps {
				cnt++
			}
		}
		core[i] = cnt >= minPts
	}
	uf := unionfind.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if core[i] && core[j] && pts.Dist(i, j) <= eps {
				uf.Union(int32(i), int32(j))
			}
		}
	}
	labels := make([]int32, n)
	next := int32(0)
	id := map[int32]int32{}
	for i := 0; i < n; i++ {
		if !core[i] {
			labels[i] = -1
			continue
		}
		r := uf.Find(int32(i))
		c, ok := id[r]
		if !ok {
			c = next
			id[r] = c
			next++
		}
		labels[i] = c
	}
	return Result{Labels: labels, NumClusters: int(next), Core: core}
}

func sameClustering(a, b Result) bool {
	if len(a.Labels) != len(b.Labels) || a.NumClusters != b.NumClusters {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if (la == -1) != (lb == -1) {
			return false
		}
		if la == -1 {
			continue
		}
		if m, ok := fwd[la]; ok && m != lb {
			return false
		}
		if m, ok := bwd[lb]; ok && m != la {
			return false
		}
		fwd[la] = lb
		bwd[lb] = la
	}
	return true
}

func TestDBSCANStarMatchesBruteForce(t *testing.T) {
	for _, n := range []int{5, 50, 300} {
		for _, eps := range []float64{1, 5, 15, 50} {
			pts := randPoints(n, 2, int64(n)*3+int64(eps))
			got := DBSCANStar(pts, 5, eps)
			want := bruteStar(pts, 5, eps)
			if !sameClustering(got, want) {
				t.Fatalf("n=%d eps=%v: DBSCAN* differs from brute force", n, eps)
			}
			for i := range got.Core {
				if got.Core[i] != want.Core[i] {
					t.Fatalf("n=%d eps=%v: core flag differs at %d", n, eps, i)
				}
			}
		}
	}
}

func TestDBSCANStarQuick(t *testing.T) {
	f := func(seed int64, nRaw, epsRaw uint8) bool {
		n := 5 + int(nRaw)%100
		eps := 1 + float64(epsRaw)/4
		pts := randPoints(n, 2, seed)
		return sameClustering(DBSCANStar(pts, 4, eps), bruteStar(pts, 4, eps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchesHDBSCANCut is the paper's central relationship (Section 2.1):
// cutting the HDBSCAN* MST at eps reproduces DBSCAN* exactly.
func TestMatchesHDBSCANCut(t *testing.T) {
	pts := randPoints(400, 2, 9)
	minPts := 10
	res := hdbscan.Build(pts, minPts, hdbscan.MemoGFK, nil)
	for _, eps := range []float64{1, 3, 8, 20} {
		cut := dendrogram.CutTree(pts.N, res.MST, res.CoreDist, eps)
		direct := DBSCANStar(pts, minPts, eps)
		got := Result{Labels: cut.Labels, NumClusters: cut.NumClusters, Core: direct.Core}
		if !sameClustering(got, direct) {
			t.Fatalf("eps=%v: HDBSCAN* cut differs from direct DBSCAN*", eps)
		}
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A dense blob plus one point at distance d < eps from the blob edge:
	// that point is a border point — noise under DBSCAN*, clustered under
	// DBSCAN.
	rows := [][]float64{}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{float64(i) * 0.1, 0})
	}
	rows = append(rows, []float64{1.9, 0}) // border: within eps=1.1 of the blob edge
	pts := geometry.FromSlices(rows)
	minPts, eps := 5, 1.1
	star := DBSCANStar(pts, minPts, eps)
	full := DBSCAN(pts, minPts, eps)
	last := pts.N - 1
	if star.Labels[last] != -1 {
		t.Fatalf("border point should be noise under DBSCAN*, got label %d", star.Labels[last])
	}
	if full.Labels[last] == -1 {
		t.Fatal("border point should be clustered under DBSCAN")
	}
	if full.Labels[last] != full.Labels[0] {
		t.Fatal("border point joined the wrong cluster")
	}
}

func TestDBSCANSupersetsOfStar(t *testing.T) {
	// DBSCAN only ever turns noise into border points; core labels agree.
	pts := randPoints(300, 2, 21)
	star := DBSCANStar(pts, 5, 4)
	full := DBSCAN(pts, 5, 4)
	for i := range star.Labels {
		if star.Core[i] && star.Labels[i] != full.Labels[i] {
			// Labels may be renumbered; compare via co-membership below.
			break
		}
	}
	// Co-membership of core points must be identical.
	for i := 0; i < pts.N; i++ {
		for j := i + 1; j < pts.N; j++ {
			if !star.Core[i] || !star.Core[j] {
				continue
			}
			same1 := star.Labels[i] == star.Labels[j]
			same2 := full.Labels[i] == full.Labels[j]
			if same1 != same2 {
				t.Fatalf("core co-membership differs for (%d,%d)", i, j)
			}
		}
	}
	// Noise under DBSCAN must also be noise under DBSCAN*.
	for i := range full.Labels {
		if full.Labels[i] == -1 && star.Labels[i] != -1 {
			t.Fatalf("point %d is DBSCAN noise but DBSCAN* clustered", i)
		}
	}
}

// Package dbscan implements the flat density-based clustering algorithms
// that HDBSCAN* generalizes (Section 1 and 2.1 of the paper): DBSCAN* of
// Campello et al. (core points only) and the original DBSCAN of Ester et
// al. (with border points). Both run eps-range queries over the parallel
// k-d tree; core-point detection is parallel, and component formation uses
// a union-find over core-core eps-edges.
//
// These serve as the classic single-radius baselines the hierarchy avoids
// recomputing: CutTree on the HDBSCAN* MST at radius eps must produce
// exactly DBSCANStar(pts, minPts, eps), which the tests verify.
package dbscan

import (
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// Result is a flat clustering: Labels[i] in [0, NumClusters) or -1 for
// noise. Core[i] reports whether point i is a core point.
type Result struct {
	Labels      []int32
	NumClusters int
	Core        []bool
}

// DBSCANStar computes the DBSCAN* clustering: points with at least minPts
// neighbors within eps (counting themselves) are core points; clusters are
// the connected components of core points under eps-adjacency; all other
// points are noise.
func DBSCANStar(pts geometry.Points, minPts int, eps float64) Result {
	return DBSCANStarMetric(pts, minPts, eps, metric.L2{})
}

// DBSCANStarMetric is DBSCANStar with neighborhoods taken under an
// arbitrary metric kernel.
func DBSCANStarMetric(pts geometry.Points, minPts int, eps float64, m metric.Metric) Result {
	t := kdtree.BuildMetric(pts, 16, m)
	return dbscanStarOnTree(t, minPts, eps)
}

func dbscanStarOnTree(t *kdtree.Tree, minPts int, eps float64) Result {
	n := t.Pts.N
	core := make([]bool, n)
	parallel.For(n, 32, func(i int) {
		core[i] = t.RangeCount(int32(i), eps) >= minPts
	})
	// Connect core points within eps. Neighbor lists are computed in
	// parallel; unions are applied sequentially (they are cheap relative
	// to the queries).
	nbrs := make([][]int32, n)
	parallel.For(n, 32, func(i int) {
		if core[i] {
			nbrs[i] = t.RangeQuery(int32(i), eps)
		}
	})
	uf := unionfind.New(n)
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range nbrs[i] {
			if core[j] {
				uf.Union(int32(i), j)
			}
		}
	}
	labels := make([]int32, n)
	next := int32(0)
	id := make(map[int32]int32)
	for i := 0; i < n; i++ {
		if !core[i] {
			labels[i] = -1
			continue
		}
		r := uf.Find(int32(i))
		c, ok := id[r]
		if !ok {
			c = next
			id[r] = c
			next++
		}
		labels[i] = c
	}
	return Result{Labels: labels, NumClusters: int(next), Core: core}
}

// DBSCAN computes the original Ester et al. clustering: like DBSCAN*, but
// non-core points within eps of a core point become border points of (one
// of) the adjacent clusters instead of noise. Border assignment picks the
// cluster of the nearest core neighbor, which makes the result
// deterministic.
func DBSCAN(pts geometry.Points, minPts int, eps float64) Result {
	return DBSCANMetric(pts, minPts, eps, metric.L2{})
}

// DBSCANMetric is DBSCAN with neighborhoods and border attachment taken
// under an arbitrary metric kernel.
func DBSCANMetric(pts geometry.Points, minPts int, eps float64, m metric.Metric) Result {
	t := kdtree.BuildMetric(pts, 16, m)
	res := dbscanStarOnTree(t, minPts, eps)
	n := pts.N
	// Attach border points: nearest core neighbor within eps. The L2 tree
	// compares squared distances (the seed behavior); other kernels compare
	// tree-metric distances — both orders are monotone-equivalent.
	dist := func(i int, j int32) float64 { return pts.SqDist(i, int(j)) }
	maxD := eps * eps
	if !t.IsL2() {
		dist = func(i int, j int32) float64 { return t.PairDist(int32(i), j) }
		maxD = eps
	}
	borderLabel := make([]int32, n)
	parallel.For(n, 32, func(i int) {
		borderLabel[i] = -1
		if res.Core[i] {
			return
		}
		best := int32(-1)
		bestD := maxD
		for _, j := range t.RangeQuery(int32(i), eps) {
			if !res.Core[j] {
				continue
			}
			d := dist(i, j)
			if best < 0 || d < bestD || (d == bestD && j < best) {
				best = j
				bestD = d
			}
		}
		if best >= 0 {
			borderLabel[i] = res.Labels[best]
		}
	})
	for i := 0; i < n; i++ {
		if !res.Core[i] && borderLabel[i] >= 0 {
			res.Labels[i] = borderLabel[i]
		}
	}
	return res
}

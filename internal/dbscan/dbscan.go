// Package dbscan implements the flat density-based clustering algorithms
// that HDBSCAN* generalizes (Section 1 and 2.1 of the paper): DBSCAN* of
// Campello et al. (core points only) and the original DBSCAN of Ester et
// al. (with border points). Both run eps-range queries over the parallel
// k-d tree; core-point detection is parallel, and component formation uses
// a union-find over core-core eps-edges.
//
// These serve as the classic single-radius baselines the hierarchy avoids
// recomputing: CutTree on the HDBSCAN* MST at radius eps must produce
// exactly DBSCANStar(pts, minPts, eps), which the tests verify.
package dbscan

import (
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// Result is a flat clustering: Labels[i] in [0, NumClusters) or -1 for
// noise. Core[i] reports whether point i is a core point.
type Result struct {
	Labels      []int32
	NumClusters int
	Core        []bool
}

// DBSCANStar computes the DBSCAN* clustering: points with at least minPts
// neighbors within eps (counting themselves) are core points; clusters are
// the connected components of core points under eps-adjacency; all other
// points are noise.
func DBSCANStar(pts geometry.Points, minPts int, eps float64) Result {
	return DBSCANStarMetric(pts, minPts, eps, metric.L2{})
}

// DBSCANStarMetric is DBSCANStar with neighborhoods taken under an
// arbitrary metric kernel.
func DBSCANStarMetric(pts geometry.Points, minPts int, eps float64, m metric.Metric) Result {
	t := kdtree.BuildMetric(pts, 16, m)
	return StarWithCore(t, CoreByRangeCount(t, minPts, eps), eps)
}

// CoreByRangeCount computes the core flags by definition over a prebuilt
// tree: at least minPts neighbors within eps, counting the point itself.
// On the L2 path the comparison happens in squared space (RangeCount), the
// exact semantics every DBSCAN entry point has always used — deriving core
// flags from sqrt'd core distances instead would flip boundary cases via
// double rounding.
func CoreByRangeCount(t *kdtree.Tree, minPts int, eps float64) []bool {
	core := make([]bool, t.Pts.N)
	parallel.For(t.Pts.N, 32, func(i int) {
		core[i] = t.RangeCount(int32(i), eps) >= minPts
	})
	return core
}

// StarWithCore computes the DBSCAN* clustering over a prebuilt tree given
// the core flags: clusters are the eps-connected components of core points,
// everything else is noise. Labels are numbered in first-seen point order,
// so the result is independent of the tree's leaf size or traversal order.
func StarWithCore(t *kdtree.Tree, core []bool, eps float64) Result {
	n := t.Pts.N
	// Connect core points within eps. Neighbor lists are computed in
	// parallel; unions are applied sequentially (they are cheap relative
	// to the queries).
	nbrs := make([][]int32, n)
	parallel.For(n, 32, func(i int) {
		if core[i] {
			nbrs[i] = t.RangeQuery(int32(i), eps)
		}
	})
	uf := unionfind.New(n)
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for _, j := range nbrs[i] {
			if core[j] {
				uf.Union(int32(i), j)
			}
		}
	}
	labels := make([]int32, n)
	next := int32(0)
	id := make(map[int32]int32)
	for i := 0; i < n; i++ {
		if !core[i] {
			labels[i] = -1
			continue
		}
		r := uf.Find(int32(i))
		c, ok := id[r]
		if !ok {
			c = next
			id[r] = c
			next++
		}
		labels[i] = c
	}
	return Result{Labels: labels, NumClusters: int(next), Core: core}
}

// DBSCAN computes the original Ester et al. clustering: like DBSCAN*, but
// non-core points within eps of a core point become border points of (one
// of) the adjacent clusters instead of noise. Border assignment picks the
// cluster of the nearest core neighbor, which makes the result
// deterministic.
func DBSCAN(pts geometry.Points, minPts int, eps float64) Result {
	return DBSCANMetric(pts, minPts, eps, metric.L2{})
}

// DBSCANMetric is DBSCAN with neighborhoods and border attachment taken
// under an arbitrary metric kernel.
func DBSCANMetric(pts geometry.Points, minPts int, eps float64, m metric.Metric) Result {
	t := kdtree.BuildMetric(pts, 16, m)
	return AttachBorders(t, StarWithCore(t, CoreByRangeCount(t, minPts, eps), eps), eps)
}

// AttachBorders upgrades a DBSCAN* result to the original Ester et al.
// DBSCAN: non-core points within eps of a core point are assigned to the
// cluster of their nearest core neighbor (smallest distance, ties toward
// the smaller id, so the result is deterministic). eps must be the radius
// the Star result was computed at; the labels slice is updated in place and
// res returned for convenience.
func AttachBorders(t *kdtree.Tree, res Result, eps float64) Result {
	n := t.Pts.N
	// The L2 tree compares squared distances (the seed behavior); other
	// kernels compare tree-metric distances — both orders are
	// monotone-equivalent.
	dist := func(i int, j int32) float64 { return t.Pts.SqDist(int(t.Inv[int32(i)]), int(t.Inv[j])) }
	maxD := eps * eps
	if !t.IsL2() {
		dist = func(i int, j int32) float64 { return t.PairDist(int32(i), j) }
		maxD = eps
	}
	borderLabel := make([]int32, n)
	parallel.For(n, 32, func(i int) {
		borderLabel[i] = -1
		if res.Core[i] {
			return
		}
		best := int32(-1)
		bestD := maxD
		for _, j := range t.RangeQuery(int32(i), eps) {
			if !res.Core[j] {
				continue
			}
			d := dist(i, j)
			if best < 0 || d < bestD || (d == bestD && j < best) {
				best = j
				bestD = d
			}
		}
		if best >= 0 {
			borderLabel[i] = res.Labels[best]
		}
	})
	for i := 0; i < n; i++ {
		if !res.Core[i] && borderLabel[i] >= 0 {
			res.Labels[i] = borderLabel[i]
		}
	}
	return res
}

// Package unionfind provides the disjoint-set structure shared across
// rounds of the filter-Kruskal algorithms (Section 3.1.2).
package unionfind

// UF is a union-find structure over n elements with union by rank and path
// halving. Find mutates (compresses) and must not be called concurrently;
// FindRO is read-only and safe to call from multiple goroutines as long as
// no Union or Find runs at the same time.
type UF struct {
	parent []int32
	rank   []int8
	count  int // number of components
}

// New returns a union-find over n singleton elements.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Components returns the current number of components.
func (u *UF) Components() int { return u.count }

// Find returns the representative of x, compressing the path.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// FindRO returns the representative of x without modifying the structure.
func (u *UF) FindRO(x int32) int32 {
	for u.parent[x] != x {
		x = u.parent[x]
	}
	return x
}

// Connected reports whether x and y are in the same component.
func (u *UF) Connected(x, y int32) bool { return u.Find(x) == u.Find(y) }

// Union merges the components of x and y and reports whether a merge
// happened (false if they were already connected).
func (u *UF) Union(x, y int32) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Reset returns the structure to all-singletons without reallocating.
func (u *UF) Reset() { u.ResetN(len(u.parent)) }

// ResetN returns the first n elements (n <= Len) to singletons and sets the
// component count to n, so a recycled structure serves a smaller universe
// correctly: Components counts only the active elements, and termination
// checks like Components() <= 1 behave as on a fresh UF of size n. Elements
// at index n and above must not be touched until the next full Reset.
func (u *UF) ResetN(n int) {
	for i := 0; i < n; i++ {
		u.parent[i] = int32(i)
		u.rank[i] = 0
	}
	u.count = n
}

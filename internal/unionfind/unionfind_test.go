package unionfind

import (
	"math/rand"
	"testing"
)

func TestBasicOperations(t *testing.T) {
	u := New(5)
	if u.Components() != 5 {
		t.Fatalf("fresh UF has %d components", u.Components())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union reported no merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union reported a merge")
	}
	if !u.Connected(0, 1) || u.Connected(0, 2) {
		t.Fatal("connectivity wrong after union")
	}
	if u.Components() != 4 {
		t.Fatalf("components = %d, want 4", u.Components())
	}
	u.Reset()
	if u.Components() != 5 || u.Connected(0, 1) {
		t.Fatal("reset did not restore singletons")
	}
}

// TestAgainstNaiveLabels runs random unions and checks Find-based
// connectivity against a brute-force label array.
func TestAgainstNaiveLabels(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(11))
	u := New(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for op := 0; op < 2000; op++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		merged := u.Union(x, y)
		if merged == (label[x] == label[y]) {
			t.Fatalf("op %d: Union(%d,%d) merge=%v disagrees with labels", op, x, y, merged)
		}
		if merged {
			relabel(label[y], label[x])
		}
		// Spot-check connectivity and FindRO consistency.
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u.Connected(a, b) != (label[a] == label[b]) {
			t.Fatalf("op %d: Connected(%d,%d) disagrees with labels", op, a, b)
		}
		if u.FindRO(a) != u.Find(a) {
			t.Fatalf("op %d: FindRO disagrees with Find", op)
		}
	}
	comps := map[int]bool{}
	for _, l := range label {
		comps[l] = true
	}
	if u.Components() != len(comps) {
		t.Fatalf("component count %d, want %d", u.Components(), len(comps))
	}
}

// Package dendrogram implements Section 4 of the paper: ordered dendrogram
// construction from a weighted spanning tree, both the sequential bottom-up
// union-find algorithm and the parallel top-down heavy/light
// divide-and-conquer algorithm, together with reachability plots and
// cluster extraction (DBSCAN* cuts and single-linkage flat clusterings).
//
// A dendrogram over n points has leaves 0..n-1 (the points) and internal
// nodes n..2n-2, one per tree edge, in an id order where every parent id
// exceeds its children's ids. The dendrogram is "ordered" for a start
// vertex s: the in-order traversal of its leaves is exactly the order in
// which Prim's algorithm starting at s visits the points, so the in-order
// leaf sequence with LCA heights is the reachability plot (Theorem 4.2).
package dendrogram

import (
	"fmt"

	"parclust/internal/mst"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// Dendrogram is a binary merge tree over n points. Internal node id x
// (n <= x <= 2n-2) has children Left[x-n], Right[x-n] and merge height
// Height[x-n] (the weight of the tree edge whose removal splits it).
type Dendrogram struct {
	N      int
	Left   []int32
	Right  []int32
	Height []float64
	Root   int32
}

// IsLeaf reports whether dendrogram node id is a leaf (an input point).
func (d *Dendrogram) IsLeaf(id int32) bool { return int(id) < d.N }

// HeightOf returns the merge height of internal node id.
func (d *Dendrogram) HeightOf(id int32) float64 { return d.Height[int(id)-d.N] }

// Children returns the children of internal node id.
func (d *Dendrogram) Children(id int32) (int32, int32) {
	return d.Left[int(id)-d.N], d.Right[int(id)-d.N]
}

// NumInternal returns the number of internal (merge) nodes.
func (d *Dendrogram) NumInternal() int { return len(d.Height) }

// Sizes returns, for every node id in [0, 2n-1), the number of leaves in
// its subtree. It exploits the parent-id-greater-than-child-id invariant.
func (d *Dendrogram) Sizes() []int32 {
	sz := make([]int32, d.N+d.NumInternal())
	for i := 0; i < d.N; i++ {
		sz[i] = 1
	}
	for x := d.N; x < len(sz); x++ {
		sz[x] = sz[d.Left[x-d.N]] + sz[d.Right[x-d.N]]
	}
	return sz
}

// Parents returns the parent id of every node (-1 for the root).
func (d *Dendrogram) Parents() []int32 {
	par := make([]int32, d.N+d.NumInternal())
	for i := range par {
		par[i] = -1
	}
	for x := d.N; x < d.N+d.NumInternal(); x++ {
		par[d.Left[x-d.N]] = int32(x)
		par[d.Right[x-d.N]] = int32(x)
	}
	return par
}

func newDendrogram(n int) *Dendrogram {
	return &Dendrogram{
		N:      n,
		Left:   make([]int32, n-1),
		Right:  make([]int32, n-1),
		Height: make([]float64, n-1),
		Root:   int32(2*n - 2),
	}
}

// VertexDistances roots the spanning tree at s and returns every vertex's
// unweighted hop distance from s (the paper's "vertex distances"), computed
// with the Euler-tour + list-ranking primitive.
func VertexDistances(n int, edges []mst.Edge, s int32) []int32 {
	te := make([]parallel.TreeEdge, len(edges))
	for i, e := range edges {
		te[i] = parallel.TreeEdge{U: e.U, V: e.V}
	}
	_, depth := parallel.RootTree(n, te, s)
	return depth
}

// BuildSequential builds the ordered dendrogram bottom-up: edges are sorted
// by the shared total order and merged with a union-find, placing the
// cluster that Prim reaches first (the side whose endpoint has the smaller
// vertex distance) as the left child.
func BuildSequential(n int, edges []mst.Edge, s int32) *Dendrogram {
	if len(edges) != n-1 {
		panic(fmt.Sprintf("dendrogram: need a spanning tree, got %d edges for %d points", len(edges), n))
	}
	if n == 1 {
		return &Dendrogram{N: 1, Root: 0}
	}
	vdist := VertexDistances(n, edges, s)
	d := newDendrogram(n)
	sorted := append([]mst.Edge(nil), edges...)
	parallel.Sort(sorted, mst.Less)
	uf := unionfind.New(n)
	cur := make([]int32, n) // cur[root]: dendrogram node of root's cluster
	for i := range cur {
		cur[i] = int32(i)
	}
	for j, e := range sorted {
		ru, rv := uf.Find(e.U), uf.Find(e.V)
		nu, nv := cur[ru], cur[rv]
		id := int32(n + j)
		if vdist[e.U] > vdist[e.V] { // v's side is entered first by Prim
			nu, nv = nv, nu
		}
		d.Left[j], d.Right[j], d.Height[j] = nu, nv, e.W
		uf.Union(e.U, e.V)
		cur[uf.Find(e.U)] = id
	}
	return d
}

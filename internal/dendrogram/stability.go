package dendrogram

import "math"

// Stability-based flat cluster extraction for HDBSCAN* (Campello et al.,
// cited as [16] in the paper): condense the dendrogram with a minimum
// cluster size, score each condensed cluster by its excess of mass
// (stability), and select the set of non-overlapping clusters maximizing
// total stability. This is the standard "automatic" flat clustering the
// HDBSCAN* hierarchy exists to support, complementing the fixed-radius
// Cutter/CutTree extraction.

// CondensedCluster is one node of the condensed cluster tree.
type CondensedCluster struct {
	// ID is the dendrogram node id the cluster was born at.
	ID int32
	// Parent indexes Condensed.Clusters (-1 for the root cluster).
	Parent int32
	// BirthLambda is 1/height at which the cluster splits off its parent.
	BirthLambda float64
	// Stability is sum over member points of (lambda_leave - BirthLambda).
	Stability float64
	// Size is the number of points that ever belong to the cluster.
	Size int32
	// Children indexes Condensed.Clusters.
	Children []int32
	// Selected marks the cluster as part of the optimal flat clustering.
	Selected bool
}

// Condensed is a condensed cluster tree with per-cluster stabilities.
type Condensed struct {
	Clusters []CondensedCluster
	// leafCluster[p] is the index of the smallest condensed cluster that
	// point p ever belongs to, with the lambda at which p leaves it.
	leafCluster []int32
	leaveLambda []float64
	d           *Dendrogram
}

// invHeight maps a merge height to a density lambda = 1/height; zero
// heights (duplicate points) map to +Inf.
func invHeight(h float64) float64 {
	if h <= 0 {
		return math.Inf(1)
	}
	return 1 / h
}

// Condense builds the condensed cluster tree: descending from the root,
// a dendrogram split is a true split only when both sides have at least
// minClusterSize points; otherwise the small side's points simply "fall
// out" of the current cluster at that height.
func (d *Dendrogram) Condense(minClusterSize int) *Condensed {
	if minClusterSize < 1 {
		minClusterSize = 1
	}
	sz := d.Sizes()
	c := &Condensed{
		leafCluster: make([]int32, d.N),
		leaveLambda: make([]float64, d.N),
		d:           d,
	}
	// Root cluster is born at lambda = 0.
	c.Clusters = append(c.Clusters, CondensedCluster{ID: d.Root, Parent: -1, BirthLambda: 0, Size: sz[d.Root]})
	type frame struct {
		node    int32 // dendrogram node
		cluster int32 // condensed cluster the node's points belong to
	}
	stack := []frame{{node: d.Root, cluster: 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.IsLeaf(f.node) {
			// Singleton point falls out of its cluster when the cluster
			// dissolves entirely; handled via fallOut below when reached
			// through a sub-threshold branch, or stays to the end.
			c.leafCluster[f.node] = f.cluster
			c.leaveLambda[f.node] = math.Inf(1)
			continue
		}
		l, r := d.Children(f.node)
		lam := invHeight(d.HeightOf(f.node))
		bigL := int(sz[l]) >= minClusterSize
		bigR := int(sz[r]) >= minClusterSize
		switch {
		case bigL && bigR:
			// True split: two new clusters born at this lambda.
			for _, ch := range [2]int32{l, r} {
				ci := int32(len(c.Clusters))
				c.Clusters = append(c.Clusters, CondensedCluster{
					ID: ch, Parent: f.cluster, BirthLambda: lam, Size: sz[ch],
				})
				c.Clusters[f.cluster].Children = append(c.Clusters[f.cluster].Children, ci)
				stack = append(stack, frame{node: ch, cluster: ci})
			}
		case bigL:
			c.fallOut(r, f.cluster, lam)
			stack = append(stack, frame{node: l, cluster: f.cluster})
		case bigR:
			c.fallOut(l, f.cluster, lam)
			stack = append(stack, frame{node: r, cluster: f.cluster})
		default:
			// Cluster dissolves: all points leave at this lambda.
			c.fallOut(l, f.cluster, lam)
			c.fallOut(r, f.cluster, lam)
		}
	}
	c.computeStabilities()
	return c
}

// fallOut records every point under node as leaving cluster ci at lambda.
func (c *Condensed) fallOut(node, ci int32, lambda float64) {
	stack := []int32{node}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.d.IsLeaf(x) {
			c.leafCluster[x] = ci
			c.leaveLambda[x] = lambda
			continue
		}
		l, r := c.d.Children(x)
		stack = append(stack, l, r)
	}
}

func (c *Condensed) computeStabilities() {
	// A cluster's stability is the excess of mass
	//
	//	sum_p (lambda_leave(p) - lambda_birth),
	//
	// where a point leaves when it falls out individually or when the
	// cluster truly splits (all surviving points leave at the split
	// lambda, i.e. the children's birth lambda). Infinite lambdas (from
	// zero merge heights, e.g. duplicate points) are capped at the largest
	// finite lambda so stabilities stay finite.
	maxLam := 0.0
	for p := 0; p < c.d.N; p++ {
		if !math.IsInf(c.leaveLambda[p], 1) {
			maxLam = math.Max(maxLam, c.leaveLambda[p])
		}
	}
	for i := range c.Clusters {
		if b := c.Clusters[i].BirthLambda; !math.IsInf(b, 1) {
			maxLam = math.Max(maxLam, b)
		}
	}
	if maxLam == 0 {
		maxLam = 1
	}
	cap := func(lam float64) float64 {
		if math.IsInf(lam, 1) {
			return maxLam
		}
		return lam
	}
	// Individual fall-outs contribute to the cluster they fell from.
	for p := 0; p < c.d.N; p++ {
		ci := c.leafCluster[p]
		c.Clusters[ci].Stability += cap(c.leaveLambda[p]) - cap(c.Clusters[ci].BirthLambda)
	}
	// Survivors of a true split leave the parent at the children's birth.
	for i := range c.Clusters {
		cl := &c.Clusters[i]
		for _, ch := range cl.Children {
			child := &c.Clusters[ch]
			cl.Stability += float64(child.Size) * (cap(child.BirthLambda) - cap(cl.BirthLambda))
		}
	}
}

// Select runs the bottom-up excess-of-mass optimization: a cluster is
// selected when its own stability exceeds the total stability of its best
// selected descendants. It returns the selected cluster indices.
func (c *Condensed) Select() []int32 {
	// Process clusters in reverse creation order (children have larger
	// indices than parents by construction).
	best := make([]float64, len(c.Clusters))
	for i := len(c.Clusters) - 1; i >= 0; i-- {
		cl := &c.Clusters[i]
		childSum := 0.0
		for _, ch := range cl.Children {
			childSum += best[ch]
		}
		if len(cl.Children) == 0 || cl.Stability >= childSum {
			best[i] = cl.Stability
			cl.Selected = true
			// Deselect all descendants.
			c.deselectBelow(int32(i))
		} else {
			best[i] = childSum
			cl.Selected = false
		}
	}
	// The root is never a meaningful flat cluster unless it has no children.
	if len(c.Clusters) > 1 && c.Clusters[0].Selected {
		c.Clusters[0].Selected = false
		for _, ch := range c.Clusters[0].Children {
			c.reselectBest(ch)
		}
	}
	var out []int32
	for i := range c.Clusters {
		if c.Clusters[i].Selected {
			out = append(out, int32(i))
		}
	}
	return out
}

func (c *Condensed) deselectBelow(i int32) {
	for _, ch := range c.Clusters[i].Children {
		if c.Clusters[ch].Selected {
			c.Clusters[ch].Selected = false
		}
		c.deselectBelow(ch)
	}
}

// reselectBest re-marks the best selection under cluster i after the root
// is forced off: i itself if it was the winner of its subtree, else its
// children's winners recursively.
func (c *Condensed) reselectBest(i int32) {
	cl := &c.Clusters[i]
	childSum := 0.0
	for _, ch := range cl.Children {
		childSum += c.subtreeBest(ch)
	}
	if len(cl.Children) == 0 || cl.Stability >= childSum {
		cl.Selected = true
		return
	}
	for _, ch := range cl.Children {
		c.reselectBest(ch)
	}
}

func (c *Condensed) subtreeBest(i int32) float64 {
	cl := &c.Clusters[i]
	childSum := 0.0
	for _, ch := range cl.Children {
		childSum += c.subtreeBest(ch)
	}
	if len(cl.Children) == 0 || cl.Stability >= childSum {
		return cl.Stability
	}
	return childSum
}

// ExtractStable computes the stability-optimal flat clustering with the
// given minimum cluster size. Points that never belong to a selected
// cluster are noise.
func (d *Dendrogram) ExtractStable(minClusterSize int) Clustering {
	c := d.Condense(minClusterSize)
	c.Select()
	// Map each point to its innermost selected ancestor cluster.
	labels := make([]int32, d.N)
	sel := make(map[int32]int32) // cluster index -> label
	next := int32(0)
	for i := range c.Clusters {
		if c.Clusters[i].Selected {
			sel[int32(i)] = next
			next++
		}
	}
	for p := 0; p < d.N; p++ {
		labels[p] = -1
		ci := c.leafCluster[p]
		for ci >= 0 {
			if lbl, ok := sel[ci]; ok {
				labels[p] = lbl
				break
			}
			ci = c.Clusters[ci].Parent
		}
	}
	return Clustering{Labels: labels, NumClusters: int(next)}
}

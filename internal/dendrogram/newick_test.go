package dendrogram

import (
	"strings"
	"testing"

	"parclust/internal/mst"
)

func TestWriteNewickSmall(t *testing.T) {
	// Path 0-1-2 with weights 1, 2: dendrogram is ((0,1),2).
	edges := []mst.Edge{mst.MakeEdge(0, 1, 1), mst.MakeEdge(1, 2, 2)}
	d := BuildSequential(3, edges, 0)
	var sb strings.Builder
	if err := d.WriteNewick(&sb, nil); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "((0:1,1:1):1,2:2):0;\n"
	if got != want {
		t.Fatalf("newick = %q, want %q", got, want)
	}
}

func TestWriteNewickNames(t *testing.T) {
	edges := []mst.Edge{mst.MakeEdge(0, 1, 1.5)}
	d := BuildSequential(2, edges, 0)
	var sb strings.Builder
	if err := d.WriteNewick(&sb, []string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "(alpha:1.5,beta:1.5):0;\n" {
		t.Fatalf("newick with names = %q", got)
	}
}

func TestWriteNewickBalanced(t *testing.T) {
	n := 200
	edges := randTree(n, 17)
	d := BuildParallel(n, edges, 0)
	var sb strings.Builder
	if err := d.WriteNewick(&sb, nil); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	if strings.Count(s, "(") != n-1 || strings.Count(s, ")") != n-1 {
		t.Fatalf("unbalanced parentheses: %d open, %d close",
			strings.Count(s, "("), strings.Count(s, ")"))
	}
	if strings.Count(s, ",") != n-1 {
		t.Fatalf("wrong comma count %d", strings.Count(s, ","))
	}
	if !strings.HasSuffix(s, ";\n") {
		t.Fatal("missing terminator")
	}
}

func TestWriteNewickDeepPath(t *testing.T) {
	// A path-shaped dendrogram must not blow the stack.
	n := 100000
	edges := make([]mst.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, mst.MakeEdge(int32(i-1), int32(i), float64(i)))
	}
	d := BuildParallel(n, edges, 0)
	var sb strings.Builder
	if err := d.WriteNewick(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "(") != n-1 {
		t.Fatal("wrong structure for deep path")
	}
}

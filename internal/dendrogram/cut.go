package dendrogram

import (
	"math"
	"sort"
	"sync"

	"parclust/internal/mst"
	"parclust/internal/unionfind"
)

// Cutter answers repeated flat cuts over one spanning tree. Construction
// precomputes the sorted merge order once — the merge forest the sorted
// edges induce, plus the sorted core distances — so every subsequent
// CutAt(eps) runs in O(n) with a binary search selecting the merge prefix
// (no per-query union-find, no edge re-walk) and NumNoiseAt(eps) runs in
// O(log n). It is the single implementation behind Hierarchy.ClustersAt
// and Hierarchy.NumNoiseAt; CutTree remains only as the from-the-definition
// reference the tests diff against.
//
// A Cutter is immutable after construction and safe for concurrent use; it
// keeps a reference to coreDist, which callers must not mutate.
type Cutter struct {
	n int
	// heights[j] is the weight of merge j; ascending. left/right[j] are the
	// merge-forest children (ids < n are points, n+i is merge i).
	heights []float64
	left    []int32
	right   []int32
	// coreDist is in point order (nil: every point is core); sortedCD is
	// its ascending copy for O(log n) noise counts.
	coreDist []float64
	sortedCD []float64

	scratch sync.Pool // *cutScratch, reused across queries
}

type cutScratch struct {
	comp []int32 // node id -> partial-forest root id
	id   []int32 // root id -> dense cluster label (-1 unseen)
}

// NewCutter precomputes the cut structure for the spanning tree (or forest)
// edges with the given per-point core distances (nil treats every point as
// core, the single-linkage semantics). Edges already sorted by the shared
// mst.Less total order — the order Kruskal emits — are used as-is; anything
// else is copied and sorted. The input slices are never mutated.
func NewCutter(n int, edges []mst.Edge, coreDist []float64) *Cutter {
	sorted := edges
	for i := 1; i < len(sorted); i++ {
		if mst.Less(sorted[i], sorted[i-1]) {
			sorted = append([]mst.Edge(nil), edges...)
			sort.Slice(sorted, func(a, b int) bool { return mst.Less(sorted[a], sorted[b]) })
			break
		}
	}
	c := &Cutter{
		n:        n,
		heights:  make([]float64, 0, len(sorted)),
		left:     make([]int32, 0, len(sorted)),
		right:    make([]int32, 0, len(sorted)),
		coreDist: coreDist,
	}
	// Replay the merges once: cur[root] is the forest node currently
	// representing root's component.
	uf := unionfind.New(n)
	cur := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	for _, e := range sorted {
		ru, rv := uf.Find(e.U), uf.Find(e.V)
		if ru == rv {
			continue // not a tree edge; harmless to skip
		}
		id := int32(n + len(c.heights))
		c.heights = append(c.heights, e.W)
		c.left = append(c.left, cur[ru])
		c.right = append(c.right, cur[rv])
		uf.Union(e.U, e.V)
		cur[uf.Find(e.U)] = id
	}
	if coreDist != nil {
		c.sortedCD = append([]float64(nil), coreDist...)
		sort.Float64s(c.sortedCD)
	}
	c.scratch.New = func() any { return &cutScratch{} }
	return c
}

// N returns the number of points the Cutter was built over.
func (c *Cutter) N() int { return c.n }

// CutAt extracts the flat DBSCAN* clustering at radius eps: points whose
// core distance exceeds eps are noise; the remaining points are grouped by
// the precomputed merges of height at most eps. Labels are numbered in
// first-seen point order, exactly matching CutTree.
func (c *Cutter) CutAt(eps float64) Clustering {
	labels := make([]int32, c.n)
	k := 0
	if !math.IsNaN(eps) { // NaN admits no merge (matches e.W <= eps)
		k = sort.Search(len(c.heights), func(i int) bool { return c.heights[i] > eps })
	}
	s := c.scratch.Get().(*cutScratch)
	defer c.scratch.Put(s)
	tot := c.n + k
	if cap(s.comp) < tot {
		s.comp = make([]int32, tot)
		s.id = make([]int32, tot)
	}
	comp, id := s.comp[:tot], s.id[:tot]
	for i := range comp {
		comp[i] = int32(i)
		id[i] = -1
	}
	// Propagate each applied merge's component id down to its children;
	// scanning ids descending resolves parents before children.
	for x := tot - 1; x >= c.n; x-- {
		cc := comp[x]
		comp[c.left[x-c.n]] = cc
		comp[c.right[x-c.n]] = cc
	}
	next := int32(0)
	for i := 0; i < c.n; i++ {
		if c.coreDist != nil && c.coreDist[i] > eps {
			labels[i] = -1
			continue
		}
		r := comp[i]
		if id[r] < 0 {
			id[r] = next
			next++
		}
		labels[i] = id[r]
	}
	return Clustering{Labels: labels, NumClusters: int(next)}
}

// NumNoiseAt returns the number of noise points at radius eps — the count
// of core distances exceeding eps — by binary search over the sorted core
// distances.
func (c *Cutter) NumNoiseAt(eps float64) int {
	if c.sortedCD == nil {
		return 0
	}
	return c.n - sort.Search(len(c.sortedCD), func(i int) bool { return c.sortedCD[i] > eps })
}

package dendrogram

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/wspd"
)

// hdbscanMSTOf computes the mutual-reachability MST and core distances the
// Cutter tests cut.
func hdbscanMSTOf(n, dim int, seed int64, minPts int) ([]mst.Edge, []float64) {
	pts := randPoints(n, dim, seed)
	tr := kdtree.Build(pts, 1)
	cd := tr.CoreDistances(minPts)
	tr.AnnotateCoreDists(cd)
	edges := mst.MemoGFK(mst.Config{Tree: tr, Metric: kdtree.NewMutualReachability(tr), Sep: wspd.MutualUnreachable{}})
	return edges, cd
}

func TestCutterMatchesCutTreeWithCoreDistances(t *testing.T) {
	edges, cd := hdbscanMSTOf(250, 2, 7, 6)
	c := NewCutter(250, edges, cd)
	epsList := []float64{0, 0.5, 2, 5, 12, 40, 1e9, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, eps := range epsList {
		got := c.CutAt(eps)
		want := CutTree(250, edges, cd, eps)
		if got.NumClusters != want.NumClusters {
			t.Fatalf("eps=%v: %d vs %d clusters", eps, got.NumClusters, want.NumClusters)
		}
		for i := range got.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("eps=%v: label mismatch at %d: %d vs %d", eps, i, got.Labels[i], want.Labels[i])
			}
		}
		noise := 0
		for _, l := range want.Labels {
			if l == -1 {
				noise++
			}
		}
		if got := c.NumNoiseAt(eps); got != noise {
			t.Fatalf("eps=%v: NumNoiseAt %d, want %d", eps, got, noise)
		}
	}
}

func TestCutterUnsortedEdgesAndForest(t *testing.T) {
	// Shuffled edges must be re-sorted internally; dropping edges leaves a
	// forest, which the merge replay must handle.
	edges, cd := hdbscanMSTOf(120, 3, 9, 4)
	rng := rand.New(rand.NewSource(1))
	shuffled := append([]mst.Edge(nil), edges...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	forest := shuffled[:len(shuffled)-10]
	c := NewCutter(120, forest, cd)
	for _, eps := range []float64{0.5, 3, 20} {
		got := c.CutAt(eps)
		want := CutTree(120, forest, cd, eps)
		for i := range got.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("eps=%v: label mismatch at %d", eps, i)
			}
		}
	}
	// The shuffled input slice must not have been reordered.
	for i := range shuffled[:len(shuffled)-10] {
		if shuffled[i] != forest[i] {
			t.Fatal("NewCutter mutated its input edges")
		}
	}
}

func TestCutterTrivialSizes(t *testing.T) {
	if c := NewCutter(0, nil, nil); len(c.CutAt(1).Labels) != 0 || c.NumNoiseAt(1) != 0 {
		t.Fatal("n=0 cut not empty")
	}
	c := NewCutter(1, nil, []float64{0})
	if got := c.CutAt(0.5); got.NumClusters != 1 || got.Labels[0] != 0 {
		t.Fatalf("n=1 cut: %+v", got)
	}
	if c.NumNoiseAt(-1) != 1 {
		t.Fatal("n=1: core distance 0 should be noise below eps=0")
	}
}

func TestCutterConcurrent(t *testing.T) {
	edges, cd := hdbscanMSTOf(400, 2, 21, 8)
	c := NewCutter(400, edges, cd)
	epsList := []float64{0.5, 2, 5, 12, 40}
	want := make([]Clustering, len(epsList))
	for i, eps := range epsList {
		want[i] = CutTree(400, edges, cd, eps)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				i := (g + it) % len(epsList)
				got := c.CutAt(epsList[i])
				if got.NumClusters != want[i].NumClusters {
					t.Errorf("concurrent cut at %v: %d clusters, want %d",
						epsList[i], got.NumClusters, want[i].NumClusters)
					return
				}
				for j := range got.Labels {
					if got.Labels[j] != want[i].Labels[j] {
						t.Errorf("concurrent cut at %v: label mismatch at %d", epsList[i], j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

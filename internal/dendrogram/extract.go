package dendrogram

import (
	"math"

	"parclust/internal/mst"
	"parclust/internal/unionfind"
)

// Bar is one entry of a reachability plot: point Idx with reachability
// height H (the paper's min mutual-reachability distance to any earlier
// point in Prim order; +Inf for the first point).
type Bar struct {
	Idx int32
	H   float64
}

// ReachabilityPlot returns the reachability plot encoded by the ordered
// dendrogram: the in-order traversal of its leaves, where each leaf's height
// is the merge height of the internal node separating it from its in-order
// predecessor (the dendrogram is the Cartesian tree of the plot).
func (d *Dendrogram) ReachabilityPlot() []Bar {
	out := make([]Bar, 0, d.N)
	pending := math.Inf(1)
	// Iterative in-order traversal (the dendrogram can be path-shaped).
	type frame struct {
		id   int32
		seen bool
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{id: d.Root})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.IsLeaf(f.id) {
			out = append(out, Bar{Idx: f.id, H: pending})
			continue
		}
		if f.seen {
			pending = d.HeightOf(f.id)
			continue
		}
		l, r := d.Children(f.id)
		stack = append(stack, frame{id: r})
		stack = append(stack, frame{id: f.id, seen: true})
		stack = append(stack, frame{id: l})
	}
	return out
}

// PrimOrder is the validation oracle for ordered dendrograms: it simulates
// Prim's algorithm over the tree edges starting at s, breaking ties with the
// shared total order, and returns the reachability plot directly.
func PrimOrder(n int, edges []mst.Edge, s int32) []Bar {
	adj := make([][]mst.Edge, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
	}
	visited := make([]bool, n)
	out := make([]Bar, 0, n)
	// Frontier as a simple binary heap ordered by mst.Less on (edge, to).
	type item struct {
		e  mst.Edge
		to int32
	}
	less := func(a, b item) bool { return mst.Less(a.e, b.e) }
	heap := make([]item, 0, n)
	push := func(it item) {
		heap = append(heap, it)
		c := len(heap) - 1
		for c > 0 {
			p := (c - 1) / 2
			if !less(heap[c], heap[p]) {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			c = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		p := 0
		for {
			c := 2*p + 1
			if c >= len(heap) {
				break
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[p]) {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			p = c
		}
		return top
	}
	visit := func(v int32, h float64) {
		visited[v] = true
		out = append(out, Bar{Idx: v, H: h})
		for _, e := range adj[v] {
			to := e.U
			if to == v {
				to = e.V
			}
			if !visited[to] {
				push(item{e: e, to: to})
			}
		}
	}
	visit(s, math.Inf(1))
	for len(heap) > 0 {
		it := pop()
		if !visited[it.to] {
			visit(it.to, it.e.W)
		}
	}
	return out
}

// Clustering is a flat clustering: Labels[i] is point i's cluster id in
// [0, NumClusters), or -1 for noise.
type Clustering struct {
	Labels      []int32
	NumClusters int
}

// CutTree extracts the DBSCAN* clustering at radius eps from the MST of the
// mutual reachability graph: points whose core distance exceeds eps are
// noise; the remaining points are grouped by the MST edges of weight at
// most eps (Section 2.1). Pass nil core distances (or minPts <= 1
// semantics) to treat every point as core, which yields the single-linkage
// clustering of the EMST at distance eps.
//
// CutTree re-runs a union-find over every edge per call; it is the
// from-the-definition reference the tests diff Cutter against. Production
// callers answering repeated cuts should build a Cutter once instead.
func CutTree(n int, edges []mst.Edge, coreDist []float64, eps float64) Clustering {
	uf := unionfind.New(n)
	for _, e := range edges {
		if e.W <= eps {
			uf.Union(e.U, e.V)
		}
	}
	labels := make([]int32, n)
	next := int32(0)
	id := make(map[int32]int32, n)
	for i := 0; i < n; i++ {
		if coreDist != nil && coreDist[i] > eps {
			labels[i] = -1
			continue
		}
		r := uf.Find(int32(i))
		c, ok := id[r]
		if !ok {
			c = next
			id[r] = c
			next++
		}
		labels[i] = c
	}
	return Clustering{Labels: labels, NumClusters: int(next)}
}

package dendrogram

import (
	"math/rand"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
)

// blobs generates k tight Gaussian blobs far apart, plus a little noise.
func blobs(n, k int, seed int64) (geometry.Points, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := geometry.NewPoints(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		pts.Data[2*i] = float64(c)*1000 + rng.NormFloat64()*2
		pts.Data[2*i+1] = rng.NormFloat64() * 2
	}
	return pts, truth
}

func hdbscanDendro(t *testing.T, pts geometry.Points, minPts int) (*Dendrogram, []float64) {
	t.Helper()
	res := hdbscan.Build(pts, minPts, hdbscan.MemoGFK, nil)
	return BuildParallel(pts.N, res.MST, 0), res.CoreDist
}

func TestExtractStableFindsBlobs(t *testing.T) {
	pts, truth := blobs(600, 3, 1)
	d, _ := hdbscanDendro(t, pts, 10)
	c := d.ExtractStable(20)
	if c.NumClusters != 3 {
		t.Fatalf("found %d stable clusters, want 3", c.NumClusters)
	}
	// Labels must be consistent with the ground-truth blobs (allowing noise).
	blobOf := map[int32]int{}
	for i, l := range c.Labels {
		if l == -1 {
			continue
		}
		if b, ok := blobOf[l]; ok {
			if b != truth[i] {
				t.Fatalf("cluster %d mixes blobs %d and %d", l, b, truth[i])
			}
		} else {
			blobOf[l] = truth[i]
		}
	}
	// The vast majority of points should be clustered.
	noise := 0
	for _, l := range c.Labels {
		if l == -1 {
			noise++
		}
	}
	if noise > pts.N/5 {
		t.Fatalf("%d of %d points are noise", noise, pts.N)
	}
}

func TestCondensedInvariants(t *testing.T) {
	pts, _ := blobs(400, 4, 3)
	d, _ := hdbscanDendro(t, pts, 5)
	c := d.Condense(15)
	if len(c.Clusters) == 0 {
		t.Fatal("no condensed clusters")
	}
	if c.Clusters[0].Parent != -1 {
		t.Fatal("root cluster has a parent")
	}
	for i, cl := range c.Clusters {
		if cl.Stability < -1e-9 {
			t.Fatalf("cluster %d has negative stability %v", i, cl.Stability)
		}
		if i > 0 {
			p := c.Clusters[cl.Parent]
			if p.BirthLambda > cl.BirthLambda+1e-12 {
				t.Fatalf("cluster %d born before its parent", i)
			}
			if cl.Size > p.Size {
				t.Fatalf("cluster %d larger than its parent", i)
			}
		}
		for _, ch := range cl.Children {
			if c.Clusters[ch].Parent != int32(i) {
				t.Fatalf("child %d has wrong parent", ch)
			}
		}
		if len(cl.Children) != 0 && len(cl.Children) != 2 {
			t.Fatalf("cluster %d has %d children", i, len(cl.Children))
		}
	}
}

func TestSelectedClustersAreDisjoint(t *testing.T) {
	pts, _ := blobs(500, 5, 7)
	d, _ := hdbscanDendro(t, pts, 5)
	c := d.Condense(10)
	sel := c.Select()
	// No selected cluster may be an ancestor of another selected cluster.
	isSel := map[int32]bool{}
	for _, s := range sel {
		isSel[s] = true
	}
	for _, s := range sel {
		p := c.Clusters[s].Parent
		for p >= 0 {
			if isSel[p] {
				t.Fatalf("selected cluster %d has selected ancestor %d", s, p)
			}
			p = c.Clusters[p].Parent
		}
	}
}

func TestExtractStableHugeMinSize(t *testing.T) {
	pts, _ := blobs(200, 2, 9)
	d, _ := hdbscanDendro(t, pts, 5)
	c := d.ExtractStable(pts.N + 1)
	// Nothing can ever split: the root is the only cluster.
	if c.NumClusters != 1 {
		t.Fatalf("got %d clusters, want 1", c.NumClusters)
	}
	for i, l := range c.Labels {
		if l != 0 {
			t.Fatalf("point %d not in the root cluster", i)
		}
	}
}

func TestExtractStableSingleLinkage(t *testing.T) {
	// Works on plain EMST dendrograms too (single linkage).
	pts, truth := blobs(300, 3, 11)
	edges := emstOf(pts)
	d := BuildParallel(pts.N, edges, 0)
	c := d.ExtractStable(30)
	if c.NumClusters != 3 {
		t.Fatalf("single-linkage stable extraction found %d clusters, want 3", c.NumClusters)
	}
	blobOf := map[int32]int{}
	for i, l := range c.Labels {
		if l == -1 {
			continue
		}
		if b, ok := blobOf[l]; ok && b != truth[i] {
			t.Fatal("stable cluster mixes blobs")
		}
		blobOf[l] = truth[i]
	}
}

package dendrogram

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteNewick serializes the dendrogram in Newick format for use with
// standard dendrogram/phylogeny viewers. Leaves are named by their point
// index (or by names[i] when names is non-nil); branch lengths are the
// height differences between a node and its parent, so root-to-leaf path
// lengths equal merge heights.
func (d *Dendrogram) WriteNewick(w io.Writer, names []string) error {
	bw := bufio.NewWriter(w)
	if err := d.writeNewickNode(bw, d.Root, d.rootHeight(), names); err != nil {
		return err
	}
	if _, err := bw.WriteString(";\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func (d *Dendrogram) rootHeight() float64 {
	if d.IsLeaf(d.Root) {
		return 0
	}
	return d.HeightOf(d.Root)
}

// writeNewickNode emits node id whose parent merges at parentH. The
// dendrogram can be path-shaped, so recursion is replaced by an explicit
// stack of emit actions.
func (d *Dendrogram) writeNewickNode(bw *bufio.Writer, root int32, rootH float64, names []string) error {
	type action struct {
		id      int32
		parentH float64
		text    string // when non-empty, literal output instead of a node
	}
	stack := []action{{id: root, parentH: rootH}}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.text != "" {
			if _, err := bw.WriteString(a.text); err != nil {
				return err
			}
			continue
		}
		if d.IsLeaf(a.id) {
			name := strconv.Itoa(int(a.id))
			if names != nil {
				name = names[a.id]
			}
			if _, err := fmt.Fprintf(bw, "%s:%g", name, a.parentH); err != nil {
				return err
			}
			continue
		}
		h := d.HeightOf(a.id)
		l, r := d.Children(a.id)
		// Emit "(", left, ",", right, "):len" — pushed in reverse.
		stack = append(stack,
			action{text: fmt.Sprintf("):%g", a.parentH-h)},
			action{id: r, parentH: h},
			action{text: ","},
			action{id: l, parentH: h},
			action{text: "("},
		)
	}
	return nil
}

package dendrogram

import (
	"fmt"
	"sort"

	"parclust/internal/mst"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// DefaultSeqThreshold is the subproblem size below which the parallel
// builder switches to the sequential algorithm (implementation note of
// Section 4.2).
const DefaultSeqThreshold = 2048

// heavyFraction selects m/heavyFraction heaviest edges per level (the paper
// found n/10 to work well across datasets).
const heavyFraction = 10

// BuildParallel builds the ordered dendrogram with the top-down
// divide-and-conquer algorithm of Section 4.2: each level extracts the m/10
// heaviest edges (which form the top of the dendrogram), contracts the
// connected components of the remaining light edges into super-vertices,
// and solves the heavy subproblem and every light subproblem recursively in
// parallel. Internal node ids are assigned deterministic contiguous ranges
// (light components first, heavy part last) so that all subproblems write
// disjoint ranges with no synchronization, the root of a subproblem over m
// edges is always its last id, and the parent-id > child-id invariant holds.
func BuildParallel(n int, edges []mst.Edge, s int32) *Dendrogram {
	return BuildParallelThreshold(n, edges, s, DefaultSeqThreshold)
}

// BuildParallelThreshold is BuildParallel with an explicit sequential
// cutoff, used by the ablation benchmarks.
func BuildParallelThreshold(n int, edges []mst.Edge, s int32, seqThreshold int) *Dendrogram {
	if len(edges) != n-1 {
		panic(fmt.Sprintf("dendrogram: need a spanning tree, got %d edges for %d points", len(edges), n))
	}
	if n == 1 {
		return &Dendrogram{N: 1, Root: 0}
	}
	if seqThreshold < 1 {
		seqThreshold = 1
	}
	b := &builder{
		d:            newDendrogram(n),
		vdist:        VertexDistances(n, edges, s),
		seqThreshold: seqThreshold,
	}
	work := append([]mst.Edge(nil), edges...)
	b.solve(work, nil, nil, int32(n))
	return b.d
}

type builder struct {
	d            *Dendrogram
	vdist        []int32
	seqThreshold int
}

func repOf(rep map[int32]int32, v int32) int32 {
	if r, ok := rep[v]; ok {
		return r
	}
	return v
}

func leafOf(leaf map[int32]int32, sv int32) int32 {
	if l, ok := leaf[sv]; ok {
		return l
	}
	return sv
}

// solve builds the dendrogram of the subproblem given by edges, writing its
// internal nodes into ids [base, base+len(edges)). rep maps an original edge
// endpoint to its super-vertex (the entry vertex — minimum vertex distance —
// of the contracted cluster containing it); leaf maps a super-vertex to the
// dendrogram node representing its cluster. Missing map entries mean
// identity. The subproblem's root is always id base+len(edges)-1.
func (b *builder) solve(edges []mst.Edge, rep, leaf map[int32]int32, base int32) {
	m := len(edges)
	if m <= b.seqThreshold {
		b.seqBuild(edges, rep, leaf, base)
		return
	}
	k := m / heavyFraction
	if k < 1 {
		k = 1
	}
	// Heavy edges: the k heaviest under the shared total order.
	parallel.NthElement(edges, m-k, mst.Less)
	light, heavy := edges[:m-k], edges[m-k:]

	// Light components over super-vertices (local union-find).
	localIdx := make(map[int32]int32, 2*len(light))
	svs := make([]int32, 0, 2*len(light))
	local := func(sv int32) int32 {
		if li, ok := localIdx[sv]; ok {
			return li
		}
		li := int32(len(svs))
		localIdx[sv] = li
		svs = append(svs, sv)
		return li
	}
	lu := make([]int32, len(light))
	lv := make([]int32, len(light))
	for i, e := range light {
		lu[i] = local(repOf(rep, e.U))
		lv[i] = local(repOf(rep, e.V))
	}
	uf := unionfind.New(len(svs))
	for i := range light {
		uf.Union(lu[i], lv[i])
	}
	// Group light edges by component and find each component's entry
	// super-vertex (minimum vertex distance).
	edgesOf := make(map[int32][]mst.Edge)
	for i, e := range light {
		r := uf.Find(lu[i])
		edgesOf[r] = append(edgesOf[r], e)
	}
	entry := make(map[int32]int32) // component local root -> entry sv
	for li, sv := range svs {
		r := uf.Find(int32(li))
		if cur, ok := entry[r]; !ok || b.vdist[sv] < b.vdist[cur] {
			entry[r] = sv
		}
	}
	// Deterministic component order (map iteration is randomized).
	roots := make([]int32, 0, len(edgesOf))
	for r := range edgesOf {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		return b.vdist[entry[roots[i]]] < b.vdist[entry[roots[j]]]
	})

	// Assign id ranges: light components first, heavy part last.
	type sub struct {
		edges []mst.Edge
		base  int32
	}
	subs := make([]sub, 0, len(roots))
	compRootNode := make(map[int32]int32, len(roots)) // entry sv -> light dendro root id
	cursor := base
	for _, r := range roots {
		es := edgesOf[r]
		subs = append(subs, sub{edges: es, base: cursor})
		compRootNode[entry[r]] = cursor + int32(len(es)) - 1
		cursor += int32(len(es))
	}
	heavyBase := cursor // == base + m - k

	// Heavy subproblem maps: resolve endpoints through light contraction.
	repH := make(map[int32]int32, 2*len(heavy))
	leafH := make(map[int32]int32, 2*len(heavy))
	for _, e := range heavy {
		for _, v := range [2]int32{e.U, e.V} {
			if _, done := repH[v]; done {
				continue
			}
			sv := repOf(rep, v)
			if li, ok := localIdx[sv]; ok {
				sv = entry[uf.Find(li)]
			}
			repH[v] = sv
			if node, ok := compRootNode[sv]; ok {
				leafH[sv] = node
			} else {
				leafH[sv] = leafOf(leaf, sv)
			}
		}
	}

	// Solve all subproblems as one fork-join group; id ranges are disjoint,
	// so no synchronization beyond the join is needed. The light components
	// are spawned (stealable by idle workers) and the heavy subproblem — on
	// average the largest — runs inline on the current worker, so the
	// recursion stays depth-first wherever no steal happens.
	var g parallel.Group
	for _, sp := range subs {
		g.Spawn(func() { b.solve(sp.edges, rep, leaf, sp.base) })
	}
	g.Run(func() { b.solve(heavy, repH, leafH, heavyBase) })
	g.Sync()
}

// seqBuild is the sequential bottom-up base case over super-vertices.
func (b *builder) seqBuild(edges []mst.Edge, rep, leaf map[int32]int32, base int32) {
	m := len(edges)
	if m == 0 {
		return
	}
	sort.Slice(edges, func(i, j int) bool { return mst.Less(edges[i], edges[j]) })
	localIdx := make(map[int32]int32, m+1)
	cur := make([]int32, 0, m+1) // dendro node per local sv cluster root
	local := func(sv int32) int32 {
		if li, ok := localIdx[sv]; ok {
			return li
		}
		li := int32(len(cur))
		localIdx[sv] = li
		cur = append(cur, leafOf(leaf, sv))
		return li
	}
	// Pre-register svs so the union-find can be sized; edges are a tree over
	// svs, so there are exactly m+1 of them.
	lus := make([]int32, m)
	lvs := make([]int32, m)
	for i, e := range edges {
		lus[i] = local(repOf(rep, e.U))
		lvs[i] = local(repOf(rep, e.V))
	}
	uf := unionfind.New(len(cur))
	n := int32(b.d.N)
	for j, e := range edges {
		ru, rv := uf.Find(lus[j]), uf.Find(lvs[j])
		nu, nv := cur[ru], cur[rv]
		id := base + int32(j)
		if b.vdist[e.U] > b.vdist[e.V] {
			nu, nv = nv, nu
		}
		b.d.Left[id-n], b.d.Right[id-n], b.d.Height[id-n] = nu, nv, e.W
		uf.Union(lus[j], lvs[j])
		cur[uf.Find(lus[j])] = id
	}
}

package dendrogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/mst"
	"parclust/internal/unionfind"
	"parclust/internal/wspd"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

func emstOf(pts geometry.Points) []mst.Edge {
	t := kdtree.Build(pts, 1)
	return mst.MemoGFK(mst.Config{Tree: t, Metric: kdtree.NewEuclidean(t), Sep: wspd.Geometric{S: 2}})
}

// randTree builds a random spanning tree with random weights.
func randTree(n int, seed int64) []mst.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]mst.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, mst.MakeEdge(int32(rng.Intn(i)), int32(i), rng.Float64()))
	}
	return edges
}

func checkDendrogram(t *testing.T, d *Dendrogram, edges []mst.Edge) {
	t.Helper()
	if d.NumInternal() != len(edges) {
		t.Fatalf("%d internal nodes, want %d", d.NumInternal(), len(edges))
	}
	// Every leaf appears exactly once; parent heights dominate child heights.
	seen := make([]int, d.N)
	var walk func(id int32, bound float64)
	walk = func(id int32, bound float64) {
		if d.IsLeaf(id) {
			seen[id]++
			return
		}
		h := d.HeightOf(id)
		if h > bound+1e-12 {
			t.Fatalf("child height %v exceeds parent height %v", h, bound)
		}
		l, r := d.Children(id)
		walk(l, h)
		walk(r, h)
	}
	walk(d.Root, math.Inf(1))
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("leaf %d appears %d times", i, c)
		}
	}
	// Heights are exactly the edge weights (as multisets).
	hs := append([]float64(nil), d.Height...)
	ws := make([]float64, len(edges))
	for i, e := range edges {
		ws[i] = e.W
	}
	sortFloats(hs)
	sortFloats(ws)
	for i := range hs {
		if hs[i] != ws[i] {
			t.Fatalf("height multiset differs from edge weights at %d", i)
		}
	}
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestSequentialOrderedDendrogram(t *testing.T) {
	for _, n := range []int{2, 3, 10, 100, 500} {
		edges := randTree(n, int64(n))
		s := int32(n / 3)
		d := BuildSequential(n, edges, s)
		checkDendrogram(t, d, edges)
		got := d.ReachabilityPlot()
		want := PrimOrder(n, edges, s)
		if len(got) != len(want) {
			t.Fatalf("plot length %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Idx != want[i].Idx {
				t.Fatalf("n=%d: plot order differs at %d: %d vs %d", n, i, got[i].Idx, want[i].Idx)
			}
			if i > 0 && math.Abs(got[i].H-want[i].H) > 1e-12 {
				t.Fatalf("n=%d: plot height differs at %d: %v vs %v", n, i, got[i].H, want[i].H)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{2, 3, 17, 100, 1000, 5000} {
		edges := randTree(n, int64(n)*7)
		s := int32(0)
		ds := BuildSequential(n, edges, s)
		// Force the parallel path with a small threshold.
		dp := BuildParallelThreshold(n, append([]mst.Edge(nil), edges...), s, 8)
		checkDendrogram(t, dp, edges)
		gotP := dp.ReachabilityPlot()
		gotS := ds.ReachabilityPlot()
		for i := range gotS {
			if gotP[i].Idx != gotS[i].Idx {
				t.Fatalf("n=%d: parallel plot differs from sequential at %d (%d vs %d)",
					n, i, gotP[i].Idx, gotS[i].Idx)
			}
			if i > 0 && gotP[i].H != gotS[i].H {
				t.Fatalf("n=%d: parallel plot height differs at %d", n, i)
			}
		}
	}
}

func TestParallelOnEMSTWithTies(t *testing.T) {
	// Mutual reachability MSTs have many tied weights; the shared total
	// order must keep parallel == sequential == Prim.
	pts := randPoints(400, 2, 9)
	tr := kdtree.Build(pts, 1)
	cd := tr.CoreDistances(10)
	tr.AnnotateCoreDists(cd)
	edges := mst.MemoGFK(mst.Config{Tree: tr, Metric: kdtree.NewMutualReachability(tr), Sep: wspd.MutualUnreachable{}})
	for _, s := range []int32{0, 13, 399} {
		dp := BuildParallelThreshold(pts.N, append([]mst.Edge(nil), edges...), s, 16)
		want := PrimOrder(pts.N, edges, s)
		got := dp.ReachabilityPlot()
		for i := range want {
			if got[i].Idx != want[i].Idx {
				t.Fatalf("s=%d: plot order differs from Prim at %d", s, i)
			}
		}
	}
}

func TestParallelQuickProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, sRaw uint8) bool {
		n := 2 + int(nRaw)%200
		s := int32(int(sRaw) % n)
		edges := randTree(n, seed)
		dp := BuildParallelThreshold(n, append([]mst.Edge(nil), edges...), s, 4)
		want := PrimOrder(n, edges, s)
		got := dp.ReachabilityPlot()
		for i := range want {
			if got[i].Idx != want[i].Idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathGraphWorstCase(t *testing.T) {
	// Increasing weights along a path: the warm-up algorithm's worst case.
	n := 2000
	edges := make([]mst.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, mst.MakeEdge(int32(i-1), int32(i), float64(i)))
	}
	d := BuildParallelThreshold(n, append([]mst.Edge(nil), edges...), 0, 32)
	checkDendrogram(t, d, edges)
	plot := d.ReachabilityPlot()
	for i := range plot {
		if plot[i].Idx != int32(i) {
			t.Fatalf("path graph plot out of order at %d", i)
		}
	}
}

func TestSizesAndParents(t *testing.T) {
	n := 300
	edges := randTree(n, 5)
	d := BuildSequential(n, edges, 0)
	sz := d.Sizes()
	if sz[d.Root] != int32(n) {
		t.Fatalf("root size %d, want %d", sz[d.Root], n)
	}
	par := d.Parents()
	if par[d.Root] != -1 {
		t.Fatal("root has a parent")
	}
	for x := n; x < 2*n-1; x++ {
		l, r := d.Children(int32(x))
		if par[l] != int32(x) || par[r] != int32(x) {
			t.Fatal("parent pointers inconsistent with children")
		}
		if sz[x] != sz[l]+sz[r] {
			t.Fatal("size not additive")
		}
	}
}

func TestCutterMatchesCutTree(t *testing.T) {
	pts := randPoints(200, 2, 12)
	edges := emstOf(pts)
	c := NewCutter(pts.N, edges, nil)
	for _, eps := range []float64{0, 1, 3, 10, 1e9} {
		a := c.CutAt(eps)
		b := CutTree(pts.N, edges, nil, eps)
		if a.NumClusters != b.NumClusters {
			t.Fatalf("eps=%v: %d vs %d clusters", eps, a.NumClusters, b.NumClusters)
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("eps=%v: label mismatch at %d", eps, i)
			}
		}
	}
}

// TestCutTreeMatchesBruteForceDBSCANStar is the end-to-end semantics check:
// cutting the HDBSCAN* MST at eps must reproduce DBSCAN* exactly
// (same core points and same connected components of core points).
func TestCutTreeMatchesBruteForceDBSCANStar(t *testing.T) {
	pts := randPoints(150, 2, 13)
	minPts := 5
	tr := kdtree.Build(pts, 1)
	cd := tr.CoreDistances(minPts)
	tr.AnnotateCoreDists(cd)
	edges := mst.MemoGFK(mst.Config{Tree: tr, Metric: kdtree.NewMutualReachability(tr), Sep: wspd.MutualUnreachable{}})
	for _, eps := range []float64{0.5, 2, 5, 12, 40} {
		got := CutTree(pts.N, edges, cd, eps)
		want := bruteDBSCANStar(pts, minPts, eps)
		if !sameClustering(got, want) {
			t.Fatalf("eps=%v: clustering differs from brute-force DBSCAN*", eps)
		}
	}
}

// bruteDBSCANStar computes DBSCAN* by definition: core points are points
// with >= minPts neighbors within eps (inclusive, counting self); clusters
// are connected components of core points under eps-adjacency.
func bruteDBSCANStar(pts geometry.Points, minPts int, eps float64) Clustering {
	n := pts.N
	core := make([]bool, n)
	for i := 0; i < n; i++ {
		cnt := 0
		for j := 0; j < n; j++ {
			if pts.Dist(i, j) <= eps {
				cnt++
			}
		}
		core[i] = cnt >= minPts
	}
	uf := unionfind.New(n)
	for i := 0; i < n; i++ {
		if !core[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if core[j] && pts.Dist(i, j) <= eps {
				uf.Union(int32(i), int32(j))
			}
		}
	}
	labels := make([]int32, n)
	next := int32(0)
	id := map[int32]int32{}
	for i := 0; i < n; i++ {
		if !core[i] {
			labels[i] = -1
			continue
		}
		r := uf.Find(int32(i))
		c, ok := id[r]
		if !ok {
			c = next
			id[r] = c
			next++
		}
		labels[i] = c
	}
	return Clustering{Labels: labels, NumClusters: int(next)}
}

// sameClustering compares clusterings up to label renaming.
func sameClustering(a, b Clustering) bool {
	if len(a.Labels) != len(b.Labels) || a.NumClusters != b.NumClusters {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if (la == -1) != (lb == -1) {
			return false
		}
		if la == -1 {
			continue
		}
		if m, ok := fwd[la]; ok && m != lb {
			return false
		}
		if m, ok := bwd[lb]; ok && m != la {
			return false
		}
		fwd[la] = lb
		bwd[lb] = la
	}
	return true
}

func TestSingleLeafDendrogram(t *testing.T) {
	d := BuildSequential(1, nil, 0)
	if d.Root != 0 || d.NumInternal() != 0 {
		t.Fatal("singleton dendrogram malformed")
	}
	plot := d.ReachabilityPlot()
	if len(plot) != 1 || plot[0].Idx != 0 {
		t.Fatal("singleton plot malformed")
	}
}

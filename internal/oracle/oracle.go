// Package oracle provides brute-force reference implementations used by
// the differential test suites: a dense Prim MST over an arbitrary
// distance function, O(n² log n) core distances under any metric kernel,
// dendrogram merge-height extraction, and a BFS spanning-forest check.
// None of it touches the k-d tree, the WSPD, the filter-Kruskal
// machinery, or the parallel scheduler, so agreement between an oracle
// result and a pipeline result exercises every layer of the optimized
// path.
package oracle

import (
	"math"
	"sort"

	"parclust/internal/geometry"
	"parclust/internal/metric"
	"parclust/internal/mst"
)

// PrimMST computes an MST of the complete graph on n points under dist
// with O(n²) work, breaking weight ties by the library's shared edge
// order. It delegates to mst.PrimDense — a from-the-definition dense Prim
// that shares only the Edge total order with the pipelines under test (no
// spatial pruning, no WSPD, no parallelism).
func PrimMST(n int, dist func(i, j int32) float64) []mst.Edge {
	return mst.PrimDense(n, dist)
}

// Dist returns the metric distance function over a point set, the input to
// PrimMST for plain (non-density) MSTs.
func Dist(pts geometry.Points, m metric.Metric) func(i, j int32) float64 {
	return func(i, j int32) float64 {
		return m.Dist(pts.At(int(i)), pts.At(int(j)))
	}
}

// CoreDistances computes the distance from each point to its minPts-th
// nearest neighbor (counting the point itself) by sorting each point's
// full distance row — O(n² log n), no spatial index.
func CoreDistances(pts geometry.Points, minPts int, m metric.Metric) []float64 {
	cd := make([]float64, pts.N)
	if minPts <= 1 {
		return cd
	}
	k := minPts
	if k > pts.N {
		k = pts.N
	}
	for i := 0; i < pts.N; i++ {
		row := make([]float64, pts.N)
		for j := 0; j < pts.N; j++ {
			row[j] = m.Dist(pts.At(i), pts.At(j))
		}
		sort.Float64s(row)
		cd[i] = row[k-1]
	}
	return cd
}

// MutualReachability returns the dense HDBSCAN* mutual reachability
// distance d_m(i,j) = max{cd(i), cd(j), d(i,j)} under the kernel, with
// core distances computed by brute force.
func MutualReachability(pts geometry.Points, minPts int, m metric.Metric) func(i, j int32) float64 {
	cd := CoreDistances(pts, minPts, m)
	return func(i, j int32) float64 {
		d := m.Dist(pts.At(int(i)), pts.At(int(j)))
		return math.Max(d, math.Max(cd[i], cd[j]))
	}
}

// MergeHeights returns the single-linkage dendrogram merge heights implied
// by a spanning tree: the sorted multiset of its edge weights. Two
// spanning trees of the same graph produce identical height multisets iff
// they induce the same single-linkage dendrogram heights, so comparing
// these vectors cross-checks dendrogram construction without comparing
// tree topology (which may legitimately differ under ties).
func MergeHeights(edges []mst.Edge) []float64 {
	h := make([]float64, len(edges))
	for i, e := range edges {
		h[i] = e.W
	}
	sort.Float64s(h)
	return h
}

// IsSpanningTree reports whether edges form a single connected spanning
// tree over n vertices, verified by BFS over the edge adjacency rather
// than union-find (the structure the pipeline itself uses).
func IsSpanningTree(n int, edges []mst.Edge) bool {
	if n == 0 {
		return len(edges) == 0
	}
	if len(edges) != n-1 {
		return false
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n || e.U == e.V {
			return false
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	visited := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visited++
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return visited == n
}

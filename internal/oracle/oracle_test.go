package oracle_test

// Differential tests: every MST variant in the pipeline, under every
// metric kernel, must agree with the brute-force Prim oracle on total
// weight and on the single-linkage merge-height multiset, across a sweep
// of dimensions, sizes (including the empty, singleton, and two-point
// degenerate cases), and random seeds.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/hdbscan"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/mst"
	"parclust/internal/oracle"
	"parclust/internal/wspd"
)

var sweepDims = []int{2, 3, 5}
var sweepSizes = []int{0, 1, 2, 17, 256}

func sweepSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2}
}

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

// preparePoints mirrors the public API's input preparation: the angular
// kernel sees unit-normalized rows.
func preparePoints(t *testing.T, pts geometry.Points, m metric.Metric) geometry.Points {
	t.Helper()
	if _, ok := m.(metric.Angular); !ok {
		return pts
	}
	norm, err := metric.NormalizeRows(pts)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return norm
}

func configFor(pts geometry.Points, m metric.Metric) mst.Config {
	// The tree slab-allocates its nodes and physically reorders the points
	// into kd-order, so every sweep below also differentially tests the
	// arena layout and the position<->original-id mapping against the
	// oracle (which runs on the untouched input points).
	tr := kdtree.BuildMetric(pts, 1, m)
	var em kdtree.Metric
	var sep wspd.Separation
	if metric.IsL2(m) {
		em, sep = kdtree.NewEuclidean(tr), wspd.Geometric{S: 2}
	} else {
		em, sep = kdtree.NewPointDist(tr), wspd.MetricGeometric{M: m, S: 2}
	}
	return mst.Config{Tree: tr, Metric: em, Sep: sep, Stats: mst.NewStats()}
}

// emstVariants enumerates every WSPD-based EMST implementation plus the
// single-tree Borůvka baseline, each taking a fresh config/tree.
func emstVariants() map[string]func(geometry.Points, metric.Metric) []mst.Edge {
	return map[string]func(geometry.Points, metric.Metric) []mst.Edge{
		"naive":       func(p geometry.Points, m metric.Metric) []mst.Edge { return mst.Naive(configFor(p, m)) },
		"gfk":         func(p geometry.Points, m metric.Metric) []mst.Edge { return mst.GFK(configFor(p, m)) },
		"memogfk":     func(p geometry.Points, m metric.Metric) []mst.Edge { return mst.MemoGFK(configFor(p, m)) },
		"wspdboruvka": func(p geometry.Points, m metric.Metric) []mst.Edge { return mst.WSPDBoruvka(configFor(p, m)) },
		"boruvka": func(p geometry.Points, m metric.Metric) []mst.Edge {
			return mst.Boruvka(kdtree.BuildMetric(p, 1, m), mst.NewStats())
		},
	}
}

func checkAgainstOracle(t *testing.T, label string, n int, got, want []mst.Edge) {
	t.Helper()
	if n <= 1 {
		if len(got) != 0 {
			t.Fatalf("%s: n=%d produced %d edges, want none", label, n, len(got))
		}
		return
	}
	if !oracle.IsSpanningTree(n, got) {
		t.Fatalf("%s: result is not a spanning tree (%d edges over %d points)", label, len(got), n)
	}
	gw, ww := mst.TotalWeight(got), mst.TotalWeight(want)
	if math.Abs(gw-ww) > 1e-9*(1+math.Abs(ww)) {
		t.Fatalf("%s: total weight %v, oracle %v", label, gw, ww)
	}
	gh, wh := oracle.MergeHeights(got), oracle.MergeHeights(want)
	for i := range gh {
		if math.Abs(gh[i]-wh[i]) > 1e-9*(1+math.Abs(wh[i])) {
			t.Fatalf("%s: merge height %d is %v, oracle %v", label, i, gh[i], wh[i])
		}
	}
}

func TestEMSTVariantsMatchPrimOracleAllMetrics(t *testing.T) {
	variants := emstVariants()
	for _, m := range metric.All() {
		for _, dim := range sweepDims {
			for _, n := range sweepSizes {
				for _, seed := range sweepSeeds(t) {
					pts := preparePoints(t, randPoints(n, dim, seed+int64(101*n+dim)), m)
					want := oracle.PrimMST(n, oracle.Dist(pts, m))
					for name, run := range variants {
						got := run(pts, m)
						label := fmt.Sprintf("%s/%s/dim=%d/n=%d/seed=%d", name, m.Name(), dim, n, seed)
						checkAgainstOracle(t, label, n, got, want)
					}
				}
			}
		}
	}
}

func TestHDBSCANVariantsMatchPrimOracleAllMetrics(t *testing.T) {
	algos := map[string]hdbscan.Algorithm{
		"memogfk":    hdbscan.MemoGFK,
		"gantao":     hdbscan.GanTao,
		"gantaofull": hdbscan.GanTaoFull,
	}
	minPts := 4
	for _, m := range metric.All() {
		for _, dim := range sweepDims {
			for _, n := range sweepSizes {
				if n > 0 && n < minPts {
					continue
				}
				for _, seed := range sweepSeeds(t) {
					pts := preparePoints(t, randPoints(n, dim, seed+int64(977*n+dim)), m)
					want := oracle.PrimMST(n, oracle.MutualReachability(pts, minPts, m))
					for name, algo := range algos {
						res := hdbscan.BuildMetric(pts, minPts, algo, m, nil)
						label := fmt.Sprintf("hdbscan-%s/%s/dim=%d/n=%d/seed=%d", name, m.Name(), dim, n, seed)
						checkAgainstOracle(t, label, n, res.MST, want)
					}
				}
			}
		}
	}
}

func TestCoreDistancesMatchOracleAllMetrics(t *testing.T) {
	for _, m := range metric.All() {
		for _, dim := range sweepDims {
			for _, minPts := range []int{1, 2, 5} {
				pts := preparePoints(t, randPoints(60, dim, int64(31*dim+minPts)), m)
				tr := kdtree.BuildMetric(pts, 1, m)
				got := tr.CoreDistances(minPts)
				want := oracle.CoreDistances(pts, minPts, m)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-12*(1+want[i]) {
						t.Fatalf("%s dim=%d minPts=%d: cd[%d]=%v, oracle %v",
							m.Name(), dim, minPts, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestReorderedTreeQueriesMatchOracleAllMetrics differentially tests the
// arena/reordered k-d tree's query surface — KNN, RangeQuery, RangeCount —
// against brute force over the untouched input points, under every kernel.
// Any break in the kd-order permutation or the position<->original-id
// mapping shows up as a wrong id or distance here.
func TestReorderedTreeQueriesMatchOracleAllMetrics(t *testing.T) {
	for _, m := range metric.All() {
		for _, dim := range sweepDims {
			pts := preparePoints(t, randPoints(150, dim, int64(53*dim)), m)
			tr := kdtree.BuildMetric(pts, 4, m)
			for q := 0; q < pts.N; q += 11 {
				nbrs := tr.KNN(int32(q), 5)
				dists := make([]float64, pts.N)
				for j := 0; j < pts.N; j++ {
					dists[j] = m.Dist(pts.At(q), pts.At(j))
				}
				for i, nb := range nbrs {
					// The reported id must realize the reported distance
					// against the ORIGINAL point set.
					if math.Abs(dists[nb.Idx]-nb.Dist) > 1e-12*(1+nb.Dist) {
						t.Fatalf("%s dim=%d q=%d: neighbor %d id %d does not realize dist %v",
							m.Name(), dim, q, i, nb.Idx, nb.Dist)
					}
				}
				// Pick a radius strictly between two distinct neighbor
				// distances so sqrt/re-square rounding cannot flip a
				// boundary point between the tree and the oracle.
				sorted := append([]float64(nil), dists...)
				sort.Float64s(sorted)
				r := -1.0
				for j := 4; j+1 < len(sorted); j++ {
					if sorted[j+1] > sorted[j]*(1+1e-9)+1e-300 {
						r = (sorted[j] + sorted[j+1]) / 2
						break
					}
				}
				if r < 0 {
					continue // all candidate radii tie; nothing to separate
				}
				want := 0
				for j := 0; j < pts.N; j++ {
					if dists[j] <= r {
						want++
					}
				}
				if got := tr.RangeCount(int32(q), r); got != want {
					t.Fatalf("%s dim=%d q=%d: RangeCount %d, oracle %d", m.Name(), dim, q, got, want)
				}
				if got := len(tr.RangeQuery(int32(q), r)); got != want {
					t.Fatalf("%s dim=%d q=%d: RangeQuery returned %d ids, oracle %d", m.Name(), dim, q, got, want)
				}
				for _, p := range tr.RangeQuery(int32(q), r) {
					if dists[p] > r {
						t.Fatalf("%s dim=%d q=%d: RangeQuery id %d outside ball", m.Name(), dim, q, p)
					}
				}
			}
		}
	}
}

// TestDegenerateInputsAllMetrics covers the inputs the random sweep never
// hits: exact duplicates, all-identical point sets, and collinear points.
func TestDegenerateInputsAllMetrics(t *testing.T) {
	shapes := map[string]geometry.Points{
		"duplicates":    duplicatePoints(40, 3),
		"all-identical": identicalPoints(30, 3),
		"collinear":     collinearPoints(50, 3),
	}
	variants := emstVariants()
	for _, m := range metric.All() {
		for shape, raw := range shapes {
			pts := preparePoints(t, raw, m)
			want := oracle.PrimMST(pts.N, oracle.Dist(pts, m))
			for name, run := range variants {
				got := run(pts, m)
				checkAgainstOracle(t, name+"/"+m.Name()+"/"+shape, pts.N, got, want)
			}
			wantH := oracle.PrimMST(pts.N, oracle.MutualReachability(pts, 3, m))
			res := hdbscan.BuildMetric(pts, 3, hdbscan.MemoGFK, m, nil)
			checkAgainstOracle(t, "hdbscan/"+m.Name()+"/"+shape, pts.N, res.MST, wantH)
		}
	}
}

func duplicatePoints(n, dim int) geometry.Points {
	rng := rand.New(rand.NewSource(7))
	p := geometry.NewPoints(n, dim)
	for i := 0; i < n; i += 2 {
		row := p.At(i)
		for k := range row {
			row[k] = 1 + rng.Float64()*10
		}
		if i+1 < n {
			copy(p.At(i+1), row)
		}
	}
	return p
}

func identicalPoints(n, dim int) geometry.Points {
	p := geometry.NewPoints(n, dim)
	for i := 0; i < n; i++ {
		row := p.At(i)
		for k := range row {
			row[k] = 3.5
		}
	}
	return p
}

func collinearPoints(n, dim int) geometry.Points {
	p := geometry.NewPoints(n, dim)
	for i := 0; i < n; i++ {
		row := p.At(i)
		for k := range row {
			row[k] = 0.25 + float64(i)*float64(k+1)
		}
	}
	return p
}

// TestMonotoneTransformsShareTopology verifies the monotone-transform
// argument the SqL2 and Angular kernels rest on: the SqL2 MST must be the
// L2 MST with squared weights.
func TestMonotoneTransformsShareTopology(t *testing.T) {
	pts := randPoints(80, 3, 5)
	l2 := mst.MemoGFK(configFor(pts, metric.L2{}))
	sq := mst.MemoGFK(configFor(pts, metric.SqL2{}))
	sumSq := 0.0
	for _, e := range l2 {
		sumSq += e.W * e.W
	}
	if math.Abs(mst.TotalWeight(sq)-sumSq) > 1e-9*(1+sumSq) {
		t.Fatalf("sql2 total %v, want sum of squared l2 weights %v", mst.TotalWeight(sq), sumSq)
	}
}

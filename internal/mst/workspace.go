package mst

import "parclust/internal/unionfind"

// Workspace holds the reusable per-round buffers of the MST algorithms so
// steady-state Borůvka/filter-Kruskal rounds allocate nothing. A zero
// Workspace is ready to use; buffers grow lazily to the point count and are
// reused across rounds (and across runs when the caller passes the same
// Workspace through Config.WS). A Workspace serves one run at a time.
type Workspace struct {
	uf   *unionfind.UF
	comp []int32 // per-position union-find labels (RefreshComponentsInto)
	cand []Edge  // Borůvka: per-point best outgoing edge
	best []int32 // dense per-component min-reduction slots (candidate index)
	out  []Edge  // accepted MST edges

	batch   []Edge    // GFK: per-round Kruskal batch
	pairs   []gfkPair // GFK: surviving-pair buffer (ping-pong with scratch)
	scratch []gfkPair // GFK: stable-partition scratch
}

// NewWorkspace returns an empty workspace; buffers are sized on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow sizes the shared buffers for a run over n points and resets the
// union-find and the reduction slots. A recycled union-find larger than n
// is reset to a logical size of n, so component counting (and the
// Components() <= 1 round-termination checks) see exactly the active
// points.
func (w *Workspace) grow(n int) {
	if w.uf == nil || w.uf.Len() < n {
		w.uf = unionfind.New(n)
	} else {
		w.uf.ResetN(n)
	}
	if cap(w.comp) < n {
		w.comp = make([]int32, n)
		w.cand = make([]Edge, n)
		w.best = make([]int32, n)
	}
	w.comp = w.comp[:n]
	w.cand = w.cand[:n]
	w.best = w.best[:n]
	for i := range w.best {
		w.best[i] = -1
	}
	if cap(w.out) < n {
		w.out = make([]Edge, 0, n)
	}
	w.out = w.out[:0]
}

// growPairs sizes the GFK pair buffers for npairs WSPD pairs.
func (w *Workspace) growPairs(npairs int) {
	if cap(w.pairs) < npairs {
		w.pairs = make([]gfkPair, npairs)
		w.scratch = make([]gfkPair, npairs)
	}
	w.pairs = w.pairs[:npairs]
	w.scratch = w.scratch[:npairs]
	if w.batch == nil {
		w.batch = make([]Edge, 0, 64)
	}
}

// finish copies the accepted edges out of the workspace (so a reused
// Workspace never aliases a returned result), rewriting endpoints from
// kd-order positions to original ids and re-canonicalizing U < V.
func (w *Workspace) finish(orig []int32) []Edge {
	out := make([]Edge, len(w.out))
	for i, e := range w.out {
		out[i] = MakeEdge(orig[e.U], orig[e.V], e.W)
	}
	return out
}

package mst

import (
	"math"

	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
	"parclust/internal/wspd"
)

// WSPDBoruvka computes the MST with Borůvka rounds over the WSPD's BCCP
// edges, the structure of the paper's Appendix B algorithm: each round,
// every component selects its lightest outgoing BCCP edge and the selected
// edges are merged, so only O(log n) rounds are needed and no global edge
// sort is performed. (Appendix B additionally uses a subquadratic BCCP
// subroutine, which the paper notes is impractical with no implementations;
// here BCCPs are computed exactly and cached, as in the other algorithms.)
func WSPDBoruvka(cfg Config) []Edge {
	t := cfg.Tree
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	var raw []wspdPairList
	cfg.Stats.Time("wspd", func() {
		raw = decomposePairs(cfg)
	})
	cfg.Stats.AddPairs(int64(len(raw)))
	cfg.Stats.NotePeak(int64(len(raw)))

	uf := unionfind.New(n)
	out := make([]Edge, 0, n-1)
	pairs := raw
	for uf.Components() > 1 {
		cfg.Stats.AddRound()
		comp := t.RefreshComponents(uf)

		// Compute (and cache) the BCCP of every surviving pair.
		cfg.Stats.Time("bccp", func() {
			parallel.For(len(pairs), 4, func(i int) {
				if pairs[i].res.U < 0 {
					pairs[i].res = kdtree.BCCP(t, cfg.Metric, pairs[i].a, pairs[i].b)
					cfg.Stats.AddBCCP(1)
				}
			})
		})

		// Per-component lightest outgoing edge (sequential reduce; the
		// number of surviving pairs shrinks geometrically).
		best := make(map[int32]Edge, uf.Components())
		consider := func(c int32, e Edge) {
			if cur, ok := best[c]; !ok || Less(e, cur) {
				best[c] = e
			}
		}
		for i := range pairs {
			r := pairs[i].res
			e := MakeEdge(r.U, r.V, r.W)
			cu, cv := comp[e.U], comp[e.V]
			if cu == cv {
				continue
			}
			consider(cu, e)
			consider(cv, e)
		}
		if len(best) == 0 {
			panic("mst: WSPDBoruvka stalled before the MST completed")
		}
		for _, e := range best {
			if uf.Union(e.U, e.V) {
				out = append(out, e)
			}
		}
		// Filter pairs that are now internal to one component.
		t.RefreshComponents(uf)
		pairs = parallel.Filter(pairs, func(p wspdPairList) bool { return !connected(p.a, p.b) })
	}
	parallel.Sort(out, Less)
	return out
}

type wspdPairList struct {
	a, b *kdtree.Node
	res  kdtree.BCCPResult
}

func decomposePairs(cfg Config) []wspdPairList {
	raw := wspd.Decompose(cfg.Tree, cfg.Sep)
	out := make([]wspdPairList, len(raw))
	parallel.For(len(raw), 0, func(i int) {
		out[i] = wspdPairList{a: raw[i].A, b: raw[i].B, res: kdtree.BCCPResult{U: -1, V: -1, W: math.NaN()}}
	})
	return out
}

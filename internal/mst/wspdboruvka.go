package mst

import (
	"math"
	"sync/atomic"
	"time"

	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// WSPDBoruvka computes the MST with Borůvka rounds over the WSPD's BCCP
// edges, the structure of the paper's Appendix B algorithm: each round,
// every component selects its lightest outgoing BCCP edge and the selected
// edges are merged, so only O(log n) rounds are needed and no global edge
// sort is performed. (Appendix B additionally uses a subquadratic BCCP
// subroutine, which the paper notes is impractical with no implementations;
// here BCCPs are computed exactly and cached, as in the other algorithms.)
//
// Per-component selection runs as a dense write-min reduction into
// workspace arrays and surviving pairs are compacted in place, so
// steady-state rounds allocate nothing (pinned by
// TestWSPDBoruvkaRoundAllocs). The returned edges carry original ids.
func WSPDBoruvka(cfg Config) []Edge {
	t := cfg.Tree
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	var pairs []wspdPairList
	cfg.Stats.Time("wspd", func() {
		pairs = decomposePairs(cfg)
	})
	cfg.Stats.AddPairs(int64(len(pairs)))
	cfg.Stats.NotePeak(int64(len(pairs)))

	ws := cfg.WS
	if ws == nil {
		ws = NewWorkspace()
	}
	r := newWSPDBoruvkaRun(cfg, ws, pairs)
	for r.round() {
	}
	out := ws.finish(t.Orig)
	parallel.Sort(out, Less)
	return out
}

type wspdPairList struct {
	a, b *kdtree.Node
	res  kdtree.BCCPResult
}

func (p *wspdPairList) edge() Edge { return MakeEdge(p.res.U, p.res.V, p.res.W) }

func decomposePairs(cfg Config) []wspdPairList {
	raw := wspd.DecomposeCancel(cfg.Tree, cfg.Sep, cfg.Abort)
	out := make([]wspdPairList, len(raw))
	parallel.For(len(raw), 0, func(i int) {
		out[i] = wspdPairList{a: raw[i].A, b: raw[i].B, res: kdtree.BCCPResult{U: -1, V: -1, W: math.NaN()}}
	})
	return out
}

// wspdBoruvkaRun carries one WSPD-Borůvka execution: the surviving pairs,
// the dense reduction slots, and the pre-built round bodies.
type wspdBoruvkaRun struct {
	cfg   Config
	ws    *Workspace
	pairs []wspdPairList

	bccpBody   func(lo, hi int)
	reduceBody func(lo, hi int)
}

func newWSPDBoruvkaRun(cfg Config, ws *Workspace, pairs []wspdPairList) *wspdBoruvkaRun {
	ws.grow(cfg.Tree.Pts.N)
	r := &wspdBoruvkaRun{cfg: cfg, ws: ws, pairs: pairs}
	r.bccpBody = func(lo, hi int) {
		cfg.Abort.Check()
		for i := lo; i < hi; i++ {
			if r.pairs[i].res.U < 0 {
				r.pairs[i].res = kdtree.BCCP(cfg.Tree, cfg.Metric, r.pairs[i].a, r.pairs[i].b)
				cfg.Stats.AddBCCP(1)
			}
		}
	}
	r.reduceBody = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := r.pairs[i].edge()
			cu, cv := ws.comp[e.U], ws.comp[e.V]
			if cu == cv {
				continue
			}
			casMinPair(ws.best, r.pairs, cu, int32(i))
			casMinPair(ws.best, r.pairs, cv, int32(i))
		}
	}
	return r
}

// casMinPair write-mins pair index i into component c's slot under the
// edge total order (deterministic for any interleaving).
func casMinPair(best []int32, pairs []wspdPairList, c, i int32) {
	slot := &best[c]
	ei := pairs[i].edge()
	for {
		cur := atomic.LoadInt32(slot)
		if cur >= 0 && !Less(ei, pairs[cur].edge()) {
			return
		}
		if atomic.CompareAndSwapInt32(slot, cur, i) {
			return
		}
	}
}

func (r *wspdBoruvkaRun) round() bool {
	ws := r.ws
	cfg := r.cfg
	if ws.uf.Components() <= 1 {
		return false
	}
	cfg.Abort.Check()
	cfg.Stats.AddRound()
	cfg.Tree.RefreshComponentsInto(ws.uf, ws.comp)

	// Compute (and cache) the BCCP of every surviving pair.
	start := time.Now()
	parallel.ForRange(len(r.pairs), 4, r.bccpBody)
	cfg.Stats.AddPhase("bccp", time.Since(start))

	// Per-component lightest outgoing edge via dense write-min, then merge.
	parallel.ForRange(len(r.pairs), 256, r.reduceBody)
	n := cfg.Tree.Pts.N
	merged := false
	for c := 0; c < n; c++ {
		pi := ws.best[c]
		if pi < 0 {
			continue
		}
		ws.best[c] = -1
		e := r.pairs[pi].edge()
		if ws.uf.Union(e.U, e.V) {
			ws.out = append(ws.out, e)
			merged = true
		} else {
			merged = true // duplicate selection still witnesses an outgoing edge
		}
	}
	if !merged {
		panic("mst: WSPDBoruvka stalled before the MST completed")
	}
	// Filter pairs that are now internal to one component, in place.
	cfg.Tree.RefreshComponentsInto(ws.uf, ws.comp)
	w := 0
	for i := range r.pairs {
		if !connected(r.pairs[i].a, r.pairs[i].b) {
			r.pairs[w] = r.pairs[i]
			w++
		}
	}
	r.pairs = r.pairs[:w]
	return true
}

package mst

import (
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// KruskalBatch runs one Kruskal pass over a batch of candidate edges:
// it sorts the batch in parallel by the shared total order and then scans
// it, unioning endpoints and appending accepted edges to out. Batches must
// arrive in non-decreasing weight ranges for the overall result to be an
// MST (which the GFK round structure guarantees).
func KruskalBatch(edges []Edge, uf *unionfind.UF, out []Edge) []Edge {
	parallel.Sort(edges, Less)
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out
}

// Kruskal computes an MST (or spanning forest) of the given edge list over
// n vertices, returning the accepted edges in weight order. The input
// slice is sorted in place — every caller in this module owns its edge
// list (Naive and ApproxOPTICS build theirs immediately beforehand), so
// the old defensive full-slice copy was pure overhead; callers that need
// the original order must copy before calling.
func Kruskal(n int, edges []Edge) []Edge {
	uf := unionfind.New(n)
	return KruskalBatch(edges, uf, make([]Edge, 0, n-1))
}

package mst

import (
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// KruskalBatch runs one Kruskal pass over a batch of candidate edges:
// it sorts the batch in parallel by the shared total order and then scans
// it, unioning endpoints and appending accepted edges to out. Batches must
// arrive in non-decreasing weight ranges for the overall result to be an
// MST (which the GFK round structure guarantees).
func KruskalBatch(edges []Edge, uf *unionfind.UF, out []Edge) []Edge {
	parallel.Sort(edges, Less)
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out
}

// Kruskal computes an MST (or spanning forest) of the given edge list over
// n vertices, returning the accepted edges in weight order.
func Kruskal(n int, edges []Edge) []Edge {
	uf := unionfind.New(n)
	return KruskalBatch(append([]Edge(nil), edges...), uf, make([]Edge, 0, n-1))
}

// Package mst implements the paper's minimum spanning tree algorithms over
// well-separated pair decompositions: EMST-Naive, the parallel
// GeoFilterKruskal (Algorithm 2), the memory-optimized MemoGFK
// (Algorithm 3), a single-tree Borůvka baseline, and a dense Prim oracle
// used for validation. All algorithms are parameterized by a kdtree.Metric,
// so they also compute the HDBSCAN* MST of the mutual reachability graph.
package mst

import "math"

// Edge is a weighted undirected edge between point indices U < V.
type Edge struct {
	U, V int32
	W    float64
}

// MakeEdge returns the canonical (U < V) edge.
func MakeEdge(u, v int32, w float64) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v, W: w}
}

// Less is the total order on edges shared by Kruskal, Prim, and the
// dendrogram algorithms: weight first, then endpoint ids. Using one total
// order everywhere makes tie handling deterministic, so the reachability
// plot derived from the dendrogram matches the Prim oracle exactly.
func Less(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// TotalWeight sums edge weights.
func TotalWeight(edges []Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.W
	}
	return s
}

// PrimDense computes an MST of the complete graph on n points under dist
// with O(n^2) work. It is the validation oracle for every other algorithm
// in this package. Ties are broken by the Less order above.
func PrimDense(n int, dist func(i, j int32) float64) []Edge {
	if n <= 1 {
		return nil
	}
	inTree := make([]bool, n)
	bestW := make([]float64, n)
	bestFrom := make([]int32, n)
	for i := range bestW {
		bestW[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := int32(1); j < int32(n); j++ {
		bestW[j] = dist(0, j)
		bestFrom[j] = 0
	}
	edges := make([]Edge, 0, n-1)
	for len(edges) < n-1 {
		pick := int32(-1)
		for j := int32(0); j < int32(n); j++ {
			if inTree[j] {
				continue
			}
			if pick < 0 {
				pick = j
				continue
			}
			a := MakeEdge(bestFrom[j], j, bestW[j])
			b := MakeEdge(bestFrom[pick], pick, bestW[pick])
			if Less(a, b) {
				pick = j
			}
		}
		inTree[pick] = true
		edges = append(edges, MakeEdge(bestFrom[pick], pick, bestW[pick]))
		for j := int32(0); j < int32(n); j++ {
			if inTree[j] {
				continue
			}
			w := dist(pick, j)
			if w < bestW[j] || (w == bestW[j] && Less(MakeEdge(pick, j, w), MakeEdge(bestFrom[j], j, bestW[j]))) {
				bestW[j] = w
				bestFrom[j] = pick
			}
		}
	}
	return edges
}

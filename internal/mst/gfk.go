package mst

import (
	"fmt"
	"math"
	"time"

	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// maxRounds caps filter-Kruskal rounds; beta doubles each round so any
// legitimate run finishes in O(log n) rounds. Exceeding the cap means an
// internal invariant is broken.
const maxRounds = 200

// gfkPair is a WSPD pair with its lazily computed, cached BCCP. Pairs are
// stored by value in flat slices (no per-pair heap allocation); rounds
// shuffle them between the workspace's two buffers with stable in-place
// partitions.
type gfkPair struct {
	a, b *kdtree.Node
	res  kdtree.BCCPResult // res.U < 0 when not yet computed
}

func (p *gfkPair) card() int { return p.a.Size() + p.b.Size() }

func connected(a, b *kdtree.Node) bool { return a.Comp >= 0 && a.Comp == b.Comp }

// GFK is the parallel GeoFilterKruskal algorithm (Algorithm 2). It
// materializes the full WSPD once, then proceeds in rounds: pairs with
// cardinality at most beta whose BCCP is no heavier than the lightest
// possible edge of the remaining pairs are resolved with Kruskal; pairs
// whose endpoints become connected are filtered out; beta doubles.
// Steady-state rounds reuse the workspace buffers; the only per-round
// allocations are the small constant from the sort and reduction
// scaffolding (pinned by TestGFKRoundAllocs). Returned edges carry
// original ids in Kruskal acceptance order.
func GFK(cfg Config) []Edge {
	t := cfg.Tree
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	var raw []wspd.Pair
	cfg.Stats.Time("wspd", func() {
		raw = wspd.DecomposeCancel(t, cfg.Sep, cfg.Abort)
	})
	cfg.Stats.AddPairs(int64(len(raw)))
	cfg.Stats.NotePeak(int64(len(raw)))

	ws := cfg.WS
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.grow(n)
	ws.growPairs(len(raw))
	s := ws.pairs
	parallel.For(len(raw), 0, func(i int) {
		s[i] = gfkPair{a: raw[i].A, b: raw[i].B, res: kdtree.BCCPResult{U: -1, V: -1, W: math.NaN()}}
	})

	r := newGFKRun(cfg, ws, s)
	beta := 2
	for round := 0; len(ws.out) < n-1; round++ {
		if round >= roundCap(cfg, n) {
			panic(fmt.Sprintf("mst: GFK exceeded %d rounds (n=%d, |S|=%d, |out|=%d)", maxRounds, n, len(r.s), len(ws.out)))
		}
		r.round(beta)
		if len(r.s) == 0 && len(ws.out) < n-1 {
			panic("mst: GFK ran out of pairs before completing the MST")
		}
		beta = nextBeta(cfg, beta)
	}
	return ws.finish(t.Orig)
}

// gfkRun is one GFK execution over the workspace's ping-pong pair buffers.
type gfkRun struct {
	cfg Config
	ws  *Workspace
	s   []gfkPair // surviving pairs, prefix of ws.pairs
	su  []gfkPair // large-cardinality side of the current split (ws.scratch)

	bccpBody func(lo, hi int)
	rhoBody  func(i int) float64
}

func newGFKRun(cfg Config, ws *Workspace, s []gfkPair) *gfkRun {
	r := &gfkRun{cfg: cfg, ws: ws, s: s}
	r.bccpBody = func(lo, hi int) {
		cfg.Abort.Check()
		for i := lo; i < hi; i++ {
			if r.s[i].res.U < 0 {
				r.s[i].res = kdtree.BCCP(cfg.Tree, cfg.Metric, r.s[i].a, r.s[i].b)
				cfg.Stats.AddBCCP(1)
			}
		}
	}
	r.rhoBody = func(i int) float64 {
		return cfg.Metric.NodeLB(r.su[i].a, r.su[i].b)
	}
	return r
}

func (r *gfkRun) round(beta int) {
	cfg, ws := r.cfg, r.ws
	cfg.Abort.Check()
	cfg.Stats.AddRound()

	// Line 4: stable partition by cardinality — small pairs stay in the
	// main buffer, large pairs move to the scratch buffer.
	wsm, wsc := 0, 0
	for i := range r.s {
		if r.s[i].card() <= beta {
			r.s[wsm] = r.s[i]
			wsm++
		} else {
			ws.scratch[wsc] = r.s[i]
			wsc++
		}
	}
	sl := r.s[:wsm]
	r.su = ws.scratch[:wsc]

	// Line 5: rho_hi lower-bounds every edge the large pairs can produce.
	rhoHi := math.Inf(1)
	if len(r.su) > 0 {
		_, rhoHi = parallel.ReduceMin(len(r.su), 0, r.rhoBody)
	}

	// Line 6: compute (and cache) BCCPs of the small pairs, then feed the
	// edges of those no heavier than rho_hi to Kruskal, compacting the
	// heavier remainder (S_l2) in place.
	r.s = sl // bccpBody indexes r.s
	start := time.Now()
	parallel.ForRange(len(sl), 4, r.bccpBody)
	cfg.Stats.AddPhase("bccp", time.Since(start))

	batch := ws.batch[:0]
	keep := 0
	for i := range sl {
		if sl[i].res.W <= rhoHi {
			batch = append(batch, MakeEdge(sl[i].res.U, sl[i].res.V, sl[i].res.W))
		} else {
			sl[keep] = sl[i]
			keep++
		}
	}
	ws.batch = batch
	sl2 := sl[:keep]

	// Lines 7-8: Kruskal on the batch.
	start = time.Now()
	ws.out = KruskalBatch(batch, ws.uf, ws.out)
	cfg.Stats.AddPhase("kruskal", time.Since(start))

	// Line 9: drop pairs whose sides are now in one component. The
	// survivors of S_l2 and S_u are compacted back into the main buffer.
	cfg.Tree.RefreshComponentsInto(ws.uf, ws.comp)
	w := 0
	main := ws.pairs
	for i := range sl2 {
		if !connected(sl2[i].a, sl2[i].b) {
			main[w] = sl2[i]
			w++
		}
	}
	for i := range r.su {
		if !connected(r.su[i].a, r.su[i].b) {
			main[w] = r.su[i]
			w++
		}
	}
	r.s = main[:w]
	cfg.Stats.NotePeak(int64(w))
}

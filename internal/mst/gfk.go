package mst

import (
	"fmt"
	"math"

	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
	"parclust/internal/wspd"
)

// maxRounds caps filter-Kruskal rounds; beta doubles each round so any
// legitimate run finishes in O(log n) rounds. Exceeding the cap means an
// internal invariant is broken.
const maxRounds = 200

// gfkPair is a WSPD pair with its lazily computed, cached BCCP.
type gfkPair struct {
	a, b *kdtree.Node
	res  kdtree.BCCPResult // res.U < 0 when not yet computed
}

func (p *gfkPair) card() int { return p.a.Size() + p.b.Size() }

func connected(a, b *kdtree.Node) bool { return a.Comp >= 0 && a.Comp == b.Comp }

// GFK is the parallel GeoFilterKruskal algorithm (Algorithm 2). It
// materializes the full WSPD once, then proceeds in rounds: pairs with
// cardinality at most beta whose BCCP is no heavier than the lightest
// possible edge of the remaining pairs are resolved with Kruskal; pairs
// whose endpoints become connected are filtered out; beta doubles.
func GFK(cfg Config) []Edge {
	t := cfg.Tree
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	var raw []wspd.Pair
	cfg.Stats.Time("wspd", func() {
		raw = wspd.Decompose(t, cfg.Sep)
	})
	cfg.Stats.AddPairs(int64(len(raw)))
	cfg.Stats.NotePeak(int64(len(raw)))
	s := make([]*gfkPair, len(raw))
	parallel.For(len(raw), 0, func(i int) {
		s[i] = &gfkPair{a: raw[i].A, b: raw[i].B, res: kdtree.BCCPResult{U: -1, V: -1, W: math.NaN()}}
	})

	uf := unionfind.New(n)
	out := make([]Edge, 0, n-1)
	beta := 2
	for round := 0; len(out) < n-1; round++ {
		if round >= roundCap(cfg, n) {
			panic(fmt.Sprintf("mst: GFK exceeded %d rounds (n=%d, |S|=%d, |out|=%d)", maxRounds, n, len(s), len(out)))
		}
		cfg.Stats.AddRound()

		// Line 4: partition by cardinality.
		sl, su := parallel.Split(s, func(p *gfkPair) bool { return p.card() <= beta })

		// Line 5: rho_hi lower-bounds every edge the large pairs can produce.
		rhoHi := math.Inf(1)
		if len(su) > 0 {
			_, rhoHi = parallel.ReduceMin(len(su), 0, func(i int) float64 {
				return cfg.Metric.NodeLB(su[i].a, su[i].b)
			})
		}

		// Line 6: compute (and cache) BCCPs of the small pairs, then keep
		// those no heavier than rho_hi.
		cfg.Stats.Time("bccp", func() {
			parallel.For(len(sl), 4, func(i int) {
				if sl[i].res.U < 0 {
					sl[i].res = kdtree.BCCP(t, cfg.Metric, sl[i].a, sl[i].b)
					cfg.Stats.AddBCCP(1)
				}
			})
		})
		sl1, sl2 := parallel.Split(sl, func(p *gfkPair) bool { return p.res.W <= rhoHi })

		// Lines 7-8: Kruskal on the batch.
		batch := make([]Edge, len(sl1))
		parallel.For(len(sl1), 0, func(i int) {
			batch[i] = MakeEdge(sl1[i].res.U, sl1[i].res.V, sl1[i].res.W)
		})
		cfg.Stats.Time("kruskal", func() {
			out = KruskalBatch(batch, uf, out)
		})

		// Line 9: drop pairs whose sides are now in one component.
		t.RefreshComponents(uf)
		rest := append(sl2, su...)
		s = parallel.Filter(rest, func(p *gfkPair) bool { return !connected(p.a, p.b) })
		cfg.Stats.NotePeak(int64(len(s)))

		if len(s) == 0 && len(out) < n-1 {
			panic("mst: GFK ran out of pairs before completing the MST")
		}
		beta = nextBeta(cfg, beta)
	}
	return out
}

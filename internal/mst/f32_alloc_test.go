package mst

import (
	"testing"

	"parclust/internal/kdtree"
)

// TestF32BoruvkaRoundAllocs pins the float32 Borůvka round at zero
// steady-state heap allocations: nearestOutside32 lane-scans the SoA panels
// into stack buffers and everything else lives in the Workspace, matching
// the float64 pin in TestBoruvkaRoundAllocs.
func TestF32BoruvkaRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(512, 16, 44)
	tr := kdtree.Build(pts, 1)
	if err := tr.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	r := newBoruvkaRun(tr, nil, ws)
	if !r.round() { // warm up: first round sizes nothing (grow already did)
		t.Fatal("float32 Borůvka finished in zero rounds")
	}
	allocs := testing.AllocsPerRun(10, func() { r.round() })
	if allocs != 0 {
		t.Fatalf("steady-state float32 Borůvka round allocated %v times, want 0", allocs)
	}
}

package mst

import (
	"math"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/wspd"
)

// metricConfig builds a Config the way the engine does for a non-L2
// kernel: PointDist edge weights and metric-aware well-separation, which
// routes GFK/MemoGFK through their generic (non-monomorphized) traversals.
func metricConfig(pts geometry.Points, m metric.Metric) Config {
	tr := kdtree.BuildMetric(pts, 1, m)
	return Config{
		Tree:   tr,
		Metric: kdtree.NewPointDist(tr),
		Sep:    wspd.MetricGeometric{M: m, S: 2},
		Stats:  NewStats(),
	}
}

// primDense is the oracle: O(n^2) Prim over the raw metric.
func primDense(pts geometry.Points, m metric.Metric) float64 {
	n := pts.N
	inTree := make([]bool, n)
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	best[0] = 0
	total := 0.0
	for range n {
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u < 0 || best[v] < best[u]) {
				u = v
			}
		}
		inTree[u] = true
		total += best[u]
		pu := pts.Data[u*pts.Dim : (u+1)*pts.Dim]
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := m.Dist(pu, pts.Data[v*pts.Dim:(v+1)*pts.Dim]); d < best[v] {
					best[v] = d
				}
			}
		}
	}
	return total
}

// TestGenericMetricMSTAgreesWithOracle runs every WSPD-based algorithm
// through the generic-metric code path (the engine's route for l1/linf/
// angular kernels) and checks the MST weight against dense Prim. The
// in-package oracle sweep covers this path through the engine; this test
// pins it at the mst layer where the generic getRho/getPairs traversals
// live.
func TestGenericMetricMSTAgreesWithOracle(t *testing.T) {
	algos := map[string]func(Config) []Edge{
		"naive":       Naive,
		"gfk":         GFK,
		"memogfk":     MemoGFK,
		"wspdboruvka": WSPDBoruvka,
	}
	for _, m := range []metric.Metric{metric.L1{}, metric.LInf{}} {
		pts := randPoints(300, 3, 29)
		want := primDense(pts, m)
		for name, algo := range algos {
			edges := algo(metricConfig(pts, m))
			checkSpanningTree(t, pts.N, edges)
			got := TotalWeight(edges)
			if math.Abs(got-want) > 1e-9*want {
				t.Fatalf("%s under %T: weight %v, oracle %v", name, m, got, want)
			}
		}
	}
}

//go:build !race

package mst

const raceEnabled = false

package mst

import (
	"fmt"
	"math"

	"parclust/internal/kdtree"
	"parclust/internal/parallel"
)

// MemoGFK is the memory-optimized parallel GeoFilterKruskal (Algorithm 3).
// Instead of materializing the WSPD, each round performs two pruned k-d tree
// traversals: GetRho computes the weight ceiling rho_hi for the round (the
// minimum node-pair lower bound over not-yet-connected well-separated pairs
// with cardinality above beta), and GetPairs retrieves only the pairs whose
// BCCP lands in [rho_lo, rho_hi), feeding their edges to Kruskal. The
// union-find and component labels live in the reusable workspace; the
// retrieved batches are the only per-round allocations. Returned edges
// carry original ids in Kruskal acceptance order.
func MemoGFK(cfg Config) []Edge {
	t := cfg.Tree
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	ws := cfg.WS
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.grow(n)
	// The two L2-backed metrics take monomorphized traversals with every
	// bound (and the rho_lo/rho_hi window) in squared space; squaring is
	// monotone, so the round structure and retrieved pairs are identical.
	sq := sqConfigFor(cfg)
	if sq != nil {
		// In float32 mode the small-pair scan cutoff replaces the deep tail
		// of the retrieval recursion; it needs the per-position component
		// labels (refreshed into this same array every round).
		if f := t.F32(); f != nil && f.Kern.Sq {
			sq.brute = true
			sq.comp = ws.comp
		}
	}
	beta := 2
	rhoLo := 0.0
	for round := 0; len(ws.out) < n-1; round++ {
		if round >= roundCap(cfg, n) {
			panic(fmt.Sprintf("mst: MemoGFK exceeded %d rounds (n=%d, |out|=%d)", maxRounds, n, len(ws.out)))
		}
		cfg.Abort.Check()
		cfg.Stats.AddRound()
		t.RefreshComponentsInto(ws.uf, ws.comp)

		// Line 4: rho_hi via the first pruned traversal.
		var rhoHi float64
		cfg.Stats.Time("wspd", func() {
			if sq != nil {
				rhoHi = getRhoSq(sq, t.Root, beta)
			} else {
				rhoHi = getRho(cfg, t.Root, beta)
			}
		})

		if rhoHi > rhoLo {
			// Line 5: retrieve only pairs with BCCP in [rho_lo, rho_hi).
			var batch []Edge
			cfg.Stats.Time("wspd", func() {
				if sq != nil {
					batch = getPairsNodeSq(sq, t.Root, beta, rhoLo, rhoHi)
				} else {
					batch = getPairsNode(cfg, t.Root, beta, rhoLo, rhoHi)
				}
			})
			cfg.Stats.AddPairs(int64(len(batch)))
			cfg.Stats.NotePeak(int64(len(batch)))
			// Lines 6-7.
			cfg.Stats.Time("kruskal", func() {
				ws.out = KruskalBatch(batch, ws.uf, ws.out)
			})
			if !math.IsInf(rhoHi, 1) {
				rhoLo = rhoHi
			} else if len(batch) == 0 && len(ws.out) < n-1 {
				panic("mst: MemoGFK stalled with an incomplete MST")
			}
		}
		beta = nextBeta(cfg, beta)
	}
	return ws.finish(t.Orig)
}

// getRho traverses the implicit WSPD and returns the minimum metric lower
// bound over well-separated, not-yet-connected pairs with cardinality
// greater than beta (+Inf when none exist).
func getRho(cfg Config, root *kdtree.Node, beta int) float64 {
	rho := parallel.NewAtomicMinFloat64(math.Inf(1))
	getRhoNode(cfg, root, beta, rho)
	return rho.Load()
}

func getRhoNode(cfg Config, a *kdtree.Node, beta int, rho *parallel.AtomicMinFloat64) {
	if a.IsLeaf() || a.Size() <= 1 {
		return
	}
	if a.Comp >= 0 { // whole subtree already in one component
		return
	}
	if a.Size() <= beta { // every descendant pair has cardinality <= beta
		return
	}
	al, ar := cfg.Tree.LeftOf(a), cfg.Tree.RightOf(a)
	if a.Size() > spawnSize {
		cfg.Abort.Check()
		// Subtree traversals become stealable tasks; the split pair stays
		// on the current worker (work-first).
		var g parallel.Group
		g.Spawn(func() { getRhoNode(cfg, al, beta, rho) })
		g.Spawn(func() { getRhoNode(cfg, ar, beta, rho) })
		g.Run(func() { getRhoPair(cfg, al, ar, beta, rho) })
		g.Sync()
		return
	}
	getRhoNode(cfg, al, beta, rho)
	getRhoNode(cfg, ar, beta, rho)
	getRhoPair(cfg, al, ar, beta, rho)
}

func getRhoPair(cfg Config, p, q *kdtree.Node, beta int, rho *parallel.AtomicMinFloat64) {
	if connected(p, q) {
		return
	}
	if p.Size()+q.Size() <= beta {
		return // this pair and all of its descendants run this round
	}
	lb := cfg.Metric.NodeLB(p, q)
	if lb >= rho.Load() {
		return // descendants only have larger lower bounds
	}
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if cfg.Sep.WellSeparated(p, q) {
		rho.Min(lb)
		return
	}
	if p.IsLeaf() {
		p, q = q, p
	}
	pl, pr := cfg.Tree.LeftOf(p), cfg.Tree.RightOf(p)
	if p.Size()+q.Size() > spawnSize {
		cfg.Abort.Check()
		parallel.Do(
			func() { getRhoPair(cfg, pl, q, beta, rho) },
			func() { getRhoPair(cfg, pr, q, beta, rho) },
		)
		return
	}
	getRhoPair(cfg, pl, q, beta, rho)
	getRhoPair(cfg, pr, q, beta, rho)
}

// getPairsNode retrieves the edges of well-separated pairs whose BCCP falls
// in [rhoLo, rhoHi), pruning connected pairs and pairs whose bounds place
// them wholly outside the range (Figure 3).
func getPairsNode(cfg Config, a *kdtree.Node, beta int, rhoLo, rhoHi float64) []Edge {
	if a.IsLeaf() || a.Size() <= 1 || a.Comp >= 0 {
		return nil
	}
	al, ar := cfg.Tree.LeftOf(a), cfg.Tree.RightOf(a)
	var left, right, mid []Edge
	if a.Size() > spawnSize {
		cfg.Abort.Check()
		var g parallel.Group
		g.Spawn(func() { left = getPairsNode(cfg, al, beta, rhoLo, rhoHi) })
		g.Spawn(func() { right = getPairsNode(cfg, ar, beta, rhoLo, rhoHi) })
		g.Run(func() { mid = getPairsPair(cfg, al, ar, beta, rhoLo, rhoHi) })
		g.Sync()
	} else {
		left = getPairsNode(cfg, al, beta, rhoLo, rhoHi)
		right = getPairsNode(cfg, ar, beta, rhoLo, rhoHi)
		mid = getPairsPair(cfg, al, ar, beta, rhoLo, rhoHi)
	}
	// left is exclusively owned by this call, so extend it in place rather
	// than copying all three slices into a fresh buffer.
	if len(left) == 0 {
		if len(right) == 0 {
			return mid
		}
		return append(right, mid...)
	}
	out := append(left, right...)
	return append(out, mid...)
}

func getPairsPair(cfg Config, p, q *kdtree.Node, beta int, rhoLo, rhoHi float64) []Edge {
	if connected(p, q) {
		return nil
	}
	if cfg.Metric.NodeLB(p, q) >= rhoHi {
		return nil // BCCPs of this pair and its descendants are >= rhoHi
	}
	if cfg.Metric.NodeUB(p, q) < rhoLo {
		return nil // BCCPs of this pair and its descendants are < rhoLo
	}
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if cfg.Sep.WellSeparated(p, q) {
		res := kdtree.BCCP(cfg.Tree, cfg.Metric, p, q)
		cfg.Stats.AddBCCP(1)
		if res.W >= rhoLo && res.W < rhoHi {
			return []Edge{MakeEdge(res.U, res.V, res.W)}
		}
		return nil
	}
	if p.IsLeaf() {
		p, q = q, p
	}
	pl, pr := cfg.Tree.LeftOf(p), cfg.Tree.RightOf(p)
	var l, r []Edge
	if p.Size()+q.Size() > spawnSize {
		cfg.Abort.Check()
		parallel.Do(
			func() { l = getPairsPair(cfg, pl, q, beta, rhoLo, rhoHi) },
			func() { r = getPairsPair(cfg, pr, q, beta, rhoLo, rhoHi) },
		)
	} else {
		l = getPairsPair(cfg, pl, q, beta, rhoLo, rhoHi)
		r = getPairsPair(cfg, pr, q, beta, rhoLo, rhoHi)
	}
	return append(l, r...)
}

// spawnSize mirrors the WSPD spawning threshold.
const spawnSize = 1024

package mst

import (
	"testing"

	"parclust/internal/kdtree"
	"parclust/internal/wspd"
)

// Allocation regression tests for the cache-conscious layout work: the
// Borůvka-style algorithms keep all per-round state in a Workspace and
// pre-build their parallel round bodies, so a steady-state round must not
// touch the heap at all. testing.AllocsPerRun runs with GOMAXPROCS=1, which
// drives the parallel primitives through their inline sequential paths —
// exactly the configuration where stray per-round allocations would
// otherwise hide in scheduler noise.

func TestBoruvkaRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(512, 3, 42)
	tr := kdtree.Build(pts, 1)
	ws := NewWorkspace()
	r := newBoruvkaRun(tr, nil, ws)
	if !r.round() { // warm up: first round sizes nothing (grow already did)
		t.Fatal("Borůvka finished in zero rounds")
	}
	allocs := testing.AllocsPerRun(10, func() { r.round() })
	if allocs != 0 {
		t.Fatalf("steady-state Borůvka round allocated %v times, want 0", allocs)
	}
}

func TestWSPDBoruvkaRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(512, 3, 43)
	tr := kdtree.Build(pts, 1)
	cfg := Config{Tree: tr, Metric: kdtree.NewEuclidean(tr), Sep: wspd.Geometric{S: 2}}
	ws := NewWorkspace()
	r := newWSPDBoruvkaRun(cfg, ws, decomposePairs(cfg))
	if !r.round() {
		t.Fatal("WSPD-Borůvka finished in zero rounds")
	}
	allocs := testing.AllocsPerRun(10, func() { r.round() })
	if allocs != 0 {
		t.Fatalf("steady-state WSPD-Borůvka round allocated %v times, want 0", allocs)
	}
}

// TestGFKRoundAllocs pins GFK's per-round allocations to a small constant:
// the round itself runs over workspace buffers, but the Kruskal batch sort
// and the rho reduction scaffolding allocate a handful of descriptors per
// call. The bound is deliberately loose enough to be schedule-independent
// and tight enough to catch a regression back to per-pair or per-point
// allocation.
func TestGFKRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(512, 3, 44)
	tr := kdtree.Build(pts, 1)
	cfg := Config{Tree: tr, Metric: kdtree.NewEuclidean(tr), Sep: wspd.Geometric{S: 2}}
	ws := NewWorkspace()
	raw := wspd.Decompose(tr, cfg.Sep)
	ws.grow(pts.N)
	ws.growPairs(len(raw))
	for i := range raw {
		ws.pairs[i] = gfkPair{a: raw[i].A, b: raw[i].B, res: kdtree.BCCPResult{U: -1, V: -1, W: 0}}
	}
	r := newGFKRun(cfg, ws, ws.pairs)
	beta := 2
	r.round(beta) // warm up: grows ws.batch
	const maxAllocs = 16
	allocs := testing.AllocsPerRun(5, func() {
		beta *= 2
		r.round(beta)
	})
	if allocs > maxAllocs {
		t.Fatalf("steady-state GFK round allocated %v times, want <= %d", allocs, maxAllocs)
	}
}

// TestWorkspaceReuseAcrossRuns checks that a shared Config.WS is safe: a
// second run must not corrupt the first run's returned edges.
func TestWorkspaceReuseAcrossRuns(t *testing.T) {
	ws := NewWorkspace()
	pts1 := randPoints(200, 2, 7)
	pts2 := randPoints(300, 2, 8)
	cfg1 := euclidConfig(pts1)
	cfg1.WS = ws
	out1 := MemoGFK(cfg1)
	snapshot := append([]Edge(nil), out1...)
	cfg2 := euclidConfig(pts2)
	cfg2.WS = ws
	out2 := MemoGFK(cfg2)
	for i := range out1 {
		if out1[i] != snapshot[i] {
			t.Fatal("second run with a shared workspace mutated the first result")
		}
	}
	checkSpanningTree(t, pts2.N, out2)
	checkSpanningTree(t, pts1.N, out1)
}

package mst

import (
	"sync/atomic"
	"time"
)

// Stats collects the instrumentation the paper's experiments report:
// per-phase wall-clock times (Figure 8) and work/memory counters for the
// MemoGFK memory study. Counter fields are updated atomically; timer maps
// are only touched from the coordinating goroutine.
type Stats struct {
	// PairsMaterialized counts WSPD pairs actually stored in memory
	// (all pairs for Naive/GFK; only per-round S_l1 pairs for MemoGFK).
	PairsMaterialized int64
	// PeakPairsResident is the maximum number of pairs alive at once.
	PeakPairsResident int64
	// BCCPComputed counts bichromatic-closest-pair invocations.
	BCCPComputed int64
	// Rounds counts filter-Kruskal rounds.
	Rounds int64

	Phases map[string]time.Duration
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{Phases: make(map[string]time.Duration)} }

// AddPhase accumulates wall-clock time for a named phase.
func (s *Stats) AddPhase(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.Phases[name] += d
}

// Time runs f and accounts its duration under the named phase.
func (s *Stats) Time(name string, f func()) {
	if s == nil {
		f()
		return
	}
	start := time.Now()
	f()
	s.AddPhase(name, time.Since(start))
}

func (s *Stats) AddPairs(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.PairsMaterialized, n)
}

// NotePeak records the current number of resident pairs, keeping the max.
func (s *Stats) NotePeak(resident int64) {
	if s == nil {
		return
	}
	for {
		peak := atomic.LoadInt64(&s.PeakPairsResident)
		if resident <= peak || atomic.CompareAndSwapInt64(&s.PeakPairsResident, peak, resident) {
			return
		}
	}
}

func (s *Stats) AddBCCP(n int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.BCCPComputed, n)
}

func (s *Stats) AddRound() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.Rounds, 1)
}

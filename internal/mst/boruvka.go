package mst

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/unionfind"
)

// Boruvka computes the MST under the tree's metric with Borůvka rounds
// over a k-d tree: each round finds, for every point, its nearest point in
// a different union-find component (pruning subtrees that lie wholly in
// the point's component), reduces those candidates to one lightest
// outgoing edge per component, and merges. It stands in for the dual-tree
// Borůvka baseline (mlpack) that the paper's Table 3 compares against; run
// with GOMAXPROCS=1 it is the sequential baseline, and it parallelizes
// over points otherwise. The nearest-outside traversal is selected once
// per run: Euclidean trees take the squared-distance path.
func Boruvka(t *kdtree.Tree, stats *Stats) []Edge {
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	uf := unionfind.New(n)
	out := make([]Edge, 0, n-1)
	cand := make([]Edge, n) // cand[i]: best outgoing edge found from point i
	l2 := t.IsL2()
	for uf.Components() > 1 {
		stats.AddRound()
		var comp []int32
		stats.Time("refresh", func() {
			comp = t.RefreshComponents(uf)
		})
		stats.Time("query", func() {
			parallel.For(n, 32, func(i int) {
				q := int32(i)
				best := Edge{U: -1, V: -1, W: math.Inf(1)}
				if l2 {
					nearestOutside(t, t.Root, q, comp, &best)
				} else {
					nearestOutsideMetric(t, t.Root, q, comp, &best)
				}
				cand[i] = best
			})
		})
		stats.Time("merge", func() {
			// Reduce candidates to the lightest edge per component, then merge.
			bestPer := make(map[int32]Edge, uf.Components())
			for i := 0; i < n; i++ {
				e := cand[i]
				if e.U < 0 {
					continue
				}
				c := comp[i]
				if cur, ok := bestPer[c]; !ok || Less(e, cur) {
					bestPer[c] = e
				}
			}
			for _, e := range bestPer {
				if uf.Union(e.U, e.V) {
					out = append(out, e)
				}
			}
		})
	}
	parallel.Sort(out, Less)
	return out
}

// nearestOutside finds the nearest point to q that lies in a different
// component, writing the candidate edge into best.
func nearestOutside(t *kdtree.Tree, nd *kdtree.Node, q int32, comp []int32, best *Edge) {
	if nd.Comp >= 0 && nd.Comp == comp[q] {
		return // subtree entirely in q's component
	}
	qc := t.Pts.At(int(q))
	if geometry.SqDistPointBox(qc, nd.Box) >= best.W*best.W {
		return
	}
	if nd.IsLeaf() {
		for _, p := range t.Points(nd) {
			if comp[p] == comp[q] {
				continue
			}
			d := t.Pts.Dist(int(q), int(p))
			e := MakeEdge(q, p, d)
			if best.U < 0 || Less(e, *best) {
				*best = e
			}
		}
		return
	}
	dl := geometry.SqDistPointBox(qc, nd.Left.Box)
	dr := geometry.SqDistPointBox(qc, nd.Right.Box)
	if dl <= dr {
		nearestOutside(t, nd.Left, q, comp, best)
		nearestOutside(t, nd.Right, q, comp, best)
	} else {
		nearestOutside(t, nd.Right, q, comp, best)
		nearestOutside(t, nd.Left, q, comp, best)
	}
}

// nearestOutsideMetric is nearestOutside under the tree's metric kernel,
// pruning with the kernel's point-box lower bound.
func nearestOutsideMetric(t *kdtree.Tree, nd *kdtree.Node, q int32, comp []int32, best *Edge) {
	if nd.Comp >= 0 && nd.Comp == comp[q] {
		return // subtree entirely in q's component
	}
	qc := t.Pts.At(int(q))
	if t.M.PointBoxLB(qc, nd.Box) >= best.W {
		return
	}
	if nd.IsLeaf() {
		for _, p := range t.Points(nd) {
			if comp[p] == comp[q] {
				continue
			}
			d := t.M.Dist(qc, t.Pts.At(int(p)))
			e := MakeEdge(q, p, d)
			if best.U < 0 || Less(e, *best) {
				*best = e
			}
		}
		return
	}
	dl := t.M.PointBoxLB(qc, nd.Left.Box)
	dr := t.M.PointBoxLB(qc, nd.Right.Box)
	if dl <= dr {
		nearestOutsideMetric(t, nd.Left, q, comp, best)
		nearestOutsideMetric(t, nd.Right, q, comp, best)
	} else {
		nearestOutsideMetric(t, nd.Right, q, comp, best)
		nearestOutsideMetric(t, nd.Left, q, comp, best)
	}
}

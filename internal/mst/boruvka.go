package mst

import (
	"math"
	"sync/atomic"
	"time"

	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/parallel"
)

// Boruvka computes the MST under the tree's metric with Borůvka rounds
// over a k-d tree: each round finds, for every point, its nearest point in
// a different union-find component (pruning subtrees that lie wholly in
// the point's component), reduces those candidates to one lightest
// outgoing edge per component, and merges. It stands in for the dual-tree
// Borůvka baseline (mlpack) that the paper's Table 3 compares against; run
// with GOMAXPROCS=1 it is the sequential baseline, and it parallelizes
// over points otherwise. The nearest-outside traversal is selected once
// per run: Euclidean trees take the squared-distance path (candidate
// weights stay squared until an edge is accepted — squaring is monotone,
// so the selection and its tie-breaking are unchanged).
//
// All per-round state lives in a Workspace and the round bodies are
// allocated once up front, so steady-state rounds perform zero heap
// allocations (pinned by TestBoruvkaRoundAllocs). The returned edges carry
// original input ids.
func Boruvka(t *kdtree.Tree, stats *Stats) []Edge {
	return BoruvkaWS(t, stats, NewWorkspace())
}

// BoruvkaWS is Boruvka running on a caller-owned reusable workspace.
func BoruvkaWS(t *kdtree.Tree, stats *Stats, ws *Workspace) []Edge {
	return BoruvkaCancelWS(t, stats, ws, nil)
}

// BoruvkaCancelWS is BoruvkaWS with a cooperative cancellation flag,
// polled once per round and once per 32-point query chunk; on abort the
// run unwinds with abort.Signal{}. af may be nil.
func BoruvkaCancelWS(t *kdtree.Tree, stats *Stats, ws *Workspace, af *abort.Flag) []Edge {
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	r := newBoruvkaRun(t, stats, ws)
	r.af = af
	for r.round() {
	}
	out := ws.finish(t.Orig)
	parallel.Sort(out, Less)
	return out
}

// boruvkaRun is one Borůvka execution: the reusable buffers plus the
// pre-built parallel round bodies (built once so rounds don't allocate
// closures).
type boruvkaRun struct {
	t     *kdtree.Tree
	ws    *Workspace
	stats *Stats
	l2    bool
	f32   *kdtree.F32 // non-nil selects the float32 lane-scan query path
	af    *abort.Flag

	queryBody  func(lo, hi int)
	reduceBody func(lo, hi int)
}

func newBoruvkaRun(t *kdtree.Tree, stats *Stats, ws *Workspace) *boruvkaRun {
	n := t.Pts.N
	ws.grow(n)
	r := &boruvkaRun{t: t, ws: ws, stats: stats, l2: t.IsL2(), f32: t.F32()}
	dim := t.Pts.Dim
	data := t.Pts.Data
	r.queryBody = func(lo, hi int) {
		r.af.Check()
		for i := lo; i < hi; i++ {
			q := int32(i)
			best := Edge{U: -1, V: -1, W: math.Inf(1)}
			qc := data[i*dim : (i+1)*dim : (i+1)*dim]
			switch {
			case r.f32 != nil:
				nearestOutside32(t, r.f32, t.Root, q, qc, r.f32.Row(q), ws.comp, &best)
			case r.l2:
				nearestOutside(t, t.Root, q, qc, ws.comp, &best)
			default:
				nearestOutsideMetric(t, t.Root, q, qc, ws.comp, &best)
			}
			ws.cand[i] = best
		}
	}
	r.reduceBody = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := ws.cand[i]
			if e.U < 0 {
				continue
			}
			casMinEdge(ws.best, ws.cand, ws.comp[i], int32(i))
		}
	}
	return r
}

// casMinEdge write-mins candidate index i into the dense slot of component
// c: the slot converges to the Less-least edge regardless of interleaving,
// keeping rounds deterministic under any schedule.
func casMinEdge(best []int32, cand []Edge, c, i int32) {
	slot := &best[c]
	for {
		cur := atomic.LoadInt32(slot)
		if cur >= 0 && !Less(cand[i], cand[cur]) {
			return
		}
		if atomic.CompareAndSwapInt32(slot, cur, i) {
			return
		}
	}
}

// round runs one Borůvka round; it reports whether more rounds remain.
func (r *boruvkaRun) round() bool {
	ws := r.ws
	if ws.uf.Components() <= 1 {
		return false
	}
	r.af.Check()
	r.stats.AddRound()
	n := r.t.Pts.N
	start := time.Now()
	r.t.RefreshComponentsInto(ws.uf, ws.comp)
	r.stats.AddPhase("refresh", time.Since(start))

	start = time.Now()
	parallel.ForRange(n, 32, r.queryBody)
	r.stats.AddPhase("query", time.Since(start))

	start = time.Now()
	// Reduce candidates to the lightest edge per component, then merge.
	parallel.ForRange(n, 512, r.reduceBody)
	for c := 0; c < n; c++ {
		bi := ws.best[c]
		if bi < 0 {
			continue
		}
		ws.best[c] = -1
		e := ws.cand[bi]
		if ws.uf.Union(e.U, e.V) {
			if r.f32 != nil {
				e.W = r.f32.Kern.Finish(e.W)
			} else if r.l2 {
				e.W = math.Sqrt(e.W)
			}
			ws.out = append(ws.out, e)
		}
	}
	r.stats.AddPhase("merge", time.Since(start))
	return true
}

// nearestOutside finds the nearest point to q (a kd-order position) that
// lies in a different component, writing the candidate edge into best with
// its weight in squared space. Ties follow the Less order (squaring is
// monotone, so the squared-space comparison picks the same edge).
func nearestOutside(t *kdtree.Tree, nd *kdtree.Node, q int32, qc []float64, comp []int32, best *Edge) {
	cq := comp[q]
	if nd.Comp >= 0 && nd.Comp == cq {
		return // subtree entirely in q's component
	}
	// Prune only once a candidate exists: with no candidate yet, best.W is
	// +Inf and a box at overflowed (+Inf) squared distance must still be
	// descended, or a round could record nothing and never merge.
	if best.U >= 0 && geometry.SqDistPointBox(qc, nd.Box) >= best.W {
		return
	}
	if nd.IsLeaf() {
		kern := t.SqKern()
		dim := t.Pts.Dim
		data := t.Pts.Data
		for p := nd.Lo; p < nd.Hi; p++ {
			if comp[p] == cq {
				continue
			}
			row := int(p) * dim
			d := kern(qc, data[row:row+dim:row+dim])
			if d > best.W {
				continue
			}
			u, v := q, p
			if u > v {
				u, v = v, u
			}
			// best.U < 0 accepts the first candidate even at d == +Inf
			// (squared-distance overflow on huge finite coordinates);
			// without it the round would record nothing and never merge.
			if best.U < 0 || d < best.W || u < best.U || (u == best.U && v < best.V) {
				*best = Edge{U: u, V: v, W: d}
			}
		}
		return
	}
	left, right := t.LeftOf(nd), t.RightOf(nd)
	dl := geometry.SqDistPointBox(qc, left.Box)
	dr := geometry.SqDistPointBox(qc, right.Box)
	if dl <= dr {
		nearestOutside(t, left, q, qc, comp, best)
		nearestOutside(t, right, q, qc, comp, best)
	} else {
		nearestOutside(t, right, q, qc, comp, best)
		nearestOutside(t, left, q, qc, comp, best)
	}
}

// nearestOutsideMetric is nearestOutside under the tree's metric kernel,
// pruning with the kernel's point-box lower bound; weights are true
// tree-metric distances.
func nearestOutsideMetric(t *kdtree.Tree, nd *kdtree.Node, q int32, qc []float64, comp []int32, best *Edge) {
	cq := comp[q]
	if nd.Comp >= 0 && nd.Comp == cq {
		return // subtree entirely in q's component
	}
	if best.U >= 0 && t.M.PointBoxLB(qc, nd.Box) >= best.W {
		return
	}
	if nd.IsLeaf() {
		dim := t.Pts.Dim
		data := t.Pts.Data
		for p := nd.Lo; p < nd.Hi; p++ {
			if comp[p] == cq {
				continue
			}
			row := int(p) * dim
			d := t.M.Dist(qc, data[row:row+dim:row+dim])
			if d > best.W {
				continue
			}
			u, v := q, p
			if u > v {
				u, v = v, u
			}
			if best.U < 0 || d < best.W || u < best.U || (u == best.U && v < best.V) {
				*best = Edge{U: u, V: v, W: d}
			}
		}
		return
	}
	left, right := t.LeftOf(nd), t.RightOf(nd)
	dl := t.M.PointBoxLB(qc, left.Box)
	dr := t.M.PointBoxLB(qc, right.Box)
	if dl <= dr {
		nearestOutsideMetric(t, left, q, qc, comp, best)
		nearestOutsideMetric(t, right, q, qc, comp, best)
	} else {
		nearestOutsideMetric(t, right, q, qc, comp, best)
		nearestOutsideMetric(t, left, q, qc, comp, best)
	}
}

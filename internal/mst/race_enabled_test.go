//go:build race

package mst

// raceEnabled reports that the race detector is active; the allocation
// regression tests skip under it because instrumentation itself allocates.
const raceEnabled = true

package mst

import (
	"math"

	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// Monomorphized squared-space MemoGFK traversals for the two L2-backed
// edge metrics (plain Euclidean, and mutual reachability over Euclidean).
// The generic traversals in memogfk.go pay an interface dispatch plus a
// sqrt per node-pair bound; here every bound is a direct, inlinable
// squared-space computation, and rho_lo/rho_hi live in squared space for
// the whole run (squaring is monotone, so round structure and the
// retrieved pair sets are unchanged). True metric weights are evaluated
// once per emitted edge.

// sqCfg is the state of a squared-space MemoGFK run.
type sqCfg struct {
	t     *kdtree.Tree
	cd    []float64 // kd-order core distances; nil for plain Euclidean
	m     kdtree.Metric
	sep   wspd.Separation
	stats *Stats
	af    *abort.Flag
}

// sqConfigFor returns the squared-space state when cfg's metric is one of
// the two L2-backed kernels, or nil to run the generic traversals.
func sqConfigFor(cfg Config) *sqCfg {
	switch m := cfg.Metric.(type) {
	case kdtree.Euclidean:
		return &sqCfg{t: cfg.Tree, m: cfg.Metric, sep: cfg.Sep, stats: cfg.Stats, af: cfg.Abort}
	case kdtree.MutualReachability:
		if m.M == nil {
			return &sqCfg{t: cfg.Tree, cd: m.CD, m: cfg.Metric, sep: cfg.Sep, stats: cfg.Stats, af: cfg.Abort}
		}
	}
	return nil
}

func (c *sqCfg) lb2(a, b *kdtree.Node) float64 {
	if c.cd == nil {
		return geometry.SqDistBoxes(a.Box, b.Box)
	}
	return kdtree.SqMutNodeLB(a, b)
}

func (c *sqCfg) ub2(a, b *kdtree.Node) float64 {
	if c.cd == nil {
		return geometry.SqMaxDistBoxes(a.Box, b.Box)
	}
	return kdtree.SqMutNodeUB(a, b)
}

// getRhoSq is getRho with all bounds in squared space.
func getRhoSq(c *sqCfg, root *kdtree.Node, beta int) float64 {
	rho := parallel.NewAtomicMinFloat64(math.Inf(1))
	getRhoNodeSq(c, root, beta, rho)
	return rho.Load()
}

func getRhoNodeSq(c *sqCfg, a *kdtree.Node, beta int, rho *parallel.AtomicMinFloat64) {
	if a.IsLeaf() || a.Size() <= 1 {
		return
	}
	if a.Comp >= 0 {
		return
	}
	if a.Size() <= beta {
		return
	}
	al, ar := c.t.LeftOf(a), c.t.RightOf(a)
	if a.Size() > spawnSize {
		c.af.Check()
		var g parallel.Group
		g.Spawn(func() { getRhoNodeSq(c, al, beta, rho) })
		g.Spawn(func() { getRhoNodeSq(c, ar, beta, rho) })
		g.Run(func() { getRhoPairSq(c, al, ar, beta, rho) })
		g.Sync()
		return
	}
	getRhoNodeSq(c, al, beta, rho)
	getRhoNodeSq(c, ar, beta, rho)
	getRhoPairSq(c, al, ar, beta, rho)
}

func getRhoPairSq(c *sqCfg, p, q *kdtree.Node, beta int, rho *parallel.AtomicMinFloat64) {
	if connected(p, q) {
		return
	}
	if p.Size()+q.Size() <= beta {
		return
	}
	lb := c.lb2(p, q)
	if lb >= rho.Load() {
		return
	}
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if c.sep.WellSeparated(p, q) {
		rho.Min(lb)
		return
	}
	if p.IsLeaf() {
		p, q = q, p
	}
	pl, pr := c.t.LeftOf(p), c.t.RightOf(p)
	if p.Size()+q.Size() > spawnSize {
		c.af.Check()
		parallel.Do(
			func() { getRhoPairSq(c, pl, q, beta, rho) },
			func() { getRhoPairSq(c, pr, q, beta, rho) },
		)
		return
	}
	getRhoPairSq(c, pl, q, beta, rho)
	getRhoPairSq(c, pr, q, beta, rho)
}

// getPairsNodeSq is getPairsNode with bounds and the [rhoLo2, rhoHi2)
// window in squared space; emitted edges carry true metric weights.
func getPairsNodeSq(c *sqCfg, a *kdtree.Node, beta int, rhoLo2, rhoHi2 float64) []Edge {
	if a.IsLeaf() || a.Size() <= 1 || a.Comp >= 0 {
		return nil
	}
	al, ar := c.t.LeftOf(a), c.t.RightOf(a)
	var left, right, mid []Edge
	if a.Size() > spawnSize {
		c.af.Check()
		var g parallel.Group
		g.Spawn(func() { left = getPairsNodeSq(c, al, beta, rhoLo2, rhoHi2) })
		g.Spawn(func() { right = getPairsNodeSq(c, ar, beta, rhoLo2, rhoHi2) })
		g.Run(func() { mid = getPairsPairSq(c, al, ar, beta, rhoLo2, rhoHi2) })
		g.Sync()
	} else {
		left = getPairsNodeSq(c, al, beta, rhoLo2, rhoHi2)
		right = getPairsNodeSq(c, ar, beta, rhoLo2, rhoHi2)
		mid = getPairsPairSq(c, al, ar, beta, rhoLo2, rhoHi2)
	}
	if len(left) == 0 {
		if len(right) == 0 {
			return mid
		}
		return append(right, mid...)
	}
	out := append(left, right...)
	return append(out, mid...)
}

func getPairsPairSq(c *sqCfg, p, q *kdtree.Node, beta int, rhoLo2, rhoHi2 float64) []Edge {
	if connected(p, q) {
		return nil
	}
	if c.lb2(p, q) >= rhoHi2 {
		return nil
	}
	if c.ub2(p, q) < rhoLo2 {
		return nil
	}
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if c.sep.WellSeparated(p, q) {
		res := kdtree.BCCPSq(c.t, c.cd, p, q)
		c.stats.AddBCCP(1)
		if res.W >= rhoLo2 && res.W < rhoHi2 {
			// One true-metric evaluation per emitted edge.
			return []Edge{MakeEdge(res.U, res.V, c.m.Dist(res.U, res.V))}
		}
		return nil
	}
	if p.IsLeaf() {
		p, q = q, p
	}
	pl, pr := c.t.LeftOf(p), c.t.RightOf(p)
	var l, r []Edge
	if p.Size()+q.Size() > spawnSize {
		c.af.Check()
		parallel.Do(
			func() { l = getPairsPairSq(c, pl, q, beta, rhoLo2, rhoHi2) },
			func() { r = getPairsPairSq(c, pr, q, beta, rhoLo2, rhoHi2) },
		)
	} else {
		l = getPairsPairSq(c, pl, q, beta, rhoLo2, rhoHi2)
		r = getPairsPairSq(c, pr, q, beta, rhoLo2, rhoHi2)
	}
	return append(l, r...)
}

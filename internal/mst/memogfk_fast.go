package mst

import (
	"math"

	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// Monomorphized squared-space MemoGFK traversals for the two L2-backed
// edge metrics (plain Euclidean, and mutual reachability over Euclidean).
// The generic traversals in memogfk.go pay an interface dispatch plus a
// sqrt per node-pair bound; here every bound is a direct, inlinable
// squared-space computation, and rho_lo/rho_hi live in squared space for
// the whole run (squaring is monotone, so round structure and the
// retrieved pair sets are unchanged). True metric weights are evaluated
// once per emitted edge.

// sqCfg is the state of a squared-space MemoGFK run.
type sqCfg struct {
	t     *kdtree.Tree
	cd    []float64 // kd-order core distances; nil for plain Euclidean
	m     kdtree.Metric
	sep   wspd.Separation
	stats *Stats
	af    *abort.Flag

	// brute marks a float32-fast-path run, which changes two things in
	// getPairsPairSq: small non-separated pairs take the brute-force scan
	// cutoff instead of recursing (traversal overhead dominates high-dim
	// runs), and window tests re-evaluate the returned BCCP pair exactly
	// (see the comment there). comp holds the per-position component
	// labels the scan filters with (the workspace array refreshed each
	// round). The float64 traversal is unchanged.
	brute bool
	comp  []int32
}

// sqConfigFor returns the squared-space state when cfg's metric is one of
// the two L2-backed kernels, or nil to run the generic traversals.
func sqConfigFor(cfg Config) *sqCfg {
	switch m := cfg.Metric.(type) {
	case kdtree.Euclidean:
		return &sqCfg{t: cfg.Tree, m: cfg.Metric, sep: cfg.Sep, stats: cfg.Stats, af: cfg.Abort}
	case kdtree.MutualReachability:
		if m.M == nil {
			return &sqCfg{t: cfg.Tree, cd: m.CD, m: cfg.Metric, sep: cfg.Sep, stats: cfg.Stats, af: cfg.Abort}
		}
	}
	return nil
}

// lb2b / ub2b are bounded node-pair bounds: exact below bound, and a result
// >= bound only certifies the true bound is >= bound. The traversals use
// them wherever a node-pair bound is tested against a fixed threshold —
// in high dimension the O(dim) box scans there dominate the run, and the
// early exit typically fires within the first few coordinates.
func (c *sqCfg) lb2b(a, b *kdtree.Node, bound float64) float64 {
	if c.cd == nil {
		return geometry.SqDistBoxesBounded(a.Box, b.Box, bound)
	}
	return kdtree.SqMutNodeLBBounded(a, b, bound)
}

func (c *sqCfg) ub2b(a, b *kdtree.Node, bound float64) float64 {
	if c.cd == nil {
		return geometry.SqMaxDistBoxesBounded(a.Box, b.Box, bound)
	}
	return kdtree.SqMutNodeUBBounded(a, b, bound)
}

// getRhoSq is getRho with all bounds in squared space.
func getRhoSq(c *sqCfg, root *kdtree.Node, beta int) float64 {
	rho := parallel.NewAtomicMinFloat64(math.Inf(1))
	getRhoNodeSq(c, root, beta, rho)
	return rho.Load()
}

func getRhoNodeSq(c *sqCfg, a *kdtree.Node, beta int, rho *parallel.AtomicMinFloat64) {
	if a.IsLeaf() || a.Size() <= 1 {
		return
	}
	if a.Comp >= 0 {
		return
	}
	if a.Size() <= beta {
		return
	}
	al, ar := c.t.LeftOf(a), c.t.RightOf(a)
	if a.Size() > spawnSize {
		c.af.Check()
		var g parallel.Group
		g.Spawn(func() { getRhoNodeSq(c, al, beta, rho) })
		g.Spawn(func() { getRhoNodeSq(c, ar, beta, rho) })
		g.Run(func() { getRhoPairSq(c, al, ar, beta, rho) })
		g.Sync()
		return
	}
	getRhoNodeSq(c, al, beta, rho)
	getRhoNodeSq(c, ar, beta, rho)
	getRhoPairSq(c, al, ar, beta, rho)
}

func getRhoPairSq(c *sqCfg, p, q *kdtree.Node, beta int, rho *parallel.AtomicMinFloat64) {
	if connected(p, q) {
		return
	}
	if p.Size()+q.Size() <= beta {
		return
	}
	limit := rho.Load()
	lb := c.lb2b(p, q, limit)
	if lb >= limit {
		return
	}
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if c.sep.WellSeparated(p, q) {
		rho.Min(lb)
		return
	}
	if p.IsLeaf() {
		p, q = q, p
	}
	pl, pr := c.t.LeftOf(p), c.t.RightOf(p)
	if p.Size()+q.Size() > spawnSize {
		c.af.Check()
		parallel.Do(
			func() { getRhoPairSq(c, pl, q, beta, rho) },
			func() { getRhoPairSq(c, pr, q, beta, rho) },
		)
		return
	}
	getRhoPairSq(c, pl, q, beta, rho)
	getRhoPairSq(c, pr, q, beta, rho)
}

// getPairsNodeSq is getPairsNode with bounds and the [rhoLo2, rhoHi2)
// window in squared space; emitted edges carry true metric weights.
func getPairsNodeSq(c *sqCfg, a *kdtree.Node, beta int, rhoLo2, rhoHi2 float64) []Edge {
	if a.IsLeaf() || a.Size() <= 1 || a.Comp >= 0 {
		return nil
	}
	al, ar := c.t.LeftOf(a), c.t.RightOf(a)
	var left, right, mid []Edge
	if a.Size() > spawnSize {
		c.af.Check()
		var g parallel.Group
		g.Spawn(func() { left = getPairsNodeSq(c, al, beta, rhoLo2, rhoHi2) })
		g.Spawn(func() { right = getPairsNodeSq(c, ar, beta, rhoLo2, rhoHi2) })
		g.Run(func() { mid = getPairsPairSq(c, al, ar, beta, rhoLo2, rhoHi2) })
		g.Sync()
	} else {
		left = getPairsNodeSq(c, al, beta, rhoLo2, rhoHi2)
		right = getPairsNodeSq(c, ar, beta, rhoLo2, rhoHi2)
		mid = getPairsPairSq(c, al, ar, beta, rhoLo2, rhoHi2)
	}
	if len(left) == 0 {
		if len(right) == 0 {
			return mid
		}
		return append(right, mid...)
	}
	out := append(left, right...)
	return append(out, mid...)
}

func getPairsPairSq(c *sqCfg, p, q *kdtree.Node, beta int, rhoLo2, rhoHi2 float64) []Edge {
	if connected(p, q) {
		return nil
	}
	if c.lb2b(p, q, rhoHi2) >= rhoHi2 {
		return nil
	}
	if c.ub2b(p, q, rhoLo2) < rhoLo2 {
		return nil
	}
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if c.sep.WellSeparated(p, q) {
		res := kdtree.BCCPSq(c.t, c.cd, p, q)
		c.stats.AddBCCP(1)
		if c.brute && res.U >= 0 {
			// The float32 traversal returns a rounded weight, but the
			// window ratchets in exact space: an edge whose rounded weight
			// dips below rhoLo would be dropped in this round and pruned in
			// every later one (the pair's bounds never re-admit it), so a
			// heavier edge would silently take its place in the MST.
			// Re-evaluating the one returned pair exactly keeps every edge
			// in the round whose window contains its exact weight.
			res.W = c.exactSqWeight(res.U, res.V)
		}
		if res.W >= rhoLo2 && res.W < rhoHi2 {
			// One true-metric evaluation per emitted edge.
			return []Edge{MakeEdge(res.U, res.V, c.m.Dist(res.U, res.V))}
		}
		return nil
	}
	if c.brute && p.Size()+q.Size() <= bruteSize {
		return brutePairsSq(c, p, q, rhoLo2, rhoHi2)
	}
	if p.IsLeaf() {
		p, q = q, p
	}
	pl, pr := c.t.LeftOf(p), c.t.RightOf(p)
	var l, r []Edge
	if p.Size()+q.Size() > spawnSize {
		c.af.Check()
		parallel.Do(
			func() { l = getPairsPairSq(c, pl, q, beta, rhoLo2, rhoHi2) },
			func() { r = getPairsPairSq(c, pr, q, beta, rhoLo2, rhoHi2) },
		)
	} else {
		l = getPairsPairSq(c, pl, q, beta, rhoLo2, rhoHi2)
		r = getPairsPairSq(c, pr, q, beta, rhoLo2, rhoHi2)
	}
	return append(l, r...)
}

// exactSqWeight is the exact squared-space weight of the pair of kd
// positions (u, v): squared Euclidean distance, maxed with the squared
// core distances under mutual reachability.
func (c *sqCfg) exactSqWeight(u, v int32) float64 {
	d := c.t.Pts.Dim
	ru, rv := int(u)*d, int(v)*d
	data := c.t.Pts.Data
	w := geometry.SqDistVec(data[ru:ru+d:ru+d], data[rv:rv+d:rv+d])
	if c.cd != nil {
		if cu2 := c.cd[u] * c.cd[u]; cu2 > w {
			w = cu2
		}
		if cv2 := c.cd[v] * c.cd[v]; cv2 > w {
			w = cv2
		}
	}
	return w
}

// bruteSize is the combined-cardinality cutoff below which getPairsPairSq
// stops recursing on non-well-separated pairs and scans the cross product
// directly (float32 mode only).
const bruteSize = 64

// brutePairsSq replaces the sub-recursion below a small, non-separated
// node pair with one pass over the two kd-contiguous row ranges, emitting
// every cross-component edge whose squared weight lands in the round's
// window. The recursion would bottom out in singleton pairs — which are
// always well-separated — so its emitted edge set is a subset of this
// one, and Kruskal discards the extra true-weight edges; what the scan
// saves is the O(dim) box-bound evaluation at every intermediate node
// pair, the dominant cost of high-dimensional traversals. Weights and
// window tests stay in exact float64, so round structure is unaffected.
func brutePairsSq(c *sqCfg, p, q *kdtree.Node, rhoLo2, rhoHi2 float64) []Edge {
	d := c.t.Pts.Dim
	data := c.t.Pts.Data
	var out []Edge
	for u := p.Lo; u < p.Hi; u++ {
		ru := int(u) * d
		uc := data[ru : ru+d : ru+d]
		cu := c.comp[u]
		var cu2 float64
		if c.cd != nil {
			cu2 = c.cd[u] * c.cd[u]
		}
		for v := q.Lo; v < q.Hi; v++ {
			if c.comp[v] == cu {
				continue
			}
			rv := int(v) * d
			w := geometry.SqDistVec(uc, data[rv:rv+d:rv+d])
			if c.cd != nil {
				if cu2 > w {
					w = cu2
				}
				if cv2 := c.cd[v] * c.cd[v]; cv2 > w {
					w = cv2
				}
			}
			if w >= rhoLo2 && w < rhoHi2 {
				out = append(out, MakeEdge(u, v, c.m.Dist(u, v)))
			}
		}
	}
	return out
}

package mst

import (
	"parclust/internal/abort"
	"parclust/internal/kdtree"
	"parclust/internal/parallel"
	"parclust/internal/wspd"
)

// Config carries the inputs shared by the WSPD-based MST algorithms.
// Metric must be built over the tree's kd-ordered points (see the
// kdtree.NewEuclidean/NewPointDist/NewMutualReachability constructors);
// the algorithms translate their results back to original ids.
type Config struct {
	Tree   *kdtree.Tree
	Metric kdtree.Metric
	Sep    wspd.Separation
	Stats  *Stats // optional

	// WS supplies the reusable round buffers; nil means a private
	// workspace per run. Sharing one Workspace across runs amortizes the
	// union-find and reduction arrays (a Workspace serves one run at a
	// time, and a returned edge slice never aliases it).
	WS *Workspace

	// LinearBeta switches the GFK/MemoGFK round schedule from doubling the
	// cardinality bound (the paper's choice, crucial for the O(log n)
	// round bound of Theorem 3.1) to the linear growth of the sequential
	// algorithm of Chatterjee et al. Used by the ablation benchmarks.
	LinearBeta bool

	// Abort is an optional cooperative cancellation flag, polled once per
	// filter round and once per parallel work chunk/traversal spawn. On
	// abort the run unwinds with abort.Signal{} (recovered at the
	// stage-build boundary in internal/engine). nil means uncancellable.
	Abort *abort.Flag
}

// nextBeta advances the round cardinality bound.
func nextBeta(cfg Config, beta int) int {
	if cfg.LinearBeta {
		return beta + 2
	}
	return beta * 2
}

// roundCap bounds the number of filter rounds: logarithmic for the
// doubling schedule, linear for the ablation schedule.
func roundCap(cfg Config, n int) int {
	if cfg.LinearBeta {
		return n + maxRounds
	}
	return maxRounds
}

// Naive is EMST-Naive from Section 5: materialize the full WSPD, compute the
// BCCP of every pair in parallel, and run one Kruskal pass over all edges.
func Naive(cfg Config) []Edge {
	t := cfg.Tree
	n := t.Pts.N
	if n <= 1 {
		return nil
	}
	var pairs []wspd.Pair
	cfg.Stats.Time("wspd", func() {
		pairs = wspd.DecomposeCancel(t, cfg.Sep, cfg.Abort)
	})
	cfg.Stats.AddPairs(int64(len(pairs)))
	cfg.Stats.NotePeak(int64(len(pairs)))
	edges := make([]Edge, len(pairs))
	cfg.Stats.Time("bccp", func() {
		parallel.For(len(pairs), 8, func(i int) {
			if i%512 == 0 {
				cfg.Abort.Check()
			}
			r := kdtree.BCCP(t, cfg.Metric, pairs[i].A, pairs[i].B)
			edges[i] = MakeEdge(r.U, r.V, r.W)
		})
	})
	cfg.Stats.AddBCCP(int64(len(pairs)))
	var out []Edge
	cfg.Stats.Time("kruskal", func() {
		out = Kruskal(n, edges)
	})
	for i, e := range out {
		out[i] = MakeEdge(t.Orig[e.U], t.Orig[e.V], e.W)
	}
	return out
}

package mst

import "parclust/internal/kdtree"

// nearestOutside32 is the float32 traversal of the Borůvka query phase:
// exact float64 comparison-space box bounds prune (together with the
// component filter), and subtrees at the scan cutoff are lane-scanned
// through the tree's SoA panels. Candidate weights stay in comparison
// space until the edge is accepted (boruvkaRun.round applies Kern.Finish),
// and all comparisons happen on float64-widened values, so the candidate
// selection and its lexicographic tie-break are deterministic.
func nearestOutside32(t *kdtree.Tree, f *kdtree.F32, nd *kdtree.Node, q int32, qc []float64, q32 []float32, comp []int32, best *Edge) {
	cq := comp[q]
	if nd.Comp >= 0 && nd.Comp == cq {
		return // subtree entirely in q's component
	}
	// Prune only once a candidate exists (see nearestOutside): with no
	// candidate yet a round must never return empty-handed.
	if best.U >= 0 && f.Kern.PointBoxLB(qc, nd.Box) >= best.W {
		return
	}
	if nd.IsLeaf() || nd.Size() <= kdtree.F32ScanMax {
		scanNearest32(f, nd.Lo, nd.Hi, q, cq, q32, comp, best)
		return
	}
	left, right := t.LeftOf(nd), t.RightOf(nd)
	dl := f.Kern.PointBoxLB(qc, left.Box)
	dr := f.Kern.PointBoxLB(qc, right.Box)
	if dl <= dr {
		nearestOutside32(t, f, left, q, qc, q32, comp, best)
		nearestOutside32(t, f, right, q, qc, q32, comp, best)
	} else {
		nearestOutside32(t, f, right, q, qc, q32, comp, best)
		nearestOutside32(t, f, left, q, qc, q32, comp, best)
	}
}

// scanNearest32 lane-scans kd positions [lo, hi) and keeps the Less-least
// outgoing candidate. The scratch buffer is a stack array: rounds stay at
// zero heap allocations.
func scanNearest32(f *kdtree.F32, lo, hi, q, cq int32, q32 []float32, comp []int32, best *Edge) {
	var buf [kdtree.F32ScanMax]float32
	for s := lo; s < hi; {
		e := s + kdtree.F32ScanMax
		if e > hi {
			e = hi
		}
		f.ScanInto(buf[:], s, e, q32)
		for j := int32(0); j < e-s; j++ {
			p := s + j
			if comp[p] == cq {
				continue
			}
			d := float64(buf[j])
			if d > best.W {
				continue
			}
			u, v := q, p
			if u > v {
				u, v = v, u
			}
			// best.U < 0 accepts the first candidate unconditionally
			// (mirrors nearestOutside; coordinate validation keeps float32
			// comparison-space values finite, but the invariant is cheap).
			if best.U < 0 || d < best.W || u < best.U || (u == best.U && v < best.V) {
				*best = Edge{U: u, V: v, W: d}
			}
		}
		s = e
	}
}

package mst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
	"parclust/internal/unionfind"
	"parclust/internal/wspd"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

func euclidConfig(pts geometry.Points) Config {
	t := kdtree.Build(pts, 1)
	return Config{Tree: t, Metric: kdtree.NewEuclidean(t), Sep: wspd.Geometric{S: 2}, Stats: NewStats()}
}

// checkSpanningTree validates tree invariants: n-1 edges, connected, acyclic.
func checkSpanningTree(t *testing.T, n int, edges []Edge) {
	t.Helper()
	if len(edges) != n-1 {
		t.Fatalf("got %d edges, want %d", len(edges), n-1)
	}
	uf := unionfind.New(n)
	for _, e := range edges {
		if e.U < 0 || int(e.V) >= n || e.U >= e.V {
			t.Fatalf("malformed edge %+v", e)
		}
		if !uf.Union(e.U, e.V) {
			t.Fatalf("edge %+v creates a cycle", e)
		}
	}
	if uf.Components() != 1 {
		t.Fatalf("result is not connected: %d components", uf.Components())
	}
}

func TestMakeEdgeCanonical(t *testing.T) {
	e := MakeEdge(5, 2, 1.5)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("MakeEdge did not canonicalize: %+v", e)
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	f := func(w1, w2 float32, u1, v1, u2, v2 uint8) bool {
		a := MakeEdge(int32(u1), int32(v1)+256, float64(w1))
		b := MakeEdge(int32(u2), int32(v2)+256, float64(w2))
		if Less(a, b) && Less(b, a) {
			return false
		}
		if a == b && (Less(a, b) || Less(b, a)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKruskalSmall(t *testing.T) {
	// triangle + pendant
	edges := []Edge{
		MakeEdge(0, 1, 1), MakeEdge(1, 2, 2), MakeEdge(0, 2, 3), MakeEdge(2, 3, 4),
	}
	out := Kruskal(4, edges)
	checkSpanningTree(t, 4, out)
	if TotalWeight(out) != 7 {
		t.Fatalf("MST weight %v, want 7", TotalWeight(out))
	}
}

func TestPrimDenseMatchesKruskal(t *testing.T) {
	pts := randPoints(60, 2, 3)
	dist := func(i, j int32) float64 { return pts.Dist(int(i), int(j)) }
	prim := PrimDense(pts.N, dist)
	var all []Edge
	for i := int32(0); i < int32(pts.N); i++ {
		for j := i + 1; j < int32(pts.N); j++ {
			all = append(all, MakeEdge(i, j, dist(i, j)))
		}
	}
	kr := Kruskal(pts.N, all)
	checkSpanningTree(t, pts.N, prim)
	if math.Abs(TotalWeight(prim)-TotalWeight(kr)) > 1e-9 {
		t.Fatalf("Prim %v vs Kruskal %v", TotalWeight(prim), TotalWeight(kr))
	}
}

// TestEMSTAlgorithmsAgree is the central cross-validation: every EMST
// algorithm must produce a spanning tree of the same total weight as the
// dense Prim oracle, across sizes and dimensions.
func TestEMSTAlgorithmsAgree(t *testing.T) {
	algos := map[string]func(Config) []Edge{
		"naive":   Naive,
		"gfk":     GFK,
		"memogfk": MemoGFK,
	}
	for _, n := range []int{2, 3, 17, 100, 500} {
		for _, dim := range []int{1, 2, 3, 5} {
			pts := randPoints(n, dim, int64(n*100+dim))
			want := TotalWeight(PrimDense(n, func(i, j int32) float64 { return pts.Dist(int(i), int(j)) }))
			for name, algo := range algos {
				cfg := euclidConfig(pts)
				got := algo(cfg)
				checkSpanningTree(t, n, got)
				if math.Abs(TotalWeight(got)-want) > 1e-6*(1+want) {
					t.Fatalf("%s n=%d dim=%d: weight %v, want %v", name, n, dim, TotalWeight(got), want)
				}
			}
			// Borůvka takes the tree directly.
			tr := kdtree.Build(pts, 1)
			got := Boruvka(tr, NewStats())
			checkSpanningTree(t, n, got)
			if math.Abs(TotalWeight(got)-want) > 1e-6*(1+want) {
				t.Fatalf("boruvka n=%d dim=%d: weight %v, want %v", n, dim, TotalWeight(got), want)
			}
		}
	}
}

func TestEMSTQuickProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, dimRaw uint8) bool {
		n := 2 + int(nRaw)%120
		dim := 1 + int(dimRaw)%4
		pts := randPoints(n, dim, seed)
		want := TotalWeight(PrimDense(n, func(i, j int32) float64 { return pts.Dist(int(i), int(j)) }))
		got := TotalWeight(MemoGFK(euclidConfig(pts)))
		return math.Abs(got-want) <= 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMutualReachabilityMST(t *testing.T) {
	for _, minPts := range []int{2, 5, 10} {
		pts := randPoints(250, 3, int64(minPts))
		tr := kdtree.Build(pts, 1)
		cd := tr.CoreDistances(minPts)
		tr.AnnotateCoreDists(cd)
		metric := kdtree.NewMutualReachability(tr)
		// The edge metric runs in kd-order space; any bijective relabeling
		// leaves the MST weight unchanged, so Prim can run there too.
		dist := func(i, j int32) float64 { return metric.Dist(i, j) }
		want := TotalWeight(PrimDense(pts.N, dist))
		for name, sep := range map[string]wspd.Separation{
			"geometric": wspd.Geometric{S: 2},
			"mutual":    wspd.MutualUnreachable{},
		} {
			cfg := Config{Tree: tr, Metric: metric, Sep: sep, Stats: NewStats()}
			got := MemoGFK(cfg)
			checkSpanningTree(t, pts.N, got)
			if math.Abs(TotalWeight(got)-want) > 1e-6*(1+want) {
				t.Fatalf("%s minPts=%d: weight %v, want %v", name, minPts, TotalWeight(got), want)
			}
		}
	}
}

func TestDuplicatePointsMST(t *testing.T) {
	// Half the points coincide: MST must still be valid with zero edges.
	pts := randPoints(40, 2, 4)
	for i := 0; i < 20; i++ {
		copy(pts.Data[(i+20)*2:(i+21)*2], pts.Data[i*2:(i+1)*2])
	}
	want := TotalWeight(PrimDense(pts.N, func(i, j int32) float64 { return pts.Dist(int(i), int(j)) }))
	for _, algo := range []func(Config) []Edge{Naive, GFK, MemoGFK} {
		got := algo(euclidConfig(pts))
		checkSpanningTree(t, pts.N, got)
		if math.Abs(TotalWeight(got)-want) > 1e-9 {
			t.Fatalf("duplicate points: weight %v, want %v", TotalWeight(got), want)
		}
	}
}

// TestBoruvkaHugeCoordinates pins termination when squared distances
// overflow to +Inf on finite coordinates: the first candidate must still
// be recorded (best.U < 0 acceptance) so rounds keep merging, and the
// result is a spanning tree with +Inf cross-cluster edges.
func TestBoruvkaHugeCoordinates(t *testing.T) {
	pts := geometry.FromSlices([][]float64{
		{-1e160, 0}, {-1e160, 1}, {1e160, 0}, {1e160, 1},
	})
	tr := kdtree.Build(pts, 1)
	got := Boruvka(tr, nil)
	checkSpanningTree(t, pts.N, got)
	if !math.IsInf(got[len(got)-1].W, 1) {
		t.Fatalf("expected an overflowed +Inf bridge edge, got %v", got[len(got)-1].W)
	}
}

func TestTinyInputs(t *testing.T) {
	for _, n := range []int{0, 1} {
		pts := randPoints(n, 2, 1)
		if got := MemoGFK(euclidConfig(pts)); len(got) != 0 {
			t.Fatalf("n=%d: expected no edges, got %d", n, len(got))
		}
	}
}

func TestStatsCounters(t *testing.T) {
	pts := randPoints(400, 3, 21)
	cfgFull := euclidConfig(pts)
	GFK(cfgFull)
	cfgMemo := euclidConfig(pts)
	MemoGFK(cfgMemo)
	if cfgFull.Stats.PairsMaterialized == 0 || cfgMemo.Stats.PairsMaterialized == 0 {
		t.Fatal("stats did not record materialized pairs")
	}
	// The memory optimization's peak residency must not exceed the full
	// WSPD materialization (Section 3.1.3 / Section 5 memory study).
	if cfgMemo.Stats.PeakPairsResident > cfgFull.Stats.PeakPairsResident {
		t.Fatalf("MemoGFK peak %d exceeds GFK peak %d",
			cfgMemo.Stats.PeakPairsResident, cfgFull.Stats.PeakPairsResident)
	}
	if cfgMemo.Stats.Rounds == 0 {
		t.Fatal("MemoGFK recorded no rounds")
	}
}

func TestClusteredData(t *testing.T) {
	// Two tight, far-apart clusters: exactly one MST edge crosses between
	// them and it must be the bridge.
	rng := rand.New(rand.NewSource(31))
	n := 100
	pts := geometry.NewPoints(n, 2)
	for i := 0; i < n; i++ {
		base := 0.0
		if i >= n/2 {
			base = 1e6
		}
		pts.Data[2*i] = base + rng.Float64()
		pts.Data[2*i+1] = rng.Float64()
	}
	edges := MemoGFK(euclidConfig(pts))
	crossing := 0
	for _, e := range edges {
		if (int(e.U) < n/2) != (int(e.V) < n/2) {
			crossing++
			if e.W < 1e6-10 {
				t.Fatalf("crossing edge too short: %v", e.W)
			}
		}
	}
	if crossing != 1 {
		t.Fatalf("%d crossing edges, want 1", crossing)
	}
}

func TestWSPDBoruvkaAgreesWithOracle(t *testing.T) {
	for _, n := range []int{2, 17, 200, 800} {
		for _, dim := range []int{2, 4} {
			pts := randPoints(n, dim, int64(n+dim))
			want := TotalWeight(PrimDense(n, func(i, j int32) float64 { return pts.Dist(int(i), int(j)) }))
			got := WSPDBoruvka(euclidConfig(pts))
			checkSpanningTree(t, n, got)
			if math.Abs(TotalWeight(got)-want) > 1e-6*(1+want) {
				t.Fatalf("n=%d dim=%d: weight %v, want %v", n, dim, TotalWeight(got), want)
			}
		}
	}
}

func TestWSPDBoruvkaMutualMetric(t *testing.T) {
	pts := randPoints(300, 3, 99)
	tr := kdtree.Build(pts, 1)
	cd := tr.CoreDistances(10)
	tr.AnnotateCoreDists(cd)
	metric := kdtree.NewMutualReachability(tr)
	want := TotalWeight(PrimDense(pts.N, metric.Dist))
	got := WSPDBoruvka(Config{Tree: tr, Metric: metric, Sep: wspd.MutualUnreachable{}, Stats: NewStats()})
	checkSpanningTree(t, pts.N, got)
	if math.Abs(TotalWeight(got)-want) > 1e-6*(1+want) {
		t.Fatalf("mutual-metric WSPD-Boruvka weight %v, want %v", TotalWeight(got), want)
	}
}

// TestLinearBetaSchedule checks the ablation path: the Chatterjee-style
// linear beta growth must still be correct, just with more rounds.
func TestLinearBetaSchedule(t *testing.T) {
	pts := randPoints(300, 2, 55)
	want := TotalWeight(PrimDense(pts.N, func(i, j int32) float64 { return pts.Dist(int(i), int(j)) }))
	for _, algo := range []func(Config) []Edge{GFK, MemoGFK} {
		cfg := euclidConfig(pts)
		cfg.LinearBeta = true
		got := algo(cfg)
		checkSpanningTree(t, pts.N, got)
		if math.Abs(TotalWeight(got)-want) > 1e-6*(1+want) {
			t.Fatalf("linear beta: weight %v, want %v", TotalWeight(got), want)
		}
	}
	// Linear growth must use at least as many rounds as doubling.
	cfgLin := euclidConfig(pts)
	cfgLin.LinearBeta = true
	MemoGFK(cfgLin)
	cfgDbl := euclidConfig(pts)
	MemoGFK(cfgDbl)
	if cfgLin.Stats.Rounds < cfgDbl.Stats.Rounds {
		t.Fatalf("linear schedule used fewer rounds (%d) than doubling (%d)",
			cfgLin.Stats.Rounds, cfgDbl.Stats.Rounds)
	}
}

func TestWorkspaceReuseAcrossShrinkingRuns(t *testing.T) {
	// One pooled Workspace serving runs of decreasing size must terminate
	// and stay correct: a recycled union-find larger than the active point
	// count previously kept its old component count, so Borůvka's
	// Components() <= 1 round check never fired (infinite rounds).
	ws := NewWorkspace()
	for _, n := range []int{300, 120, 50, 7, 2} {
		pts := randPoints(n, 2, int64(n))
		tr := kdtree.Build(pts, 1)
		got := BoruvkaWS(tr, nil, ws)
		checkSpanningTree(t, n, got)
		want := PrimDense(n, func(i, j int32) float64 { return pts.Dist(int(i), int(j)) })
		if w, ww := TotalWeight(got), TotalWeight(want); math.Abs(w-ww) > 1e-9*(1+ww) {
			t.Fatalf("n=%d: reused-workspace Borůvka weight %v, want %v", n, w, ww)
		}
		cfg := Config{Tree: tr, Metric: kdtree.NewEuclidean(tr), Sep: wspd.Geometric{S: 2}, WS: ws}
		got = WSPDBoruvka(cfg)
		checkSpanningTree(t, n, got)
		cfg.WS = ws
		got = MemoGFK(cfg)
		checkSpanningTree(t, n, got)
	}
}

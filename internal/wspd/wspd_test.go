package wspd

import (
	"math"
	"math/rand"
	"testing"

	"parclust/internal/geometry"
	"parclust/internal/kdtree"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

// checkRealization verifies WSPD properties (1)-(5) of Section 2.3:
// every unordered point pair {p, q} is covered by exactly one WSPD pair.
func checkRealization(t *testing.T, pts geometry.Points, tr *kdtree.Tree, pairs []Pair) {
	t.Helper()
	n := pts.N
	cover := make([][]int, n)
	for i := range cover {
		cover[i] = make([]int, n)
	}
	for _, pr := range pairs {
		pa, pb := tr.Points(pr.A), tr.Points(pr.B)
		// property (2): disjoint sides
		inA := map[int32]bool{}
		for _, p := range pa {
			inA[p] = true
		}
		for _, q := range pb {
			if inA[q] {
				t.Fatal("pair sides are not disjoint")
			}
		}
		for _, p := range pa {
			for _, q := range pb {
				cover[p][q]++
				cover[q][p]++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if cover[i][j] != 1 {
				t.Fatalf("pair (%d,%d) covered %d times, want exactly 1", i, j, cover[i][j])
			}
		}
	}
}

func TestDecomposeRealizationGeometric(t *testing.T) {
	for _, n := range []int{2, 3, 10, 64, 200} {
		for _, dim := range []int{1, 2, 3} {
			pts := randPoints(n, dim, int64(n*10+dim))
			tr := kdtree.Build(pts, 1)
			pairs := Decompose(tr, Geometric{S: 2})
			checkRealization(t, pts, tr, pairs)
		}
	}
}

func TestDecomposeRealizationMutualUnreachable(t *testing.T) {
	for _, n := range []int{2, 10, 128} {
		pts := randPoints(n, 2, int64(n))
		tr := kdtree.Build(pts, 1)
		cd := tr.CoreDistances(5)
		tr.AnnotateCoreDists(cd)
		pairs := Decompose(tr, MutualUnreachable{})
		checkRealization(t, pts, tr, pairs)
	}
}

func TestEmittedPairsAreWellSeparated(t *testing.T) {
	pts := randPoints(300, 3, 77)
	tr := kdtree.Build(pts, 1)
	sep := Geometric{S: 2}
	for _, pr := range Decompose(tr, sep) {
		if !sep.WellSeparated(pr.A, pr.B) {
			t.Fatal("emitted pair fails the separation predicate")
		}
		// Verify the geometric meaning directly: sphere gap >= s * max radius.
		r := math.Max(pr.A.Radius, pr.B.Radius)
		if kdtree.SphereDist(pr.A, pr.B) < 2*r-1e-9 {
			t.Fatal("emitted pair violates s=2 sphere separation")
		}
	}
}

func TestCountMatchesDecompose(t *testing.T) {
	pts := randPoints(500, 3, 5)
	tr := kdtree.Build(pts, 1)
	if got, want := Count(tr, Geometric{S: 2}), len(Decompose(tr, Geometric{S: 2})); got != want {
		t.Fatalf("Count=%d, len(Decompose)=%d", got, want)
	}
}

// TestMutualSeparationProducesFewerPairs checks the paper's headline space
// claim (Section 3.2.2): the disjunctive separation never produces more
// pairs than the geometric one, and on clustered data produces strictly
// fewer.
func TestMutualSeparationProducesFewerPairs(t *testing.T) {
	pts := randPoints(2000, 5, 8)
	tr := kdtree.Build(pts, 1)
	cd := tr.CoreDistances(10)
	tr.AnnotateCoreDists(cd)
	geo := Count(tr, Geometric{S: 2})
	mu := Count(tr, MutualUnreachable{})
	if mu > geo {
		t.Fatalf("mutual separation produced MORE pairs (%d > %d)", mu, geo)
	}
	if mu == geo {
		t.Logf("warning: no pair reduction on this input (geo=%d mutual=%d)", geo, mu)
	}
}

func TestPairCountLinearInN(t *testing.T) {
	// WSPD size should grow roughly linearly with n (O(n) pairs, s=2).
	n1, n2 := 1000, 4000
	c1 := Count(kdtree.Build(randPoints(n1, 2, 1), 1), Geometric{S: 2})
	c2 := Count(kdtree.Build(randPoints(n2, 2, 2), 1), Geometric{S: 2})
	ratio := float64(c2) / float64(c1)
	if ratio > 8 { // 4x points should give ~4x pairs, allow slack
		t.Fatalf("pair count scaling ratio %.2f suggests super-linear WSPD size", ratio)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := geometry.NewPoints(32, 2) // all identical
	tr := kdtree.Build(pts, 1)
	pairs := Decompose(tr, Geometric{S: 2})
	checkRealization(t, pts, tr, pairs)
}

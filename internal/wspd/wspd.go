// Package wspd implements the well-separated pair decomposition of
// Callahan and Kosaraju over a k-d tree (Algorithm 1 of the paper), plus the
// paper's new HDBSCAN* notion of well-separation (Section 3.2.2): a pair is
// well-separated if it is geometrically-separated, mutually-unreachable, or
// both. The mutual-unreachability disjunct lets FindPair terminate earlier,
// bounding the number of pairs (and hence MST candidate edges) by O(n).
package wspd

import (
	"math"

	"parclust/internal/abort"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/parallel"
)

// Pair is a well-separated pair of k-d tree nodes.
type Pair struct {
	A, B *kdtree.Node
}

// Separation decides whether two tree nodes are well-separated.
type Separation interface {
	WellSeparated(a, b *kdtree.Node) bool
}

// Geometric is the classic Callahan–Kosaraju separation with constant s:
// both nodes fit in spheres of radius r = max(radii) and the gap between
// the nodes' bounding spheres is at least s*r. The paper uses s = 2, under
// which this coincides with its "geometrically-separated" condition
// d(A,B) >= max(A_diam, B_diam).
type Geometric struct{ S float64 }

// WellSeparated reports whether a and b satisfy the separation test.
func (g Geometric) WellSeparated(a, b *kdtree.Node) bool {
	r := a.Radius
	if b.Radius > r {
		r = b.Radius
	}
	return sphereGapAtLeast(a, b, g.S*r)
}

// sphereGapAtLeast reports SphereDist(a, b) >= x, evaluated in squared
// space so the hot separation predicates never take a sqrt.
func sphereGapAtLeast(a, b *kdtree.Node, x float64) bool {
	if x <= 0 {
		return true // the sphere gap is clamped at zero
	}
	t := x + a.Radius + b.Radius
	return kdtree.SqCtrDist(a, b) >= t*t
}

// MutualUnreachable is the paper's new disjunctive well-separation for
// HDBSCAN*: geometric separation (s=2) OR mutual unreachability
//
//	max{d(A,B), cdmin(A), cdmin(B)} >= max{A_diam, B_diam, cdmax(A), cdmax(B)}.
//
// Tree nodes must carry core-distance annotations.
type MutualUnreachable struct{}

// WellSeparated reports geometric separation or mutual unreachability.
// Both disjuncts are "sphere gap >= threshold" / "core-dist >= threshold"
// comparisons, so the whole predicate runs sqrt-free in squared space.
func (MutualUnreachable) WellSeparated(a, b *kdtree.Node) bool {
	maxDiam := a.Diam()
	if d := b.Diam(); d > maxDiam {
		maxDiam = d
	}
	if sphereGapAtLeast(a, b, maxDiam) { // geometrically-separated (s = 2)
		return true
	}
	cmin := a.CDMin
	if b.CDMin > cmin {
		cmin = b.CDMin
	}
	rhs := maxDiam
	if a.CDMax > rhs {
		rhs = a.CDMax
	}
	if b.CDMax > rhs {
		rhs = b.CDMax
	}
	// lhs = max(gap, cmin). The gap disjunct is already settled: it failed
	// at threshold maxDiam above, and rhs >= maxDiam makes the same test
	// monotonically stricter, so only the core-distance floor can clear rhs.
	return cmin >= rhs
}

// MetricGeometric is well-separation under an arbitrary metric kernel's
// ball geometry: the kernel gap between the node boxes must be at least
// (S/2) times the larger kernel diameter of the boxes. With S = 2 this is
// d(A,B) >= max(diam(A), diam(B)), the same condition Geometric{S: 2}
// states with L2 bounding spheres — which suffices for the MST-covering
// lemma in any metric space (the cycle-property argument needs only
// "intra-node distances never exceed cross-node distances"), while the
// O(n) pair-count bound additionally requires the kernel to be doubling.
// Node diameters come from the MDiam annotation, so the tree must have
// been built with kdtree.BuildMetric under the same kernel.
type MetricGeometric struct {
	M metric.Metric
	S float64
}

// WellSeparated reports whether a and b satisfy the kernel separation test.
func (g MetricGeometric) WellSeparated(a, b *kdtree.Node) bool {
	diam := math.Max(a.MDiam, b.MDiam)
	return g.M.BoxesLB(a.Box, b.Box) >= g.S/2*diam
}

// MetricMutualUnreachable is the paper's disjunctive HDBSCAN*
// well-separation under an arbitrary metric kernel: kernel-geometric
// separation (s = 2) OR mutual unreachability, with distances taken from
// the kernel's box bounds, node diameters from the MDiam annotation (the
// tree must have been built with kdtree.BuildMetric under the same
// kernel), and core-distance annotations computed under that kernel too.
type MetricMutualUnreachable struct {
	M metric.Metric
}

// WellSeparated reports kernel-geometric separation or mutual unreachability.
func (s MetricMutualUnreachable) WellSeparated(a, b *kdtree.Node) bool {
	d := s.M.BoxesLB(a.Box, b.Box)
	maxDiam := math.Max(a.MDiam, b.MDiam)
	if d >= maxDiam { // geometrically-separated (s = 2)
		return true
	}
	lhs := math.Max(d, math.Max(a.CDMin, b.CDMin))
	rhs := math.Max(maxDiam, math.Max(a.CDMax, b.CDMax))
	return lhs >= rhs
}

// spawnSize is the node size above which traversals spawn goroutines.
const spawnSize = 1024

// Decompose computes the WSPD of the tree (Algorithm 1) and returns all
// pairs. The traversal parallelizes across subtrees; each goroutine collects
// into a local buffer and the buffers are concatenated.
func Decompose(t *kdtree.Tree, sep Separation) []Pair {
	return DecomposeCancel(t, sep, nil)
}

// DecomposeCancel is Decompose with a cooperative cancellation flag,
// polled once per internal tree node and once per spawned FindPair branch;
// on abort the traversal unwinds with abort.Signal{}. af may be nil.
func DecomposeCancel(t *kdtree.Tree, sep Separation, af *abort.Flag) []Pair {
	if t.Root == nil || t.Root.Size() <= 1 {
		return nil
	}
	return wspdNode(t, t.Root, sep, af)
}

// Count returns the number of WSPD pairs without materializing them.
func Count(t *kdtree.Tree, sep Separation) int {
	if t.Root == nil || t.Root.Size() <= 1 {
		return 0
	}
	return countNode(t, t.Root, sep)
}

func wspdNode(t *kdtree.Tree, a *kdtree.Node, sep Separation, af *abort.Flag) []Pair {
	if a.IsLeaf() || a.Size() <= 1 {
		return nil
	}
	af.Check()
	al, ar := t.LeftOf(a), t.RightOf(a)
	var left, right, mid []Pair
	if a.Size() > spawnSize {
		// Fork the subtree traversals as stealable tasks and keep the
		// FindPair of the split on the current worker (work-first).
		var g parallel.Group
		g.Spawn(func() { left = wspdNode(t, al, sep, af) })
		g.Spawn(func() { right = wspdNode(t, ar, sep, af) })
		g.Run(func() { mid = findPair(t, al, ar, sep, af) })
		g.Sync()
	} else {
		left = wspdNode(t, al, sep, af)
		right = wspdNode(t, ar, sep, af)
		mid = findPair(t, al, ar, sep, af)
	}
	// left is exclusively owned by this call, so extend it in place rather
	// than copying all three slices into a fresh buffer.
	if len(left) == 0 {
		if len(right) == 0 {
			return mid
		}
		return append(right, mid...)
	}
	out := append(left, right...)
	return append(out, mid...)
}

func findPair(t *kdtree.Tree, p, q *kdtree.Node, sep Separation, af *abort.Flag) []Pair {
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if sep.WellSeparated(p, q) {
		return []Pair{{A: p, B: q}}
	}
	// Split the node with the larger bounding sphere. With one-point leaves
	// this is never a leaf (a single point has radius 0 and is always
	// well-separated); trees built with larger leaves are rejected.
	if p.IsLeaf() {
		if q.IsLeaf() {
			panic("wspd: leaf-leaf pair not well-separated; build the tree with leaf size 1")
		}
		p, q = q, p
	}
	pl, pr := t.LeftOf(p), t.RightOf(p)
	var l, r []Pair
	if p.Size()+q.Size() > spawnSize {
		af.Check()
		parallel.Do(
			func() { l = findPair(t, pl, q, sep, af) },
			func() { r = findPair(t, pr, q, sep, af) },
		)
	} else {
		l = findPair(t, pl, q, sep, af)
		r = findPair(t, pr, q, sep, af)
	}
	return append(l, r...)
}

func countNode(t *kdtree.Tree, a *kdtree.Node, sep Separation) int {
	if a.IsLeaf() || a.Size() <= 1 {
		return 0
	}
	al, ar := t.LeftOf(a), t.RightOf(a)
	var left, right, mid int
	if a.Size() > spawnSize {
		var g parallel.Group
		g.Spawn(func() { left = countNode(t, al, sep) })
		g.Spawn(func() { right = countNode(t, ar, sep) })
		g.Run(func() { mid = countPair(t, al, ar, sep) })
		g.Sync()
	} else {
		left = countNode(t, al, sep)
		right = countNode(t, ar, sep)
		mid = countPair(t, al, ar, sep)
	}
	return left + right + mid
}

func countPair(t *kdtree.Tree, p, q *kdtree.Node, sep Separation) int {
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if sep.WellSeparated(p, q) {
		return 1
	}
	if p.IsLeaf() {
		if q.IsLeaf() {
			panic("wspd: leaf-leaf pair not well-separated; build the tree with leaf size 1")
		}
		p, q = q, p
	}
	pl, pr := t.LeftOf(p), t.RightOf(p)
	var l, r int
	if p.Size()+q.Size() > spawnSize {
		parallel.Do(
			func() { l = countPair(t, pl, q, sep) },
			func() { r = countPair(t, pr, q, sep) },
		)
	} else {
		l = countPair(t, pl, q, sep)
		r = countPair(t, pr, q, sep)
	}
	return l + r
}

// Package wspd implements the well-separated pair decomposition of
// Callahan and Kosaraju over a k-d tree (Algorithm 1 of the paper), plus the
// paper's new HDBSCAN* notion of well-separation (Section 3.2.2): a pair is
// well-separated if it is geometrically-separated, mutually-unreachable, or
// both. The mutual-unreachability disjunct lets FindPair terminate earlier,
// bounding the number of pairs (and hence MST candidate edges) by O(n).
package wspd

import (
	"math"

	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/parallel"
)

// Pair is a well-separated pair of k-d tree nodes.
type Pair struct {
	A, B *kdtree.Node
}

// Separation decides whether two tree nodes are well-separated.
type Separation interface {
	WellSeparated(a, b *kdtree.Node) bool
}

// Geometric is the classic Callahan–Kosaraju separation with constant s:
// both nodes fit in spheres of radius r = max(radii) and the gap between
// the nodes' bounding spheres is at least s*r. The paper uses s = 2, under
// which this coincides with its "geometrically-separated" condition
// d(A,B) >= max(A_diam, B_diam).
type Geometric struct{ S float64 }

// WellSeparated reports whether a and b satisfy the separation test.
func (g Geometric) WellSeparated(a, b *kdtree.Node) bool {
	r := math.Max(a.Radius, b.Radius)
	return kdtree.SphereDist(a, b) >= g.S*r
}

// MutualUnreachable is the paper's new disjunctive well-separation for
// HDBSCAN*: geometric separation (s=2) OR mutual unreachability
//
//	max{d(A,B), cdmin(A), cdmin(B)} >= max{A_diam, B_diam, cdmax(A), cdmax(B)}.
//
// Tree nodes must carry core-distance annotations.
type MutualUnreachable struct{}

// WellSeparated reports geometric separation or mutual unreachability.
func (MutualUnreachable) WellSeparated(a, b *kdtree.Node) bool {
	d := kdtree.SphereDist(a, b)
	maxDiam := math.Max(a.Diam(), b.Diam())
	if d >= maxDiam { // geometrically-separated (s = 2)
		return true
	}
	lhs := math.Max(d, math.Max(a.CDMin, b.CDMin))
	rhs := math.Max(maxDiam, math.Max(a.CDMax, b.CDMax))
	return lhs >= rhs
}

// MetricGeometric is well-separation under an arbitrary metric kernel's
// ball geometry: the kernel gap between the node boxes must be at least
// (S/2) times the larger kernel diameter of the boxes. With S = 2 this is
// d(A,B) >= max(diam(A), diam(B)), the same condition Geometric{S: 2}
// states with L2 bounding spheres — which suffices for the MST-covering
// lemma in any metric space (the cycle-property argument needs only
// "intra-node distances never exceed cross-node distances"), while the
// O(n) pair-count bound additionally requires the kernel to be doubling.
// Node diameters come from the MDiam annotation, so the tree must have
// been built with kdtree.BuildMetric under the same kernel.
type MetricGeometric struct {
	M metric.Metric
	S float64
}

// WellSeparated reports whether a and b satisfy the kernel separation test.
func (g MetricGeometric) WellSeparated(a, b *kdtree.Node) bool {
	diam := math.Max(a.MDiam, b.MDiam)
	return g.M.BoxesLB(a.Box, b.Box) >= g.S/2*diam
}

// MetricMutualUnreachable is the paper's disjunctive HDBSCAN*
// well-separation under an arbitrary metric kernel: kernel-geometric
// separation (s = 2) OR mutual unreachability, with distances taken from
// the kernel's box bounds, node diameters from the MDiam annotation (the
// tree must have been built with kdtree.BuildMetric under the same
// kernel), and core-distance annotations computed under that kernel too.
type MetricMutualUnreachable struct {
	M metric.Metric
}

// WellSeparated reports kernel-geometric separation or mutual unreachability.
func (s MetricMutualUnreachable) WellSeparated(a, b *kdtree.Node) bool {
	d := s.M.BoxesLB(a.Box, b.Box)
	maxDiam := math.Max(a.MDiam, b.MDiam)
	if d >= maxDiam { // geometrically-separated (s = 2)
		return true
	}
	lhs := math.Max(d, math.Max(a.CDMin, b.CDMin))
	rhs := math.Max(maxDiam, math.Max(a.CDMax, b.CDMax))
	return lhs >= rhs
}

// spawnSize is the node size above which traversals spawn goroutines.
const spawnSize = 1024

// Decompose computes the WSPD of the tree (Algorithm 1) and returns all
// pairs. The traversal parallelizes across subtrees; each goroutine collects
// into a local buffer and the buffers are concatenated.
func Decompose(t *kdtree.Tree, sep Separation) []Pair {
	if t.Root == nil || t.Root.Size() <= 1 {
		return nil
	}
	return wspdNode(t.Root, sep)
}

// Count returns the number of WSPD pairs without materializing them.
func Count(t *kdtree.Tree, sep Separation) int {
	if t.Root == nil || t.Root.Size() <= 1 {
		return 0
	}
	return countNode(t.Root, sep)
}

func wspdNode(a *kdtree.Node, sep Separation) []Pair {
	if a.IsLeaf() || a.Size() <= 1 {
		return nil
	}
	var left, right, mid []Pair
	if a.Size() > spawnSize {
		// Fork the subtree traversals as stealable tasks and keep the
		// FindPair of the split on the current worker (work-first).
		var g parallel.Group
		g.Spawn(func() { left = wspdNode(a.Left, sep) })
		g.Spawn(func() { right = wspdNode(a.Right, sep) })
		g.Run(func() { mid = findPair(a.Left, a.Right, sep) })
		g.Sync()
	} else {
		left = wspdNode(a.Left, sep)
		right = wspdNode(a.Right, sep)
		mid = findPair(a.Left, a.Right, sep)
	}
	out := make([]Pair, 0, len(left)+len(right)+len(mid))
	out = append(out, left...)
	out = append(out, right...)
	out = append(out, mid...)
	return out
}

func findPair(p, q *kdtree.Node, sep Separation) []Pair {
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if sep.WellSeparated(p, q) {
		return []Pair{{A: p, B: q}}
	}
	// Split the node with the larger bounding sphere. With one-point leaves
	// this is never a leaf (a single point has radius 0 and is always
	// well-separated); trees built with larger leaves are rejected.
	if p.IsLeaf() {
		if q.IsLeaf() {
			panic("wspd: leaf-leaf pair not well-separated; build the tree with leaf size 1")
		}
		p, q = q, p
	}
	var l, r []Pair
	if p.Size()+q.Size() > spawnSize {
		parallel.Do(
			func() { l = findPair(p.Left, q, sep) },
			func() { r = findPair(p.Right, q, sep) },
		)
	} else {
		l = findPair(p.Left, q, sep)
		r = findPair(p.Right, q, sep)
	}
	return append(l, r...)
}

func countNode(a *kdtree.Node, sep Separation) int {
	if a.IsLeaf() || a.Size() <= 1 {
		return 0
	}
	var left, right, mid int
	if a.Size() > spawnSize {
		var g parallel.Group
		g.Spawn(func() { left = countNode(a.Left, sep) })
		g.Spawn(func() { right = countNode(a.Right, sep) })
		g.Run(func() { mid = countPair(a.Left, a.Right, sep) })
		g.Sync()
	} else {
		left = countNode(a.Left, sep)
		right = countNode(a.Right, sep)
		mid = countPair(a.Left, a.Right, sep)
	}
	return left + right + mid
}

func countPair(p, q *kdtree.Node, sep Separation) int {
	if p.Radius < q.Radius {
		p, q = q, p
	}
	if sep.WellSeparated(p, q) {
		return 1
	}
	if p.IsLeaf() {
		if q.IsLeaf() {
			panic("wspd: leaf-leaf pair not well-separated; build the tree with leaf size 1")
		}
		p, q = q, p
	}
	var l, r int
	if p.Size()+q.Size() > spawnSize {
		parallel.Do(
			func() { l = countPair(p.Left, q, sep) },
			func() { r = countPair(p.Right, q, sep) },
		)
	} else {
		l = countPair(p.Left, q, sep)
		r = countPair(p.Right, q, sep)
	}
	return l + r
}

package kdtree

import (
	"math"

	"parclust/internal/geometry"
)

// BCCPResult is the bichromatic closest pair between two tree nodes under a
// metric: points U in A and V in B minimizing the metric, with distance W.
type BCCPResult struct {
	U, V int32
	W    float64
}

// BCCP computes the bichromatic closest pair between nodes a and b of tree t
// under metric m (Section 2.3). With the MutualReachability metric this is
// the paper's BCCP*. The traversal prunes node pairs whose lower bound
// cannot beat the best pair found so far and descends nearer pairs first.
// The Euclidean metric is dispatched once per call to a monomorphized
// traversal that compares squared distances and never crosses an interface
// in its leaf loops.
func BCCP(t *Tree, m Metric, a, b *Node) BCCPResult {
	if _, ok := m.(Euclidean); ok {
		best := BCCPResult{U: -1, V: -1, W: math.Inf(1)}
		bccpL2(t, t.sqKern, a, b, &best)
		best.W = math.Sqrt(best.W)
		return best
	}
	best := BCCPResult{U: -1, V: -1, W: math.Inf(1)}
	bccp(t, m, a, b, &best)
	return best
}

// bccpL2 mirrors bccp for the Euclidean metric with best.W held in squared
// space; squaring is monotone, so the traversal order and the resulting
// pair match the generic traversal exactly.
func bccpL2(t *Tree, kern func(a, b []float64) float64, a, b *Node, best *BCCPResult) {
	if geometry.SqDistBoxes(a.Box, b.Box) >= best.W {
		return
	}
	if a.IsLeaf() && b.IsLeaf() {
		for _, p := range t.Points(a) {
			pc := t.Pts.At(int(p))
			for _, q := range t.Points(b) {
				if p == q {
					continue
				}
				if d := kern(pc, t.Pts.At(int(q))); d < best.W {
					*best = BCCPResult{U: p, V: q, W: d}
				}
			}
		}
		return
	}
	if b.IsLeaf() || (!a.IsLeaf() && a.Radius >= b.Radius) {
		d1 := geometry.SqDistBoxes(a.Left.Box, b.Box)
		d2 := geometry.SqDistBoxes(a.Right.Box, b.Box)
		if d1 <= d2 {
			bccpL2(t, kern, a.Left, b, best)
			bccpL2(t, kern, a.Right, b, best)
		} else {
			bccpL2(t, kern, a.Right, b, best)
			bccpL2(t, kern, a.Left, b, best)
		}
		return
	}
	d1 := geometry.SqDistBoxes(a.Box, b.Left.Box)
	d2 := geometry.SqDistBoxes(a.Box, b.Right.Box)
	if d1 <= d2 {
		bccpL2(t, kern, a, b.Left, best)
		bccpL2(t, kern, a, b.Right, best)
	} else {
		bccpL2(t, kern, a, b.Right, best)
		bccpL2(t, kern, a, b.Left, best)
	}
}

func bccp(t *Tree, m Metric, a, b *Node, best *BCCPResult) {
	if m.NodeLB(a, b) >= best.W {
		return
	}
	if a.IsLeaf() && b.IsLeaf() {
		for _, p := range t.Points(a) {
			for _, q := range t.Points(b) {
				if p == q {
					continue
				}
				if d := m.Dist(p, q); d < best.W {
					*best = BCCPResult{U: p, V: q, W: d}
				}
			}
		}
		return
	}
	// Split the node with the larger bounding sphere (matching FindPair's
	// convention); descend the nearer child pair first for tighter pruning.
	if b.IsLeaf() || (!a.IsLeaf() && a.Radius >= b.Radius) {
		d1 := m.NodeLB(a.Left, b)
		d2 := m.NodeLB(a.Right, b)
		if d1 <= d2 {
			bccp(t, m, a.Left, b, best)
			bccp(t, m, a.Right, b, best)
		} else {
			bccp(t, m, a.Right, b, best)
			bccp(t, m, a.Left, b, best)
		}
		return
	}
	d1 := m.NodeLB(a, b.Left)
	d2 := m.NodeLB(a, b.Right)
	if d1 <= d2 {
		bccp(t, m, a, b.Left, best)
		bccp(t, m, a, b.Right, best)
	} else {
		bccp(t, m, a, b.Right, best)
		bccp(t, m, a, b.Left, best)
	}
}

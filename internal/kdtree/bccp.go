package kdtree

import (
	"math"

	"parclust/internal/geometry"
)

// BCCPResult is the bichromatic closest pair between two tree nodes under a
// metric: kd-order positions U in A and V in B minimizing the metric, with
// distance W. Map positions through Tree.Orig for original ids.
type BCCPResult struct {
	U, V int32
	W    float64
}

// BCCP computes the bichromatic closest pair between nodes a and b of tree t
// under metric m (Section 2.3). With the MutualReachability metric this is
// the paper's BCCP*. The traversal prunes node pairs whose lower bound
// cannot beat the best pair found so far and descends nearer pairs first.
// The Euclidean metric is dispatched once per call to a monomorphized
// traversal that compares squared distances and never crosses an interface
// in its leaf loops; with the kd-ordered layout both sides of a leaf-leaf
// scan are contiguous row blocks.
func BCCP(t *Tree, m Metric, a, b *Node) BCCPResult {
	if _, ok := m.(Euclidean); ok {
		best := BCCPResult{U: -1, V: -1, W: math.Inf(1)}
		if t.f32 != nil && t.f32.Kern.Sq {
			bccpSq32(t, a, b, geometry.SqDistBoxes(a.Box, b.Box), &best)
		} else {
			bccpL2(t, t.sqKern, a, b, geometry.SqDistBoxes(a.Box, b.Box), &best)
		}
		best.W = math.Sqrt(best.W)
		return best
	}
	best := BCCPResult{U: -1, V: -1, W: math.Inf(1)}
	bccp(t, m, a, b, m.NodeLB(a, b), &best)
	return best
}

// BCCPSq computes the bichromatic closest pair between a and b in squared
// space: under plain squared Euclidean distance when cd is nil, or under
// squared mutual reachability max{d², cd[p]², cd[q]²} when cd holds the
// kd-order core distances (node CDMin/CDMax annotations must be set). The
// returned W is the squared-space weight; callers needing the true metric
// weight evaluate their metric on (U, V). MemoGFK's monomorphized L2 fast
// paths run entirely against this traversal.
func BCCPSq(t *Tree, cd []float64, a, b *Node) BCCPResult {
	best := BCCPResult{U: -1, V: -1, W: math.Inf(1)}
	if cd == nil {
		if t.f32 != nil && t.f32.Kern.Sq {
			bccpSq32(t, a, b, geometry.SqDistBoxes(a.Box, b.Box), &best)
		} else {
			bccpL2(t, t.sqKern, a, b, geometry.SqDistBoxes(a.Box, b.Box), &best)
		}
		return best
	}
	if t.f32 != nil && t.f32.Kern.Sq {
		bccpMutSq32(t, cd, a, b, sqMutNodeLB(a, b), &best)
	} else {
		bccpMutSq(t, cd, a, b, sqMutNodeLB(a, b), &best)
	}
	return best
}

// bccpMutSq is bccpL2 under squared mutual reachability: leaf weights are
// max{d², cd[p]², cd[q]²} and pruning uses the squared node lower bound
// max{boxdist², cdmin²}. lb is sqMutNodeLB(a, b), computed by the caller —
// the parent already evaluated it to order the child descent, so passing
// it down halves the O(dim) bound evaluations of the traversal.
func bccpMutSq(t *Tree, cd []float64, a, b *Node, lb float64, best *BCCPResult) {
	if lb >= best.W {
		return
	}
	if a.IsLeaf() && b.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := a.Lo; p < a.Hi; p++ {
			rp := int(p) * d
			pc := data[rp : rp+d : rp+d]
			cp2 := cd[p] * cd[p]
			for q := b.Lo; q < b.Hi; q++ {
				if p == q {
					continue
				}
				rq := int(q) * d
				w := kern(pc, data[rq:rq+d:rq+d])
				if cp2 > w {
					w = cp2
				}
				if cq2 := cd[q] * cd[q]; cq2 > w {
					w = cq2
				}
				if w < best.W {
					*best = BCCPResult{U: p, V: q, W: w}
				}
			}
		}
		return
	}
	if b.IsLeaf() || (!a.IsLeaf() && a.Radius >= b.Radius) {
		al, ar := t.LeftOf(a), t.RightOf(a)
		d1 := sqMutNodeLB(al, b)
		d2 := sqMutNodeLB(ar, b)
		if d1 <= d2 {
			bccpMutSq(t, cd, al, b, d1, best)
			bccpMutSq(t, cd, ar, b, d2, best)
		} else {
			bccpMutSq(t, cd, ar, b, d2, best)
			bccpMutSq(t, cd, al, b, d1, best)
		}
		return
	}
	bl, br := t.LeftOf(b), t.RightOf(b)
	d1 := sqMutNodeLB(a, bl)
	d2 := sqMutNodeLB(a, br)
	if d1 <= d2 {
		bccpMutSq(t, cd, a, bl, d1, best)
		bccpMutSq(t, cd, a, br, d2, best)
	} else {
		bccpMutSq(t, cd, a, br, d2, best)
		bccpMutSq(t, cd, a, bl, d1, best)
	}
}

// sqMutNodeLB is the squared mutual-reachability node lower bound
// max{boxdist², max(CDMin)²}. For trees without core-distance annotations
// (CDMin zero) it degenerates to the plain squared box distance.
func sqMutNodeLB(a, b *Node) float64 {
	s := geometry.SqDistBoxes(a.Box, b.Box)
	c := a.CDMin
	if b.CDMin > c {
		c = b.CDMin
	}
	if c2 := c * c; c2 > s {
		return c2
	}
	return s
}

// SqMutNodeLB exposes the squared mutual-reachability lower bound for the
// MST package's monomorphized traversals.
func SqMutNodeLB(a, b *Node) float64 { return sqMutNodeLB(a, b) }

// SqMutNodeLBBounded is SqMutNodeLB with an early exit once the bound is
// reached (see geometry.SqDistBoxesBounded): the result is exact below
// bound and otherwise only certifies lb >= bound. The core-distance term
// is O(1) and checked first, so far-apart node pairs skip most of the
// O(dim) box scan.
func SqMutNodeLBBounded(a, b *Node, bound float64) float64 {
	c := a.CDMin
	if b.CDMin > c {
		c = b.CDMin
	}
	c2 := c * c
	if c2 >= bound {
		return c2
	}
	if s := geometry.SqDistBoxesBounded(a.Box, b.Box, bound); s > c2 {
		return s
	}
	return c2
}

// SqMutNodeUBBounded is SqMutNodeUB with the same early-exit contract.
func SqMutNodeUBBounded(a, b *Node, bound float64) float64 {
	c := a.CDMax
	if b.CDMax > c {
		c = b.CDMax
	}
	c2 := c * c
	if c2 >= bound {
		return c2
	}
	if s := geometry.SqMaxDistBoxesBounded(a.Box, b.Box, bound); s > c2 {
		return s
	}
	return c2
}

// SqMutNodeUB is the squared mutual-reachability node upper bound
// max{boxmaxdist², max(CDMax)²}.
func SqMutNodeUB(a, b *Node) float64 {
	s := geometry.SqMaxDistBoxes(a.Box, b.Box)
	c := a.CDMax
	if b.CDMax > c {
		c = b.CDMax
	}
	if c2 := c * c; c2 > s {
		return c2
	}
	return s
}

// bccpL2 mirrors bccp for the Euclidean metric with best.W held in squared
// space; squaring is monotone, so the traversal order and the resulting
// pair match the generic traversal exactly. lb is the squared box distance
// of (a, b), already computed by the caller for child ordering.
func bccpL2(t *Tree, kern func(a, b []float64) float64, a, b *Node, lb float64, best *BCCPResult) {
	if lb >= best.W {
		return
	}
	if a.IsLeaf() && b.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := a.Lo; p < a.Hi; p++ {
			rp := int(p) * d
			pc := data[rp : rp+d : rp+d]
			for q := b.Lo; q < b.Hi; q++ {
				if p == q {
					continue
				}
				rq := int(q) * d
				if w := kern(pc, data[rq:rq+d:rq+d]); w < best.W {
					*best = BCCPResult{U: p, V: q, W: w}
				}
			}
		}
		return
	}
	if b.IsLeaf() || (!a.IsLeaf() && a.Radius >= b.Radius) {
		al, ar := t.LeftOf(a), t.RightOf(a)
		d1 := geometry.SqDistBoxes(al.Box, b.Box)
		d2 := geometry.SqDistBoxes(ar.Box, b.Box)
		if d1 <= d2 {
			bccpL2(t, kern, al, b, d1, best)
			bccpL2(t, kern, ar, b, d2, best)
		} else {
			bccpL2(t, kern, ar, b, d2, best)
			bccpL2(t, kern, al, b, d1, best)
		}
		return
	}
	bl, br := t.LeftOf(b), t.RightOf(b)
	d1 := geometry.SqDistBoxes(a.Box, bl.Box)
	d2 := geometry.SqDistBoxes(a.Box, br.Box)
	if d1 <= d2 {
		bccpL2(t, kern, a, bl, d1, best)
		bccpL2(t, kern, a, br, d2, best)
	} else {
		bccpL2(t, kern, a, br, d2, best)
		bccpL2(t, kern, a, bl, d1, best)
	}
}

func bccp(t *Tree, m Metric, a, b *Node, lb float64, best *BCCPResult) {
	if lb >= best.W {
		return
	}
	if a.IsLeaf() && b.IsLeaf() {
		for p := a.Lo; p < a.Hi; p++ {
			for q := b.Lo; q < b.Hi; q++ {
				if p == q {
					continue
				}
				if d := m.Dist(p, q); d < best.W {
					*best = BCCPResult{U: p, V: q, W: d}
				}
			}
		}
		return
	}
	// Split the node with the larger bounding sphere (matching FindPair's
	// convention); descend the nearer child pair first for tighter pruning.
	if b.IsLeaf() || (!a.IsLeaf() && a.Radius >= b.Radius) {
		al, ar := t.LeftOf(a), t.RightOf(a)
		d1 := m.NodeLB(al, b)
		d2 := m.NodeLB(ar, b)
		if d1 <= d2 {
			bccp(t, m, al, b, d1, best)
			bccp(t, m, ar, b, d2, best)
		} else {
			bccp(t, m, ar, b, d2, best)
			bccp(t, m, al, b, d1, best)
		}
		return
	}
	bl, br := t.LeftOf(b), t.RightOf(b)
	d1 := m.NodeLB(a, bl)
	d2 := m.NodeLB(a, br)
	if d1 <= d2 {
		bccp(t, m, a, bl, d1, best)
		bccp(t, m, a, br, d2, best)
	} else {
		bccp(t, m, a, br, d2, best)
		bccp(t, m, a, bl, d1, best)
	}
}

package kdtree

import (
	"encoding/binary"
	"testing"

	"parclust/internal/metric"
)

// TestSnapshotRoundTrip encodes and decodes trees across sizes, dimensions,
// and metrics, and checks the restored tree is structurally identical and
// answers queries exactly like the original.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 256, 3000} {
		for _, dim := range []int{2, 3, 5} {
			for _, m := range []metric.Metric{metric.L2{}, metric.L1{}} {
				pts := randPoints(n, dim, int64(n*dim+1))
				orig := BuildMetric(pts, 1, m)
				buf := orig.AppendSnapshot(nil)
				if len(buf) != orig.SnapshotSize() {
					t.Fatalf("n=%d dim=%d: encoded %d bytes, SnapshotSize says %d", n, dim, len(buf), orig.SnapshotSize())
				}
				dec, err := DecodeSnapshot(buf, pts, m)
				if err != nil {
					t.Fatalf("n=%d dim=%d %s: decode: %v", n, dim, m.Name(), err)
				}
				if dec.NumNodes() != orig.NumNodes() || dec.LeafSize != orig.LeafSize {
					t.Fatalf("n=%d: %d nodes / leaf %d, want %d / %d",
						n, dec.NumNodes(), dec.LeafSize, orig.NumNodes(), orig.LeafSize)
				}
				for i := range orig.Orig {
					if dec.Orig[i] != orig.Orig[i] || dec.Inv[i] != orig.Inv[i] {
						t.Fatalf("n=%d: permutation mismatch at %d", n, i)
					}
				}
				for i := range orig.Pts.Data {
					if dec.Pts.Data[i] != orig.Pts.Data[i] {
						t.Fatalf("n=%d: kd-order row data mismatch at %d", n, i)
					}
				}
				if n == 0 {
					continue
				}
				checkTree(t, dec)
				for q := int32(0); q < int32(min(n, 25)); q++ {
					a, b := orig.KNN(q, min(n, 8)), dec.KNN(q, min(n, 8))
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("n=%d q=%d: KNN mismatch", n, q)
						}
					}
					if orig.RangeCount(q, 20) != dec.RangeCount(q, 20) {
						t.Fatalf("n=%d q=%d: RangeCount mismatch", n, q)
					}
				}
				cdA, cdB := orig.CoreDistances(min(n, 4)), dec.CoreDistances(min(n, 4))
				for i := range cdA {
					if cdA[i] != cdB[i] {
						t.Fatalf("n=%d: core distance mismatch at %d", n, i)
					}
				}
			}
		}
	}
}

// TestSnapshotDecodeRejectsCorruption flips bytes and truncates the
// encoding at every offset; decode must fail cleanly (or, for mutations
// that keep all invariants intact, succeed) and never panic.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	pts := randPoints(64, 3, 7)
	tr := Build(pts, 1)
	buf := tr.AppendSnapshot(nil)

	for cut := 0; cut <= len(buf); cut += 7 {
		if cut == len(buf) {
			continue
		}
		if _, err := DecodeSnapshot(buf[:cut], pts, metric.L2{}); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	// Structural fields (header, permutation, node ranges and child
	// indices): corrupt every byte of them. Decode must either reject the
	// mutation or produce a tree whose queries run without panicking —
	// float payload corruption (radii, boxes) is the store layer's
	// checksum job; structure is what keeps traversals memory-safe.
	var offsets []int
	for off := 0; off < 12+4*pts.N; off++ {
		offsets = append(offsets, off)
	}
	nodesBase := 12 + 4*pts.N
	for i := 0; i < tr.NumNodes(); i++ {
		for off := 0; off < 16; off++ { // Lo, Hi, Left, Right
			offsets = append(offsets, nodesBase+i*snapNodeBytes+off)
		}
	}
	for _, off := range offsets {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0x80
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode/query panicked on corruption at offset %d: %v", off, r)
				}
			}()
			dec, err := DecodeSnapshot(mut, pts, metric.L2{})
			if err != nil || dec == nil {
				return
			}
			// A surviving mutation must still serve queries memory-safely.
			dec.KNN(0, 4)
			dec.RangeCount(1, 10)
		}()
	}

	// Duplicate permutation entry: position 1 claims the same original id
	// as position 0.
	mut := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(mut[16:], binary.LittleEndian.Uint32(mut[12:]))
	if _, err := DecodeSnapshot(mut, pts, metric.L2{}); err == nil {
		t.Fatal("duplicate permutation entry decoded successfully")
	}
}

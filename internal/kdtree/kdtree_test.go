package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"parclust/internal/geometry"
	"parclust/internal/unionfind"
)

func randPoints(n, dim int, seed int64) geometry.Points {
	rng := rand.New(rand.NewSource(seed))
	p := geometry.NewPoints(n, dim)
	for i := range p.Data {
		p.Data[i] = rng.Float64() * 100
	}
	return p
}

func checkTree(t *testing.T, tr *Tree) {
	seen := make([]int, tr.Pts.N)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			if n.Size() > tr.LeafSize {
				t.Fatalf("leaf of size %d exceeds leaf size %d", n.Size(), tr.LeafSize)
			}
			for _, p := range tr.Points(n) {
				seen[p]++
			}
		} else {
			l, r := tr.LeftOf(n), tr.RightOf(n)
			if l.Lo != n.Lo || l.Hi != r.Lo || r.Hi != n.Hi {
				t.Fatal("child ranges do not partition parent")
			}
			walk(l)
			walk(r)
		}
		// box sanity: contains all points; radius covers them
		for _, p := range tr.Points(n) {
			if geometry.SqDistPointBox(tr.Pts.At(int(p)), n.Box) != 0 {
				t.Fatal("point outside node box")
			}
			if d := math.Sqrt(tr.Pts.SqDistTo(int(p), n.Ctr)); d > n.Radius+1e-9 {
				t.Fatal("point outside node bounding sphere")
			}
		}
	}
	walk(tr.Root)
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appears %d times", i, c)
		}
	}
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 10, 257, 4000} {
		for _, leaf := range []int{1, 16} {
			pts := randPoints(n, 3, int64(n))
			tr := Build(pts, leaf)
			checkTree(t, tr)
		}
	}
}

func TestBuildDuplicatePoints(t *testing.T) {
	pts := geometry.NewPoints(64, 2) // all zeros
	tr := Build(pts, 1)
	checkTree(t, tr)
	if tr.Root.Radius != 0 {
		t.Fatal("radius of identical points should be 0")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	pts := randPoints(300, 3, 9)
	tr := Build(pts, 8)
	for _, k := range []int{1, 2, 5, 17} {
		for q := 0; q < pts.N; q += 13 {
			got := tr.KNN(int32(q), k)
			ds := make([]float64, pts.N)
			for j := 0; j < pts.N; j++ {
				ds[j] = pts.Dist(q, j)
			}
			sort.Float64s(ds)
			if len(got) != k {
				t.Fatalf("k=%d: got %d neighbors", k, len(got))
			}
			for i, nb := range got {
				if math.Abs(nb.Dist-ds[i]) > 1e-9 {
					t.Fatalf("k=%d q=%d: neighbor %d dist %v, want %v", k, q, i, nb.Dist, ds[i])
				}
			}
			if got[0].Idx != int32(q) || got[0].Dist != 0 {
				t.Fatalf("nearest neighbor of %d is not itself", q)
			}
		}
	}
}

func TestCoreDistancesMatchBruteForce(t *testing.T) {
	pts := randPoints(200, 2, 10)
	tr := Build(pts, 4)
	for _, minPts := range []int{1, 2, 3, 10} {
		cd := tr.CoreDistances(minPts)
		for i := 0; i < pts.N; i++ {
			ds := make([]float64, pts.N)
			for j := 0; j < pts.N; j++ {
				ds[j] = pts.Dist(i, j)
			}
			sort.Float64s(ds)
			want := ds[minPts-1]
			if minPts == 1 {
				want = 0
			}
			if math.Abs(cd[i]-want) > 1e-9 {
				t.Fatalf("minPts=%d: cd[%d]=%v, want %v", minPts, i, cd[i], want)
			}
		}
	}
}

func TestAnnotateCoreDists(t *testing.T) {
	pts := randPoints(500, 3, 11)
	tr := Build(pts, 1)
	cd := tr.CoreDistances(5)
	tr.AnnotateCoreDists(cd)
	var walk func(n *Node)
	walk = func(n *Node) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range tr.Points(n) {
			// Node points are kd-order positions; cd is in original order.
			lo = math.Min(lo, cd[tr.Orig[p]])
			hi = math.Max(hi, cd[tr.Orig[p]])
			if tr.CoreDist[p] != cd[tr.Orig[p]] {
				t.Fatal("kd-order CoreDist copy disagrees with original-order cd")
			}
		}
		if n.CDMin != lo || n.CDMax != hi {
			t.Fatalf("node cd bounds [%v,%v], want [%v,%v]", n.CDMin, n.CDMax, lo, hi)
		}
		if !n.IsLeaf() {
			walk(tr.LeftOf(n))
			walk(tr.RightOf(n))
		}
	}
	walk(tr.Root)
}

func TestRefreshComponents(t *testing.T) {
	pts := randPoints(100, 2, 12)
	tr := Build(pts, 2)
	uf := unionfind.New(pts.N)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		uf.Union(int32(rng.Intn(pts.N)), int32(rng.Intn(pts.N)))
	}
	comp := tr.RefreshComponents(uf)
	for i := range comp {
		if comp[i] != uf.Find(int32(i)) {
			t.Fatal("per-point component label wrong")
		}
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		pts := tr.Points(n)
		same := true
		for _, p := range pts[1:] {
			if comp[p] != comp[pts[0]] {
				same = false
			}
		}
		if same && n.Comp != comp[pts[0]] {
			t.Fatal("uniform node not labeled with its component")
		}
		if !same && n.Comp != -1 {
			t.Fatal("mixed node not labeled -1")
		}
		if !n.IsLeaf() {
			walk(tr.LeftOf(n))
			walk(tr.RightOf(n))
		}
	}
	walk(tr.Root)
}

func bruteBCCP(pts geometry.Points, m Metric, a, b []int32) BCCPResult {
	best := BCCPResult{U: -1, V: -1, W: math.Inf(1)}
	for _, p := range a {
		for _, q := range b {
			if p == q {
				continue
			}
			if d := m.Dist(p, q); d < best.W {
				best = BCCPResult{U: p, V: q, W: d}
			}
		}
	}
	return best
}

func TestBCCPEuclidean(t *testing.T) {
	pts := randPoints(400, 3, 14)
	tr := Build(pts, 4)
	m := NewEuclidean(tr)
	a, b := tr.LeftOf(tr.Root), tr.RightOf(tr.Root)
	got := BCCP(tr, m, a, b)
	want := bruteBCCP(tr.Pts, m, tr.Points(a), tr.Points(b))
	if math.Abs(got.W-want.W) > 1e-12 {
		t.Fatalf("BCCP weight %v, want %v", got.W, want.W)
	}
	// deeper node pairs
	if !a.IsLeaf() && !b.IsLeaf() {
		got = BCCP(tr, m, tr.LeftOf(a), tr.RightOf(b))
		want = bruteBCCP(tr.Pts, m, tr.Points(tr.LeftOf(a)), tr.Points(tr.RightOf(b)))
		if math.Abs(got.W-want.W) > 1e-12 {
			t.Fatalf("deep BCCP weight %v, want %v", got.W, want.W)
		}
	}
}

func TestBCCPMutualReachability(t *testing.T) {
	pts := randPoints(300, 2, 15)
	tr := Build(pts, 4)
	cd := tr.CoreDistances(5)
	tr.AnnotateCoreDists(cd)
	m := NewMutualReachability(tr)
	a, b := tr.LeftOf(tr.Root), tr.RightOf(tr.Root)
	got := BCCP(tr, m, a, b)
	want := bruteBCCP(tr.Pts, m, tr.Points(a), tr.Points(b))
	if math.Abs(got.W-want.W) > 1e-12 {
		t.Fatalf("BCCP* weight %v, want %v", got.W, want.W)
	}
}

func TestMetricBoundsQuick(t *testing.T) {
	pts := randPoints(256, 3, 16)
	tr := Build(pts, 4)
	cd := tr.CoreDistances(4)
	tr.AnnotateCoreDists(cd)
	metrics := []Metric{NewEuclidean(tr), NewMutualReachability(tr)}
	var nodes []*Node
	var collect func(n *Node)
	collect = func(n *Node) {
		nodes = append(nodes, n)
		if !n.IsLeaf() {
			collect(tr.LeftOf(n))
			collect(tr.RightOf(n))
		}
	}
	collect(tr.Root)
	f := func(ai, bi uint16, mi bool) bool {
		a := nodes[int(ai)%len(nodes)]
		b := nodes[int(bi)%len(nodes)]
		m := metrics[0]
		if mi {
			m = metrics[1]
		}
		lb, ub := m.NodeLB(a, b), m.NodeUB(a, b)
		for _, p := range tr.Points(a) {
			for _, q := range tr.Points(b) {
				if p == q {
					continue
				}
				d := m.Dist(p, q)
				if d < lb-1e-9 || d > ub+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

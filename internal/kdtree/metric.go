package kdtree

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/metric"
)

// Metric abstracts the edge-weight function so the same MST machinery runs
// (generalized) EMST and mutual-reachability HDBSCAN*. NodeLB/NodeUB bound
// the metric over all point pairs drawn from two tree nodes; NodeLB must be
// monotone non-decreasing under descent to children (box bounds are).
type Metric interface {
	// Dist is the metric distance between points i and j.
	Dist(i, j int32) float64
	// NodeLB lower-bounds Dist(p, q) for all p in a, q in b.
	NodeLB(a, b *Node) float64
	// NodeUB upper-bounds Dist(p, q) for all p in a, q in b.
	NodeUB(a, b *Node) float64
}

// Euclidean is the plain Euclidean metric over a point set. BCCP detects it
// and switches to a monomorphized squared-distance traversal.
type Euclidean struct{ Pts geometry.Points }

// Dist returns the Euclidean distance between points i and j.
func (m Euclidean) Dist(i, j int32) float64 { return m.Pts.Dist(int(i), int(j)) }

// NodeLB returns the bounding-box distance between a and b.
func (m Euclidean) NodeLB(a, b *Node) float64 { return BoxDist(a, b) }

// NodeUB returns the maximum bounding-box distance between a and b.
func (m Euclidean) NodeUB(a, b *Node) float64 { return BoxMaxDist(a, b) }

// PointDist adapts a point-space metric kernel to the edge-weight
// interface, generalizing the EMST algorithms beyond L2.
type PointDist struct {
	Pts geometry.Points
	M   metric.Metric
}

// Dist returns the kernel distance between points i and j.
func (m PointDist) Dist(i, j int32) float64 {
	return m.M.Dist(m.Pts.At(int(i)), m.Pts.At(int(j)))
}

// NodeLB returns the kernel's box lower bound between a and b.
func (m PointDist) NodeLB(a, b *Node) float64 { return m.M.BoxesLB(a.Box, b.Box) }

// NodeUB returns the kernel's box upper bound between a and b.
func (m PointDist) NodeUB(a, b *Node) float64 { return m.M.BoxesUB(a.Box, b.Box) }

// MutualReachability is the HDBSCAN* mutual reachability metric
// d_m(p,q) = max{cd(p), cd(q), d(p,q)} (Section 2.1), with the base
// distance d taken under kernel M (nil means Euclidean, the paper's
// setting). Node bounds combine the kernel's box bounds with the
// CDMin/CDMax annotations (AnnotateCoreDists must have been called on the
// tree, with core distances computed under the same kernel).
type MutualReachability struct {
	Pts geometry.Points
	CD  []float64
	M   metric.Metric
}

// Dist returns the mutual reachability distance between points i and j.
func (m MutualReachability) Dist(i, j int32) float64 {
	var d float64
	if m.M == nil {
		d = m.Pts.Dist(int(i), int(j))
	} else {
		d = m.M.Dist(m.Pts.At(int(i)), m.Pts.At(int(j)))
	}
	return math.Max(d, math.Max(m.CD[i], m.CD[j]))
}

// NodeLB lower-bounds the mutual reachability distance between nodes.
func (m MutualReachability) NodeLB(a, b *Node) float64 {
	var d float64
	if m.M == nil {
		d = BoxDist(a, b)
	} else {
		d = m.M.BoxesLB(a.Box, b.Box)
	}
	return math.Max(d, math.Max(a.CDMin, b.CDMin))
}

// NodeUB upper-bounds the mutual reachability distance between nodes.
func (m MutualReachability) NodeUB(a, b *Node) float64 {
	var d float64
	if m.M == nil {
		d = BoxMaxDist(a, b)
	} else {
		d = m.M.BoxesUB(a.Box, b.Box)
	}
	return math.Max(d, math.Max(a.CDMax, b.CDMax))
}

package kdtree

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/metric"
)

// Metric abstracts the edge-weight function so the same MST machinery runs
// (generalized) EMST and mutual-reachability HDBSCAN*. NodeLB/NodeUB bound
// the metric over all point pairs drawn from two tree nodes; NodeLB must be
// monotone non-decreasing under descent to children (box bounds are).
//
// Point indices are kd-order positions of the tree the metric is used
// with, so instances must be built over the tree's reordered point set
// (Tree.Pts) and kd-order core distances (Tree.CoreDist) — use the
// NewEuclidean/NewPointDist/NewMutualReachability constructors.
type Metric interface {
	// Dist is the metric distance between the points at kd-order
	// positions i and j.
	Dist(i, j int32) float64
	// NodeLB lower-bounds Dist(p, q) for all p in a, q in b.
	NodeLB(a, b *Node) float64
	// NodeUB upper-bounds Dist(p, q) for all p in a, q in b.
	NodeUB(a, b *Node) float64
}

// Euclidean is the plain Euclidean metric over a point set. BCCP detects it
// and switches to a monomorphized squared-distance traversal.
type Euclidean struct{ Pts geometry.Points }

// Dist returns the Euclidean distance between points i and j.
func (m Euclidean) Dist(i, j int32) float64 { return m.Pts.Dist(int(i), int(j)) }

// NodeLB returns the bounding-box distance between a and b.
func (m Euclidean) NodeLB(a, b *Node) float64 { return BoxDist(a, b) }

// NodeUB returns the maximum bounding-box distance between a and b.
func (m Euclidean) NodeUB(a, b *Node) float64 { return BoxMaxDist(a, b) }

// PointDist adapts a point-space metric kernel to the edge-weight
// interface, generalizing the EMST algorithms beyond L2.
type PointDist struct {
	Pts geometry.Points
	M   metric.Metric
}

// Dist returns the kernel distance between points i and j.
func (m PointDist) Dist(i, j int32) float64 {
	return m.M.Dist(m.Pts.At(int(i)), m.Pts.At(int(j)))
}

// NodeLB returns the kernel's box lower bound between a and b.
func (m PointDist) NodeLB(a, b *Node) float64 { return m.M.BoxesLB(a.Box, b.Box) }

// NodeUB returns the kernel's box upper bound between a and b.
func (m PointDist) NodeUB(a, b *Node) float64 { return m.M.BoxesUB(a.Box, b.Box) }

// MutualReachability is the HDBSCAN* mutual reachability metric
// d_m(p,q) = max{cd(p), cd(q), d(p,q)} (Section 2.1), with the base
// distance d taken under kernel M (nil means Euclidean, the paper's
// setting). Node bounds combine the kernel's box bounds with the
// CDMin/CDMax annotations (AnnotateCoreDists must have been called on the
// tree, with core distances computed under the same kernel).
type MutualReachability struct {
	Pts geometry.Points
	CD  []float64
	M   metric.Metric
}

// Dist returns the mutual reachability distance between points i and j.
// On the Euclidean path the base distance is compared in squared space
// first, so the sqrt is skipped whenever a core distance dominates.
func (m MutualReachability) Dist(i, j int32) float64 {
	c := m.CD[i]
	if m.CD[j] > c {
		c = m.CD[j]
	}
	if m.M == nil {
		sq := m.Pts.SqDist(int(i), int(j))
		if sq <= c*c {
			return c
		}
		if d := math.Sqrt(sq); d > c {
			return d
		}
		return c
	}
	if d := m.M.Dist(m.Pts.At(int(i)), m.Pts.At(int(j))); d > c {
		return d
	}
	return c
}

// NodeLB lower-bounds the mutual reachability distance between nodes.
func (m MutualReachability) NodeLB(a, b *Node) float64 {
	c := a.CDMin
	if b.CDMin > c {
		c = b.CDMin
	}
	if m.M == nil {
		sq := geometry.SqDistBoxes(a.Box, b.Box)
		if sq <= c*c {
			return c
		}
		if d := math.Sqrt(sq); d > c {
			return d
		}
		return c
	}
	if d := m.M.BoxesLB(a.Box, b.Box); d > c {
		return d
	}
	return c
}

// NodeUB upper-bounds the mutual reachability distance between nodes.
func (m MutualReachability) NodeUB(a, b *Node) float64 {
	c := a.CDMax
	if b.CDMax > c {
		c = b.CDMax
	}
	if m.M == nil {
		sq := geometry.SqMaxDistBoxes(a.Box, b.Box)
		if sq <= c*c {
			return c
		}
		if d := math.Sqrt(sq); d > c {
			return d
		}
		return c
	}
	if d := m.M.BoxesUB(a.Box, b.Box); d > c {
		return d
	}
	return c
}

// NewEuclidean returns the Euclidean edge metric over t's kd-ordered
// points.
func NewEuclidean(t *Tree) Euclidean { return Euclidean{Pts: t.Pts} }

// NewPointDist adapts t's metric kernel to the edge-weight interface over
// the kd-ordered points.
func NewPointDist(t *Tree) PointDist { return PointDist{Pts: t.Pts, M: t.M} }

// NewMutualReachability returns the mutual reachability edge metric over
// t's kd-ordered points and kd-order core distances. AnnotateCoreDists
// must have been called; the base kernel is t's metric (nil means the
// Euclidean fast paths).
func NewMutualReachability(t *Tree) MutualReachability {
	m := MutualReachability{Pts: t.Pts, CD: t.CoreDist}
	if !t.l2 {
		m.M = t.M
	}
	return m
}

package kdtree

import (
	"math"

	"parclust/internal/geometry"
)

// Metric abstracts the edge-weight function so the same MST machinery runs
// Euclidean EMST and mutual-reachability HDBSCAN*. NodeLB/NodeUB bound the
// metric over all point pairs drawn from two tree nodes; NodeLB must be
// monotone non-decreasing under descent to children (box bounds are).
type Metric interface {
	// Dist is the metric distance between points i and j.
	Dist(i, j int32) float64
	// NodeLB lower-bounds Dist(p, q) for all p in a, q in b.
	NodeLB(a, b *Node) float64
	// NodeUB upper-bounds Dist(p, q) for all p in a, q in b.
	NodeUB(a, b *Node) float64
}

// Euclidean is the plain Euclidean metric over a point set.
type Euclidean struct{ Pts geometry.Points }

// Dist returns the Euclidean distance between points i and j.
func (m Euclidean) Dist(i, j int32) float64 { return m.Pts.Dist(int(i), int(j)) }

// NodeLB returns the bounding-box distance between a and b.
func (m Euclidean) NodeLB(a, b *Node) float64 { return BoxDist(a, b) }

// NodeUB returns the maximum bounding-box distance between a and b.
func (m Euclidean) NodeUB(a, b *Node) float64 { return BoxMaxDist(a, b) }

// MutualReachability is the HDBSCAN* mutual reachability metric
// d_m(p,q) = max{cd(p), cd(q), d(p,q)} (Section 2.1). Node bounds combine box
// distances with the CDMin/CDMax annotations (AnnotateCoreDists must have
// been called on the tree).
type MutualReachability struct {
	Pts geometry.Points
	CD  []float64
}

// Dist returns the mutual reachability distance between points i and j.
func (m MutualReachability) Dist(i, j int32) float64 {
	d := m.Pts.Dist(int(i), int(j))
	return math.Max(d, math.Max(m.CD[i], m.CD[j]))
}

// NodeLB lower-bounds the mutual reachability distance between nodes.
func (m MutualReachability) NodeLB(a, b *Node) float64 {
	return math.Max(BoxDist(a, b), math.Max(a.CDMin, b.CDMin))
}

// NodeUB upper-bounds the mutual reachability distance between nodes.
func (m MutualReachability) NodeUB(a, b *Node) float64 {
	return math.Max(BoxMaxDist(a, b), math.Max(a.CDMax, b.CDMax))
}

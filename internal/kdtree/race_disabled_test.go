//go:build !race

package kdtree

const raceEnabled = false

package kdtree

import (
	"math"

	"parclust/internal/abort"
	"parclust/internal/geometry"
	"parclust/internal/parallel"
)

// Neighbor is a k-NN result entry. Idx is an original input id.
type Neighbor struct {
	Idx  int32
	Dist float64
}

// knnHeap is a bounded max-heap of size k over squared distances, used so
// the worst current candidate can be evicted in O(log k). Stored indices
// are kd-order positions; callers map them to original ids on extraction.
type knnHeap struct {
	idx []int32
	sq  []float64
	k   int
}

// reset prepares the heap for a query of size k, reusing its arrays.
func (h *knnHeap) reset(k int) {
	if cap(h.idx) < k {
		h.idx = make([]int32, 0, k)
		h.sq = make([]float64, 0, k)
	}
	h.idx, h.sq, h.k = h.idx[:0], h.sq[:0], k
}

func (h *knnHeap) worst() float64 {
	if len(h.sq) < h.k {
		return math.Inf(1)
	}
	return h.sq[0]
}

func (h *knnHeap) push(i int32, sq float64) {
	if len(h.sq) < h.k {
		h.idx = append(h.idx, i)
		h.sq = append(h.sq, sq)
		// sift up
		c := len(h.sq) - 1
		for c > 0 {
			p := (c - 1) / 2
			if h.sq[p] >= h.sq[c] {
				break
			}
			h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
			h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
			c = p
		}
		return
	}
	if sq >= h.sq[0] {
		return
	}
	h.sq[0], h.idx[0] = sq, i
	// sift down
	p := 0
	for {
		c := 2*p + 1
		if c >= len(h.sq) {
			break
		}
		if c+1 < len(h.sq) && h.sq[c+1] > h.sq[c] {
			c++
		}
		if h.sq[p] >= h.sq[c] {
			break
		}
		h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
		h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
		p = c
	}
}

// popAllInto heap-extracts into sorted order (descending pops) appending to
// out, mapping each stored key through finish (identity for metric
// traversals, sqrt for the squared-distance L2 traversal) and each stored
// position through orig.
func (h *knnHeap) popAllInto(out []Neighbor, orig []int32, finish func(float64) float64) []Neighbor {
	start := len(out)
	out = append(out, make([]Neighbor, len(h.sq))...)
	for i := len(out) - 1; i >= start; i-- {
		out[i] = Neighbor{Idx: orig[h.idx[0]], Dist: finish(h.sq[0])}
		last := len(h.sq) - 1
		h.sq[0], h.idx[0] = h.sq[last], h.idx[last]
		h.sq, h.idx = h.sq[:last], h.idx[:last]
		// sift down
		p := 0
		for {
			c := 2*p + 1
			if c >= len(h.sq) {
				break
			}
			if c+1 < len(h.sq) && h.sq[c+1] > h.sq[c] {
				c++
			}
			if h.sq[p] >= h.sq[c] {
				break
			}
			h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
			h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
			p = c
		}
	}
	return out
}

func identity(d float64) float64 { return d }

// KNNWorkspace carries the reusable buffers of a k-NN query stream. A
// workspace serves one goroutine; steady-state KNNInto calls through it
// perform zero heap allocations.
type KNNWorkspace struct {
	h   knnHeap
	out []Neighbor
}

// KNN returns the k nearest neighbors of the point with original id q
// (including q itself), sorted by increasing tree-metric distance.
func (t *Tree) KNN(q int32, k int) []Neighbor {
	var ws KNNWorkspace
	return t.KNNInto(q, k, &ws)
}

// KNNInto is KNN reusing the workspace's buffers; the returned slice is
// valid until the next call with the same workspace.
func (t *Tree) KNNInto(q int32, k int, ws *KNNWorkspace) []Neighbor {
	ws.h.reset(k)
	ws.out = ws.out[:0]
	qc := t.Pts.At(int(t.Inv[q]))
	if f := t.f32; f != nil {
		t.knn32(t.Root, qc, f.Row(t.Inv[q]), &ws.h)
		ws.out = ws.h.popAllInto(ws.out, t.Orig, f.Kern.Finish)
		return ws.out
	}
	if t.l2 {
		t.knn(t.Root, qc, &ws.h)
		ws.out = ws.h.popAllInto(ws.out, t.Orig, math.Sqrt)
		return ws.out
	}
	t.knnMetric(t.Root, qc, &ws.h)
	ws.out = ws.h.popAllInto(ws.out, t.Orig, identity)
	return ws.out
}

// knn is the Euclidean traversal; heap keys are squared distances, the
// distance kernel was monomorphized once at tree build, and leaf scans run
// over contiguous kd-ordered rows.
func (t *Tree) knn(n *Node, qc []float64, h *knnHeap) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			r := int(p) * d
			h.push(p, kern(qc, data[r:r+d:r+d]))
		}
		return
	}
	left, right := t.LeftOf(n), t.RightOf(n)
	dl := geometry.SqDistPointBox(qc, left.Box)
	dr := geometry.SqDistPointBox(qc, right.Box)
	first, second := left, right
	df, ds := dl, dr
	if dr < dl {
		first, second = right, left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knn(first, qc, h)
	}
	if ds < h.worst() {
		t.knn(second, qc, h)
	}
}

// knnMetric is the general traversal: heap keys are tree-metric distances
// and pruning uses the metric's point-box lower bound.
func (t *Tree) knnMetric(n *Node, qc []float64, h *knnHeap) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			r := int(p) * d
			h.push(p, t.M.Dist(qc, data[r:r+d:r+d]))
		}
		return
	}
	left, right := t.LeftOf(n), t.RightOf(n)
	dl := t.M.PointBoxLB(qc, left.Box)
	dr := t.M.PointBoxLB(qc, right.Box)
	first, second := left, right
	df, ds := dl, dr
	if dr < dl {
		first, second = right, left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knnMetric(first, qc, h)
	}
	if ds < h.worst() {
		t.knnMetric(second, qc, h)
	}
}

// CoreDistances computes, in parallel, the core distance of every point:
// the tree-metric distance to its minPts-nearest neighbor, counting the
// point itself (Section 2.1). The result is in original id order; minPts=1
// gives all zeros. Query points stream through the kd-ordered rows, and
// each worker chunk reuses one heap.
func (t *Tree) CoreDistances(minPts int) []float64 {
	return t.CoreDistancesCancel(minPts, nil)
}

// CoreDistancesCancel is CoreDistances with a cooperative cancellation
// flag, polled once per 64-point worker chunk; on abort it unwinds with
// abort.Signal{} (see BuildMetricCancel). af may be nil.
func (t *Tree) CoreDistancesCancel(minPts int, af *abort.Flag) []float64 {
	cd := make([]float64, t.Pts.N)
	if minPts <= 1 {
		return cd
	}
	dim := t.Pts.Dim
	data := t.Pts.Data
	parallel.ForRange(t.Pts.N, 64, func(lo, hi int) {
		af.Check()
		var h knnHeap
		for p := lo; p < hi; p++ {
			if t.f32 != nil {
				cd[t.Orig[p]] = t.coreDist32(p, minPts, &h)
				continue
			}
			h.reset(minPts)
			qc := data[p*dim : (p+1)*dim : (p+1)*dim]
			if t.l2 {
				t.knn(t.Root, qc, &h)
				if len(h.sq) > 0 { // heap root is the k-th (or farthest available) NN
					cd[t.Orig[p]] = math.Sqrt(h.sq[0])
				}
				continue
			}
			t.knnMetric(t.Root, qc, &h)
			if len(h.sq) > 0 {
				cd[t.Orig[p]] = h.sq[0]
			}
		}
	})
	return cd
}

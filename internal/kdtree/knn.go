package kdtree

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/parallel"
)

// Neighbor is a k-NN result entry.
type Neighbor struct {
	Idx  int32
	Dist float64
}

// knnHeap is a bounded max-heap of size k over squared distances, used so
// the worst current candidate can be evicted in O(log k).
type knnHeap struct {
	idx []int32
	sq  []float64
	k   int
}

func newKNNHeap(k int) *knnHeap {
	return &knnHeap{idx: make([]int32, 0, k), sq: make([]float64, 0, k), k: k}
}

func (h *knnHeap) worst() float64 {
	if len(h.sq) < h.k {
		return math.Inf(1)
	}
	return h.sq[0]
}

func (h *knnHeap) push(i int32, sq float64) {
	if len(h.sq) < h.k {
		h.idx = append(h.idx, i)
		h.sq = append(h.sq, sq)
		// sift up
		c := len(h.sq) - 1
		for c > 0 {
			p := (c - 1) / 2
			if h.sq[p] >= h.sq[c] {
				break
			}
			h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
			h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
			c = p
		}
		return
	}
	if sq >= h.sq[0] {
		return
	}
	h.sq[0], h.idx[0] = sq, i
	// sift down
	p := 0
	for {
		c := 2*p + 1
		if c >= len(h.sq) {
			break
		}
		if c+1 < len(h.sq) && h.sq[c+1] > h.sq[c] {
			c++
		}
		if h.sq[p] >= h.sq[c] {
			break
		}
		h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
		h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
		p = c
	}
}

// KNN returns the k nearest neighbors of point q (including q itself),
// sorted by increasing distance.
func (t *Tree) KNN(q int32, k int) []Neighbor {
	h := newKNNHeap(k)
	t.knn(t.Root, q, h)
	out := make([]Neighbor, len(h.sq))
	// Heap-extract into sorted order (descending pops).
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = Neighbor{Idx: h.idx[0], Dist: math.Sqrt(h.sq[0])}
		last := len(h.sq) - 1
		h.sq[0], h.idx[0] = h.sq[last], h.idx[last]
		h.sq, h.idx = h.sq[:last], h.idx[:last]
		// sift down
		p := 0
		for {
			c := 2*p + 1
			if c >= len(h.sq) {
				break
			}
			if c+1 < len(h.sq) && h.sq[c+1] > h.sq[c] {
				c++
			}
			if h.sq[p] >= h.sq[c] {
				break
			}
			h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
			h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
			p = c
		}
	}
	return out
}

func (t *Tree) knn(n *Node, q int32, h *knnHeap) {
	if n == nil {
		return
	}
	qc := t.Pts.At(int(q))
	if n.IsLeaf() {
		for _, p := range t.Points(n) {
			h.push(p, t.Pts.SqDist(int(q), int(p)))
		}
		return
	}
	dl := geometry.SqDistPointBox(qc, n.Left.Box)
	dr := geometry.SqDistPointBox(qc, n.Right.Box)
	first, second := n.Left, n.Right
	df, ds := dl, dr
	if dr < dl {
		first, second = n.Right, n.Left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knn(first, q, h)
	}
	if ds < h.worst() {
		t.knn(second, q, h)
	}
}

// CoreDistances computes, in parallel, the core distance of every point:
// the distance to its minPts-nearest neighbor, counting the point itself
// (Section 2.1). minPts = 1 gives all zeros.
func (t *Tree) CoreDistances(minPts int) []float64 {
	cd := make([]float64, t.Pts.N)
	if minPts <= 1 {
		return cd
	}
	parallel.For(t.Pts.N, 64, func(i int) {
		h := newKNNHeap(minPts)
		t.knn(t.Root, int32(i), h)
		if len(h.sq) > 0 { // heap root is the k-th (or farthest available) NN
			cd[i] = math.Sqrt(h.sq[0])
		}
	})
	return cd
}

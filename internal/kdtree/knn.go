package kdtree

import (
	"math"

	"parclust/internal/geometry"
	"parclust/internal/parallel"
)

// Neighbor is a k-NN result entry.
type Neighbor struct {
	Idx  int32
	Dist float64
}

// knnHeap is a bounded max-heap of size k over squared distances, used so
// the worst current candidate can be evicted in O(log k).
type knnHeap struct {
	idx []int32
	sq  []float64
	k   int
}

func newKNNHeap(k int) *knnHeap {
	return &knnHeap{idx: make([]int32, 0, k), sq: make([]float64, 0, k), k: k}
}

func (h *knnHeap) worst() float64 {
	if len(h.sq) < h.k {
		return math.Inf(1)
	}
	return h.sq[0]
}

func (h *knnHeap) push(i int32, sq float64) {
	if len(h.sq) < h.k {
		h.idx = append(h.idx, i)
		h.sq = append(h.sq, sq)
		// sift up
		c := len(h.sq) - 1
		for c > 0 {
			p := (c - 1) / 2
			if h.sq[p] >= h.sq[c] {
				break
			}
			h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
			h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
			c = p
		}
		return
	}
	if sq >= h.sq[0] {
		return
	}
	h.sq[0], h.idx[0] = sq, i
	// sift down
	p := 0
	for {
		c := 2*p + 1
		if c >= len(h.sq) {
			break
		}
		if c+1 < len(h.sq) && h.sq[c+1] > h.sq[c] {
			c++
		}
		if h.sq[p] >= h.sq[c] {
			break
		}
		h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
		h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
		p = c
	}
}

// popAll heap-extracts into sorted order (descending pops), mapping each
// stored key through finish (identity for metric traversals, sqrt for the
// squared-distance L2 traversal).
func (h *knnHeap) popAll(finish func(float64) float64) []Neighbor {
	out := make([]Neighbor, len(h.sq))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = Neighbor{Idx: h.idx[0], Dist: finish(h.sq[0])}
		last := len(h.sq) - 1
		h.sq[0], h.idx[0] = h.sq[last], h.idx[last]
		h.sq, h.idx = h.sq[:last], h.idx[:last]
		// sift down
		p := 0
		for {
			c := 2*p + 1
			if c >= len(h.sq) {
				break
			}
			if c+1 < len(h.sq) && h.sq[c+1] > h.sq[c] {
				c++
			}
			if h.sq[p] >= h.sq[c] {
				break
			}
			h.sq[p], h.sq[c] = h.sq[c], h.sq[p]
			h.idx[p], h.idx[c] = h.idx[c], h.idx[p]
			p = c
		}
	}
	return out
}

// KNN returns the k nearest neighbors of point q (including q itself),
// sorted by increasing tree-metric distance.
func (t *Tree) KNN(q int32, k int) []Neighbor {
	h := newKNNHeap(k)
	if t.l2 {
		t.knn(t.Root, t.Pts.At(int(q)), h)
		return h.popAll(math.Sqrt)
	}
	t.knnMetric(t.Root, t.Pts.At(int(q)), h)
	return h.popAll(func(d float64) float64 { return d })
}

// knn is the Euclidean traversal; heap keys are squared distances and the
// distance kernel was monomorphized once at tree build.
func (t *Tree) knn(n *Node, qc []float64, h *knnHeap) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		kern := t.sqKern
		for _, p := range t.Points(n) {
			h.push(p, kern(qc, t.Pts.At(int(p))))
		}
		return
	}
	dl := geometry.SqDistPointBox(qc, n.Left.Box)
	dr := geometry.SqDistPointBox(qc, n.Right.Box)
	first, second := n.Left, n.Right
	df, ds := dl, dr
	if dr < dl {
		first, second = n.Right, n.Left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knn(first, qc, h)
	}
	if ds < h.worst() {
		t.knn(second, qc, h)
	}
}

// knnMetric is the general traversal: heap keys are tree-metric distances
// and pruning uses the metric's point-box lower bound.
func (t *Tree) knnMetric(n *Node, qc []float64, h *knnHeap) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		for _, p := range t.Points(n) {
			h.push(p, t.M.Dist(qc, t.Pts.At(int(p))))
		}
		return
	}
	dl := t.M.PointBoxLB(qc, n.Left.Box)
	dr := t.M.PointBoxLB(qc, n.Right.Box)
	first, second := n.Left, n.Right
	df, ds := dl, dr
	if dr < dl {
		first, second = n.Right, n.Left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knnMetric(first, qc, h)
	}
	if ds < h.worst() {
		t.knnMetric(second, qc, h)
	}
}

// CoreDistances computes, in parallel, the core distance of every point:
// the tree-metric distance to its minPts-nearest neighbor, counting the
// point itself (Section 2.1). minPts = 1 gives all zeros.
func (t *Tree) CoreDistances(minPts int) []float64 {
	cd := make([]float64, t.Pts.N)
	if minPts <= 1 {
		return cd
	}
	parallel.For(t.Pts.N, 64, func(i int) {
		h := newKNNHeap(minPts)
		if t.l2 {
			t.knn(t.Root, t.Pts.At(i), h)
			if len(h.sq) > 0 { // heap root is the k-th (or farthest available) NN
				cd[i] = math.Sqrt(h.sq[0])
			}
			return
		}
		t.knnMetric(t.Root, t.Pts.At(i), h)
		if len(h.sq) > 0 {
			cd[i] = h.sq[0]
		}
	})
	return cd
}

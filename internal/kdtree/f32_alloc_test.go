package kdtree

import "testing"

// Allocation pins for the float32 fast paths: the SoA panel scans
// accumulate into fixed-size stack buffers and the comparison-space heap
// keys are plain float64s, so steady-state queries must stay off the heap
// exactly like their float64 counterparts.

func TestF32KNNIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(2000, 16, 31)
	tr := Build(pts, 1)
	if err := tr.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	var ws KNNWorkspace
	tr.KNNInto(0, 10, &ws) // warm up: grows the heap and result buffers
	q := int32(0)
	allocs := testing.AllocsPerRun(100, func() {
		q = (q + 17) % int32(pts.N)
		tr.KNNInto(q, 10, &ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state float32 KNNInto allocated %v times, want 0", allocs)
	}
}

func TestF32RangeQueryAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(2000, 16, 32)
	tr := Build(pts, 1)
	if err := tr.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	buf := tr.RangeQueryAppend(0, 150, nil)
	q := int32(0)
	allocs := testing.AllocsPerRun(100, func() {
		q = (q + 13) % int32(pts.N)
		buf = tr.RangeQueryAppend(q, 120, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state float32 RangeQueryAppend allocated %v times, want 0", allocs)
	}
}

// TestF32BCCPSqAllocs pins the lane-scanned BCCP traversal: pruning bounds
// are exact float64 box distances and the all-pairs scan runs over stack
// buffers, so a node-pair query performs no heap allocation at all.
func TestF32BCCPSqAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(1024, 16, 33)
	tr := Build(pts, 1)
	if err := tr.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	a, b := tr.LeftOf(tr.Root), tr.RightOf(tr.Root)
	if res := BCCPSq(tr, nil, a, b); res.U < 0 { // warm up and sanity check
		t.Fatal("BCCPSq found no pair")
	}
	allocs := testing.AllocsPerRun(20, func() { BCCPSq(tr, nil, a, b) })
	if allocs != 0 {
		t.Fatalf("float32 BCCPSq allocated %v times, want 0", allocs)
	}
}

package kdtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"parclust/internal/geometry"
	"parclust/internal/metric"
)

// Arena serialization: the tree's slab layout (one []Node slab addressed by
// int32 indices, one contiguous geometry backing, a physically permuted
// point copy) is written out as-is, so a snapshot load is a bulk copy plus
// pointer rewiring instead of a rebuild. The kd-order point rows are NOT
// part of the encoding — they are recoverable exactly from the original
// point set through the Orig permutation — and neither are the transient
// per-run annotations (CoreDist, CDMin/CDMax, Comp), which belong to
// whichever MST run is in flight, not to the tree.
//
// Layout (all little-endian, sizes derived from the caller-provided point
// set):
//
//	uint32              leafSize
//	int32               nalloc     number of allocated slab nodes
//	int32               root       slab index of the root (-1 when empty)
//	[n]int32            Orig       kd-order position -> original id
//	[nalloc]node        Lo, Hi, Left, Right int32; Radius, MDiam float64
//	[nalloc*3*dim]f64   geom       per-node [box.Lo | box.Hi | ctr] blocks
//
// DecodeSnapshot validates every structural invariant the query paths rely
// on (permutation bijectivity, child ordering, contiguous child partitions)
// and returns an error — never panics — on malformed input.

// snapNodeBytes is the wire size of one node record.
const snapNodeBytes = 4*4 + 8*2

// SnapshotSize returns the exact encoded size of AppendSnapshot's output.
func (t *Tree) SnapshotSize() int {
	nalloc := int(t.nalloc.Load())
	return 4 + 4 + 4 + 4*len(t.Orig) + nalloc*snapNodeBytes + 8*nalloc*3*t.Pts.Dim
}

// AppendSnapshot appends the tree's arena encoding to buf and returns the
// extended slice.
func (t *Tree) AppendSnapshot(buf []byte) []byte {
	nalloc := int32(t.nalloc.Load())
	root := int32(-1)
	if t.Root != nil {
		// The root is allocated first during the build, but derive the index
		// rather than assuming slot 0.
		for i := int32(0); i < nalloc; i++ {
			if &t.nodes[i] == t.Root {
				root = i
				break
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.LeafSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nalloc))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(root))
	for _, o := range t.Orig {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
	}
	for i := int32(0); i < nalloc; i++ {
		nd := &t.nodes[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.Lo))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.Hi))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.Left))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(nd.Right))
		buf = appendFloat(buf, nd.Radius)
		buf = appendFloat(buf, nd.MDiam)
	}
	geomLen := int(nalloc) * 3 * t.Pts.Dim
	for _, v := range t.geom[:geomLen] {
		buf = appendFloat(buf, v)
	}
	return buf
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// DecodeSnapshot reconstructs a tree from an AppendSnapshot encoding. pts
// must be the same prepared point set (in original id order) the encoded
// tree was built over, and m the same metric; the kd-order rows are rebuilt
// by permuting a private copy of pts through the decoded permutation. The
// input is fully validated: a malformed encoding yields an error, never a
// panic or a tree that can crash a query.
func DecodeSnapshot(data []byte, pts geometry.Points, m metric.Metric) (*Tree, error) {
	n, dim := pts.N, pts.Dim
	rd := snapReader{data: data}
	leafSize, ok1 := rd.u32()
	nallocU, ok2 := rd.u32()
	rootU, ok3 := rd.u32()
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("kdtree: snapshot truncated in header")
	}
	nalloc := int32(nallocU)
	root := int32(rootU)
	if leafSize < 1 || leafSize > 1<<30 {
		return nil, fmt.Errorf("kdtree: snapshot leaf size %d out of range", leafSize)
	}
	maxNodes := int32(0)
	if n > 0 {
		maxNodes = int32(2*n - 1)
	}
	if nalloc < 0 || nalloc > maxNodes {
		return nil, fmt.Errorf("kdtree: snapshot node count %d out of range [0, %d]", nalloc, maxNodes)
	}
	if n == 0 {
		if nalloc != 0 || root != -1 {
			return nil, fmt.Errorf("kdtree: snapshot of empty tree has nodes")
		}
	} else if root < 0 || root >= nalloc {
		return nil, fmt.Errorf("kdtree: snapshot root %d out of range [0, %d)", root, nalloc)
	}
	want := 4*n + int(nalloc)*snapNodeBytes + 8*int(nalloc)*3*dim
	if rd.remaining() != want {
		return nil, fmt.Errorf("kdtree: snapshot body is %d bytes, want %d", rd.remaining(), want)
	}

	t := &Tree{
		Pts:      geometry.Points{Data: make([]float64, n*dim), N: n, Dim: dim},
		Orig:     make([]int32, n),
		Inv:      make([]int32, n),
		LeafSize: int(leafSize),
		M:        m,
		l2:       metric.IsL2(m),
		sqKern:   geometry.SqDistKernel(dim),
	}
	seen := make([]bool, n)
	for i := range t.Orig {
		o, _ := rd.u32()
		oi := int32(o)
		if oi < 0 || int(oi) >= n || seen[oi] {
			return nil, fmt.Errorf("kdtree: snapshot permutation is not a bijection at position %d", i)
		}
		seen[oi] = true
		t.Orig[i] = oi
		t.Inv[oi] = int32(i)
	}
	// Rebuild the kd-order rows from the original-order points: position p
	// holds the row of original id Orig[p], an exact float copy.
	for p := 0; p < n; p++ {
		copy(t.Pts.Data[p*dim:(p+1)*dim], pts.Data[int(t.Orig[p])*dim:(int(t.Orig[p])+1)*dim])
	}

	if nalloc == 0 {
		return t, nil
	}
	t.nodes = make([]Node, nalloc)
	t.geom = make([]float64, int(nalloc)*3*dim)
	t.pos = make([]int32, n)
	for i := range t.pos {
		t.pos[i] = int32(i)
	}
	for i := int32(0); i < nalloc; i++ {
		nd := &t.nodes[i]
		lo, _ := rd.u32()
		hi, _ := rd.u32()
		left, _ := rd.u32()
		right, _ := rd.u32()
		nd.Lo, nd.Hi = int32(lo), int32(hi)
		nd.Left, nd.Right = int32(left), int32(right)
		nd.Radius, _ = rd.f64()
		nd.MDiam, _ = rd.f64()
		nd.Comp = -1
		off := int(i) * 3 * dim
		nd.Box = geometry.Box{
			Lo: t.geom[off : off+dim : off+dim],
			Hi: t.geom[off+dim : off+2*dim : off+2*dim],
		}
		nd.Ctr = t.geom[off+2*dim : off+3*dim : off+3*dim]
	}
	for i := 0; i < int(nalloc)*3*dim; i++ {
		t.geom[i], _ = rd.f64()
	}
	if err := validateNodes(t.nodes, int32(n), nalloc, root); err != nil {
		return nil, err
	}
	t.Root = &t.nodes[root]
	t.nalloc.Store(nalloc)
	return t, nil
}

// validateNodes checks the structural invariants every traversal relies on:
// point ranges inside [0, n), children allocated after their parent (which
// rules out cycles without a reachability walk), leaves marked by both
// child indices being negative, and each internal node's children forming a
// contiguous partition of its range. The root must cover all points.
func validateNodes(nodes []Node, n, nalloc, root int32) error {
	if nodes[root].Lo != 0 || nodes[root].Hi != n {
		return fmt.Errorf("kdtree: snapshot root covers [%d, %d), want [0, %d)", nodes[root].Lo, nodes[root].Hi, n)
	}
	for i := int32(0); i < nalloc; i++ {
		nd := &nodes[i]
		if nd.Lo < 0 || nd.Hi > n || nd.Lo >= nd.Hi {
			return fmt.Errorf("kdtree: snapshot node %d has range [%d, %d)", i, nd.Lo, nd.Hi)
		}
		if (nd.Left < 0) != (nd.Right < 0) {
			return fmt.Errorf("kdtree: snapshot node %d has exactly one child", i)
		}
		if nd.Left < 0 {
			continue
		}
		if nd.Left <= i || nd.Left >= nalloc || nd.Right <= i || nd.Right >= nalloc || nd.Left == nd.Right {
			return fmt.Errorf("kdtree: snapshot node %d has child indices %d, %d", i, nd.Left, nd.Right)
		}
		l, r := &nodes[nd.Left], &nodes[nd.Right]
		if l.Lo != nd.Lo || l.Hi != r.Lo || r.Hi != nd.Hi {
			return fmt.Errorf("kdtree: snapshot node %d children do not partition [%d, %d)", i, nd.Lo, nd.Hi)
		}
	}
	return nil
}

// snapReader is a bounds-checked little-endian cursor.
type snapReader struct {
	data []byte
	off  int
}

func (r *snapReader) remaining() int { return len(r.data) - r.off }

func (r *snapReader) u32() (uint32, bool) {
	if r.remaining() < 4 {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, true
}

func (r *snapReader) f64() (float64, bool) {
	if r.remaining() < 8 {
		return 0, false
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, true
}

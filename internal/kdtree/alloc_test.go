package kdtree

import (
	"testing"
	"testing/quick"
)

// TestKNNIntoAllocs pins the workspace k-NN query path at zero steady-state
// heap allocations: the bounded heap and result buffer live in the
// workspace, leaf scans run over the tree's contiguous kd-ordered rows, and
// the original-id mapping is a flat array lookup.
func TestKNNIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(2000, 3, 21)
	tr := Build(pts, 8)
	var ws KNNWorkspace
	tr.KNNInto(0, 10, &ws) // warm up: grows the heap and result buffers
	q := int32(0)
	allocs := testing.AllocsPerRun(100, func() {
		q = (q + 17) % int32(pts.N)
		tr.KNNInto(q, 10, &ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state KNNInto allocated %v times, want 0", allocs)
	}
}

// TestRangeQueryAppendAllocs pins the buffer-reusing range query at zero
// steady-state allocations once the buffer has grown.
func TestRangeQueryAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins run without -race")
	}
	pts := randPoints(2000, 3, 22)
	tr := Build(pts, 8)
	buf := tr.RangeQueryAppend(0, 30, nil)
	q := int32(0)
	allocs := testing.AllocsPerRun(100, func() {
		q = (q + 13) % int32(pts.N)
		buf = tr.RangeQueryAppend(q, 20, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state RangeQueryAppend allocated %v times, want 0", allocs)
	}
}

// TestPermutationRoundTrip is the property test for the kd-order
// reordering: Orig and Inv are mutually inverse permutations, and the
// tree's reordered rows are exactly the original rows under Orig — so
// every id a query reports refers to the point the caller passed in.
func TestPermutationRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, dimRaw, leafRaw uint8) bool {
		n := 1 + int(nRaw)%3000
		dim := 1 + int(dimRaw)%5
		leaf := 1 + int(leafRaw)%16
		pts := randPoints(n, dim, seed)
		tr := Build(pts, leaf)
		if len(tr.Orig) != n || len(tr.Inv) != n {
			return false
		}
		seen := make([]bool, n)
		for p := 0; p < n; p++ {
			o := tr.Orig[p]
			if o < 0 || int(o) >= n || seen[o] {
				return false // not a permutation
			}
			seen[o] = true
			if tr.Inv[o] != int32(p) {
				return false // Inv is not the inverse of Orig
			}
			// Row round-trip: the reordered row is the original row.
			a, b := tr.Pts.At(p), pts.At(int(o))
			for k := range a {
				if a[k] != b[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDoesNotMutateInput pins the reordering contract: the tree
// permutes its own copy, never the caller's buffer.
func TestBuildDoesNotMutateInput(t *testing.T) {
	pts := randPoints(500, 3, 23)
	before := append([]float64(nil), pts.Data...)
	Build(pts, 1)
	for i := range before {
		if pts.Data[i] != before[i] {
			t.Fatal("Build mutated the caller's point buffer")
		}
	}
}

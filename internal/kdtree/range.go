package kdtree

import "parclust/internal/geometry"

// RangeQuery returns the indices of all points within tree-metric distance
// r of point q (including q itself), in no particular order.
func (t *Tree) RangeQuery(q int32, r float64) []int32 {
	var out []int32
	if t.l2 {
		t.rangeQuery(t.Root, t.Pts.At(int(q)), r*r, &out)
	} else {
		t.rangeQueryMetric(t.Root, t.Pts.At(int(q)), r, &out)
	}
	return out
}

// RangeCount returns the number of points within tree-metric distance r of
// point q (including q itself) without materializing them. Subtrees whose
// bounding boxes lie entirely within the ball are counted wholesale.
func (t *Tree) RangeCount(q int32, r float64) int {
	if t.l2 {
		return t.rangeCount(t.Root, t.Pts.At(int(q)), r*r)
	}
	return t.rangeCountMetric(t.Root, t.Pts.At(int(q)), r)
}

func (t *Tree) rangeQuery(n *Node, qc []float64, r2 float64, out *[]int32) {
	if n == nil {
		return
	}
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return
	}
	if n.IsLeaf() {
		kern := t.sqKern
		for _, p := range t.Points(n) {
			if kern(qc, t.Pts.At(int(p))) <= r2 {
				*out = append(*out, p)
			}
		}
		return
	}
	t.rangeQuery(n.Left, qc, r2, out)
	t.rangeQuery(n.Right, qc, r2, out)
}

func (t *Tree) rangeCount(n *Node, qc []float64, r2 float64) int {
	if n == nil {
		return 0
	}
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return 0
	}
	if geometry.SqMaxDistBoxes(pointBox(qc), n.Box) <= r2 {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		kern := t.sqKern
		cnt := 0
		for _, p := range t.Points(n) {
			if kern(qc, t.Pts.At(int(p))) <= r2 {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCount(n.Left, qc, r2) + t.rangeCount(n.Right, qc, r2)
}

func (t *Tree) rangeQueryMetric(n *Node, qc []float64, r float64, out *[]int32) {
	if n == nil {
		return
	}
	if t.M.PointBoxLB(qc, n.Box) > r {
		return
	}
	if n.IsLeaf() {
		for _, p := range t.Points(n) {
			if t.M.Dist(qc, t.Pts.At(int(p))) <= r {
				*out = append(*out, p)
			}
		}
		return
	}
	t.rangeQueryMetric(n.Left, qc, r, out)
	t.rangeQueryMetric(n.Right, qc, r, out)
}

func (t *Tree) rangeCountMetric(n *Node, qc []float64, r float64) int {
	if n == nil {
		return 0
	}
	if t.M.PointBoxLB(qc, n.Box) > r {
		return 0
	}
	if t.M.BoxesUB(pointBox(qc), n.Box) <= r {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		cnt := 0
		for _, p := range t.Points(n) {
			if t.M.Dist(qc, t.Pts.At(int(p))) <= r {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCountMetric(n.Left, qc, r) + t.rangeCountMetric(n.Right, qc, r)
}

func pointBox(qc []float64) geometry.Box {
	return geometry.Box{Lo: qc, Hi: qc}
}

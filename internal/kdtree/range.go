package kdtree

import "parclust/internal/geometry"

// RangeQuery returns the original ids of all points within tree-metric
// distance r of the point with original id q (including q itself), in no
// particular order.
func (t *Tree) RangeQuery(q int32, r float64) []int32 {
	return t.RangeQueryAppend(q, r, nil)
}

// RangeQueryAppend is RangeQuery appending to out (which may be nil or a
// reused buffer), so steady-state query streams allocate nothing once the
// buffer has grown.
func (t *Tree) RangeQueryAppend(q int32, r float64, out []int32) []int32 {
	qc := t.Pts.At(int(t.Inv[q]))
	if f := t.f32; f != nil {
		t.rangeQuery32(t.Root, qc, f.Row(t.Inv[q]), f.Kern.CmpRadius(r), &out)
	} else if t.l2 {
		t.rangeQuery(t.Root, qc, r*r, &out)
	} else {
		t.rangeQueryMetric(t.Root, qc, r, &out)
	}
	return out
}

// RangeCount returns the number of points within tree-metric distance r of
// the point with original id q (including q itself) without materializing
// them. Subtrees whose bounding boxes lie entirely within the ball are
// counted wholesale.
func (t *Tree) RangeCount(q int32, r float64) int {
	qc := t.Pts.At(int(t.Inv[q]))
	if f := t.f32; f != nil {
		return t.rangeCount32(t.Root, qc, f.Row(t.Inv[q]), f.Kern.CmpRadius(r))
	}
	if t.l2 {
		return t.rangeCount(t.Root, qc, r*r)
	}
	return t.rangeCountMetric(t.Root, qc, r)
}

func (t *Tree) rangeQuery(n *Node, qc []float64, r2 float64, out *[]int32) {
	if n == nil {
		return
	}
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return
	}
	if n.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			r := int(p) * d
			if kern(qc, data[r:r+d:r+d]) <= r2 {
				*out = append(*out, t.Orig[p])
			}
		}
		return
	}
	t.rangeQuery(t.LeftOf(n), qc, r2, out)
	t.rangeQuery(t.RightOf(n), qc, r2, out)
}

func (t *Tree) rangeCount(n *Node, qc []float64, r2 float64) int {
	if n == nil {
		return 0
	}
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return 0
	}
	if geometry.SqMaxDistBoxes(pointBox(qc), n.Box) <= r2 {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		cnt := 0
		for p := n.Lo; p < n.Hi; p++ {
			r := int(p) * d
			if kern(qc, data[r:r+d:r+d]) <= r2 {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCount(t.LeftOf(n), qc, r2) + t.rangeCount(t.RightOf(n), qc, r2)
}

func (t *Tree) rangeQueryMetric(n *Node, qc []float64, r float64, out *[]int32) {
	if n == nil {
		return
	}
	if t.M.PointBoxLB(qc, n.Box) > r {
		return
	}
	if n.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			ro := int(p) * d
			if t.M.Dist(qc, data[ro:ro+d:ro+d]) <= r {
				*out = append(*out, t.Orig[p])
			}
		}
		return
	}
	t.rangeQueryMetric(t.LeftOf(n), qc, r, out)
	t.rangeQueryMetric(t.RightOf(n), qc, r, out)
}

func (t *Tree) rangeCountMetric(n *Node, qc []float64, r float64) int {
	if n == nil {
		return 0
	}
	if t.M.PointBoxLB(qc, n.Box) > r {
		return 0
	}
	if t.M.BoxesUB(pointBox(qc), n.Box) <= r {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		cnt := 0
		for p := n.Lo; p < n.Hi; p++ {
			ro := int(p) * d
			if t.M.Dist(qc, data[ro:ro+d:ro+d]) <= r {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCountMetric(t.LeftOf(n), qc, r) + t.rangeCountMetric(t.RightOf(n), qc, r)
}

func pointBox(qc []float64) geometry.Box {
	return geometry.Box{Lo: qc, Hi: qc}
}

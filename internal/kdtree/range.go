package kdtree

import "parclust/internal/geometry"

// RangeQuery returns the indices of all points within Euclidean distance r
// of point q (including q itself), in no particular order.
func (t *Tree) RangeQuery(q int32, r float64) []int32 {
	var out []int32
	t.rangeQuery(t.Root, q, r*r, &out)
	return out
}

// RangeCount returns the number of points within distance r of point q
// (including q itself) without materializing them. Subtrees whose bounding
// boxes lie entirely within the ball are counted wholesale.
func (t *Tree) RangeCount(q int32, r float64) int {
	return t.rangeCount(t.Root, q, r*r)
}

func (t *Tree) rangeQuery(n *Node, q int32, r2 float64, out *[]int32) {
	if n == nil {
		return
	}
	qc := t.Pts.At(int(q))
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return
	}
	if n.IsLeaf() {
		for _, p := range t.Points(n) {
			if t.Pts.SqDist(int(q), int(p)) <= r2 {
				*out = append(*out, p)
			}
		}
		return
	}
	t.rangeQuery(n.Left, q, r2, out)
	t.rangeQuery(n.Right, q, r2, out)
}

func (t *Tree) rangeCount(n *Node, q int32, r2 float64) int {
	if n == nil {
		return 0
	}
	qc := t.Pts.At(int(q))
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return 0
	}
	if geometry.SqMaxDistBoxes(pointBox(qc), n.Box) <= r2 {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		cnt := 0
		for _, p := range t.Points(n) {
			if t.Pts.SqDist(int(q), int(p)) <= r2 {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCount(n.Left, q, r2) + t.rangeCount(n.Right, q, r2)
}

func pointBox(qc []float64) geometry.Box {
	return geometry.Box{Lo: qc, Hi: qc}
}

package kdtree

import (
	"math"

	"parclust/internal/geometry"
)

// Live traversals: tombstone-aware variants of KNN / range query / range
// count used by the engine's dynamic layer. They differ from the static
// entry points in two ways:
//
//   - The query is a raw coordinate vector, not an indexed point id, because
//     the query point may live in the engine's overlay buffer rather than in
//     the tree.
//   - Leaf scans skip points whose original id is tombstoned (tomb is
//     indexed by original id; nil means no deletions), and the wholesale
//     subtree-counting shortcut is disabled while tombstones exist — a
//     node's Size() no longer equals its live population.
//
// Distances are computed with exactly the kernels the static traversals use
// (the monomorphized squared-Euclidean kernel + sqrt for L2, M.Dist
// otherwise), so a live result is bit-identical to the same query against a
// tree freshly built over the surviving points.

// DistCoords returns the tree-metric distance between two coordinate rows,
// using the same kernel sequence as the tree's own leaf scans (squared
// kernel + sqrt under L2, the metric itself otherwise), so overlay-point
// distances merge bit-identically with tree results.
func (t *Tree) DistCoords(a, b []float64) float64 {
	if t.l2 {
		return math.Sqrt(t.sqKern(a, b))
	}
	return t.M.Dist(a, b)
}

// KNNLiveInto returns the k nearest non-tombstoned tree points to the
// coordinate vector qc, sorted by increasing tree-metric distance, appending
// into the workspace's buffers. Result ids are original input ids. Fewer
// than k results are returned when fewer than k live points exist.
func (t *Tree) KNNLiveInto(qc []float64, k int, tomb []bool, ws *KNNWorkspace) []Neighbor {
	ws.h.reset(k)
	ws.out = ws.out[:0]
	if t.l2 {
		t.knnLive(t.Root, qc, tomb, &ws.h)
		ws.out = ws.h.popAllInto(ws.out, t.Orig, math.Sqrt)
		return ws.out
	}
	t.knnMetricLive(t.Root, qc, tomb, &ws.h)
	ws.out = ws.h.popAllInto(ws.out, t.Orig, identity)
	return ws.out
}

func (t *Tree) knnLive(n *Node, qc []float64, tomb []bool, h *knnHeap) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			if tomb != nil && tomb[t.Orig[p]] {
				continue
			}
			r := int(p) * d
			h.push(p, kern(qc, data[r:r+d:r+d]))
		}
		return
	}
	left, right := t.LeftOf(n), t.RightOf(n)
	dl := geometry.SqDistPointBox(qc, left.Box)
	dr := geometry.SqDistPointBox(qc, right.Box)
	first, second := left, right
	df, ds := dl, dr
	if dr < dl {
		first, second = right, left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knnLive(first, qc, tomb, h)
	}
	if ds < h.worst() {
		t.knnLive(second, qc, tomb, h)
	}
}

func (t *Tree) knnMetricLive(n *Node, qc []float64, tomb []bool, h *knnHeap) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			if tomb != nil && tomb[t.Orig[p]] {
				continue
			}
			r := int(p) * d
			h.push(p, t.M.Dist(qc, data[r:r+d:r+d]))
		}
		return
	}
	left, right := t.LeftOf(n), t.RightOf(n)
	dl := t.M.PointBoxLB(qc, left.Box)
	dr := t.M.PointBoxLB(qc, right.Box)
	first, second := left, right
	df, ds := dl, dr
	if dr < dl {
		first, second = right, left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knnMetricLive(first, qc, tomb, h)
	}
	if ds < h.worst() {
		t.knnMetricLive(second, qc, tomb, h)
	}
}

// RangeQueryLiveAppend appends the original ids of all non-tombstoned tree
// points within tree-metric distance r of the coordinate vector qc, in no
// particular order.
func (t *Tree) RangeQueryLiveAppend(qc []float64, r float64, tomb []bool, out []int32) []int32 {
	if t.l2 {
		t.rangeQueryLive(t.Root, qc, r*r, tomb, &out)
	} else {
		t.rangeQueryMetricLive(t.Root, qc, r, tomb, &out)
	}
	return out
}

func (t *Tree) rangeQueryLive(n *Node, qc []float64, r2 float64, tomb []bool, out *[]int32) {
	if n == nil {
		return
	}
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return
	}
	if n.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			if tomb != nil && tomb[t.Orig[p]] {
				continue
			}
			r := int(p) * d
			if kern(qc, data[r:r+d:r+d]) <= r2 {
				*out = append(*out, t.Orig[p])
			}
		}
		return
	}
	t.rangeQueryLive(t.LeftOf(n), qc, r2, tomb, out)
	t.rangeQueryLive(t.RightOf(n), qc, r2, tomb, out)
}

func (t *Tree) rangeQueryMetricLive(n *Node, qc []float64, r float64, tomb []bool, out *[]int32) {
	if n == nil {
		return
	}
	if t.M.PointBoxLB(qc, n.Box) > r {
		return
	}
	if n.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		for p := n.Lo; p < n.Hi; p++ {
			if tomb != nil && tomb[t.Orig[p]] {
				continue
			}
			ro := int(p) * d
			if t.M.Dist(qc, data[ro:ro+d:ro+d]) <= r {
				*out = append(*out, t.Orig[p])
			}
		}
		return
	}
	t.rangeQueryMetricLive(t.LeftOf(n), qc, r, tomb, out)
	t.rangeQueryMetricLive(t.RightOf(n), qc, r, tomb, out)
}

// RangeCountLive returns the number of non-tombstoned tree points within
// tree-metric distance r of the coordinate vector qc. With tombstones
// present the wholesale subtree count is disabled (node sizes overcount);
// without, it behaves like RangeCount.
func (t *Tree) RangeCountLive(qc []float64, r float64, tomb []bool) int {
	if t.l2 {
		return t.rangeCountLive(t.Root, qc, r*r, tomb)
	}
	return t.rangeCountMetricLive(t.Root, qc, r, tomb)
}

func (t *Tree) rangeCountLive(n *Node, qc []float64, r2 float64, tomb []bool) int {
	if n == nil {
		return 0
	}
	if geometry.SqDistPointBox(qc, n.Box) > r2 {
		return 0
	}
	if tomb == nil && geometry.SqMaxDistBoxes(pointBox(qc), n.Box) <= r2 {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		kern := t.sqKern
		d := t.Pts.Dim
		data := t.Pts.Data
		cnt := 0
		for p := n.Lo; p < n.Hi; p++ {
			if tomb != nil && tomb[t.Orig[p]] {
				continue
			}
			r := int(p) * d
			if kern(qc, data[r:r+d:r+d]) <= r2 {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCountLive(t.LeftOf(n), qc, r2, tomb) + t.rangeCountLive(t.RightOf(n), qc, r2, tomb)
}

func (t *Tree) rangeCountMetricLive(n *Node, qc []float64, r float64, tomb []bool) int {
	if n == nil {
		return 0
	}
	if t.M.PointBoxLB(qc, n.Box) > r {
		return 0
	}
	if tomb == nil && t.M.BoxesUB(pointBox(qc), n.Box) <= r {
		return n.Size() // whole subtree inside the ball
	}
	if n.IsLeaf() {
		d := t.Pts.Dim
		data := t.Pts.Data
		cnt := 0
		for p := n.Lo; p < n.Hi; p++ {
			if tomb != nil && tomb[t.Orig[p]] {
				continue
			}
			ro := int(p) * d
			if t.M.Dist(qc, data[ro:ro+d:ro+d]) <= r {
				cnt++
			}
		}
		return cnt
	}
	return t.rangeCountMetricLive(t.LeftOf(n), qc, r, tomb) + t.rangeCountMetricLive(t.RightOf(n), qc, r, tomb)
}

package kdtree

import (
	"fmt"

	"parclust/internal/geometry"
	"parclust/internal/metric"
	"parclust/internal/parallel"
)

// F32ScanMax is both the SoA panel block size and the subtree size at
// which float32 traversals stop descending and lane-scan the node's
// contiguous kd-range instead. The engine builds trees with leafSize 1
// (the WSPD construction requires it), so blocking by leaf would yield
// single-element panels; fixed 32-position blocks over the kd-order
// permutation give every scan contiguous same-dimension lanes regardless
// of leaf granularity.
const F32ScanMax = 32

// F32 is the opt-in float32 representation of a tree's points: a row-major
// copy (for query vectors and row-row kernels) plus dimension-blocked SoA
// panels over the kd-order permutation, so a block's coordinates for one
// dimension are contiguous. Built once by Tree.EnableFloat32; immutable
// afterwards.
type F32 struct {
	// Kern is the float32 kernel family of the tree's metric.
	Kern metric.Kernel32

	// rows is the row-major float32 copy of Tree.Pts (kd-order).
	rows []float32

	// panels holds ceil(n/F32ScanMax) blocks; block g stores the
	// coordinates of kd positions [g*F32ScanMax, (g+1)*F32ScanMax) as dim
	// contiguous lanes of F32ScanMax values each:
	// panels[(g*dim+k)*F32ScanMax + j] = coordinate k of position g*F32ScanMax+j.
	// The tail block is zero-padded; scans never read past their hi bound.
	panels []float32

	dim int
}

// EnableFloat32 attaches the float32 SoA representation to the tree,
// after which KNN, CoreDistances, range queries, BCCP, and Borůvka
// nearest-outside all take the float32 scan path. It fails if the tree's
// metric has no float32 kernel or any coordinate exceeds the float32
// magnitude bound (metric.MaxAbsCoord32); the tree is unchanged on error.
// Not safe to call concurrently with queries: enable before sharing the
// tree. Idempotent.
func (t *Tree) EnableFloat32() error {
	if t.f32 != nil {
		return nil
	}
	k32, ok := metric.Kernel32For(t.M)
	if !ok {
		return fmt.Errorf("kdtree: metric %q has no float32 kernel", t.M.Name())
	}
	if err := metric.ValidateRows32(t.Pts); err != nil {
		return err
	}
	n, dim := t.Pts.N, t.Pts.Dim
	f := &F32{Kern: k32, dim: dim}
	if n > 0 {
		f.rows = make([]float32, n*dim)
		data := t.Pts.Data
		parallel.ForRange(n*dim, 1<<15, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				f.rows[i] = float32(data[i])
			}
		})
		nb := (n + F32ScanMax - 1) / F32ScanMax
		f.panels = make([]float32, nb*dim*F32ScanMax)
		parallel.For(nb, 8, func(g int) {
			base := g * F32ScanMax
			end := base + F32ScanMax
			if end > n {
				end = n
			}
			po := g * dim * F32ScanMax
			for p := base; p < end; p++ {
				row := f.rows[p*dim : (p+1)*dim]
				j := p - base
				for k, v := range row {
					f.panels[po+k*F32ScanMax+j] = v
				}
			}
		})
	}
	t.f32 = f
	return nil
}

// F32 returns the tree's float32 representation, or nil when the float64
// default is in effect.
func (t *Tree) F32() *F32 { return t.f32 }

// Row returns the float32 coordinate row of kd-order position p.
func (f *F32) Row(p int32) []float32 {
	r := int(p) * f.dim
	return f.rows[r : r+f.dim : r+f.dim]
}

// ScanInto computes comparison-space distances from the query row q32 to
// the kd positions [lo, hi), writing them to dst[0:hi-lo]. hi-lo must be
// at most F32ScanMax (a range that size spans at most two panel blocks).
// The accumulation walks dimension lanes: for each of the dim lanes it
// folds F32ScanMax-contiguous same-dimension coordinates into the
// accumulators, so the inner loop is a branch-free independent-iteration
// pass the compiler can keep in registers (and vectorize under GOAMD64=v3).
func (f *F32) ScanInto(dst []float32, lo, hi int32, q32 []float32) {
	cnt := int(hi - lo)
	dst = dst[:cnt]
	for i := range dst {
		dst[i] = 0
	}
	op := f.Kern.Op
	dim := f.dim
	base := 0
	for s := lo; s < hi; {
		g := int(s) / F32ScanMax
		j0 := int(s) % F32ScanMax
		j1 := j0 + int(hi-s)
		if j1 > F32ScanMax {
			j1 = F32ScanMax
		}
		po := g * dim * F32ScanMax
		acc := dst[base : base+(j1-j0)]
		// Direct calls per lane op: an indirect call through a func value
		// would make escape analysis leak acc, forcing callers' stack scan
		// buffers to the heap (see metric.LaneOp).
		switch op {
		case metric.LaneSq:
			for k := 0; k < dim; k++ {
				off := po + k*F32ScanMax
				metric.SqLane32(acc, f.panels[off+j0:off+j1], q32[k])
			}
		case metric.LaneL1:
			for k := 0; k < dim; k++ {
				off := po + k*F32ScanMax
				metric.L1Lane32(acc, f.panels[off+j0:off+j1], q32[k])
			}
		case metric.LaneLInf:
			for k := 0; k < dim; k++ {
				off := po + k*F32ScanMax
				metric.LInfLane32(acc, f.panels[off+j0:off+j1], q32[k])
			}
		}
		base += j1 - j0
		s += int32(j1 - j0)
	}
}

// scannable32 reports that the float32 traversal should stop descending at
// n and lane-scan its kd-range instead (leaves of any size qualify: they
// cannot be split further).
func scannable32(n *Node) bool { return n.IsLeaf() || n.Size() <= F32ScanMax }

// knn32 is the float32 traversal: exact float64 comparison-space box
// bounds prune subtrees, and once a subtree fits F32ScanMax positions its
// contiguous kd-range is lane-scanned through the SoA panels. Heap keys
// are float64-widened comparison-space distances, so cross-candidate
// ordering and tie-breaking are exact over the float32-rounded values.
func (t *Tree) knn32(n *Node, qc []float64, q32 []float32, h *knnHeap) {
	if n == nil {
		return
	}
	if scannable32(n) {
		t.scanKNN32(n.Lo, n.Hi, q32, h)
		return
	}
	f := t.f32
	left, right := t.LeftOf(n), t.RightOf(n)
	dl := f.Kern.PointBoxLB(qc, left.Box)
	dr := f.Kern.PointBoxLB(qc, right.Box)
	first, second := left, right
	df, ds := dl, dr
	if dr < dl {
		first, second = right, left
		df, ds = dr, dl
	}
	if df < h.worst() {
		t.knn32(first, qc, q32, h)
	}
	if ds < h.worst() {
		t.knn32(second, qc, q32, h)
	}
}

// scanKNN32 lane-scans kd positions [lo, hi) (chunked to F32ScanMax) and
// pushes every distance; the bounded heap evicts in O(log k). The scratch
// buffer is a stack array, so the scan allocates nothing.
func (t *Tree) scanKNN32(lo, hi int32, q32 []float32, h *knnHeap) {
	var buf [F32ScanMax]float32
	f := t.f32
	for s := lo; s < hi; {
		e := s + F32ScanMax
		if e > hi {
			e = hi
		}
		f.ScanInto(buf[:], s, e, q32)
		for j := int32(0); j < e-s; j++ {
			h.push(s+j, float64(buf[j]))
		}
		s = e
	}
}

// rangeQuery32 mirrors rangeQuery with the comparison-space radius cr and
// lane scans at the cutoff.
func (t *Tree) rangeQuery32(n *Node, qc []float64, q32 []float32, cr float64, out *[]int32) {
	if n == nil {
		return
	}
	f := t.f32
	if f.Kern.PointBoxLB(qc, n.Box) > cr {
		return
	}
	if scannable32(n) {
		var buf [F32ScanMax]float32
		for s := n.Lo; s < n.Hi; {
			e := s + F32ScanMax
			if e > n.Hi {
				e = n.Hi
			}
			f.ScanInto(buf[:], s, e, q32)
			for j := int32(0); j < e-s; j++ {
				if float64(buf[j]) <= cr {
					*out = append(*out, t.Orig[s+j])
				}
			}
			s = e
		}
		return
	}
	t.rangeQuery32(t.LeftOf(n), qc, q32, cr, out)
	t.rangeQuery32(t.RightOf(n), qc, q32, cr, out)
}

// rangeCount32 mirrors rangeCount. The wholesale-inside test uses the
// exact float64 upper bound, so a fully-inside subtree is counted without
// scanning; per-point predicates use the float32-rounded distances, so
// counts can differ from the float64 path for points exactly on the ball
// boundary at float32 resolution (the documented precision contract).
func (t *Tree) rangeCount32(n *Node, qc []float64, q32 []float32, cr float64) int {
	if n == nil {
		return 0
	}
	f := t.f32
	if f.Kern.PointBoxLB(qc, n.Box) > cr {
		return 0
	}
	if f.Kern.PointBoxUB(qc, n.Box) <= cr {
		return n.Size() // whole subtree inside the ball
	}
	if scannable32(n) {
		var buf [F32ScanMax]float32
		cnt := 0
		for s := n.Lo; s < n.Hi; {
			e := s + F32ScanMax
			if e > n.Hi {
				e = n.Hi
			}
			f.ScanInto(buf[:], s, e, q32)
			for j := int32(0); j < e-s; j++ {
				if float64(buf[j]) <= cr {
					cnt++
				}
			}
			s = e
		}
		return cnt
	}
	return t.rangeCount32(t.LeftOf(n), qc, q32, cr) + t.rangeCount32(t.RightOf(n), qc, q32, cr)
}

// bccpSq32 is bccpL2 over the float32 panels: exact squared box bounds
// prune, and node pairs that both fit the scan cutoff take a lane-scanned
// all-pairs pass. best.W stays in squared space. lb is the squared box
// distance of (a, b), computed by the caller for child ordering, so each
// node pair evaluates its O(dim) bound exactly once.
func bccpSq32(t *Tree, a, b *Node, lb float64, best *BCCPResult) {
	if lb >= best.W {
		return
	}
	if scannable32(a) && scannable32(b) {
		scanBCCP32(t, nil, a, b, best)
		return
	}
	if scannable32(b) || (!scannable32(a) && a.Radius >= b.Radius) {
		al, ar := t.LeftOf(a), t.RightOf(a)
		d1 := geometry.SqDistBoxes(al.Box, b.Box)
		d2 := geometry.SqDistBoxes(ar.Box, b.Box)
		if d1 <= d2 {
			bccpSq32(t, al, b, d1, best)
			bccpSq32(t, ar, b, d2, best)
		} else {
			bccpSq32(t, ar, b, d2, best)
			bccpSq32(t, al, b, d1, best)
		}
		return
	}
	bl, br := t.LeftOf(b), t.RightOf(b)
	d1 := geometry.SqDistBoxes(a.Box, bl.Box)
	d2 := geometry.SqDistBoxes(a.Box, br.Box)
	if d1 <= d2 {
		bccpSq32(t, a, bl, d1, best)
		bccpSq32(t, a, br, d2, best)
	} else {
		bccpSq32(t, a, br, d2, best)
		bccpSq32(t, a, bl, d1, best)
	}
}

// bccpMutSq32 is bccpMutSq over the float32 panels: squared mutual
// reachability max{d², cd[p]², cd[q]²} with the exact squared node lower
// bound, lane scans at the cutoff. lb is sqMutNodeLB(a, b) from the caller.
func bccpMutSq32(t *Tree, cd []float64, a, b *Node, lb float64, best *BCCPResult) {
	if lb >= best.W {
		return
	}
	if scannable32(a) && scannable32(b) {
		scanBCCP32(t, cd, a, b, best)
		return
	}
	if scannable32(b) || (!scannable32(a) && a.Radius >= b.Radius) {
		al, ar := t.LeftOf(a), t.RightOf(a)
		d1 := sqMutNodeLB(al, b)
		d2 := sqMutNodeLB(ar, b)
		if d1 <= d2 {
			bccpMutSq32(t, cd, al, b, d1, best)
			bccpMutSq32(t, cd, ar, b, d2, best)
		} else {
			bccpMutSq32(t, cd, ar, b, d2, best)
			bccpMutSq32(t, cd, al, b, d1, best)
		}
		return
	}
	bl, br := t.LeftOf(b), t.RightOf(b)
	d1 := sqMutNodeLB(a, bl)
	d2 := sqMutNodeLB(a, br)
	if d1 <= d2 {
		bccpMutSq32(t, cd, a, bl, d1, best)
		bccpMutSq32(t, cd, a, br, d2, best)
	} else {
		bccpMutSq32(t, cd, a, br, d2, best)
		bccpMutSq32(t, cd, a, bl, d1, best)
	}
}

// scanBCCP32 runs the all-pairs pass between the kd-ranges of a and b:
// each point of a is lane-scanned against b's panels in F32ScanMax chunks.
// cd nil selects plain squared distance; otherwise squared mutual
// reachability. Distances widen to float64 before any comparison against
// best.W, keeping pair selection deterministic.
func scanBCCP32(t *Tree, cd []float64, a, b *Node, best *BCCPResult) {
	f := t.f32
	var buf [F32ScanMax]float32
	for p := a.Lo; p < a.Hi; p++ {
		q32 := f.Row(p)
		var cp2 float64
		if cd != nil {
			cp2 = cd[p] * cd[p]
		}
		for s := b.Lo; s < b.Hi; {
			e := s + F32ScanMax
			if e > b.Hi {
				e = b.Hi
			}
			f.ScanInto(buf[:], s, e, q32)
			for j := int32(0); j < e-s; j++ {
				q := s + j
				if q == p {
					continue
				}
				w := float64(buf[j])
				if cd != nil {
					if cp2 > w {
						w = cp2
					}
					if cq2 := cd[q] * cd[q]; cq2 > w {
						w = cq2
					}
				}
				if w < best.W {
					*best = BCCPResult{U: p, V: q, W: w}
				}
			}
			s = e
		}
	}
}

// coreDist32 computes the core distance of the point at kd position p on
// the float32 path, reusing the caller's heap.
func (t *Tree) coreDist32(p int, minPts int, h *knnHeap) float64 {
	h.reset(minPts)
	dim := t.Pts.Dim
	qc := t.Pts.Data[p*dim : (p+1)*dim : (p+1)*dim]
	t.knn32(t.Root, qc, t.f32.Row(int32(p)), h)
	if len(h.sq) == 0 {
		return 0
	}
	return t.f32.Kern.Finish(h.sq[0])
}

package kdtree

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	pts := randPoints(400, 3, 31)
	tr := Build(pts, 8)
	for _, r := range []float64{0, 1, 10, 50, 1000} {
		for q := 0; q < pts.N; q += 37 {
			got := tr.RangeQuery(int32(q), r)
			var want []int32
			for j := 0; j < pts.N; j++ {
				if pts.Dist(q, j) <= r {
					want = append(want, int32(j))
				}
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("r=%v q=%d: %d results, want %d", r, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("r=%v q=%d: result %d is %d, want %d", r, q, i, got[i], want[i])
				}
			}
			if cnt := tr.RangeCount(int32(q), r); cnt != len(want) {
				t.Fatalf("r=%v q=%d: RangeCount=%d, want %d", r, q, cnt, len(want))
			}
		}
	}
}

func TestRangeCountQuick(t *testing.T) {
	pts := randPoints(200, 2, 33)
	tr := Build(pts, 4)
	f := func(qRaw uint8, rRaw uint8) bool {
		q := int32(int(qRaw) % pts.N)
		r := float64(rRaw)
		return tr.RangeCount(q, r) == len(tr.RangeQuery(q, r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
